# Targets mirror .github/workflows/ci.yml so local runs reproduce CI.

GO ?= go

.PHONY: all build vet fmt fmt-check test race bench bench-smoke bench-churn fuzz-smoke ci

all: build test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

fmt:
	gofmt -w .

fmt-check:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

test:
	$(GO) test ./...

race:
	$(GO) test -race ./internal/core/... ./internal/buffer/... \
		./internal/proto/... ./internal/loadgen/... ./internal/upstream/...

bench:
	$(GO) test -bench=. -benchmem -run='^$$' .

bench-smoke:
	$(GO) test -bench=BenchmarkSchedulerScaling -benchtime=100x -run='^$$' .

# Connection-churn smoke: shared upstream pool vs per-client dials, small
# parameters (also run by the CI bench-smoke job).
bench-churn:
	$(GO) run ./cmd/flickbench -quick churn

# Short-budget native fuzzing of every protocol decoder plus the grammar
# round-trip (go test -fuzz accepts one target per invocation). The
# checked-in corpora under testdata/fuzz/ run on every plain `make test` too.
FUZZTIME ?= 10s

fuzz-smoke:
	$(GO) test ./internal/proto/http -run='^$$' -fuzz=FuzzHTTPDecode -fuzztime=$(FUZZTIME)
	$(GO) test ./internal/proto/memcache -run='^$$' -fuzz=FuzzMemcacheDecode -fuzztime=$(FUZZTIME)
	$(GO) test ./internal/proto/hadoop -run='^$$' -fuzz=FuzzHadoopDecode -fuzztime=$(FUZZTIME)
	$(GO) test ./internal/grammar -run='^$$' -fuzz=FuzzGrammarRoundTrip -fuzztime=$(FUZZTIME)

ci: build vet fmt-check test race bench-smoke bench-churn fuzz-smoke
