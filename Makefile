# Targets mirror .github/workflows/ci.yml so local runs reproduce CI.

GO ?= go

.PHONY: all build vet fmt fmt-check test race bench bench-smoke ci

all: build test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

fmt:
	gofmt -w .

fmt-check:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

test:
	$(GO) test ./...

race:
	$(GO) test -race ./internal/core/... ./internal/buffer/...

bench:
	$(GO) test -bench=. -benchmem -run='^$$' .

bench-smoke:
	$(GO) test -bench=BenchmarkSchedulerScaling -benchtime=100x -run='^$$' .

ci: build vet fmt-check test race bench-smoke
