# Targets mirror .github/workflows/ci.yml so local runs reproduce CI.

GO ?= go

.PHONY: all build vet fmt fmt-check test race bench bench-smoke bench-churn bench-rebalance bench-hotkey bench-shard admin-smoke origin-smoke check-docs fuzz-smoke ci

all: build test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

fmt:
	gofmt -w .

fmt-check:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

test:
	$(GO) test ./...

race:
	$(GO) test -race ./internal/core/... ./internal/buffer/... \
		./internal/proto/... ./internal/loadgen/... ./internal/upstream/... \
		./internal/backend/... ./internal/apps/... ./internal/cache/... \
		./internal/topology/... ./internal/admin/... ./internal/metrics/...

bench:
	$(GO) test -bench=. -benchmem -run='^$$' .

bench-smoke:
	$(GO) test -bench=BenchmarkSchedulerScaling -benchtime=100x -run='^$$' .

# Connection-churn smoke: shared upstream pool vs per-client dials, small
# parameters (also run by the CI bench-smoke job).
bench-churn:
	$(GO) run ./cmd/flickbench -quick churn

# Live-topology smoke: consistent-hash ring vs mod-B across a B→B+1
# scale-out under load, plus the hot-key skew pair whose max-load column
# separates the plain ring from the bounded-load ring (also run by the
# CI bench-smoke job).
bench-rebalance:
	$(GO) run ./cmd/flickbench -quick rebalance

# Hot-key response-cache smoke: the cached proxy vs the plain proxy
# under the identical seeded 50%-hot workload — offload, hit ratio and
# cross-arm byte-identity — followed by the conditional freshness arm
# (ETagged origin, short TTL, stale-while-revalidate across expiries;
# also run by the CI bench-smoke job).
bench-hotkey:
	$(GO) run ./cmd/flickbench -quick hotkey

# Control-plane smoke: start flickrun with the admin API, exercise
# /healthz, /counters and a PUT /topology scale-out over HTTP, and
# assert the change is visible in GET /topology (also run by the CI
# admin-smoke step). Backends are fake addresses — upstream dials are
# lazy, so the control plane works without live backends.
admin-smoke:
	./scripts/admin_smoke.sh

# Wire-level origin smoke: flickrun's httplb fronts a stock net/http
# origin (cmd/chunkedorigin) over kernel TCP; fetches of the
# Content-Length, chunked, and conditional-304 routes through the
# balancer must be byte-identical to direct fetches (also run by the CI
# origin-smoke job).
origin-smoke:
	./scripts/origin_smoke.sh

# Upstream-sharding microbenchmark: leased-session round trips with one
# pool shard per core vs one shared pool — the write-lock contention the
# per-worker sharding removes (also run by the CI bench-smoke job).
bench-shard:
	$(GO) test ./internal/upstream -bench=BenchmarkUpstreamShardScaling -benchtime=500x -run='^$$'

# Documentation gate: every relative markdown link (and intra-doc
# anchor) resolves and every exported identifier in the data-path
# packages has a doc comment.
DOC_PKGS = internal/upstream,internal/backend,internal/buffer,internal/core,internal/apps,internal/bench,internal/cache,internal/metrics,internal/admin,internal/topology,internal/proto/memcache,internal/proto/http,internal/tools/docscheck

check-docs:
	$(GO) run ./internal/tools/docscheck -pkgs $(DOC_PKGS) README.md docs/ARCHITECTURE.md docs/PERFORMANCE.md

# Short-budget native fuzzing of every protocol decoder plus the grammar
# round-trip (go test -fuzz accepts one target per invocation). The
# checked-in corpora under testdata/fuzz/ run on every plain `make test` too.
FUZZTIME ?= 10s

fuzz-smoke:
	$(GO) test ./internal/proto/http -run='^$$' -fuzz=FuzzHTTPDecode -fuzztime=$(FUZZTIME)
	$(GO) test ./internal/proto/memcache -run='^$$' -fuzz=FuzzMemcacheDecode -fuzztime=$(FUZZTIME)
	$(GO) test ./internal/proto/hadoop -run='^$$' -fuzz=FuzzHadoopDecode -fuzztime=$(FUZZTIME)
	$(GO) test ./internal/grammar -run='^$$' -fuzz=FuzzGrammarRoundTrip -fuzztime=$(FUZZTIME)

ci: build vet fmt-check check-docs test race bench-smoke bench-churn bench-rebalance bench-hotkey bench-shard admin-smoke origin-smoke fuzz-smoke
