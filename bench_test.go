// Benchmarks regenerating the paper's evaluation (§6), one per table/figure
// plus the DESIGN.md ablations. These run with reduced parameters so that
// `go test -bench=. -benchmem` completes in minutes; cmd/flickbench runs
// the full-scale versions. Custom metrics carry the figures' units
// (requests/s, Mb/s, per-class completion milliseconds).
package flick

import (
	"runtime"
	"testing"
	"time"

	"flick/internal/bench"
)

const cellDuration = time.Second

// reportHTTP publishes a web-server/LB cell as benchmark metrics.
func reportHTTP(b *testing.B, reqs float64, mean time.Duration, errs uint64) {
	b.ReportMetric(reqs, "req/s")
	b.ReportMetric(float64(mean.Microseconds()), "µs-mean")
	b.ReportMetric(float64(errs), "errors")
}

// BenchmarkWebServerPersistent is the §6.3 static-web-server comparison
// with keep-alive connections (paper: FLICK 306k / mTCP 380k / Apache 159k
// / Nginx 217k req/s).
func BenchmarkWebServerPersistent(b *testing.B) {
	for _, sys := range []bench.System{bench.SysFlick, bench.SysFlickMTCP, bench.SysApache, bench.SysNginx} {
		b.Run(string(sys), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				pts, err := bench.RunWebServer(bench.WebServerConfig{
					Systems:    []bench.System{sys},
					Clients:    []int{64},
					Persistent: true,
					Duration:   cellDuration,
				})
				if err != nil {
					b.Fatal(err)
				}
				reportHTTP(b, pts[0].Throughput, pts[0].MeanLatency, pts[0].Errors)
			}
		})
	}
}

// BenchmarkWebServerNonPersistent is the §6.3 comparison with one TCP
// connection per request (paper: FLICK 45k / mTCP 193k / Apache 35k /
// Nginx 44k req/s).
func BenchmarkWebServerNonPersistent(b *testing.B) {
	for _, sys := range []bench.System{bench.SysFlick, bench.SysFlickMTCP, bench.SysApache, bench.SysNginx} {
		b.Run(string(sys), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				pts, err := bench.RunWebServer(bench.WebServerConfig{
					Systems:    []bench.System{sys},
					Clients:    []int{64},
					Persistent: false,
					Duration:   cellDuration,
				})
				if err != nil {
					b.Fatal(err)
				}
				reportHTTP(b, pts[0].Throughput, pts[0].MeanLatency, pts[0].Errors)
			}
		})
	}
}

// BenchmarkFig4HTTPLoadBalancerPersistent reproduces Figures 4a/4b.
func BenchmarkFig4HTTPLoadBalancerPersistent(b *testing.B) {
	for _, sys := range []bench.System{bench.SysFlick, bench.SysFlickMTCP, bench.SysApache, bench.SysNginx} {
		b.Run(string(sys), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				pts, err := bench.RunFig4(bench.Fig4Config{
					Systems:    []bench.System{sys},
					Clients:    []int{64},
					Backends:   10,
					Persistent: true,
					Duration:   cellDuration,
				})
				if err != nil {
					b.Fatal(err)
				}
				reportHTTP(b, pts[0].Throughput, pts[0].MeanLatency, pts[0].Errors)
			}
		})
	}
}

// BenchmarkFig4HTTPLoadBalancerNonPersistent reproduces Figures 4c/4d: the
// kernel-stack FLICK falls below the baselines (no backend connection
// reuse), the user-space stack restores the lead.
func BenchmarkFig4HTTPLoadBalancerNonPersistent(b *testing.B) {
	for _, sys := range []bench.System{bench.SysFlick, bench.SysFlickMTCP, bench.SysApache, bench.SysNginx} {
		b.Run(string(sys), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				pts, err := bench.RunFig4(bench.Fig4Config{
					Systems:    []bench.System{sys},
					Clients:    []int{64},
					Backends:   10,
					Persistent: false,
					Duration:   cellDuration,
				})
				if err != nil {
					b.Fatal(err)
				}
				reportHTTP(b, pts[0].Throughput, pts[0].MeanLatency, pts[0].Errors)
			}
		})
	}
}

// BenchmarkFig5MemcachedProxy reproduces Figure 5's core-scaling sweep
// (FLICK scales with cores; Moxi saturates early on shared-structure
// contention).
func BenchmarkFig5MemcachedProxy(b *testing.B) {
	for _, sys := range []bench.System{bench.SysFlick, bench.SysFlickMTCP, bench.SysMoxi} {
		for _, cores := range []int{1, 4, 8} {
			b.Run(string(sys)+"/cores="+itoa(cores), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					pts, err := bench.RunFig5(bench.Fig5Config{
						Systems:  []bench.System{sys},
						Cores:    []int{cores},
						Clients:  64,
						Backends: 10,
						Duration: cellDuration,
					})
					if err != nil {
						b.Fatal(err)
					}
					reportHTTP(b, pts[0].Throughput, pts[0].MeanLatency, pts[0].Errors)
				}
			})
		}
	}
}

// BenchmarkFig6HadoopAggregator reproduces Figure 6: aggregator throughput
// versus cores for the three word lengths.
func BenchmarkFig6HadoopAggregator(b *testing.B) {
	for _, wl := range []int{8, 12, 16} {
		for _, cores := range []int{1, 4, 8} {
			b.Run("wc"+itoa(wl)+"/cores="+itoa(cores), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					pts, err := bench.RunFig6(bench.Fig6Config{
						Cores:      []int{cores},
						WordLens:   []int{wl},
						Mappers:    8,
						BytesPer:   4 << 20,
						UseUserNet: true,
					})
					if err != nil {
						b.Fatal(err)
					}
					b.ReportMetric(pts[0].ThroughputMbps, "Mb/s")
				}
			})
		}
	}
}

// BenchmarkFig7ResourceSharing reproduces Figure 7: light/heavy completion
// under the three scheduling policies.
func BenchmarkFig7ResourceSharing(b *testing.B) {
	for _, policy := range []string{"cooperative", "non-cooperative", "round-robin"} {
		b.Run(policy, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				pts, err := bench.RunFig7(bench.Fig7Config{
					Tasks:        200,
					ItemsPerTask: 64,
					Workers:      4,
				})
				if err != nil {
					b.Fatal(err)
				}
				for _, p := range pts {
					if p.Policy == policy {
						b.ReportMetric(float64(p.LightCompletion.Milliseconds()), "light-ms")
						b.ReportMetric(float64(p.HeavyCompletion.Milliseconds()), "heavy-ms")
						b.ReportMetric(float64(p.Total.Milliseconds()), "total-ms")
					}
				}
			}
		})
	}
}

// BenchmarkSchedulerScaling sweeps the scheduler worker count over a
// fan-out/fan-in task graph: the paper's linear-scaling claim (§6) reduced
// to the scheduler itself. Throughput (items/s) should grow monotonically
// from 1 worker up to the hardware's parallelism; the steal/park/wakeup
// metrics expose where the sharded design spends its coordination budget.
func BenchmarkSchedulerScaling(b *testing.B) {
	// Sweep to GOMAXPROCS, but always cover 1→4: on a small host the
	// multi-worker cells measure oversubscription, where a global-lock
	// scheduler collapses and the sharded design should stay flat.
	maxWorkers := runtime.GOMAXPROCS(0)
	if maxWorkers < 4 {
		maxWorkers = 4
	}
	for w := 1; w <= maxWorkers; w *= 2 {
		b.Run("workers="+itoa(w), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				pt := bench.RunSchedulerScaling(bench.SchedScaleConfig{
					Workers:        w,
					Sources:        8,
					ItemsPerSource: 2048,
				})
				b.ReportMetric(pt.ItemsPerSec(), "items/s")
				b.ReportMetric(pt.OpsPerSec(), "ops/s")
				b.ReportMetric(float64(pt.Stats.Stolen), "steals")
				b.ReportMetric(float64(pt.Stats.Parks), "parks")
				b.ReportMetric(float64(pt.Stats.Wakeups), "wakeups")
				b.ReportMetric(float64(pt.Stats.Overflow), "overflow")
			}
		})
	}
}

// BenchmarkAblationTimeslice sweeps the cooperative quantum (§5's 10–100µs
// band plus a coarse 1ms point).
func BenchmarkAblationTimeslice(b *testing.B) {
	for _, q := range []time.Duration{10 * time.Microsecond, 100 * time.Microsecond, time.Millisecond} {
		b.Run(q.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				pts := bench.RunTimesliceAblation([]time.Duration{q}, 4)
				b.ReportMetric(float64(pts[0].LightCompletion.Milliseconds()), "light-ms")
				b.ReportMetric(float64(pts[0].Total.Milliseconds()), "total-ms")
			}
		})
	}
}

// BenchmarkAblationAffinity compares hash-pinned worker queues + stealing
// against a single shared queue.
func BenchmarkAblationAffinity(b *testing.B) {
	for _, affinity := range []bool{true, false} {
		name := "affinity"
		if !affinity {
			name = "shared-queue"
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				pts := bench.RunAffinityAblation(8, 256, 64)
				idx := 0
				if !affinity {
					idx = 1
				}
				b.ReportMetric(float64(pts[idx].Total.Microseconds()), "µs-total")
				b.ReportMetric(float64(pts[idx].Stats.Stolen), "steals")
			}
		})
	}
}

// BenchmarkAblationGraphPool compares pooled against per-connection graph
// construction under non-persistent load.
func BenchmarkAblationGraphPool(b *testing.B) {
	for _, pooled := range []bool{true, false} {
		name := "pooled"
		if !pooled {
			name = "construct-per-conn"
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				pts, err := bench.RunGraphPoolAblation(32, cellDuration)
				if err != nil {
					b.Fatal(err)
				}
				idx := 0
				if !pooled {
					idx = 1
				}
				b.ReportMetric(pts[idx].Throughput, "req/s")
			}
		})
	}
}

// BenchmarkAblationParserPruning compares full-fidelity Memcached parsing
// against the key-only pruned parser (§4.2).
func BenchmarkAblationParserPruning(b *testing.B) {
	for _, pruned := range []bool{false, true} {
		name := "full"
		if pruned {
			name = "pruned"
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				pts := bench.RunParserPruningAblation(100000, 4096)
				idx := 0
				if pruned {
					idx = 1
				}
				b.ReportMetric(pts[idx].MsgsPerS, "msgs/s")
			}
		})
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [8]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}
