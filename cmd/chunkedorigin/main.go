// Command chunkedorigin serves a stock net/http HTTP/1.1 origin over real
// (kernel) TCP, for wire-level smoke testing of the middlebox data path:
//
//	chunkedorigin -listen 127.0.0.1:9001
//
// Routes (shared with the in-process bench origin):
//
//	/payload   Content-Length-framed body
//	/chunked   the same body streamed as chunked transfer-encoding
//	/cached    conditional resource; If-None-Match on its ETag answers
//	           a bodiless 304 Not Modified
//
// The Date header is suppressed on every route so repeated fetches of the
// same URI are byte-identical — front it with `flickrun -service httplb`
// and diff fetches through the balancer against direct fetches
// (scripts/origin_smoke.sh, make origin-smoke). The process serves until
// interrupted.
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"

	"flick/internal/bench"
	"flick/internal/netstack"
)

func main() {
	var (
		listen  = flag.String("listen", "127.0.0.1:9001", "listen address")
		payload = flag.Int("payload", 137, "payload size in bytes")
	)
	flag.Parse()

	o, err := bench.NewRealOrigin(netstack.KernelTCP{}, *listen, *payload)
	if err != nil {
		fmt.Fprintf(os.Stderr, "chunkedorigin: %v\n", err)
		os.Exit(1)
	}
	defer o.Close()
	fmt.Printf("chunkedorigin: serving on %s (%s, %s, %s; If-None-Match %s answers 304)\n",
		o.Addr(), bench.OriginPayloadURI, bench.OriginChunkedURI,
		bench.OriginCachedURI, bench.OriginETag)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt)
	<-sig
	fmt.Println("\nchunkedorigin: shutting down")
}
