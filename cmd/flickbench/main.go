// Command flickbench reproduces the paper's evaluation (§6): one
// subcommand per table/figure plus the ablation studies.
//
//	flickbench websrv        static web server (§6.3 text)
//	flickbench fig4          HTTP load balancer (persistent + non-persistent)
//	flickbench fig5          Memcached proxy core scaling
//	flickbench fig6          Hadoop aggregator core scaling
//	flickbench fig7          scheduling-policy fairness
//	flickbench schedscale    scheduler worker-count scaling sweep
//	flickbench churn         connection churn: shared upstream pool vs per-client dials
//	flickbench rebalance     live B→B+1 scale-out: consistent-hash ring vs mod-B
//	flickbench hotkey        hot-key sweep: cached vs plain proxy under zipfian keys
//	flickbench ablations     design-choice ablations
//	flickbench all           everything above
//
// -quick shrinks every experiment for a fast sanity pass;
// -no-upstream-pool makes fig4/fig5 dial backends per client (ablation);
// -real-origin fronts stock net/http origins serving chunked responses in
// fig4 (each cell first proves byte-identical passthrough against a direct
// fetch); -quiet-batch turns each churn connection into a GetQ/GetQ/Noop
// quiet-get batch.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	"flick/internal/bench"
)

func main() {
	var (
		quick   = flag.Bool("quick", false, "small parameters for a fast pass")
		dur     = flag.Duration("duration", 2*time.Second, "duration per measured cell")
		workers = flag.Int("workers", runtime.GOMAXPROCS(0), "FLICK worker threads")
		noPool  = flag.Bool("no-upstream-pool", false, "dial backends per client instead of sharing pipelined upstream connections")
		upShard = flag.Int("upstream-shards", 0, "upstream pool shards for fig4/fig5 (0: one per worker; 1: single shared pool)")
		realOrg = flag.Bool("real-origin", false, "fig4: front stock net/http origins serving chunked responses (verifies byte-identical passthrough)")
		quietB  = flag.Bool("quiet-batch", false, "churn: each connection issues a GetQ/GetQ/Noop quiet batch instead of one GET (pins backends=1)")
	)
	flag.Parse()
	cmd := flag.Arg(0)
	if cmd == "" {
		cmd = "all"
	}

	clients := []int{100, 200, 400, 800, 1600}
	cores := []int{1, 2, 4, 8, 16}
	mapperBytes := int64(16 << 20)
	fig7Tasks := 200
	if *quick {
		clients = []int{16, 64}
		cores = []int{1, 4}
		*dur = 400 * time.Millisecond
		mapperBytes = 1 << 20
		fig7Tasks = 40
	}

	run := func(name string, f func() error) {
		if cmd != "all" && cmd != name {
			return
		}
		if err := f(); err != nil {
			fmt.Fprintf(os.Stderr, "flickbench %s: %v\n", name, err)
			os.Exit(1)
		}
	}

	run("websrv", func() error {
		for _, persistent := range []bool{true, false} {
			pts, err := bench.RunWebServer(bench.WebServerConfig{
				Clients:    clients,
				Persistent: persistent,
				Duration:   *dur,
				Workers:    *workers,
			})
			if err != nil {
				return err
			}
			fmt.Println(bench.WebServerTable(pts, persistent))
		}
		return nil
	})

	run("fig4", func() error {
		for _, persistent := range []bool{true, false} {
			pts, err := bench.RunFig4(bench.Fig4Config{
				Clients:        clients,
				Backends:       10,
				Persistent:     persistent,
				Duration:       *dur,
				Workers:        *workers,
				NoUpstreamPool: *noPool,
				UpstreamShards: *upShard,
				RealOrigin:     *realOrg,
			})
			if err != nil {
				return err
			}
			fmt.Println(bench.Fig4Table(pts, persistent))
		}
		return nil
	})

	run("fig5", func() error {
		pts, err := bench.RunFig5(bench.Fig5Config{
			Cores:          cores,
			Clients:        128,
			Backends:       10,
			Duration:       *dur,
			NoUpstreamPool: *noPool,
			UpstreamShards: *upShard,
		})
		if err != nil {
			return err
		}
		fmt.Println(bench.Fig5Table(pts))
		return nil
	})

	run("fig6", func() error {
		pts, err := bench.RunFig6(bench.Fig6Config{
			Cores:    cores,
			WordLens: []int{8, 12, 16},
			Mappers:  8,
			BytesPer: mapperBytes,
		})
		if err != nil {
			return err
		}
		fmt.Println(bench.Fig6Table(pts))
		return nil
	})

	run("fig7", func() error {
		// Fairness only shows when tasks far outnumber workers (the
		// paper's shared middlebox); cap the worker pool at 4.
		fig7Workers := *workers
		if fig7Workers > 4 {
			fig7Workers = 4
		}
		pts, err := bench.RunFig7(bench.Fig7Config{
			Tasks:        fig7Tasks,
			ItemsPerTask: 256,
			Workers:      fig7Workers,
		})
		if err != nil {
			return err
		}
		fmt.Println(bench.Fig7Table(pts))
		return nil
	})

	run("schedscale", func() error {
		items := 4096
		if *quick {
			items = 512
		}
		// Sweep powers of two below -workers, then the requested count
		// itself, so an explicit -workers value is always measured.
		var pts []bench.SchedScalePoint
		for w := 1; w < *workers; w *= 2 {
			pts = append(pts, bench.RunSchedulerScaling(bench.SchedScaleConfig{
				Workers:        w,
				ItemsPerSource: items,
			}))
		}
		pts = append(pts, bench.RunSchedulerScaling(bench.SchedScaleConfig{
			Workers:        *workers,
			ItemsPerSource: items,
		}))
		fmt.Println(bench.SchedScaleTable(pts))
		fmt.Printf("counters at %d workers: %s\n\n",
			pts[len(pts)-1].Workers, pts[len(pts)-1].Stats.Metrics())
		return nil
	})

	run("rebalance", func() error {
		rc := bench.RebalanceConfig{
			Clients:  16,
			Backends: 4,
			Keys:     2000,
			Duration: *dur * 2,
			Workers:  *workers,
		}
		if *quick {
			rc.Clients, rc.Keys, rc.Duration = 8, 500, 800*time.Millisecond
		}
		var pts []bench.RebalancePoint
		for _, sys := range []bench.System{bench.SysFlick, bench.SysFlickMTCP} {
			rc.System = sys
			pair, err := bench.RunRebalancePair(rc)
			if err != nil {
				return err
			}
			pts = append(pts, pair...)
		}
		// Hot-key skew: plain ring vs bounded-load ring (the max-load
		// column is where they separate).
		rc.System = bench.SysFlick
		skew, err := bench.RunRebalanceSkewPair(rc)
		if err != nil {
			return err
		}
		pts = append(pts, skew...)
		fmt.Println(bench.RebalanceTable(pts))
		return nil
	})

	run("churn", func() error {
		cc := bench.ChurnConfig{
			Clients:    64,
			Conns:      4000,
			Backends:   4,
			Workers:    *workers,
			QuietBatch: *quietB,
		}
		if *quick {
			cc.Clients, cc.Conns, cc.Backends = 16, 400, 2
		}
		var pts []bench.ChurnPoint
		for _, sys := range []bench.System{bench.SysFlick, bench.SysFlickMTCP} {
			cc.System = sys
			rows, err := bench.RunChurnSweep(cc)
			if err != nil {
				return err
			}
			pts = append(pts, rows...)
		}
		fmt.Println(bench.ChurnTable(pts))
		return nil
	})

	run("hotkey", func() error {
		hc := bench.HotkeyConfig{
			Cores:    *workers,
			Clients:  32,
			Backends: 4,
			Keys:     4096,
			HotShare: 0.5,
			ZipfS:    1.3,
			Duration: *dur,
		}
		if *quick {
			hc.Clients, hc.Keys, hc.Backends = 8, 256, 2
		}
		pts, err := bench.RunHotkey(hc)
		if err != nil {
			return err
		}
		fmt.Println(bench.HotkeyTable(pts))
		cpt, err := bench.RunHotkeyConditional(bench.HotkeyConfig{
			Cores:    *workers,
			Clients:  hc.Clients,
			Duration: *dur,
		})
		if err != nil {
			return err
		}
		fmt.Println(bench.ConditionalTable(cpt))
		return nil
	})

	run("ablations", func() error {
		fmt.Println(bench.TimesliceTable(bench.RunTimesliceAblation(nil, *workers)))
		fmt.Println(bench.AffinityTable(bench.RunAffinityAblation(*workers, 128, 64)))
		pool, err := bench.RunGraphPoolAblation(64, *dur)
		if err != nil {
			return err
		}
		fmt.Println(bench.PoolTable(pool))
		fmt.Println(bench.PruningTable(bench.RunParserPruningAblation(200000, 4096)))
		return nil
	})

	switch cmd {
	case "websrv", "fig4", "fig5", "fig6", "fig7", "schedscale", "churn", "rebalance", "hotkey", "ablations", "all":
	default:
		fmt.Fprintf(os.Stderr, "flickbench: unknown experiment %q\n", cmd)
		os.Exit(2)
	}
}
