// Command flickc is the FLICK compiler front end: it parses, type-checks
// and compiles a .flick program, reporting the resulting task graph(s).
//
// Usage:
//
//	flickc [-backends n=SIZE] [-dump] program.flick
//
// Channel-array sizes are supplied with repeated -array flags
// (e.g. -array backends=4). Types without serialisation annotations need
// codec bindings at deployment time and are reported as such.
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"

	"flick/internal/compiler"
	"flick/internal/core"
	"flick/internal/grammar"
	"flick/internal/lang"
	"flick/internal/proto/hadoop"
	phttp "flick/internal/proto/http"
	"flick/internal/proto/memcache"
	"flick/internal/types"
)

type arrayFlags map[string]int

func (a arrayFlags) String() string { return fmt.Sprint(map[string]int(a)) }

func (a arrayFlags) Set(s string) error {
	name, val, ok := strings.Cut(s, "=")
	if !ok {
		return fmt.Errorf("expected name=size, got %q", s)
	}
	n, err := strconv.Atoi(val)
	if err != nil {
		return err
	}
	a[name] = n
	return nil
}

// builtinCodec resolves the -codec flag values to bundled wire formats.
func builtinCodec(name string) (compiler.CodecPair, bool) {
	switch name {
	case "memcached":
		return compiler.CodecPair{Decode: memcache.Codec, Encode: memcache.Codec}, true
	case "hadoop-kv":
		return compiler.CodecPair{Decode: hadoop.Codec, Encode: hadoop.Codec}, true
	case "http-request":
		return compiler.CodecPair{Decode: phttp.RequestFormat{}, Encode: phttp.RequestFormat{}}, true
	case "http-response":
		return compiler.CodecPair{Decode: phttp.ResponseFormat{}, Encode: phttp.ResponseFormat{}}, true
	case "line":
		c := grammar.LineUnit().MustCompile()
		return compiler.CodecPair{Decode: c, Encode: c}, true
	}
	return compiler.CodecPair{}, false
}

type codecFlags map[string]compiler.CodecPair

func (c codecFlags) String() string { return fmt.Sprint(len(c)) }

func (c codecFlags) Set(s string) error {
	typeName, codecName, ok := strings.Cut(s, "=")
	if !ok {
		return fmt.Errorf("expected type=codec, got %q", s)
	}
	pair, ok := builtinCodec(codecName)
	if !ok {
		return fmt.Errorf("unknown codec %q (memcached, hadoop-kv, http-request, http-response, line)", codecName)
	}
	c[typeName] = pair
	return nil
}

func main() {
	arrays := arrayFlags{}
	codecs := codecFlags{}
	var (
		checkOnly = flag.Bool("check", false, "stop after type checking")
		dump      = flag.Bool("dump", false, "dump the compiled task graph structure")
	)
	flag.Var(arrays, "array", "channel array size, name=N (repeatable)")
	flag.Var(codecs, "codec", "bind a record type to a built-in codec, type=codec (repeatable)")
	flag.Parse()

	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: flickc [flags] program.flick")
		flag.PrintDefaults()
		os.Exit(2)
	}
	src, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fatal(err)
	}

	ast, err := lang.Parse(string(src))
	if err != nil {
		fatal(err)
	}
	checked, err := types.Check(ast)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("%s: %d type(s), %d process(es), %d function(s) — type check OK\n",
		flag.Arg(0), len(checked.Types), len(checked.Procs), len(checked.Funs))
	if *checkOnly {
		return
	}

	prog, err := compiler.Compile(string(src), compiler.Config{
		ArraySizes: arrays,
		Codecs:     codecs,
	})
	if err != nil {
		fatal(err)
	}

	var procNames []string
	for name := range checked.Procs {
		procNames = append(procNames, name)
	}
	sort.Strings(procNames)
	for _, name := range procNames {
		pg, err := prog.Proc(name)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("\nprocess %s: task graph with %d tasks\n", name, len(pg.Template.Nodes()))
		if *dump {
			dumpGraph(pg)
		}
	}
}

func dumpGraph(pg *compiler.ProcGraph) {
	for _, n := range pg.Template.Nodes() {
		codec := ""
		if n.Codec != nil {
			codec = " codec=" + n.Codec.FormatName()
		}
		fmt.Printf("  task %2d %-7s %s%s\n", n.ID, n.Kind, n.Name, codec)
	}
	var names []string
	for name := range pg.Ports {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		fmt.Printf("  port %-12s -> indices %v\n", name, pg.Ports[name])
	}
	_ = core.NodeInput
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "flickc:", err)
	os.Exit(1)
}
