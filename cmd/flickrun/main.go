// Command flickrun deploys one of the bundled FLICK services on the local
// platform over real (kernel) TCP, for interactive use:
//
//	flickrun -service web -listen 127.0.0.1:8080
//	flickrun -service httplb -listen 127.0.0.1:8080 -backend 127.0.0.1:9001 -backend 127.0.0.1:9002
//	flickrun -service memcachedproxy -listen 127.0.0.1:11211 -backend 127.0.0.1:11212
//
// With -cache the proxy and the HTTP load balancer serve repeated reads
// from an in-network response cache (worker-sharded, single-flight miss
// coalescing); -cache-ttl and -cache-max-bytes bound staleness and
// resident bytes, -cache-stale-ttl serves stale entries while a
// background conditional refresh revalidates them, and
// -cache-negative-ttl bounds negative (key-absence) entries.
// GET /topology reports the live hit ratio.
//
// Live backend topology: with -live-topology the backend set can change
// while serving. Every update path converges on the same drain-correct
// transition:
//
//   - File + SIGHUP: write "addr" or "addr weight" lines to the
//     -topology-file and send SIGHUP; the process re-reads the file and
//     rebuilds the ring without dropping a connection.
//   - Admin API: with -admin-addr, PUT /topology installs a JSON backend
//     list over HTTP (and GET /topology, /counters, /healthz inspect the
//     live state). See ARCHITECTURE.md's control-plane section.
//   - HTTP poll: -topology-poll-url follows another instance's admin
//     GET /topology, so a fleet tracks one source of truth.
//
// Example:
//
//	flickrun -service memcachedproxy -live-topology -max-backends 8 \
//	    -topology-file backends.txt -probe-interval 250ms \
//	    -admin-addr 127.0.0.1:7070 \
//	    -backend 127.0.0.1:11212 -backend 127.0.0.1:11213
//	# later: edit backends.txt, then
//	kill -HUP $(pidof flickrun)
//	# or over HTTP:
//	curl -X PUT -d '{"backends":["127.0.0.1:11212",{"addr":"127.0.0.1:11214","weight":2}]}' \
//	    http://127.0.0.1:7070/topology
//
// The process serves until interrupted.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"flick/internal/apps"
	"flick/internal/core"
	"flick/internal/topology"
)

type backendList []string

func (b *backendList) String() string { return fmt.Sprint([]string(*b)) }

func (b *backendList) Set(s string) error {
	*b = append(*b, s)
	return nil
}

func main() {
	var backends backendList
	var (
		service = flag.String("service", "web", "service: web | httplb | memcachedproxy | memcachedrouter | hadoopagg")
		listen  = flag.String("listen", "127.0.0.1:8080", "listen address")
		workers = flag.Int("workers", runtime.GOMAXPROCS(0), "worker threads")
		noPool  = flag.Bool("no-upstream-pool", false, "dial backends per client instead of sharing pipelined upstream connections")
		upSize  = flag.Int("upstream-pool-size", 0, "shared upstream sockets per backend per shard (0: default)")
		upShard = flag.Int("upstream-shards", 0, "upstream pool shards (0: one per worker; 1: single shared pool)")
		liveTop = flag.Bool("live-topology", false, "route via a consistent-hash ring and accept topology updates while serving")
		maxBack = flag.Int("max-backends", 0, "channel-array capacity for -live-topology (0: current backend count)")
		topFile = flag.String("topology-file", "", "topology file (\"addr\" or \"addr weight\" per line), re-read on SIGHUP")
		pollURL = flag.String("topology-poll-url", "", "follow another instance's admin GET /topology at this URL")
		pollIv  = flag.Duration("topology-poll-interval", 2*time.Second, "poll period for -topology-poll-url")
		probeIv = flag.Duration("probe-interval", 0, "proactive upstream health-probe period (0: disabled)")
		adminAd = flag.String("admin-addr", "", "serve the admin HTTP API (GET/PUT /topology, /counters, /healthz) on this address")
		loadC   = flag.Float64("bounded-load-c", 0, "bounded-load factor c for ring routing (0: plain ring; try 1.25)")
		cacheOn = flag.Bool("cache", false, "enable the in-network response cache (memcachedproxy and httplb only)")
		cacheTT = flag.Duration("cache-ttl", 0, "response cache entry TTL (0: default)")
		cacheMB = flag.Int64("cache-max-bytes", 0, "response cache resident-byte budget (0: default)")
		cacheSW = flag.Duration("cache-stale-ttl", 0, "serve stale entries for this long past expiry while revalidating in the background (0: disabled)")
		cacheNG = flag.Duration("cache-negative-ttl", 0, "response cache negative-entry TTL (0: default; <0: disabled)")
		reqlog  = flag.Int("reqlog", 0, "log every Nth request's latency (0: disabled; unsampled requests stay zero-alloc)")
	)
	flag.Var(&backends, "backend", "backend address (repeatable)")
	flag.Parse()

	capacity := len(backends)
	if *liveTop && *maxBack > capacity {
		capacity = *maxBack
	}

	var (
		svc *apps.Service
		err error
	)
	switch *service {
	case "web":
		svc, err = apps.StaticWebServer()
	case "httplb":
		svc, err = apps.HTTPLoadBalancer(capacity)
	case "memcachedproxy":
		svc, err = apps.MemcachedProxy(capacity)
	case "memcachedrouter":
		svc, err = apps.MemcachedRouter(capacity)
	case "hadoopagg":
		svc, err = apps.HadoopAggregator(8)
	default:
		fmt.Fprintf(os.Stderr, "flickrun: unknown service %q\n", *service)
		os.Exit(2)
	}
	if err != nil {
		fatal(err)
	}
	svc.Upstream = apps.UpstreamOptions{
		Disable:       *noPool,
		PoolSize:      *upSize,
		Shards:        *upShard,
		ProbeInterval: *probeIv,
	}
	svc.Topology = apps.TopologyOptions{
		Live:         *liveTop,
		BoundedLoadC: *loadC,
	}
	svc.Cache = apps.CacheOptions{
		Enable:      *cacheOn,
		TTL:         *cacheTT,
		MaxBytes:    *cacheMB,
		StaleTTL:    *cacheSW,
		NegativeTTL: *cacheNG,
	}

	p := core.NewPlatform(core.Config{Workers: *workers})
	defer p.Close()
	deployed, err := svc.Deploy(p, *listen, backends)
	if err != nil {
		fatal(err)
	}
	defer deployed.Close()
	fmt.Printf("flickrun: %s serving on %s (%d workers, %d tasks per graph)\n",
		svc.Name, deployed.Addr(), *workers, len(svc.Graph.Template.Nodes()))

	if m := deployed.Upstreams(); m != nil {
		fmt.Printf("flickrun: shared upstream pool enabled, %d shard(s) (disable with -no-upstream-pool; -upstream-shards 1 unshards)\n",
			m.Shards())
		if *probeIv > 0 {
			fmt.Printf("flickrun: health probes every %v\n", *probeIv)
		}
	}
	if cc := deployed.ResponseCache(); cc != nil {
		fmt.Println("flickrun: response cache enabled (hit ratio in admin GET /topology, counters in /counters)")
	}
	if *reqlog > 0 {
		deployed.Latency().SetReqLog(*reqlog)
		fmt.Printf("flickrun: logging every %dth request's latency\n", *reqlog)
	}

	ctl := apps.NewControl(svc, deployed, p)
	if *adminAd != "" {
		srv, aerr := ctl.ServeAdmin(*adminAd)
		if aerr != nil {
			fatal(aerr)
		}
		defer srv.Close()
		fmt.Printf("flickrun: admin API on http://%s (GET/PUT /topology, GET /counters, GET /latency, GET /healthz)\n", srv.Addr())
	}

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	notify := func(list []topology.Backend, uerr error) {
		if uerr != nil {
			fmt.Fprintf(os.Stderr, "flickrun: topology update: %v\n", uerr)
			return
		}
		fmt.Printf("flickrun: topology updated: %d backends %v\n", len(list), topology.Addrs(list))
		if m := deployed.Upstreams(); m != nil {
			fmt.Printf("flickrun: upstream: %d sockets, %s\n", m.Conns(), m.Counters())
		}
	}
	onSourceError := func(serr error) {
		fmt.Fprintf(os.Stderr, "flickrun: topology source: %v\n", serr)
	}

	if *liveTop {
		// SIGHUP → File source trigger: the legacy re-read-on-signal
		// behaviour as a thin adapter over the one update path.
		if *topFile != "" {
			hup := make(chan os.Signal, 1)
			signal.Notify(hup, syscall.SIGHUP)
			trigger := make(chan struct{}, 1)
			go func() {
				for range hup {
					select {
					case trigger <- struct{}{}:
					default:
					}
				}
			}()
			src := topology.File{Path: *topFile, Trigger: trigger, OnError: onSourceError}
			go func() {
				if ferr := ctl.Follow(ctx, src, notify); ferr != nil {
					fmt.Fprintf(os.Stderr, "flickrun: topology file source: %v\n", ferr)
				}
			}()
			fmt.Printf("flickrun: live topology: %d/%d backends bound; SIGHUP re-reads %s\n",
				len(backends), capacity, *topFile)
		} else {
			fmt.Printf("flickrun: live topology: %d/%d backends bound (no -topology-file; update via admin PUT /topology)\n",
				len(backends), capacity)
		}
		if *pollURL != "" {
			src := topology.Poll{URL: *pollURL, Interval: *pollIv, OnError: onSourceError}
			go func() {
				if ferr := ctl.Follow(ctx, src, notify); ferr != nil {
					fmt.Fprintf(os.Stderr, "flickrun: topology poll source: %v\n", ferr)
				}
			}()
			fmt.Printf("flickrun: following topology at %s every %v\n", *pollURL, *pollIv)
		}
	}

	sig := make(chan os.Signal, 2)
	signal.Notify(sig, os.Interrupt)
	<-sig
	if m := deployed.Upstreams(); m != nil {
		fmt.Printf("\nflickrun: upstream pool: %d sockets, %s\n", m.Conns(), m.Counters())
	}
	if cc := deployed.ResponseCache(); cc != nil {
		fmt.Printf("\nflickrun: response cache: hit ratio %.3f, %d bytes resident, %s\n",
			cc.HitRatio(), cc.BytesResident(), cc.Counters())
	}
	fmt.Println("\nflickrun: latency:")
	for _, h := range ctl.Latency() {
		fmt.Printf("  %-16s %s\n", h.Name, h.Latency)
	}
	fmt.Println("\nflickrun: shutting down")
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "flickrun: %v\n", err)
	os.Exit(1)
}
