// Command flickrun deploys one of the bundled FLICK services on the local
// platform over real (kernel) TCP, for interactive use:
//
//	flickrun -service web -listen 127.0.0.1:8080
//	flickrun -service httplb -listen 127.0.0.1:8080 -backend 127.0.0.1:9001 -backend 127.0.0.1:9002
//	flickrun -service memcachedproxy -listen 127.0.0.1:11211 -backend 127.0.0.1:11212
//
// Live backend topology: with -live-topology the backend set can change
// while serving. Write one backend address per line to the -topology-file
// and send SIGHUP; the process rebuilds the consistent-hash ring and
// applies it without dropping a connection:
//
//	flickrun -service memcachedproxy -live-topology -max-backends 8 \
//	    -topology-file backends.txt -probe-interval 250ms \
//	    -backend 127.0.0.1:11212 -backend 127.0.0.1:11213
//	# later: edit backends.txt, then
//	kill -HUP $(pidof flickrun)
//
// The process serves until interrupted.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"runtime"
	"strings"
	"syscall"

	"flick/internal/apps"
	"flick/internal/core"
)

type backendList []string

func (b *backendList) String() string { return fmt.Sprint([]string(*b)) }

func (b *backendList) Set(s string) error {
	*b = append(*b, s)
	return nil
}

func main() {
	var backends backendList
	var (
		service = flag.String("service", "web", "service: web | httplb | memcachedproxy | memcachedrouter | hadoopagg")
		listen  = flag.String("listen", "127.0.0.1:8080", "listen address")
		workers = flag.Int("workers", runtime.GOMAXPROCS(0), "worker threads")
		noPool  = flag.Bool("no-upstream-pool", false, "dial backends per client instead of sharing pipelined upstream connections")
		upSize  = flag.Int("upstream-pool-size", 0, "shared upstream sockets per backend per shard (0: default)")
		upShard = flag.Int("upstream-shards", 0, "upstream pool shards (0: one per worker; 1: single shared pool)")
		liveTop = flag.Bool("live-topology", false, "route via a consistent-hash ring and accept SIGHUP topology updates")
		maxBack = flag.Int("max-backends", 0, "channel-array capacity for -live-topology (0: current backend count)")
		topFile = flag.String("topology-file", "", "file with one backend address per line, re-read on SIGHUP")
		probeIv = flag.Duration("probe-interval", 0, "proactive upstream health-probe period (0: disabled)")
	)
	flag.Var(&backends, "backend", "backend address (repeatable)")
	flag.Parse()

	capacity := len(backends)
	if *liveTop && *maxBack > capacity {
		capacity = *maxBack
	}

	var (
		svc *apps.Service
		err error
	)
	switch *service {
	case "web":
		svc, err = apps.StaticWebServer()
	case "httplb":
		svc, err = apps.HTTPLoadBalancer(capacity)
	case "memcachedproxy":
		svc, err = apps.MemcachedProxy(capacity)
	case "memcachedrouter":
		svc, err = apps.MemcachedRouter(capacity)
	case "hadoopagg":
		svc, err = apps.HadoopAggregator(8)
	default:
		fmt.Fprintf(os.Stderr, "flickrun: unknown service %q\n", *service)
		os.Exit(2)
	}
	if err != nil {
		fatal(err)
	}
	svc.NoUpstreamPool = *noPool
	svc.UpstreamPoolSize = *upSize
	svc.UpstreamShards = *upShard
	svc.LiveTopology = *liveTop
	svc.ProbeInterval = *probeIv

	p := core.NewPlatform(core.Config{Workers: *workers})
	defer p.Close()
	deployed, err := svc.Deploy(p, *listen, backends)
	if err != nil {
		fatal(err)
	}
	defer deployed.Close()
	fmt.Printf("flickrun: %s serving on %s (%d workers, %d tasks per graph)\n",
		svc.Name, deployed.Addr(), *workers, len(svc.Graph.Template.Nodes()))

	if m := deployed.Upstreams(); m != nil {
		fmt.Printf("flickrun: shared upstream pool enabled, %d shard(s) (disable with -no-upstream-pool; -upstream-shards 1 unshards)\n",
			m.Shards())
		if *probeIv > 0 {
			fmt.Printf("flickrun: health probes every %v\n", *probeIv)
		}
	}
	if *liveTop {
		fmt.Printf("flickrun: live topology: %d/%d backends bound; SIGHUP re-reads %s\n",
			len(backends), capacity, topologySource(*topFile))
	}

	sig := make(chan os.Signal, 2)
	signal.Notify(sig, os.Interrupt)
	if *liveTop {
		signal.Notify(sig, syscall.SIGHUP)
	}
	for s := range sig {
		if s != syscall.SIGHUP {
			break
		}
		addrs, rerr := readTopology(*topFile)
		if rerr != nil {
			fmt.Fprintf(os.Stderr, "flickrun: SIGHUP: %v\n", rerr)
			continue
		}
		if uerr := svc.UpdateBackends(deployed, addrs); uerr != nil {
			fmt.Fprintf(os.Stderr, "flickrun: SIGHUP: %v\n", uerr)
			continue
		}
		fmt.Printf("flickrun: topology updated: %d backends %v\n", len(addrs), addrs)
		if m := deployed.Upstreams(); m != nil {
			fmt.Printf("flickrun: upstream: %d sockets, %s\n", m.Conns(), m.Counters())
		}
	}
	if m := deployed.Upstreams(); m != nil {
		fmt.Printf("\nflickrun: upstream pool: %d sockets, %s\n", m.Conns(), m.Counters())
	}
	fmt.Println("\nflickrun: shutting down")
}

// topologySource names where SIGHUP reads the backend list from.
func topologySource(file string) string {
	if file == "" {
		return "nothing (-topology-file not set)"
	}
	return file
}

// readTopology loads one backend address per line; blank lines and
// #-comments are skipped.
func readTopology(file string) ([]string, error) {
	if file == "" {
		return nil, fmt.Errorf("no -topology-file configured")
	}
	f, err := os.Open(file)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var addrs []string
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		addrs = append(addrs, line)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(addrs) == 0 {
		return nil, fmt.Errorf("%s lists no backends", file)
	}
	return addrs, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "flickrun:", err)
	os.Exit(1)
}
