// Command flickrun deploys one of the bundled FLICK services on the local
// platform over real (kernel) TCP, for interactive use:
//
//	flickrun -service web -listen 127.0.0.1:8080
//	flickrun -service httplb -listen 127.0.0.1:8080 -backend 127.0.0.1:9001 -backend 127.0.0.1:9002
//	flickrun -service memcachedproxy -listen 127.0.0.1:11211 -backend 127.0.0.1:11212
//
// The process serves until interrupted.
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"runtime"

	"flick/internal/apps"
	"flick/internal/core"
)

type backendList []string

func (b *backendList) String() string { return fmt.Sprint([]string(*b)) }

func (b *backendList) Set(s string) error {
	*b = append(*b, s)
	return nil
}

func main() {
	var backends backendList
	var (
		service = flag.String("service", "web", "service: web | httplb | memcachedproxy | memcachedrouter | hadoopagg")
		listen  = flag.String("listen", "127.0.0.1:8080", "listen address")
		workers = flag.Int("workers", runtime.GOMAXPROCS(0), "worker threads")
		noPool  = flag.Bool("no-upstream-pool", false, "dial backends per client instead of sharing pipelined upstream connections")
		upSize  = flag.Int("upstream-pool-size", 0, "shared upstream sockets per backend (0: default)")
	)
	flag.Var(&backends, "backend", "backend address (repeatable)")
	flag.Parse()

	var (
		svc *apps.Service
		err error
	)
	switch *service {
	case "web":
		svc, err = apps.StaticWebServer()
	case "httplb":
		svc, err = apps.HTTPLoadBalancer(len(backends))
	case "memcachedproxy":
		svc, err = apps.MemcachedProxy(len(backends))
	case "memcachedrouter":
		svc, err = apps.MemcachedRouter(len(backends))
	case "hadoopagg":
		svc, err = apps.HadoopAggregator(8)
	default:
		fmt.Fprintf(os.Stderr, "flickrun: unknown service %q\n", *service)
		os.Exit(2)
	}
	if err != nil {
		fatal(err)
	}
	svc.NoUpstreamPool = *noPool
	svc.UpstreamPoolSize = *upSize

	p := core.NewPlatform(core.Config{Workers: *workers})
	defer p.Close()
	deployed, err := svc.Deploy(p, *listen, backends)
	if err != nil {
		fatal(err)
	}
	defer deployed.Close()
	fmt.Printf("flickrun: %s serving on %s (%d workers, %d tasks per graph)\n",
		svc.Name, deployed.Addr(), *workers, len(svc.Graph.Template.Nodes()))

	if m := deployed.Upstreams(); m != nil {
		fmt.Println("flickrun: shared upstream pool enabled (disable with -no-upstream-pool)")
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt)
	<-sig
	if m := deployed.Upstreams(); m != nil {
		fmt.Printf("\nflickrun: upstream pool: %d sockets, %s\n", m.Conns(), m.Counters())
	}
	fmt.Println("\nflickrun: shutting down")
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "flickrun:", err)
	os.Exit(1)
}
