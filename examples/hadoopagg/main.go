// Hadoop in-network aggregation example — the paper's Listing 3. Four
// mapper connections stream word-count pairs into the FLICK aggregator,
// whose foldt combine tree merges counts per word before anything reaches
// the reducer, cutting shuffle traffic (§2.1).
//
//	go run ./examples/hadoopagg
package main

import (
	"fmt"
	"io"
	"log"
	"sort"
	"sync"

	"flick/internal/apps"
	"flick/internal/core"
	"flick/internal/netstack"
	"flick/internal/proto/hadoop"
)

func main() {
	tr := netstack.NewUserNet()
	const mappers = 4

	// The reducer: collects the (already combined) pairs.
	rl, err := tr.Listen("reducer:1")
	if err != nil {
		log.Fatal(err)
	}
	defer rl.Close()
	type result struct {
		counts map[string]string
		pairs  int
	}
	resultCh := make(chan result, 1)
	go func() {
		c, err := rl.Accept()
		if err != nil {
			return
		}
		defer c.Close()
		r := hadoop.NewReader(c)
		res := result{counts: map[string]string{}}
		for {
			kv, err := r.Read()
			if err == io.EOF {
				resultCh <- res
				return
			}
			if err != nil {
				log.Fatal(err)
			}
			res.counts[hadoop.Key(kv)] = string(hadoop.Value(kv))
			res.pairs++
			kv.Release() // decoded pairs reference their pooled wire chunk
		}
	}()

	p := core.NewPlatform(core.Config{Workers: 4, Transport: tr})
	defer p.Close()
	agg, err := apps.HadoopAggregator(mappers)
	if err != nil {
		log.Fatal(err)
	}
	svc, err := agg.Deploy(p, "agg:1", []string{"reducer:1"})
	if err != nil {
		log.Fatal(err)
	}
	defer svc.Close()
	fmt.Printf("aggregator up: foldt tree with %d tasks (%d inputs, %d combines, 1 output)\n",
		len(agg.Graph.Template.Nodes()), mappers, mappers-1)

	// Mappers emit overlapping word streams ("1" per occurrence).
	docs := [][]string{
		{"the", "quick", "brown", "fox", "the"},
		{"the", "lazy", "dog", "fox"},
		{"quick", "quick", "dog", "the"},
		{"brown", "fox", "the", "lazy"},
	}
	var wg sync.WaitGroup
	sent := 0
	for m := 0; m < mappers; m++ {
		wg.Add(1)
		go func(words []string) {
			defer wg.Done()
			conn, err := tr.Dial("agg:1")
			if err != nil {
				log.Fatal(err)
			}
			defer conn.Close()
			w := hadoop.NewWriter(conn)
			for _, word := range words {
				w.Write([]byte(word), []byte("1"))
			}
			w.Flush()
		}(docs[m])
		sent += len(docs[m])
	}
	wg.Wait()

	res := <-resultCh
	fmt.Printf("mappers emitted %d pairs; reducer received %d combined pairs:\n", sent, res.pairs)
	var words []string
	for w := range res.counts {
		words = append(words, w)
	}
	sort.Strings(words)
	for _, w := range words {
		fmt.Printf("  %-6s %s\n", w, res.counts[w])
	}
}
