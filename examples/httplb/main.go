// HTTP load balancer example (§6.1 of the paper): the FLICK program routes
// each client connection to one of three in-process backends and forwards
// responses back; a small client fleet then drives load through it.
//
//	go run ./examples/httplb
package main

import (
	"fmt"
	"log"
	"time"

	"flick/internal/apps"
	"flick/internal/backend"
	"flick/internal/core"
	"flick/internal/loadgen"
	"flick/internal/netstack"
)

func main() {
	// Everything runs over the in-process user-space stack — the paper's
	// mTCP configuration — so the example is self-contained.
	tr := netstack.NewUserNet()

	// Three origin servers with a 137-byte payload (the paper's object
	// size).
	var backends []string
	for i := 0; i < 3; i++ {
		addr := fmt.Sprintf("origin:%d", i)
		s, err := backend.NewHTTPServer(tr, addr, 137)
		if err != nil {
			log.Fatal(err)
		}
		defer s.Close()
		backends = append(backends, addr)
	}

	// The FLICK load balancer: compiled from the DSL source in
	// lang.ListingHTTPLB, one task graph per client connection.
	p := core.NewPlatform(core.Config{Workers: 4, Transport: tr})
	defer p.Close()
	lb, err := apps.HTTPLoadBalancer(len(backends))
	if err != nil {
		log.Fatal(err)
	}
	svc, err := lb.Deploy(p, "lb:80", backends)
	if err != nil {
		log.Fatal(err)
	}
	defer svc.Close()
	fmt.Printf("load balancer up: %d-task graph per connection, %d backends\n",
		len(lb.Graph.Template.Nodes()), len(backends))

	// Drive it with the ApacheBench-style closed-loop fleet.
	res := loadgen.RunHTTP(loadgen.HTTPConfig{
		Transport:  tr,
		Addr:       "lb:80",
		Clients:    16,
		Persistent: true,
		Duration:   2 * time.Second,
	})
	fmt.Printf("16 clients, keep-alive, 2s: %.0f req/s  mean=%v p99=%v errors=%d\n",
		res.Throughput(), res.Latency.Mean, res.Latency.P99, res.Errors)

	res = loadgen.RunHTTP(loadgen.HTTPConfig{
		Transport:  tr,
		Addr:       "lb:80",
		Clients:    16,
		Persistent: false,
		Duration:   2 * time.Second,
	})
	fmt.Printf("16 clients, non-persistent, 2s: %.0f req/s  mean=%v p99=%v errors=%d\n",
		res.Throughput(), res.Latency.Mean, res.Latency.P99, res.Errors)
}
