// Memcached cache-router example — the paper's Listing 1 end to end. The
// router parses binary-protocol commands with a parser synthesised from the
// FLICK program's own serialisation annotations, caches GETK replies in a
// process-wide dict shared by all task-graph instances, and hash-routes
// misses across two shards.
//
//	go run ./examples/memcachedrouter
package main

import (
	"fmt"
	"log"

	"flick/internal/apps"
	"flick/internal/backend"
	"flick/internal/core"
	"flick/internal/netstack"
	"flick/internal/proto/memcache"
)

func main() {
	tr := netstack.NewUserNet()

	// Two Memcached shards with a few keys preloaded.
	var shards []string
	var servers []*backend.MemcachedServer
	for i := 0; i < 2; i++ {
		addr := fmt.Sprintf("shard:%d", i)
		s, err := backend.NewMemcachedServer(tr, addr)
		if err != nil {
			log.Fatal(err)
		}
		defer s.Close()
		s.Preload(map[string]string{
			"user:alice": "online",
			"user:bob":   "away",
			"user:carol": "offline",
		})
		shards = append(shards, addr)
		servers = append(servers, s)
	}

	p := core.NewPlatform(core.Config{Workers: 4, Transport: tr})
	defer p.Close()
	router, err := apps.MemcachedRouter(len(shards))
	if err != nil {
		log.Fatal(err)
	}
	svc, err := router.Deploy(p, "router:11211", shards)
	if err != nil {
		log.Fatal(err)
	}
	defer svc.Close()
	fmt.Println("cache router up (Listing 1): GETK replies are cached in the shared dict")

	raw, err := tr.Dial("router:11211")
	if err != nil {
		log.Fatal(err)
	}
	client := memcache.NewConn(raw)
	defer client.Close()

	backendReqs := func() uint64 { return servers[0].Requests() + servers[1].Requests() }

	for round := 1; round <= 3; round++ {
		before := backendReqs()
		resp, err := client.RoundTrip(memcache.Request(memcache.OpGetK, []byte("user:alice"), nil))
		if err != nil {
			log.Fatal(err)
		}
		hit := backendReqs() == before
		fmt.Printf("GETK user:alice round %d: value=%q served-from-cache=%v\n",
			round, resp.Field("value").AsString(), hit)
	}
	// A different key misses the router cache and hits a shard.
	before := backendReqs()
	resp, err := client.RoundTrip(memcache.Request(memcache.OpGetK, []byte("user:bob"), nil))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("GETK user:bob: value=%q backend-requests+%d\n",
		resp.Field("value").AsString(), backendReqs()-before)
}
