// Quickstart: compile a five-line FLICK program, deploy it on an in-process
// platform, and exchange messages with it — no external network required.
//
//	go run ./examples/quickstart
//
// The middlebox upper-cases every newline-terminated message, showing the
// whole pipeline: FLICK source → type check → task graph → cooperative
// scheduling → wire traffic.
package main

import (
	"bufio"
	"fmt"
	"log"

	"flick"
)

// program is the FLICK source. `shout` has one bidirectional channel of
// line messages; each line is transformed by the upper() function.
const program = `
type line: record
    line : string

proc shout: (line/line client)
    | client => upper() => client

fun upper: (msg: line) -> (line)
    line(to_upper(msg.line))
`

func main() {
	// Compile: the "line" record binds to the built-in newline-delimited
	// text codec.
	svc, err := flick.CompileService(program, flick.ServiceOptions{
		Codecs: map[string]flick.Codec{"line": flick.LineCodec()},
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("compiled process %q: task graph with %d tasks\n",
		svc.ProcName(), svc.TaskCount())

	// Deploy on an in-process platform over the user-space stack.
	p := flick.NewPlatform(flick.PlatformOptions{Workers: 4, InProcessNet: true})
	defer p.Close()
	deployed, err := p.Deploy(svc, "shout:1", nil)
	if err != nil {
		log.Fatal(err)
	}
	defer deployed.Close()

	// Talk to it.
	conn, err := p.Dial("shout:1")
	if err != nil {
		log.Fatal(err)
	}
	defer conn.Close()

	for _, msg := range []string{"hello flick", "task graphs are neat", "bye"} {
		fmt.Fprintf(conn, "%s\n", msg)
		reply, err := bufio.NewReader(conn).ReadString('\n')
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-22q -> %q\n", msg, reply[:len(reply)-1])
	}
}
