// Scheduling-policy demo — the paper's §6.4 resource-sharing experiment in
// miniature. Light tasks (1 KB items) and heavy tasks (16 KB items) share a
// small worker pool; cooperative scheduling lets the light class finish
// early without stretching total runtime, while round-robin (one item per
// activation) lets the heavy items dominate the workers.
//
//	go run ./examples/scheduling
package main

import (
	"fmt"
	"log"

	"flick/internal/bench"
)

func main() {
	points, err := bench.RunFig7(bench.Fig7Config{
		Tasks:        100,
		ItemsPerTask: 128,
		Workers:      2,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(bench.Fig7Table(points))
	fmt.Println("Reading the table: under 'cooperative', light-done lands well before")
	fmt.Println("heavy-done with the same total — each class gets a fair CPU share.")
}
