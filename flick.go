// Package flick is a Go reproduction of "FLICK: Developing and Running
// Application-Specific Network Services" (Alim et al., USENIX ATC 2016):
// a domain-specific language for application-level middlebox services and a
// runtime platform that executes compiled FLICK programs as cooperatively
// scheduled task graphs.
//
// This package is the public facade. It compiles FLICK source to deployable
// services, hosts them on platforms backed by either the kernel TCP stack
// or the bundled in-process user-space stack (the paper's mTCP substitute),
// and exposes the built-in wire formats (HTTP, Memcached binary,
// Hadoop-style key/value streams, newline-delimited text).
//
// Quick use:
//
//	svc, _ := flick.CompileService(src, flick.ServiceOptions{
//	        Codecs: map[string]flick.Codec{"line": flick.LineCodec()},
//	})
//	p := flick.NewPlatform(flick.PlatformOptions{InProcessNet: true})
//	defer p.Close()
//	deployed, _ := p.Deploy(svc, "myservice:1", nil)
//	conn, _ := p.Dial("myservice:1")
//
// The three services evaluated in the paper ship pre-packaged in
// internal/apps and are runnable through cmd/flickrun; the full evaluation
// harness lives in cmd/flickbench.
package flick

import (
	"fmt"
	"net"
	"runtime"

	"flick/internal/compiler"
	"flick/internal/core"
	"flick/internal/grammar"
	"flick/internal/netstack"
	"flick/internal/proto/hadoop"
	phttp "flick/internal/proto/http"
	"flick/internal/proto/memcache"
)

// Codec binds a record type to wire formats: Decode parses inbound bytes,
// Encode serialises outbound values. Built-in constructors cover the
// protocols used by the paper's services; record types whose declarations
// carry complete serialisation annotations need no Codec at all (the
// compiler synthesises one from the program, §4.2).
type Codec = compiler.CodecPair

// PortCodec overrides codecs per channel for asymmetric protocols (the
// HTTP load balancer decodes requests and encodes responses client-side).
type PortCodec = compiler.PortCodec

// LineCodec is the newline-delimited text format (field "line" or, for
// single-field records, the declared field).
func LineCodec() Codec {
	c := grammar.LineUnit().MustCompile()
	return Codec{Decode: c, Encode: c}
}

// MemcachedCodec is the Memcached binary protocol (the paper's Listing 2).
func MemcachedCodec() Codec {
	return Codec{Decode: memcache.Codec, Encode: memcache.Codec}
}

// HadoopKVCodec is the length-prefixed key/value stream of the Hadoop
// aggregator.
func HadoopKVCodec() Codec {
	return Codec{Decode: hadoop.Codec, Encode: hadoop.Codec}
}

// HTTPRequestCodec decodes/encodes HTTP requests.
func HTTPRequestCodec() Codec {
	return Codec{Decode: phttp.RequestFormat{}, Encode: phttp.RequestFormat{}}
}

// HTTPResponseCodec decodes/encodes HTTP responses.
func HTTPResponseCodec() Codec {
	return Codec{Decode: phttp.ResponseFormat{}, Encode: phttp.ResponseFormat{}}
}

// ServiceOptions parameterise compilation of a FLICK program.
type ServiceOptions struct {
	// Proc names the process to deploy; empty selects the program's sole
	// process.
	Proc string
	// ArraySizes fixes channel-array lengths (deployment constants).
	ArraySizes map[string]int
	// Codecs binds record type names to wire formats.
	Codecs map[string]Codec
	// ChannelCodecs overrides codecs per channel name.
	ChannelCodecs map[string]PortCodec
	// Backends names the channel array dialled to backend addresses at
	// deployment (defaults to the program's only channel array, if any).
	Backends string
	// Primary names the client-facing channel (defaults to the first
	// bidirectional scalar channel).
	Primary string
}

// Service is a compiled, deployable FLICK program.
type Service struct {
	program *compiler.Program
	graph   *compiler.ProcGraph
	opts    ServiceOptions
}

// CompileService parses, type-checks and compiles FLICK source.
func CompileService(src string, opts ServiceOptions) (*Service, error) {
	prog, err := compiler.Compile(src, compiler.Config{
		ArraySizes:     opts.ArraySizes,
		Codecs:         opts.Codecs,
		ChannelCodecs:  opts.ChannelCodecs,
		PrimaryChannel: opts.Primary,
	})
	if err != nil {
		return nil, err
	}
	pg, err := prog.Proc(opts.Proc)
	if err != nil {
		return nil, err
	}
	return &Service{program: prog, graph: pg, opts: opts}, nil
}

// ProcName returns the deployed process's name.
func (s *Service) ProcName() string { return s.graph.Name }

// TaskCount returns the number of tasks in the service's graph template.
func (s *Service) TaskCount() int { return len(s.graph.Template.Nodes()) }

// Graph exposes the compiled process graph for advanced wiring.
func (s *Service) Graph() *compiler.ProcGraph { return s.graph }

// Program exposes the compiled program (record descriptors, direct function
// calls).
func (s *Service) Program() *compiler.Program { return s.program }

// PlatformOptions configure a runtime platform.
type PlatformOptions struct {
	// Workers is the worker-thread count (0: GOMAXPROCS).
	Workers int
	// InProcessNet selects the user-space network stack (the paper's
	// mTCP configuration); otherwise the kernel stack is used and
	// addresses are standard "host:port" strings.
	InProcessNet bool
	// Quantum overrides the cooperative timeslice (0: the default 50µs).
	Quantum PolicyQuantum
	// SharedQueue disables task→worker affinity and funnels every task
	// through one shared queue (the §5 ablation; useful for measuring the
	// value of the sharded scheduler on a given workload).
	SharedQueue bool
}

// SchedStats is a snapshot of the platform scheduler's activity counters:
// enqueues, activations, steals, parks, targeted wakeups and inbox
// overflows.
type SchedStats = core.SchedStats

// PolicyQuantum is a timeslice override.
type PolicyQuantum = core.Policy

// Platform hosts deployed services.
type Platform struct {
	inner *core.Platform
	tr    netstack.Transport
}

// NewPlatform creates and starts a platform.
func NewPlatform(opts PlatformOptions) *Platform {
	var tr netstack.Transport = netstack.KernelTCP{}
	if opts.InProcessNet {
		tr = netstack.NewUserNet()
	}
	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	pol := opts.Quantum
	if pol.Name == "" {
		pol = core.Cooperative
	}
	var schedOpts []core.Option
	if opts.SharedQueue {
		schedOpts = append(schedOpts, core.WithoutAffinity())
	}
	return &Platform{
		inner: core.NewPlatform(core.Config{
			Workers:      workers,
			Transport:    tr,
			Policy:       pol,
			SchedOptions: schedOpts,
		}),
		tr: tr,
	}
}

// SchedStats returns a snapshot of the platform scheduler's counters.
func (p *Platform) SchedStats() SchedStats { return p.inner.Scheduler().Stats() }

// Close shuts the platform down.
func (p *Platform) Close() { p.inner.Close() }

// Transport exposes the platform's network stack.
func (p *Platform) Transport() netstack.Transport { return p.tr }

// Dial connects to a service deployed on this platform (or any address
// reachable through its transport).
func (p *Platform) Dial(addr string) (net.Conn, error) { return p.tr.Dial(addr) }

// Deployed is a running service.
type Deployed struct {
	svc *core.Service
}

// Addr returns the service's listen address.
func (d *Deployed) Addr() string { return d.svc.Addr() }

// Close stops the service.
func (d *Deployed) Close() { d.svc.Close() }

// Deploy installs a compiled service at listenAddr. backendAddrs supplies
// one address per element of the service's backend channel array (nil when
// the program has none).
func (p *Platform) Deploy(s *Service, listenAddr string, backendAddrs []string) (*Deployed, error) {
	cfg := core.ServiceConfig{
		Name:       s.graph.Name,
		ListenAddr: listenAddr,
		Template:   s.graph.Template,
		Dispatch:   core.PerConnection,
	}
	// Client port: the primary channel.
	primary := s.opts.Primary
	if primary == "" {
		for name, ports := range s.graph.Ports {
			if len(ports) == 1 && s.graph.Template.Ports()[ports[0]].Primary {
				primary = name
			}
		}
	}
	if primary != "" {
		cp, err := s.graph.PortIndex(primary)
		if err != nil {
			return nil, err
		}
		cfg.ClientPort = cp
	}
	// Backend channel array.
	backends := s.opts.Backends
	if backends == "" {
		for name, ports := range s.graph.Ports {
			if len(ports) > 1 || (name != primary && len(backendAddrs) == len(ports)) {
				if len(backendAddrs) == len(ports) {
					backends = name
				}
			}
		}
	}
	if backends != "" {
		ports := s.graph.Ports[backends]
		if len(backendAddrs) != len(ports) {
			return nil, fmt.Errorf("flick: channel %q needs %d backend addresses, got %d",
				backends, len(ports), len(backendAddrs))
		}
		cfg.BackendAddrs = map[int]string{}
		for i, port := range ports {
			cfg.BackendAddrs[port] = backendAddrs[i]
		}
	} else if len(backendAddrs) > 0 {
		return nil, fmt.Errorf("flick: %d backend addresses supplied but the program has no backend channel", len(backendAddrs))
	}
	svc, err := p.inner.Deploy(cfg)
	if err != nil {
		return nil, err
	}
	return &Deployed{svc: svc}, nil
}
