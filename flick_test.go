package flick

import (
	"bufio"
	"fmt"
	"strings"
	"testing"
)

const echoProgram = `
type line: record
    line : string

proc echo: (line/line client)
    | client => identity() => client

fun identity: (msg: line) -> (line)
    msg
`

func TestCompileAndDeployEcho(t *testing.T) {
	svc, err := CompileService(echoProgram, ServiceOptions{
		Codecs: map[string]Codec{"line": LineCodec()},
	})
	if err != nil {
		t.Fatal(err)
	}
	if svc.ProcName() != "echo" {
		t.Fatalf("proc = %q", svc.ProcName())
	}
	if svc.TaskCount() != 3 {
		t.Fatalf("tasks = %d", svc.TaskCount())
	}
	p := NewPlatform(PlatformOptions{Workers: 2, InProcessNet: true})
	defer p.Close()
	d, err := p.Deploy(svc, "echo:1", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	if d.Addr() != "echo:1" {
		t.Fatalf("addr = %q", d.Addr())
	}

	conn, err := p.Dial("echo:1")
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	fmt.Fprintln(conn, "round trip")
	got, err := bufio.NewReader(conn).ReadString('\n')
	if err != nil {
		t.Fatal(err)
	}
	if strings.TrimSpace(got) != "round trip" {
		t.Fatalf("echo = %q", got)
	}
}

// TestPlatformSchedStats drives traffic through a deployed service and
// checks the scheduler counters are exposed (and moving) at the public API.
func TestPlatformSchedStats(t *testing.T) {
	svc, err := CompileService(echoProgram, ServiceOptions{
		Codecs: map[string]Codec{"line": LineCodec()},
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, shared := range []bool{false, true} {
		p := NewPlatform(PlatformOptions{Workers: 2, InProcessNet: true, SharedQueue: shared})
		d, err := p.Deploy(svc, "echo:stats", nil)
		if err != nil {
			p.Close()
			t.Fatal(err)
		}
		conn, err := p.Dial("echo:stats")
		if err != nil {
			p.Close()
			t.Fatal(err)
		}
		fmt.Fprintln(conn, "ping")
		if _, err := bufio.NewReader(conn).ReadString('\n'); err != nil {
			t.Fatalf("shared=%v: %v", shared, err)
		}
		st := p.SchedStats()
		if st.Scheduled == 0 || st.Executed == 0 {
			t.Fatalf("shared=%v: scheduler stats did not move: %+v", shared, st)
		}
		conn.Close()
		d.Close()
		p.Close()
	}
}

func TestCompileServiceErrors(t *testing.T) {
	if _, err := CompileService("proc broken", ServiceOptions{}); err == nil {
		t.Fatal("syntax error accepted")
	}
	// Missing codec for a wire type without annotations.
	if _, err := CompileService(echoProgram, ServiceOptions{}); err == nil {
		t.Fatal("missing codec accepted")
	}
}

func TestDeployBackendMismatch(t *testing.T) {
	svc, err := CompileService(echoProgram, ServiceOptions{
		Codecs: map[string]Codec{"line": LineCodec()},
	})
	if err != nil {
		t.Fatal(err)
	}
	p := NewPlatform(PlatformOptions{Workers: 1, InProcessNet: true})
	defer p.Close()
	if _, err := p.Deploy(svc, "echo:2", []string{"ghost:1"}); err == nil {
		t.Fatal("spurious backend addresses accepted")
	}
}

func TestBuiltinCodecConstructors(t *testing.T) {
	for name, c := range map[string]Codec{
		"line":          LineCodec(),
		"memcached":     MemcachedCodec(),
		"hadoop":        HadoopKVCodec(),
		"http-request":  HTTPRequestCodec(),
		"http-response": HTTPResponseCodec(),
	} {
		if c.Decode == nil || c.Encode == nil {
			t.Fatalf("%s codec incomplete", name)
		}
		if c.Decode.Desc() == nil {
			t.Fatalf("%s codec has no descriptor", name)
		}
	}
}

func TestServiceProgramAccess(t *testing.T) {
	svc, err := CompileService(echoProgram, ServiceOptions{
		Codecs: map[string]Codec{"line": LineCodec()},
	})
	if err != nil {
		t.Fatal(err)
	}
	if svc.Program() == nil || svc.Graph() == nil {
		t.Fatal("program/graph accessors")
	}
	if svc.Program().Desc("line") == nil {
		t.Fatal("record descriptor missing")
	}
}

func TestPlatformKernelDefault(t *testing.T) {
	p := NewPlatform(PlatformOptions{Workers: 1})
	defer p.Close()
	if p.Transport().Name() != "kernel" {
		t.Fatalf("transport = %s", p.Transport().Name())
	}
}
