// Package admin is the platform's control-plane HTTP listener: a small
// stdlib net/http server exposing a running service's live state — the
// backend topology with weights, health verdicts and ring shares, and
// every registered counter set — and accepting topology updates over the
// same drain-correct path a SIGHUP re-read uses.
//
// Endpoints:
//
//	GET /healthz   liveness ("ok")
//	GET /topology  current topology as JSON (TopologyView)
//	PUT /topology  install a new topology (topology.DecodeJSON wire form)
//	GET /counters  every registered metrics.CounterSet as ordered JSON
//	GET /latency   every registered latency dimension as ordered JSON
//
// GET /topology's "backends" field is valid PUT /topology input, so one
// instance's control plane can feed another's (topology.Poll does exactly
// this). The package knows nothing about the platform beyond the
// Controller interface; internal/apps implements it.
package admin

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"time"

	"flick/internal/core"
	"flick/internal/metrics"
	"flick/internal/topology"
)

// BackendView is one backend row of GET /topology: the configured address
// and weight plus the control plane's live observations — the upstream
// layer's health verdict, the fraction of the key space the ring assigns
// to the backend, and the requests currently in flight to it.
type BackendView struct {
	Addr     string  `json:"addr"`
	Weight   int     `json:"weight"`
	Health   string  `json:"health"`
	Share    float64 `json:"share"`
	Inflight int64   `json:"inflight"`
}

// CacheView is GET /topology's "cache" object: the response cache's live
// effectiveness figures (present only on services deployed with the cache
// enabled). HitRatio is hits/(hits+misses) over the service's lifetime;
// BytesResident is the bytes currently held by cached entries.
type CacheView struct {
	HitRatio      float64 `json:"hit_ratio"`
	BytesResident int64   `json:"bytes_resident"`
	Hits          uint64  `json:"hits"`
	Misses        uint64  `json:"misses"`
	Coalesced     uint64  `json:"coalesced"`
	// Revalidated counts upstream 304s that extended an entry's
	// freshness in place; StaleServed counts hits answered from an
	// expired entry while its background revalidation ran.
	Revalidated uint64 `json:"revalidated"`
	StaleServed uint64 `json:"stale_served"`
}

// TopologyView is the GET /topology response body.
type TopologyView struct {
	// Backends holds one row per live backend.
	Backends []BackendView `json:"backends"`
	// Capacity is the compiled backend capacity (-max-backends); PUTs
	// holding more backends are refused with 409.
	Capacity int `json:"capacity"`
	// Router names the installed routing topology ("ring",
	// "bounded-ring", "mod").
	Router string `json:"router"`
	// BoundedLoadC is the bounded-load factor c when Router is
	// "bounded-ring" (0 otherwise).
	BoundedLoadC float64 `json:"bounded_load_c,omitempty"`
	// Cache is the response cache's live state (nil when uncached).
	Cache *CacheView `json:"cache,omitempty"`
	// Latency is the service's end-to-end (decode→flush) latency summary
	// (nil when the service records none). Per-dimension histograms —
	// upstream round trip, cache hit/miss/coalesced — live on GET /latency.
	Latency *metrics.Snapshot `json:"latency,omitempty"`
}

// Controller is the running service the admin server fronts;
// apps.Control is the production implementation.
type Controller interface {
	// View snapshots the live topology.
	View() TopologyView
	// Apply installs a new topology through the drain-correct update
	// path. An error wrapping core.ErrCapacity maps to HTTP 409, any
	// other error to 400.
	Apply([]topology.Backend) error
	// Counters snapshots every registered counter set in registration
	// order.
	Counters() []metrics.Named
	// Latency snapshots every registered latency dimension in
	// registration order.
	Latency() []metrics.NamedHist
}

// maxBody bounds a PUT /topology request body.
const maxBody = 1 << 20

// Handler builds the admin API's http.Handler around a controller.
func Handler(ctl Controller) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet {
			methodNotAllowed(w, http.MethodGet)
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		io.WriteString(w, "ok\n")
	})
	mux.HandleFunc("/topology", func(w http.ResponseWriter, r *http.Request) {
		switch r.Method {
		case http.MethodGet:
			writeJSON(w, http.StatusOK, viewJSON(ctl.View()))
		case http.MethodPut:
			handlePut(w, r, ctl)
		default:
			methodNotAllowed(w, "GET, PUT")
		}
	})
	mux.HandleFunc("/counters", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet {
			methodNotAllowed(w, http.MethodGet)
			return
		}
		raw, err := metrics.MarshalNamed(ctl.Counters())
		if err != nil {
			httpError(w, http.StatusInternalServerError, err.Error())
			return
		}
		writeJSON(w, http.StatusOK, raw)
	})
	mux.HandleFunc("/latency", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet {
			methodNotAllowed(w, http.MethodGet)
			return
		}
		raw, err := metrics.MarshalNamedHists(ctl.Latency())
		if err != nil {
			httpError(w, http.StatusInternalServerError, err.Error())
			return
		}
		writeJSON(w, http.StatusOK, raw)
	})
	return mux
}

// handlePut applies a PUT /topology body and answers with the resulting
// view, so a successful PUT's response is the post-change GET.
func handlePut(w http.ResponseWriter, r *http.Request, ctl Controller) {
	body, err := io.ReadAll(io.LimitReader(r.Body, maxBody+1))
	if err != nil {
		httpError(w, http.StatusBadRequest, err.Error())
		return
	}
	if len(body) > maxBody {
		httpError(w, http.StatusRequestEntityTooLarge, "topology body exceeds 1MiB")
		return
	}
	list, err := topology.DecodeJSON(body)
	if err != nil {
		httpError(w, http.StatusBadRequest, err.Error())
		return
	}
	if err := ctl.Apply(list); err != nil {
		status := http.StatusBadRequest
		if errors.Is(err, core.ErrCapacity) {
			status = http.StatusConflict
		}
		httpError(w, status, err.Error())
		return
	}
	writeJSON(w, http.StatusOK, viewJSON(ctl.View()))
}

// viewJSON marshals a TopologyView (never fails: the view is plain data).
func viewJSON(v TopologyView) []byte {
	raw, err := json.Marshal(v)
	if err != nil {
		return []byte(`{"error":"view marshal failed"}`)
	}
	return raw
}

func writeJSON(w http.ResponseWriter, status int, body []byte) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	w.Write(body)
	if len(body) == 0 || body[len(body)-1] != '\n' {
		io.WriteString(w, "\n")
	}
}

func httpError(w http.ResponseWriter, status int, msg string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	raw, _ := json.Marshal(struct {
		Error string `json:"error"`
	}{msg})
	w.Write(raw)
	io.WriteString(w, "\n")
}

func methodNotAllowed(w http.ResponseWriter, allow string) {
	w.Header().Set("Allow", allow)
	httpError(w, http.StatusMethodNotAllowed, "method not allowed")
}

// Server is a running admin listener.
type Server struct {
	l   net.Listener
	srv *http.Server
}

// Start listens on addr and serves the admin API in the background. The
// returned server reports its bound address (Addr) and shuts down with
// Close.
func Start(addr string, ctl Controller) (*Server, error) {
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("admin: listen %s: %w", addr, err)
	}
	srv := &http.Server{
		Handler:           Handler(ctl),
		ReadHeaderTimeout: 5 * time.Second,
	}
	go srv.Serve(l)
	return &Server{l: l, srv: srv}, nil
}

// Addr returns the listener's bound address (useful with ":0").
func (s *Server) Addr() string { return s.l.Addr().String() }

// Close stops the listener and closes open admin connections.
func (s *Server) Close() error { return s.srv.Close() }
