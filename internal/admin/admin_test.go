package admin

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"flick/internal/core"
	"flick/internal/metrics"
	"flick/internal/topology"
)

// fakeController serves a two-backend view with capacity 3 and applies
// updates by replacing its list (the apps.Control integration is covered
// end to end in internal/apps).
type fakeController struct {
	list     []topology.Backend
	applyErr error
}

func (f *fakeController) View() TopologyView {
	v := TopologyView{Capacity: 3, Router: "ring"}
	for _, b := range f.list {
		v.Backends = append(v.Backends, BackendView{
			Addr: b.Addr, Weight: b.Weight, Health: "idle",
			Share: 1 / float64(len(f.list)),
		})
	}
	return v
}

func (f *fakeController) Apply(list []topology.Backend) error {
	if f.applyErr != nil {
		return f.applyErr
	}
	if len(list) > 3 {
		return fmt.Errorf("%w: %d > 3", core.ErrCapacity, len(list))
	}
	f.list = list
	return nil
}

func (f *fakeController) Counters() []metrics.Named {
	return []metrics.Named{
		{Name: "upstream", Counters: metrics.NewCounterSet("dials", 4)},
		{Name: "sched", Counters: metrics.NewCounterSet("steals", 1)},
	}
}

func (f *fakeController) Latency() []metrics.NamedHist {
	return []metrics.NamedHist{
		{Name: "total", Latency: metrics.Snapshot{Count: 7}},
		{Name: "upstream", Latency: metrics.Snapshot{Count: 3}},
	}
}

func testServer(t *testing.T) (*httptest.Server, *fakeController) {
	t.Helper()
	ctl := &fakeController{list: topology.Uniform([]string{"a:1", "b:1"})}
	srv := httptest.NewServer(Handler(ctl))
	t.Cleanup(srv.Close)
	return srv, ctl
}

func get(t *testing.T, url string) (int, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	return resp.StatusCode, string(body)
}

func put(t *testing.T, url, body string) (int, string) {
	t.Helper()
	req, err := http.NewRequest(http.MethodPut, url, strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	return resp.StatusCode, string(raw)
}

func TestHealthz(t *testing.T) {
	srv, _ := testServer(t)
	if code, body := get(t, srv.URL+"/healthz"); code != 200 || body != "ok\n" {
		t.Fatalf("GET /healthz = %d %q", code, body)
	}
}

func TestGetTopology(t *testing.T) {
	srv, _ := testServer(t)
	code, body := get(t, srv.URL+"/topology")
	if code != 200 {
		t.Fatalf("GET /topology = %d %s", code, body)
	}
	var v TopologyView
	if err := json.Unmarshal([]byte(body), &v); err != nil {
		t.Fatal(err)
	}
	if len(v.Backends) != 2 || v.Capacity != 3 || v.Router != "ring" {
		t.Fatalf("view = %+v", v)
	}
	// The GET body's backends field is valid PUT input (self-feeding).
	if _, err := topology.DecodeJSON([]byte(body)); err != nil {
		t.Fatalf("GET /topology output is not valid PUT input: %v", err)
	}
}

func TestPutTopology(t *testing.T) {
	srv, ctl := testServer(t)
	code, body := put(t, srv.URL+"/topology", `{"backends":["a:1","b:1",{"addr":"c:1","weight":2}]}`)
	if code != 200 {
		t.Fatalf("PUT = %d %s", code, body)
	}
	want := []topology.Backend{{Addr: "a:1", Weight: 1}, {Addr: "b:1", Weight: 1}, {Addr: "c:1", Weight: 2}}
	if !topology.Equal(ctl.list, want) {
		t.Fatalf("applied %+v, want %+v", ctl.list, want)
	}
	// The response is the post-change view.
	var v TopologyView
	if err := json.Unmarshal([]byte(body), &v); err != nil {
		t.Fatal(err)
	}
	if len(v.Backends) != 3 || v.Backends[2].Weight != 2 {
		t.Fatalf("PUT response view = %+v", v)
	}
}

func TestPutTopologyErrors(t *testing.T) {
	srv, _ := testServer(t)
	// Capacity overflow: 409.
	if code, body := put(t, srv.URL+"/topology", `["a:1","b:1","c:1","d:1"]`); code != 409 {
		t.Fatalf("capacity overflow = %d %s, want 409", code, body)
	}
	// Malformed JSON, invalid topology: 400.
	for _, bad := range []string{`{`, `[]`, `[{"addr":""}]`, `["a:1","a:1"]`} {
		if code, _ := put(t, srv.URL+"/topology", bad); code != 400 {
			t.Fatalf("PUT %q = %d, want 400", bad, code)
		}
	}
	// Wrong method on /counters and /healthz: 405.
	if code, _ := put(t, srv.URL+"/counters", "{}"); code != 405 {
		t.Fatal("PUT /counters accepted")
	}
}

func TestGetCounters(t *testing.T) {
	srv, _ := testServer(t)
	code, body := get(t, srv.URL+"/counters")
	if code != 200 {
		t.Fatalf("GET /counters = %d", code)
	}
	want := `{"upstream":{"dials":4},"sched":{"steals":1}}` + "\n"
	if body != want {
		t.Fatalf("GET /counters = %q, want %q (registration order preserved)", body, want)
	}
}

func TestGetLatency(t *testing.T) {
	srv, _ := testServer(t)
	code, body := get(t, srv.URL+"/latency")
	if code != 200 {
		t.Fatalf("GET /latency = %d", code)
	}
	want := `{"total":{"count":7,"p50":0,"p95":0,"p99":0,"p999":0,"max":0,"mean":0},` +
		`"upstream":{"count":3,"p50":0,"p95":0,"p99":0,"p999":0,"max":0,"mean":0}}` + "\n"
	if body != want {
		t.Fatalf("GET /latency = %q, want %q (registration and key order pinned)", body, want)
	}
}

func TestStartServesAndCloses(t *testing.T) {
	ctl := &fakeController{list: topology.Uniform([]string{"a:1"})}
	s, err := Start("127.0.0.1:0", ctl)
	if err != nil {
		t.Fatal(err)
	}
	if code, body := get(t, "http://"+s.Addr()+"/healthz"); code != 200 || body != "ok\n" {
		t.Fatalf("healthz over Start = %d %q", code, body)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := http.Get("http://" + s.Addr() + "/healthz"); err == nil {
		t.Fatal("server still serving after Close")
	}
}
