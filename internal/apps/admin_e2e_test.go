package apps

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"flick/internal/admin"
	"flick/internal/topology"
)

// TestAdminScaleOutZeroErrors is the control-plane acceptance gate: a
// serving proxy is scaled 2→3 by PUTting a topology to the admin HTTP
// API under connect load — zero client errors, the added backend takes
// traffic, the change is visible in GET /topology, and the drain/probe
// counters are visible in GET /counters. It mirrors
// TestLiveScaleOutZeroErrors with the update arriving over the wire
// instead of a method call.
func TestAdminScaleOutZeroErrors(t *testing.T) {
	const (
		total   = 3
		initial = 2
		clients = 8
		keys    = 64
	)
	tb := newTopologyTestbed(t, total, initial, keys, false)
	ctl := NewControl(tb.mp, tb.svc, tb.p)
	srv, err := ctl.ServeAdmin("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	base := "http://" + srv.Addr()

	// The pre-update view serves the initial census at full capacity.
	view := getView(t, base)
	if len(view.Backends) != initial || view.Capacity != total || view.Router != "ring" {
		t.Fatalf("pre-update view = %+v", view)
	}

	var (
		stop     atomic.Bool
		errCount atomic.Uint64
		reqCount atomic.Uint64
		firstErr atomic.Value
		wg       sync.WaitGroup
	)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := 0; !stop.Load(); i++ {
				k := (c*31 + i) % keys
				key := fmt.Sprintf("topo-key-%04d", k)
				if err := tb.get([]byte(key), fmt.Sprintf("value-%04d", k)); err != nil {
					errCount.Add(1)
					firstErr.CompareAndSwap(nil, err)
					return
				}
				reqCount.Add(1)
			}
		}(c)
	}

	// Let the fleet run against B=2, then PUT the 3-backend topology.
	time.Sleep(150 * time.Millisecond)
	body, err := json.Marshal(map[string][]string{"backends": tb.addrs})
	if err != nil {
		t.Fatal(err)
	}
	req, err := http.NewRequest(http.MethodPut, base+"/topology", strings.NewReader(string(body)))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	putBody, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("PUT /topology = %d %s", resp.StatusCode, putBody)
	}

	// The new backend must pick up traffic.
	deadline := time.Now().Add(10 * time.Second)
	for tb.srvs[total-1].Requests() == 0 {
		if time.Now().After(deadline) {
			stop.Store(true)
			wg.Wait()
			t.Fatalf("scaled-out backend got no traffic (reqs=%d errs=%d)", reqCount.Load(), errCount.Load())
		}
		time.Sleep(5 * time.Millisecond)
	}
	stop.Store(true)
	wg.Wait()

	if e := errCount.Load(); e != 0 {
		t.Fatalf("%d request errors during admin scale-out (first: %v)", e, firstErr.Load())
	}

	// The change is visible in GET /topology, with shares summing to ~1.
	view = getView(t, base)
	if len(view.Backends) != total {
		t.Fatalf("post-update view has %d backends, want %d", len(view.Backends), total)
	}
	sum := 0.0
	for _, b := range view.Backends {
		if b.Weight != 1 {
			t.Fatalf("backend %s weight %d, want 1", b.Addr, b.Weight)
		}
		sum += b.Share
	}
	if sum < 0.999 || sum > 1.001 {
		t.Fatalf("ring shares sum to %v", sum)
	}

	// GET /counters carries every registered set; the upstream and
	// control sets prove the scale-out went through the shared layer and
	// the one update path.
	cresp, err := http.Get(base + "/counters")
	if err != nil {
		t.Fatal(err)
	}
	craw, _ := io.ReadAll(cresp.Body)
	cresp.Body.Close()
	var counters map[string]map[string]uint64
	if err := json.Unmarshal(craw, &counters); err != nil {
		t.Fatalf("GET /counters: %v (%s)", err, craw)
	}
	for _, set := range []string{"sched", "pool", "upstream", "control"} {
		if _, ok := counters[set]; !ok {
			t.Fatalf("GET /counters missing %q set (%s)", set, craw)
		}
	}
	if counters["control"]["applied"] != 1 {
		t.Fatalf("control.applied = %d, want 1", counters["control"]["applied"])
	}
	if counters["upstream"]["dials"] == 0 {
		t.Fatal("upstream.dials = 0 after serving load")
	}
	if counters["upstream"]["drained"] != 0 {
		t.Fatalf("scale-out drained %d sockets; growing the set must drain nothing", counters["upstream"]["drained"])
	}
	t.Logf("admin scale-out: %d requests, 0 errors, new backend served %d", reqCount.Load(), tb.srvs[total-1].Requests())
}

// TestAdminCapacityConflict: PUTting more backends than the compiled
// capacity answers 409 and leaves the serving topology untouched.
func TestAdminCapacityConflict(t *testing.T) {
	tb := newTopologyTestbed(t, 2, 2, 16, false)
	ctl := NewControl(tb.mp, tb.svc, tb.p)
	srv, err := ctl.ServeAdmin("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	base := "http://" + srv.Addr()

	over := append(append([]string{}, tb.addrs...), "nowhere:1")
	body, _ := json.Marshal(map[string][]string{"backends": over})
	req, _ := http.NewRequest(http.MethodPut, base+"/topology", strings.NewReader(string(body)))
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("capacity-overflow PUT = %d, want 409", resp.StatusCode)
	}
	if view := getView(t, base); len(view.Backends) != 2 {
		t.Fatalf("rejected PUT changed the topology: %+v", view)
	}
	// The service still serves.
	if err := tb.get(tb.keys[0], "value-0000"); err != nil {
		t.Fatalf("GET after rejected PUT: %v", err)
	}
}

// TestControlFollowWeightedFile drives the file source end to end: a
// weighted topology file lands through Control.Follow in the same ring
// the admin API reports, weight 0 draining its backend.
func TestControlFollowWeightedFile(t *testing.T) {
	tb := newTopologyTestbed(t, 3, 3, 16, false)
	ctl := NewControl(tb.mp, tb.svc, tb.p)

	path := filepath.Join(t.TempDir(), "backends.txt")
	content := fmt.Sprintf("%s 1\n%s 2\n%s 0\n", tb.addrs[0], tb.addrs[1], tb.addrs[2])
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	applied := make(chan error, 1)
	go ctl.Follow(ctx, topology.File{Path: path}, func(_ []topology.Backend, err error) {
		applied <- err
	})
	select {
	case err := <-applied:
		if err != nil {
			t.Fatalf("file topology apply: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("file source never delivered the initial topology")
	}
	view := ctl.View()
	if len(view.Backends) != 3 {
		t.Fatalf("view = %+v", view)
	}
	if w := view.Backends[1].Weight; w != 2 {
		t.Fatalf("backend 1 weight %d, want 2", w)
	}
	if s := view.Backends[2].Share; s != 0 {
		t.Fatalf("weight-0 backend owns share %v, want 0 (drained)", s)
	}
	// Traffic respects the drain: the weight-0 backend serves nothing new.
	before := tb.srvs[2].Requests()
	for i, k := range tb.keys {
		if err := tb.get(k, fmt.Sprintf("value-%04d", i)); err != nil {
			t.Fatalf("GET: %v", err)
		}
	}
	if got := tb.srvs[2].Requests(); got != before {
		t.Fatalf("drained backend served %d requests", got-before)
	}
}

// getView GETs and decodes /topology.
func getView(t *testing.T, base string) admin.TopologyView {
	t.Helper()
	resp, err := http.Get(base + "/topology")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /topology = %d %s", resp.StatusCode, raw)
	}
	var v admin.TopologyView
	if err := json.Unmarshal(raw, &v); err != nil {
		t.Fatal(err)
	}
	return v
}
