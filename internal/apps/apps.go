package apps

import (
	"fmt"
	"time"

	"flick/internal/backend"
	"flick/internal/cache"
	"flick/internal/compiler"
	"flick/internal/core"
	"flick/internal/lang"
	"flick/internal/proto/hadoop"
	phttp "flick/internal/proto/http"
	"flick/internal/proto/memcache"
	"flick/internal/topology"
	"flick/internal/upstream"
	"flick/internal/value"
)

// MemcachedRouterSource is the cache-router program of Listing 1, with the
// cmd record laid out to match the real Memcached binary protocol (the
// paper's Listing 2 grammar) so the service interoperates with the
// repository's Memcached backends and clients. See lang.Listing1 for the
// paper-verbatim layout.
const MemcachedRouterSource = `
type cmd: record
    magic : integer {size=1}
    opcode : integer {size=1}
    keylen : integer {signed=false, size=2}
    extraslen : integer {signed=false, size=1}
    _ : string {size=3}
    bodylen : integer {signed=false, size=4}
    _ : string {size=12}
    _ : string {size=extraslen}
    key : string {size=keylen}
    _ : string {size=bodylen-extraslen-keylen}

proc memcached: (cmd/cmd client, [cmd/cmd] backends)
    global cache := empty_dict
    | backends => update_cache(cache) => client
    | client => test_cache(client, backends, cache)

fun update_cache: (cache: ref dict<string*cmd>, resp: cmd) -> (cmd)
    if resp.opcode = 0x0c:
        cache[resp.key] := resp
    resp

fun test_cache: (-/cmd client, [-/cmd] backends, cache: ref dict<string*cmd>, req: cmd) -> ()
    if cache[req.key] = None or req.opcode <> 0x0c:
        let target = hash(req.key) mod len(backends)
        req => backends[target]
    else:
        cache[req.key] => client
`

// MemcachedProxySource is the §4.1 proxy (no caching): pure hash
// partitioning of the key space across backends, responses returned to the
// client — the service measured in Figure 5.
const MemcachedProxySource = `
type cmd: record
    key : string

proc memcached_proxy: (cmd/cmd client, [cmd/cmd] backends)
    | backends => client
    | client => target_backend(backends)

fun target_backend: ([-/cmd] backends, req: cmd) -> ()
    let target = hash(req.key) mod len(backends)
    req => backends[target]
`

// StaticWebSource is the backend-less web server variant: every request is
// answered with a fixed response by the middlebox itself.
const StaticWebSource = `
type request: record
    uri : string
    keep_alive : integer

type response: record
    status : integer
    body : string

proc webserver: (request/response client)
    | client => respond() => client

fun respond: (req: request) -> (response)
    response(200, "Hello from FLICK! This payload is sized to mimic the paper's 137-byte static object for the web-server test.")
`

// UpstreamOptions groups the shared-upstream-layer knobs of a Service.
// The zero value selects the defaults every knob had as a flat field:
// pool enabled, upstream.Config sizing, one shard per scheduler worker,
// probing off.
type UpstreamOptions struct {
	// Disable turns off the shared upstream connection layer for
	// request/response services, restoring one dedicated backend socket
	// per accepted client (the ablation the connection-churn benchmark
	// measures against). Set before Deploy.
	Disable bool
	// PoolSize overrides the shared-socket count per backend address per
	// shard (0: upstream.Config default).
	PoolSize int
	// Shards sets the upstream layer's pool shard count. 0 (the
	// default) shards one pool set per platform scheduler worker, so the
	// backend write path of a task graph never takes a lock contended by
	// another core; 1 restores the single shared pool (the ablation
	// `flickbench churn` measures against); any other value is used
	// verbatim. Set before Deploy.
	Shards int
	// Window overrides the per-socket in-flight request window
	// (0: upstream.Config default).
	Window int
	// ProbeInterval enables proactive upstream health probes at the
	// given period (0: disabled). Probing needs the shared upstream
	// layer and a service protocol with a no-op request (all
	// request/response services here have one).
	ProbeInterval time.Duration
}

// TopologyOptions groups the live-backend-topology knobs of a Service.
// The zero value is the static deployment every knob's flat-field zero
// selected: fixed backend census, hash-mod-B off the compiled array.
type TopologyOptions struct {
	// Live opts the service into a live backend set: keys route
	// through a consistent-hash ring (backend.Ring) instead of
	// hash-mod-B, Deploy accepts fewer backend addresses than the
	// compiled channel-array capacity (spare ports stay unbound until a
	// scale-out), and the deployed service accepts
	// Service.UpdateBackends / apps UpdateBackends while serving. Set
	// before Deploy.
	Live bool
	// VNodes overrides the ring's virtual-node count per backend
	// (0: backend.DefaultVNodes).
	VNodes int
	// Mod selects the hash-mod-B ablation router for a Live service:
	// the live-update plumbing stays, but a topology change reshuffles
	// nearly the whole key space — the baseline `flickbench rebalance`
	// measures the ring against.
	Mod bool
	// BoundedLoadC, when > 0, routes through a bounded-load ring
	// (backend.BoundedRing) with load factor c: a key's hash owner is
	// skipped while its in-flight share exceeds c× its fair share, the
	// walk settling on the next ring successor with headroom. Requires
	// the shared upstream layer (its per-address in-flight gauge is the
	// load signal); without it the plain ring is used. 1.25 is a good
	// first value (see PERFORMANCE.md).
	BoundedLoadC float64
}

// CacheOptions groups the in-network response cache knobs of a Service
// (internal/cache). The zero value deploys uncached.
type CacheOptions struct {
	// Enable opts the service into the response cache: hits are served
	// from worker-local shards without an upstream round trip, and
	// concurrent misses for one key coalesce into a single one. Only
	// services with a cacheable protocol adapter accept it (the
	// memcached proxy and the HTTP load balancer).
	Enable bool
	// TTL bounds entry staleness (0: cache.DefaultTTL).
	TTL time.Duration
	// MaxBytes bounds resident response bytes (0: cache.DefaultMaxBytes).
	MaxBytes int64
	// StaleTTL extends serving past expiry while a background
	// revalidation runs — stale-while-revalidate (0: disabled).
	StaleTTL time.Duration
	// NegativeTTL bounds negative entries — authoritative key-absence
	// responses (0: cache.DefaultNegativeTTL; <0: disabled).
	NegativeTTL time.Duration
}

// Service is a ready-to-deploy FLICK application.
type Service struct {
	// Name identifies the service.
	Name string
	// Program is the compiled FLICK program.
	Program *compiler.Program
	// Graph is the compiled process graph.
	Graph *compiler.ProcGraph
	// Upstream configures the shared upstream connection layer.
	Upstream UpstreamOptions
	// Topology configures live backend topology and routing.
	Topology TopologyOptions
	// Cache configures the in-network response cache.
	Cache CacheOptions
	// clientChannel names the channel bound to accepted connections.
	clientChannel string
	// backendChannel names the channel array dialled to backends.
	backendChannel string
	dispatch       core.Dispatch
	sharedChannel  string // Shared dispatch: accepted conns fill this array
	outChannel     string // Shared dispatch: dialled output channel
	// reqFramer/respFramer frame the service's backend-side protocol; both
	// non-nil opts the service into the shared upstream layer on Deploy.
	// The request framer captures each request's demux context (HTTP
	// method, memcached quiet-batch terminator) for the response framer.
	reqFramer  upstream.RequestFramer
	respFramer upstream.ResponseFramer
	// probe is the protocol's no-op request for upstream health probing.
	probe []byte
	// cacheProto is the service's cache protocol adapter; nil means the
	// service cannot host the response cache.
	cacheProto cache.Protocol
}

// Deploy installs the service on a platform.
//
// For PerConnection services, backendAddrs supplies one address per element
// of the backend channel array. For Shared services (the Hadoop
// aggregator), backendAddrs carries exactly one address: the reducer.
func (s *Service) Deploy(p *core.Platform, listenAddr string, backendAddrs []string) (*core.Service, error) {
	cfg := core.ServiceConfig{
		Name:       s.Name,
		ListenAddr: listenAddr,
		Template:   s.Graph.Template,
		Dispatch:   s.dispatch,
	}
	switch s.dispatch {
	case core.PerConnection:
		cp, err := s.Graph.PortIndex(s.clientChannel)
		if err != nil {
			return nil, err
		}
		cfg.ClientPort = cp
		var liveAddrs []string
		if s.backendChannel != "" {
			ports := s.Graph.Ports[s.backendChannel]
			if s.Topology.Live {
				// Live topology: the compiled array size is capacity, not
				// census — deploy with any current count from 1 up to it
				// and grow/shrink later with UpdateBackends.
				if len(backendAddrs) == 0 {
					return nil, fmt.Errorf("apps: %s needs at least one backend to start (grow later with UpdateBackends)", s.Name)
				}
				if len(backendAddrs) > len(ports) {
					return nil, fmt.Errorf("apps: %s compiled for at most %d backends, got %d",
						s.Name, len(ports), len(backendAddrs))
				}
				cfg.BackendPorts = ports
				liveAddrs = backendAddrs
			} else {
				if len(backendAddrs) != len(ports) {
					return nil, fmt.Errorf("apps: %s needs %d backend addresses, got %d",
						s.Name, len(ports), len(backendAddrs))
				}
				cfg.BackendAddrs = map[int]string{}
				for i, port := range ports {
					cfg.BackendAddrs[port] = backendAddrs[i]
				}
			}
		}
		// Request/response services share pipelined upstream connections:
		// every accepted client leases multiplexed sessions instead of
		// dialling each backend afresh (the Shared/streaming services —
		// the Hadoop aggregator's reducer feed — keep dedicated sockets).
		hasBackends := len(cfg.BackendAddrs) > 0 || len(liveAddrs) > 0
		if hasBackends && s.reqFramer != nil && s.respFramer != nil && !s.Upstream.Disable {
			shards := s.Upstream.Shards
			if shards <= 0 {
				// Default: one pool shard per scheduler worker, so each
				// graph's backend writes stay on the leasing worker's core.
				shards = p.Scheduler().Workers()
			}
			ucfg := upstream.Config{
				Transport:      p.Transport(),
				Size:           s.Upstream.PoolSize,
				Shards:         shards,
				Window:         s.Upstream.Window,
				RequestFramer:  s.reqFramer,
				ResponseFramer: s.respFramer,
			}
			if s.Upstream.ProbeInterval > 0 && len(s.probe) > 0 {
				ucfg.Probe = s.probe
				ucfg.ProbeInterval = s.Upstream.ProbeInterval
			}
			cfg.Upstreams = upstream.NewManager(ucfg)
		}
		// The router is built after the upstream manager so bounded-load
		// routing can consume the manager's per-address in-flight gauge.
		if liveAddrs != nil {
			cfg.Topology = s.router(liveAddrs, nil, cfg.Upstreams)
		}
		if s.Cache.Enable {
			if s.cacheProto == nil {
				return nil, fmt.Errorf("apps: %s has no cacheable protocol adapter", s.Name)
			}
			if !hasBackends {
				return nil, fmt.Errorf("apps: %s has no backends to cache for", s.Name)
			}
			cfg.Cache = cache.New(cache.Config{
				Proto:       s.cacheProto,
				Workers:     p.Scheduler().Workers(),
				TTL:         s.Cache.TTL,
				MaxBytes:    s.Cache.MaxBytes,
				StaleTTL:    s.Cache.StaleTTL,
				NegativeTTL: s.Cache.NegativeTTL,
			})
		}
	case core.Shared:
		cfg.SharedPorts = s.Graph.Ports[s.sharedChannel]
		op, err := s.Graph.PortIndex(s.outChannel)
		if err != nil {
			return nil, err
		}
		if len(backendAddrs) != 1 {
			return nil, fmt.Errorf("apps: %s needs exactly the reducer address", s.Name)
		}
		cfg.BackendAddrs = map[int]string{op: backendAddrs[0]}
	}
	svc, err := p.Deploy(cfg)
	if err != nil {
		// Resources built for this deploy must not leak on failure (with
		// probing, the manager's timer goroutine is already running).
		if cfg.Upstreams != nil {
			cfg.Upstreams.Close()
		}
		if cfg.Cache != nil {
			cfg.Cache.Close()
		}
	}
	return svc, err
}

// router builds the service's routing topology over addrs per its
// options: hash-mod-B ablation, plain ring, weighted ring, or — when
// BoundedLoadC is set and an upstream manager supplies the in-flight
// gauge — a weighted bounded-load ring. weights nil means uniform.
func (s *Service) router(addrs []string, weights []int, m *upstream.Manager) core.Topology {
	if s.Topology.Mod {
		return backend.NewModTable(addrs)
	}
	ring := backend.NewWeightedRing(addrs, weights, s.Topology.VNodes)
	if s.Topology.BoundedLoadC > 0 && m != nil {
		return backend.NewBoundedRing(ring, s.Topology.BoundedLoadC, m.InflightFor)
	}
	return ring
}

// UpdateBackends applies a new backend address list (uniform weights) to
// a deployed live-topology service: it builds the router matching the
// service's topology options (ring or mod ablation) and swaps it in on
// the live core.Service. Growing the set is a non-event — new connections
// route through the new ring, running graphs finish on the sockets they
// hold; shrinking additionally drains the removed backends' upstream
// pools.
func (s *Service) UpdateBackends(deployed *core.Service, addrs []string) error {
	if !s.Topology.Live {
		return fmt.Errorf("apps: %s was not deployed with a live topology", s.Name)
	}
	return deployed.UpdateBackends(s.router(addrs, nil, deployed.Upstreams()))
}

// UpdateWeighted applies a weighted backend list to a deployed
// live-topology service — the admin API's PUT /topology path and the
// weighted file format land here. Weight 0 keeps a backend listed but
// drains its share of the key space.
func (s *Service) UpdateWeighted(deployed *core.Service, list []topology.Backend) error {
	if !s.Topology.Live {
		return fmt.Errorf("apps: %s was not deployed with a live topology", s.Name)
	}
	if err := topology.Validate(list); err != nil {
		return err
	}
	return deployed.UpdateBackends(s.router(topology.Addrs(list), topology.Weights(list), deployed.Upstreams()))
}

// HTTPLoadBalancer compiles the §6.1 HTTP load balancer for n backends.
func HTTPLoadBalancer(n int) (*Service, error) {
	// The backend side encodes through PersistentRequestFormat: forwarding
	// a client's "Connection: close" verbatim would let one client tear
	// down a pooled upstream socket under every other client multiplexed
	// onto it, so the hop-by-hop header is rewritten to keep-alive.
	prog, err := compiler.Compile(lang.ListingHTTPLB, compiler.Config{
		ArraySizes: map[string]int{"backends": n},
		ChannelCodecs: map[string]compiler.PortCodec{
			"client":   {Decode: phttp.RequestFormat{}, Encode: phttp.ResponseFormat{}},
			"backends": {Decode: phttp.ResponseFormat{}, Encode: phttp.PersistentRequestFormat{}},
		},
		Codecs: map[string]compiler.CodecPair{
			"request": {Decode: phttp.RequestFormat{}, Encode: phttp.RequestFormat{}},
		},
	})
	if err != nil {
		return nil, err
	}
	pg, err := prog.Proc("http_lb")
	if err != nil {
		return nil, err
	}
	return &Service{
		Name:           "http-lb",
		Program:        prog,
		Graph:          pg,
		clientChannel:  "client",
		backendChannel: "backends",
		dispatch:       core.PerConnection,
		reqFramer:      phttp.FrameRequestLen,
		respFramer:     phttp.FrameResponseLen,
		probe:          phttp.ProbeRequest(),
		cacheProto:     cache.HTTPGet{},
	}, nil
}

// StaticWebServer compiles the backend-less web server.
func StaticWebServer() (*Service, error) {
	prog, err := compiler.Compile(StaticWebSource, compiler.Config{
		ChannelCodecs: map[string]compiler.PortCodec{
			"client": {Decode: phttp.RequestFormat{}, Encode: phttp.ResponseFormat{}},
		},
		Codecs: map[string]compiler.CodecPair{
			"request":  {Decode: phttp.RequestFormat{}, Encode: phttp.RequestFormat{}},
			"response": {Decode: phttp.ResponseFormat{}, Encode: phttp.ResponseFormat{}},
		},
	})
	if err != nil {
		return nil, err
	}
	pg, err := prog.Proc("webserver")
	if err != nil {
		return nil, err
	}
	return &Service{
		Name:          "static-web",
		Program:       prog,
		Graph:         pg,
		clientChannel: "client",
		dispatch:      core.PerConnection,
	}, nil
}

// MemcachedProxy compiles the Figure 5 proxy for n backend shards.
func MemcachedProxy(n int) (*Service, error) {
	pair := compiler.CodecPair{Decode: memcache.Codec, Encode: memcache.Codec}
	prog, err := compiler.Compile(MemcachedProxySource, compiler.Config{
		ArraySizes: map[string]int{"backends": n},
		Codecs:     map[string]compiler.CodecPair{"cmd": pair},
	})
	if err != nil {
		return nil, err
	}
	pg, err := prog.Proc("memcached_proxy")
	if err != nil {
		return nil, err
	}
	return &Service{
		Name:           "memcached-proxy",
		Program:        prog,
		Graph:          pg,
		clientChannel:  "client",
		backendChannel: "backends",
		dispatch:       core.PerConnection,
		reqFramer:      memcache.FrameRequestLen,
		respFramer:     memcache.FrameResponseLen,
		probe:          memcache.ProbeRequest(),
		cacheProto:     cache.Memcached{},
	}, nil
}

// MemcachedRouter compiles the Listing 1 cache router (GETK caching) for n
// backend shards, using the program's own synthesised binary grammar.
func MemcachedRouter(n int) (*Service, error) {
	prog, err := compiler.Compile(MemcachedRouterSource, compiler.Config{
		ArraySizes: map[string]int{"backends": n},
	})
	if err != nil {
		return nil, err
	}
	pg, err := prog.Proc("memcached")
	if err != nil {
		return nil, err
	}
	return &Service{
		Name:           "memcached-router",
		Program:        prog,
		Graph:          pg,
		clientChannel:  "client",
		backendChannel: "backends",
		dispatch:       core.PerConnection,
		// The router's synthesised cmd grammar shares the Memcached binary
		// header layout (total body length at bytes 8..11), so the same
		// framers serve it.
		reqFramer:  memcache.FrameRequestLen,
		respFramer: memcache.FrameResponseLen,
		probe:      memcache.ProbeRequest(),
	}, nil
}

// HadoopAggregator compiles the Listing 3 in-network combiner for n mapper
// connections feeding one reducer.
func HadoopAggregator(n int) (*Service, error) {
	pair := compiler.CodecPair{Decode: hadoop.Codec, Encode: hadoop.Codec}
	prog, err := compiler.Compile(lang.Listing3, compiler.Config{
		ArraySizes: map[string]int{"mappers": n},
		Codecs:     map[string]compiler.CodecPair{"kv": pair},
	})
	if err != nil {
		return nil, err
	}
	pg, err := prog.Proc("hadoop")
	if err != nil {
		return nil, err
	}
	return &Service{
		Name:          "hadoop-agg",
		Program:       prog,
		Graph:         pg,
		dispatch:      core.Shared,
		sharedChannel: "mappers",
		outChannel:    "reducer",
	}, nil
}

// RouterCmdDesc returns the record descriptor of the router's cmd type
// (clients build requests with it in tests and examples).
func RouterCmdDesc(s *Service) *value.RecordDesc { return s.Program.Desc("cmd") }
