package apps

import (
	"net"
	"testing"
	"time"

	"flick/internal/buffer"
	"flick/internal/core"
	"flick/internal/netstack"
	phttp "flick/internal/proto/http"
	"flick/internal/proto/memcache"
	"flick/internal/value"
)

// TestTaskGraphShapes checks the Figure 3 task-graph structures.
func TestTaskGraphShapes(t *testing.T) {
	count := func(tmpl *core.Template) (in, comp, out int) {
		for _, n := range tmpl.Nodes() {
			switch n.Kind {
			case core.NodeInput:
				in++
			case core.NodeCompute:
				comp++
			case core.NodeOutput:
				out++
			}
		}
		return
	}

	// Figure 3a: HTTP LB with 10 backends — client in/out, 10 backend
	// in/out, request-path compute + response-path compute.
	lb, err := HTTPLoadBalancer(10)
	if err != nil {
		t.Fatal(err)
	}
	in, comp, out := count(lb.Graph.Template)
	if in != 11 || out != 11 || comp != 2 {
		t.Fatalf("HTTP LB shape = %d/%d/%d", in, comp, out)
	}

	// Figure 3b: Memcached proxy — same skeleton.
	mp, err := MemcachedProxy(10)
	if err != nil {
		t.Fatal(err)
	}
	in, comp, out = count(mp.Graph.Template)
	if in != 11 || out != 11 || comp != 2 {
		t.Fatalf("Memcached proxy shape = %d/%d/%d", in, comp, out)
	}

	// Figure 3c / §6.3: Hadoop aggregator with 8 mappers — "16 tasks
	// (8 input, 7 processing and 1 output)".
	ha, err := HadoopAggregator(8)
	if err != nil {
		t.Fatal(err)
	}
	in, comp, out = count(ha.Graph.Template)
	if in != 8 || comp != 7 || out != 1 {
		t.Fatalf("Hadoop aggregator shape = %d/%d/%d", in, comp, out)
	}

	// Static web server: one port, one compute.
	ws, err := StaticWebServer()
	if err != nil {
		t.Fatal(err)
	}
	in, comp, out = count(ws.Graph.Template)
	if in != 1 || comp != 1 || out != 1 {
		t.Fatalf("web server shape = %d/%d/%d", in, comp, out)
	}

	// Cache router: Listing 1's two pipelines.
	mr, err := MemcachedRouter(4)
	if err != nil {
		t.Fatal(err)
	}
	in, comp, out = count(mr.Graph.Template)
	if in != 5 || comp != 2 || out != 5 {
		t.Fatalf("router shape = %d/%d/%d", in, comp, out)
	}
}

func TestStaticWebServerServes(t *testing.T) {
	u := netstack.NewUserNet()
	p := core.NewPlatform(core.Config{Workers: 2, Transport: u})
	defer p.Close()

	ws, err := StaticWebServer()
	if err != nil {
		t.Fatal(err)
	}
	svc, err := ws.Deploy(p, "web:80", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()

	conn, err := u.Dial("web:80")
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	conn.Write(phttp.BuildRequest(nil, "GET", "/index.html", "web", true, nil))
	conn.SetReadDeadline(time.Now().Add(5 * time.Second))

	q := buffer.NewQueue(nil)
	dec := phttp.ResponseFormat{}.NewDecoder()
	rbuf := make([]byte, 8192)
	for {
		msg, ok, derr := dec.Decode(q)
		if derr != nil {
			t.Fatal(derr)
		}
		if ok {
			if msg.Field("status").AsInt() != 200 {
				t.Fatalf("status = %d", msg.Field("status").AsInt())
			}
			if msg.Field("body").ByteLen() == 0 {
				t.Fatal("empty body")
			}
			return
		}
		n, rerr := conn.Read(rbuf)
		if n > 0 {
			q.Append(rbuf[:n])
			continue
		}
		if rerr != nil {
			t.Fatal(rerr)
		}
	}
}

func TestMemcachedProxyRoutesByKey(t *testing.T) {
	u := netstack.NewUserNet()
	p := core.NewPlatform(core.Config{Workers: 4, Transport: u})
	defer p.Close()

	// Two shards, each remembering which keys it saw.
	shardKeys := make([]chan string, 2)
	addrs := make([]string, 2)
	for i := 0; i < 2; i++ {
		i := i
		shardKeys[i] = make(chan string, 100)
		addrs[i] = "shard:" + string(rune('0'+i))
		l, err := u.Listen(addrs[i])
		if err != nil {
			t.Fatal(err)
		}
		go func() {
			for {
				raw, err := l.Accept()
				if err != nil {
					return
				}
				go func(raw net.Conn) {
					c := memcache.NewConn(raw)
					defer c.Close()
					for {
						req, err := c.Receive()
						if err != nil {
							return
						}
						key := req.Field("key").AsString()
						shardKeys[i] <- key
						c.Send(memcache.Response(req, memcache.StatusOK,
							[]byte(key), []byte("shard-"+string(rune('0'+i)))))
					}
				}(raw)
			}
		}()
	}

	mp, err := MemcachedProxy(2)
	if err != nil {
		t.Fatal(err)
	}
	svc, err := mp.Deploy(p, "proxy:11211", addrs)
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()

	raw, err := u.Dial("proxy:11211")
	if err != nil {
		t.Fatal(err)
	}
	client := memcache.NewConn(raw)
	defer client.Close()

	keys := []string{"alpha", "beta", "gamma", "delta", "epsilon"}
	for _, k := range keys {
		resp, err := client.RoundTrip(memcache.Request(memcache.OpGet, []byte(k), nil))
		if err != nil {
			t.Fatalf("roundtrip %s: %v", k, err)
		}
		if resp.Field("key").AsString() != k {
			t.Fatalf("response key = %q, want %q", resp.Field("key").AsString(), k)
		}
	}
	// Keys are partitioned: the same key always lands on the same shard,
	// and both response values identify a real shard.
	close(shardKeys[0])
	close(shardKeys[1])
	seen := map[string]int{}
	for i := 0; i < 2; i++ {
		for k := range shardKeys[i] {
			if prev, dup := seen[k]; dup && prev != i {
				t.Fatalf("key %q hit both shards", k)
			}
			seen[k] = i
		}
	}
	if len(seen) != len(keys) {
		t.Fatalf("saw %d distinct keys, want %d", len(seen), len(keys))
	}
}

func TestDeployBackendCountMismatch(t *testing.T) {
	u := netstack.NewUserNet()
	p := core.NewPlatform(core.Config{Workers: 1, Transport: u})
	defer p.Close()
	mp, err := MemcachedProxy(3)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := mp.Deploy(p, "x:1", []string{"only-one"}); err == nil {
		t.Fatal("backend count mismatch accepted")
	}
}

func TestHadoopDeployNeedsReducer(t *testing.T) {
	u := netstack.NewUserNet()
	p := core.NewPlatform(core.Config{Workers: 1, Transport: u})
	defer p.Close()
	ha, err := HadoopAggregator(2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ha.Deploy(p, "x:1", nil); err == nil {
		t.Fatal("missing reducer address accepted")
	}
}

func TestRouterCmdDesc(t *testing.T) {
	mr, err := MemcachedRouter(2)
	if err != nil {
		t.Fatal(err)
	}
	desc := RouterCmdDesc(mr)
	if desc == nil || desc.FieldIndex("opcode") < 0 || desc.FieldIndex("key") < 0 {
		t.Fatal("router cmd descriptor incomplete")
	}
	rec := desc.New()
	rec.SetField("opcode", value.Int(0x0c))
	if rec.Field("opcode").AsInt() != 0x0c {
		t.Fatal("field set/get")
	}
}
