package apps

import (
	"bytes"
	"fmt"
	"testing"
	"time"

	"flick/internal/backend"
	"flick/internal/buffer"
	"flick/internal/core"
	"flick/internal/grammar"
	"flick/internal/netstack"
	phttp "flick/internal/proto/http"
	"flick/internal/proto/memcache"
	"flick/internal/value"
)

// httpClient is a minimal keep-alive HTTP client for cache e2e tests.
type httpClient struct {
	conn interface {
		Read([]byte) (int, error)
		Write([]byte) (int, error)
		Close() error
	}
	q    *buffer.Queue
	dec  grammar.StreamDecoder
	rbuf []byte
	wbuf []byte
}

func newHTTPClient(t *testing.T, u *netstack.UserNet, addr string) *httpClient {
	t.Helper()
	conn, err := u.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	return &httpClient{
		conn: conn,
		q:    buffer.NewQueue(nil),
		dec:  phttp.ResponseFormat{}.NewDecoder(),
		rbuf: make([]byte, 16<<10),
	}
}

func (c *httpClient) close() { c.conn.Close() }

// roundTrip issues one request and returns the response status and a copy
// of its body.
func (c *httpClient) roundTrip(t *testing.T, method, uri string) (int, []byte) {
	t.Helper()
	c.wbuf = phttp.BuildRequest(c.wbuf[:0], method, uri, "cachetest", true, nil)
	if _, err := c.conn.Write(c.wbuf); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		msg, ok, derr := c.dec.Decode(c.q)
		if derr != nil {
			t.Fatal(derr)
		}
		if ok {
			status := int(msg.Field("status").AsInt())
			body := append([]byte(nil), msg.Field("body").AsBytes()...)
			msg.Release()
			return status, body
		}
		n, rerr := c.conn.Read(c.rbuf)
		if n > 0 {
			c.q.Append(c.rbuf[:n])
			continue
		}
		if rerr != nil {
			t.Fatal(rerr)
		}
	}
	t.Fatal("response timeout")
	return 0, nil
}

// TestHTTPLBCacheServesHits drives the FIFO (request-correlated) cache
// path end to end: repeated GETs on a cached load balancer are served
// without upstream round trips, byte-identical to the first response, and
// a write method on the same URI invalidates the entry.
func TestHTTPLBCacheServesHits(t *testing.T) {
	u := netstack.NewUserNet()
	p := core.NewPlatform(core.Config{Workers: 2, Transport: u})
	defer p.Close()

	servers := make([]*backend.HTTPServer, 2)
	addrs := make([]string, 2)
	for i := range servers {
		s, err := backend.NewHTTPServer(u, listenName("origin", i), 64)
		if err != nil {
			t.Fatal(err)
		}
		defer s.Close()
		servers[i] = s
		addrs[i] = s.Addr()
	}
	backendReqs := func() uint64 {
		var n uint64
		for _, s := range servers {
			n += s.Requests()
		}
		return n
	}

	lb, err := HTTPLoadBalancer(2)
	if err != nil {
		t.Fatal(err)
	}
	lb.Cache.Enable = true
	svc, err := lb.Deploy(p, "lb:80", addrs)
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	cc := svc.ResponseCache()
	if cc == nil {
		t.Fatal("cache enabled but not deployed")
	}

	c := newHTTPClient(t, u, "lb:80")
	defer c.close()

	status, first := c.roundTrip(t, "GET", "/hot.html")
	if status != 200 || len(first) != 64 {
		t.Fatalf("first GET: status %d, body %d bytes", status, len(first))
	}
	afterFill := backendReqs()

	for i := 0; i < 10; i++ {
		status, body := c.roundTrip(t, "GET", "/hot.html")
		if status != 200 || !bytes.Equal(body, first) {
			t.Fatalf("hit %d: status %d, body differs from first response", i, status)
		}
	}
	if got := backendReqs(); got != afterFill {
		t.Fatalf("backends saw %d requests during hits, want %d (all served from cache)", got, afterFill)
	}
	if cs := cc.Counters(); !counterAtLeast(cs, "hits", 10) {
		t.Fatalf("cache counters after hits: %s", cs)
	}

	// A write method on the URI must invalidate the entry: the next GET
	// goes upstream again.
	if status, _ := c.roundTrip(t, "POST", "/hot.html"); status != 200 {
		t.Fatalf("POST status %d", status)
	}
	afterPost := backendReqs()
	if afterPost != afterFill+1 {
		t.Fatalf("POST should reach the backend (%d vs %d)", afterPost, afterFill)
	}
	if status, body := c.roundTrip(t, "GET", "/hot.html"); status != 200 || !bytes.Equal(body, first) {
		t.Fatalf("post-invalidation GET: status %d", status)
	}
	if got := backendReqs(); got != afterPost+1 {
		t.Fatalf("post-invalidation GET should refill upstream (%d vs %d)", got, afterPost)
	}
	if cs := cc.Counters(); !counterAtLeast(cs, "invalidations", 1) {
		t.Fatalf("cache counters after invalidation: %s", cs)
	}
}

// TestMemcachedProxyCacheInvalidateOnSet pins write-through invalidation
// on the opaque-correlated path: a SET through the cached proxy must drop
// the entry so the next GET observes the new value, not the cached one.
func TestMemcachedProxyCacheInvalidateOnSet(t *testing.T) {
	u := netstack.NewUserNet()
	p := core.NewPlatform(core.Config{Workers: 2, Transport: u})
	defer p.Close()

	s, err := backend.NewMemcachedServer(u, "shard:0")
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	s.Preload(map[string]string{"k": "old-value"})

	mp, err := MemcachedProxy(1)
	if err != nil {
		t.Fatal(err)
	}
	mp.Cache.Enable = true
	svc, err := mp.Deploy(p, "proxy:11211", []string{s.Addr()})
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()

	raw, err := u.Dial("proxy:11211")
	if err != nil {
		t.Fatal(err)
	}
	mc := memcache.NewConn(raw)
	defer mc.Close()

	get := func(opaque int64) string {
		req := memcache.Request(memcache.OpGet, []byte("k"), nil)
		req.SetField("opaque", value.Int(opaque))
		resp, rerr := mc.RoundTrip(req)
		if rerr != nil {
			t.Fatal(rerr)
		}
		defer resp.Release()
		if memcache.Status(resp) != memcache.StatusOK {
			t.Fatalf("GET status %d", memcache.Status(resp))
		}
		if got := resp.Field("opaque").AsInt(); got != opaque {
			t.Fatalf("response opaque %d, want %d", got, opaque)
		}
		return string(resp.Field("value").AsBytes())
	}

	if v := get(1); v != "old-value" {
		t.Fatalf("first GET = %q", v)
	}
	before := s.Requests()
	if v := get(2); v != "old-value" {
		t.Fatalf("cached GET = %q", v)
	}
	if got := s.Requests(); got != before {
		t.Fatalf("cached GET reached the backend (%d vs %d)", got, before)
	}

	resp, err := mc.RoundTrip(memcache.Request(memcache.OpSet, []byte("k"), []byte("new-value")))
	if err != nil {
		t.Fatal(err)
	}
	if memcache.Status(resp) != memcache.StatusOK {
		t.Fatalf("SET status %d", memcache.Status(resp))
	}
	resp.Release()

	if v := get(3); v != "new-value" {
		t.Fatalf("post-SET GET = %q, stale entry served", v)
	}
}

// counterAtLeast reports whether the named counter is >= n.
func counterAtLeast(cs interface {
	Get(string) (uint64, bool)
}, name string, n uint64) bool {
	v, ok := cs.Get(name)
	return ok && v >= n
}

// listenName renders a deterministic user-net listen address.
func listenName(prefix string, i int) string {
	return fmt.Sprintf("%s:%d", prefix, i)
}
