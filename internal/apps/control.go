package apps

import (
	"context"
	"sync"

	"flick/internal/admin"
	"flick/internal/backend"
	"flick/internal/buffer"
	"flick/internal/core"
	"flick/internal/metrics"
	"flick/internal/topology"
)

// Control is a deployed service's control plane: the one object every
// topology-update path converges on. The admin API's PUT /topology, a
// topology.Source feed (file re-read on SIGHUP, HTTP poll) and direct
// calls all land in Apply, which serialises updates and drives the
// drain-correct Service.UpdateBackends transition; View and Counters
// snapshot the live state the admin API serves.
type Control struct {
	svc      *Service
	deployed *core.Service
	reg      *metrics.Registry
	hists    *metrics.HistogramSet

	mu       sync.Mutex // serialises Apply (topology transitions are ordered)
	applied  metrics.Counter
	rejected metrics.Counter
}

// NewControl builds the control plane for a deployed service, registering
// the platform's counter sets — scheduler, buffer pool, upstream layer
// (when the service has one) and the control plane's own — in the
// registry /counters serves, and the live latency dimensions — service
// total, upstream round trip, cache hit/miss/coalesced — in the histogram
// set /latency serves.
func NewControl(svc *Service, deployed *core.Service, p *core.Platform) *Control {
	c := &Control{svc: svc, deployed: deployed,
		reg: metrics.NewRegistry(), hists: metrics.NewHistogramSet()}
	c.reg.Register("sched", func() metrics.CounterSet {
		return p.Scheduler().Stats().Metrics()
	})
	c.reg.Register("pool", buffer.Global.Counters)
	if m := deployed.Upstreams(); m != nil {
		c.reg.Register("upstream", m.Counters)
	}
	if cc := deployed.ResponseCache(); cc != nil {
		c.reg.Register("cache", cc.Counters)
	}
	c.reg.Register("control", func() metrics.CounterSet {
		return metrics.NewCounterSet(
			"applied", c.applied.Value(),
			"rejected", c.rejected.Value(),
		)
	})
	c.hists.Register("total", deployed.Latency().Total().Snapshot)
	if m := deployed.Upstreams(); m != nil {
		c.hists.Register("upstream", m.Latency().Snapshot)
	}
	if cc := deployed.ResponseCache(); cc != nil {
		c.hists.Register("cache_hit", cc.HitLatency().Snapshot)
		c.hists.Register("cache_miss", cc.MissLatency().Snapshot)
		c.hists.Register("cache_coalesced", cc.CoalescedLatency().Snapshot)
	}
	return c
}

// Registry exposes the counter registry (e.g. to register service-specific
// sets before serving the admin API).
func (c *Control) Registry() *metrics.Registry { return c.reg }

// Apply implements admin.Controller: it validates and installs a weighted
// backend topology through Service.UpdateWeighted, serialising concurrent
// updates so topology transitions are totally ordered.
func (c *Control) Apply(list []topology.Backend) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if err := c.svc.UpdateWeighted(c.deployed, list); err != nil {
		c.rejected.Inc()
		return err
	}
	c.applied.Inc()
	return nil
}

// Counters implements admin.Controller: every registered counter set in
// registration order.
func (c *Control) Counters() []metrics.Named { return c.reg.Snapshot() }

// Latency implements admin.Controller: every registered latency dimension
// in registration order.
func (c *Control) Latency() []metrics.NamedHist { return c.hists.Snapshot() }

// Histograms exposes the latency-dimension set (e.g. to register
// service-specific dimensions before serving the admin API).
func (c *Control) Histograms() *metrics.HistogramSet { return c.hists }

// View implements admin.Controller: a snapshot of the installed routing
// topology — addresses, weights, ring shares — joined with the upstream
// layer's live per-backend health verdicts and in-flight gauges.
func (c *Control) View() admin.TopologyView {
	v := admin.TopologyView{Capacity: c.deployed.BackendCapacity()}
	if total := c.deployed.Latency().Total().Snapshot(); total.Count > 0 {
		v.Latency = &total
	}
	if cc := c.deployed.ResponseCache(); cc != nil {
		cs := cc.Counters()
		hits, _ := cs.Get("hits")
		misses, _ := cs.Get("misses")
		coalesced, _ := cs.Get("coalesced")
		revalidated, _ := cs.Get("revalidated")
		staleServed, _ := cs.Get("stale_served")
		v.Cache = &admin.CacheView{
			HitRatio:      cc.HitRatio(),
			BytesResident: cc.BytesResident(),
			Hits:          hits,
			Misses:        misses,
			Coalesced:     coalesced,
			Revalidated:   revalidated,
			StaleServed:   staleServed,
		}
	}
	t := c.deployed.Topology()
	var (
		addrs   []string
		weights []int
		shares  []float64
	)
	switch r := t.(type) {
	case *backend.BoundedRing:
		v.Router = "bounded-ring"
		v.BoundedLoadC = r.C()
		addrs, weights, shares = r.Backends(), r.Ring().Weights(), r.Shares()
	case *backend.Ring:
		v.Router = "ring"
		addrs, weights, shares = r.Backends(), r.Weights(), r.Shares()
	case nil:
		v.Router = "static"
		return v
	default: // *backend.ModTable and any other plain Topology
		v.Router = "mod"
		addrs = t.Backends()
		weights = make([]int, len(addrs))
		shares = make([]float64, len(addrs))
		for i := range addrs {
			weights[i] = 1
			shares[i] = 1 / float64(len(addrs))
		}
	}
	m := c.deployed.Upstreams()
	for i, a := range addrs {
		row := admin.BackendView{Addr: a, Weight: weights[i], Share: shares[i]}
		if m != nil {
			row.Health = m.HealthFor(a)
			row.Inflight = m.InflightFor(a)
		} else {
			row.Health = "unmanaged" // per-connection dialling: no pool to ask
		}
		v.Backends = append(v.Backends, row)
	}
	return v
}

// Follow applies every topology a Source emits until the source closes or
// ctx is cancelled. Apply failures do not stop the feed (the last good
// topology stays installed); notify — when non-nil — observes every
// emission with the outcome of its application.
func (c *Control) Follow(ctx context.Context, src topology.Source, notify func([]topology.Backend, error)) error {
	ch, err := src.Watch(ctx)
	if err != nil {
		return err
	}
	for list := range ch {
		err := c.Apply(list)
		if notify != nil {
			notify(list, err)
		}
	}
	return nil
}

// ServeAdmin starts the admin HTTP listener on addr, fronting this
// control plane. The caller owns the returned server's lifetime.
func (c *Control) ServeAdmin(addr string) (*admin.Server, error) {
	return admin.Start(addr, c)
}

var _ admin.Controller = (*Control)(nil)
