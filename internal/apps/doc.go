// Package apps packages the paper's three application-specific network
// services (§2.1, §6.1) as deployable units: each bundles the FLICK source,
// the compilation configuration (codec bindings, array sizes) and the
// platform service configuration, so benchmarks and examples deploy them
// with one call.
//
// A fourth service, the static web server (§6.3's first experiment), is the
// HTTP load balancer variant that answers requests itself instead of
// forwarding ("We also implement a variant of the HTTP load balancer that
// does not use backend servers but which returns a fixed response").
//
// # Deployment options
//
// A Service carries the knobs the benchmarks ablate, grouped into two
// nested option structs whose zero values are the defaults. Upstream
// (UpstreamOptions) configures the shared connection layer: Disable
// (dedicated backend sockets per client instead of the shared pipelined
// pool), PoolSize/Window/Shards sizing, and ProbeInterval (proactive
// upstream health probes using the service protocol's no-op request).
// Topology (TopologyOptions) configures routing: Live (consistent-hash
// ring routing with hot UpdateBackends, where the compiled channel-array
// size is capacity rather than census), VNodes, Mod (the hash-mod-B
// ablation) and BoundedLoadC (consistent hashing with bounded loads over
// the upstream layer's in-flight gauge).
//
// # Control plane
//
// Control wraps a deployed live-topology service in its control plane:
// Apply is the single update path every topology source converges on
// (admin PUT /topology, SIGHUP file re-reads and HTTP polling via
// topology.Source + Follow), View/Counters snapshot the state the admin
// HTTP API (internal/admin, ServeAdmin) serves.
//
// # Ownership
//
// The services themselves run entirely on the platform's zero-copy path;
// nothing in this package holds message views beyond a task activation.
// Test and example clients that call memcache.Conn.RoundTrip/Receive own
// the returned responses and must Release them (see the memcache package
// note on ownership).
//
// # Counters
//
// Deployed services expose their layers' counters: the upstream layer via
// core.Service.Upstreams().Counters() (dials, reuse, inflight, redials,
// failfast, probes, drained), the scheduler via Platform counters, and
// the buffer pool via buffer.Pool.Counters.
package apps
