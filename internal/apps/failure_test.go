package apps

import (
	"net"
	"testing"
	"time"

	"flick/internal/core"
	"flick/internal/netstack"
	phttp "flick/internal/proto/http"
	"flick/internal/proto/memcache"
)

// Failure injection: the platform must shed malformed traffic and broken
// peers without wedging, and keep serving well-formed clients afterwards
// (§4.2's "default behaviour when a message is incomplete or not in an
// expected form").

func TestWebServerSurvivesGarbageBytes(t *testing.T) {
	u := netstack.NewUserNet()
	p := core.NewPlatform(core.Config{Workers: 2, Transport: u})
	defer p.Close()
	ws, err := StaticWebServer()
	if err != nil {
		t.Fatal(err)
	}
	svc, err := ws.Deploy(p, "web:1", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()

	// Garbage: not HTTP at all. The service must drop the connection.
	bad, err := u.Dial("web:1")
	if err != nil {
		t.Fatal(err)
	}
	bad.Write([]byte("\x00\x01\x02 utter nonsense without any crlf"))
	bad.SetReadDeadline(time.Now().Add(2 * time.Second))
	buf := make([]byte, 64)
	// Either EOF (dropped) or timeout is acceptable; a response is not.
	if n, err := bad.Read(buf); err == nil && n > 0 {
		t.Fatalf("service answered garbage with %q", buf[:n])
	}
	bad.Close()

	// A well-formed client right after must be served.
	good, err := u.Dial("web:1")
	if err != nil {
		t.Fatal(err)
	}
	defer good.Close()
	good.Write(phttp.BuildRequest(nil, "GET", "/", "h", false, nil))
	good.SetReadDeadline(time.Now().Add(5 * time.Second))
	if n, err := good.Read(buf); err != nil || n == 0 {
		t.Fatalf("healthy client starved after garbage: n=%d err=%v", n, err)
	}
}

func TestProxySurvivesTruncatedMemcachedFrame(t *testing.T) {
	u := netstack.NewUserNet()
	p := core.NewPlatform(core.Config{Workers: 2, Transport: u})
	defer p.Close()

	var srv *net.Conn
	_ = srv
	l, _ := u.Listen("shard:0")
	go func() {
		for {
			raw, err := l.Accept()
			if err != nil {
				return
			}
			go func(raw net.Conn) {
				c := memcache.NewConn(raw)
				defer c.Close()
				for {
					req, err := c.Receive()
					if err != nil {
						return
					}
					c.Send(memcache.Response(req, memcache.StatusOK, req.Field("key").AsBytes(), []byte("v")))
				}
			}(raw)
		}
	}()

	mp, err := MemcachedProxy(1)
	if err != nil {
		t.Fatal(err)
	}
	svc, err := mp.Deploy(p, "proxy:1", []string{"shard:0"})
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()

	// A frame that claims a huge body then hangs up mid-message.
	half, err := u.Dial("proxy:1")
	if err != nil {
		t.Fatal(err)
	}
	wire, _ := memcache.Codec.Encode(nil, memcache.Request(memcache.OpGet, []byte("key"), nil))
	half.Write(wire[:len(wire)-2]) // truncated frame
	half.Close()

	// The proxy must still serve a complete client.
	raw, err := u.Dial("proxy:1")
	if err != nil {
		t.Fatal(err)
	}
	c := memcache.NewConn(raw)
	defer c.Close()
	resp, err := c.RoundTrip(memcache.Request(memcache.OpGet, []byte("after-truncation"), nil))
	if err != nil {
		t.Fatal(err)
	}
	if resp.Field("value").AsString() != "v" {
		t.Fatalf("value = %q", resp.Field("value").AsString())
	}
}

func TestProxySurvivesDeadBackend(t *testing.T) {
	u := netstack.NewUserNet()
	p := core.NewPlatform(core.Config{Workers: 2, Transport: u})
	defer p.Close()

	// A backend that accepts and instantly hangs up.
	l, _ := u.Listen("dead:0")
	go func() {
		for {
			c, err := l.Accept()
			if err != nil {
				return
			}
			c.Close()
		}
	}()

	mp, err := MemcachedProxy(1)
	if err != nil {
		t.Fatal(err)
	}
	svc, err := mp.Deploy(p, "proxy:2", []string{"dead:0"})
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()

	raw, err := u.Dial("proxy:2")
	if err != nil {
		t.Fatal(err)
	}
	defer raw.Close()
	c := memcache.NewConn(raw)
	// The request cannot be answered; the client must observe the failure
	// as a closed connection rather than a hang.
	c.Send(memcache.Request(memcache.OpGet, []byte("k"), nil))
	raw.SetReadDeadline(time.Now().Add(3 * time.Second))
	if _, err := c.Receive(); err == nil {
		t.Fatal("response produced by a dead backend")
	}
}

func TestServiceCloseAbortsInFlight(t *testing.T) {
	u := netstack.NewUserNet()
	p := core.NewPlatform(core.Config{Workers: 2, Transport: u})
	defer p.Close()
	ws, err := StaticWebServer()
	if err != nil {
		t.Fatal(err)
	}
	svc, err := ws.Deploy(p, "web:close", nil)
	if err != nil {
		t.Fatal(err)
	}
	conn, err := u.Dial("web:close")
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	svc.Close()
	// Dial after close must be refused.
	if _, err := u.Dial("web:close"); err == nil {
		t.Fatal("dial succeeded after service close")
	}
}

func TestManyConcurrentClientsStayIsolated(t *testing.T) {
	u := netstack.NewUserNet()
	p := core.NewPlatform(core.Config{Workers: 4, Transport: u})
	defer p.Close()
	ws, err := StaticWebServer()
	if err != nil {
		t.Fatal(err)
	}
	svc, err := ws.Deploy(p, "web:iso", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()

	done := make(chan error, 32)
	for i := 0; i < 32; i++ {
		go func() {
			conn, err := u.Dial("web:iso")
			if err != nil {
				done <- err
				return
			}
			defer conn.Close()
			conn.Write(phttp.BuildRequest(nil, "GET", "/", "h", false, nil))
			conn.SetReadDeadline(time.Now().Add(5 * time.Second))
			buf := make([]byte, 1024)
			_, err = conn.Read(buf)
			done <- err
		}()
	}
	for i := 0; i < 32; i++ {
		if err := <-done; err != nil {
			t.Fatalf("client %d: %v", i, err)
		}
	}
}
