package apps

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"testing"

	"flick/internal/backend"
	"flick/internal/core"
	"flick/internal/netstack"
)

// getLatencyRaw GETs /latency and returns the raw body plus its decoded
// form (dimension name -> field -> value).
func getLatencyRaw(t *testing.T, base string) (string, map[string]map[string]int64) {
	t.Helper()
	resp, err := http.Get(base + "/latency")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /latency = %d %s", resp.StatusCode, raw)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Fatalf("GET /latency content type %q", ct)
	}
	var dims map[string]map[string]int64
	if err := json.Unmarshal(raw, &dims); err != nil {
		t.Fatalf("GET /latency: %v (%s)", err, raw)
	}
	return string(raw), dims
}

// TestAdminLatencyEndpoint drives real requests through a deployed HTTP
// load balancer and reads the live pipeline back over the admin API: the
// total histogram's count must equal the requests served, quantiles must
// be monotone, the cache dimensions must appear (and populate) only when
// the cache is enabled, and the JSON key order is pinned so dashboards can
// diff bodies byte-wise.
func TestAdminLatencyEndpoint(t *testing.T) {
	const requests = 32
	for _, cached := range []bool{false, true} {
		name := "plain"
		if cached {
			name = "cached"
		}
		t.Run(name, func(t *testing.T) {
			u := netstack.NewUserNet()
			p := core.NewPlatform(core.Config{Workers: 2, Transport: u})
			defer p.Close()

			servers := make([]*backend.HTTPServer, 2)
			addrs := make([]string, 2)
			for i := range servers {
				s, err := backend.NewHTTPServer(u, listenName("origin", i), 64)
				if err != nil {
					t.Fatal(err)
				}
				defer s.Close()
				servers[i] = s
				addrs[i] = s.Addr()
			}

			lb, err := HTTPLoadBalancer(2)
			if err != nil {
				t.Fatal(err)
			}
			lb.Cache.Enable = cached
			svc, err := lb.Deploy(p, "lb:80", addrs)
			if err != nil {
				t.Fatal(err)
			}
			defer svc.Close()

			ctl := NewControl(lb, svc, p)
			srv, err := ctl.ServeAdmin("127.0.0.1:0")
			if err != nil {
				t.Fatal(err)
			}
			defer srv.Close()
			base := "http://" + srv.Addr()

			// Before any traffic every dimension is empty and /topology
			// omits its latency summary.
			_, dims := getLatencyRaw(t, base)
			for dim, h := range dims {
				if h["count"] != 0 {
					t.Fatalf("pre-traffic %s count = %d", dim, h["count"])
				}
			}
			if v := getView(t, base); v.Latency != nil {
				t.Fatalf("pre-traffic /topology carries latency: %+v", v.Latency)
			}

			c := newHTTPClient(t, u, "lb:80")
			defer c.close()
			for i := 0; i < requests; i++ {
				if status, _ := c.roundTrip(t, "GET", "/hot.html"); status != 200 {
					t.Fatalf("request %d: status %d", i, status)
				}
			}

			raw, dims := getLatencyRaw(t, base)

			// Key order is pinned: dimensions in registration order, fields
			// in count,p50,p95,p99,p999,max,mean order.
			wantDims := []string{"total", "upstream"}
			if cached {
				wantDims = append(wantDims, "cache_hit", "cache_miss", "cache_coalesced")
			}
			prev := -1
			for _, dim := range wantDims {
				idx := strings.Index(raw, fmt.Sprintf("%q:{\"count\":", dim))
				if idx < 0 {
					t.Fatalf("/latency missing dimension %q or order not pinned: %s", dim, raw)
				}
				if idx < prev {
					t.Fatalf("/latency dimension %q out of order: %s", dim, raw)
				}
				prev = idx
			}
			if !cached {
				if _, ok := dims["cache_hit"]; ok {
					t.Fatalf("cache_hit dimension present without -cache: %s", raw)
				}
			}

			total := dims["total"]
			if total["count"] != requests {
				t.Fatalf("total count = %d, want %d (one sample per request served)", total["count"], requests)
			}
			for _, dim := range wantDims {
				h := dims[dim]
				if h["p50"] > h["p99"] || h["p99"] > h["max"] {
					t.Fatalf("%s quantiles not monotone: %s", dim, raw)
				}
			}
			up := dims["upstream"]["count"]
			if cached {
				// One leading miss fills the entry; every later request is a
				// cache hit and never goes upstream.
				if up == 0 || up >= requests {
					t.Fatalf("cached arm upstream count = %d, want in [1,%d)", up, requests)
				}
				if hits := dims["cache_hit"]["count"]; hits != requests-up {
					t.Fatalf("cache_hit count = %d, upstream = %d, want hits+upstream == %d", hits, up, requests)
				}
				if misses := dims["cache_miss"]["count"]; misses != up {
					t.Fatalf("cache_miss count = %d, want %d (one per upstream fill)", misses, up)
				}
			} else if up != requests {
				t.Fatalf("plain arm upstream count = %d, want %d (every request goes upstream)", up, requests)
			}

			// /topology mirrors the total summary once traffic has flowed.
			v := getView(t, base)
			if v.Latency == nil || v.Latency.Count != requests {
				t.Fatalf("/topology latency = %+v, want count %d", v.Latency, requests)
			}
			if v.Latency.P50 > v.Latency.P99 || v.Latency.P99 > v.Latency.Max {
				t.Fatalf("/topology latency quantiles not monotone: %+v", v.Latency)
			}
		})
	}
}
