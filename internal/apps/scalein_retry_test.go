package apps

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestScaleInUnderConnectLoadZeroClientErrors pins the scale-in dispatch
// retry (ROADMAP: "scale-in dispatch race"): a dispatch that snapshots
// the old topology just as a backend is removed has its lease refused
// with ErrRetired — before the retry, that surfaced as a dropped client
// connection. dispatchPerConn now rebinds once against the fresh
// snapshot, so flapping the backend set under continuous connect load
// must produce zero client errors.
func TestScaleInUnderConnectLoadZeroClientErrors(t *testing.T) {
	const (
		total   = 3
		clients = 8
		keys    = 64
		flips   = 30
	)
	tb := newTopologyTestbed(t, total, total, keys, false)

	var (
		stop     atomic.Bool
		errCount atomic.Uint64
		reqCount atomic.Uint64
		firstErr atomic.Value
		wg       sync.WaitGroup
	)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := 0; !stop.Load(); i++ {
				k := (c*17 + i) % keys
				key := fmt.Sprintf("topo-key-%04d", k)
				if err := tb.get([]byte(key), fmt.Sprintf("value-%04d", k)); err != nil {
					errCount.Add(1)
					firstErr.CompareAndSwap(nil, fmt.Errorf("client %d req %d: %w", c, i, err))
					return
				}
				reqCount.Add(1)
			}
		}(c)
	}

	// Flap the topology: every flip scales in (B=3 → 2) and back out,
	// widening the window in which a dispatch can snapshot a topology
	// whose backend is being retired underneath it.
	for f := 0; f < flips && errCount.Load() == 0; f++ {
		if err := tb.mp.UpdateBackends(tb.svc, tb.addrs[:2]); err != nil {
			t.Fatalf("scale-in %d: %v", f, err)
		}
		time.Sleep(3 * time.Millisecond)
		if err := tb.mp.UpdateBackends(tb.svc, tb.addrs); err != nil {
			t.Fatalf("scale-out %d: %v", f, err)
		}
		time.Sleep(3 * time.Millisecond)
	}
	stop.Store(true)
	wg.Wait()

	if e := errCount.Load(); e != 0 {
		t.Fatalf("%d client errors across %d scale-in/out flips (first: %v)",
			e, flips, firstErr.Load())
	}
	if reqCount.Load() == 0 {
		t.Fatal("no requests completed during the topology flapping")
	}
	t.Logf("scale-in flapping: %d requests, 0 errors over %d flips", reqCount.Load(), flips)
}
