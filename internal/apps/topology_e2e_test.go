package apps

import (
	"bytes"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"flick/internal/backend"
	"flick/internal/core"
	"flick/internal/netstack"
	phttp "flick/internal/proto/http"
	"flick/internal/proto/memcache"
)

// topologyTestbed deploys the memcached proxy with a live topology over
// nTotal backends (all preloaded with every key), initially serving the
// first nInitial of them.
type topologyTestbed struct {
	u     *netstack.UserNet
	p     *core.Platform
	mp    *Service
	svc   *core.Service
	srvs  []*backend.MemcachedServer
	addrs []string
	keys  [][]byte
}

func newTopologyTestbed(t *testing.T, nTotal, nInitial, nKeys int, mod bool) *topologyTestbed {
	t.Helper()
	tb := &topologyTestbed{u: netstack.NewUserNet()}
	tb.p = core.NewPlatform(core.Config{Workers: 4, Transport: tb.u})
	t.Cleanup(tb.p.Close)

	kv := map[string]string{}
	for i := 0; i < nKeys; i++ {
		k := fmt.Sprintf("topo-key-%04d", i)
		kv[k] = fmt.Sprintf("value-%04d", i)
		tb.keys = append(tb.keys, []byte(k))
	}
	for b := 0; b < nTotal; b++ {
		srv, err := backend.NewMemcachedServer(tb.u, fmt.Sprintf("topo-shard:%d", b))
		if err != nil {
			t.Fatal(err)
		}
		srv.Preload(kv)
		t.Cleanup(srv.Close)
		tb.srvs = append(tb.srvs, srv)
		tb.addrs = append(tb.addrs, srv.Addr())
	}
	mp, err := MemcachedProxy(nTotal) // compiled capacity: nTotal ports
	if err != nil {
		t.Fatal(err)
	}
	mp.Topology.Live = true
	mp.Topology.Mod = mod
	tb.mp = mp
	svc, err := mp.Deploy(tb.p, "topo-proxy:1", tb.addrs[:nInitial])
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(svc.Close)
	tb.svc = svc
	return tb
}

// get dials the proxy, round-trips one GET and verifies the value.
func (tb *topologyTestbed) get(key []byte, want string) error {
	raw, err := tb.u.Dial("topo-proxy:1")
	if err != nil {
		return err
	}
	defer raw.Close()
	c := memcache.NewConn(raw)
	raw.SetReadDeadline(time.Now().Add(10 * time.Second))
	resp, err := c.RoundTrip(memcache.Request(memcache.OpGet, key, nil))
	if err != nil {
		return err
	}
	defer resp.Release() // responses retain pooled wire bytes
	if st := memcache.Status(resp); st != memcache.StatusOK {
		return fmt.Errorf("GET %s: status %#x", key, st)
	}
	if got := resp.Field("value").AsString(); got != want {
		return fmt.Errorf("GET %s: value %q, want %q", key, got, want)
	}
	return nil
}

// TestLiveScaleOutZeroErrors is the tentpole's acceptance gate: growing
// the backend set of a serving proxy must not fail a single request —
// connections opened before the update finish on their original sockets
// and routing, connections after it route through the new ring — and the
// added backend must actually start taking traffic.
func TestLiveScaleOutZeroErrors(t *testing.T) {
	const (
		total   = 3
		initial = 2
		clients = 8
		keys    = 64
	)
	tb := newTopologyTestbed(t, total, initial, keys, false)

	var (
		stop     atomic.Bool
		errCount atomic.Uint64
		reqCount atomic.Uint64
		firstErr atomic.Value
		wg       sync.WaitGroup
	)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := 0; !stop.Load(); i++ {
				k := (c*31 + i) % keys
				key := fmt.Sprintf("topo-key-%04d", k)
				if err := tb.get([]byte(key), fmt.Sprintf("value-%04d", k)); err != nil {
					errCount.Add(1)
					firstErr.CompareAndSwap(nil, err)
					return
				}
				reqCount.Add(1)
			}
		}(c)
	}

	// Let the fleet run against B=2, then scale out to B=3 live.
	time.Sleep(150 * time.Millisecond)
	before := reqCount.Load()
	if err := tb.mp.UpdateBackends(tb.svc, tb.addrs); err != nil {
		t.Fatalf("UpdateBackends: %v", err)
	}

	// The new backend must pick up traffic (reconnecting clients route
	// through the new ring, which owns ~1/3 of the key space).
	deadline := time.Now().Add(10 * time.Second)
	for tb.srvs[total-1].Requests() == 0 {
		if time.Now().After(deadline) {
			stop.Store(true)
			wg.Wait()
			t.Fatalf("scaled-out backend got no traffic (reqs=%d errs=%d)", reqCount.Load(), errCount.Load())
		}
		time.Sleep(5 * time.Millisecond)
	}
	stop.Store(true)
	wg.Wait()

	if e := errCount.Load(); e != 0 {
		t.Fatalf("%d request errors during live scale-out (first: %v)", e, firstErr.Load())
	}
	if reqCount.Load() <= before {
		t.Fatal("no requests completed after the topology update")
	}
	if d, _ := tb.svc.Upstreams().Counters().Get("drained"); d != 0 {
		t.Fatalf("scale-out drained %d sockets; growing the set must drain nothing", d)
	}
	t.Logf("scale-out: %d requests, 0 errors, new backend served %d", reqCount.Load(), tb.srvs[total-1].Requests())
}

// TestLiveScaleInDrainsUpstream: shrinking the set drains the removed
// backend's shared sockets and subsequent traffic avoids it entirely.
func TestLiveScaleInDrainsUpstream(t *testing.T) {
	const keys = 64
	tb := newTopologyTestbed(t, 3, 3, keys, false)

	// Touch every key once so all three backends hold sockets.
	for i, k := range tb.keys {
		if err := tb.get(k, fmt.Sprintf("value-%04d", i)); err != nil {
			t.Fatalf("warm-up GET: %v", err)
		}
	}
	if err := tb.mp.UpdateBackends(tb.svc, tb.addrs[:2]); err != nil {
		t.Fatalf("UpdateBackends: %v", err)
	}
	// All leases from the warm-up closed with their instances, so the
	// removed backend's sockets drain promptly.
	deadline := time.Now().Add(5 * time.Second)
	for {
		if d, _ := tb.svc.Upstreams().Counters().Get("drained"); d > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("removed backend never drained (counters: %s)", tb.svc.Upstreams().Counters())
		}
		time.Sleep(5 * time.Millisecond)
	}

	removedBefore := tb.srvs[2].Requests()
	for i, k := range tb.keys {
		if err := tb.get(k, fmt.Sprintf("value-%04d", i)); err != nil {
			t.Fatalf("GET after scale-in: %v", err)
		}
	}
	if got := tb.srvs[2].Requests(); got != removedBefore {
		t.Fatalf("removed backend served %d requests after scale-in", got-removedBefore)
	}
}

// TestCompiledProxyRoutesViaRing pins the compiler/runtime handshake: the
// compiled `hash(req.key) mod len(backends)` expression must route every
// key to exactly the backend the service's ring predicts.
func TestCompiledProxyRoutesViaRing(t *testing.T) {
	const keys = 48
	tb := newTopologyTestbed(t, 3, 3, keys, false)
	ring := backend.NewRing(tb.addrs, 0) // same parameters as the service's

	expect := make([]uint64, 3)
	base := make([]uint64, 3)
	for b, srv := range tb.srvs {
		base[b] = srv.Requests()
	}
	for i, k := range tb.keys {
		expect[ring.Route(backend.KeyHash(k))]++
		if err := tb.get(k, fmt.Sprintf("value-%04d", i)); err != nil {
			t.Fatalf("GET: %v", err)
		}
	}
	for b, srv := range tb.srvs {
		if got := srv.Requests() - base[b]; got != expect[b] {
			t.Fatalf("backend %d served %d requests, ring predicts %d", b, got, expect[b])
		}
	}
}

// TestHTTPLBLiveTopologyNoBlackhole pins the instance_id routing lowering:
// the HTTP LB routes per connection via `instance_id() mod len(backends)`,
// so with a live topology whose bound count is below the compiled
// capacity, every connection must still reach a *bound* backend — before
// the routed lowering covered instance_id, ~half the connections would
// target unbound ports and hang with their requests silently dropped.
func TestHTTPLBLiveTopologyNoBlackhole(t *testing.T) {
	const (
		capacity = 4
		bound    = 2
		conns    = 12
	)
	u := netstack.NewUserNet()
	p := core.NewPlatform(core.Config{Workers: 4, Transport: u})
	defer p.Close()
	addrs := make([]string, bound)
	for b := 0; b < bound; b++ {
		srv, err := backend.NewHTTPServer(u, fmt.Sprintf("lb-origin:%d", b), 64)
		if err != nil {
			t.Fatal(err)
		}
		defer srv.Close()
		addrs[b] = srv.Addr()
	}
	lb, err := HTTPLoadBalancer(capacity)
	if err != nil {
		t.Fatal(err)
	}
	lb.Topology.Live = true
	svc, err := lb.Deploy(p, "lb-topo:80", addrs)
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()

	for i := 0; i < conns; i++ {
		raw, err := u.Dial("lb-topo:80")
		if err != nil {
			t.Fatal(err)
		}
		req := phttp.BuildRequest(nil, "GET", "/", "lb", false, nil)
		if _, err := raw.Write(req); err != nil {
			raw.Close()
			t.Fatal(err)
		}
		raw.SetReadDeadline(time.Now().Add(5 * time.Second))
		buf := make([]byte, 4096)
		got := 0
		for got == 0 {
			n, rerr := raw.Read(buf)
			got += n
			if rerr != nil && got == 0 {
				raw.Close()
				t.Fatalf("connection %d got no response: %v (request blackholed on an unbound port?)", i, rerr)
			}
		}
		raw.Close()
		if !bytes.HasPrefix(buf[:got], []byte("HTTP/1.1 200")) {
			t.Fatalf("connection %d: unexpected response %q", i, buf[:min(got, 40)])
		}
	}
}

// TestCompiledProxyModAblationRoutesByModulo: with ModTopology the same
// service routes by hash mod B over the live backend count.
func TestCompiledProxyModAblationRoutesByModulo(t *testing.T) {
	const keys = 48
	tb := newTopologyTestbed(t, 3, 2, keys, true) // B=2 live of 3 compiled

	expect := make([]uint64, 3)
	base := make([]uint64, 3)
	for b, srv := range tb.srvs {
		base[b] = srv.Requests()
	}
	for i, k := range tb.keys {
		expect[uint64(backend.KeyHash(k))%2]++
		if err := tb.get(k, fmt.Sprintf("value-%04d", i)); err != nil {
			t.Fatalf("GET: %v", err)
		}
	}
	for b, srv := range tb.srvs {
		if got := srv.Requests() - base[b]; got != expect[b] {
			t.Fatalf("backend %d served %d requests, mod-2 predicts %d", b, got, expect[b])
		}
	}
}
