package apps

import (
	"bytes"
	"fmt"
	"net"
	"sync"
	"testing"
	"time"

	"flick/internal/backend"
	"flick/internal/buffer"
	"flick/internal/core"
	"flick/internal/netstack"
	"flick/internal/proto/memcache"
)

// driveShortLivedClients churns C short-lived clients through the proxy:
// each dials, issues one GETK for its own key, captures the raw response
// bytes, and disconnects. Responses are returned keyed by client index.
func driveShortLivedClients(t *testing.T, u *netstack.UserNet, addr string, clients int) [][]byte {
	t.Helper()
	out := make([][]byte, clients)
	errs := make([]error, clients)
	var wg sync.WaitGroup
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			raw, err := u.Dial(addr)
			if err != nil {
				errs[i] = err
				return
			}
			defer raw.Close()
			wire, err := memcache.Codec.Encode(nil, memcache.Request(memcache.OpGetK, []byte(fmt.Sprintf("churn-key-%03d", i)), nil))
			if err != nil {
				errs[i] = err
				return
			}
			if _, err := raw.Write(wire); err != nil {
				errs[i] = err
				return
			}
			raw.SetReadDeadline(time.Now().Add(10 * time.Second))
			// Read one complete binary-protocol frame (24-byte header +
			// body length at bytes 8..11).
			resp := make([]byte, 0, 256)
			buf := make([]byte, 4096)
			for {
				n, err := raw.Read(buf)
				if n > 0 {
					resp = append(resp, buf[:n]...)
				}
				if len(resp) >= 24 {
					body := int(uint32(resp[8])<<24 | uint32(resp[9])<<16 | uint32(resp[10])<<8 | uint32(resp[11]))
					if len(resp) >= 24+body {
						out[i] = resp[:24+body]
						return
					}
				}
				if err != nil {
					errs[i] = fmt.Errorf("short response (%d bytes): %w", len(resp), err)
					return
				}
			}
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("client %d: %v", i, err)
		}
	}
	return out
}

// TestProxyUpstreamPoolBoundsBackendConns is the shared-upstream
// acceptance gate: the memcached proxy under C=32 short-lived clients
// over B=4 backends must hold backend-side accepted connections to
// pool-size × shards × B (not C × B) — pool×B exactly for the unsharded
// pool, which this test pins explicitly — and answer byte-identically in
// all three configurations (per-worker sharded, single shared pool,
// per-client dials).
func TestProxyUpstreamPoolBoundsBackendConns(t *testing.T) {
	const (
		clients  = 32
		backends = 4
		poolSize = 2
		workers  = 4
	)
	run := func(t *testing.T, noPool bool, shards int) (responses [][]byte, accepts uint64) {
		u := netstack.NewUserNet()
		p := core.NewPlatform(core.Config{Workers: workers, Transport: u})
		defer p.Close()
		kv := map[string]string{}
		for i := 0; i < clients; i++ {
			kv[fmt.Sprintf("churn-key-%03d", i)] = fmt.Sprintf("value-for-%03d", i)
		}
		var srvs []*backend.MemcachedServer
		addrs := make([]string, backends)
		for b := 0; b < backends; b++ {
			srv, err := backend.NewMemcachedServer(u, fmt.Sprintf("shard:%d", b))
			if err != nil {
				t.Fatal(err)
			}
			srv.Preload(kv)
			defer srv.Close()
			srvs = append(srvs, srv)
			addrs[b] = srv.Addr()
		}
		mp, err := MemcachedProxy(backends)
		if err != nil {
			t.Fatal(err)
		}
		mp.Upstream.Disable = noPool
		mp.Upstream.PoolSize = poolSize
		mp.Upstream.Shards = shards
		svc, err := mp.Deploy(p, "proxy:churn", addrs)
		if err != nil {
			t.Fatal(err)
		}
		defer svc.Close()

		responses = driveShortLivedClients(t, u, "proxy:churn", clients)
		// Accept loops may still be draining backlogs (a client only waits
		// for the shard its key hashes to); settle before snapshotting.
		deadline := time.Now().Add(2 * time.Second)
		for {
			var cur uint64
			for _, srv := range srvs {
				cur += srv.Accepts()
			}
			if cur == accepts || time.Now().After(deadline) {
				accepts = cur
				break
			}
			accepts = cur
			time.Sleep(10 * time.Millisecond)
		}
		if noPool && svc.Upstreams() != nil {
			t.Fatal("ablation deployed with an upstream manager")
		}
		if !noPool {
			if svc.Upstreams() == nil {
				t.Fatal("pooled deployment has no upstream manager")
			}
			if got := svc.Upstreams().Shards(); got != shards {
				t.Fatalf("manager has %d shards, want %d", got, shards)
			}
			if conns := svc.Upstreams().Conns(); conns > poolSize*shards*backends {
				t.Fatalf("upstream holds %d sockets, want <= %d", conns, poolSize*shards*backends)
			}
		}
		return responses, accepts
	}

	sharded, shardedAccepts := run(t, false, workers)
	pooled, pooledAccepts := run(t, false, 1)
	ablated, ablatedAccepts := run(t, true, 1)

	if pooledAccepts > uint64(poolSize*backends) {
		t.Fatalf("pooled proxy opened %d backend connections, want <= pool×B = %d",
			pooledAccepts, poolSize*backends)
	}
	// Sharded pools hold one socket set per worker, so the bound scales
	// with the core count — still independent of the client count C.
	if shardedAccepts > uint64(poolSize*workers*backends) {
		t.Fatalf("sharded proxy opened %d backend connections, want <= pool×shards×B = %d",
			shardedAccepts, poolSize*workers*backends)
	}
	if ablatedAccepts != uint64(clients*backends) {
		t.Fatalf("ablation opened %d backend connections, want C×B = %d",
			ablatedAccepts, clients*backends)
	}
	for i := range pooled {
		if !bytes.Equal(pooled[i], ablated[i]) {
			t.Fatalf("client %d responses diverge:\npooled:  %q\nablated: %q",
				i, pooled[i], ablated[i])
		}
		if !bytes.Equal(sharded[i], pooled[i]) {
			t.Fatalf("client %d responses diverge:\nsharded: %q\nshared:  %q",
				i, sharded[i], pooled[i])
		}
	}
}

// TestProxyBackendMidStreamCloseBalancesRefs pins the backend failure path
// end to end: a backend that dies mid-stream propagates EOF through the
// proxy (the client observes the failure promptly) and every pooled buffer
// reference handed out along the way is recycled.
func TestProxyBackendMidStreamCloseBalancesRefs(t *testing.T) {
	u := netstack.NewUserNet()
	p := core.NewPlatform(core.Config{Workers: 2, Transport: u})
	defer p.Close()
	// A backend that answers exactly one command per connection, then dies
	// mid-stream (MemcachedServer.Close would let live conns drain, which
	// is the graceful path — this pins the abrupt one).
	l, err := u.Listen("shard:ref0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	go func() {
		for {
			raw, err := l.Accept()
			if err != nil {
				return
			}
			go func(raw net.Conn) {
				bc := memcache.NewConn(raw)
				req, err := bc.Receive()
				if err == nil {
					bc.Send(memcache.Response(req, memcache.StatusOK, req.Field("key").AsBytes(), []byte("v")))
					req.Release()
				}
				// Swallow the second command, then die with it unanswered.
				if req2, err := bc.Receive(); err == nil {
					req2.Release()
				}
				bc.Close()
			}(raw)
		}
	}()
	mp, err := MemcachedProxy(1)
	if err != nil {
		t.Fatal(err)
	}
	svc, err := mp.Deploy(p, "proxy:ref", []string{"shard:ref0"})
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()

	before := buffer.Global.Stats()

	// A healthy round trip first, so the shared socket carries real state.
	raw, err := u.Dial("proxy:ref")
	if err != nil {
		t.Fatal(err)
	}
	c := memcache.NewConn(raw)
	resp, err := c.RoundTrip(memcache.Request(memcache.OpGet, []byte("first"), nil))
	if err != nil {
		t.Fatalf("healthy round trip: %v", err)
	}
	resp.Release() // recycle the response's pooled wire bytes

	// The backend dies once it has served one command; the next request is
	// stranded in flight on the shared socket.
	if err := c.Send(memcache.Request(memcache.OpGet, []byte("doomed"), nil)); err != nil {
		t.Fatal(err)
	}
	raw.SetReadDeadline(time.Now().Add(5 * time.Second))
	if _, err := c.Receive(); err == nil {
		t.Fatal("response produced by a closed backend")
	}
	c.Close()
	svc.Close()
	p.Close()

	// Every region handed out since the baseline must be recycled once the
	// instances drain back to the pool.
	deadline := time.Now().Add(5 * time.Second)
	for {
		after := buffer.Global.Stats()
		if after.RefGets-before.RefGets == after.RefPuts-before.RefPuts {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("pooled refs leaked on backend failure: +%d gets, +%d puts",
				after.RefGets-before.RefGets, after.RefPuts-before.RefPuts)
		}
		time.Sleep(5 * time.Millisecond)
	}
}
