package backend

import (
	"net"
	"sync"
	"sync/atomic"
	"time"

	"flick/internal/buffer"
	"flick/internal/metrics"
	"flick/internal/netstack"
	phttp "flick/internal/proto/http"
	"flick/internal/proto/memcache"
	"flick/internal/value"
)

// HTTPServer answers every GET with a fixed payload.
type HTTPServer struct {
	listener net.Listener
	payload  []byte
	cost     time.Duration
	requests metrics.Counter
	accepts  metrics.Counter
	closed   atomic.Bool
	wg       sync.WaitGroup
}

// NewHTTPServer starts a static server on addr. payloadSize controls the
// response body (the paper uses 137-byte objects).
func NewHTTPServer(tr netstack.Transport, addr string, payloadSize int) (*HTTPServer, error) {
	return NewHTTPServerWithCost(tr, addr, payloadSize, 0)
}

// NewHTTPServerWithCost starts a static server that burns the given CPU
// time per request. The web-server experiment uses it to model Apache's and
// Nginx's heavier static-content paths (see internal/baseline for the cost
// rationale).
func NewHTTPServerWithCost(tr netstack.Transport, addr string, payloadSize int, cost time.Duration) (*HTTPServer, error) {
	l, err := tr.Listen(addr)
	if err != nil {
		return nil, err
	}
	payload := make([]byte, payloadSize)
	for i := range payload {
		payload[i] = 'a' + byte(i%26)
	}
	s := &HTTPServer{listener: l, payload: payload, cost: cost}
	s.wg.Add(1)
	go s.acceptLoop()
	return s, nil
}

// Addr returns the bound address.
func (s *HTTPServer) Addr() string { return s.listener.Addr().String() }

// Requests returns the number of requests served.
func (s *HTTPServer) Requests() uint64 { return s.requests.Value() }

// Accepts returns the number of connections accepted — the quantity the
// shared upstream connection layer bounds (pool size instead of one per
// client).
func (s *HTTPServer) Accepts() uint64 { return s.accepts.Value() }

// Close stops the server.
func (s *HTTPServer) Close() {
	if s.closed.CompareAndSwap(false, true) {
		s.listener.Close()
		s.wg.Wait()
	}
}

func (s *HTTPServer) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.listener.Accept()
		if err != nil {
			return
		}
		s.accepts.Inc()
		go s.serve(conn)
	}
}

func (s *HTTPServer) serve(conn net.Conn) {
	defer conn.Close()
	q := buffer.NewQueue(nil)
	dec := phttp.RequestFormat{}.NewDecoder()
	rbuf := make([]byte, 16<<10)
	wbuf := make([]byte, 0, 512)
	for {
		msg, ok, derr := dec.Decode(q)
		if derr != nil {
			return
		}
		if ok {
			s.requests.Inc()
			netstack.Spin(s.cost)
			ka := msg.Field("keep_alive").AsInt() == 1
			msg.Release() // recycle the request's pooled wire bytes
			wbuf = phttp.BuildResponse(wbuf[:0], 200, "OK", ka, s.payload)
			if _, err := conn.Write(wbuf); err != nil {
				return
			}
			if !ka {
				return
			}
			continue
		}
		n, rerr := conn.Read(rbuf)
		if n > 0 {
			q.Append(rbuf[:n])
		}
		if rerr != nil {
			return
		}
	}
}

// MemcachedServer is an in-memory binary-protocol key/value server.
type MemcachedServer struct {
	listener net.Listener
	mu       sync.RWMutex
	store    map[string][]byte
	requests metrics.Counter
	accepts  metrics.Counter
	closed   atomic.Bool
	wg       sync.WaitGroup
}

// NewMemcachedServer starts a server on addr.
func NewMemcachedServer(tr netstack.Transport, addr string) (*MemcachedServer, error) {
	l, err := tr.Listen(addr)
	if err != nil {
		return nil, err
	}
	s := &MemcachedServer{listener: l, store: map[string][]byte{}}
	s.wg.Add(1)
	go s.acceptLoop()
	return s, nil
}

// Addr returns the bound address.
func (s *MemcachedServer) Addr() string { return s.listener.Addr().String() }

// Requests returns the number of commands processed.
func (s *MemcachedServer) Requests() uint64 { return s.requests.Value() }

// Accepts returns the number of connections accepted — the quantity the
// shared upstream connection layer bounds (pool size instead of one per
// client).
func (s *MemcachedServer) Accepts() uint64 { return s.accepts.Value() }

// Preload inserts key/value pairs directly (benchmark setup).
func (s *MemcachedServer) Preload(kv map[string]string) {
	s.mu.Lock()
	for k, v := range kv {
		s.store[k] = []byte(v)
	}
	s.mu.Unlock()
}

// Close stops the server.
func (s *MemcachedServer) Close() {
	if s.closed.CompareAndSwap(false, true) {
		s.listener.Close()
		s.wg.Wait()
	}
}

func (s *MemcachedServer) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.listener.Accept()
		if err != nil {
			return
		}
		s.accepts.Inc()
		go s.serve(conn)
	}
}

func (s *MemcachedServer) serve(raw net.Conn) {
	c := memcache.NewConn(raw)
	defer c.Close()
	for {
		req, err := c.Receive()
		if err != nil {
			return
		}
		s.requests.Inc()
		resp := s.handle(req)
		req.Release() // done with the request's pooled wire bytes
		if resp.Kind == value.KindNull {
			continue // quiet miss: the protocol says stay silent
		}
		if err := c.Send(resp); err != nil {
			return
		}
	}
}

// handle executes one command.
func (s *MemcachedServer) handle(req value.Value) value.Value {
	op := byte(req.Field("opcode").AsInt())
	key := req.Field("key").AsString()
	switch op {
	case memcache.OpSet:
		val := append([]byte{}, req.Field("value").AsBytes()...)
		s.mu.Lock()
		s.store[key] = val
		s.mu.Unlock()
		return memcache.Response(req, memcache.StatusOK, nil, nil)
	case memcache.OpGet, memcache.OpGetK:
		s.mu.RLock()
		val, ok := s.store[key]
		s.mu.RUnlock()
		if !ok {
			return memcache.Response(req, memcache.StatusKeyNotFound, []byte(key), nil)
		}
		return memcache.Response(req, memcache.StatusOK, []byte(key), val)
	case memcache.OpGetQ, memcache.OpGetKQ:
		// Quiet gets: a hit responds, a miss says nothing — the client
		// learns of it when the batch terminator's response arrives.
		s.mu.RLock()
		val, ok := s.store[key]
		s.mu.RUnlock()
		if !ok {
			return value.Null
		}
		return memcache.Response(req, memcache.StatusOK, []byte(key), val)
	case memcache.OpNoop:
		// Health probes round-trip Noop; answer OK with an empty body.
		return memcache.Response(req, memcache.StatusOK, nil, nil)
	default:
		return memcache.Response(req, memcache.StatusKeyNotFound, nil, nil)
	}
}
