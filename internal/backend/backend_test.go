package backend

import (
	"testing"
	"time"

	"flick/internal/buffer"
	"flick/internal/netstack"
	phttp "flick/internal/proto/http"
	"flick/internal/proto/memcache"
)

func TestHTTPServerServes(t *testing.T) {
	u := netstack.NewUserNet()
	s, err := NewHTTPServer(u, "web:1", 137)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	conn, err := u.Dial("web:1")
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()

	q := buffer.NewQueue(nil)
	dec := phttp.ResponseFormat{}.NewDecoder()
	rbuf := make([]byte, 8192)
	for round := 0; round < 3; round++ { // keep-alive reuse
		conn.Write(phttp.BuildRequest(nil, "GET", "/", "web", true, nil))
		conn.SetReadDeadline(time.Now().Add(5 * time.Second))
		for {
			msg, ok, derr := dec.Decode(q)
			if derr != nil {
				t.Fatal(derr)
			}
			if ok {
				if msg.Field("status").AsInt() != 200 {
					t.Fatalf("status = %d", msg.Field("status").AsInt())
				}
				if msg.Field("content_length").AsInt() != 137 {
					t.Fatalf("content length = %d", msg.Field("content_length").AsInt())
				}
				break
			}
			n, rerr := conn.Read(rbuf)
			if n > 0 {
				q.Append(rbuf[:n])
				continue
			}
			if rerr != nil {
				t.Fatal(rerr)
			}
		}
	}
	if s.Requests() != 3 {
		t.Fatalf("requests = %d", s.Requests())
	}
	if s.Addr() != "web:1" {
		t.Fatalf("addr = %s", s.Addr())
	}
}

func TestHTTPServerConnectionClose(t *testing.T) {
	u := netstack.NewUserNet()
	s, err := NewHTTPServer(u, "web:2", 16)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	conn, _ := u.Dial("web:2")
	defer conn.Close()
	conn.Write(phttp.BuildRequest(nil, "GET", "/", "web", false, nil))
	conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	// The server must respond and then close (EOF).
	total := 0
	buf := make([]byte, 8192)
	for {
		n, err := conn.Read(buf[total:])
		total += n
		if err != nil {
			break
		}
	}
	if total == 0 {
		t.Fatal("no response before close")
	}
}

func TestMemcachedServerGetSet(t *testing.T) {
	u := netstack.NewUserNet()
	s, err := NewMemcachedServer(u, "mc:1")
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	raw, _ := u.Dial("mc:1")
	c := memcache.NewConn(raw)
	defer c.Close()

	// Miss.
	resp, err := c.RoundTrip(memcache.Request(memcache.OpGet, []byte("k"), nil))
	if err != nil {
		t.Fatal(err)
	}
	if memcache.Status(resp) != memcache.StatusKeyNotFound {
		t.Fatalf("status = %d", memcache.Status(resp))
	}
	// Set + hit.
	if _, err := c.RoundTrip(memcache.Request(memcache.OpSet, []byte("k"), []byte("v1"))); err != nil {
		t.Fatal(err)
	}
	resp, err = c.RoundTrip(memcache.Request(memcache.OpGetK, []byte("k"), nil))
	if err != nil {
		t.Fatal(err)
	}
	if memcache.Status(resp) != memcache.StatusOK || resp.Field("value").AsString() != "v1" {
		t.Fatalf("get after set: %d %q", memcache.Status(resp), resp.Field("value").AsString())
	}
	if resp.Field("key").AsString() != "k" {
		t.Fatal("GETK response must echo the key")
	}
	if s.Requests() != 3 {
		t.Fatalf("requests = %d", s.Requests())
	}
}

func TestMemcachedServerPreload(t *testing.T) {
	u := netstack.NewUserNet()
	s, err := NewMemcachedServer(u, "mc:2")
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	s.Preload(map[string]string{"warm": "data"})
	raw, _ := u.Dial("mc:2")
	c := memcache.NewConn(raw)
	defer c.Close()
	resp, err := c.RoundTrip(memcache.Request(memcache.OpGet, []byte("warm"), nil))
	if err != nil {
		t.Fatal(err)
	}
	if resp.Field("value").AsString() != "data" {
		t.Fatalf("preloaded value = %q", resp.Field("value").AsString())
	}
}

func TestServersOnKernelTCP(t *testing.T) {
	k := netstack.KernelTCP{}
	s, err := NewHTTPServer(k, "127.0.0.1:0", 64)
	if err != nil {
		t.Skipf("loopback unavailable: %v", err)
	}
	defer s.Close()
	conn, err := k.Dial(s.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	conn.Write(phttp.BuildRequest(nil, "GET", "/", "web", false, nil))
	buf := make([]byte, 1)
	conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	if _, err := conn.Read(buf); err != nil {
		t.Fatalf("no response over kernel TCP: %v", err)
	}
}
