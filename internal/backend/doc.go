// Package backend provides the backend side of the testbed: the origin
// servers behind the middleboxes under test, and the backend-topology
// routers the platform routes keys over.
//
// # Origin servers
//
// HTTPServer (the paper's Apache web servers behind the load balancer) and
// MemcachedServer (the binary-protocol shards behind the proxy) are
// deliberately simple goroutine-per-connection servers — they play the
// role of the paper's dedicated backend machines, not of the system under
// test — and run on either transport. Both count Requests and Accepts;
// Accepts is the quantity the shared upstream connection layer bounds.
//
// # Topology routers
//
// Ring is a consistent-hash ring with virtual nodes (DefaultVNodes per
// backend): adding or removing a backend remaps only ~1/B of the key
// space, where hash-mod-B reshuffles almost all of it. ModTable is the
// mod-B ablation with the same live-update plumbing. Both implement
// core.Topology and are immutable — a topology change builds a new value
// and swaps it onto the running service (core.Service.UpdateBackends), so
// in-flight task graphs keep routing against the set they were bound to.
// KeyHash is the byte-content FNV-1a hash shared with the language's hash
// builtin, which makes MovedFraction's analysis of a topology change
// agree exactly with what compiled programs do.
//
// # Ownership
//
// Messages received by the servers are zero-copy views over pooled wire
// bytes and are Released as soon as each request is handled; values
// stored into MemcachedServer's table are copied out of the message
// first, so no pooled region outlives its request.
package backend
