package backend

import (
	"math"
	"sort"
)

// DefaultVNodes is the virtual-node count per backend used when a Ring is
// built with vnodes <= 0. 128 points per backend keeps the worst observed
// per-backend load within ~±30% of the mean on uniform keys (asserted by
// TestRingSkewBounded) while the ring stays small enough that a lookup is
// one binary search over B×128 points.
const DefaultVNodes = 128

// ringMask keeps ring points in the same non-negative 63-bit space as the
// language's hash builtin (compiler hashValue masks identically), so key
// hashes and vnode points share one circle.
const ringMask = 0x7fffffffffffffff

// KeyHash is the hash the routing layer agrees on: FNV-1a over the key
// bytes, masked non-negative. It matches the FLICK `hash` builtin exactly
// (the compiler cross-checks the two in its test suite), so a topology's
// Route answers precisely where the compiled proxy/router programs will
// send a key.
func KeyHash(key []byte) int64 {
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	h := uint64(offset)
	for _, b := range key {
		h ^= uint64(b)
		h *= prime
	}
	return int64(h & ringMask)
}

// Ring is a consistent-hash ring over an ordered backend address list: each
// address contributes vnodes points on a 63-bit circle, and a key routes to
// the owner of the first point at or after its hash. Adding or removing one
// backend therefore remaps only ~1/B of the key space (the new node's
// arcs), where hash-mod-B reshuffles almost all of it.
//
// A Ring is immutable after construction — topology changes build a new
// Ring and swap it in (core.Service.UpdateBackends), so routing decisions
// taken by in-flight task graphs stay consistent with the backend set they
// were bound against. Ring implements core.Topology.
type Ring struct {
	addrs   []string
	weights []int       // per-backend vnode multiplier (nil: uniform)
	points  []ringPoint // sorted by point
}

// ringPoint is one virtual node: a position on the circle plus the index
// (into addrs) of the backend that owns it.
type ringPoint struct {
	point uint64
	idx   int
}

// mix64 is the splitmix64 finalizer: a cheap bijective scrambler that turns
// sequential vnode indices into uniformly spread ring points.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// NewRing builds a ring over addrs with the given virtual-node count per
// backend (<=0: DefaultVNodes). Point positions depend only on each
// address string, never on its slot in the list, so the same address set
// always yields the same key→address mapping regardless of order or of
// which other addresses come and go. Vnode points are the address's FNV
// hash mixed per vnode through a splitmix64 finalizer — raw FNV over
// "addr#i" labels clusters (the labels differ in a few trailing digits),
// which skews per-backend load well past 2× the mean.
func NewRing(addrs []string, vnodes int) *Ring {
	return NewWeightedRing(addrs, nil, vnodes)
}

// NewWeightedRing builds a ring where backend i contributes
// weights[i]×vnodes points: a weight-2 backend owns twice the key-space
// share of a weight-1 one. A nil weights slice (or one of the wrong
// length) means uniform weight 1 — NewWeightedRing(addrs, nil, v) is
// point-for-point identical to NewRing(addrs, v), so turning weights on
// later moves no keys for backends whose weight stays 1. Weight 0 is the
// drain weight: the backend stays in Backends() (its port stays bound,
// in-flight traffic completes) but owns no arc, so no new key routes to
// it. Negative weights clamp to 0; if every weight is 0 the ring falls
// back to uniform — an all-drained topology would otherwise route into
// nothing.
func NewWeightedRing(addrs []string, weights []int, vnodes int) *Ring {
	if vnodes <= 0 {
		vnodes = DefaultVNodes
	}
	r := &Ring{addrs: append([]string(nil), addrs...)}
	if len(weights) == len(addrs) && len(addrs) > 0 {
		total := 0
		r.weights = make([]int, len(weights))
		for i, w := range weights {
			if w < 0 {
				w = 0
			}
			r.weights[i] = w
			total += w
		}
		if total == 0 {
			r.weights = nil
		}
	}
	for i, a := range r.addrs {
		base := uint64(KeyHash([]byte(a)))
		n := vnodes
		if r.weights != nil {
			n = r.weights[i] * vnodes
		}
		// The first vnodes points of a weight-w backend are exactly its
		// weight-1 points (same base, same per-vnode mix), so raising a
		// weight only grows that backend's arcs — it never moves keys
		// between two backends whose weights are unchanged.
		for v := 0; v < n; v++ {
			h := mix64(base+uint64(v)*0x9e3779b97f4a7c15) & ringMask
			r.points = append(r.points, ringPoint{point: h, idx: i})
		}
	}
	sort.Slice(r.points, func(a, b int) bool {
		if r.points[a].point != r.points[b].point {
			return r.points[a].point < r.points[b].point
		}
		// Ties break on the address so duplicate points still resolve
		// identically across rings sharing the colliding addresses.
		return r.addrs[r.points[a].idx] < r.addrs[r.points[b].idx]
	})
	return r
}

// Backends returns the ordered backend address list the ring was built
// over. The slice is shared — callers must not mutate it.
func (r *Ring) Backends() []string { return r.addrs }

// Weights returns the per-backend weights the ring was built with: weight
// 1 for every backend of an unweighted ring. The returned slice is fresh.
func (r *Ring) Weights() []int {
	out := make([]int, len(r.addrs))
	for i := range out {
		if r.weights != nil {
			out[i] = r.weights[i]
		} else {
			out[i] = 1
		}
	}
	return out
}

// Shares returns the fraction of the hash circle each backend owns — the
// expected share of a uniform key space it will be routed, which the
// admin API reports per backend. Shares sum to 1; a weight-0 (draining)
// backend's share is 0.
func (r *Ring) Shares() []float64 {
	shares := make([]float64, len(r.addrs))
	if len(r.points) == 0 {
		return shares
	}
	if len(r.points) == 1 {
		// A single point owns the whole circle; the arc arithmetic below
		// would compute its self-wrap as zero.
		shares[r.points[0].idx] = 1
		return shares
	}
	// Route sends hash h to the first point ≥ h (wrapping), so point i
	// owns the arc (points[i-1], points[i]] — and the first point
	// additionally owns the wrap arc past the last point.
	const circle = float64(ringMask) + 1
	prev := r.points[len(r.points)-1].point
	for _, pt := range r.points {
		arc := (pt.point - prev) & ringMask
		shares[pt.idx] += float64(arc) / circle
		prev = pt.point
	}
	return shares
}

// Route maps a key hash (the language's hash builtin, or KeyHash) to the
// index of the owning backend in Backends(). The hash is scrambled through
// the same splitmix64 finalizer as the vnode points before the circle
// lookup: FNV-1a hashes of sequential keys ("key-0001", "key-0002", …)
// cluster within a tiny arc of the circle and would all land on one
// backend — the mod ablation never sees this because modulo spreads
// clustered hashes, but a ring partitions by range and needs uniformity.
func (r *Ring) Route(hash int64) int {
	if len(r.points) == 0 {
		return 0
	}
	return r.points[r.ownerPoint(hash)].idx
}

// ownerPoint returns the index (into r.points) of the vnode owning hash.
// The ring must be non-empty.
func (r *Ring) ownerPoint(hash int64) int {
	h := mix64(uint64(hash)) & ringMask
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].point >= h })
	if i == len(r.points) {
		i = 0 // wrap: the first point owns the arc past the last one
	}
	return i
}

// walk visits the distinct backends owning successive ring points from
// hash's owner onward — the deterministic successor order bounded-load
// routing spills along — and returns the first index accept approves. With
// none approved it returns the hash owner (the caller's threshold was
// unsatisfiable; routing somewhere beats routing nowhere).
func (r *Ring) walk(hash int64, accept func(idx int) bool) int {
	if len(r.points) == 0 {
		return 0
	}
	start := r.ownerPoint(hash)
	var seenArr [64]uint8
	seen := seenArr[:]
	if len(r.addrs) > len(seenArr) {
		seen = make([]uint8, len(r.addrs))
	}
	checked := 0
	for off := 0; off < len(r.points) && checked < len(r.addrs); off++ {
		idx := r.points[(start+off)%len(r.points)].idx
		if seen[idx] != 0 {
			continue
		}
		seen[idx] = 1
		checked++
		if accept(idx) {
			return idx
		}
	}
	return r.points[start].idx
}

// ModTable is the mod-B ablation topology: the live-update plumbing of a
// Ring (ordered address list, swap on UpdateBackends) with plain
// hash-mod-B routing, so benchmarks can measure exactly what consistent
// hashing buys during a scale-out. ModTable implements core.Topology.
type ModTable struct {
	addrs []string
}

// NewModTable builds the ablation router over addrs.
func NewModTable(addrs []string) *ModTable {
	return &ModTable{addrs: append([]string(nil), addrs...)}
}

// Backends returns the ordered backend address list. The slice is shared —
// callers must not mutate it.
func (m *ModTable) Backends() []string { return m.addrs }

// Route maps a key hash to hash mod B.
func (m *ModTable) Route(hash int64) int {
	if len(m.addrs) == 0 {
		return 0
	}
	return int(uint64(hash) % uint64(len(m.addrs)))
}

// LoadFunc reports a backend's current load — for the platform, the
// shared upstream layer's in-flight request count for the address
// (upstream.Manager.InflightFor). Implementations must be safe for
// concurrent use; BoundedRing calls it on every routing decision.
type LoadFunc func(addr string) int64

// DefaultBoundedLoadC is the bounded-load expansion factor used when a
// BoundedRing is built with c <= 1. 1.25 is the classic
// consistent-hashing-with-bounded-loads operating point: no backend may
// carry more than 25% above the mean in-flight load, at the cost of
// spilling ~an eighth of a hot arc's keys to ring successors.
const DefaultBoundedLoadC = 1.25

// BoundedRing is the bounded-load variant of a Ring (consistent hashing
// with bounded loads, Mirrokni et al.): a key routes to its hash owner
// unless the owner's in-flight share already exceeds c times its fair
// share of the total load, in which case the key walks the ring to the
// first successor below its own threshold. Hot keys therefore spill to
// ring neighbours instead of melting one backend, while cold keys route
// exactly as the plain ring does — and an idle system (total load 0)
// routes identically to the underlying Ring.
//
// Weights participate: backend i's threshold is ⌈c·(total+1)·w_i/W⌉, so a
// weight-2 backend absorbs twice the in-flight load of a weight-1 one
// before spilling, and a weight-0 (draining) backend accepts nothing. A
// BoundedRing is immutable and implements core.Topology; only the load
// readings change under it.
type BoundedRing struct {
	ring *Ring
	c    float64
	load LoadFunc
}

// NewBoundedRing wraps ring with bounded-load routing. c <= 1 selects
// DefaultBoundedLoadC (a bound at or below the mean cannot be satisfied);
// a nil load function degrades to plain ring routing.
func NewBoundedRing(ring *Ring, c float64, load LoadFunc) *BoundedRing {
	if c <= 1 {
		c = DefaultBoundedLoadC
	}
	return &BoundedRing{ring: ring, c: c, load: load}
}

// Ring returns the underlying consistent-hash ring.
func (b *BoundedRing) Ring() *Ring { return b.ring }

// C returns the bounded-load expansion factor.
func (b *BoundedRing) C() float64 { return b.c }

// Backends returns the ordered backend address list. The slice is shared —
// callers must not mutate it.
func (b *BoundedRing) Backends() []string { return b.ring.Backends() }

// Shares returns the underlying ring's key-space shares (the no-load
// routing distribution; under load, bounded spilling flattens the
// realised distribution further).
func (b *BoundedRing) Shares() []float64 { return b.ring.Shares() }

// Route maps a key hash to a backend index: the ring owner when its load
// is within bound, else the first ring successor within its own bound.
// One backend is always within bound — the least-loaded (relative to
// weight) backend sits at or below its fair share — so the walk
// terminates on a real target; routing never fails under overload, it
// only stops discriminating.
func (b *BoundedRing) Route(hash int64) int {
	r := b.ring
	if len(r.addrs) <= 1 || b.load == nil || len(r.points) == 0 {
		return r.Route(hash)
	}
	var total int64
	for _, a := range r.addrs {
		if l := b.load(a); l > 0 {
			total += l
		}
	}
	owner := r.points[r.ownerPoint(hash)].idx
	if total == 0 {
		return owner // idle: bounded routing is plain ring routing
	}
	weightTotal := len(r.addrs)
	if r.weights != nil {
		weightTotal = 0
		for _, w := range r.weights {
			weightTotal += w
		}
	}
	scaled := b.c * float64(total+1) / float64(weightTotal)
	return r.walk(hash, func(idx int) bool {
		w := 1
		if r.weights != nil {
			w = r.weights[idx]
		}
		if w == 0 {
			return false // draining: accepts no new keys
		}
		threshold := int64(math.Ceil(scaled * float64(w)))
		l := b.load(r.addrs[idx])
		if l < 0 {
			l = 0
		}
		return l+1 <= threshold
	})
}

// Router is the routing half of a topology (satisfied by Ring, ModTable
// and BoundedRing); MovedFraction compares two of them.
type Router interface {
	Route(hash int64) int
	Backends() []string
}

// MovedFraction reports the fraction of keys whose routed backend address
// differs between topologies a and b — the cost of the a→b change. Keys
// mapping by address (not index) means reordering the same set moves
// nothing.
func MovedFraction(a, b Router, keys [][]byte) float64 {
	if len(keys) == 0 {
		return 0
	}
	ab, bb := a.Backends(), b.Backends()
	moved := 0
	for _, k := range keys {
		h := KeyHash(k)
		if ab[a.Route(h)] != bb[b.Route(h)] {
			moved++
		}
	}
	return float64(moved) / float64(len(keys))
}
