package backend

import "sort"

// DefaultVNodes is the virtual-node count per backend used when a Ring is
// built with vnodes <= 0. 128 points per backend keeps the worst observed
// per-backend load within ~±30% of the mean on uniform keys (asserted by
// TestRingSkewBounded) while the ring stays small enough that a lookup is
// one binary search over B×128 points.
const DefaultVNodes = 128

// ringMask keeps ring points in the same non-negative 63-bit space as the
// language's hash builtin (compiler hashValue masks identically), so key
// hashes and vnode points share one circle.
const ringMask = 0x7fffffffffffffff

// KeyHash is the hash the routing layer agrees on: FNV-1a over the key
// bytes, masked non-negative. It matches the FLICK `hash` builtin exactly
// (the compiler cross-checks the two in its test suite), so a topology's
// Route answers precisely where the compiled proxy/router programs will
// send a key.
func KeyHash(key []byte) int64 {
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	h := uint64(offset)
	for _, b := range key {
		h ^= uint64(b)
		h *= prime
	}
	return int64(h & ringMask)
}

// Ring is a consistent-hash ring over an ordered backend address list: each
// address contributes vnodes points on a 63-bit circle, and a key routes to
// the owner of the first point at or after its hash. Adding or removing one
// backend therefore remaps only ~1/B of the key space (the new node's
// arcs), where hash-mod-B reshuffles almost all of it.
//
// A Ring is immutable after construction — topology changes build a new
// Ring and swap it in (core.Service.UpdateBackends), so routing decisions
// taken by in-flight task graphs stay consistent with the backend set they
// were bound against. Ring implements core.Topology.
type Ring struct {
	addrs  []string
	points []ringPoint // sorted by point
}

// ringPoint is one virtual node: a position on the circle plus the index
// (into addrs) of the backend that owns it.
type ringPoint struct {
	point uint64
	idx   int
}

// mix64 is the splitmix64 finalizer: a cheap bijective scrambler that turns
// sequential vnode indices into uniformly spread ring points.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// NewRing builds a ring over addrs with the given virtual-node count per
// backend (<=0: DefaultVNodes). Point positions depend only on each
// address string, never on its slot in the list, so the same address set
// always yields the same key→address mapping regardless of order or of
// which other addresses come and go. Vnode points are the address's FNV
// hash mixed per vnode through a splitmix64 finalizer — raw FNV over
// "addr#i" labels clusters (the labels differ in a few trailing digits),
// which skews per-backend load well past 2× the mean.
func NewRing(addrs []string, vnodes int) *Ring {
	if vnodes <= 0 {
		vnodes = DefaultVNodes
	}
	r := &Ring{
		addrs:  append([]string(nil), addrs...),
		points: make([]ringPoint, 0, len(addrs)*vnodes),
	}
	for i, a := range r.addrs {
		base := uint64(KeyHash([]byte(a)))
		for v := 0; v < vnodes; v++ {
			h := mix64(base+uint64(v)*0x9e3779b97f4a7c15) & ringMask
			r.points = append(r.points, ringPoint{point: h, idx: i})
		}
	}
	sort.Slice(r.points, func(a, b int) bool {
		if r.points[a].point != r.points[b].point {
			return r.points[a].point < r.points[b].point
		}
		// Ties break on the address so duplicate points still resolve
		// identically across rings sharing the colliding addresses.
		return r.addrs[r.points[a].idx] < r.addrs[r.points[b].idx]
	})
	return r
}

// Backends returns the ordered backend address list the ring was built
// over. The slice is shared — callers must not mutate it.
func (r *Ring) Backends() []string { return r.addrs }

// Route maps a key hash (the language's hash builtin, or KeyHash) to the
// index of the owning backend in Backends(). The hash is scrambled through
// the same splitmix64 finalizer as the vnode points before the circle
// lookup: FNV-1a hashes of sequential keys ("key-0001", "key-0002", …)
// cluster within a tiny arc of the circle and would all land on one
// backend — the mod ablation never sees this because modulo spreads
// clustered hashes, but a ring partitions by range and needs uniformity.
func (r *Ring) Route(hash int64) int {
	if len(r.points) == 0 {
		return 0
	}
	h := mix64(uint64(hash)) & ringMask
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].point >= h })
	if i == len(r.points) {
		i = 0 // wrap: the first point owns the arc past the last one
	}
	return r.points[i].idx
}

// ModTable is the mod-B ablation topology: the live-update plumbing of a
// Ring (ordered address list, swap on UpdateBackends) with plain
// hash-mod-B routing, so benchmarks can measure exactly what consistent
// hashing buys during a scale-out. ModTable implements core.Topology.
type ModTable struct {
	addrs []string
}

// NewModTable builds the ablation router over addrs.
func NewModTable(addrs []string) *ModTable {
	return &ModTable{addrs: append([]string(nil), addrs...)}
}

// Backends returns the ordered backend address list. The slice is shared —
// callers must not mutate it.
func (m *ModTable) Backends() []string { return m.addrs }

// Route maps a key hash to hash mod B.
func (m *ModTable) Route(hash int64) int {
	if len(m.addrs) == 0 {
		return 0
	}
	return int(uint64(hash) % uint64(len(m.addrs)))
}

// Router is the routing half of a topology (satisfied by Ring and
// ModTable); MovedFraction compares two of them.
type Router interface {
	Route(hash int64) int
	Backends() []string
}

// MovedFraction reports the fraction of keys whose routed backend address
// differs between topologies a and b — the cost of the a→b change. Keys
// mapping by address (not index) means reordering the same set moves
// nothing.
func MovedFraction(a, b Router, keys [][]byte) float64 {
	if len(keys) == 0 {
		return 0
	}
	ab, bb := a.Backends(), b.Backends()
	moved := 0
	for _, k := range keys {
		h := KeyHash(k)
		if ab[a.Route(h)] != bb[b.Route(h)] {
			moved++
		}
	}
	return float64(moved) / float64(len(keys))
}
