package backend

import (
	"fmt"
	"testing"
)

func testKeys(n int) [][]byte {
	keys := make([][]byte, n)
	for i := range keys {
		keys[i] = []byte(fmt.Sprintf("key-%d", i))
	}
	return keys
}

func testAddrs(n int) []string {
	addrs := make([]string, n)
	for i := range addrs {
		addrs[i] = fmt.Sprintf("10.0.0.%d:11211", i+1)
	}
	return addrs
}

// TestRingKeysMovedOnScaleOut pins the headline property: growing the ring
// B→B+1 remaps about 1/(B+1) of the key space, while mod-B remaps B/(B+1)
// of it (~80% at B=4).
func TestRingKeysMovedOnScaleOut(t *testing.T) {
	keys := testKeys(20000)
	addrs := testAddrs(5)

	ring4 := NewRing(addrs[:4], 0)
	ring5 := NewRing(addrs, 0)
	ringMoved := MovedFraction(ring4, ring5, keys)
	ideal := 1.0 / 5.0
	if ringMoved > 0.25 {
		t.Fatalf("ring moved %.1f%% of keys on 4→5 scale-out, want ≤ 25%%", 100*ringMoved)
	}
	if ringMoved < ideal/2 {
		t.Fatalf("ring moved %.1f%% of keys on 4→5 scale-out — suspiciously below the ideal %.1f%% (keys not actually rebalancing?)",
			100*ringMoved, 100*ideal)
	}

	mod4 := NewModTable(addrs[:4])
	mod5 := NewModTable(addrs)
	modMoved := MovedFraction(mod4, mod5, keys)
	if modMoved < 0.6 {
		t.Fatalf("mod-B moved only %.1f%% of keys on 4→5 — expected ~80%%", 100*modMoved)
	}
	t.Logf("4→5 scale-out: ring moved %.1f%% (ideal %.1f%%), mod moved %.1f%%",
		100*ringMoved, 100*ideal, 100*modMoved)
}

// TestRingRemovalMovesOnlyVictimKeys asserts the defining consistency
// property: removing one backend remaps exactly the keys that were on it —
// no key hosted by a survivor moves.
func TestRingRemovalMovesOnlyVictimKeys(t *testing.T) {
	keys := testKeys(10000)
	addrs := testAddrs(5)
	full := NewRing(addrs, 0)
	without := NewRing(addrs[:4], 0) // drop the last backend

	for _, k := range keys {
		h := KeyHash(k)
		before := full.Backends()[full.Route(h)]
		after := without.Backends()[without.Route(h)]
		if before != addrs[4] && before != after {
			t.Fatalf("key %q moved %s → %s although its backend was not removed", k, before, after)
		}
		if before == addrs[4] && after == addrs[4] {
			t.Fatalf("key %q still routed to removed backend", k)
		}
	}
}

// TestRingSkewBounded asserts load balance at the default vnode count:
// every backend's share of a uniform key space stays within a factor of
// the mean.
func TestRingSkewBounded(t *testing.T) {
	const nBackends = 8
	keys := testKeys(100000)
	ring := NewRing(testAddrs(nBackends), 128)

	counts := make([]int, nBackends)
	for _, k := range keys {
		counts[ring.Route(KeyHash(k))]++
	}
	mean := float64(len(keys)) / nBackends
	for i, c := range counts {
		share := float64(c) / mean
		if share < 0.55 || share > 1.45 {
			t.Fatalf("backend %d holds %.2f× the mean load (counts=%v); skew bound exceeded at 128 vnodes", i, share, counts)
		}
	}
	t.Logf("per-backend counts over %d keys: %v (mean %.0f)", len(keys), counts, mean)
}

// TestRingDeterministicAndOrderIndependent: the key→address mapping depends
// only on the address set, not on construction order.
func TestRingDeterministicAndOrderIndependent(t *testing.T) {
	keys := testKeys(5000)
	addrs := testAddrs(4)
	a := NewRing(addrs, 64)
	reversed := []string{addrs[3], addrs[2], addrs[1], addrs[0]}
	b := NewRing(reversed, 64)
	if moved := MovedFraction(a, b, keys); moved != 0 {
		t.Fatalf("reordering the same address set moved %.2f%% of keys", 100*moved)
	}
	c := NewRing(addrs, 64)
	for _, k := range keys {
		h := KeyHash(k)
		if a.Route(h) != c.Route(h) {
			t.Fatal("ring routing not deterministic")
		}
	}
}

// TestRingRouteInRange: Route always lands inside the address list,
// including at the wrap point and on an empty ring.
func TestRingRouteInRange(t *testing.T) {
	ring := NewRing(testAddrs(3), 16)
	for _, h := range []int64{0, 1, ringMask, ringMask - 1, 1 << 62} {
		if i := ring.Route(h); i < 0 || i >= 3 {
			t.Fatalf("Route(%d) = %d out of range", h, i)
		}
	}
	empty := NewRing(nil, 16)
	if empty.Route(42) != 0 {
		t.Fatal("empty ring should route to 0")
	}
	if NewModTable(nil).Route(42) != 0 {
		t.Fatal("empty mod table should route to 0")
	}
}
