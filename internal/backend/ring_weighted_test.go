package backend

import (
	"math"
	"testing"
)

// TestWeightedRingUnweightedIdentical pins the compatibility contract: a
// weighted ring with nil weights (or all-1 weights) routes every key
// exactly as NewRing does, so MovedFraction between them is zero.
func TestWeightedRingUnweightedIdentical(t *testing.T) {
	keys := testKeys(10000)
	addrs := testAddrs(5)
	plain := NewRing(addrs, 0)
	for _, weights := range [][]int{nil, {1, 1, 1, 1, 1}} {
		w := NewWeightedRing(addrs, weights, 0)
		if moved := MovedFraction(plain, w, keys); moved != 0 {
			t.Fatalf("weights %v moved %.2f%% of keys vs NewRing, want 0", weights, 100*moved)
		}
		for _, k := range keys[:500] {
			h := KeyHash(k)
			if plain.Route(h) != w.Route(h) {
				t.Fatalf("weights %v: Route(%q) diverges from NewRing", weights, k)
			}
		}
	}
}

// TestWeightedRingShareProportional is the weighted-routing property test:
// over a large uniform key space, each backend's routed share is
// proportional to its weight within tolerance, and Shares() (the analytic
// arc measure the admin API reports) agrees with the empirical count.
func TestWeightedRingShareProportional(t *testing.T) {
	keys := testKeys(40000)
	addrs := testAddrs(4)
	weights := []int{1, 2, 3, 2}
	r := NewWeightedRing(addrs, weights, 0)

	counts := make([]float64, len(addrs))
	for _, k := range keys {
		counts[r.Route(KeyHash(k))]++
	}
	total := 0
	for _, w := range weights {
		total += w
	}
	shares := r.Shares()
	sum := 0.0
	for i, w := range weights {
		ideal := float64(w) / float64(total)
		got := counts[i] / float64(len(keys))
		if got < ideal*0.75 || got > ideal*1.25 {
			t.Fatalf("backend %d (weight %d): routed share %.3f, want %.3f ±25%%", i, w, got, ideal)
		}
		if math.Abs(shares[i]-got) > 0.02 {
			t.Fatalf("backend %d: Shares() says %.3f but %.3f of keys routed there", i, shares[i], got)
		}
		sum += shares[i]
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("Shares() sum to %v, want 1", sum)
	}
}

// TestWeightedRingZeroWeightDrains: a weight-0 backend stays in the
// address list but receives no keys — the drain weight.
func TestWeightedRingZeroWeightDrains(t *testing.T) {
	keys := testKeys(5000)
	addrs := testAddrs(3)
	r := NewWeightedRing(addrs, []int{1, 0, 1}, 0)
	for _, k := range keys {
		if r.Route(KeyHash(k)) == 1 {
			t.Fatalf("key %q routed to the weight-0 backend", k)
		}
	}
	if s := r.Shares(); s[1] != 0 {
		t.Fatalf("weight-0 backend owns share %v, want 0", s[1])
	}
	// All-zero weights must fall back to uniform, never route nowhere.
	u := NewWeightedRing(addrs, []int{0, 0, 0}, 0)
	counts := make([]int, 3)
	for _, k := range keys {
		counts[u.Route(KeyHash(k))]++
	}
	for i, c := range counts {
		if c == 0 {
			t.Fatalf("all-zero-weight fallback left backend %d unrouted", i)
		}
	}
}

// TestBoundedRingMaxLoadInvariant is the bounded-load property test: with
// every routing decision incrementing the chosen backend's in-flight count
// (pure arrivals — the worst case), no decision may land on a backend
// whose post-assignment load exceeds ⌈c·(total+1)/B⌉, total counted
// before the assignment. Run against a heavily skewed stream (one hot key
// dominating) where the plain ring concentrates most load on one backend.
func TestBoundedRingMaxLoadInvariant(t *testing.T) {
	addrs := testAddrs(4)
	keys := testKeys(2000)
	const c = 1.25
	loads := make(map[string]int64, len(addrs))
	ring := NewRing(addrs, 0)
	br := NewBoundedRing(ring, c, func(addr string) int64 { return loads[addr] })

	var total int64
	for i := 0; i < 8000; i++ {
		key := keys[0] // hot key
		if i%3 == 0 {
			key = keys[i%len(keys)]
		}
		idx := br.Route(KeyHash(key))
		bound := int64(math.Ceil(c * float64(total+1) / float64(len(addrs))))
		loads[addrs[idx]]++
		total++
		if l := loads[addrs[idx]]; l > bound {
			t.Fatalf("step %d: backend %d at load %d exceeds bound ⌈c·(total+1)/B⌉ = %d", i, idx, l, bound)
		}
	}
	// The hot backend must actually have spilled: under pure hot-key
	// arrivals a plain ring would put ~2/3 of the load on one backend.
	var maxLoad int64
	for _, l := range loads {
		if l > maxLoad {
			maxLoad = l
		}
	}
	mean := float64(total) / float64(len(addrs))
	if f := float64(maxLoad) / mean; f > c+0.05 {
		t.Fatalf("steady-state max load %.2f× mean, want ≤ c=%v", f, c)
	}
}

// TestBoundedRingWeightedThreshold: thresholds scale with weight — a
// weight-2 backend absorbs about twice the in-flight load of weight-1
// peers before spilling, and a weight-0 backend absorbs nothing even when
// every other backend is saturated.
func TestBoundedRingWeightedThreshold(t *testing.T) {
	addrs := testAddrs(3)
	keys := testKeys(1000)
	loads := make(map[string]int64, len(addrs))
	ring := NewWeightedRing(addrs, []int{1, 2, 0}, 0)
	br := NewBoundedRing(ring, 1.25, func(addr string) int64 { return loads[addr] })
	for i := 0; i < 6000; i++ {
		idx := br.Route(KeyHash(keys[i%len(keys)]))
		loads[addrs[idx]]++
	}
	if l := loads[addrs[2]]; l != 0 {
		t.Fatalf("weight-0 backend absorbed %d requests under bounded overflow, want 0", l)
	}
	ratio := float64(loads[addrs[1]]) / float64(loads[addrs[0]])
	if ratio < 1.5 || ratio > 2.7 {
		t.Fatalf("weight-2/weight-1 load ratio %.2f, want ≈2", ratio)
	}
}

// TestBoundedRingIdleRoutesLikeRing: with zero load everywhere (and with a
// nil load function), bounded routing is byte-identical to the plain ring,
// so enabling the bound on an idle service moves no keys.
func TestBoundedRingIdleRoutesLikeRing(t *testing.T) {
	addrs := testAddrs(5)
	keys := testKeys(5000)
	ring := NewRing(addrs, 0)
	idle := NewBoundedRing(ring, 1.25, func(string) int64 { return 0 })
	noload := NewBoundedRing(ring, 1.25, nil)
	for _, k := range keys {
		h := KeyHash(k)
		want := ring.Route(h)
		if got := idle.Route(h); got != want {
			t.Fatalf("idle bounded ring diverges from plain ring on %q", k)
		}
		if got := noload.Route(h); got != want {
			t.Fatalf("nil-load bounded ring diverges from plain ring on %q", k)
		}
	}
	if MovedFraction(ring, idle, keys) != 0 {
		t.Fatal("idle bounded ring moved keys")
	}
}
