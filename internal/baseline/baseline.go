// Package baseline implements the comparison systems of the paper's
// evaluation as architectural models: an Apache-style thread-per-connection
// HTTP proxy (mod_proxy_balancer), an Nginx-style worker-pool proxy, and a
// Moxi-style multi-threaded Memcached proxy.
//
// These are not reimplementations of the originals; they are middleboxes
// with the same concurrency architecture and the same per-request overhead
// profile, so they exhibit the paper's scaling behaviours for the paper's
// reasons: Apache pays a heavyweight general-purpose processing path per
// request; Nginx is leaner but still a general-purpose server; Moxi's
// worker threads contend on shared data structures beyond a few cores
// ("The latency of Moxi beyond 4 CPU cores ... increases as threads compete
// over common data structures", §6.3). The per-request CPU constants below
// stand in for the baselines' measured stack costs on the paper's testbed;
// see DESIGN.md §2 (substitutions) and EXPERIMENTS.md.
package baseline

import (
	"net"
	"sync"
	"sync/atomic"
	"time"

	"flick/internal/buffer"
	"flick/internal/netstack"
	phttp "flick/internal/proto/http"
	"flick/internal/proto/memcache"
	"flick/internal/value"
)

// Per-request CPU costs standing in for the heavier general-purpose stacks
// (derived from the paper's single-core throughput ratios).
const (
	apacheRequestCost = 6 * time.Microsecond
	nginxRequestCost  = 3 * time.Microsecond
	moxiRequestCost   = 2 * time.Microsecond
)

// HTTPProxy is the interface shared by the two HTTP baselines.
type HTTPProxy interface {
	Addr() string
	Close()
	Requests() uint64
}

// apacheLike is a thread-per-connection proxy: every accepted connection
// gets its own goroutine and a backend connection from a shared, mutex-
// guarded pool; a global scoreboard is updated per request (Apache's
// process-management bookkeeping).
type apacheLike struct {
	listener net.Listener
	tr       netstack.Transport
	backends []string
	pools    []*connPool

	scoreMu    sync.Mutex
	scoreboard map[int64]int // goroutine-ish id → request count
	nextID     atomic.Int64
	requests   atomic.Uint64
	closed     atomic.Bool
}

// NewApacheLike starts the Apache-model proxy.
func NewApacheLike(tr netstack.Transport, addr string, backends []string) (HTTPProxy, error) {
	l, err := tr.Listen(addr)
	if err != nil {
		return nil, err
	}
	a := &apacheLike{
		listener:   l,
		tr:         tr,
		backends:   backends,
		scoreboard: map[int64]int{},
	}
	for _, b := range backends {
		a.pools = append(a.pools, newConnPool(tr, b, 64))
	}
	go func() {
		for {
			conn, err := l.Accept()
			if err != nil {
				return
			}
			go a.serve(conn)
		}
	}()
	return a, nil
}

func (a *apacheLike) Addr() string     { return a.listener.Addr().String() }
func (a *apacheLike) Requests() uint64 { return a.requests.Load() }

func (a *apacheLike) Close() {
	if a.closed.CompareAndSwap(false, true) {
		a.listener.Close()
		for _, p := range a.pools {
			p.close()
		}
	}
}

func (a *apacheLike) serve(conn net.Conn) {
	defer conn.Close()
	id := a.nextID.Add(1)
	target := int(id) % len(a.backends)
	q := buffer.NewQueue(nil)
	dec := phttp.RequestFormat{}.NewDecoder()
	rbuf := make([]byte, 16<<10)
	for {
		msg, ok, derr := dec.Decode(q)
		if derr != nil {
			return
		}
		if ok {
			// Apache's general-purpose request processing path.
			netstack.Spin(apacheRequestCost)
			a.scoreMu.Lock()
			a.scoreboard[id]++
			a.scoreMu.Unlock()
			a.requests.Add(1)

			resp, err := a.pools[target].roundTrip(msg.Field("_raw").AsBytes())
			if err != nil {
				msg.Release()
				return
			}
			if _, err := conn.Write(resp); err != nil {
				msg.Release()
				return
			}
			ka := msg.Field("keep_alive").AsInt() == 1
			msg.Release() // recycle the request's pooled wire bytes
			if !ka {
				return
			}
			continue
		}
		n, rerr := conn.Read(rbuf)
		if n > 0 {
			q.Append(rbuf[:n])
		}
		if rerr != nil {
			a.scoreMu.Lock()
			delete(a.scoreboard, id)
			a.scoreMu.Unlock()
			return
		}
	}
}

// nginxLike is an event-style proxy: accepted connections are multiplexed
// over a fixed pool of worker goroutines via a shared queue, with a leaner
// per-request path than Apache's.
type nginxLike struct {
	listener net.Listener
	queue    chan net.Conn
	pools    []*connPool
	backends []string
	requests atomic.Uint64
	rr       atomic.Uint64
	closed   atomic.Bool
}

// NewNginxLike starts the Nginx-model proxy with the given worker count
// (0 → 8, nginx's common worker_processes auto on the paper's testbed).
func NewNginxLike(tr netstack.Transport, addr string, backends []string, workers int) (HTTPProxy, error) {
	l, err := tr.Listen(addr)
	if err != nil {
		return nil, err
	}
	if workers <= 0 {
		workers = 8
	}
	n := &nginxLike{
		listener: l,
		queue:    make(chan net.Conn, 1024),
		backends: backends,
	}
	for _, b := range backends {
		n.pools = append(n.pools, newConnPool(tr, b, 64))
	}
	for w := 0; w < workers; w++ {
		go n.worker()
	}
	go func() {
		for {
			conn, err := l.Accept()
			if err != nil {
				close(n.queue)
				return
			}
			n.queue <- conn
		}
	}()
	return n, nil
}

func (n *nginxLike) Addr() string     { return n.listener.Addr().String() }
func (n *nginxLike) Requests() uint64 { return n.requests.Load() }

func (n *nginxLike) Close() {
	if n.closed.CompareAndSwap(false, true) {
		n.listener.Close()
		for _, p := range n.pools {
			p.close()
		}
	}
}

func (n *nginxLike) worker() {
	for conn := range n.queue {
		n.serve(conn)
	}
}

func (n *nginxLike) serve(conn net.Conn) {
	defer conn.Close()
	target := int(n.rr.Add(1)) % len(n.backends)
	q := buffer.NewQueue(nil)
	dec := phttp.RequestFormat{}.NewDecoder()
	rbuf := make([]byte, 16<<10)
	for {
		msg, ok, derr := dec.Decode(q)
		if derr != nil {
			return
		}
		if ok {
			netstack.Spin(nginxRequestCost)
			n.requests.Add(1)
			resp, err := n.pools[target].roundTrip(msg.Field("_raw").AsBytes())
			if err != nil {
				msg.Release()
				return
			}
			if _, err := conn.Write(resp); err != nil {
				msg.Release()
				return
			}
			ka := msg.Field("keep_alive").AsInt() == 1
			msg.Release() // recycle the request's pooled wire bytes
			if !ka {
				return
			}
			continue
		}
		m, rerr := conn.Read(rbuf)
		if m > 0 {
			q.Append(rbuf[:m])
		}
		if rerr != nil {
			return
		}
	}
}

// connPool keeps persistent connections to one backend (both baselines
// reuse backend connections — the reason they beat FLICK-kernel on
// non-persistent client traffic in Figure 4c).
type connPool struct {
	tr    netstack.Transport
	addr  string
	mu    sync.Mutex
	conns []net.Conn
	max   int
}

func newConnPool(tr netstack.Transport, addr string, max int) *connPool {
	return &connPool{tr: tr, addr: addr, max: max}
}

func (p *connPool) get() (net.Conn, error) {
	p.mu.Lock()
	if n := len(p.conns); n > 0 {
		c := p.conns[n-1]
		p.conns = p.conns[:n-1]
		p.mu.Unlock()
		return c, nil
	}
	p.mu.Unlock()
	return p.tr.Dial(p.addr)
}

func (p *connPool) put(c net.Conn) {
	p.mu.Lock()
	if len(p.conns) < p.max {
		p.conns = append(p.conns, c)
		p.mu.Unlock()
		return
	}
	p.mu.Unlock()
	c.Close()
}

func (p *connPool) close() {
	p.mu.Lock()
	for _, c := range p.conns {
		c.Close()
	}
	p.conns = nil
	p.mu.Unlock()
}

// roundTrip forwards one raw request over a pooled backend connection and
// returns the full response bytes.
func (p *connPool) roundTrip(rawReq []byte) ([]byte, error) {
	c, err := p.get()
	if err != nil {
		return nil, err
	}
	if _, err := c.Write(rawReq); err != nil {
		c.Close()
		// One retry on a stale pooled connection.
		if c, err = p.tr.Dial(p.addr); err != nil {
			return nil, err
		}
		if _, err := c.Write(rawReq); err != nil {
			c.Close()
			return nil, err
		}
	}
	q := buffer.NewQueue(nil)
	dec := phttp.ResponseFormat{}.NewDecoder()
	rbuf := make([]byte, 16<<10)
	for {
		msg, ok, derr := dec.Decode(q)
		if derr != nil {
			c.Close()
			return nil, derr
		}
		if ok {
			raw := append([]byte{}, msg.Field("_raw").AsBytes()...)
			ka := msg.Field("keep_alive").AsInt() == 1
			msg.Release() // raw copied out; recycle the pooled view
			if ka {
				p.put(c)
			} else {
				c.Close()
			}
			return raw, nil
		}
		n, rerr := c.Read(rbuf)
		if n > 0 {
			q.Append(rbuf[:n])
			continue
		}
		if rerr != nil {
			c.Close()
			return nil, rerr
		}
	}
}

// MoxiLike is the Moxi-model Memcached proxy: a fixed pool of worker
// threads services all client connections through one shared work queue,
// and every request updates shared statistics and consults a shared
// key→backend table under a global lock. The shared structures are what
// caps its scaling (§6.3).
type MoxiLike struct {
	listener net.Listener
	tr       netstack.Transport
	backends []string
	workers  int

	workQueue chan moxiJob

	// Shared state touched per request under one lock (Moxi's stats and
	// vbucket map).
	globalMu sync.Mutex
	stats    map[string]uint64
	routes   map[string]int

	requests atomic.Uint64
	closed   atomic.Bool
}

type moxiJob struct {
	req   value.Value
	reply chan value.Value
}

// NewMoxiLike starts the Moxi-model proxy with the given worker count
// ("CPU cores" in Figure 5).
func NewMoxiLike(tr netstack.Transport, addr string, backends []string, workers int) (*MoxiLike, error) {
	l, err := tr.Listen(addr)
	if err != nil {
		return nil, err
	}
	if workers <= 0 {
		workers = 4
	}
	m := &MoxiLike{
		listener:  l,
		tr:        tr,
		backends:  backends,
		workers:   workers,
		workQueue: make(chan moxiJob, 4096),
		stats:     map[string]uint64{},
		routes:    map[string]int{},
	}
	for w := 0; w < workers; w++ {
		go m.worker()
	}
	go func() {
		for {
			conn, err := l.Accept()
			if err != nil {
				return
			}
			go m.serveClient(conn)
		}
	}()
	return m, nil
}

// Addr returns the proxy's bound address.
func (m *MoxiLike) Addr() string { return m.listener.Addr().String() }

// Requests returns the number of proxied requests.
func (m *MoxiLike) Requests() uint64 { return m.requests.Load() }

// Close stops the proxy.
func (m *MoxiLike) Close() {
	if m.closed.CompareAndSwap(false, true) {
		m.listener.Close()
		close(m.workQueue)
	}
}

// serveClient reads requests and funnels them through the shared queue.
func (m *MoxiLike) serveClient(raw net.Conn) {
	c := memcache.NewConn(raw)
	defer c.Close()
	reply := make(chan value.Value, 1)
	for {
		req, err := c.Receive()
		if err != nil {
			return
		}
		if !m.enqueue(moxiJob{req: req, reply: reply}) {
			req.Release() // no worker will take it
			return        // proxy shut down
		}
		resp := <-reply
		if resp.IsNull() {
			req.Release() // worker is done with the request
			return
		}
		err = c.Send(resp)
		memcache.ReleaseAll(req, resp) // both retain pooled wire bytes
		if err != nil {
			return
		}
	}
}

// enqueue pushes a job, reporting false if the queue has been closed.
func (m *MoxiLike) enqueue(job moxiJob) (ok bool) {
	defer func() {
		if recover() != nil {
			ok = false
		}
	}()
	m.workQueue <- job
	return true
}

// worker executes jobs: route under the global lock, then round-trip to
// the backend over the worker's own connections.
func (m *MoxiLike) worker() {
	conns := make([]*memcache.Conn, len(m.backends))
	defer func() {
		for _, c := range conns {
			if c != nil {
				c.Close()
			}
		}
	}()
	for job := range m.workQueue {
		key := job.req.Field("key").AsString()

		// Global-lock section: stats + route table (the contention
		// bottleneck past ~4 workers).
		m.globalMu.Lock()
		m.stats["cmd_get"]++
		target, ok := m.routes[key]
		if !ok {
			target = int(hashKey(key)) % len(m.backends)
			m.routes[key] = target
		}
		m.globalMu.Unlock()

		netstack.Spin(moxiRequestCost)
		m.requests.Add(1)

		if conns[target] == nil {
			raw, err := m.tr.Dial(m.backends[target])
			if err != nil {
				job.reply <- value.Null
				continue
			}
			conns[target] = memcache.NewConn(raw)
		}
		resp, err := conns[target].RoundTrip(job.req)
		if err != nil {
			conns[target].Close()
			conns[target] = nil
			job.reply <- value.Null
			continue
		}
		job.reply <- resp
	}
}

// hashKey is FNV-1a over the key.
func hashKey(key string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(key); i++ {
		h ^= uint64(key[i])
		h *= 1099511628211
	}
	return h & 0x7fffffffffffffff
}
