package baseline

import (
	"testing"
	"time"

	"flick/internal/backend"
	"flick/internal/loadgen"
	"flick/internal/netstack"
	"flick/internal/proto/memcache"
)

func startBackends(t *testing.T, u *netstack.UserNet, n int) []string {
	t.Helper()
	addrs := make([]string, n)
	for i := 0; i < n; i++ {
		addrs[i] = "origin:" + string(rune('0'+i))
		s, err := backend.NewHTTPServer(u, addrs[i], 137)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(s.Close)
	}
	return addrs
}

func TestApacheLikeProxies(t *testing.T) {
	u := netstack.NewUserNet()
	addrs := startBackends(t, u, 3)
	p, err := NewApacheLike(u, "apache:80", addrs)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	res := loadgen.RunHTTP(loadgen.HTTPConfig{
		Transport:  u,
		Addr:       "apache:80",
		Clients:    8,
		Persistent: true,
		Duration:   300 * time.Millisecond,
	})
	if res.Requests == 0 {
		t.Fatalf("no requests completed (errors=%d)", res.Errors)
	}
	if p.Requests() == 0 {
		t.Fatal("proxy saw no requests")
	}
}

func TestApacheLikeNonPersistent(t *testing.T) {
	u := netstack.NewUserNet()
	addrs := startBackends(t, u, 2)
	p, err := NewApacheLike(u, "apache:81", addrs)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	res := loadgen.RunHTTP(loadgen.HTTPConfig{
		Transport:  u,
		Addr:       "apache:81",
		Clients:    4,
		Persistent: false,
		Duration:   300 * time.Millisecond,
	})
	if res.Requests == 0 {
		t.Fatalf("no non-persistent requests (errors=%d)", res.Errors)
	}
}

func TestNginxLikeProxies(t *testing.T) {
	u := netstack.NewUserNet()
	addrs := startBackends(t, u, 3)
	p, err := NewNginxLike(u, "nginx:80", addrs, 4)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	res := loadgen.RunHTTP(loadgen.HTTPConfig{
		Transport:  u,
		Addr:       "nginx:80",
		Clients:    8,
		Persistent: true,
		Duration:   300 * time.Millisecond,
	})
	if res.Requests == 0 {
		t.Fatalf("no requests completed (errors=%d)", res.Errors)
	}
	if p.Requests() == 0 {
		t.Fatal("proxy saw no requests")
	}
}

func TestMoxiLikeProxies(t *testing.T) {
	u := netstack.NewUserNet()
	addrs := make([]string, 2)
	for i := range addrs {
		addrs[i] = "mc:" + string(rune('0'+i))
		s, err := backend.NewMemcachedServer(u, addrs[i])
		if err != nil {
			t.Fatal(err)
		}
		s.Preload(loadgen.PreloadKeys(100, 32))
		t.Cleanup(s.Close)
	}
	m, err := NewMoxiLike(u, "moxi:11211", addrs, 4)
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()

	res := loadgen.RunMemcache(loadgen.MemcacheConfig{
		Transport: u,
		Addr:      "moxi:11211",
		Clients:   8,
		Keys:      100,
		Duration:  300 * time.Millisecond,
	})
	if res.Requests == 0 {
		t.Fatalf("no memcache requests (errors=%d)", res.Errors)
	}
	if m.Requests() == 0 {
		t.Fatal("moxi saw no requests")
	}
}

func TestMoxiRoutesConsistently(t *testing.T) {
	u := netstack.NewUserNet()
	var servers [2]*backend.MemcachedServer
	addrs := make([]string, 2)
	for i := range addrs {
		addrs[i] = "mcs:" + string(rune('0'+i))
		s, err := backend.NewMemcachedServer(u, addrs[i])
		if err != nil {
			t.Fatal(err)
		}
		servers[i] = s
		t.Cleanup(s.Close)
	}
	m, err := NewMoxiLike(u, "moxi:2", addrs, 2)
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()

	raw, _ := u.Dial("moxi:2")
	c := memcache.NewConn(raw)
	defer c.Close()
	// SET then GET through the proxy must hit the same shard.
	if _, err := c.RoundTrip(memcache.Request(memcache.OpSet, []byte("route-key"), []byte("val"))); err != nil {
		t.Fatal(err)
	}
	resp, err := c.RoundTrip(memcache.Request(memcache.OpGet, []byte("route-key"), nil))
	if err != nil {
		t.Fatal(err)
	}
	if resp.Field("value").AsString() != "val" {
		t.Fatalf("value through proxy = %q", resp.Field("value").AsString())
	}
}

func TestHashKeyDeterministic(t *testing.T) {
	if hashKey("abc") != hashKey("abc") {
		t.Fatal("hash not deterministic")
	}
	if hashKey("abc") == hashKey("abd") {
		t.Fatal("suspicious collision")
	}
}
