package bench

import (
	"fmt"
	"sync"
	"time"

	"flick/internal/apps"
	"flick/internal/buffer"
	"flick/internal/core"
	"flick/internal/grammar"
	"flick/internal/loadgen"
	"flick/internal/netstack"
	"flick/internal/value"
)

// Ablations quantify the design choices DESIGN.md calls out: the timeslice
// quantum, task→worker affinity, graph pooling, and application-specific
// parser pruning.

// TimeslicePoint reports the fairness/throughput trade-off for one quantum.
type TimeslicePoint struct {
	Quantum         time.Duration
	LightCompletion time.Duration
	Total           time.Duration
}

// RunTimesliceAblation sweeps the cooperative quantum over the paper's
// 10–100 µs range (§5) using the Figure 7 workload.
func RunTimesliceAblation(quanta []time.Duration, workers int) []TimeslicePoint {
	if len(quanta) == 0 {
		quanta = []time.Duration{
			10 * time.Microsecond, 50 * time.Microsecond,
			100 * time.Microsecond, time.Millisecond,
		}
	}
	var out []TimeslicePoint
	for _, q := range quanta {
		pts, _ := RunFig7(Fig7Config{
			Tasks:        64,
			ItemsPerTask: 64,
			Workers:      workers,
			Policies:     []core.Policy{core.CooperativeQuantum(q)},
		})
		out = append(out, TimeslicePoint{
			Quantum:         q,
			LightCompletion: pts[0].LightCompletion,
			Total:           pts[0].Total,
		})
	}
	return out
}

// TimesliceTable renders the sweep.
func TimesliceTable(points []TimeslicePoint) *Table {
	t := &Table{
		Title:   "Ablation: timeslice quantum (Fig 7 workload)",
		Columns: []string{"quantum", "light-done", "total"},
		Notes:   []string{"smaller quanta improve light-task latency at slightly higher scheduling overhead"},
	}
	for _, p := range points {
		t.Add(p.Quantum.String(), p.LightCompletion.Round(time.Millisecond).String(),
			p.Total.Round(time.Millisecond).String())
	}
	return t
}

// AffinityPoint compares per-worker queues + stealing vs one shared queue.
type AffinityPoint struct {
	Affinity bool
	Total    time.Duration
	// Stats carries the scheduler counter snapshot (steals, parks,
	// wakeups, inbox overflow) for the contention analysis.
	Stats core.SchedStats
}

// RunAffinityAblation runs a task soup under both queueing disciplines.
func RunAffinityAblation(workers, tasks, items int) []AffinityPoint {
	run := func(affinity bool) AffinityPoint {
		var opts []core.Option
		if !affinity {
			opts = append(opts, core.WithoutAffinity())
		}
		s := core.NewScheduler(workers, core.Cooperative, opts...)
		var wg sync.WaitGroup
		payload := value.Bytes(make([]byte, 4<<10))
		start := time.Now()
		for i := 0; i < tasks; i++ {
			work := core.NewChan(items)
			for j := 0; j < items; j++ {
				work.Push(payload)
			}
			work.Close()
			wg.Add(1)
			task := s.NewTask("soup", func(ctx *core.ExecCtx) core.RunResult {
				for {
					v, ok, closed := work.Pop()
					if closed {
						wg.Done()
						return core.RunDone
					}
					if !ok {
						return core.RunIdle
					}
					sum := 0
					for _, b := range v.B {
						sum += int(b)
					}
					_ = sum
					if ctx.CountItem() {
						return core.RunYield
					}
				}
			})
			s.Schedule(task)
		}
		s.Start()
		wg.Wait()
		total := time.Since(start)
		st := s.Stats()
		s.Stop()
		return AffinityPoint{Affinity: affinity, Total: total, Stats: st}
	}
	return []AffinityPoint{run(true), run(false)}
}

// AffinityTable renders the comparison.
func AffinityTable(points []AffinityPoint) *Table {
	t := &Table{
		Title:   "Ablation: task→worker affinity vs shared queue",
		Columns: []string{"affinity", "total", "steals", "parks", "wakeups", "overflow"},
		Notes:   []string{"hash-pinned queues reduce cross-worker cache traffic (§5); stealing covers imbalance"},
	}
	for _, p := range points {
		t.Add(fmt.Sprint(p.Affinity), p.Total.Round(time.Millisecond).String(),
			fmt.Sprint(p.Stats.Stolen), fmt.Sprint(p.Stats.Parks),
			fmt.Sprint(p.Stats.Wakeups), fmt.Sprint(p.Stats.Overflow))
	}
	return t
}

// PoolPoint compares pooled vs per-connection graph construction.
type PoolPoint struct {
	Pooled     bool
	Throughput float64
	Errors     uint64
}

// RunGraphPoolAblation hammers the static web server with non-persistent
// connections (one graph per connection) with the pool on and off.
func RunGraphPoolAblation(clients int, dur time.Duration) ([]PoolPoint, error) {
	run := func(pooled bool) (PoolPoint, error) {
		tr := netstack.NewUserNet()
		p := core.NewPlatform(core.Config{Workers: 8, Transport: tr})
		defer p.Close()
		ws, err := apps.StaticWebServer()
		if err != nil {
			return PoolPoint{}, err
		}
		svc, err := p.Deploy(core.ServiceConfig{
			Name:        "web",
			ListenAddr:  "web:80",
			Template:    ws.Graph.Template,
			Dispatch:    core.PerConnection,
			DisablePool: !pooled,
		})
		if err != nil {
			return PoolPoint{}, err
		}
		defer svc.Close()
		if pooled {
			svc.Pool().Prime(clients)
		}
		res := loadgen.RunHTTP(loadgen.HTTPConfig{
			Transport:  tr,
			Addr:       "web:80",
			Clients:    clients,
			Persistent: false, // fresh connection (and graph) per request
			Duration:   dur,
		})
		return PoolPoint{Pooled: pooled, Throughput: res.Throughput(), Errors: res.Errors}, nil
	}
	a, err := run(true)
	if err != nil {
		return nil, err
	}
	b, err := run(false)
	if err != nil {
		return nil, err
	}
	return []PoolPoint{a, b}, nil
}

// PoolTable renders the comparison.
func PoolTable(points []PoolPoint) *Table {
	t := &Table{
		Title:   "Ablation: pre-allocated graph pool vs per-connection construction",
		Columns: []string{"pooled", "req/s", "errors"},
		Notes:   []string{"§5: \"a pre-allocated pool of task graphs to avoid the overhead of construction\""},
	}
	for _, p := range points {
		t.Add(fmt.Sprint(p.Pooled), fmtReqs(p.Throughput), fmt.Sprint(p.Errors))
	}
	return t
}

// PruningPoint compares full-fidelity parsing against field-pruned parsing.
type PruningPoint struct {
	Pruned   bool
	MsgsPerS float64
}

// RunParserPruningAblation decodes a Memcached message stream with the full
// codec and with a key-only pruned codec (§4.2's application-specific
// parser specialisation).
func RunParserPruningAblation(messages int, valueSize int) []PruningPoint {
	full := grammar.MemcachedUnit().MustCompile()
	pruned := grammar.MemcachedUnit().MustCompile(grammar.Needed("key"))

	// One representative message with a large body.
	rec := full.Desc().New()
	rec.SetField("magic_code", value.Int(grammar.MemcachedMagicRequest))
	rec.SetField("opcode", value.Int(grammar.MemcachedOpGet))
	rec.SetField("key", value.Bytes([]byte("pruning-bench-key")))
	rec.SetField("value", value.Bytes(make([]byte, valueSize)))
	wire, err := full.Encode(nil, rec)
	if err != nil {
		panic(err)
	}

	run := func(codec *grammar.Codec, prunedRun bool) PruningPoint {
		q := buffer.NewQueue(nil)
		dec := codec.NewDecoder()
		start := time.Now()
		for i := 0; i < messages; i++ {
			q.Append(wire)
			msg, ok, err := dec.Decode(q)
			if !ok || err != nil {
				panic(fmt.Sprint(ok, err))
			}
			// Release the record's chunk reference so the pool recycles in
			// steady state; leaking it would measure allocation, not parsing.
			msg.Release()
		}
		el := time.Since(start)
		return PruningPoint{Pruned: prunedRun, MsgsPerS: float64(messages) / el.Seconds()}
	}
	return []PruningPoint{run(full, false), run(pruned, true)}
}

// PruningTable renders the comparison.
func PruningTable(points []PruningPoint) *Table {
	t := &Table{
		Title:   "Ablation: application-specific parser pruning",
		Columns: []string{"pruned", "msgs/s"},
		Notes:   []string{"§4.2: unneeded fields are skipped rather than materialised"},
	}
	for _, p := range points {
		t.Add(fmt.Sprint(p.Pruned), fmtReqs(p.MsgsPerS))
	}
	return t
}
