package bench

import (
	"fmt"
	"runtime"
	"strings"
	"time"

	"flick/internal/metrics"
	"flick/internal/netstack"
)

// System names the configurations under test.
type System string

// Systems.
const (
	SysFlick     System = "FLICK"      // platform on the kernel stack
	SysFlickMTCP System = "FLICK mTCP" // platform on the user-space stack
	SysApache    System = "Apache"     // thread-per-connection baseline
	SysNginx     System = "Nginx"      // worker-pool baseline
	SysMoxi      System = "Moxi"       // memcached proxy baseline
)

// transportFor returns a fresh transport for a system: baselines and
// FLICK-kernel run over loopback TCP, FLICK-mTCP over the in-process
// user-space stack (the mTCP/DPDK substitute).
func transportFor(sys System) netstack.Transport {
	if sys == SysFlickMTCP {
		return netstack.NewUserNet()
	}
	return netstack.KernelTCP{}
}

// listenAddr returns a bind address appropriate for the transport.
func listenAddr(tr netstack.Transport, name string) string {
	if tr.Name() == "kernel" {
		return "127.0.0.1:0"
	}
	return name
}

// Table renders experiment rows as an aligned text table.
type Table struct {
	Title   string
	Columns []string
	Rows    [][]string
	Notes   []string
}

// Add appends a row.
func (t *Table) Add(cells ...string) { t.Rows = append(t.Rows, cells) }

// String renders the table.
func (t *Table) String() string {
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var sb strings.Builder
	if t.Title != "" {
		sb.WriteString("== " + t.Title + " ==\n")
	}
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				sb.WriteString("  ")
			}
			sb.WriteString(cell)
			for p := len(cell); p < widths[i]; p++ {
				sb.WriteByte(' ')
			}
		}
		sb.WriteByte('\n')
	}
	writeRow(t.Columns)
	for i, w := range widths {
		if i > 0 {
			sb.WriteString("  ")
		}
		sb.WriteString(strings.Repeat("-", w))
	}
	sb.WriteByte('\n')
	for _, row := range t.Rows {
		writeRow(row)
	}
	for _, n := range t.Notes {
		sb.WriteString("note: " + n + "\n")
	}
	return sb.String()
}

// heapAllocs reads the process-wide cumulative heap allocation count.
func heapAllocs() uint64 {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	return ms.Mallocs
}

// allocsPerOp divides an allocation delta over completed requests.
func allocsPerOp(allocs, requests uint64) float64 {
	if requests == 0 {
		return 0
	}
	return float64(allocs) / float64(requests)
}

// fmtAllocs renders allocations per request.
func fmtAllocs(v float64) string { return fmt.Sprintf("%.1f", v) }

// fmtPool renders the buffer-pool counters that characterise the zero-copy
// data path: how many messages were served as views, how many had to be
// coalesced across chunks, and whether the pool missed or fell back to
// direct allocation.
func fmtPool(cs metrics.CounterSet) string {
	views, _ := cs.Get("views")
	coal, _ := cs.Get("coalesced")
	miss, _ := cs.Get("misses")
	over, _ := cs.Get("oversized")
	return fmt.Sprintf("views=%d coal=%d miss=%d over=%d", views, coal, miss, over)
}

// fmtReqs renders requests/second compactly.
func fmtReqs(v float64) string {
	switch {
	case v >= 1e6:
		return fmt.Sprintf("%.2fM", v/1e6)
	case v >= 1e3:
		return fmt.Sprintf("%.1fk", v/1e3)
	default:
		return fmt.Sprintf("%.0f", v)
	}
}

// fmtDur renders a duration rounded for tables.
func fmtDur(d time.Duration) string {
	switch {
	case d >= time.Millisecond:
		return fmt.Sprintf("%.2fms", float64(d)/1e6)
	case d >= time.Microsecond:
		return fmt.Sprintf("%.1fµs", float64(d)/1e3)
	default:
		return d.String()
	}
}
