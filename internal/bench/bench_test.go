package bench

import (
	"strings"
	"testing"
	"time"

	"flick/internal/core"
)

// Small parameters keep these integration tests fast; the full-scale runs
// live in cmd/flickbench and the root bench_test.go.

func TestWebServerExperimentSmoke(t *testing.T) {
	pts, err := RunWebServer(WebServerConfig{
		Systems:    []System{SysFlickMTCP, SysNginx},
		Clients:    []int{8},
		Persistent: true,
		Duration:   200 * time.Millisecond,
		Workers:    4,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 2 {
		t.Fatalf("points = %d", len(pts))
	}
	for _, p := range pts {
		if p.Throughput <= 0 {
			t.Fatalf("%s: zero throughput (errors=%d)", p.System, p.Errors)
		}
	}
	tbl := WebServerTable(pts, true)
	if !strings.Contains(tbl.String(), "req/s") {
		t.Fatal("table rendering")
	}
}

func TestFig4Smoke(t *testing.T) {
	pts, err := RunFig4(Fig4Config{
		Systems:    []System{SysFlickMTCP, SysApache},
		Clients:    []int{8},
		Backends:   2,
		Persistent: true,
		Duration:   200 * time.Millisecond,
		Workers:    4,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range pts {
		if p.Throughput <= 0 {
			t.Fatalf("%s: zero throughput (errors=%d)", p.System, p.Errors)
		}
	}
	if s := Fig4Table(pts, true).String(); !strings.Contains(s, "Figure 4a") {
		t.Fatalf("table: %s", s)
	}
}

// TestFig4RealOriginSmoke fronts stock net/http origins serving chunked
// responses: the cell fails unless every origin route round-trips through
// the load balancer byte-identical to a direct per-client dial, then the
// measured load itself runs at the chunked route.
func TestFig4RealOriginSmoke(t *testing.T) {
	pts, err := RunFig4(Fig4Config{
		Systems:    []System{SysFlickMTCP},
		Clients:    []int{4},
		Backends:   2,
		Persistent: true,
		Duration:   200 * time.Millisecond,
		Workers:    4,
		RealOrigin: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range pts {
		if p.Throughput <= 0 {
			t.Fatalf("%s: zero throughput against real origin (errors=%d)", p.System, p.Errors)
		}
		if p.Errors != 0 {
			t.Fatalf("%s: %d errors against real origin", p.System, p.Errors)
		}
	}
}

func TestFig4NonPersistentSmoke(t *testing.T) {
	pts, err := RunFig4(Fig4Config{
		Systems:    []System{SysFlickMTCP},
		Clients:    []int{4},
		Backends:   2,
		Persistent: false,
		Duration:   200 * time.Millisecond,
		Workers:    4,
	})
	if err != nil {
		t.Fatal(err)
	}
	if pts[0].Throughput <= 0 {
		t.Fatalf("zero non-persistent throughput (errors=%d)", pts[0].Errors)
	}
	if s := Fig4Table(pts, false).String(); !strings.Contains(s, "4c/4d") {
		t.Fatal("table label")
	}
}

func TestFig5Smoke(t *testing.T) {
	pts, err := RunFig5(Fig5Config{
		Systems:  []System{SysFlickMTCP, SysMoxi},
		Cores:    []int{2},
		Clients:  16,
		Backends: 2,
		Keys:     200,
		Duration: 200 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range pts {
		if p.Throughput <= 0 {
			t.Fatalf("%s: zero throughput (errors=%d)", p.System, p.Errors)
		}
	}
	if s := Fig5Table(pts).String(); !strings.Contains(s, "Figure 5") {
		t.Fatal("table label")
	}
}

func TestFig6Smoke(t *testing.T) {
	pts, err := RunFig6(Fig6Config{
		Cores:      []int{2},
		WordLens:   []int{8},
		Mappers:    4,
		BytesPer:   256 << 10,
		Distinct:   100,
		UseUserNet: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if pts[0].ThroughputMbps <= 0 || pts[0].Pairs == 0 {
		t.Fatalf("fig6 point = %+v", pts[0])
	}
	if s := Fig6Table(pts).String(); !strings.Contains(s, "Figure 6") {
		t.Fatal("table label")
	}
}

func TestFig7AllPolicies(t *testing.T) {
	pts, err := RunFig7(Fig7Config{
		Tasks:        40,
		ItemsPerTask: 32,
		Workers:      4,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 3 {
		t.Fatalf("policies = %d", len(pts))
	}
	for _, p := range pts {
		if p.LightCompletion <= 0 || p.HeavyCompletion <= 0 {
			t.Fatalf("%s: zero completion times", p.Policy)
		}
		if p.LightCompletion > p.Total+time.Millisecond {
			t.Fatalf("%s: light completion beyond total", p.Policy)
		}
	}
	if s := Fig7Table(pts).String(); !strings.Contains(s, "Figure 7") {
		t.Fatal("table label")
	}
}

func TestFig7CooperativeFairness(t *testing.T) {
	// The headline qualitative result: under the cooperative policy light
	// tasks complete well before the heavy ones.
	pts, err := RunFig7(Fig7Config{
		Tasks:        80,
		ItemsPerTask: 128,
		Workers:      2,
		Policies:     []core.Policy{core.Cooperative},
	})
	if err != nil {
		t.Fatal(err)
	}
	p := pts[0]
	if p.LightCompletion >= p.HeavyCompletion {
		t.Fatalf("cooperative: light (%v) should finish before heavy (%v)",
			p.LightCompletion, p.HeavyCompletion)
	}
}

func TestTimesliceAblation(t *testing.T) {
	pts := RunTimesliceAblation([]time.Duration{50 * time.Microsecond, time.Millisecond}, 2)
	if len(pts) != 2 {
		t.Fatalf("points = %d", len(pts))
	}
	if s := TimesliceTable(pts).String(); !strings.Contains(s, "quantum") {
		t.Fatal("table")
	}
}

func TestAffinityAblation(t *testing.T) {
	pts := RunAffinityAblation(4, 32, 16)
	if len(pts) != 2 || pts[0].Total <= 0 || pts[1].Total <= 0 {
		t.Fatalf("points = %+v", pts)
	}
	if s := AffinityTable(pts).String(); !strings.Contains(s, "affinity") {
		t.Fatal("table")
	}
}

func TestSchedulerScaling(t *testing.T) {
	var pts []SchedScalePoint
	for _, w := range []int{1, 2} {
		pts = append(pts, RunSchedulerScaling(SchedScaleConfig{
			Workers:        w,
			Sources:        4,
			Stages:         8,
			ItemsPerSource: 128,
		}))
	}
	for _, p := range pts {
		if p.Items != 4*128 {
			t.Fatalf("workers=%d processed %d items, want %d", p.Workers, p.Items, 4*128)
		}
		if p.ItemsPerSec() <= 0 || p.OpsPerSec() <= 0 {
			t.Fatalf("workers=%d: no throughput measured: %+v", p.Workers, p)
		}
		if p.Stats.Executed == 0 || p.Stats.Scheduled == 0 {
			t.Fatalf("workers=%d: scheduler stats empty: %+v", p.Workers, p.Stats)
		}
	}
	if s := SchedScaleTable(pts).String(); !strings.Contains(s, "workers") {
		t.Fatal("table")
	}
}

func TestSchedulerScalingSharedQueue(t *testing.T) {
	p := RunSchedulerScaling(SchedScaleConfig{
		Workers:        2,
		Sources:        2,
		Stages:         4,
		ItemsPerSource: 64,
		SharedQueue:    true,
	})
	if p.Items != 2*64 {
		t.Fatalf("processed %d items, want %d", p.Items, 2*64)
	}
}

func TestGraphPoolAblation(t *testing.T) {
	pts, err := RunGraphPoolAblation(8, 200*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 2 {
		t.Fatalf("points = %d", len(pts))
	}
	for _, p := range pts {
		if p.Throughput <= 0 {
			t.Fatalf("pooled=%v zero throughput", p.Pooled)
		}
	}
	if s := PoolTable(pts).String(); !strings.Contains(s, "pool") {
		t.Fatal("table")
	}
}

func TestParserPruningAblation(t *testing.T) {
	pts := RunParserPruningAblation(2000, 4096)
	if len(pts) != 2 {
		t.Fatalf("points = %d", len(pts))
	}
	full, pruned := pts[0], pts[1]
	if full.Pruned || !pruned.Pruned {
		t.Fatal("point order")
	}
	if pruned.MsgsPerS <= 0 || full.MsgsPerS <= 0 {
		t.Fatal("zero rates")
	}
	if s := PruningTable(pts).String(); !strings.Contains(s, "pruning") {
		t.Fatal("table")
	}
}

func TestTableRendering(t *testing.T) {
	tbl := &Table{
		Title:   "demo",
		Columns: []string{"a", "long-column"},
		Notes:   []string{"a note"},
	}
	tbl.Add("x", "y")
	tbl.Add("wide-cell", "z")
	s := tbl.String()
	for _, want := range []string{"demo", "long-column", "wide-cell", "note: a note", "---"} {
		if !strings.Contains(s, want) {
			t.Fatalf("table missing %q:\n%s", want, s)
		}
	}
}

func TestFormatHelpers(t *testing.T) {
	if fmtReqs(1500) != "1.5k" || fmtReqs(2_500_000) != "2.50M" || fmtReqs(42) != "42" {
		t.Fatal("fmtReqs")
	}
	if fmtDur(1500*time.Microsecond) != "1.50ms" {
		t.Fatalf("fmtDur = %s", fmtDur(1500*time.Microsecond))
	}
	if !strings.Contains(fmtDur(42*time.Microsecond), "µs") {
		t.Fatal("fmtDur µs")
	}
}
