package bench

import (
	"fmt"
	"net"
	"sync"
	"time"

	"flick/internal/apps"
	"flick/internal/backend"
	"flick/internal/core"
	"flick/internal/loadgen"
	"flick/internal/metrics"
	"flick/internal/proto/memcache"
)

// ChurnConfig parameterises the connection-churn experiment: C concurrent
// short-lived clients churn through Conns total connections against the
// Memcached proxy over B backends, each connection performing a single GET.
// This is the workload where per-client backend dialling hurts most — every
// accepted client pays B upstream TCP set-ups — and where the shared
// upstream connection layer collapses the upstream socket count from C×B
// to pool×B.
type ChurnConfig struct {
	System   System
	Clients  int // concurrent short-lived clients (C)
	Conns    int // total connections churned through
	Backends int // memcached shards (B)
	Keys     int // key-space size
	PoolSize int // upstream sockets per backend per shard (0: default)
	// UpstreamShards is the upstream pool shard count, with the same zero
	// value as everywhere else (apps.Service, Fig4Config, Fig5Config,
	// -upstream-shards): 0 shards one pool set per scheduler worker; 1 is
	// the single shared pool (RunChurnPair's and RunChurnSweep's baseline
	// rows pass 1 explicitly).
	UpstreamShards int
	NoUpstreamPool bool
	Workers        int
	// QuietBatch switches each churned connection from a single GET to a
	// moxi-style quiet-get batch — GetQ (hit), GetQ (miss), Noop — which
	// the shared upstream layer frames as ONE FIFO unit. Forces
	// Backends=1: the sharding proxy routes each message by its own key,
	// and a batch only stays a batch when every message lands on the same
	// upstream socket.
	QuietBatch bool
}

// ChurnPoint is one measured configuration.
type ChurnPoint struct {
	System   System
	Pooled   bool
	Shards   int // upstream pool shards (0 when the pool is disabled)
	Clients  int
	Conns    int
	Backends int
	// Throughput is completed connections (= requests) per second.
	Throughput float64
	// SetupMean/SetupP99 summarise per-connection time to first response
	// (dial + request + response — the end-to-end connection set-up cost).
	SetupMean time.Duration
	SetupP99  time.Duration
	Errors    uint64
	// BackendConns counts connections accepted across all backends: C×B
	// under per-client dialling, bounded by pool×B with shared upstreams.
	BackendConns uint64
	// UpstreamConns is the layer's live shared-socket count (0 when
	// disabled).
	UpstreamConns int
	// Upstream is the layer's counter snapshot (empty when disabled).
	Upstream metrics.CounterSet
}

// RunChurn measures one connection-churn configuration.
func RunChurn(cfg ChurnConfig) (ChurnPoint, error) {
	if cfg.Clients <= 0 {
		cfg.Clients = 32
	}
	if cfg.Conns <= 0 {
		cfg.Conns = 1000
	}
	if cfg.Backends <= 0 {
		cfg.Backends = 4
	}
	if cfg.QuietBatch {
		cfg.Backends = 1 // see the QuietBatch doc: one socket per batch
	}
	if cfg.Keys <= 0 {
		cfg.Keys = 1000
	}
	if cfg.Workers <= 0 {
		cfg.Workers = 4
	}
	if cfg.System == "" {
		cfg.System = SysFlick
	}
	tr := transportFor(cfg.System)

	var cleanup []func()
	closeAll := func() {
		for i := len(cleanup) - 1; i >= 0; i-- {
			cleanup[i]()
		}
	}
	kv := loadgen.PreloadKeys(cfg.Keys, 32)
	srvs := make([]*backend.MemcachedServer, cfg.Backends)
	addrs := make([]string, cfg.Backends)
	for i := range addrs {
		s, err := backend.NewMemcachedServer(tr, listenAddr(tr, fmt.Sprintf("churn-shard:%d", i)))
		if err != nil {
			closeAll()
			return ChurnPoint{}, err
		}
		s.Preload(kv)
		srvs[i] = s
		addrs[i] = s.Addr()
		cleanup = append(cleanup, s.Close)
	}

	p := core.NewPlatform(core.Config{Workers: cfg.Workers, Transport: tr})
	mp, err := apps.MemcachedProxy(cfg.Backends)
	if err != nil {
		p.Close()
		closeAll()
		return ChurnPoint{}, err
	}
	mp.Upstream.Disable = cfg.NoUpstreamPool
	mp.Upstream.PoolSize = cfg.PoolSize
	mp.Upstream.Shards = cfg.UpstreamShards
	svc, err := mp.Deploy(p, listenAddr(tr, "churn-proxy:11211"), addrs)
	if err != nil {
		p.Close()
		closeAll()
		return ChurnPoint{}, err
	}
	svc.Pool().Prime(cfg.Clients)
	cleanup = append(cleanup, func() { svc.Close(); p.Close() })
	addr := svc.Addr()

	var (
		hist metrics.Histogram
		errs metrics.Counter
		wg   sync.WaitGroup
	)
	start := time.Now()
	per := cfg.Conns / cfg.Clients
	for c := 0; c < cfg.Clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			key := []byte(loadgen.Key(c % cfg.Keys))
			for i := 0; i < per; i++ {
				t0 := time.Now()
				var err error
				if cfg.QuietBatch {
					err = churnOnceQuiet(tr.Dial, addr, key)
				} else {
					err = churnOnce(tr.Dial, addr, key)
				}
				if err != nil {
					errs.Inc()
					continue
				}
				hist.Record(time.Since(t0))
			}
		}(c)
	}
	wg.Wait()
	elapsed := time.Since(start)

	pt := ChurnPoint{
		System:   cfg.System,
		Pooled:   !cfg.NoUpstreamPool,
		Clients:  cfg.Clients,
		Conns:    cfg.Clients * per,
		Backends: cfg.Backends,
		Errors:   errs.Value(),
	}
	if elapsed > 0 {
		pt.Throughput = float64(hist.Count()) / elapsed.Seconds()
	}
	snap := hist.Snapshot()
	pt.SetupMean, pt.SetupP99 = snap.Mean, snap.P99
	pt.BackendConns = settledAccepts(srvs)
	if m := svc.Upstreams(); m != nil {
		pt.Shards = m.Shards()
		pt.UpstreamConns = m.Conns()
		pt.Upstream = m.Counters()
	}
	closeAll()
	return pt, nil
}

// settledAccepts sums backend-side accepted connections once the count is
// stable: accept loops may still be draining their backlogs when the last
// client's round trip completes (a client only waits for the shard its key
// hashes to, not for every backend dial to be accepted).
func settledAccepts(srvs []*backend.MemcachedServer) uint64 {
	var prev uint64
	deadline := time.Now().Add(2 * time.Second)
	for {
		var cur uint64
		for _, s := range srvs {
			cur += s.Accepts()
		}
		if cur == prev || time.Now().After(deadline) {
			return cur
		}
		prev = cur
		time.Sleep(10 * time.Millisecond)
	}
}

// churnOnce performs one short-lived client connection: dial, one GET, read
// the response, disconnect.
func churnOnce(dial func(string) (net.Conn, error), addr string, key []byte) error {
	raw, err := dial(addr)
	if err != nil {
		return err
	}
	defer raw.Close()
	c := memcache.NewConn(raw)
	raw.SetReadDeadline(time.Now().Add(10 * time.Second))
	resp, err := c.RoundTrip(memcache.Request(memcache.OpGet, key, nil))
	if err != nil {
		return err
	}
	resp.Release()
	return nil
}

// churnOnceQuiet performs one short-lived quiet-get batch: GetQ for a
// preloaded key (a hit that responds), GetQ for a key that does not exist
// (a miss that stays silent), then the Noop terminator. The client is done
// when the terminator's response arrives — one hit plus one Noop, with the
// miss correctly absent.
func churnOnceQuiet(dial func(string) (net.Conn, error), addr string, key []byte) error {
	raw, err := dial(addr)
	if err != nil {
		return err
	}
	defer raw.Close()
	c := memcache.NewConn(raw)
	raw.SetReadDeadline(time.Now().Add(10 * time.Second))
	if err := c.Send(memcache.Request(memcache.OpGetQ, key, nil)); err != nil {
		return err
	}
	if err := c.Send(memcache.Request(memcache.OpGetQ, []byte("churn-missing-key"), nil)); err != nil {
		return err
	}
	if err := c.Send(memcache.Request(memcache.OpNoop, nil, nil)); err != nil {
		return err
	}
	hits := 0
	for {
		resp, err := c.Receive()
		if err != nil {
			return err
		}
		op := resp.Field("opcode").AsInt()
		resp.Release()
		if op == memcache.OpNoop {
			break
		}
		hits++
	}
	if hits != 1 {
		return fmt.Errorf("quiet batch returned %d hits before the terminator, want 1", hits)
	}
	return nil
}

// RunChurnPair measures the pooled configuration and the per-client-dial
// ablation back to back (one binary, same parameters). The pooled row
// pins the single shared pool (shards=1) unless cfg.UpstreamShards says
// otherwise — the pool×B socket bound this pair historically gates only
// holds unsharded.
func RunChurnPair(cfg ChurnConfig) ([]ChurnPoint, error) {
	var out []ChurnPoint
	for _, noPool := range []bool{false, true} {
		c := cfg
		c.NoUpstreamPool = noPool
		if c.UpstreamShards <= 0 {
			c.UpstreamShards = 1
		}
		pt, err := RunChurn(c)
		if err != nil {
			return out, fmt.Errorf("bench: churn (noPool=%v): %w", noPool, err)
		}
		out = append(out, pt)
	}
	return out, nil
}

// RunChurnSweep measures the three upstream configurations back to back:
// per-worker sharded pools (one shard per scheduler worker), the single
// shared pool, and the per-client-dial ablation. The sharded-vs-shared
// delta is the per-worker-sharding claim: same socket discipline, but the
// write path of each worker's graphs stops contending on one FIFO lock.
func RunChurnSweep(cfg ChurnConfig) ([]ChurnPoint, error) {
	workers := cfg.Workers
	if workers <= 0 {
		workers = 4 // RunChurn's default
	}
	rows := []struct {
		name   string
		shards int
		noPool bool
	}{
		{"sharded", workers, false},
		{"shared", 1, false},
		{"per-client", 0, true},
	}
	var out []ChurnPoint
	for _, r := range rows {
		c := cfg
		c.UpstreamShards = r.shards
		c.NoUpstreamPool = r.noPool
		pt, err := RunChurn(c)
		if err != nil {
			return out, fmt.Errorf("bench: churn (%s): %w", r.name, err)
		}
		out = append(out, pt)
	}
	return out, nil
}

// ChurnTable renders the experiment.
func ChurnTable(points []ChurnPoint) *Table {
	t := &Table{
		Title: "Connection churn — sharded / shared upstream pools vs per-client dials",
		Columns: []string{"system", "upstreams", "shards", "clients", "backends", "conns",
			"conn/s", "setup-mean", "setup-p99", "errors", "be-conns", "up-socks", "upstream"},
		Notes: []string{
			"be-conns: connections accepted backend-side (C×B per-client-dial, pool×shards×B pooled)",
			"setup: dial → first response, the per-connection set-up cost the pool amortises",
			"shardhits/shardsteals: leases served by the caller's own shard vs borrowed from a sibling",
		},
	}
	for _, p := range points {
		mode := "pooled"
		shards := fmt.Sprint(p.Shards)
		if !p.Pooled {
			mode, shards = "per-client", "-"
		}
		t.Add(string(p.System), mode, shards, fmt.Sprint(p.Clients), fmt.Sprint(p.Backends),
			fmt.Sprint(p.Conns), fmtReqs(p.Throughput), fmtDur(p.SetupMean),
			fmtDur(p.SetupP99), fmt.Sprint(p.Errors), fmt.Sprint(p.BackendConns),
			fmt.Sprint(p.UpstreamConns), fmtUpstream(p.Upstream))
	}
	return t
}

// fmtUpstream renders the upstream layer's counters compactly.
func fmtUpstream(cs metrics.CounterSet) string {
	if cs.Len() == 0 {
		return "-"
	}
	dials, _ := cs.Get("dials")
	reuse, _ := cs.Get("reuse")
	redials, _ := cs.Get("redials")
	ff, _ := cs.Get("failfast")
	hits, _ := cs.Get("shardhits")
	steals, _ := cs.Get("shardsteals")
	return fmt.Sprintf("dials=%d reuse=%d redial=%d ff=%d hits=%d steals=%d",
		dials, reuse, redials, ff, hits, steals)
}

// upstreamCounters snapshots a service's upstream-layer counters (empty
// set when the service is nil or dials per connection).
func upstreamCounters(svc *core.Service) metrics.CounterSet {
	if svc == nil || svc.Upstreams() == nil {
		return metrics.CounterSet{}
	}
	return svc.Upstreams().Counters()
}
