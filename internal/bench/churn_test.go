package bench

import (
	"testing"
)

// TestChurnSmoke runs the connection-churn experiment small, over the
// user-space stack, and asserts the headline claim: shared upstreams bound
// backend-side connections at pool×B while the ablation pays C×B, with no
// errors either way.
func TestChurnSmoke(t *testing.T) {
	const (
		clients  = 8
		conns    = 64
		backends = 2
		poolSize = 2
	)
	pts, err := RunChurnPair(ChurnConfig{
		System:   SysFlickMTCP,
		Clients:  clients,
		Conns:    conns,
		Backends: backends,
		PoolSize: poolSize,
		Workers:  2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 2 {
		t.Fatalf("got %d points, want 2", len(pts))
	}
	pooled, ablated := pts[0], pts[1]
	if !pooled.Pooled || ablated.Pooled {
		t.Fatalf("point order: %+v", pts)
	}
	for _, p := range pts {
		if p.Errors != 0 {
			t.Fatalf("%+v: %d errors", p, p.Errors)
		}
		if p.Throughput == 0 {
			t.Fatalf("%+v: no throughput", p)
		}
	}
	if pooled.BackendConns > uint64(poolSize*backends) {
		t.Fatalf("pooled backend conns = %d, want <= %d", pooled.BackendConns, poolSize*backends)
	}
	if ablated.BackendConns != uint64(ablated.Conns*backends) {
		t.Fatalf("ablated backend conns = %d, want C×B = %d",
			ablated.BackendConns, ablated.Conns*backends)
	}
	if pooled.UpstreamConns == 0 || pooled.Upstream.Len() == 0 {
		t.Fatalf("pooled point carries no upstream telemetry: %+v", pooled)
	}
	if reuse, _ := pooled.Upstream.Get("reuse"); reuse == 0 {
		t.Fatalf("no lease reuse recorded under churn: %s", pooled.Upstream)
	}
	// The table renders the upstream column for regression visibility.
	tab := ChurnTable(pts)
	found := false
	for _, c := range tab.Columns {
		if c == "upstream" {
			found = true
		}
	}
	if !found {
		t.Fatalf("churn table missing upstream column: %v", tab.Columns)
	}
}

// TestChurnQuietBatchSmoke churns connections that each issue a quiet-get
// batch (GetQ hit, GetQ miss, Noop) through the pooled proxy: the batch
// frames as one FIFO unit on the shared socket, the miss stays silent, and
// nothing desyncs across the churning clients.
func TestChurnQuietBatchSmoke(t *testing.T) {
	pt, err := RunChurn(ChurnConfig{
		System:     SysFlickMTCP,
		Clients:    8,
		Conns:      64,
		PoolSize:   2,
		Workers:    2,
		QuietBatch: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if pt.Errors != 0 {
		t.Fatalf("%d quiet-batch connections failed", pt.Errors)
	}
	if pt.Throughput == 0 {
		t.Fatal("no quiet-batch throughput")
	}
	if pt.Backends != 1 {
		t.Fatalf("quiet batch must pin Backends=1, got %d", pt.Backends)
	}
}

// TestChurnSweepSmoke runs the three-way sweep (per-worker sharded /
// single shared pool / per-client dials) small and asserts the sharded
// row's contract: no errors, socket count bounded by pool×shards×B, every
// lease accounted to a shard (shardhits + shardsteals = leases served).
func TestChurnSweepSmoke(t *testing.T) {
	const (
		clients  = 8
		conns    = 64
		backends = 2
		poolSize = 1
		workers  = 2
	)
	pts, err := RunChurnSweep(ChurnConfig{
		System:   SysFlickMTCP,
		Clients:  clients,
		Conns:    conns,
		Backends: backends,
		PoolSize: poolSize,
		Workers:  workers,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 3 {
		t.Fatalf("got %d points, want 3 (sharded, shared, per-client)", len(pts))
	}
	sharded, shared, ablated := pts[0], pts[1], pts[2]
	if sharded.Shards != workers || shared.Shards != 1 || ablated.Pooled {
		t.Fatalf("row order/config: %+v", pts)
	}
	for _, p := range pts {
		if p.Errors != 0 {
			t.Fatalf("%+v: %d errors", p, p.Errors)
		}
		if p.Throughput == 0 {
			t.Fatalf("%+v: no throughput", p)
		}
	}
	if sharded.BackendConns > uint64(poolSize*workers*backends) {
		t.Fatalf("sharded backend conns = %d, want <= pool×shards×B = %d",
			sharded.BackendConns, poolSize*workers*backends)
	}
	hits, _ := sharded.Upstream.Get("shardhits")
	steals, _ := sharded.Upstream.Get("shardsteals")
	if hits == 0 {
		t.Fatalf("sharded run recorded no shardhits: %s", sharded.Upstream)
	}
	if steals != 0 {
		t.Fatalf("healthy backends should need no shardsteals, got %d: %s", steals, sharded.Upstream)
	}
	if h, _ := shared.Upstream.Get("shardhits"); h == 0 {
		t.Fatalf("shared-pool run recorded no shardhits: %s", shared.Upstream)
	}
}
