// Package bench regenerates every table and figure of the paper's
// evaluation (§6): the static web-server comparison, Figure 4 (HTTP load
// balancer), Figure 5 (Memcached proxy core scaling), Figure 6 (Hadoop
// aggregator core scaling), Figure 7 (scheduling-policy fairness), plus
// the post-paper experiments — scheduler scaling (schedscale), connection
// churn over the shared upstream layer (churn), the live-topology
// rebalance (rebalance: consistent-hash ring vs mod-B during a B→B+1
// scale-out under load) — and the design-choice ablations. Each runner
// builds the complete testbed in-process — middlebox under test, origin
// servers and client fleet — over the transport that matches the measured
// configuration (kernel loopback for "FLICK"/baselines, the user-space
// stack for "FLICK mTCP").
//
// Absolute numbers are not comparable to the paper's 16-core Xeon testbed
// with 10 GbE; the reproduction targets the figures' shapes (who wins, by
// roughly what factor, where peaks and crossovers fall).
//
// # Ownership
//
// Bench clients receive zero-copy responses (memcache.Conn.RoundTrip,
// decoded records in sinks) and Release every message they consume, so a
// bench measures parsing and forwarding — not pool-drain allocation — and
// refgets == refputs holds at the end of every run.
//
// # Counters in tables
//
// Tables report the layers' metrics.CounterSets where they explain the
// result: scheduler stats (scheduled, executed, stolen, parks, wakeups,
// overflow) in schedscale/ablations, pool counters (refgets, refputs,
// views, coalesced, allocs/req) in fig4/fig5, and upstream counters
// (dials, reuse, redials, failfast, probes, drained) in churn/rebalance.
package bench
