package bench

import (
	"fmt"
	"time"

	"flick/internal/apps"
	"flick/internal/backend"
	"flick/internal/baseline"
	"flick/internal/buffer"
	"flick/internal/core"
	"flick/internal/loadgen"
	"flick/internal/metrics"
	"flick/internal/netstack"
)

// Fig4Config parameterises the Figure 4 HTTP load-balancer experiment.
type Fig4Config struct {
	Systems    []System
	Clients    []int // concurrent connections (paper: 100..1600)
	Backends   int   // paper: 10
	Persistent bool  // 4a/4b vs 4c/4d
	Duration   time.Duration
	Workers    int // FLICK worker threads / Nginx workers
	Payload    int // response body bytes (paper: 137)
	// NoUpstreamPool restores per-client backend dialling (ablation).
	NoUpstreamPool bool
	// UpstreamShards overrides the upstream pool shard count (0: one
	// shard per worker; 1: the single shared pool).
	UpstreamShards int
	// RealOrigin swaps the synthetic backends for stock net/http origins
	// serving chunked transfer-encoding, and drives the load at the
	// chunked route. Before measuring, every cell diffs a through-proxy
	// fetch of each origin route (chunked, Content-Length, 304) against a
	// direct per-client dial and fails unless they are byte-identical.
	RealOrigin bool
}

// Fig4Point is one measured cell.
type Fig4Point struct {
	System      System
	Clients     int
	Throughput  float64
	MeanLatency time.Duration
	P99Latency  time.Duration
	Errors      uint64
	// AllocsPerOp is heap allocations per completed request across the
	// whole in-process testbed (middlebox + backends + clients): the
	// zero-copy data path shows up as this number collapsing.
	AllocsPerOp float64
	// Pool is the buffer-pool counter delta over the measurement window.
	Pool metrics.CounterSet
	// Upstream is the shared-upstream-layer counter delta (empty for
	// baselines and the per-client-dial ablation).
	Upstream metrics.CounterSet
	// Live is the middlebox's own decode→flush latency histogram over the
	// window — the live pipeline the admin /latency endpoint serves
	// (zero-valued for baselines, which have no such pipeline).
	Live metrics.Snapshot
}

// RunFig4 measures the HTTP load balancer for every system×concurrency.
func RunFig4(cfg Fig4Config) ([]Fig4Point, error) {
	if len(cfg.Systems) == 0 {
		cfg.Systems = []System{SysFlick, SysFlickMTCP, SysApache, SysNginx}
	}
	if len(cfg.Clients) == 0 {
		cfg.Clients = []int{100, 200, 400, 800, 1600}
	}
	if cfg.Backends <= 0 {
		cfg.Backends = 10
	}
	if cfg.Duration <= 0 {
		cfg.Duration = 2 * time.Second
	}
	if cfg.Payload <= 0 {
		cfg.Payload = 137
	}
	var out []Fig4Point
	for _, sys := range cfg.Systems {
		for _, clients := range cfg.Clients {
			pt, err := runFig4Cell(cfg, sys, clients)
			if err != nil {
				return out, fmt.Errorf("bench: fig4 %s/%d: %w", sys, clients, err)
			}
			out = append(out, pt)
		}
	}
	return out, nil
}

// lbTestbed is a constructed load-balancer deployment.
type lbTestbed struct {
	addr       string
	originAddr string        // one backend's own address (passthrough diff)
	svc        *core.Service // nil for baselines
	cleanup    []func()
}

func (tb *lbTestbed) close() {
	for i := len(tb.cleanup) - 1; i >= 0; i-- {
		tb.cleanup[i]()
	}
}

// buildLBTestbed starts the backends and the middlebox under test.
func buildLBTestbed(cfg Fig4Config, sys System, tr netstack.Transport) (*lbTestbed, error) {
	tb := &lbTestbed{}
	addrs := make([]string, cfg.Backends)
	for i := range addrs {
		if cfg.RealOrigin {
			s, err := NewRealOrigin(tr, listenAddr(tr, fmt.Sprintf("origin:%d", i)), cfg.Payload)
			if err != nil {
				tb.close()
				return nil, err
			}
			addrs[i] = s.Addr()
			tb.cleanup = append(tb.cleanup, s.Close)
		} else {
			s, err := backend.NewHTTPServer(tr, listenAddr(tr, fmt.Sprintf("origin:%d", i)), cfg.Payload)
			if err != nil {
				tb.close()
				return nil, err
			}
			addrs[i] = s.Addr()
			tb.cleanup = append(tb.cleanup, s.Close)
		}
	}
	tb.originAddr = addrs[0]
	switch sys {
	case SysFlick, SysFlickMTCP:
		p := core.NewPlatform(core.Config{Workers: cfg.Workers, Transport: tr})
		lb, err := apps.HTTPLoadBalancer(cfg.Backends)
		if err != nil {
			p.Close()
			tb.close()
			return nil, err
		}
		lb.Upstream.Disable = cfg.NoUpstreamPool
		lb.Upstream.Shards = cfg.UpstreamShards
		svc, err := lb.Deploy(p, listenAddr(tr, "lb:80"), addrs)
		if err != nil {
			p.Close()
			tb.close()
			return nil, err
		}
		svc.Pool().Prime(64)
		tb.addr = svc.Addr()
		tb.svc = svc
		tb.cleanup = append(tb.cleanup, func() { svc.Close(); p.Close() })
	case SysApache:
		px, err := baseline.NewApacheLike(tr, listenAddr(tr, "lb:80"), addrs)
		if err != nil {
			tb.close()
			return nil, err
		}
		tb.addr = px.Addr()
		tb.cleanup = append(tb.cleanup, px.Close)
	case SysNginx:
		px, err := baseline.NewNginxLike(tr, listenAddr(tr, "lb:80"), addrs, cfg.Workers)
		if err != nil {
			tb.close()
			return nil, err
		}
		tb.addr = px.Addr()
		tb.cleanup = append(tb.cleanup, px.Close)
	default:
		tb.close()
		return nil, fmt.Errorf("system %q not applicable to fig4", sys)
	}
	return tb, nil
}

func runFig4Cell(cfg Fig4Config, sys System, clients int) (Fig4Point, error) {
	tr := transportFor(sys)
	tb, err := buildLBTestbed(cfg, sys, tr)
	if err != nil {
		return Fig4Point{}, err
	}
	defer tb.close()

	uri := ""
	if cfg.RealOrigin {
		// Chunked responses exercise the request-aware framing end to
		// end; first prove the proxy is invisible on the wire.
		uri = OriginChunkedURI
		if err := VerifyPassthrough(tr, tb.addr, tb.originAddr); err != nil {
			return Fig4Point{}, err
		}
	}
	pool0 := buffer.Global.Counters()
	up0 := upstreamCounters(tb.svc)
	allocs0 := heapAllocs()
	res := loadgen.RunHTTP(loadgen.HTTPConfig{
		Transport:  tr,
		Addr:       tb.addr,
		URI:        uri,
		Clients:    clients,
		Persistent: cfg.Persistent,
		Duration:   cfg.Duration,
	})
	allocs1 := heapAllocs()
	pt := Fig4Point{
		System:      sys,
		Clients:     clients,
		Throughput:  res.Throughput(),
		MeanLatency: res.Latency.Mean,
		P99Latency:  res.Latency.P99,
		Errors:      res.Errors,
		AllocsPerOp: allocsPerOp(allocs1-allocs0, res.Requests),
		Pool:        buffer.Global.Counters().Sub(pool0),
		Upstream:    upstreamCounters(tb.svc).Sub(up0),
	}
	if tb.svc != nil {
		pt.Live = tb.svc.Latency().Total().Snapshot()
	}
	return pt, nil
}

// Fig4Table renders the figure's two panels (throughput and latency).
func Fig4Table(points []Fig4Point, persistent bool) *Table {
	panel := "4a/4b (persistent)"
	notes := []string{
		"paper shape: FLICK ≈1.4× Nginx and ≈2.2× Apache; FLICK mTCP up to 2.7×/4.2×; FLICK lowest latency",
	}
	if !persistent {
		panel = "4c/4d (non-persistent)"
		notes = []string{
			"paper shape: FLICK-kernel BELOW Apache/Nginx (no backend connection reuse);",
			"FLICK mTCP ≈2.5× Nginx and ≈2.1× Apache; FLICK variants keep the lowest latency",
			"the shared upstream pool adds the reuse the paper's FLICK lacked: compare -no-upstream-pool",
		}
	}
	t := &Table{
		Title:   "HTTP load balancer — Figure " + panel,
		Columns: []string{"system", "clients", "req/s", "mean-lat", "p99-lat", "live-p99", "errors", "allocs/req", "pool", "upstream"},
		Notes:   append(notes, "live-p99 = the middlebox's own decode→flush histogram (admin /latency); '-' for baselines"),
	}
	for _, p := range points {
		liveCol := "-"
		if p.Live.Count > 0 {
			liveCol = fmtDur(p.Live.P99)
		}
		t.Add(string(p.System), fmt.Sprint(p.Clients), fmtReqs(p.Throughput),
			fmtDur(p.MeanLatency), fmtDur(p.P99Latency), liveCol, fmt.Sprint(p.Errors),
			fmtAllocs(p.AllocsPerOp), fmtPool(p.Pool), fmtUpstream(p.Upstream))
	}
	return t
}
