package bench

import (
	"fmt"
	"time"

	"flick/internal/apps"
	"flick/internal/backend"
	"flick/internal/baseline"
	"flick/internal/buffer"
	"flick/internal/core"
	"flick/internal/loadgen"
	"flick/internal/metrics"
)

// Fig5Config parameterises the Figure 5 Memcached proxy experiment.
type Fig5Config struct {
	Systems  []System
	Cores    []int // CPU cores for the proxy (paper: 1,2,4,8,16)
	Clients  int   // concurrent clients (paper: 128)
	Backends int   // memcached shards (paper: 10)
	Keys     int   // key-space size
	Duration time.Duration
	// NoUpstreamPool restores per-client backend dialling (ablation).
	NoUpstreamPool bool
	// UpstreamShards overrides the upstream pool shard count (0: one
	// shard per worker; 1: the single shared pool).
	UpstreamShards int
}

// Fig5Point is one measured cell.
type Fig5Point struct {
	System      System
	Cores       int
	Throughput  float64
	MeanLatency time.Duration
	P99Latency  time.Duration
	Errors      uint64
	// AllocsPerOp is heap allocations per completed request across the
	// whole in-process testbed.
	AllocsPerOp float64
	// Pool is the buffer-pool counter delta over the measurement window.
	Pool metrics.CounterSet
	// Upstream is the shared-upstream-layer counter delta (empty for Moxi
	// and the per-client-dial ablation).
	Upstream metrics.CounterSet
}

// RunFig5 measures the Memcached proxy across core counts.
func RunFig5(cfg Fig5Config) ([]Fig5Point, error) {
	if len(cfg.Systems) == 0 {
		cfg.Systems = []System{SysFlick, SysFlickMTCP, SysMoxi}
	}
	if len(cfg.Cores) == 0 {
		cfg.Cores = []int{1, 2, 4, 8, 16}
	}
	if cfg.Clients <= 0 {
		cfg.Clients = 128
	}
	if cfg.Backends <= 0 {
		cfg.Backends = 10
	}
	if cfg.Keys <= 0 {
		cfg.Keys = 10000
	}
	if cfg.Duration <= 0 {
		cfg.Duration = 2 * time.Second
	}
	var out []Fig5Point
	for _, sys := range cfg.Systems {
		for _, cores := range cfg.Cores {
			pt, err := runFig5Cell(cfg, sys, cores)
			if err != nil {
				return out, fmt.Errorf("bench: fig5 %s/%d cores: %w", sys, cores, err)
			}
			out = append(out, pt)
		}
	}
	return out, nil
}

func runFig5Cell(cfg Fig5Config, sys System, cores int) (Fig5Point, error) {
	tr := transportFor(sys)

	// Backends, preloaded so GETs hit.
	addrs := make([]string, cfg.Backends)
	var cleanup []func()
	closeAll := func() {
		for i := len(cleanup) - 1; i >= 0; i-- {
			cleanup[i]()
		}
	}
	kv := loadgen.PreloadKeys(cfg.Keys, 32)
	for i := range addrs {
		s, err := backend.NewMemcachedServer(tr, listenAddr(tr, fmt.Sprintf("shard:%d", i)))
		if err != nil {
			closeAll()
			return Fig5Point{}, err
		}
		s.Preload(kv)
		addrs[i] = s.Addr()
		cleanup = append(cleanup, s.Close)
	}

	var addr string
	var svcUnderTest *core.Service
	switch sys {
	case SysFlick, SysFlickMTCP:
		p := core.NewPlatform(core.Config{Workers: cores, Transport: tr})
		mp, err := apps.MemcachedProxy(cfg.Backends)
		if err != nil {
			p.Close()
			closeAll()
			return Fig5Point{}, err
		}
		mp.Upstream.Disable = cfg.NoUpstreamPool
		mp.Upstream.Shards = cfg.UpstreamShards
		svc, err := mp.Deploy(p, listenAddr(tr, "proxy:11211"), addrs)
		if err != nil {
			p.Close()
			closeAll()
			return Fig5Point{}, err
		}
		svc.Pool().Prime(cfg.Clients)
		addr = svc.Addr()
		svcUnderTest = svc
		cleanup = append(cleanup, func() { svc.Close(); p.Close() })
	case SysMoxi:
		m, err := baseline.NewMoxiLike(tr, listenAddr(tr, "proxy:11211"), addrs, cores)
		if err != nil {
			closeAll()
			return Fig5Point{}, err
		}
		addr = m.Addr()
		cleanup = append(cleanup, m.Close)
	default:
		closeAll()
		return Fig5Point{}, fmt.Errorf("system %q not applicable to fig5", sys)
	}
	defer closeAll()

	pool0 := buffer.Global.Counters()
	up0 := upstreamCounters(svcUnderTest)
	allocs0 := heapAllocs()
	res := loadgen.RunMemcache(loadgen.MemcacheConfig{
		Transport: tr,
		Addr:      addr,
		Clients:   cfg.Clients,
		Keys:      cfg.Keys,
		Duration:  cfg.Duration,
	})
	allocs1 := heapAllocs()
	return Fig5Point{
		System:      sys,
		Cores:       cores,
		Throughput:  res.Throughput(),
		MeanLatency: res.Latency.Mean,
		P99Latency:  res.Latency.P99,
		Errors:      res.Errors,
		AllocsPerOp: allocsPerOp(allocs1-allocs0, res.Requests),
		Pool:        buffer.Global.Counters().Sub(pool0),
		Upstream:    upstreamCounters(svcUnderTest).Sub(up0),
	}, nil
}

// Fig5Table renders the figure.
func Fig5Table(points []Fig5Point) *Table {
	t := &Table{
		Title:   "Memcached proxy vs CPU cores — Figure 5",
		Columns: []string{"system", "cores", "req/s", "mean-lat", "p99-lat", "errors", "allocs/req", "pool", "upstream"},
		Notes: []string{
			"paper shape: FLICK-kernel peaks 126k req/s @8 cores; FLICK mTCP 198k @16;",
			"Moxi peaks 82k @4 cores then degrades (threads contend on shared structures)",
		},
	}
	for _, p := range points {
		t.Add(string(p.System), fmt.Sprint(p.Cores), fmtReqs(p.Throughput),
			fmtDur(p.MeanLatency), fmtDur(p.P99Latency), fmt.Sprint(p.Errors),
			fmtAllocs(p.AllocsPerOp), fmtPool(p.Pool), fmtUpstream(p.Upstream))
	}
	return t
}
