package bench

import (
	"fmt"
	"io"
	"sync"
	"time"

	"flick/internal/apps"
	"flick/internal/core"
	"flick/internal/loadgen"
	"flick/internal/netstack"
	"flick/internal/proto/hadoop"
)

// Fig6Config parameterises the Figure 6 Hadoop aggregator experiment.
type Fig6Config struct {
	Cores      []int // worker threads (paper: 1,2,4,8,16)
	WordLens   []int // word lengths (paper: 8, 12, 16)
	Mappers    int   // concurrent mappers (paper: 8)
	BytesPer   int64 // intermediate bytes per mapper per run
	Distinct   int   // distinct words (high reduction ratio)
	UseUserNet bool  // kernel results match mTCP here (§6.3), default kernel
}

// Fig6Point is one measured cell.
type Fig6Point struct {
	WordLen        int
	Cores          int
	ThroughputMbps float64
	Pairs          uint64
	Elapsed        time.Duration
}

// RunFig6 measures aggregate mapper→middlebox throughput across core
// counts and word lengths. The aggregator is compute-bound: throughput
// grows with cores until the links (here: loopback memory bandwidth)
// saturate, and longer words move more bytes per key/value pair.
func RunFig6(cfg Fig6Config) ([]Fig6Point, error) {
	if len(cfg.Cores) == 0 {
		cfg.Cores = []int{1, 2, 4, 8, 16}
	}
	if len(cfg.WordLens) == 0 {
		cfg.WordLens = []int{8, 12, 16}
	}
	if cfg.Mappers <= 0 {
		cfg.Mappers = 8
	}
	if cfg.BytesPer <= 0 {
		cfg.BytesPer = 16 << 20
	}
	if cfg.Distinct <= 0 {
		cfg.Distinct = 1000
	}
	var out []Fig6Point
	for _, wl := range cfg.WordLens {
		for _, cores := range cfg.Cores {
			pt, err := runFig6Cell(cfg, wl, cores)
			if err != nil {
				return out, fmt.Errorf("bench: fig6 wl=%d cores=%d: %w", wl, cores, err)
			}
			out = append(out, pt)
		}
	}
	return out, nil
}

func runFig6Cell(cfg Fig6Config, wordLen, cores int) (Fig6Point, error) {
	var tr netstack.Transport = netstack.KernelTCP{}
	if cfg.UseUserNet {
		tr = netstack.NewUserNet()
	}

	// Reducer sink: drains and discards the aggregated stream.
	rl, err := tr.Listen(listenAddr(tr, "reducer:1"))
	if err != nil {
		return Fig6Point{}, err
	}
	defer rl.Close()
	go func() {
		for {
			c, err := rl.Accept()
			if err != nil {
				return
			}
			go func() {
				defer c.Close()
				r := hadoop.NewReader(c)
				for {
					kv, err := r.Read()
					if err != nil {
						return
					}
					// Decoded pairs hold a reference to their pooled wire
					// chunk; dropping it unreleased would drain the pool.
					kv.Release()
				}
			}()
		}
	}()

	p := core.NewPlatform(core.Config{Workers: cores, Transport: tr})
	defer p.Close()
	agg, err := apps.HadoopAggregator(cfg.Mappers)
	if err != nil {
		return Fig6Point{}, err
	}
	svc, err := agg.Deploy(p, listenAddr(tr, "agg:1"), []string{rl.Addr().String()})
	if err != nil {
		return Fig6Point{}, err
	}
	defer svc.Close()

	ds := loadgen.NewWordDataset(wordLen, cfg.Distinct, int64(wordLen)*31)
	start := time.Now()
	var (
		wg     sync.WaitGroup
		mu     sync.Mutex
		pairs  uint64
		bytes  uint64
		runErr error
	)
	for m := 0; m < cfg.Mappers; m++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			res, err := ds.RunMapper(tr, svc.Addr(), cfg.BytesPer, seed)
			mu.Lock()
			pairs += res.Pairs
			bytes += res.Bytes
			if err != nil && err != io.EOF && runErr == nil {
				runErr = err
			}
			mu.Unlock()
		}(int64(m) + 1)
	}
	wg.Wait()
	elapsed := time.Since(start)
	if runErr != nil {
		return Fig6Point{}, runErr
	}
	return Fig6Point{
		WordLen:        wordLen,
		Cores:          cores,
		ThroughputMbps: float64(bytes) * 8 / 1e6 / elapsed.Seconds(),
		Pairs:          pairs,
		Elapsed:        elapsed,
	}, nil
}

// Fig6Table renders the figure.
func Fig6Table(points []Fig6Point) *Table {
	t := &Table{
		Title:   "Hadoop data aggregator vs CPU cores — Figure 6",
		Columns: []string{"word-len", "cores", "Mb/s", "pairs", "elapsed"},
		Notes: []string{
			"paper shape: throughput scales with cores to ≈7.5 Gb/s (link-bound) at 16 cores;",
			"longer words (fewer pairs per byte) sustain higher Mb/s than shorter ones",
		},
	}
	for _, p := range points {
		t.Add(fmt.Sprintf("WC %d char", p.WordLen), fmt.Sprint(p.Cores),
			fmt.Sprintf("%.0f", p.ThroughputMbps), fmt.Sprint(p.Pairs), p.Elapsed.Round(time.Millisecond).String())
	}
	return t
}
