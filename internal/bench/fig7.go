package bench

import (
	"sync"
	"time"

	"flick/internal/core"
	"flick/internal/value"
)

// Fig7Config parameterises the §6.4 resource-sharing micro-benchmark:
// 200 tasks, half "light" (1 KB items) and half "heavy" (16 KB items),
// each consuming a finite stream of items and computing a simple addition
// over every input byte, run under the three scheduling policies.
type Fig7Config struct {
	Tasks        int // total task count (paper: 200)
	ItemsPerTask int // finite input length per task
	LightItem    int // light item size (paper: 1 KB)
	HeavyItem    int // heavy item size (paper: 16 KB)
	Workers      int // worker threads
	Policies     []core.Policy
}

// Fig7Point reports one policy's per-class completion times.
type Fig7Point struct {
	Policy          string
	LightCompletion time.Duration // when the last light task finished
	HeavyCompletion time.Duration // when the last heavy task finished
	Total           time.Duration
}

// RunFig7 executes the micro-benchmark under each policy.
func RunFig7(cfg Fig7Config) ([]Fig7Point, error) {
	if cfg.Tasks <= 0 {
		cfg.Tasks = 200
	}
	if cfg.ItemsPerTask <= 0 {
		cfg.ItemsPerTask = 64
	}
	if cfg.LightItem <= 0 {
		cfg.LightItem = 1 << 10
	}
	if cfg.HeavyItem <= 0 {
		cfg.HeavyItem = 16 << 10
	}
	if cfg.Workers <= 0 {
		cfg.Workers = 4
	}
	if len(cfg.Policies) == 0 {
		cfg.Policies = []core.Policy{core.Cooperative, core.NonCooperative, core.RoundRobin}
	}
	var out []Fig7Point
	for _, pol := range cfg.Policies {
		out = append(out, runFig7Policy(cfg, pol))
	}
	return out, nil
}

func runFig7Policy(cfg Fig7Config, pol core.Policy) Fig7Point {
	s := core.NewScheduler(cfg.Workers, pol)

	type class struct {
		itemSize int
		finishes []time.Time
		mu       sync.Mutex
	}
	light := &class{itemSize: cfg.LightItem}
	heavy := &class{itemSize: cfg.HeavyItem}

	var wg sync.WaitGroup
	start := time.Now()
	mkTask := func(cl *class, name string) {
		// Pre-fill the finite input stream (§6.4: "Each task consumes a
		// finite number of data items").
		item := value.Bytes(make([]byte, cl.itemSize))
		work := core.NewChan(cfg.ItemsPerTask)
		for i := 0; i < cfg.ItemsPerTask; i++ {
			work.Push(item)
		}
		work.Close()
		wg.Add(1)
		task := s.NewTask(name, func(ctx *core.ExecCtx) core.RunResult {
			for {
				v, ok, closed := work.Pop()
				if closed {
					cl.mu.Lock()
					cl.finishes = append(cl.finishes, time.Now())
					cl.mu.Unlock()
					wg.Done()
					return core.RunDone
				}
				if !ok {
					return core.RunIdle
				}
				// "computing a simple addition for each input byte"
				sum := 0
				for _, b := range v.B {
					sum += int(b)
				}
				_ = sum
				if ctx.CountItem() {
					return core.RunYield
				}
			}
		})
		s.Schedule(task)
	}

	for i := 0; i < cfg.Tasks/2; i++ {
		mkTask(light, "light")
		mkTask(heavy, "heavy")
	}
	s.Start()
	wg.Wait()
	total := time.Since(start)
	s.Stop()

	lastOf := func(cl *class) time.Duration {
		cl.mu.Lock()
		defer cl.mu.Unlock()
		var last time.Time
		for _, f := range cl.finishes {
			if f.After(last) {
				last = f
			}
		}
		return last.Sub(start)
	}
	return Fig7Point{
		Policy:          pol.Name,
		LightCompletion: lastOf(light),
		HeavyCompletion: lastOf(heavy),
		Total:           total,
	}
}

// Fig7Table renders the figure.
func Fig7Table(points []Fig7Point) *Table {
	t := &Table{
		Title:   "Completion time for light/heavy tasks per scheduling policy — Figure 7",
		Columns: []string{"policy", "light-done", "heavy-done", "total"},
		Notes: []string{
			"paper shape: cooperative lets light tasks finish well before heavy ones without",
			"extending the total runtime; round-robin penalises light tasks (heavy items hold",
			"workers longer per activation); non-cooperative depends on scheduling order",
		},
	}
	for _, p := range points {
		t.Add(p.Policy, p.LightCompletion.Round(time.Millisecond).String(),
			p.HeavyCompletion.Round(time.Millisecond).String(),
			p.Total.Round(time.Millisecond).String())
	}
	return t
}
