package bench

import (
	"bytes"
	"fmt"
	"sync"
	"time"

	"flick/internal/apps"
	"flick/internal/backend"
	"flick/internal/core"
	"flick/internal/loadgen"
	"flick/internal/metrics"
	"flick/internal/netstack"
	"flick/internal/proto/memcache"
	"flick/internal/value"
)

// HotkeyConfig parameterises the hot-key cache sweep: the same skewed,
// seeded workload is driven through a cached and an uncached Memcached
// proxy, so the two arms differ only in the response cache.
type HotkeyConfig struct {
	Cores    int // proxy workers
	Clients  int // concurrent closed-loop clients
	Backends int // memcached shards behind the proxy
	Keys     int // key-space size
	// HotShare is the fraction of requests on the hot set (0: 0.5 —
	// the acceptance workload's "50%-hot" mix).
	HotShare float64
	// HotKeys is the hot-set size (0: 1).
	HotKeys int
	// ZipfS skews the cold remainder (>1 enables the zipfian tail).
	ZipfS     float64
	ValueSize int
	Duration  time.Duration
	// TTL overrides the cache TTL (0: cache.DefaultTTL).
	TTL time.Duration
	// StaleTTL enables stale-while-revalidate in the cached arm (0:
	// disabled; the conditional arm defaults it on).
	StaleTTL time.Duration
}

// HotkeyPoint is one measured arm.
type HotkeyPoint struct {
	Arm         string // "cached" or "plain"
	Throughput  float64
	MeanLatency time.Duration
	P99Latency  time.Duration
	Errors      uint64
	// Requests is the client-side completed request count.
	Requests uint64
	// BackendReqs is the backend-side request delta over the window.
	BackendReqs uint64
	// Offload is Requests/BackendReqs: how many client requests each
	// upstream round trip amortised (1.0 means every request went
	// upstream; the plain arm sits there by construction).
	Offload float64
	// HitRatio is the cache's lifetime hits/(hits+misses) (0 for plain).
	HitRatio float64
	// Cache is the cache counter set (empty for plain).
	Cache metrics.CounterSet
	// LiveTotal is the proxy's own decode→flush latency histogram over
	// the measurement window (the live pipeline the admin /latency
	// endpoint serves), captured before the probe round trips.
	LiveTotal metrics.Snapshot
	// LiveHit and LiveMiss split the cached arm's lookups: in-cache serve
	// time for hits, Begin→Fill upstream round trip for leading misses
	// (zero-valued on the plain arm).
	LiveHit  metrics.Snapshot
	LiveMiss metrics.Snapshot
	// Identical reports the arms returned byte-identical responses for
	// the probe keys (set on the cached arm after both arms ran).
	Identical bool
}

// RunHotkey measures the cached and plain arms under the identical seeded
// hot-key workload and verifies response bytes match across arms.
func RunHotkey(cfg HotkeyConfig) ([]HotkeyPoint, error) {
	if cfg.Cores <= 0 {
		cfg.Cores = 4
	}
	if cfg.Clients <= 0 {
		cfg.Clients = 16
	}
	if cfg.Backends <= 0 {
		cfg.Backends = 4
	}
	if cfg.Keys <= 0 {
		cfg.Keys = 1024
	}
	if cfg.HotShare <= 0 {
		cfg.HotShare = 0.5
	}
	if cfg.HotKeys <= 0 {
		cfg.HotKeys = 1
	}
	if cfg.ValueSize <= 0 {
		cfg.ValueSize = 64
	}
	if cfg.Duration <= 0 {
		cfg.Duration = time.Second
	}
	plain, plainProbes, err := runHotkeyArm(cfg, false)
	if err != nil {
		return nil, fmt.Errorf("bench: hotkey plain arm: %w", err)
	}
	cached, cachedProbes, err := runHotkeyArm(cfg, true)
	if err != nil {
		return []HotkeyPoint{plain}, fmt.Errorf("bench: hotkey cached arm: %w", err)
	}
	cached.Identical = len(plainProbes) == len(cachedProbes)
	for i := range plainProbes {
		if !cached.Identical || !bytes.Equal(plainProbes[i], cachedProbes[i]) {
			cached.Identical = false
			break
		}
	}
	plain.Identical = cached.Identical
	return []HotkeyPoint{plain, cached}, nil
}

// runHotkeyArm runs one arm and returns its point plus the raw probe
// responses used for the cross-arm byte-identity check.
func runHotkeyArm(cfg HotkeyConfig, useCache bool) (HotkeyPoint, [][]byte, error) {
	tr := netstack.Transport(netstack.KernelTCP{})

	var cleanup []func()
	closeAll := func() {
		for i := len(cleanup) - 1; i >= 0; i-- {
			cleanup[i]()
		}
	}
	kv := loadgen.PreloadKeys(cfg.Keys, cfg.ValueSize)
	servers := make([]*backend.MemcachedServer, cfg.Backends)
	addrs := make([]string, cfg.Backends)
	for i := range addrs {
		s, err := backend.NewMemcachedServer(tr, listenAddr(tr, fmt.Sprintf("shard:%d", i)))
		if err != nil {
			closeAll()
			return HotkeyPoint{}, nil, err
		}
		s.Preload(kv)
		servers[i] = s
		addrs[i] = s.Addr()
		cleanup = append(cleanup, s.Close)
	}

	p := core.NewPlatform(core.Config{Workers: cfg.Cores, Transport: tr})
	mp, err := apps.MemcachedProxy(cfg.Backends)
	if err != nil {
		p.Close()
		closeAll()
		return HotkeyPoint{}, nil, err
	}
	mp.Cache = apps.CacheOptions{Enable: useCache, TTL: cfg.TTL, StaleTTL: cfg.StaleTTL}
	svc, err := mp.Deploy(p, listenAddr(tr, "proxy:11211"), addrs)
	if err != nil {
		p.Close()
		closeAll()
		return HotkeyPoint{}, nil, err
	}
	svc.Pool().Prime(cfg.Clients)
	cleanup = append(cleanup, func() { svc.Close(); p.Close() })
	defer closeAll()

	backend0 := backendRequests(servers)
	res := runHotkeyClients(tr, svc.Addr(), cfg)
	backendReqs := backendRequests(servers) - backend0
	// Snapshot the live pipeline before the probe round trips so LiveTotal
	// covers exactly the measurement window's requests.
	liveTotal := svc.Latency().Total().Snapshot()

	probes, err := hotkeyProbes(tr, svc.Addr(), cfg)
	if err != nil {
		return HotkeyPoint{}, nil, err
	}
	pt := HotkeyPoint{
		Arm:         "plain",
		Throughput:  res.Throughput(),
		MeanLatency: res.Latency.Mean,
		P99Latency:  res.Latency.P99,
		Errors:      res.Errors,
		Requests:    res.Requests,
		BackendReqs: backendReqs,
		LiveTotal:   liveTotal,
	}
	if backendReqs > 0 {
		pt.Offload = float64(res.Requests) / float64(backendReqs)
	}
	if cc := svc.ResponseCache(); cc != nil {
		pt.Arm = "cached"
		pt.HitRatio = cc.HitRatio()
		pt.Cache = cc.Counters()
		pt.LiveHit = cc.HitLatency().Snapshot()
		pt.LiveMiss = cc.MissLatency().Snapshot()
	}
	return pt, probes, nil
}

// runHotkeyClients drives the closed-loop client fleet: each client owns a
// per-seed HotKeySeq, so both arms replay the identical request streams.
func runHotkeyClients(tr netstack.Transport, addr string, cfg HotkeyConfig) loadgen.Result {
	var (
		hist metrics.Histogram
		reqs metrics.Counter
		errs metrics.Counter
		rx   metrics.Counter
		wg   sync.WaitGroup
	)
	deadline := time.Now().Add(cfg.Duration)
	start := time.Now()
	for c := 0; c < cfg.Clients; c++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			seq := loadgen.NewHotKeySeq(loadgen.HotKeyConfig{
				Seed:     seed,
				Keys:     cfg.Keys,
				HotShare: cfg.HotShare,
				HotKeys:  cfg.HotKeys,
				ZipfS:    cfg.ZipfS,
			})
			raw, err := tr.Dial(addr)
			if err != nil {
				errs.Inc()
				return
			}
			mc := memcache.NewConn(raw)
			defer mc.Close()
			for time.Now().Before(deadline) {
				t0 := time.Now()
				resp, err := mc.RoundTrip(memcache.Request(memcache.OpGet, seq.Next(), nil))
				if err != nil {
					errs.Inc()
					return
				}
				if memcache.Status(resp) != memcache.StatusOK {
					errs.Inc() // preloaded key space: every GET must hit
				} else {
					reqs.Inc()
					hist.Record(time.Since(t0))
					rx.Add(uint64(resp.Field("value").ByteLen()))
				}
				resp.Release()
			}
		}(int64(c) + 1)
	}
	wg.Wait()
	return loadgen.Result{
		Requests: reqs.Value(),
		Errors:   errs.Value(),
		Elapsed:  time.Since(start),
		Latency:  hist.Snapshot(),
		Bytes:    rx.Value(),
	}
}

// hotkeyProbes round-trips a fixed probe set (the hot key plus two cold
// keys, fixed opaque) and returns the raw response bytes, the material of
// the cross-arm byte-identity acceptance check.
func hotkeyProbes(tr netstack.Transport, addr string, cfg HotkeyConfig) ([][]byte, error) {
	raw, err := tr.Dial(addr)
	if err != nil {
		return nil, err
	}
	mc := memcache.NewConn(raw)
	defer mc.Close()
	idxs := []int{0, cfg.HotKeys % cfg.Keys, (cfg.Keys - 1)}
	var out [][]byte
	for _, idx := range idxs {
		req := memcache.Request(memcache.OpGet, []byte(loadgen.Key(idx)), nil)
		req.SetField("opaque", value.Int(0x5eed))
		resp, err := mc.RoundTrip(req)
		if err != nil {
			return nil, err
		}
		out = append(out, append([]byte(nil), resp.Field("_raw").AsBytes()...))
		resp.Release()
	}
	return out, nil
}

// ConditionalPoint is the measured conditional (stale-while-revalidate)
// arm: a cached HTTP load balancer in front of a real origin whose hot
// resource carries an ETag, with the cache TTL tuned far below the run
// length so every entry expires many times mid-run.
type ConditionalPoint struct {
	Throughput  float64
	MeanLatency time.Duration
	P99Latency  time.Duration
	Errors      uint64
	Requests    uint64
	// HitRatio is hits/(hits+misses); stale serves count as hits, so SWR
	// holds this up across expiries.
	HitRatio float64
	// Origin304s is the origin-side count of conditional refreshes it
	// answered with 304 Not Modified — the wire proof revalidation ran.
	Origin304s uint64
	// Cache is the cache counter set (revalidated, stale_served, ...).
	Cache metrics.CounterSet
}

// RunHotkeyConditional measures the freshness pipeline end to end: clients
// hammer one ETagged origin resource through a cached HTTP load balancer
// whose TTL expires the entry every few hundred requests. Inside the
// stale window the cache keeps serving while a background conditional GET
// revalidates against the origin; each origin 304 extends the entry
// without a body transfer.
func RunHotkeyConditional(cfg HotkeyConfig) (ConditionalPoint, error) {
	if cfg.Cores <= 0 {
		cfg.Cores = 4
	}
	if cfg.Clients <= 0 {
		cfg.Clients = 8
	}
	if cfg.ValueSize <= 0 {
		cfg.ValueSize = 512
	}
	if cfg.Duration <= 0 {
		cfg.Duration = time.Second
	}
	if cfg.TTL <= 0 {
		cfg.TTL = 100 * time.Millisecond
	}
	if cfg.StaleTTL <= 0 {
		cfg.StaleTTL = time.Minute
	}
	tr := netstack.Transport(netstack.KernelTCP{})
	origin, err := NewRealOrigin(tr, listenAddr(tr, "origin:80"), cfg.ValueSize)
	if err != nil {
		return ConditionalPoint{}, fmt.Errorf("bench: conditional origin: %w", err)
	}
	defer origin.Close()

	p := core.NewPlatform(core.Config{Workers: cfg.Cores, Transport: tr})
	defer p.Close()
	lb, err := apps.HTTPLoadBalancer(1)
	if err != nil {
		return ConditionalPoint{}, err
	}
	lb.Cache = apps.CacheOptions{Enable: true, TTL: cfg.TTL, StaleTTL: cfg.StaleTTL}
	svc, err := lb.Deploy(p, listenAddr(tr, "lb:8080"), []string{origin.Addr()})
	if err != nil {
		return ConditionalPoint{}, err
	}
	defer svc.Close()

	res := loadgen.RunHTTP(loadgen.HTTPConfig{
		Transport:  tr,
		Addr:       svc.Addr(),
		Clients:    cfg.Clients,
		Persistent: true,
		Duration:   cfg.Duration,
		URI:        OriginCachedURI,
	})
	pt := ConditionalPoint{
		Throughput:  res.Throughput(),
		MeanLatency: res.Latency.Mean,
		P99Latency:  res.Latency.P99,
		Errors:      res.Errors,
		Requests:    res.Requests,
		Origin304s:  origin.NotModified(),
	}
	if cc := svc.ResponseCache(); cc != nil {
		pt.HitRatio = cc.HitRatio()
		pt.Cache = cc.Counters()
	}
	return pt, nil
}

// ConditionalTable renders the conditional arm.
func ConditionalTable(p ConditionalPoint) *Table {
	reval, _ := p.Cache.Get("revalidated")
	stale, _ := p.Cache.Get("stale_served")
	t := &Table{
		Title:   "Conditional refresh — cached httplb revalidating an ETagged origin",
		Columns: []string{"req/s", "mean-lat", "p99-lat", "errors", "hit-ratio", "origin-304s", "revalidated", "stale-served"},
		Notes: []string{
			"origin-304s = conditional GETs the origin answered 304 (no body re-transfer)",
			"stale-served = hits answered from an expired entry while its background revalidation ran",
		},
	}
	t.Add(fmtReqs(p.Throughput), fmtDur(p.MeanLatency), fmtDur(p.P99Latency),
		fmt.Sprint(p.Errors), fmt.Sprintf("%.3f", p.HitRatio),
		fmt.Sprint(p.Origin304s), fmt.Sprint(reval), fmt.Sprint(stale))
	return t
}

// backendRequests sums the shards' served-request counters.
func backendRequests(servers []*backend.MemcachedServer) uint64 {
	var n uint64
	for _, s := range servers {
		n += s.Requests()
	}
	return n
}

// HotkeyTable renders the sweep.
func HotkeyTable(points []HotkeyPoint) *Table {
	t := &Table{
		Title:   "Hot-key response cache — cached vs plain proxy",
		Columns: []string{"arm", "req/s", "mean-lat", "p99-lat", "live-p99", "p99(hit)", "p99(miss)", "errors", "backend-reqs", "offload", "hit-ratio", "cache", "identical"},
		Notes: []string{
			"offload = client requests per upstream round trip (plain arm pins the 1.0 baseline)",
			"identical = probe responses byte-identical across arms (opaque patched on hits)",
			"live-p99 = the proxy's own decode→flush histogram (admin /latency); p99(hit)/p99(miss) split the cache lookups",
		},
	}
	for _, p := range points {
		cacheCol, hitCol, hitLat, missLat := "-", "-", "-", "-"
		if p.Arm == "cached" {
			cacheCol = fmtCache(p.Cache)
			hitCol = fmt.Sprintf("%.3f", p.HitRatio)
			hitLat = fmtDur(p.LiveHit.P99)
			missLat = fmtDur(p.LiveMiss.P99)
		}
		t.Add(p.Arm, fmtReqs(p.Throughput), fmtDur(p.MeanLatency), fmtDur(p.P99Latency),
			fmtDur(p.LiveTotal.P99), hitLat, missLat,
			fmt.Sprint(p.Errors), fmt.Sprint(p.BackendReqs), fmt.Sprintf("%.1fx", p.Offload),
			hitCol, cacheCol, fmt.Sprint(p.Identical))
	}
	return t
}

// fmtCache renders the cache counters that characterise the hit path.
func fmtCache(cs metrics.CounterSet) string {
	hits, _ := cs.Get("hits")
	miss, _ := cs.Get("misses")
	coal, _ := cs.Get("coalesced")
	evic, _ := cs.Get("evictions")
	return fmt.Sprintf("hits=%d miss=%d coal=%d evict=%d", hits, miss, coal, evic)
}
