package bench

import (
	"strings"
	"testing"
	"time"
)

// TestHotkeySmoke gates the cache's acceptance numbers under the 50%-hot
// workload: the cached arm must offload the backends by at least 5x, hit
// at least 0.8 of requests, serve byte-identical responses to the plain
// arm, and neither arm may surface a client error.
func TestHotkeySmoke(t *testing.T) {
	pts, err := RunHotkey(HotkeyConfig{
		Cores:    4,
		Clients:  8,
		Backends: 2,
		Keys:     256,
		HotShare: 0.5,
		ZipfS:    1.3,
		Duration: 400 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 2 || pts[0].Arm != "plain" || pts[1].Arm != "cached" {
		t.Fatalf("arms = %+v", pts)
	}
	plain, cached := pts[0], pts[1]
	for _, p := range pts {
		if p.Errors != 0 {
			t.Fatalf("%s arm: %d client errors", p.Arm, p.Errors)
		}
		if p.Throughput <= 0 {
			t.Fatalf("%s arm: zero throughput", p.Arm)
		}
	}
	if plain.Offload > 1.5 {
		t.Fatalf("plain arm offload %.2fx — uncached proxy must go upstream per request", plain.Offload)
	}
	if cached.Offload < 5 {
		t.Fatalf("cached arm offload %.2fx, want >= 5x (backend reqs %d / client reqs %d)",
			cached.Offload, cached.BackendReqs, cached.Requests)
	}
	if cached.HitRatio < 0.8 {
		t.Fatalf("hit ratio %.3f, want >= 0.8", cached.HitRatio)
	}
	if !cached.Identical {
		t.Fatal("cached and plain arms returned different response bytes")
	}
	// Live pipeline acceptance: the proxy's own histogram must account for
	// exactly the requests the clients completed (no errors, so every
	// round trip flushed one response), and the cache split must show the
	// whole point of the cache — hits resolving far faster than the
	// upstream round trip a leading miss pays.
	for _, p := range pts {
		if p.LiveTotal.Count != p.Requests {
			t.Fatalf("%s arm: live total count %d != client requests %d",
				p.Arm, p.LiveTotal.Count, p.Requests)
		}
		if p.LiveTotal.P50 > p.LiveTotal.P99 || p.LiveTotal.P99 > p.LiveTotal.Max {
			t.Fatalf("%s arm: live quantiles not monotone: %v", p.Arm, p.LiveTotal)
		}
	}
	if cached.LiveHit.Count == 0 || cached.LiveMiss.Count == 0 {
		t.Fatalf("cached arm: hit/miss histograms empty: hit %v miss %v",
			cached.LiveHit, cached.LiveMiss)
	}
	if cached.LiveHit.P99 >= cached.LiveMiss.P99 {
		t.Fatalf("live p99(hit) %v >= p99(miss) %v — hits must beat the upstream round trip",
			cached.LiveHit.P99, cached.LiveMiss.P99)
	}
	if s := HotkeyTable(pts).String(); !strings.Contains(s, "p99(hit)") {
		t.Fatal("table rendering")
	}
}

// TestHotkeyConditionalSmoke gates the freshness acceptance numbers: with
// the TTL far below the run length the hot entry expires dozens of times,
// yet stale-while-revalidate must hold the hit ratio at >= 0.8 with zero
// client errors, and the origin must see real conditional refreshes — at
// least one If-None-Match answered 304 on the wire, mirrored by the
// cache's revalidated and stale_served counters.
func TestHotkeyConditionalSmoke(t *testing.T) {
	pt, err := RunHotkeyConditional(HotkeyConfig{
		Cores:    4,
		Clients:  8,
		TTL:      60 * time.Millisecond,
		StaleTTL: time.Minute,
		Duration: 600 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if pt.Errors != 0 {
		t.Fatalf("conditional arm: %d client errors", pt.Errors)
	}
	if pt.Requests == 0 || pt.Throughput <= 0 {
		t.Fatalf("conditional arm: no completed requests (%+v)", pt)
	}
	if pt.HitRatio < 0.8 {
		t.Fatalf("hit ratio %.3f under SWR, want >= 0.8", pt.HitRatio)
	}
	if pt.Origin304s == 0 {
		t.Fatal("origin answered no 304s — revalidation never reached the wire")
	}
	reval, _ := pt.Cache.Get("revalidated")
	stale, _ := pt.Cache.Get("stale_served")
	if reval == 0 {
		t.Fatal("cache recorded no upstream 304 extensions")
	}
	if stale == 0 {
		t.Fatal("cache recorded no stale serves — SWR window never exercised")
	}
	if s := ConditionalTable(pt).String(); !strings.Contains(s, "origin-304s") {
		t.Fatal("table rendering")
	}
}
