package bench

import (
	"bytes"
	"fmt"
	"net"
	"net/http"
	"strconv"
	"sync/atomic"
	"time"

	"flick/internal/buffer"
	"flick/internal/netstack"
	phttp "flick/internal/proto/http"
)

// RealOrigin is a stock net/http HTTP/1.1 origin — the "real application
// server" the FLICK middlebox must be able to front. Unlike the synthetic
// backend.HTTPServer it speaks the standard library's full HTTP/1.1:
// chunked transfer-encoding when the handler streams, 304 Not Modified
// with the entity's headers on a validator hit, and keep-alive connection
// management the middlebox does not control. The Date header is
// suppressed on every route so two fetches of the same URI are
// byte-identical — which is what lets the passthrough check below diff a
// through-proxy response against a direct per-client dial.
type RealOrigin struct {
	listener net.Listener
	srv      *http.Server
	payload  []byte
	notMod   atomic.Uint64
}

// Origin routes: a Content-Length-framed payload, a chunked stream of the
// same payload, and a conditional resource answering 304 to its ETag.
const (
	OriginPayloadURI = "/payload"
	OriginChunkedURI = "/chunked"
	OriginCachedURI  = "/cached"
	// OriginETag is the entity tag the cached route serves; sending it
	// back as If-None-Match elicits the bodiless 304.
	OriginETag = `"flick-origin-v1"`
)

// NewRealOrigin starts a net/http origin on addr over the given transport.
func NewRealOrigin(tr netstack.Transport, addr string, payloadSize int) (*RealOrigin, error) {
	l, err := tr.Listen(addr)
	if err != nil {
		return nil, err
	}
	payload := make([]byte, payloadSize)
	for i := range payload {
		payload[i] = 'a' + byte(i%26)
	}
	o := &RealOrigin{listener: l, payload: payload}
	mux := http.NewServeMux()
	mux.HandleFunc(OriginPayloadURI, o.servePayload)
	mux.HandleFunc(OriginChunkedURI, o.serveChunked)
	mux.HandleFunc(OriginCachedURI, o.serveCached)
	o.srv = &http.Server{Handler: mux}
	go o.srv.Serve(l)
	return o, nil
}

// Addr returns the bound address.
func (o *RealOrigin) Addr() string { return o.listener.Addr().String() }

// Close stops the origin.
func (o *RealOrigin) Close() { o.srv.Close() }

// NotModified reports how many conditional requests the origin answered
// with 304 — the wire-level witness that a middlebox in front of it
// revalidated instead of re-fetching.
func (o *RealOrigin) NotModified() uint64 { return o.notMod.Load() }

func (o *RealOrigin) servePayload(w http.ResponseWriter, r *http.Request) {
	h := w.Header()
	h["Date"] = nil // deterministic wire image
	h.Set("Content-Length", strconv.Itoa(len(o.payload)))
	w.Write(o.payload)
}

// serveChunked streams the payload in two flushed writes: no
// Content-Length is ever known, so net/http frames the response with
// chunked transfer-encoding — the framing the shared upstream layer
// historically could not parse.
func (o *RealOrigin) serveChunked(w http.ResponseWriter, r *http.Request) {
	w.Header()["Date"] = nil
	half := len(o.payload) / 2
	w.Write(o.payload[:half])
	if f, ok := w.(http.Flusher); ok {
		f.Flush()
	}
	w.Write(o.payload[half:])
}

// serveCached answers a validator hit with 304 Not Modified — bodiless by
// rule — and a cold fetch with the entity.
func (o *RealOrigin) serveCached(w http.ResponseWriter, r *http.Request) {
	h := w.Header()
	h["Date"] = nil
	h.Set("ETag", OriginETag)
	if r.Header.Get("If-None-Match") == OriginETag {
		o.notMod.Add(1)
		w.WriteHeader(http.StatusNotModified)
		return
	}
	h.Set("Content-Length", strconv.Itoa(len(o.payload)))
	w.Write(o.payload)
}

// fetchRaw dials addr, issues one GET for uri (with a conditional header
// when etag is non-empty) and returns the complete response wire bytes,
// framed with the response framer itself — header block plus
// Content-Length body, chunked section, or header-only for a 304.
func fetchRaw(tr netstack.Transport, addr, uri, etag string) ([]byte, error) {
	c, err := tr.Dial(addr)
	if err != nil {
		return nil, err
	}
	defer c.Close()
	req := "GET " + uri + " HTTP/1.1\r\nHost: origin\r\n"
	if etag != "" {
		req += "If-None-Match: " + etag + "\r\n"
	}
	req += "\r\n"
	if _, err := c.Write([]byte(req)); err != nil {
		return nil, err
	}
	c.SetReadDeadline(time.Now().Add(5 * time.Second))
	q := buffer.NewQueue(nil)
	rbuf := make([]byte, 16<<10)
	for {
		if n, err := phttp.FrameResponseLen(q, 0, 0); err != nil {
			return nil, err
		} else if n > 0 && q.Len() >= n {
			out := make([]byte, n)
			q.PeekAt(out, 0)
			return out, nil
		}
		n, err := c.Read(rbuf)
		if n > 0 {
			q.Append(rbuf[:n])
		}
		if err != nil {
			return nil, fmt.Errorf("read %s%s: %w", addr, uri, err)
		}
	}
}

// VerifyPassthrough fetches every origin route once through the middlebox
// and once directly (a per-client dial to the origin) and requires the
// wire bytes to be identical — the zero-copy raw-passthrough contract:
// fronting the origin must not change a byte of what it serves, chunked
// framing and bodiless 304s included.
func VerifyPassthrough(tr netstack.Transport, viaAddr, originAddr string) error {
	for _, probe := range []struct{ uri, etag string }{
		{OriginPayloadURI, ""},
		{OriginChunkedURI, ""},
		{OriginCachedURI, ""},
		{OriginCachedURI, OriginETag}, // validator hit: 304, bodiless
	} {
		via, err := fetchRaw(tr, viaAddr, probe.uri, probe.etag)
		if err != nil {
			return fmt.Errorf("bench: fetch %s via middlebox: %w", probe.uri, err)
		}
		direct, err := fetchRaw(tr, originAddr, probe.uri, probe.etag)
		if err != nil {
			return fmt.Errorf("bench: fetch %s direct: %w", probe.uri, err)
		}
		if !bytes.Equal(via, direct) {
			return fmt.Errorf("bench: %s not byte-identical through the middlebox:\n via    %q\n direct %q",
				probe.uri, via, direct)
		}
	}
	return nil
}
