package bench

import (
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"flick/internal/apps"
	"flick/internal/backend"
	"flick/internal/core"
	"flick/internal/loadgen"
	"flick/internal/metrics"
	"flick/internal/proto/memcache"
)

// RebalanceConfig parameterises the live scale-out experiment: C
// reconnecting clients GET uniformly over the key space against the
// Memcached proxy while the backend set grows B→B+1 mid-run through
// Service.UpdateBackends. Measured per topology (consistent-hash ring vs
// the hash-mod-B ablation): the fraction of the key space the update
// remaps, request errors across the update (the headline: zero), and how
// quickly the new backend picks up traffic.
type RebalanceConfig struct {
	System        System
	Clients       int           // concurrent reconnecting clients (C)
	Backends      int           // initial backend count (B); scales to B+1
	Keys          int           // key-space size
	ReqsPerConn   int           // GETs per client connection (reconnect after)
	Duration      time.Duration // total load window; the update fires at the midpoint
	Workers       int
	Mod           bool          // hash-mod-B ablation instead of the ring
	ProbeInterval time.Duration // upstream health probes (0: off)
	// HotKeyFrac skews the workload: roughly this fraction of GETs hit one
	// hot key (0: uniform). Skew is what separates the bounded-load ring
	// from the plain ring — a plain ring concentrates the hot key's whole
	// stream on its hash owner.
	HotKeyFrac float64
	// BoundedLoadC, when > 0, routes through the bounded-load ring with
	// load factor c instead of the plain ring (see
	// apps.TopologyOptions.BoundedLoadC).
	BoundedLoadC float64
}

// RebalancePoint is one measured topology.
type RebalancePoint struct {
	System   System
	Ring     bool
	Backends int // initial B (scaled out to B+1)
	// MovedFrac is the fraction of the key space the B→B+1 update remaps
	// (computed over the benchmark's exact key set with the service's own
	// routers — backend.KeyHash matches the language's hash builtin).
	MovedFrac float64
	// Requests/Errors count completed GETs and failures across the whole
	// window, including the live update.
	Requests uint64
	Errors   uint64
	// NewBackendReqs is the request count the added backend served after
	// the update — nonzero means traffic really moved.
	NewBackendReqs uint64
	Throughput     float64
	// Bounded records whether the bounded-load ring routed this run.
	Bounded bool
	// MaxLoad is the hottest initial backend's served-request count as a
	// multiple of the initial backends' mean — the skew the bounded-load
	// ring exists to cap (≈1 is perfectly balanced; a hot-key workload
	// drives a plain ring's value toward B·hotfrac).
	MaxLoad float64
	// Upstream is the shared layer's counter snapshot (probes, drained,
	// redials... — empty when the layer is disabled).
	Upstream metrics.CounterSet
}

// RunRebalance measures one live B→B+1 scale-out.
func RunRebalance(cfg RebalanceConfig) (RebalancePoint, error) {
	if cfg.Clients <= 0 {
		cfg.Clients = 16
	}
	if cfg.Backends <= 0 {
		cfg.Backends = 4
	}
	if cfg.Keys <= 0 {
		cfg.Keys = 2000
	}
	if cfg.ReqsPerConn <= 0 {
		cfg.ReqsPerConn = 8
	}
	if cfg.Duration <= 0 {
		cfg.Duration = 2 * time.Second
	}
	if cfg.Workers <= 0 {
		cfg.Workers = 4
	}
	if cfg.System == "" {
		cfg.System = SysFlick
	}
	tr := transportFor(cfg.System)
	total := cfg.Backends + 1

	var cleanup []func()
	closeAll := func() {
		for i := len(cleanup) - 1; i >= 0; i-- {
			cleanup[i]()
		}
	}
	kv := loadgen.PreloadKeys(cfg.Keys, 32)
	keys := make([][]byte, cfg.Keys)
	for i := range keys {
		keys[i] = []byte(loadgen.Key(i))
	}
	srvs := make([]*backend.MemcachedServer, total)
	addrs := make([]string, total)
	for i := range addrs {
		s, err := backend.NewMemcachedServer(tr, listenAddr(tr, fmt.Sprintf("rebal-shard:%d", i)))
		if err != nil {
			closeAll()
			return RebalancePoint{}, err
		}
		s.Preload(kv)
		srvs[i] = s
		addrs[i] = s.Addr()
		cleanup = append(cleanup, s.Close)
	}

	p := core.NewPlatform(core.Config{Workers: cfg.Workers, Transport: tr})
	mp, err := apps.MemcachedProxy(total) // capacity B+1, deployed with B
	if err != nil {
		p.Close()
		closeAll()
		return RebalancePoint{}, err
	}
	mp.Topology.Live = true
	mp.Topology.Mod = cfg.Mod
	mp.Topology.BoundedLoadC = cfg.BoundedLoadC
	mp.Upstream.ProbeInterval = cfg.ProbeInterval
	svc, err := mp.Deploy(p, listenAddr(tr, "rebal-proxy:11211"), addrs[:cfg.Backends])
	if err != nil {
		p.Close()
		closeAll()
		return RebalancePoint{}, err
	}
	svc.Pool().Prime(cfg.Clients)
	cleanup = append(cleanup, func() { svc.Close(); p.Close() })
	proxyAddr := svc.Addr()

	// hotEvery turns the skew fraction into a deterministic cadence: every
	// hotEvery-th GET hits keys[0].
	hotEvery := 0
	if cfg.HotKeyFrac > 0 {
		hotEvery = int(1 / cfg.HotKeyFrac)
		if hotEvery < 1 {
			hotEvery = 1
		}
	}
	// Per-backend served-request baselines for the max-load column.
	base := make([]uint64, total)
	for i, s := range srvs {
		base[i] = s.Requests()
	}

	var (
		reqs metrics.Counter
		errs metrics.Counter
		stop atomic.Bool
		wg   sync.WaitGroup
	)
	for c := 0; c < cfg.Clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			i := c * 911 // stagger key cursors across clients
			for !stop.Load() {
				done, err := rebalanceConn(tr.Dial, proxyAddr, keys, &i, cfg.ReqsPerConn, hotEvery, &stop)
				reqs.Add(uint64(done)) // count completed GETs, not batches
				if err != nil {
					errs.Inc()
				}
			}
		}(c)
	}

	// Load runs against B; at the midpoint the topology grows to B+1 live.
	time.Sleep(cfg.Duration / 2)
	newBase := srvs[total-1].Requests()
	if err := mp.UpdateBackends(svc, addrs); err != nil {
		stop.Store(true)
		wg.Wait()
		closeAll()
		return RebalancePoint{}, err
	}
	time.Sleep(cfg.Duration / 2)
	stop.Store(true)
	wg.Wait()

	pt := RebalancePoint{
		System:         cfg.System,
		Ring:           !cfg.Mod,
		Backends:       cfg.Backends,
		Requests:       reqs.Value(),
		Errors:         errs.Value(),
		NewBackendReqs: srvs[total-1].Requests() - newBase,
		Throughput:     float64(reqs.Value()) / cfg.Duration.Seconds(),
		Bounded:        cfg.BoundedLoadC > 0 && !cfg.Mod,
		Upstream:       upstreamCounters(svc),
	}
	// Max-load over the initial backends (the added backend only serves
	// half the window; excluding it keeps plain and bounded runs
	// comparable).
	var maxServed, sumServed uint64
	for i := 0; i < cfg.Backends; i++ {
		served := srvs[i].Requests() - base[i]
		sumServed += served
		if served > maxServed {
			maxServed = served
		}
	}
	if sumServed > 0 {
		pt.MaxLoad = float64(maxServed) * float64(cfg.Backends) / float64(sumServed)
	}
	// The analytic remap cost over the exact key set, using the same
	// router construction the service itself deploys.
	if cfg.Mod {
		pt.MovedFrac = backend.MovedFraction(
			backend.NewModTable(addrs[:cfg.Backends]), backend.NewModTable(addrs), keys)
	} else {
		pt.MovedFrac = backend.MovedFraction(
			backend.NewRing(addrs[:cfg.Backends], 0), backend.NewRing(addrs, 0), keys)
	}
	closeAll()
	return pt, nil
}

// rebalanceConn is one client connection's life: dial, up to n GETs over
// the shared key space, disconnect (so later connections route through
// whatever topology is current). It returns how many GETs completed —
// the caller counts those, so a connection stopped mid-batch or failed
// after a partial batch is accounted exactly.
func rebalanceConn(dial func(string) (net.Conn, error), addr string,
	keys [][]byte, cursor *int, n, hotEvery int, stop *atomic.Bool) (int, error) {
	raw, err := dial(addr)
	if err != nil {
		return 0, err
	}
	defer raw.Close()
	c := memcache.NewConn(raw)
	raw.SetReadDeadline(time.Now().Add(10 * time.Second))
	for i := 0; i < n; i++ {
		key := keys[*cursor%len(keys)]
		if hotEvery > 0 && *cursor%hotEvery == 0 {
			key = keys[0] // the hot key
		}
		*cursor++
		resp, err := c.RoundTrip(memcache.Request(memcache.OpGet, key, nil))
		if err != nil {
			return i, err
		}
		ok := memcache.Status(resp) == memcache.StatusOK
		resp.Release() // responses retain pooled wire bytes
		if !ok {
			return i, fmt.Errorf("bench: GET %s: miss", key)
		}
		if stop.Load() {
			return i + 1, nil
		}
	}
	return n, nil
}

// RunRebalancePair measures the ring and the mod-B ablation back to back.
func RunRebalancePair(cfg RebalanceConfig) ([]RebalancePoint, error) {
	var out []RebalancePoint
	for _, mod := range []bool{false, true} {
		c := cfg
		c.Mod = mod
		pt, err := RunRebalance(c)
		if err != nil {
			return out, fmt.Errorf("bench: rebalance (mod=%v): %w", mod, err)
		}
		out = append(out, pt)
	}
	return out, nil
}

// RunRebalanceSkewPair measures the plain ring against the bounded-load
// ring under a hot-key workload: same scale-out, same skew, the only
// difference being whether the hash owner's in-flight excess spills to
// ring successors. The acceptance gate is that the bounded run's max-load
// lands strictly below the plain run's.
func RunRebalanceSkewPair(cfg RebalanceConfig) ([]RebalancePoint, error) {
	if cfg.HotKeyFrac <= 0 {
		cfg.HotKeyFrac = 0.5
	}
	cfg.Mod = false
	var out []RebalancePoint
	for _, c := range []float64{0, backend.DefaultBoundedLoadC} {
		run := cfg
		run.BoundedLoadC = c
		pt, err := RunRebalance(run)
		if err != nil {
			return out, fmt.Errorf("bench: rebalance skew (c=%v): %w", c, err)
		}
		out = append(out, pt)
	}
	return out, nil
}

// RebalanceTable renders the experiment.
func RebalanceTable(points []RebalancePoint) *Table {
	t := &Table{
		Title: "Live rebalance — consistent-hash ring vs mod-B on a B→B+1 scale-out",
		Columns: []string{"system", "topology", "backends", "keys-moved", "max-load", "req/s",
			"requests", "errors", "new-be-reqs", "upstream"},
		Notes: []string{
			"keys-moved: fraction of the key space the topology update remaps (analytic, exact key set)",
			"max-load: hottest initial backend's served requests over the initial backends' mean (1.00 = balanced)",
			"errors must be 0: running graphs finish on their original sockets while new connections re-route",
			"new-be-reqs: requests the added backend served after the live update",
		},
	}
	for _, p := range points {
		topo := "ring"
		switch {
		case !p.Ring:
			topo = "mod-B"
		case p.Bounded:
			topo = "ring+bound"
		}
		t.Add(string(p.System), topo, fmt.Sprintf("%d→%d", p.Backends, p.Backends+1),
			fmt.Sprintf("%.1f%%", 100*p.MovedFrac), fmt.Sprintf("%.2f", p.MaxLoad),
			fmtReqs(p.Throughput),
			fmt.Sprint(p.Requests), fmt.Sprint(p.Errors), fmt.Sprint(p.NewBackendReqs),
			fmtUpstream(p.Upstream))
	}
	return t
}
