package bench

import (
	"testing"
	"time"
)

// TestRebalanceSmoke runs the live scale-out experiment with small
// parameters and gates the tentpole's acceptance numbers: the ring moves
// ≤25% of the key space on a 4→5 scale-out where mod-B moves most of it,
// zero request errors occur during the live update, and the added backend
// takes traffic.
func TestRebalanceSmoke(t *testing.T) {
	pts, err := RunRebalancePair(RebalanceConfig{
		System:      SysFlick,
		Clients:     8,
		Backends:    4,
		Keys:        500,
		ReqsPerConn: 4,
		Duration:    600 * time.Millisecond,
		Workers:     4,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 2 {
		t.Fatalf("got %d points", len(pts))
	}
	ring, mod := pts[0], pts[1]
	if !ring.Ring || mod.Ring {
		t.Fatal("pair order: want ring first, mod second")
	}
	if ring.MovedFrac > 0.25 {
		t.Fatalf("ring moved %.1f%% of keys on 4→5, want ≤ 25%%", 100*ring.MovedFrac)
	}
	if mod.MovedFrac < 0.6 {
		t.Fatalf("mod-B moved only %.1f%% of keys on 4→5, expected ~80%%", 100*mod.MovedFrac)
	}
	for _, p := range pts {
		if p.Errors != 0 {
			t.Fatalf("topology=%v: %d request errors during live scale-out, want 0", p.Ring, p.Errors)
		}
		if p.Requests == 0 {
			t.Fatalf("topology=%v: no requests completed", p.Ring)
		}
		if p.NewBackendReqs == 0 {
			t.Fatalf("topology=%v: added backend served no traffic after the update", p.Ring)
		}
	}
	t.Log(RebalanceTable(pts).String())
}

// TestRebalanceBoundedLoadSmoke runs the hot-key skew pair and gates the
// bounded-load acceptance criterion: under a workload where half the GETs
// hit one key, the bounded-load ring's max-load must land strictly below
// the plain ring's (which concentrates the hot stream on one backend).
func TestRebalanceBoundedLoadSmoke(t *testing.T) {
	pts, err := RunRebalanceSkewPair(RebalanceConfig{
		System:      SysFlick,
		Clients:     8,
		Backends:    4,
		Keys:        500,
		ReqsPerConn: 4,
		Duration:    800 * time.Millisecond,
		Workers:     4,
		HotKeyFrac:  0.5,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 2 {
		t.Fatalf("got %d points", len(pts))
	}
	plain, bounded := pts[0], pts[1]
	if plain.Bounded || !bounded.Bounded {
		t.Fatal("pair order: want plain ring first, bounded second")
	}
	for _, p := range pts {
		if p.Errors != 0 {
			t.Fatalf("bounded=%v: %d request errors during live scale-out, want 0", p.Bounded, p.Errors)
		}
		if p.Requests == 0 {
			t.Fatalf("bounded=%v: no requests completed", p.Bounded)
		}
	}
	// Sanity: the skew must actually skew — a plain ring under a 50% hot
	// key should run its hottest backend well above the mean.
	if plain.MaxLoad < 1.3 {
		t.Fatalf("plain ring max-load %.2f under 50%% hot-key skew, expected ≥ 1.3", plain.MaxLoad)
	}
	if bounded.MaxLoad >= plain.MaxLoad {
		t.Fatalf("bounded-load max-load %.2f not below plain ring's %.2f", bounded.MaxLoad, plain.MaxLoad)
	}
	t.Log(RebalanceTable(pts).String())
}
