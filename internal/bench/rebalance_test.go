package bench

import (
	"testing"
	"time"
)

// TestRebalanceSmoke runs the live scale-out experiment with small
// parameters and gates the tentpole's acceptance numbers: the ring moves
// ≤25% of the key space on a 4→5 scale-out where mod-B moves most of it,
// zero request errors occur during the live update, and the added backend
// takes traffic.
func TestRebalanceSmoke(t *testing.T) {
	pts, err := RunRebalancePair(RebalanceConfig{
		System:      SysFlick,
		Clients:     8,
		Backends:    4,
		Keys:        500,
		ReqsPerConn: 4,
		Duration:    600 * time.Millisecond,
		Workers:     4,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 2 {
		t.Fatalf("got %d points", len(pts))
	}
	ring, mod := pts[0], pts[1]
	if !ring.Ring || mod.Ring {
		t.Fatal("pair order: want ring first, mod second")
	}
	if ring.MovedFrac > 0.25 {
		t.Fatalf("ring moved %.1f%% of keys on 4→5, want ≤ 25%%", 100*ring.MovedFrac)
	}
	if mod.MovedFrac < 0.6 {
		t.Fatalf("mod-B moved only %.1f%% of keys on 4→5, expected ~80%%", 100*mod.MovedFrac)
	}
	for _, p := range pts {
		if p.Errors != 0 {
			t.Fatalf("topology=%v: %d request errors during live scale-out, want 0", p.Ring, p.Errors)
		}
		if p.Requests == 0 {
			t.Fatalf("topology=%v: no requests completed", p.Ring)
		}
		if p.NewBackendReqs == 0 {
			t.Fatalf("topology=%v: added backend served no traffic after the update", p.Ring)
		}
	}
	t.Log(RebalanceTable(pts).String())
}
