package bench

import (
	"fmt"
	"sync/atomic"
	"time"

	"flick/internal/core"
	"flick/internal/value"
)

// Scheduler-scaling microbenchmark: a fan-out/fan-in task graph (sources →
// stage tasks → one sink) driven through the real scheduler and channel
// wakeup path. It measures whether scheduled-ops throughput grows with the
// worker count — the paper's core scaling claim (§6), isolated from
// protocol parsing and the network stack.

// SchedScaleConfig parameterises one scaling cell.
type SchedScaleConfig struct {
	// Workers is the scheduler worker count.
	Workers int
	// Sources is the number of producer tasks.
	Sources int
	// Stages is the number of fan-out stage tasks (the parallel width).
	Stages int
	// ItemsPerSource is how many items each source emits.
	ItemsPerSource int
	// WorkPerItem is the size of the synthetic per-item CPU spin in the
	// stage tasks (0 selects a default that makes one item ≈1µs).
	WorkPerItem int
	// Policy is the scheduling discipline (zero value: Cooperative).
	Policy core.Policy
	// SharedQueue disables task→worker affinity (ablation).
	SharedQueue bool
}

// SchedScalePoint is one measured cell.
type SchedScalePoint struct {
	Workers int
	Items   uint64 // items processed by the stage tasks
	Elapsed time.Duration
	Stats   core.SchedStats
}

// ItemsPerSec returns stage-item throughput.
func (p SchedScalePoint) ItemsPerSec() float64 {
	if p.Elapsed <= 0 {
		return 0
	}
	return float64(p.Items) / p.Elapsed.Seconds()
}

// OpsPerSec returns scheduled-activation throughput.
func (p SchedScalePoint) OpsPerSec() float64 {
	if p.Elapsed <= 0 {
		return 0
	}
	return float64(p.Stats.Executed) / p.Elapsed.Seconds()
}

// spin burns CPU deterministically (the compiler cannot elide the result).
var spinSink atomic.Uint64

func spin(n int) {
	acc := uint64(1)
	for i := 0; i < n; i++ {
		acc = acc*6364136223846793005 + 1442695040888963407
	}
	spinSink.Store(acc)
}

// RunSchedulerScaling runs one fan-out/fan-in cell and reports throughput
// plus the scheduler's contention counters.
func RunSchedulerScaling(cfg SchedScaleConfig) SchedScalePoint {
	if cfg.Workers <= 0 {
		cfg.Workers = 1
	}
	if cfg.Sources <= 0 {
		cfg.Sources = 8
	}
	if cfg.Stages <= 0 {
		cfg.Stages = 4 * cfg.Workers
	}
	if cfg.ItemsPerSource <= 0 {
		cfg.ItemsPerSource = 1024
	}
	if cfg.WorkPerItem <= 0 {
		cfg.WorkPerItem = 400
	}
	pol := cfg.Policy
	if pol.Name == "" {
		pol = core.Cooperative
	}
	var opts []core.Option
	if cfg.SharedQueue {
		opts = append(opts, core.WithoutAffinity())
	}
	s := core.NewScheduler(cfg.Workers, pol, opts...)

	stageChans := make([]*core.Chan, cfg.Stages)
	sinkChan := core.NewChan(1024)
	var stageItems atomic.Uint64
	var stagesLeft atomic.Int32
	stagesLeft.Store(int32(cfg.Stages))
	done := make(chan struct{})

	// Sink: fan-in consumer; completion closes done.
	sink := s.NewTask("sink", func(ctx *core.ExecCtx) core.RunResult {
		for {
			_, ok, closed := sinkChan.Pop()
			if closed {
				close(done)
				return core.RunDone
			}
			if !ok {
				return core.RunIdle
			}
			if ctx.CountItem() {
				return core.RunYield
			}
		}
	})

	// Stage tasks: pop, spin, forward to the sink.
	work := cfg.WorkPerItem
	for i := range stageChans {
		ch := core.NewChan(256)
		stageChans[i] = ch
		task := s.NewTask(fmt.Sprintf("stage-%d", i), func(ctx *core.ExecCtx) core.RunResult {
			for {
				v, ok, closed := ch.Pop()
				if closed {
					if stagesLeft.Add(-1) == 0 {
						sinkChan.Close()
					}
					return core.RunDone
				}
				if !ok {
					return core.RunIdle
				}
				spin(work)
				stageItems.Add(1)
				sinkChan.Push(v)
				if ctx.CountItem() {
					return core.RunYield
				}
			}
		})
		ch.SetConsumer(task, s)
	}
	sinkChan.SetConsumer(sink, s)

	// Source tasks: emit round-robin over the stage channels.
	var sourcesLeft atomic.Int32
	sourcesLeft.Store(int32(cfg.Sources))
	payload := value.Int(1)
	sources := make([]*core.Task, 0, cfg.Sources)
	for i := 0; i < cfg.Sources; i++ {
		emitted := 0
		next := i % cfg.Stages
		quota := cfg.ItemsPerSource
		task := s.NewTask(fmt.Sprintf("source-%d", i), func(ctx *core.ExecCtx) core.RunResult {
			for emitted < quota {
				stageChans[next].Push(payload)
				next = (next + 1) % cfg.Stages
				emitted++
				if ctx.CountItem() {
					return core.RunYield
				}
			}
			if sourcesLeft.Add(-1) == 0 {
				for _, ch := range stageChans {
					ch.Close()
				}
			}
			return core.RunDone
		})
		sources = append(sources, task)
	}

	start := time.Now()
	s.Start()
	for _, task := range sources {
		s.Schedule(task)
	}
	<-done
	elapsed := time.Since(start)
	st := s.Stats()
	s.Stop()
	return SchedScalePoint{
		Workers: cfg.Workers,
		Items:   stageItems.Load(),
		Elapsed: elapsed,
		Stats:   st,
	}
}

// SchedScaleTable renders a worker sweep.
func SchedScaleTable(points []SchedScalePoint) *Table {
	t := &Table{
		Title:   "Scheduler scaling: fan-out/fan-in task graph",
		Columns: []string{"workers", "items/s", "ops/s", "steals", "parks", "wakeups", "overflow"},
		Notes: []string{
			"per-worker Chase–Lev deques + bounded inboxes; wakeups target one parked worker",
			"throughput should grow with workers until the sink task serialises (§6 scaling claim)",
		},
	}
	for _, p := range points {
		t.Add(
			fmt.Sprint(p.Workers),
			fmtReqs(p.ItemsPerSec()),
			fmtReqs(p.OpsPerSec()),
			fmt.Sprint(p.Stats.Stolen),
			fmt.Sprint(p.Stats.Parks),
			fmt.Sprint(p.Stats.Wakeups),
			fmt.Sprint(p.Stats.Overflow),
		)
	}
	return t
}
