package bench

import (
	"fmt"
	"time"

	"flick/internal/apps"
	"flick/internal/backend"
	"flick/internal/core"
	"flick/internal/loadgen"
)

// Static-server cost models for the baselines (see internal/baseline):
// Apache's full request-processing path is the heaviest, Nginx's leaner.
const (
	apacheStaticCost = 5 * time.Microsecond
	nginxStaticCost  = 2 * time.Microsecond
)

// WebServerConfig parameterises the §6.3 static web-server experiment.
type WebServerConfig struct {
	// Systems to measure (default: all four).
	Systems []System
	// Clients are the concurrency levels (paper: 100..1600).
	Clients []int
	// Persistent toggles HTTP keep-alive.
	Persistent bool
	// Duration per cell.
	Duration time.Duration
	// Workers is the FLICK worker-thread count (0 = GOMAXPROCS).
	Workers int
	// PayloadSize is the response body size (paper: 137 B).
	PayloadSize int
}

// WebServerPoint is one measured cell.
type WebServerPoint struct {
	System      System
	Clients     int
	Throughput  float64 // requests/second
	MeanLatency time.Duration
	P99Latency  time.Duration
	Errors      uint64
}

// RunWebServer measures the static web server on every system×concurrency
// combination.
func RunWebServer(cfg WebServerConfig) ([]WebServerPoint, error) {
	if len(cfg.Systems) == 0 {
		cfg.Systems = []System{SysFlick, SysFlickMTCP, SysApache, SysNginx}
	}
	if len(cfg.Clients) == 0 {
		cfg.Clients = []int{100, 200, 400, 800, 1600}
	}
	if cfg.Duration <= 0 {
		cfg.Duration = 2 * time.Second
	}
	if cfg.PayloadSize <= 0 {
		cfg.PayloadSize = 137
	}
	var out []WebServerPoint
	for _, sys := range cfg.Systems {
		for _, clients := range cfg.Clients {
			pt, err := runWebServerCell(cfg, sys, clients)
			if err != nil {
				return out, fmt.Errorf("bench: %s/%d clients: %w", sys, clients, err)
			}
			out = append(out, pt)
		}
	}
	return out, nil
}

func runWebServerCell(cfg WebServerConfig, sys System, clients int) (WebServerPoint, error) {
	tr := transportFor(sys)
	var addr string
	var cleanup func()

	switch sys {
	case SysFlick, SysFlickMTCP:
		p := core.NewPlatform(core.Config{Workers: cfg.Workers, Transport: tr})
		ws, err := apps.StaticWebServer()
		if err != nil {
			p.Close()
			return WebServerPoint{}, err
		}
		svc, err := ws.Deploy(p, listenAddr(tr, "web:80"), nil)
		if err != nil {
			p.Close()
			return WebServerPoint{}, err
		}
		svc.Pool().Prime(64)
		addr = svc.Addr()
		cleanup = func() { svc.Close(); p.Close() }

	case SysApache:
		s, err := backend.NewHTTPServerWithCost(tr, listenAddr(tr, "web:80"), cfg.PayloadSize, apacheStaticCost)
		if err != nil {
			return WebServerPoint{}, err
		}
		addr = s.Addr()
		cleanup = s.Close

	case SysNginx:
		s, err := backend.NewHTTPServerWithCost(tr, listenAddr(tr, "web:80"), cfg.PayloadSize, nginxStaticCost)
		if err != nil {
			return WebServerPoint{}, err
		}
		addr = s.Addr()
		cleanup = s.Close

	default:
		return WebServerPoint{}, fmt.Errorf("system %q not applicable", sys)
	}
	defer cleanup()

	res := loadgen.RunHTTP(loadgen.HTTPConfig{
		Transport:  tr,
		Addr:       addr,
		Clients:    clients,
		Persistent: cfg.Persistent,
		Duration:   cfg.Duration,
	})
	return WebServerPoint{
		System:      sys,
		Clients:     clients,
		Throughput:  res.Throughput(),
		MeanLatency: res.Latency.Mean,
		P99Latency:  res.Latency.P99,
		Errors:      res.Errors,
	}, nil
}

// WebServerTable renders the experiment.
func WebServerTable(points []WebServerPoint, persistent bool) *Table {
	mode := "persistent"
	if !persistent {
		mode = "non-persistent"
	}
	t := &Table{
		Title:   "Static web server (" + mode + " connections) — §6.3",
		Columns: []string{"system", "clients", "req/s", "mean-lat", "p99-lat", "errors"},
		Notes: []string{
			"paper (persistent): FLICK 306k, FLICK mTCP 380k, Apache 159k, Nginx 217k req/s",
			"paper (non-persistent): FLICK 45k, FLICK mTCP 193k, Apache 35k, Nginx 44k req/s",
		},
	}
	for _, p := range points {
		t.Add(string(p.System), fmt.Sprint(p.Clients), fmtReqs(p.Throughput),
			fmtDur(p.MeanLatency), fmtDur(p.P99Latency), fmt.Sprint(p.Errors))
	}
	return t
}
