package bench

import (
	"testing"
	"time"

	"flick/internal/buffer"
)

// TestFig4NeverHitsPoolFallback runs a small Figure-4 cell (the FLICK HTTP
// load balancer under the ApacheBench-model workload) and asserts the
// buffer pool's over-MaxClass fallback path is never taken: every buffer
// the data plane touches fits a pool class, which is the precondition for
// the paper's allocation-free steady state.
func TestFig4NeverHitsPoolFallback(t *testing.T) {
	before := buffer.Global.Stats()
	pts, err := RunFig4(Fig4Config{
		Systems:    []System{SysFlickMTCP},
		Clients:    []int{8},
		Backends:   2,
		Persistent: true,
		Duration:   300 * time.Millisecond,
		Workers:    2,
	})
	if err != nil {
		t.Fatal(err)
	}
	after := buffer.Global.Stats()
	if len(pts) != 1 || pts[0].Errors > 0 || pts[0].Throughput == 0 {
		t.Fatalf("workload did not run cleanly: %+v", pts)
	}
	if d := after.Oversized - before.Oversized; d != 0 {
		t.Fatalf("Fig4 workload hit the over-MaxClass fallback %d times, want 0", d)
	}
	// The zero-copy path must actually carry the workload: messages served
	// as pooled views, with a recorded pool counter delta in the table row.
	if v, ok := pts[0].Pool.Get("views"); !ok || v == 0 {
		t.Fatalf("no zero-copy views recorded (pool=%s)", pts[0].Pool)
	}
}

// TestFig4TableReportsAllocColumns pins the bench-table contract: Fig4/Fig5
// rows carry allocs/op and pool counters so regressions are visible in
// flickbench output.
func TestFig4TableReportsAllocColumns(t *testing.T) {
	tab := Fig4Table([]Fig4Point{{System: SysFlick, Clients: 1}}, true)
	for _, col := range []string{"allocs/req", "pool"} {
		found := false
		for _, c := range tab.Columns {
			if c == col {
				found = true
			}
		}
		if !found {
			t.Fatalf("Fig4 table missing column %q (have %v)", col, tab.Columns)
		}
	}
	tab5 := Fig5Table([]Fig5Point{{System: SysFlick, Cores: 1}})
	for _, col := range []string{"allocs/req", "pool"} {
		found := false
		for _, c := range tab5.Columns {
			if c == col {
				found = true
			}
		}
		if !found {
			t.Fatalf("Fig5 table missing column %q (have %v)", col, tab5.Columns)
		}
	}
}
