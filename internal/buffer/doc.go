// Package buffer provides pooled byte buffers, refcounted regions, ring
// buffers, chunked byte queues and scatter lists used throughout the FLICK
// runtime.
//
// The FLICK platform promises allocation-free steady-state operation: all
// buffers that carry network payloads are drawn from pre-allocated pools
// (§5 of the paper: "All buffers are drawn from a pre-allocated pool to
// avoid dynamic memory allocation"). This package is that pool, plus the
// byte containers built on top of it.
//
// # Zero-copy / ownership invariants
//
//   - A Ref is a pool-backed refcounted byte region. Retain/Release pair
//     strictly; releasing below zero panics (double free) and a region
//     only recycles when its count reaches zero — the pool counters
//     (refgets vs refputs) make leaks visible.
//   - A Queue owns the refs of the chunks appended to it by reference
//     (AppendRef / AppendRead / AppendView); Reset or consumption drops
//     them. TakeRef consumes a span as one contiguous retained view whose
//     ownership passes to the caller (cross-chunk spans coalesce into a
//     fresh pooled region, counted by `coalesced`).
//   - AppendRead compacts short reads instead of pinning a near-empty
//     pooled chunk per trickled segment; AppendRef clips chunk capacity so
//     later appends can never scribble into a producer-retained tail.
//   - A Scatter holds encoded output spans plus the region references
//     keeping them alive until WriteTo/Reset releases them.
//
// # Counters
//
// Pool.Counters exposes the pool as a metrics.CounterSet: gets, puts,
// misses, oversized, plus the zero-copy counters refgets, refputs, views,
// coalesced. The steady state of a well-behaved workload shows
// refgets == refputs and oversized == 0.
package buffer
