package buffer

import (
	"sync"
	"sync/atomic"

	"flick/internal/metrics"
)

// Default pool geometry. Class sizes are powers of two from MinClass to
// MaxClass; requests above MaxClass fall back to direct allocation (and are
// counted, so tests can assert the steady state never hits that path).
const (
	MinClassBits = 6  // 64 B
	MaxClassBits = 20 // 1 MiB
	NumClasses   = MaxClassBits - MinClassBits + 1
)

// Pool is a size-classed free list of byte slices. It is safe for concurrent
// use. The zero value is not usable; call NewPool.
type Pool struct {
	classes [NumClasses]*classList

	// stats
	gets      atomic.Uint64
	puts      atomic.Uint64
	misses    atomic.Uint64 // allocations because the class list was empty
	oversized atomic.Uint64 // requests above MaxClass

	// zero-copy path stats
	refGets   atomic.Uint64 // refcounted regions handed out
	refPuts   atomic.Uint64 // refcounted regions fully released
	views     atomic.Uint64 // zero-copy message views (Queue.TakeRef fast path)
	coalesced atomic.Uint64 // messages copied because they spanned chunks
}

type classList struct {
	mu   sync.Mutex
	free [][]byte
	size int
	cap  int // maximum retained slices
}

// NewPool creates a pool that retains up to perClass free buffers in every
// size class. perClass must be positive.
func NewPool(perClass int) *Pool {
	if perClass <= 0 {
		perClass = 64
	}
	p := &Pool{}
	for i := range p.classes {
		p.classes[i] = &classList{size: 1 << (MinClassBits + i), cap: perClass}
	}
	return p
}

// classFor returns the index of the smallest class whose buffers hold n
// bytes, or -1 when n exceeds the largest class.
func classFor(n int) int {
	if n <= 0 {
		return 0
	}
	for i := 0; i < NumClasses; i++ {
		if n <= 1<<(MinClassBits+i) {
			return i
		}
	}
	return -1
}

// Get returns a byte slice with length n. Its capacity is the class size, so
// callers may extend it up to cap without reallocating.
func (p *Pool) Get(n int) []byte {
	p.gets.Add(1)
	ci := classFor(n)
	if ci < 0 {
		p.oversized.Add(1)
		return make([]byte, n)
	}
	cl := p.classes[ci]
	cl.mu.Lock()
	if len(cl.free) > 0 {
		b := cl.free[len(cl.free)-1]
		cl.free = cl.free[:len(cl.free)-1]
		cl.mu.Unlock()
		return b[:n]
	}
	cl.mu.Unlock()
	p.misses.Add(1)
	return make([]byte, n, cl.size)
}

// Put returns a buffer to the pool. Buffers whose capacity does not match a
// class size exactly are dropped (they may have come from the oversized
// path). Put of nil is a no-op.
func (p *Pool) Put(b []byte) {
	if b == nil {
		return
	}
	c := cap(b)
	ci := classFor(c)
	if ci < 0 || 1<<(MinClassBits+ci) != c {
		return
	}
	p.puts.Add(1)
	cl := p.classes[ci]
	cl.mu.Lock()
	if len(cl.free) < cl.cap {
		cl.free = append(cl.free, b[:c])
	}
	cl.mu.Unlock()
}

// Prime pre-populates every class with count buffers so that the first Get
// calls in the steady state do not allocate.
func (p *Pool) Prime(count int) {
	for i, cl := range p.classes {
		cl.mu.Lock()
		for len(cl.free) < count && len(cl.free) < cl.cap {
			cl.free = append(cl.free, make([]byte, 1<<(MinClassBits+i)))
		}
		cl.mu.Unlock()
	}
}

// Stats reports cumulative pool activity.
type Stats struct {
	Gets      uint64
	Puts      uint64
	Misses    uint64
	Oversized uint64
	RefGets   uint64 // refcounted regions handed out
	RefPuts   uint64 // refcounted regions fully released
	Views     uint64 // zero-copy message views served by queues
	Coalesced uint64 // messages copied because they spanned chunks
}

// Stats returns a snapshot of pool counters.
func (p *Pool) Stats() Stats {
	return Stats{
		Gets:      p.gets.Load(),
		Puts:      p.puts.Load(),
		Misses:    p.misses.Load(),
		Oversized: p.oversized.Load(),
		RefGets:   p.refGets.Load(),
		RefPuts:   p.refPuts.Load(),
		Views:     p.views.Load(),
		Coalesced: p.coalesced.Load(),
	}
}

// Counters returns the pool's counters as an ordered metrics snapshot for
// benchmark tables and window deltas.
func (p *Pool) Counters() metrics.CounterSet {
	s := p.Stats()
	return metrics.NewCounterSet(
		"gets", s.Gets,
		"puts", s.Puts,
		"misses", s.Misses,
		"oversized", s.Oversized,
		"refgets", s.RefGets,
		"refputs", s.RefPuts,
		"views", s.Views,
		"coalesced", s.Coalesced,
	)
}

// Global is the default process-wide pool used by the runtime when no
// explicit pool is configured.
var Global = NewPool(256)
