package buffer

import (
	"testing"
	"testing/quick"
)

func TestClassFor(t *testing.T) {
	cases := []struct {
		n    int
		want int
	}{
		{0, 0}, {1, 0}, {64, 0}, {65, 1}, {128, 1}, {129, 2},
		{1 << 20, NumClasses - 1}, {1<<20 + 1, -1},
	}
	for _, c := range cases {
		if got := classFor(c.n); got != c.want {
			t.Errorf("classFor(%d) = %d, want %d", c.n, got, c.want)
		}
	}
}

func TestPoolGetLengthAndCapacity(t *testing.T) {
	p := NewPool(8)
	for _, n := range []int{1, 63, 64, 65, 1000, 4096, 1 << 20} {
		b := p.Get(n)
		if len(b) != n {
			t.Fatalf("Get(%d) length = %d", n, len(b))
		}
		if cap(b) < n {
			t.Fatalf("Get(%d) cap = %d < n", n, cap(b))
		}
		p.Put(b)
	}
}

func TestPoolReuse(t *testing.T) {
	p := NewPool(8)
	b := p.Get(100)
	b[0] = 42
	p.Put(b)
	c := p.Get(100)
	if &b[0] != &c[0] {
		t.Fatal("expected Put/Get to recycle the same buffer")
	}
}

func TestPoolOversized(t *testing.T) {
	p := NewPool(2)
	b := p.Get(2 << 20)
	if len(b) != 2<<20 {
		t.Fatalf("oversized len = %d", len(b))
	}
	p.Put(b) // must be dropped silently
	if s := p.Stats(); s.Oversized != 1 {
		t.Fatalf("oversized count = %d, want 1", s.Oversized)
	}
}

func TestPoolPrimeAvoidsMisses(t *testing.T) {
	p := NewPool(16)
	p.Prime(4)
	before := p.Stats().Misses
	for i := 0; i < 4; i++ {
		p.Put(p.Get(128))
	}
	if after := p.Stats().Misses; after != before {
		t.Fatalf("misses grew from %d to %d after Prime", before, after)
	}
}

func TestPoolPutNil(t *testing.T) {
	p := NewPool(2)
	p.Put(nil) // must not panic
}

func TestPoolCapRespected(t *testing.T) {
	p := NewPool(2)
	bufs := make([][]byte, 5)
	for i := range bufs {
		bufs[i] = make([]byte, 64)
	}
	for _, b := range bufs {
		p.Put(b)
	}
	cl := p.classes[0]
	cl.mu.Lock()
	n := len(cl.free)
	cl.mu.Unlock()
	if n != 2 {
		t.Fatalf("retained %d buffers, cap is 2", n)
	}
}

func TestPoolConcurrent(t *testing.T) {
	p := NewPool(32)
	done := make(chan struct{})
	for g := 0; g < 8; g++ {
		go func() {
			defer func() { done <- struct{}{} }()
			for i := 0; i < 1000; i++ {
				b := p.Get(200)
				b[0] = byte(i)
				p.Put(b)
			}
		}()
	}
	for g := 0; g < 8; g++ {
		<-done
	}
}

// Property: Get always returns a slice of exactly the requested length with
// class-sized capacity for in-range requests.
func TestPoolGetProperty(t *testing.T) {
	p := NewPool(8)
	f := func(n uint16) bool {
		want := int(n)
		b := p.Get(want)
		ok := len(b) == want && cap(b) >= want
		p.Put(b)
		return ok
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
