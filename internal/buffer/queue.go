package buffer

// Queue is an unbounded-capacity, pool-backed byte FIFO used for incremental
// protocol parsing: input tasks append network reads and the grammar engine
// consumes complete messages from the front, possibly across many chunks.
//
// Unlike bytes.Buffer, Queue recycles its chunks through a Pool so the steady
// state performs no allocation, and it supports cheap front consumption
// without compaction.
//
// Every chunk is a refcounted Ref region. Bytes can enter without copying
// (AppendRef hands a pooled read buffer straight to the queue) and leave
// without copying (TakeRef returns a view into the front chunk, retained for
// the caller): the zero-copy decode path reads network bytes into pooled
// memory once and parses messages in place over it.
type Queue struct {
	pool   *Pool
	chunks [][]byte // chunks[0][off:] is the queue front
	refs   []*Ref   // refs[i] owns chunks[i]'s backing buffer
	off    int      // read offset into chunks[0]
	size   int      // total buffered bytes
}

// NewQueue creates a queue drawing chunks from pool (Global when nil).
func NewQueue(pool *Pool) *Queue {
	if pool == nil {
		pool = Global
	}
	return &Queue{pool: pool}
}

// Len returns the number of buffered bytes.
func (q *Queue) Len() int { return q.size }

// push appends a chunk+ref pair, keeping the parallel slices compacted at
// the front so steady-state appends reuse slice capacity without allocating.
func (q *Queue) push(c []byte, r *Ref) {
	q.chunks = append(q.chunks, c)
	q.refs = append(q.refs, r)
}

// dropFront releases the front chunk and shifts the slices down. The
// explicit copy-down (rather than re-slicing) keeps the backing arrays
// anchored, so append never migrates to a fresh allocation in steady state.
func (q *Queue) dropFront() {
	if r := q.refs[0]; r != nil {
		r.Release()
	}
	n := len(q.chunks)
	copy(q.chunks, q.chunks[1:])
	copy(q.refs, q.refs[1:])
	q.chunks[n-1], q.refs[n-1] = nil, nil
	q.chunks = q.chunks[:n-1]
	q.refs = q.refs[:n-1]
	q.off = 0
}

// Append copies p into the queue.
func (q *Queue) Append(p []byte) {
	for len(p) > 0 {
		// Extend the final chunk if it has spare capacity. Writes land
		// strictly beyond the chunk's current length, so views handed out
		// over earlier bytes are unaffected; AppendRef clips capacity, so
		// only chunks the queue itself drew from the pool are extendable.
		if n := len(q.chunks); n > 0 {
			last := q.chunks[n-1]
			if spare := cap(last) - len(last); spare > 0 {
				take := spare
				if take > len(p) {
					take = len(p)
				}
				q.chunks[n-1] = append(last, p[:take]...)
				p = p[take:]
				q.size += take
				continue
			}
		}
		want := len(p)
		if want < 4096 {
			want = 4096
		}
		r := q.pool.GetRef(want)
		q.push(r.Bytes()[:0], r)
	}
}

// AppendRef appends the first n bytes of r's region without copying,
// transferring the caller's reference to the queue (callers that keep using
// the region must Retain first). n == 0 releases r immediately.
//
// The ingested chunk's capacity is clipped to n so a later Append never
// extends into the region's remaining bytes: a producer that Retained the
// region may still own everything past the appended prefix.
func (q *Queue) AppendRef(r *Ref, n int) {
	if n <= 0 {
		r.Release()
		return
	}
	q.push(r.Bytes()[:n:n], r)
	q.size += n
}

// AppendView appends view v without copying, transferring the caller's
// reference to region r. r may be a mid-region sub-slice owner (a message
// view produced by TakeRef) or nil for memory the queue does not own — the
// caller then guarantees v outlives its residence in the queue. Chunks with
// a nil region cannot be handed out by TakeRef's zero-copy fast path (there
// is no reference to transfer); TakeRef coalesces them into pooled memory
// instead.
func (q *Queue) AppendView(v []byte, r *Ref) {
	if len(v) == 0 {
		if r != nil {
			r.Release()
		}
		return
	}
	q.push(v[:len(v):len(v)], r)
	q.size += len(v)
}

// DrainTo moves every buffered chunk to dst by reference — views and their
// region references transfer wholesale, no byte is copied — and leaves q
// empty. It reports the number of bytes moved. This is the zero-copy
// hand-over between staging queues: an upstream session's demultiplexed
// response views move into an input task's parse queue in O(chunks).
func (q *Queue) DrainTo(dst *Queue) int {
	moved := q.size
	for i, c := range q.chunks {
		if i == 0 {
			c = c[q.off:]
		}
		r := q.refs[i]
		if len(c) == 0 {
			if r != nil {
				r.Release()
			}
		} else {
			dst.push(c, r)
			dst.size += len(c)
		}
		q.chunks[i], q.refs[i] = nil, nil
	}
	q.chunks = q.chunks[:0]
	q.refs = q.refs[:0]
	q.off, q.size = 0, 0
	return moved
}

// AppendViews appends views covering the first n buffered bytes to dst
// without copying or consuming, and returns the extended slice. The views
// are valid until those bytes are consumed; vectored writers may use them
// as an iovec list (net.Buffers-style callers may re-slice the returned
// elements freely — the queue's own chunk headers are untouched).
func (q *Queue) AppendViews(dst [][]byte, n int) [][]byte {
	off := q.off
	for _, c := range q.chunks {
		if n <= 0 {
			break
		}
		src := c[off:]
		off = 0
		if len(src) > n {
			src = src[:n]
		}
		if len(src) > 0 {
			dst = append(dst, src)
			n -= len(src)
		}
	}
	return dst
}

// AppendRead ingests the first n bytes of a pooled read chunk, consuming the
// caller's reference in every case. Large reads transfer the region by
// reference (the zero-copy path); small reads — a peer trickling short TCP
// segments — are copied and compacted instead, so a slow consumer pins at
// most the copied bytes rather than a near-empty pooled chunk per read.
func (q *Queue) AppendRead(r *Ref, n int) {
	if n > 0 && n < len(r.Bytes())/8 {
		q.Append(r.Bytes()[:n])
		r.Release()
		return
	}
	q.AppendRef(r, n)
}

// Peek copies up to len(p) bytes from the front without consuming and
// reports how many bytes were copied.
func (q *Queue) Peek(p []byte) int {
	return q.PeekAt(p, 0)
}

// PeekAt copies up to len(p) bytes starting at buffered offset from (0 =
// queue front) without consuming, and reports how many bytes were copied.
func (q *Queue) PeekAt(p []byte, from int) int {
	if from < 0 {
		from = 0
	}
	copied := 0
	off := q.off
	for _, c := range q.chunks {
		if copied == len(p) {
			break
		}
		src := c[off:]
		off = 0
		if from >= len(src) {
			from -= len(src)
			continue
		}
		n := copy(p[copied:], src[from:])
		from = 0
		copied += n
	}
	return copied
}

// PeekByte returns the i-th buffered byte (0-based) without consuming it.
// The second result is false when fewer than i+1 bytes are buffered.
func (q *Queue) PeekByte(i int) (byte, bool) {
	if i < 0 || i >= q.size {
		return 0, false
	}
	off := q.off
	for _, c := range q.chunks {
		span := len(c) - off
		if i < span {
			return c[off+i], true
		}
		i -= span
		off = 0
	}
	return 0, false
}

// Contig returns a view of the first n buffered bytes when they are stored
// contiguously in the front chunk, or nil when they span chunks (or fewer
// than n bytes are buffered). The view is valid until those bytes are
// consumed; it does not retain the chunk.
func (q *Queue) Contig(n int) []byte {
	if n <= 0 || q.size < n || len(q.chunks) == 0 {
		return nil
	}
	if c := q.chunks[0]; len(c)-q.off >= n {
		return c[q.off : q.off+n]
	}
	return nil
}

// TakeRef consumes the first n bytes and returns them as a contiguous view
// plus the Ref that keeps the view alive; the caller owns one reference and
// must Release it when done with the bytes. When the bytes sit in a single
// chunk the view aliases it directly (zero copy, the steady-state path);
// bytes spanning chunks are coalesced into a fresh pooled region (counted,
// so benchmarks can watch the slow path). Returns (nil, nil) when fewer
// than n bytes are buffered or n <= 0.
func (q *Queue) TakeRef(n int) ([]byte, *Ref) {
	if n <= 0 || q.size < n {
		return nil, nil
	}
	if c := q.chunks[0]; len(c)-q.off >= n {
		if r := q.refs[0]; r != nil {
			view := c[q.off : q.off+n]
			r.Retain()
			q.off += n
			q.size -= n
			if q.off == len(c) {
				q.dropFront()
			}
			q.pool.views.Add(1)
			return view, r
		}
		// Region-less chunk (AppendView with a nil ref): there is no
		// reference to hand out, so fall through to the coalesce path.
	}
	r := q.pool.GetRef(n)
	q.PeekAt(r.Bytes(), 0)
	q.Discard(n)
	q.pool.coalesced.Add(1)
	return r.Bytes(), r
}

// Discard drops up to n bytes from the front, releasing spent chunks back to
// the pool, and reports how many bytes were dropped.
func (q *Queue) Discard(n int) int {
	dropped := 0
	for n > 0 && len(q.chunks) > 0 {
		c := q.chunks[0]
		avail := len(c) - q.off
		if n < avail {
			q.off += n
			dropped += n
			q.size -= n
			return dropped
		}
		dropped += avail
		q.size -= avail
		n -= avail
		q.dropFront()
	}
	return dropped
}

// ReadFull copies exactly len(p) bytes from the front, consuming them. It
// reports false (copying nothing) when fewer bytes are buffered.
func (q *Queue) ReadFull(p []byte) bool {
	if q.size < len(p) {
		return false
	}
	n := q.Peek(p)
	q.Discard(n)
	return true
}

// IndexByte returns the offset of the first occurrence of b at or after
// position from, or -1 when absent.
func (q *Queue) IndexByte(b byte, from int) int {
	if from < 0 {
		from = 0
	}
	pos := 0
	off := q.off
	for _, c := range q.chunks {
		span := c[off:]
		if pos+len(span) <= from {
			pos += len(span)
			off = 0
			continue
		}
		start := 0
		if from > pos {
			start = from - pos
		}
		for i := start; i < len(span); i++ {
			if span[i] == b {
				return pos + i
			}
		}
		pos += len(span)
		off = 0
	}
	return -1
}

// Reset drops all buffered bytes, releasing every chunk reference.
func (q *Queue) Reset() {
	for i := range q.chunks {
		if r := q.refs[i]; r != nil {
			r.Release()
		}
		q.chunks[i], q.refs[i] = nil, nil
	}
	q.chunks = q.chunks[:0]
	q.refs = q.refs[:0]
	q.off, q.size = 0, 0
}
