package buffer

// Queue is an unbounded-capacity, pool-backed byte FIFO used for incremental
// protocol parsing: input tasks append network reads and the grammar engine
// consumes complete messages from the front, possibly across many chunks.
//
// Unlike bytes.Buffer, Queue recycles its chunks through a Pool so the steady
// state performs no allocation, and it supports cheap front consumption
// without compaction.
type Queue struct {
	pool   *Pool
	chunks [][]byte // chunks[0][off:] is the queue front
	off    int      // read offset into chunks[0]
	size   int      // total buffered bytes
}

// NewQueue creates a queue drawing chunks from pool (Global when nil).
func NewQueue(pool *Pool) *Queue {
	if pool == nil {
		pool = Global
	}
	return &Queue{pool: pool}
}

// Len returns the number of buffered bytes.
func (q *Queue) Len() int { return q.size }

// Append copies p into the queue.
func (q *Queue) Append(p []byte) {
	for len(p) > 0 {
		// Extend the final chunk if it has spare capacity.
		if n := len(q.chunks); n > 0 {
			last := q.chunks[n-1]
			if spare := cap(last) - len(last); spare > 0 {
				take := spare
				if take > len(p) {
					take = len(p)
				}
				q.chunks[n-1] = append(last, p[:take]...)
				p = p[take:]
				q.size += take
				continue
			}
		}
		want := len(p)
		if want < 4096 {
			want = 4096
		}
		c := q.pool.Get(want)[:0]
		q.chunks = append(q.chunks, c)
	}
}

// Peek copies up to len(p) bytes from the front without consuming and
// reports how many bytes were copied.
func (q *Queue) Peek(p []byte) int {
	copied := 0
	off := q.off
	for _, c := range q.chunks {
		if copied == len(p) {
			break
		}
		src := c[off:]
		off = 0
		n := copy(p[copied:], src)
		copied += n
	}
	return copied
}

// PeekByte returns the i-th buffered byte (0-based) without consuming it.
// The second result is false when fewer than i+1 bytes are buffered.
func (q *Queue) PeekByte(i int) (byte, bool) {
	if i < 0 || i >= q.size {
		return 0, false
	}
	off := q.off
	for _, c := range q.chunks {
		span := len(c) - off
		if i < span {
			return c[off+i], true
		}
		i -= span
		off = 0
	}
	return 0, false
}

// Discard drops up to n bytes from the front, releasing spent chunks back to
// the pool, and reports how many bytes were dropped.
func (q *Queue) Discard(n int) int {
	dropped := 0
	for n > 0 && len(q.chunks) > 0 {
		c := q.chunks[0]
		avail := len(c) - q.off
		if n < avail {
			q.off += n
			dropped += n
			q.size -= n
			return dropped
		}
		dropped += avail
		q.size -= avail
		n -= avail
		q.pool.Put(c[:cap(c)])
		q.chunks[0] = nil
		q.chunks = q.chunks[1:]
		q.off = 0
	}
	return dropped
}

// ReadFull copies exactly len(p) bytes from the front, consuming them. It
// reports false (copying nothing) when fewer bytes are buffered.
func (q *Queue) ReadFull(p []byte) bool {
	if q.size < len(p) {
		return false
	}
	n := q.Peek(p)
	q.Discard(n)
	return true
}

// IndexByte returns the offset of the first occurrence of b at or after
// position from, or -1 when absent.
func (q *Queue) IndexByte(b byte, from int) int {
	if from < 0 {
		from = 0
	}
	pos := 0
	off := q.off
	for _, c := range q.chunks {
		span := c[off:]
		if pos+len(span) <= from {
			pos += len(span)
			off = 0
			continue
		}
		start := 0
		if from > pos {
			start = from - pos
		}
		for i := start; i < len(span); i++ {
			if span[i] == b {
				return pos + i
			}
		}
		pos += len(span)
		off = 0
	}
	return -1
}

// Reset drops all buffered bytes, returning chunks to the pool.
func (q *Queue) Reset() {
	for i, c := range q.chunks {
		q.pool.Put(c[:cap(c)])
		q.chunks[i] = nil
	}
	q.chunks = q.chunks[:0]
	q.off, q.size = 0, 0
}
