package buffer

import (
	"bytes"
	"testing"
	"testing/quick"
)

func TestQueueAppendPeekDiscard(t *testing.T) {
	q := NewQueue(nil)
	q.Append([]byte("hello "))
	q.Append([]byte("world"))
	if q.Len() != 11 {
		t.Fatalf("len = %d", q.Len())
	}
	p := make([]byte, 11)
	if n := q.Peek(p); n != 11 || string(p) != "hello world" {
		t.Fatalf("peek = %q (%d)", p[:n], n)
	}
	if q.Len() != 11 {
		t.Fatal("peek consumed bytes")
	}
	if n := q.Discard(6); n != 6 {
		t.Fatalf("discard = %d", n)
	}
	p = make([]byte, 5)
	if !q.ReadFull(p) || string(p) != "world" {
		t.Fatalf("readfull = %q", p)
	}
	if q.Len() != 0 {
		t.Fatalf("len = %d after drain", q.Len())
	}
}

func TestQueueReadFullInsufficient(t *testing.T) {
	q := NewQueue(nil)
	q.Append([]byte("abc"))
	p := make([]byte, 5)
	if q.ReadFull(p) {
		t.Fatal("ReadFull succeeded with too few bytes")
	}
	if q.Len() != 3 {
		t.Fatal("failed ReadFull consumed bytes")
	}
}

func TestQueuePeekByte(t *testing.T) {
	q := NewQueue(nil)
	q.Append([]byte("ab"))
	q.Append([]byte("cd"))
	for i, want := range []byte("abcd") {
		got, ok := q.PeekByte(i)
		if !ok || got != want {
			t.Fatalf("PeekByte(%d) = %q, %v", i, got, ok)
		}
	}
	if _, ok := q.PeekByte(4); ok {
		t.Fatal("PeekByte past end succeeded")
	}
	if _, ok := q.PeekByte(-1); ok {
		t.Fatal("PeekByte(-1) succeeded")
	}
}

func TestQueueIndexByte(t *testing.T) {
	q := NewQueue(nil)
	q.Append([]byte("GET / HT"))
	q.Append([]byte("TP/1.1\r\n\r\n"))
	if i := q.IndexByte(' ', 0); i != 3 {
		t.Fatalf("IndexByte(' ') = %d", i)
	}
	if i := q.IndexByte(' ', 4); i != 5 {
		t.Fatalf("IndexByte(' ', 4) = %d", i)
	}
	if i := q.IndexByte('\n', 0); i != 15 {
		t.Fatalf("IndexByte('\\n') = %d", i)
	}
	if i := q.IndexByte('z', 0); i != -1 {
		t.Fatalf("IndexByte missing = %d", i)
	}
}

func TestQueueDiscardAcrossChunks(t *testing.T) {
	q := NewQueue(NewPool(4))
	q.Append(bytes.Repeat([]byte{1}, 5000)) // spans growth
	q.Append(bytes.Repeat([]byte{2}, 5000))
	if q.Len() != 10000 {
		t.Fatalf("len = %d", q.Len())
	}
	if n := q.Discard(7000); n != 7000 {
		t.Fatalf("discard = %d", n)
	}
	p := make([]byte, 3000)
	if !q.ReadFull(p) {
		t.Fatal("readfull failed")
	}
	for _, b := range p {
		if b != 2 {
			t.Fatal("wrong bytes after cross-chunk discard")
		}
	}
}

func TestQueueReset(t *testing.T) {
	q := NewQueue(nil)
	q.Append([]byte("data"))
	q.Reset()
	if q.Len() != 0 {
		t.Fatal("reset left data")
	}
	q.Append([]byte("more"))
	p := make([]byte, 4)
	if !q.ReadFull(p) || string(p) != "more" {
		t.Fatalf("after reset got %q", p)
	}
}

// Property: for any sequence of appended chunks, reading everything back
// yields the concatenation in order.
func TestQueueFIFOProperty(t *testing.T) {
	f := func(chunks [][]byte) bool {
		q := NewQueue(nil)
		var want bytes.Buffer
		for _, c := range chunks {
			q.Append(c)
			want.Write(c)
		}
		got := make([]byte, q.Len())
		if !q.ReadFull(got) {
			return want.Len() != q.Len()
		}
		return bytes.Equal(got, want.Bytes())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: IndexByte agrees with bytes.IndexByte on the flattened content.
func TestQueueIndexByteProperty(t *testing.T) {
	f := func(a, b []byte, needle byte, from uint8) bool {
		q := NewQueue(nil)
		q.Append(a)
		q.Append(b)
		flat := append(append([]byte{}, a...), b...)
		start := int(from)
		want := -1
		if start <= len(flat) {
			if i := bytes.IndexByte(flat[min(start, len(flat)):], needle); i >= 0 {
				want = i + min(start, len(flat))
			}
		}
		return q.IndexByte(needle, start) == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkQueueAppendDiscard(b *testing.B) {
	q := NewQueue(nil)
	chunk := make([]byte, 1500)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q.Append(chunk)
		q.Discard(1500)
	}
}

func BenchmarkPoolGetPut(b *testing.B) {
	p := NewPool(64)
	p.Prime(8)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.Put(p.Get(1500))
	}
}
