package buffer

import (
	"bytes"
	"testing"
)

// TestQueueAppendViewTransfersRef pins AppendView's ownership contract: the
// caller's reference transfers to the queue, a TakeRef over the view region
// retains it, and draining the queue releases everything — refgets/refputs
// balance.
func TestQueueAppendViewTransfersRef(t *testing.T) {
	pool := NewPool(16)
	q := NewQueue(pool)
	ref := pool.GetRef(8)
	copy(ref.Bytes(), "responseX")
	view := ref.Bytes()[2:6] // a mid-region sub-view, as TakeRef produces
	q.AppendView(view, ref)  // reference transferred
	if q.Len() != 4 {
		t.Fatalf("len = %d, want 4", q.Len())
	}
	got, r2 := q.TakeRef(4)
	if string(got) != "spon" {
		t.Fatalf("TakeRef = %q", got)
	}
	r2.Release()
	if s := pool.Stats(); s.RefGets != s.RefPuts {
		t.Fatalf("region leak: %d handed out, %d recycled", s.RefGets, s.RefPuts)
	}
}

// TestQueueAppendViewNilRegion pins the region-less staging path: nil-ref
// views buffer and consume normally, and TakeRef falls back to coalescing
// (there is no reference to hand out) instead of aliasing foreign memory.
func TestQueueAppendViewNilRegion(t *testing.T) {
	pool := NewPool(16)
	q := NewQueue(pool)
	q.AppendView([]byte("abcdef"), nil)
	q.AppendView(nil, nil) // no-op
	if q.Len() != 6 {
		t.Fatalf("len = %d, want 6", q.Len())
	}
	before := pool.Stats()
	view, ref := q.TakeRef(4)
	if string(view) != "abcd" || ref == nil {
		t.Fatalf("TakeRef = %q, ref %v", view, ref)
	}
	after := pool.Stats()
	if after.Coalesced != before.Coalesced+1 {
		t.Fatal("nil-region chunk was not coalesced into owned memory")
	}
	ref.Release()
	var p [2]byte
	if !q.ReadFull(p[:]) || string(p[:]) != "ef" {
		t.Fatalf("tail = %q", p)
	}
	q.Reset()
	if s := pool.Stats(); s.RefGets != s.RefPuts {
		t.Fatalf("region leak: %d handed out, %d recycled", s.RefGets, s.RefPuts)
	}
}

// TestQueueDrainTo pins the zero-copy queue hand-over: chunks and their
// references move wholesale, a partially consumed front chunk moves as its
// unread suffix, and the source is left empty and reusable.
func TestQueueDrainTo(t *testing.T) {
	pool := NewPool(16)
	src, dst := NewQueue(pool), NewQueue(pool)
	ref := pool.GetRef(10)
	copy(ref.Bytes(), "0123456789")
	src.AppendRef(ref, 10)
	src.Append([]byte("abc"))
	src.Discard(2) // partial front consumption
	if n := src.DrainTo(dst); n != 11 {
		t.Fatalf("moved %d bytes, want 11", n)
	}
	if src.Len() != 0 {
		t.Fatalf("source still holds %d bytes", src.Len())
	}
	p := make([]byte, 11)
	if !dst.ReadFull(p) || !bytes.Equal(p, []byte("23456789abc")) {
		t.Fatalf("drained bytes = %q", p)
	}
	// Source stays usable after the drain.
	src.Append([]byte("xy"))
	q := make([]byte, 2)
	if !src.ReadFull(q) || string(q) != "xy" {
		t.Fatalf("source unusable after drain: %q", q)
	}
	dst.Reset()
	src.Reset()
	if s := pool.Stats(); s.RefGets != s.RefPuts {
		t.Fatalf("region leak: %d handed out, %d recycled", s.RefGets, s.RefPuts)
	}
}

// TestQueueAppendViews pins the iovec view: the returned slices cover
// exactly the first n bytes across chunk boundaries without consuming.
func TestQueueAppendViews(t *testing.T) {
	q := NewQueue(NewPool(16))
	q.AppendView([]byte("hello "), nil)
	q.AppendView([]byte("world"), nil)
	q.Discard(1)
	views := q.AppendViews(nil, 8)
	var flat []byte
	for _, v := range views {
		flat = append(flat, v...)
	}
	if string(flat) != "ello wor" {
		t.Fatalf("views = %q", flat)
	}
	if q.Len() != 10 {
		t.Fatal("AppendViews consumed bytes")
	}
	if got := q.AppendViews(nil, 100); func() int {
		n := 0
		for _, v := range got {
			n += len(v)
		}
		return n
	}() != 10 {
		t.Fatal("over-asking must clamp to buffered bytes")
	}
}
