package buffer

import (
	"sync"
	"sync/atomic"

	"flick/internal/value"
)

// Ref is a refcounted, pool-backed byte region: the unit of zero-copy
// ownership on the data path. Input tasks read network bytes into a Ref's
// buffer, the byte queue holds one reference per buffered chunk, and every
// decoded message whose field views alias the chunk holds another. The
// buffer returns to the pool only when the last reference is released, so
// views stay valid exactly as long as something can still read them.
//
// Sub-slicing is free: a view is an ordinary sub-slice of Bytes() and the
// Ref governs its lifetime. Ref headers themselves are recycled through a
// freelist, so the steady state allocates neither buffers nor headers.
type Ref struct {
	refs atomic.Int32
	pool *Pool
	buf  []byte
}

// refHdrs recycles Ref headers across all pools (headers carry their pool).
var refHdrs = sync.Pool{New: func() any { return new(Ref) }}

// GetRef returns a refcounted buffer of length n with one reference held by
// the caller.
func (p *Pool) GetRef(n int) *Ref {
	r := refHdrs.Get().(*Ref)
	r.pool = p
	r.buf = p.Get(n)
	r.refs.Store(1)
	p.refGets.Add(1)
	return r
}

// Bytes returns the region's backing slice. Callers may sub-slice freely;
// the returned memory is valid until the last reference is released.
func (r *Ref) Bytes() []byte { return r.buf }

// Len returns the region length in bytes.
func (r *Ref) Len() int { return len(r.buf) }

// Retain adds one reference.
func (r *Ref) Retain() { r.refs.Add(1) }

// Refs returns the current reference count (tests and diagnostics).
func (r *Ref) Refs() int32 { return r.refs.Load() }

// Release drops one reference. At zero the backing buffer returns to the
// pool and the header to the freelist. Releasing past zero panics: a double
// free would hand the same buffer to two owners.
func (r *Ref) Release() {
	n := r.refs.Add(-1)
	if n > 0 {
		return
	}
	if n < 0 {
		panic("buffer: Ref released after refcount reached zero")
	}
	p := r.pool
	buf := r.buf
	r.buf = nil
	r.pool = nil
	p.refPuts.Add(1)
	p.Put(buf[:cap(buf)])
	refHdrs.Put(r)
}

var _ value.Region = (*Ref)(nil)
