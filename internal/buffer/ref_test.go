package buffer

import (
	"bytes"
	"sync"
	"testing"
)

func TestRefLifecycle(t *testing.T) {
	p := NewPool(8)
	r := p.GetRef(100)
	if r.Refs() != 1 {
		t.Fatalf("fresh ref count = %d, want 1", r.Refs())
	}
	if len(r.Bytes()) != 100 {
		t.Fatalf("len = %d, want 100", len(r.Bytes()))
	}
	copy(r.Bytes(), bytes.Repeat([]byte{'x'}, 100))
	r.Retain()
	r.Release()
	if got := p.Stats().RefPuts; got != 0 {
		t.Fatalf("region recycled with a reference outstanding (refPuts=%d)", got)
	}
	r.Release()
	s := p.Stats()
	if s.RefGets != 1 || s.RefPuts != 1 {
		t.Fatalf("refGets/refPuts = %d/%d, want 1/1", s.RefGets, s.RefPuts)
	}
	// The buffer must be back on the freelist: the next Get of the class
	// must not miss.
	misses := p.Stats().Misses
	p.Get(100)
	if p.Stats().Misses != misses {
		t.Fatalf("released ref's buffer did not return to the pool")
	}
}

func TestRefDoubleReleasePanics(t *testing.T) {
	p := NewPool(8)
	r := p.GetRef(64)
	r.Release()
	defer func() {
		if recover() == nil {
			t.Fatalf("double release did not panic")
		}
	}()
	r.Release()
}

// TestRefStress hammers one region from many goroutines under -race: every
// goroutine retains, reads, and releases; the initial reference is dropped
// concurrently. The refcount must neither double-free (panic) nor leak (the
// pool must see exactly one recycled region).
func TestRefStress(t *testing.T) {
	const (
		goroutines = 16
		rounds     = 200
	)
	p := NewPool(64)
	for round := 0; round < rounds; round++ {
		r := p.GetRef(256)
		for i := range r.Bytes() {
			r.Bytes()[i] = byte(i)
		}
		var wg sync.WaitGroup
		for g := 0; g < goroutines; g++ {
			r.Retain()
			wg.Add(1)
			go func() {
				defer wg.Done()
				b := r.Bytes()
				if b[17] != 17 {
					t.Errorf("view corrupted while referenced")
				}
				r.Release()
			}()
		}
		r.Release() // drop the creator's reference concurrently
		wg.Wait()
	}
	s := p.Stats()
	if s.RefGets != rounds || s.RefPuts != rounds {
		t.Fatalf("refGets/refPuts = %d/%d, want %d/%d (leak or double free)",
			s.RefGets, s.RefPuts, rounds, rounds)
	}
}

func TestQueueAppendRefZeroCopy(t *testing.T) {
	p := NewPool(8)
	q := NewQueue(p)
	r := p.GetRef(64)
	copy(r.Bytes(), "hello, pooled world")
	q.AppendRef(r, 19)
	if q.Len() != 19 {
		t.Fatalf("len = %d, want 19", q.Len())
	}
	view, ref := q.TakeRef(19)
	if ref != r {
		t.Fatalf("TakeRef did not alias the appended chunk")
	}
	if &view[0] != &r.Bytes()[0] {
		t.Fatalf("view was copied, want alias of the pooled chunk")
	}
	if string(view) != "hello, pooled world" {
		t.Fatalf("view = %q", view)
	}
	// The queue dropped its chunk reference when the chunk was fully
	// consumed; the message's reference keeps the buffer alive.
	if ref.Refs() != 1 {
		t.Fatalf("refs = %d, want 1 (message only)", ref.Refs())
	}
	ref.Release()
	if p.Stats().RefPuts != 1 {
		t.Fatalf("chunk not recycled after last release")
	}
	if got, _ := p.Stats().Views, p.Stats().Coalesced; got != 1 {
		t.Fatalf("views = %d, want 1", got)
	}
}

func TestQueueTakeRefCoalescesAcrossChunks(t *testing.T) {
	p := NewPool(8)
	q := NewQueue(p)
	r1 := p.GetRef(64)
	copy(r1.Bytes(), "half-one|")
	q.AppendRef(r1, 9)
	r2 := p.GetRef(64)
	copy(r2.Bytes(), "half-two")
	q.AppendRef(r2, 8)

	view, ref := q.TakeRef(17)
	if string(view) != "half-one|half-two" {
		t.Fatalf("coalesced view = %q", view)
	}
	if ref == r1 || ref == r2 {
		t.Fatalf("span across chunks must coalesce into a fresh region")
	}
	if p.Stats().Coalesced != 1 {
		t.Fatalf("coalesced counter = %d, want 1", p.Stats().Coalesced)
	}
	ref.Release()
	if q.Len() != 0 {
		t.Fatalf("queue should be drained, len=%d", q.Len())
	}
}

func TestQueueTakeRefPartialChunkKeepsQueueReference(t *testing.T) {
	p := NewPool(8)
	q := NewQueue(p)
	r := p.GetRef(64)
	copy(r.Bytes(), "msg1msg2")
	q.AppendRef(r, 8)

	v1, ref1 := q.TakeRef(4)
	if string(v1) != "msg1" || ref1 != r {
		t.Fatalf("first view = %q (aliased=%v)", v1, ref1 == r)
	}
	// Queue still holds its chunk reference plus the message's.
	if r.Refs() != 2 {
		t.Fatalf("refs = %d, want 2", r.Refs())
	}
	v2, ref2 := q.TakeRef(4)
	if string(v2) != "msg2" || ref2 != r {
		t.Fatalf("second view = %q", v2)
	}
	// Chunk consumed: queue dropped its reference, two messages remain.
	if r.Refs() != 2 {
		t.Fatalf("refs = %d, want 2 (two live messages)", r.Refs())
	}
	ref1.Release()
	ref2.Release()
	if p.Stats().RefPuts != 1 {
		t.Fatalf("chunk not recycled after both messages released")
	}
}

// TestQueueAppendNeverExtendsRefChunks pins the AppendRef capacity clip: a
// producer that Retained the region may still own every byte past the
// appended prefix, so a later Append must start a fresh chunk rather than
// extend into the region's spare capacity.
func TestQueueAppendNeverExtendsRefChunks(t *testing.T) {
	p := NewPool(8)
	q := NewQueue(p)
	r := p.GetRef(64)
	copy(r.Bytes(), "prefix--PRODUCER-OWNED-TAIL.....")
	r.Retain() // producer keeps using the region past the prefix
	q.AppendRef(r, 8)
	q.Append([]byte("appended"))

	if got := string(r.Bytes()[8:24]); got != "PRODUCER-OWNED-T" {
		t.Fatalf("Append scribbled over the retained region: %q", got)
	}
	all := make([]byte, 16)
	if !q.ReadFull(all) || string(all) != "prefix--appended" {
		t.Fatalf("queue contents = %q, want %q", all, "prefix--appended")
	}
	r.Release()
}

// TestQueueAppendReadCompactsSmallReads pins the trickle guard: a short read
// is copied and its chunk released immediately instead of pinning the whole
// pooled region until consumed, while a bulk read still transfers the region
// by reference.
func TestQueueAppendReadCompactsSmallReads(t *testing.T) {
	p := NewPool(8)
	q := NewQueue(p)

	small := p.GetRef(64)
	copy(small.Bytes(), "tiny")
	q.AppendRead(small, 4) // 4 < 64/8: copied and released
	if p.Stats().RefPuts != 1 {
		t.Fatalf("small-read chunk not released (refPuts=%d)", p.Stats().RefPuts)
	}

	bulk := p.GetRef(64)
	copy(bulk.Bytes(), "0123456789abcdef")
	q.AppendRead(bulk, 16) // 16 >= 64/8: zero-copy hand-over
	q.Discard(4)
	view, ref := q.TakeRef(16)
	if ref != bulk || &view[0] != &bulk.Bytes()[0] {
		t.Fatalf("bulk read was copied, want zero-copy alias")
	}
	if string(view) != "0123456789abcdef" {
		t.Fatalf("bulk view = %q", view)
	}
	ref.Release()
}

func TestQueueResetReleasesChunks(t *testing.T) {
	p := NewPool(8)
	q := NewQueue(p)
	for i := 0; i < 3; i++ {
		r := p.GetRef(64)
		q.AppendRef(r, 64)
	}
	q.Reset()
	s := p.Stats()
	if s.RefPuts != 3 {
		t.Fatalf("refPuts = %d, want 3", s.RefPuts)
	}
}

func TestQueueMixedAppendAndPeekAt(t *testing.T) {
	p := NewPool(8)
	q := NewQueue(p)
	q.Append([]byte("abcdef"))
	r := p.GetRef(64)
	copy(r.Bytes(), "ghijkl")
	q.AppendRef(r, 6)
	q.Append([]byte("mnopqr"))

	got := make([]byte, 8)
	if n := q.PeekAt(got, 4); n != 8 {
		t.Fatalf("PeekAt copied %d, want 8", n)
	}
	if string(got) != "efghijkl" {
		t.Fatalf("PeekAt = %q, want %q", got, "efghijkl")
	}
	if q.Len() != 18 {
		t.Fatalf("len = %d, want 18", q.Len())
	}
	all := make([]byte, 18)
	q.ReadFull(all)
	if string(all) != "abcdefghijklmnopqr" {
		t.Fatalf("drain = %q", all)
	}
}

func TestScatterZeroCopyAndCopiedSegments(t *testing.T) {
	p := NewPool(8)
	sc := NewScatter(p)
	r := p.GetRef(64)
	copy(r.Bytes(), "RAWBYTES")
	sc.AppendRef(r.Bytes()[:8], r)
	sc.Append([]byte("copied-1"))
	sc.Append([]byte("copied-2"))
	if sc.Len() != 24 {
		t.Fatalf("len = %d, want 24", sc.Len())
	}
	// The copied segments coalesce into one tail-backed segment.
	if sc.Segments() != 2 {
		t.Fatalf("segments = %d, want 2", sc.Segments())
	}
	if &sc.Buffers()[0][0] != &r.Bytes()[0] {
		t.Fatalf("raw segment copied, want alias")
	}
	var out bytes.Buffer
	n, err := sc.WriteTo(&out)
	if err != nil || n != 24 {
		t.Fatalf("WriteTo = %d, %v", n, err)
	}
	if out.String() != "RAWBYTEScopied-1copied-2" {
		t.Fatalf("flushed = %q", out.String())
	}
	// Flush released the retained region reference.
	if r.Refs() != 1 {
		t.Fatalf("refs after flush = %d, want 1", r.Refs())
	}
	r.Release()
	if sc.Len() != 0 || sc.Segments() != 0 {
		t.Fatalf("scatter not reset after flush")
	}
}

func TestScatterLargeCopySplitsTails(t *testing.T) {
	p := NewPool(8)
	sc := NewScatter(p)
	big := bytes.Repeat([]byte{'z'}, scatterTail+1234)
	sc.Append(big)
	var out bytes.Buffer
	if _, err := sc.WriteTo(&out); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(out.Bytes(), big) {
		t.Fatalf("large copy corrupted (%d bytes out)", out.Len())
	}
}
