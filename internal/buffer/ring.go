package buffer

import (
	"errors"
	"io"
)

// Ring is a fixed-capacity single-producer/single-consumer byte ring buffer.
// It backs the send and receive windows of netstack connections. Methods are
// NOT safe for concurrent use by multiple producers or multiple consumers;
// one reader and one writer may operate concurrently only with external
// synchronisation (netstack wraps every ring in the connection lock).
type Ring struct {
	buf  []byte
	head int // read position
	tail int // write position
	size int // bytes currently stored
}

// ErrRingFull is returned by Write when no byte can be stored.
var ErrRingFull = errors.New("buffer: ring full")

// NewRing creates a ring with the given capacity (rounded up to a power of
// two, minimum 64).
func NewRing(capacity int) *Ring {
	c := 64
	for c < capacity {
		c <<= 1
	}
	return &Ring{buf: make([]byte, c)}
}

// NewRingBuf wraps a caller-supplied backing slice (length must be a power
// of two); the caller owns the slice's lifecycle, enabling pooled rings.
func NewRingBuf(buf []byte) *Ring {
	if len(buf) == 0 || len(buf)&(len(buf)-1) != 0 {
		return NewRing(len(buf))
	}
	return &Ring{buf: buf}
}

// Buf returns the backing slice (for return to a pool after the ring is no
// longer referenced).
func (r *Ring) Buf() []byte { return r.buf }

// Cap returns the ring capacity in bytes.
func (r *Ring) Cap() int { return len(r.buf) }

// Len returns the number of buffered bytes.
func (r *Ring) Len() int { return r.size }

// Free returns the number of bytes that can be written without blocking.
func (r *Ring) Free() int { return len(r.buf) - r.size }

// Write copies as much of p as fits and returns the number of bytes stored.
// It returns ErrRingFull when nothing could be stored and p is non-empty.
func (r *Ring) Write(p []byte) (int, error) {
	if len(p) == 0 {
		return 0, nil
	}
	free := r.Free()
	if free == 0 {
		return 0, ErrRingFull
	}
	n := len(p)
	if n > free {
		n = free
	}
	// First span: tail..end of buf.
	first := len(r.buf) - r.tail
	if first > n {
		first = n
	}
	copy(r.buf[r.tail:], p[:first])
	copy(r.buf, p[first:n])
	r.tail = (r.tail + n) & (len(r.buf) - 1)
	r.size += n
	return n, nil
}

// Read copies up to len(p) bytes out of the ring. It returns io.EOF only via
// higher layers; an empty ring reads 0, nil.
func (r *Ring) Read(p []byte) (int, error) {
	if r.size == 0 || len(p) == 0 {
		return 0, nil
	}
	n := len(p)
	if n > r.size {
		n = r.size
	}
	first := len(r.buf) - r.head
	if first > n {
		first = n
	}
	copy(p, r.buf[r.head:r.head+first])
	copy(p[first:], r.buf[:n-first])
	r.head = (r.head + n) & (len(r.buf) - 1)
	r.size -= n
	return n, nil
}

// Peek copies up to len(p) bytes without consuming them.
func (r *Ring) Peek(p []byte) int {
	if r.size == 0 || len(p) == 0 {
		return 0
	}
	n := len(p)
	if n > r.size {
		n = r.size
	}
	first := len(r.buf) - r.head
	if first > n {
		first = n
	}
	copy(p, r.buf[r.head:r.head+first])
	copy(p[first:], r.buf[:n-first])
	return n
}

// Discard drops up to n buffered bytes and reports how many were dropped.
func (r *Ring) Discard(n int) int {
	if n > r.size {
		n = r.size
	}
	r.head = (r.head + n) & (len(r.buf) - 1)
	r.size -= n
	return n
}

// Reset empties the ring.
func (r *Ring) Reset() {
	r.head, r.tail, r.size = 0, 0, 0
}

var _ io.ReadWriter = (*Ring)(nil)
