package buffer

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestRingBasic(t *testing.T) {
	r := NewRing(64)
	if r.Cap() != 64 {
		t.Fatalf("cap = %d", r.Cap())
	}
	n, err := r.Write([]byte("hello"))
	if err != nil || n != 5 {
		t.Fatalf("write = %d, %v", n, err)
	}
	if r.Len() != 5 || r.Free() != 59 {
		t.Fatalf("len=%d free=%d", r.Len(), r.Free())
	}
	out := make([]byte, 10)
	n, err = r.Read(out)
	if err != nil || n != 5 || string(out[:5]) != "hello" {
		t.Fatalf("read = %q (%d), %v", out[:n], n, err)
	}
	if r.Len() != 0 {
		t.Fatalf("len after drain = %d", r.Len())
	}
}

func TestRingWrap(t *testing.T) {
	r := NewRing(64)
	// Fill, drain half, fill again so writes wrap around the end.
	full := bytes.Repeat([]byte{1}, 64)
	if n, _ := r.Write(full); n != 64 {
		t.Fatalf("write full = %d", n)
	}
	out := make([]byte, 40)
	r.Read(out)
	second := bytes.Repeat([]byte{2}, 40)
	if n, _ := r.Write(second); n != 40 {
		t.Fatalf("wrap write = %d", n)
	}
	got := make([]byte, 64)
	n, _ := r.Read(got)
	if n != 64 {
		t.Fatalf("read = %d", n)
	}
	want := append(bytes.Repeat([]byte{1}, 24), bytes.Repeat([]byte{2}, 40)...)
	if !bytes.Equal(got, want) {
		t.Fatalf("wrap data mismatch")
	}
}

func TestRingFull(t *testing.T) {
	r := NewRing(64)
	r.Write(bytes.Repeat([]byte{0}, 64))
	if _, err := r.Write([]byte{1}); err != ErrRingFull {
		t.Fatalf("err = %v, want ErrRingFull", err)
	}
	// Partial write when some space remains.
	r.Discard(10)
	n, err := r.Write(bytes.Repeat([]byte{9}, 20))
	if err != nil || n != 10 {
		t.Fatalf("partial write = %d, %v", n, err)
	}
}

func TestRingPeekDoesNotConsume(t *testing.T) {
	r := NewRing(64)
	r.Write([]byte("abcdef"))
	p := make([]byte, 3)
	if n := r.Peek(p); n != 3 || string(p) != "abc" {
		t.Fatalf("peek = %q (%d)", p[:n], n)
	}
	if r.Len() != 6 {
		t.Fatalf("peek consumed: len = %d", r.Len())
	}
	got := make([]byte, 6)
	r.Read(got)
	if string(got) != "abcdef" {
		t.Fatalf("read after peek = %q", got)
	}
}

func TestRingDiscardAndReset(t *testing.T) {
	r := NewRing(64)
	r.Write([]byte("abcdef"))
	if n := r.Discard(2); n != 2 {
		t.Fatalf("discard = %d", n)
	}
	p := make([]byte, 4)
	r.Read(p)
	if string(p) != "cdef" {
		t.Fatalf("after discard read %q", p)
	}
	r.Write([]byte("x"))
	r.Reset()
	if r.Len() != 0 {
		t.Fatal("reset left data")
	}
}

func TestRingCapacityRounding(t *testing.T) {
	if c := NewRing(100).Cap(); c != 128 {
		t.Fatalf("cap = %d, want 128", c)
	}
	if c := NewRing(1).Cap(); c != 64 {
		t.Fatalf("cap = %d, want 64", c)
	}
}

// Property: any interleaving of writes and reads preserves the byte stream
// (FIFO order, no loss, no duplication).
func TestRingStreamProperty(t *testing.T) {
	f := func(seed int64, chunks []uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		r := NewRing(256)
		var wrote, readBack bytes.Buffer
		next := byte(0)
		for _, c := range chunks {
			if rng.Intn(2) == 0 {
				p := make([]byte, int(c)%97)
				for i := range p {
					p[i] = next
					next++
				}
				n, _ := r.Write(p)
				wrote.Write(p[:n])
				// bytes beyond n were never accepted: rewind generator
				next -= byte(len(p) - n)
			} else {
				p := make([]byte, int(c)%97)
				n, _ := r.Read(p)
				readBack.Write(p[:n])
			}
		}
		rest := make([]byte, r.Len())
		r.Read(rest)
		readBack.Write(rest)
		return bytes.Equal(wrote.Bytes(), readBack.Bytes())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
