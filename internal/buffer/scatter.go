package buffer

import (
	"io"
	"net"

	"flick/internal/value"
)

// Scatter is a pooled scatter/gather list for the zero-copy encode path.
// Encoders append wire bytes either by reference — a view into a message's
// pooled region, retained until the flush completes — or by copy into
// pooled tail buffers (for messages rebuilt from modified fields). Output
// tasks hand the accumulated segment list to one vectored write
// (net.Buffers / netstack.BatchWriter), so a burst of messages leaves in a
// single writev instead of one syscall per message.
//
// The segment, region and tail slices all keep their capacity across Reset,
// so the steady state allocates nothing.
type Scatter struct {
	pool    *Pool
	segs    [][]byte       // ordered wire segments
	regions []value.Region // retained regions, released on Reset
	tails   []*Ref         // owned pooled buffers backing copied segments
	tlen    int            // write offset into the last tail
	open    bool           // last segment aliases the last tail and may grow
	total   int
}

// scatterTail is the pooled tail buffer size; segments copied into tails
// split across buffers at this boundary.
const scatterTail = 32 << 10

// NewScatter creates a scatter list drawing tail buffers from pool (Global
// when nil).
func NewScatter(pool *Pool) *Scatter {
	if pool == nil {
		pool = Global
	}
	return &Scatter{pool: pool}
}

// Len returns the total buffered byte count.
func (s *Scatter) Len() int { return s.total }

// Segments returns the number of wire segments.
func (s *Scatter) Segments() int { return len(s.segs) }

// AppendRef appends b as a zero-copy segment backed by region. The region
// (nil for owned memory) is retained until Reset, keeping the view alive
// across the flush.
func (s *Scatter) AppendRef(b []byte, region value.Region) {
	if len(b) == 0 {
		return
	}
	s.open = false
	s.segs = append(s.segs, b)
	if region != nil {
		region.Retain()
		s.regions = append(s.regions, region)
	}
	s.total += len(b)
}

// Append copies p into pooled tail storage, extending the trailing segment
// when possible.
func (s *Scatter) Append(p []byte) {
	for len(p) > 0 {
		var tail *Ref
		if n := len(s.tails); n > 0 && s.tlen < s.tails[n-1].Len() {
			tail = s.tails[n-1]
		} else {
			tail = s.pool.GetRef(scatterTail)
			s.tails = append(s.tails, tail)
			s.tlen = 0
			s.open = false
		}
		buf := tail.Bytes()
		n := copy(buf[s.tlen:], p)
		if s.open {
			last := len(s.segs) - 1
			start := s.tlen - len(s.segs[last])
			s.segs[last] = buf[start : s.tlen+n]
		} else {
			s.segs = append(s.segs, buf[s.tlen:s.tlen+n])
			s.open = true
		}
		s.tlen += n
		s.total += n
		p = p[n:]
	}
}

// Buffers returns the segment list for a vectored write. The slice is owned
// by the Scatter and invalidated by Reset; net.Buffers-style writers may
// advance its elements in place.
func (s *Scatter) Buffers() [][]byte { return s.segs }

// WriteTo flushes every segment to w with a single vectored write where the
// writer supports it (net.Buffers maps to writev on kernel TCP connections)
// and resets the list, releasing retained regions and recycling tails.
func (s *Scatter) WriteTo(w io.Writer) (int64, error) {
	if s.total == 0 {
		return 0, nil
	}
	var (
		n   int64
		err error
	)
	if bw, ok := w.(batchWriter); ok {
		n, err = bw.WriteBatch(s.segs)
	} else {
		nb := net.Buffers(s.segs)
		n, err = nb.WriteTo(w)
	}
	s.Reset()
	return n, err
}

// batchWriter mirrors netstack.BatchWriter without importing it (netstack
// depends on buffer).
type batchWriter interface {
	WriteBatch(bufs [][]byte) (int64, error)
}

// Reset clears the list: retained regions are released, tail buffers return
// to the pool, and all slices keep their capacity for reuse.
func (s *Scatter) Reset() {
	for i := range s.regions {
		s.regions[i].Release()
		s.regions[i] = nil
	}
	for i := range s.tails {
		s.tails[i].Release()
		s.tails[i] = nil
	}
	for i := range s.segs {
		s.segs[i] = nil
	}
	s.segs = s.segs[:0]
	s.regions = s.regions[:0]
	s.tails = s.tails[:0]
	s.tlen = 0
	s.open = false
	s.total = 0
}
