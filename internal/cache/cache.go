// Package cache is the in-network response cache of the service graphs:
// retained zero-copy response views keyed by request key, served from
// worker-local shards on the hit path, with single-flight coalescing of
// concurrent misses (flight.go) and protocol adapters that decide what is
// cacheable (memcached.go, httpget.go).
//
// # Design
//
// The cache sits between a service's client-side decode and its backend
// dispatch: the core runtime classifies every decoded client request
// through the service's Protocol adapter and either serves a retained
// response view (hit), joins the key's in-flight fill (coalesced miss), or
// forwards upstream and captures the response on its way back (leading
// miss). One entry holds one admitted response's rendered wire image in a
// pooled buffer.Ref region, alongside the serving-time structures its
// protocol pre-rendered: a fixed-width Age patch zone, a synthesized
// validator-hit response (HTTP 304) and an upstream refresh request.
//
// Sharding mirrors the PR-5 upstream layer: one shard per scheduler
// worker, each holding a full replica of the key index (entries are
// shared; maps are per shard), so a hit takes only the executing worker's
// shard lock — uncontended against every other worker. Structural changes
// (fill, invalidate, evict, clear) are serialised by one structure lock
// and sweep all shards; they are miss-path events and orders of magnitude
// rarer than hits.
//
// The hit path performs zero heap allocations: the key lookup (including
// the Vary secondary-key fold) runs against a per-shard scratch buffer,
// the served view is a pooled record (value.RecordDesc.NewOwned) whose
// only populated field is the captured wire image — patched in a pooled
// copy when the image carries a correlation tag or Age zone, replayed by
// reference otherwise — and the output node's scatter encoder replays that
// image by reference (TestCacheHitZeroAlloc pins this, including the
// variant-hit and synthesized-304 paths).
//
// # Freshness
//
// Entries carry three deadlines derived from one admission: expires (the
// freshness lifetime — Config.TTL capped by the protocol's verdict, e.g.
// Cache-Control: max-age), stale (expires plus Config.StaleTTL for
// entries that can be revalidated) and birth (for the served Age).
// Between expires and stale the entry keeps serving — counted as
// stale_served — while the first lookup to observe expiry claims a
// background revalidation: a single-flight refresh built from the entry's
// pre-rendered conditional request. An upstream 304 extends the retained
// entry's freshness in place (revalidated); a 200 replaces it; a failed
// refresh leaves the stale entry serving until its hard deadline, so an
// origin outage degrades to bounded staleness instead of a miss storm.
// Past the hard deadline (or immediately at expiry for entries without a
// refresh request) expiry is structural, exactly as before: the lookup
// misses and the entry is removed so idle keys don't pin pooled bytes.
//
// Responses carrying Vary are admitted under a learned per-key vary rule:
// the response's named request headers are folded into a secondary key
// segment, so each header combination gets its own entry. The rule is
// replicated into every shard next to the key index, keeping the hit-path
// fold allocation-free.
//
// # Eviction
//
// Capacity eviction is segmented LRU: new entries enter a probation
// segment; an entry hit at least once after install earns promotion to a
// protected segment (capped at 80% of the byte budget, overflow demoting
// back to probation) the next time the eviction scan reaches it. The hit
// signal is one atomic counter per entry — the hit path never touches the
// structure lock — and promotion is applied lazily during eviction, so
// the policy stays deterministic for a given op order (the reference-model
// test relies on this). Scan-shaped traffic therefore can't flush the
// working set: one-touch entries die at probation's head while re-hit
// entries survive in protected.
//
// # Invalidation
//
// Write-through invalidation (memcached SET/DELETE, HTTP non-GET) removes
// the key's entries in every variant — including every Vary variant, via
// a per-base entry list — drops the learned vary rule, and kills the
// key's in-flight fills: their followers re-dispatch upstream instead of
// receiving the pre-write value. Invalidation fires when the write
// request is decoded — before the write reaches the backend — so a fill
// that *begins* after the invalidation can still race the write, capture
// the pre-write value, and serve it until its deadline: staleness past a
// write is bounded by the entry TTL (plus StaleTTL), not zero.
package cache

import (
	"sync"
	"sync/atomic"
	"time"

	"flick/internal/buffer"
	"flick/internal/metrics"
	"flick/internal/value"
)

// Defaults and bounds.
const (
	// DefaultTTL bounds entry staleness when the protocol imposes none.
	DefaultTTL = 5 * time.Second
	// DefaultMaxBytes bounds resident response bytes.
	DefaultMaxBytes = 64 << 20
	// MaxEntryBytes is the admission cap per response: bulk transfers are
	// not worth displacing a working set of small hot objects for.
	MaxEntryBytes = 1 << 20
	// DefaultNegativeTTL bounds negative entries (authoritative key-absence
	// responses): long enough to absorb a miss storm, short enough that a
	// racing out-of-band write surfaces quickly.
	DefaultNegativeTTL = time.Second
)

// varySep separates the base key from the folded Vary secondary segment.
// NUL can appear in no HTTP header value and no memcached key, so varied
// and unvaried keys can never collide.
const varySep = 0x00

// Eviction segments.
const (
	segProbation = iota
	segProtected
)

// Config configures a Cache.
type Config struct {
	// Proto classifies requests and responses (required).
	Proto Protocol
	// Workers is the shard count, normally the platform's scheduler
	// worker count so every worker owns an uncontended shard (<=0: 1).
	Workers int
	// TTL is the default entry lifetime (<=0: DefaultTTL).
	TTL time.Duration
	// MaxBytes bounds resident response bytes; segmented-LRU eviction
	// reclaims past it (<=0: DefaultMaxBytes).
	MaxBytes int64
	// StaleTTL extends serving past expiry: an expired entry that can be
	// revalidated keeps serving for this window while a background
	// single-flight refresh runs (<=0: disabled — entries die at expiry).
	StaleTTL time.Duration
	// NegativeTTL is the lifetime of negative entries (0:
	// DefaultNegativeTTL; <0: negative caching disabled).
	NegativeTTL time.Duration
}

// entry is one admitted response: a rendered wire image in a pooled
// region, shared by every shard's map. Structural membership (index,
// per-base list, segment lists, shard maps, resident-byte gauge) changes
// only under Cache.fmu; hits is the lone hit-path write, an atomic.
type entry struct {
	skey string // full owned key (vary secondary segment included)
	base string // variant-prefixed primary key (== skey when unvaried)

	raw     []byte // served response image (view into region)
	notmod  []byte // pre-rendered validator-hit response (nil: none)
	reval   []byte // pre-rendered upstream refresh request (nil: no SWR)
	etag    []byte // stored validators (views into region)
	lastMod []byte
	region  value.Region
	size    int64 // total pooled image bytes (raw + notmod + reval)

	tag      uint64 // correlation tag of the stored image (memcached opaque)
	hasTag   bool
	ageOff   int // Age digit zone offset inside raw (-1: none)
	negative bool

	born    int64 // install/extension stamp (UnixNano; Age base)
	expires int64 // freshness deadline
	stale   int64 // hard serve deadline (== expires without reval/StaleTTL)

	// hits counts lookups since install or last segment move: the lazy
	// promotion signal the eviction scan consumes. Atomic because shards
	// hit concurrently while fmu is not held.
	hits atomic.Uint32
	// revalidating marks a claimed background refresh (fmu), keeping the
	// stale window single-flight.
	revalidating bool

	seg        uint8
	prev, next *entry // segment list links (fmu)
}

// elist is one eviction segment: an intrusive doubly-linked list ordered
// oldest (head) to newest (tail).
type elist struct{ head, tail *entry }

func (l *elist) pushTail(e *entry) {
	e.prev, e.next = l.tail, nil
	if l.tail != nil {
		l.tail.next = e
	} else {
		l.head = e
	}
	l.tail = e
}

func (l *elist) unlink(e *entry) {
	if e.prev != nil {
		e.prev.next = e.next
	} else {
		l.head = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	} else {
		l.tail = e.prev
	}
	e.prev, e.next = nil, nil
}

// shard is one worker's replica of the key index and the vary-rule table.
// The hit path takes only its home shard's lock; kbuf is the lock-guarded
// scratch the prefixed lookup key is assembled in (no allocation: map
// lookups through a []byte→string conversion in index position don't
// copy).
type shard struct {
	mu   sync.Mutex
	m    map[string]*entry
	vary map[string]string // base key → learned vary rule
	kbuf []byte
}

// Cache is a sharded single-flight response cache. Create with New.
type Cache struct {
	proto    Protocol
	ttl      time.Duration
	staleTTL time.Duration
	negTTL   time.Duration
	maxBytes int64
	shards   []shard

	// fmu serialises structural state: the entry index, per-base lists,
	// segment lists, vary rules, the in-flight fill table and the closed
	// flag. Lock order is fmu → shard.mu; the hit path takes a shard lock
	// only.
	fmu     sync.Mutex
	index   map[string]*entry
	byBase  map[string][]*entry // variants sharing a base key
	varies  map[string]string   // canonical vary rules (shards replicate)
	flights map[string]*Flight
	prob    elist // probation segment (new entries)
	prot    elist // protected segment (re-hit entries)
	closed  bool

	resident  int64 // bytes held by live entries (fmu)
	protBytes int64 // bytes held by the protected segment (fmu)

	hits          metrics.Counter
	misses        metrics.Counter
	coalesced     metrics.Counter
	fills         metrics.Counter
	evictions     metrics.Counter
	invalidations metrics.Counter
	expired       metrics.Counter
	aborts        metrics.Counter
	revalidated   metrics.Counter // upstream 304s that extended an entry
	staleServed   metrics.Counter // hits served past expires (SWR window)
	variants      metrics.Counter // installs under a Vary secondary key
	negHits       metrics.Counter // hits served from negative entries

	// Latency dimensions of the live pipeline. hitLat is sharded like the
	// key index — the hit path records into the executing worker's shard,
	// staying wait-free and allocation-free. missLat (Begin → Fill, the
	// upstream round trip a leading miss or background refresh pays) and
	// coalLat (Begin → waiter delivery, what a coalesced request waited)
	// are plain histograms: misses are orders of magnitude rarer than
	// hits, so cross-worker cache-line sharing on their atomics is noise
	// next to the round trip.
	hitLat  *metrics.ShardedHistogram
	missLat metrics.Histogram
	coalLat metrics.Histogram

	// now is the clock (tests override).
	now func() int64
}

// New creates a cache.
func New(cfg Config) *Cache {
	if cfg.Proto == nil {
		panic("cache: Config.Proto is required")
	}
	workers := cfg.Workers
	if workers <= 0 {
		workers = 1
	}
	ttl := cfg.TTL
	if ttl <= 0 {
		ttl = DefaultTTL
	}
	maxBytes := cfg.MaxBytes
	if maxBytes <= 0 {
		maxBytes = DefaultMaxBytes
	}
	staleTTL := cfg.StaleTTL
	if staleTTL < 0 {
		staleTTL = 0
	}
	negTTL := cfg.NegativeTTL
	if negTTL == 0 {
		negTTL = DefaultNegativeTTL
	} else if negTTL < 0 {
		negTTL = 0
	}
	c := &Cache{
		proto:    cfg.Proto,
		ttl:      ttl,
		staleTTL: staleTTL,
		negTTL:   negTTL,
		maxBytes: maxBytes,
		shards:   make([]shard, workers),
		index:    map[string]*entry{},
		byBase:   map[string][]*entry{},
		varies:   map[string]string{},
		flights:  map[string]*Flight{},
		hitLat:   metrics.NewShardedHistogram(workers),
		now:      func() int64 { return time.Now().UnixNano() },
	}
	for i := range c.shards {
		c.shards[i].m = map[string]*entry{}
		c.shards[i].vary = map[string]string{}
	}
	return c
}

// Proto returns the cache's protocol adapter.
func (c *Cache) Proto() Protocol { return c.proto }

// appendSKey renders the composite cache key into dst: the variant byte,
// then the scope (when present) separated from the key by '\n' — a byte
// that can appear in neither an HTTP header value nor a memcached key, so
// scoped and unscoped keys can never collide.
func appendSKey(dst []byte, variant byte, scope, key []byte) []byte {
	dst = append(dst, variant)
	if len(scope) > 0 {
		dst = append(dst, scope...)
		dst = append(dst, '\n')
	}
	return append(dst, key...)
}

// Get serves a hit for a ClassLookup or ClassCond request from worker's
// shard, returning a self-contained response view (the caller owns one
// reference), whether an entry was found, and — when the entry is serving
// stale — the claimed background revalidation the caller must dispatch
// upstream (nil when another lookup already claimed it). A ClassCond
// request whose validators match the entry's receives the pre-rendered 304
// instead of the body. The miss path (including lazy expiry) is counted
// here; callers follow a miss with Begin (ClassLookup) or forward
// untracked (ClassCond).
func (c *Cache) Get(worker int, info ReqInfo) (value.Value, bool, *Reval) {
	start := metrics.Now()
	sh := &c.shards[worker%len(c.shards)]
	sh.mu.Lock()
	sh.kbuf = appendSKey(sh.kbuf[:0], info.Variant, info.Scope, info.Key)
	if len(sh.vary) > 0 {
		if rule, ok := sh.vary[string(sh.kbuf)]; ok {
			sh.kbuf = append(sh.kbuf, varySep)
			sh.kbuf = c.proto.SecondaryKey(sh.kbuf, info.Msg, rule)
		}
	}
	e := sh.m[string(sh.kbuf)]
	if e == nil {
		sh.mu.Unlock()
		c.misses.Inc()
		return value.Null, false, nil
	}
	now := c.now()
	stale := now > e.expires
	if stale && (now > e.stale || len(e.reval) == 0) {
		// Hard expiry: remove the entry structurally so an idle key
		// doesn't pin its pooled bytes (and the resident gauge) until a
		// refill or capacity eviction. Lock order is fmu → shard.mu, so
		// drop the shard lock first and re-check identity under fmu — a
		// racing removal or refill leaves e unindexed.
		sh.mu.Unlock()
		c.fmu.Lock()
		if c.index[e.skey] == e {
			c.removeLocked(e)
		}
		c.fmu.Unlock()
		c.expired.Inc()
		c.misses.Inc()
		return value.Null, false, nil
	}
	e.hits.Add(1)
	// Build the view under the shard lock: a concurrent eviction releases
	// the entry's region only after sweeping every shard, so holding this
	// shard's lock keeps the entry's bytes alive for the duration.
	h := Hit{Tag: info.Tag, HasTag: info.HasTag, AgeOff: -1}
	if (len(info.IfNoneMatch) > 0 || len(info.IfModifiedSince) > 0) &&
		len(e.notmod) > 0 && validatorHit(e, info) {
		h.Raw, h.Region = e.notmod, e.region
	} else {
		h.Raw, h.Region, h.AgeOff = e.raw, e.region, e.ageOff
		h.AgeSecs = (now - e.born) / int64(time.Second)
	}
	view := c.proto.MakeHit(h)
	negative := e.negative
	sh.mu.Unlock()
	c.hits.Inc()
	if negative {
		c.negHits.Inc()
	}
	var rv *Reval
	if stale {
		c.staleServed.Inc()
		rv = c.claimReval(e)
	}
	c.hitLat.Record(worker, time.Duration(metrics.Now()-start))
	return view, true, rv
}

// validatorHit reports whether a conditional request's validators match
// the entry's: If-None-Match wins when present (weak comparison, per RFC
// 9110 §13.1.2); If-Modified-Since falls back to byte equality against the
// stored Last-Modified — deliberately conservative (no date parsing on the
// hit path): a differently-rendered but equal date refetches, it never
// serves a wrong 304.
func validatorHit(e *entry, info ReqInfo) bool {
	if len(info.IfNoneMatch) > 0 {
		return len(e.etag) > 0 && etagMatch(info.IfNoneMatch, e.etag)
	}
	return len(e.lastMod) > 0 && bytesEqualTrim(info.IfModifiedSince, e.lastMod)
}

// HitLatency returns the in-cache serve-time histogram of the hit path
// (lookup entry → view built) — not the client-observed latency, which
// additionally includes decode and flush batching.
func (c *Cache) HitLatency() *metrics.ShardedHistogram { return c.hitLat }

// MissLatency returns the leading-miss histogram: Begin (miss classified)
// → Fill (upstream response resolved the flight). Background refreshes
// record here too; aborted flights record nothing.
func (c *Cache) MissLatency() *metrics.Histogram { return &c.missLat }

// CoalescedLatency returns the coalesced-wait histogram: Begin (joined an
// in-flight fill) → waiter delivery. Aborted waiters record nothing.
func (c *Cache) CoalescedLatency() *metrics.Histogram { return &c.coalLat }

// Invalidate removes the scoped key's entries (every protocol variant,
// every Vary variant), drops the key's learned vary rules, and kills the
// key's in-flight fills: their followers re-dispatch upstream, so a fill
// already in flight can never reinstate the pre-write response. A fill
// that begins after this call can still race the write to the backend —
// see the package doc's bounded-staleness note.
func (c *Cache) Invalidate(scope, key []byte) {
	if len(key) == 0 {
		return
	}
	var orphans []Waiter
	var reqs []value.Value
	c.fmu.Lock()
	touched := false
	for _, v := range c.proto.Variants() {
		base := string(appendSKey(nil, v, scope, key))
		for len(c.byBase[base]) > 0 {
			c.removeLocked(c.byBase[base][0])
			touched = true
		}
		c.setVaryRuleLocked(base, "")
		for skey, f := range c.flights {
			if f.base != base {
				continue
			}
			delete(c.flights, skey)
			orphans = append(orphans, f.waiters...)
			f.waiters = nil
			if !f.req.IsNull() {
				reqs = append(reqs, f.req)
				f.req = value.Null
			}
			touched = true
		}
	}
	if touched {
		c.invalidations.Inc()
	}
	c.fmu.Unlock()
	for _, r := range reqs {
		r.Release()
	}
	c.abortWaiters(orphans)
}

// Clear removes every entry, every learned vary rule and kills every
// in-flight fill (memcached flush_all; Close).
func (c *Cache) Clear() {
	var orphans []Waiter
	var reqs []value.Value
	c.fmu.Lock()
	for c.prob.head != nil {
		c.removeLocked(c.prob.head)
	}
	for c.prot.head != nil {
		c.removeLocked(c.prot.head)
	}
	for base := range c.varies {
		c.setVaryRuleLocked(base, "")
	}
	for skey, f := range c.flights {
		delete(c.flights, skey)
		orphans = append(orphans, f.waiters...)
		f.waiters = nil
		if !f.req.IsNull() {
			reqs = append(reqs, f.req)
			f.req = value.Null
		}
	}
	c.invalidations.Inc()
	c.fmu.Unlock()
	for _, r := range reqs {
		r.Release()
	}
	c.abortWaiters(orphans)
}

// Close clears the cache and stops admitting: subsequent Begin calls
// return no flight (callers forward upstream untracked) and fills are
// dropped. Close releases every retained region and request, restoring
// pool ref-balance (refgets == refputs) for teardown assertions.
func (c *Cache) Close() {
	c.fmu.Lock()
	c.closed = true
	c.fmu.Unlock()
	c.Clear()
}

// setVaryRuleLocked updates the canonical vary rule for a base key and
// replicates it into every shard ("" deletes). fmu held; takes shard
// locks, honouring the fmu → shard.mu order.
func (c *Cache) setVaryRuleLocked(base, rule string) {
	cur, had := c.varies[base]
	if (!had && rule == "") || (had && cur == rule) {
		return
	}
	if rule == "" {
		delete(c.varies, base)
	} else {
		c.varies[base] = rule
	}
	for i := range c.shards {
		sh := &c.shards[i]
		sh.mu.Lock()
		if rule == "" {
			delete(sh.vary, base)
		} else {
			sh.vary[base] = rule
		}
		sh.mu.Unlock()
	}
}

// install links a filled entry (fmu held): replaces the key's previous
// entry, replicates into every shard map, enters probation and runs the
// eviction scan past the byte budget.
func (c *Cache) install(e *entry) {
	if old := c.index[e.skey]; old != nil {
		c.removeLocked(old)
	}
	c.index[e.skey] = e
	c.byBase[e.base] = append(c.byBase[e.base], e)
	for i := range c.shards {
		sh := &c.shards[i]
		sh.mu.Lock()
		sh.m[e.skey] = e
		sh.mu.Unlock()
	}
	e.seg = segProbation
	c.prob.pushTail(e)
	c.resident += e.size
	if e.skey != e.base {
		c.variants.Inc()
	}
	c.evictLocked(e)
}

// evictLocked reclaims bytes past the budget (fmu held), never evicting
// keep (the just-installed entry). Segmented LRU with lazy promotion: the
// scan walks probation oldest-first — an entry hit since install earns
// promotion to protected (the "second hit" signal, applied here rather
// than on the hit path so hits stay wait-free), an unhit entry is evicted.
// Protected is capped at 80% of the budget; overflow demotes its oldest
// back to probation's tail with the hit signal cleared, so every scan step
// either frees bytes or moves a cleared entry behind the scan point —
// progress is bounded by concurrent re-hits, which arrive at most once per
// lookup.
func (c *Cache) evictLocked(keep *entry) {
	protCap := c.maxBytes - c.maxBytes/5
	for c.resident > c.maxBytes {
		v := c.prob.head
		if v == nil {
			v = c.prot.head
		}
		if v == nil || v == keep {
			return
		}
		if v.seg == segProbation && v.hits.Load() != 0 {
			v.hits.Store(0)
			c.prob.unlink(v)
			v.seg = segProtected
			c.prot.pushTail(v)
			c.protBytes += v.size
			for c.protBytes > protCap {
				d := c.prot.head
				if d == nil || d == keep {
					break
				}
				d.hits.Store(0)
				c.prot.unlink(d)
				d.seg = segProbation
				c.protBytes -= d.size
				c.prob.pushTail(d)
			}
			continue
		}
		c.removeLocked(v)
		c.evictions.Inc()
	}
}

// removeLocked unlinks an entry from the index, the per-base list, every
// shard and its segment list, then releases its region (fmu held). The
// release happens only after sweeping all shard locks, so a hit holding
// its shard's lock can never observe recycled bytes.
func (c *Cache) removeLocked(e *entry) {
	delete(c.index, e.skey)
	bb := c.byBase[e.base]
	for i, x := range bb {
		if x == e {
			bb[i] = bb[len(bb)-1]
			bb = bb[:len(bb)-1]
			break
		}
	}
	if len(bb) == 0 {
		delete(c.byBase, e.base)
	} else {
		c.byBase[e.base] = bb
	}
	for i := range c.shards {
		sh := &c.shards[i]
		sh.mu.Lock()
		if sh.m[e.skey] == e {
			delete(sh.m, e.skey)
		}
		sh.mu.Unlock()
	}
	if e.seg == segProtected {
		c.prot.unlink(e)
		c.protBytes -= e.size
	} else {
		c.prob.unlink(e)
	}
	c.resident -= e.size
	e.region.Release()
}

// newEntry copies a rendered store image into a pooled region and wires
// the entry's serving-time views from the StoreInfo offsets (fmu held by
// the caller; the copy itself is lock-free).
func (c *Cache) newEntry(skey, base string, img []byte, si StoreInfo, ri RespInfo) *entry {
	ref := buffer.Global.GetRef(len(img))
	b := ref.Bytes()[:len(img)]
	copy(b, img)
	ttl := c.ttl
	if ri.Negative {
		ttl = c.negTTL
	}
	if ri.TTL > 0 && ri.TTL < ttl {
		ttl = ri.TTL
	}
	now := c.now()
	e := &entry{
		skey:     skey,
		base:     base,
		raw:      b[:si.ImageLen],
		region:   ref,
		size:     int64(len(img)),
		tag:      ri.Tag,
		hasTag:   ri.HasTag,
		ageOff:   si.AgeOff,
		negative: ri.Negative,
		born:     now,
		expires:  now + int64(ttl),
	}
	if si.NotModLen > 0 {
		e.notmod = b[si.NotModOff : si.NotModOff+si.NotModLen]
	}
	if si.RevalLen > 0 {
		e.reval = b[si.RevalOff : si.RevalOff+si.RevalLen]
	}
	if si.ETagLen > 0 {
		e.etag = b[si.ETagOff : si.ETagOff+si.ETagLen]
	}
	if si.LastModLen > 0 {
		e.lastMod = b[si.LastModOff : si.LastModOff+si.LastModLen]
	}
	e.stale = e.expires
	if len(e.reval) > 0 && c.staleTTL > 0 && !ri.Negative {
		e.stale += int64(c.staleTTL)
	}
	return e
}

// extendLocked re-arms a revalidated entry's deadlines after an upstream
// 304 (fmu held): Age restarts from the validation instant per RFC 9111
// §4.2.3, freshness gets a fresh TTL (capped by the 304's own max-age when
// present).
func (c *Cache) extendLocked(e *entry, ri RespInfo) {
	ttl := c.ttl
	if ri.TTL > 0 && ri.TTL < ttl {
		ttl = ri.TTL
	}
	now := c.now()
	e.born = now
	e.expires = now + int64(ttl)
	e.stale = e.expires
	if len(e.reval) > 0 && c.staleTTL > 0 {
		e.stale += int64(c.staleTTL)
	}
}

// Counters snapshots the cache's counters (registered as "cache" in the
// admin /counters registry; see PERFORMANCE.md for reading them).
func (c *Cache) Counters() metrics.CounterSet {
	return metrics.NewCounterSet(
		"hits", c.hits.Value(),
		"misses", c.misses.Value(),
		"coalesced", c.coalesced.Value(),
		"fills", c.fills.Value(),
		"evictions", c.evictions.Value(),
		"invalidations", c.invalidations.Value(),
		"expired", c.expired.Value(),
		"aborts", c.aborts.Value(),
		"revalidated", c.revalidated.Value(),
		"stale_served", c.staleServed.Value(),
		"variants", c.variants.Value(),
		"neg_hits", c.negHits.Value(),
		"bytes", uint64(c.BytesResident()),
	)
}

// BytesResident returns the bytes currently held by live entries.
func (c *Cache) BytesResident() int64 {
	c.fmu.Lock()
	n := c.resident
	c.fmu.Unlock()
	return n
}

// HitRatio returns hits/(hits+misses) over the cache's lifetime (0 before
// any lookup).
func (c *Cache) HitRatio() float64 {
	h, m := c.hits.Value(), c.misses.Value()
	if h+m == 0 {
		return 0
	}
	return float64(h) / float64(h+m)
}

// Len returns the number of live entries (tests and diagnostics).
func (c *Cache) Len() int {
	c.fmu.Lock()
	n := len(c.index)
	c.fmu.Unlock()
	return n
}
