// Package cache is the in-network response cache of the service graphs:
// retained zero-copy response views keyed by request key, served from
// worker-local shards on the hit path, with single-flight coalescing of
// concurrent misses (flight.go) and protocol adapters that decide what is
// cacheable (memcached.go, httpget.go).
//
// # Design
//
// The cache sits between a service's client-side decode and its backend
// dispatch: the core runtime classifies every decoded client request
// through the service's Protocol adapter and either serves a retained
// response view (hit), joins the key's in-flight fill (coalesced miss), or
// forwards upstream and captures the response on its way back (leading
// miss). One entry holds one admitted response's verbatim wire image in a
// pooled buffer.Ref region.
//
// Sharding mirrors the PR-5 upstream layer: one shard per scheduler
// worker, each holding a full replica of the key index (entries are
// shared; maps are per shard), so a hit takes only the executing worker's
// shard lock — uncontended against every other worker. Structural changes
// (fill, invalidate, evict, clear) are serialised by one structure lock
// and sweep all shards; they are miss-path events and orders of magnitude
// rarer than hits.
//
// The hit path performs zero heap allocations: the key lookup runs
// against a per-shard scratch buffer, the served view is a pooled record
// (value.RecordDesc.NewOwned) whose only populated field is the captured
// wire image, and the output node's scatter encoder replays that image
// by reference (TestCacheHitZeroAlloc pins this).
//
// # Expiry and invalidation
//
// Entries carry an absolute deadline (Config.TTL, capped per entry by the
// protocol's admission verdict, e.g. Cache-Control: max-age). Expiry is
// lazy: the first lookup past the deadline misses and removes the entry
// structurally (index, every shard, eviction order, byte gauge), so idle
// expired keys don't pin pooled bytes until a refill or capacity
// eviction. Write-through invalidation (memcached SET/DELETE, HTTP
// non-GET) removes the key's entries in every variant and kills the key's
// in-flight fills: their followers re-dispatch upstream instead of
// receiving the pre-write value.
//
// Invalidation fires when the write request is decoded — before the write
// reaches the backend. That kills every fill in flight at that moment,
// but a fill that *begins* after the invalidation can still race the
// write to the backend, capture the pre-write value, and serve it until
// its deadline: staleness past a write is bounded by the entry TTL, not
// zero. Workloads that need read-your-write through the proxy must size
// TTL accordingly.
package cache

import (
	"sync"
	"time"

	"flick/internal/buffer"
	"flick/internal/metrics"
	"flick/internal/value"
)

// Defaults and bounds.
const (
	// DefaultTTL bounds entry staleness when the protocol imposes none.
	DefaultTTL = 5 * time.Second
	// DefaultMaxBytes bounds resident response bytes.
	DefaultMaxBytes = 64 << 20
	// MaxEntryBytes is the admission cap per response: bulk transfers are
	// not worth displacing a working set of small hot objects for.
	MaxEntryBytes = 1 << 20
)

// Config configures a Cache.
type Config struct {
	// Proto classifies requests and responses (required).
	Proto Protocol
	// Workers is the shard count, normally the platform's scheduler
	// worker count so every worker owns an uncontended shard (<=0: 1).
	Workers int
	// TTL is the default entry lifetime (<=0: DefaultTTL).
	TTL time.Duration
	// MaxBytes bounds resident response bytes; the oldest entries are
	// evicted past it (<=0: DefaultMaxBytes).
	MaxBytes int64
}

// entry is one admitted response: a verbatim wire image in a pooled
// region, shared by every shard's map. Structural membership (index, order
// list, shard maps, resident-byte gauge) changes only under Cache.fmu.
type entry struct {
	skey    string // variant-prefixed owned key
	raw     []byte // response wire image (view into region)
	region  value.Region
	tag     uint64 // correlation tag of the stored image (memcached opaque)
	hasTag  bool
	expires int64 // UnixNano deadline

	prev, next *entry // insertion-order eviction list
}

// shard is one worker's replica of the key index. The hit path takes only
// its home shard's lock; kbuf is the lock-guarded scratch the prefixed
// lookup key is assembled in (no allocation: map lookups through a
// []byte→string conversion in index position don't copy).
type shard struct {
	mu   sync.Mutex
	m    map[string]*entry
	kbuf []byte
}

// Cache is a sharded single-flight response cache. Create with New.
type Cache struct {
	proto    Protocol
	ttl      time.Duration
	maxBytes int64
	shards   []shard

	// fmu serialises structural state: the entry index and order list,
	// the in-flight fill table and the closed flag. Lock order is fmu →
	// shard.mu; the hit path takes a shard lock only.
	fmu     sync.Mutex
	index   map[string]*entry
	flights map[string]*Flight
	head    *entry // oldest
	tail    *entry // newest
	closed  bool

	resident int64 // bytes held by live entries (fmu)

	hits          metrics.Counter
	misses        metrics.Counter
	coalesced     metrics.Counter
	fills         metrics.Counter
	evictions     metrics.Counter
	invalidations metrics.Counter
	expired       metrics.Counter
	aborts        metrics.Counter

	// Latency dimensions of the live pipeline. hitLat is sharded like the
	// key index — the hit path records into the executing worker's shard,
	// staying wait-free and allocation-free. missLat (Begin → Fill, the
	// upstream round trip a leading miss pays) and coalLat (Begin → waiter
	// delivery, what a coalesced request waited) are plain histograms:
	// misses are orders of magnitude rarer than hits, so cross-worker
	// cache-line sharing on their atomics is noise next to the round trip.
	hitLat  *metrics.ShardedHistogram
	missLat metrics.Histogram
	coalLat metrics.Histogram

	// now is the clock (tests override).
	now func() int64
}

// New creates a cache.
func New(cfg Config) *Cache {
	if cfg.Proto == nil {
		panic("cache: Config.Proto is required")
	}
	workers := cfg.Workers
	if workers <= 0 {
		workers = 1
	}
	ttl := cfg.TTL
	if ttl <= 0 {
		ttl = DefaultTTL
	}
	maxBytes := cfg.MaxBytes
	if maxBytes <= 0 {
		maxBytes = DefaultMaxBytes
	}
	c := &Cache{
		proto:    cfg.Proto,
		ttl:      ttl,
		maxBytes: maxBytes,
		shards:   make([]shard, workers),
		index:    map[string]*entry{},
		flights:  map[string]*Flight{},
		hitLat:   metrics.NewShardedHistogram(workers),
		now:      func() int64 { return time.Now().UnixNano() },
	}
	for i := range c.shards {
		c.shards[i].m = map[string]*entry{}
	}
	return c
}

// Proto returns the cache's protocol adapter.
func (c *Cache) Proto() Protocol { return c.proto }

// appendSKey renders the composite cache key into dst: the variant byte,
// then the scope (when present) separated from the key by '\n' — a byte
// that can appear in neither an HTTP header value nor a memcached key, so
// scoped and unscoped keys can never collide.
func appendSKey(dst []byte, variant byte, scope, key []byte) []byte {
	dst = append(dst, variant)
	if len(scope) > 0 {
		dst = append(dst, scope...)
		dst = append(dst, '\n')
	}
	return append(dst, key...)
}

// Get serves a hit for a ClassLookup request from worker's shard,
// returning a self-contained response view (the caller owns one reference)
// and whether an entry was found. The miss path (including lazy expiry) is
// counted here; callers follow a miss with Begin.
func (c *Cache) Get(worker int, info ReqInfo) (value.Value, bool) {
	start := metrics.Now()
	sh := &c.shards[worker%len(c.shards)]
	sh.mu.Lock()
	sh.kbuf = appendSKey(sh.kbuf[:0], info.Variant, info.Scope, info.Key)
	e := sh.m[string(sh.kbuf)]
	if e == nil {
		sh.mu.Unlock()
		c.misses.Inc()
		return value.Null, false
	}
	if c.now() > e.expires {
		// Observed expiry: remove the entry structurally so an idle key
		// doesn't pin its pooled bytes (and the resident gauge) until a
		// refill or capacity eviction. Lock order is fmu → shard.mu, so
		// drop the shard lock first and re-check identity under fmu — a
		// racing removal or refill leaves e unindexed.
		sh.mu.Unlock()
		c.fmu.Lock()
		if c.index[e.skey] == e {
			c.removeLocked(e)
		}
		c.fmu.Unlock()
		c.expired.Inc()
		c.misses.Inc()
		return value.Null, false
	}
	// Build the view under the shard lock: a concurrent eviction releases
	// the entry's region only after sweeping every shard, so holding this
	// shard's lock keeps e.raw alive for the duration.
	view := c.proto.MakeHit(e.raw, e.region, info.Tag, info.HasTag)
	sh.mu.Unlock()
	c.hits.Inc()
	c.hitLat.Record(worker, time.Duration(metrics.Now()-start))
	return view, true
}

// HitLatency returns the in-cache serve-time histogram of the hit path
// (lookup entry → view built) — not the client-observed latency, which
// additionally includes decode and flush batching.
func (c *Cache) HitLatency() *metrics.ShardedHistogram { return c.hitLat }

// MissLatency returns the leading-miss histogram: Begin (miss classified)
// → Fill (upstream response resolved the flight). Aborted flights record
// nothing.
func (c *Cache) MissLatency() *metrics.Histogram { return &c.missLat }

// CoalescedLatency returns the coalesced-wait histogram: Begin (joined an
// in-flight fill) → waiter delivery. Aborted waiters record nothing.
func (c *Cache) CoalescedLatency() *metrics.Histogram { return &c.coalLat }

// Invalidate removes the scoped key's entries (every protocol variant)
// and kills the key's in-flight fills: their followers re-dispatch
// upstream, so a fill already in flight can never reinstate the pre-write
// response. A fill that begins after this call can still race the write
// to the backend — see the package doc's bounded-staleness note.
func (c *Cache) Invalidate(scope, key []byte) {
	if len(key) == 0 {
		return
	}
	var orphans []Waiter
	c.fmu.Lock()
	touched := false
	for _, v := range c.proto.Variants() {
		skey := string(appendSKey(nil, v, scope, key))
		if e := c.index[skey]; e != nil {
			c.removeLocked(e)
			touched = true
		}
		if f := c.flights[skey]; f != nil {
			delete(c.flights, skey)
			orphans = append(orphans, f.waiters...)
			f.waiters = nil
			touched = true
		}
	}
	if touched {
		c.invalidations.Inc()
	}
	c.fmu.Unlock()
	c.abortWaiters(orphans)
}

// Clear removes every entry and kills every in-flight fill (memcached
// flush_all; Close).
func (c *Cache) Clear() {
	var orphans []Waiter
	c.fmu.Lock()
	for c.head != nil {
		c.removeLocked(c.head)
	}
	if len(c.flights) > 0 {
		for skey, f := range c.flights {
			delete(c.flights, skey)
			orphans = append(orphans, f.waiters...)
			f.waiters = nil
		}
	}
	c.invalidations.Inc()
	c.fmu.Unlock()
	c.abortWaiters(orphans)
}

// Close clears the cache and stops admitting: subsequent Begin calls
// return no flight (callers forward upstream untracked) and fills are
// dropped. Close releases every retained region, restoring pool
// ref-balance (refgets == refputs) for teardown assertions.
func (c *Cache) Close() {
	c.fmu.Lock()
	c.closed = true
	c.fmu.Unlock()
	c.Clear()
}

// install links a filled entry (fmu held): replaces the key's previous
// entry, replicates into every shard map, appends to the eviction order
// and evicts the oldest entries past the byte budget.
func (c *Cache) install(e *entry) {
	if old := c.index[e.skey]; old != nil {
		c.removeLocked(old)
	}
	c.index[e.skey] = e
	for i := range c.shards {
		sh := &c.shards[i]
		sh.mu.Lock()
		sh.m[e.skey] = e
		sh.mu.Unlock()
	}
	e.prev = c.tail
	if c.tail != nil {
		c.tail.next = e
	} else {
		c.head = e
	}
	c.tail = e
	c.resident += int64(len(e.raw))
	for c.resident > c.maxBytes && c.head != nil && c.head != e {
		c.removeLocked(c.head)
		c.evictions.Inc()
	}
}

// removeLocked unlinks an entry from the index, every shard and the order
// list, then releases its region (fmu held). The release happens only
// after sweeping all shard locks, so a hit holding its shard's lock can
// never observe recycled bytes.
func (c *Cache) removeLocked(e *entry) {
	delete(c.index, e.skey)
	for i := range c.shards {
		sh := &c.shards[i]
		sh.mu.Lock()
		if sh.m[e.skey] == e {
			delete(sh.m, e.skey)
		}
		sh.mu.Unlock()
	}
	if e.prev != nil {
		e.prev.next = e.next
	} else {
		c.head = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	} else {
		c.tail = e.prev
	}
	e.prev, e.next = nil, nil
	c.resident -= int64(len(e.raw))
	e.region.Release()
}

// newEntry copies a response wire image into a pooled region (fmu held by
// the caller; the copy itself is lock-free).
func (c *Cache) newEntry(skey string, raw []byte, ri RespInfo) *entry {
	ref := buffer.Global.GetRef(len(raw))
	b := ref.Bytes()[:len(raw)]
	copy(b, raw)
	ttl := c.ttl
	if ri.TTL > 0 && ri.TTL < ttl {
		ttl = ri.TTL
	}
	return &entry{
		skey:    skey,
		raw:     b,
		region:  ref,
		tag:     ri.Tag,
		hasTag:  ri.HasTag,
		expires: c.now() + int64(ttl),
	}
}

// Counters snapshots the cache's counters (registered as "cache" in the
// admin /counters registry; see PERFORMANCE.md for reading them).
func (c *Cache) Counters() metrics.CounterSet {
	return metrics.NewCounterSet(
		"hits", c.hits.Value(),
		"misses", c.misses.Value(),
		"coalesced", c.coalesced.Value(),
		"fills", c.fills.Value(),
		"evictions", c.evictions.Value(),
		"invalidations", c.invalidations.Value(),
		"expired", c.expired.Value(),
		"aborts", c.aborts.Value(),
		"bytes", uint64(c.BytesResident()),
	)
}

// BytesResident returns the bytes currently held by live entries.
func (c *Cache) BytesResident() int64 {
	c.fmu.Lock()
	n := c.resident
	c.fmu.Unlock()
	return n
}

// HitRatio returns hits/(hits+misses) over the cache's lifetime (0 before
// any lookup).
func (c *Cache) HitRatio() float64 {
	h, m := c.hits.Value(), c.misses.Value()
	if h+m == 0 {
		return 0
	}
	return float64(h) / float64(h+m)
}

// Len returns the number of live entries (tests and diagnostics).
func (c *Cache) Len() int {
	c.fmu.Lock()
	n := len(c.index)
	c.fmu.Unlock()
	return n
}
