package cache

import (
	"encoding/binary"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"flick/internal/buffer"
	"flick/internal/metrics"
	"flick/internal/proto/memcache"
	"flick/internal/value"
)

// respRaw renders one memcached GETK response wire image with the given
// opaque, key and value.
func respRaw(t *testing.T, opcode byte, opaque uint32, key, val string) []byte {
	t.Helper()
	req := memcache.Request(opcode, []byte(key), nil)
	req.SetField("opaque", value.Int(int64(opaque)))
	resp := memcache.Response(req, memcache.StatusOK, []byte(key), []byte(val))
	raw, err := memcache.Codec.Encode(nil, resp)
	if err != nil {
		t.Fatalf("encode: %v", err)
	}
	req.Release()
	resp.Release()
	return raw
}

func lookupInfo(opcode byte, key string, opaque uint32) ReqInfo {
	return ReqInfo{
		Class:   ClassLookup,
		Key:     []byte(key),
		Variant: opcode,
		Tag:     uint64(opaque),
		HasTag:  true,
	}
}

// fill installs one entry by leading and resolving a flight.
func fill(t *testing.T, c *Cache, opcode byte, key string, opaque uint32, val string) {
	t.Helper()
	info := lookupInfo(opcode, key, opaque)
	f, leader := c.Begin(info, Waiter{})
	if !leader {
		t.Fatalf("fill(%q): expected to lead", key)
	}
	f.Fill(respRaw(t, opcode, opaque, key, val),
		RespInfo{Match: true, Admit: true, Variant: opcode, Tag: uint64(opaque), HasTag: true})
}

func newTestCache(t *testing.T, cfg Config) *Cache {
	t.Helper()
	if cfg.Proto == nil {
		cfg.Proto = Memcached{}
	}
	c := New(cfg)
	t.Cleanup(c.Close)
	return c
}

// TestCacheHitZeroAlloc pins the hit path at zero heap allocations — both
// the verbatim replay (requester opaque matches the stored image) and the
// opaque-patching copy path (pooled region reuse).
func TestCacheHitZeroAlloc(t *testing.T) {
	c := newTestCache(t, Config{Workers: 2})
	fill(t, c, memcache.OpGetK, "key-000001", 42, "hello-world")

	same := lookupInfo(memcache.OpGetK, "key-000001", 42)
	if n := testing.AllocsPerRun(200, func() {
		v, ok, _ := c.Get(0, same)
		if !ok {
			panic("miss on warm key")
		}
		v.Release()
	}); n != 0 {
		t.Fatalf("verbatim hit path allocates %v per run, want 0", n)
	}

	patched := lookupInfo(memcache.OpGetK, "key-000001", 7777)
	if n := testing.AllocsPerRun(200, func() {
		v, ok, _ := c.Get(1, patched)
		if !ok {
			panic("miss on warm key")
		}
		v.Release()
	}); n != 0 {
		t.Fatalf("opaque-patching hit path allocates %v per run, want 0", n)
	}

	// The hit-latency instrumentation is always on inside Get: every hit
	// measured above must appear in the live histogram, still at 0 allocs.
	if n := c.HitLatency().Count(); n < 400 {
		t.Fatalf("hit-latency histogram recorded %d hits, want >= 400", n)
	}
}

// TestHitPatchesOpaque checks a served view carries the requester's
// opaque, not the stored image's, and replays the stored bytes otherwise.
func TestHitPatchesOpaque(t *testing.T) {
	c := newTestCache(t, Config{Workers: 1})
	stored := respRaw(t, memcache.OpGetK, 42, "k1", "v1")
	fill(t, c, memcache.OpGetK, "k1", 42, "v1")

	v, ok, _ := c.Get(0, lookupInfo(memcache.OpGetK, "k1", 99))
	if !ok {
		t.Fatal("expected hit")
	}
	raw := v.Field("_raw").AsBytes()
	if got := binary.BigEndian.Uint32(raw[memcachedOpaqueOff:]); got != 99 {
		t.Fatalf("served opaque = %d, want 99", got)
	}
	// Everything but the opaque is the stored image verbatim.
	if len(raw) != len(stored) {
		t.Fatalf("served %d bytes, stored %d", len(raw), len(stored))
	}
	for i := range raw {
		if i >= memcachedOpaqueOff && i < memcachedOpaqueOff+4 {
			continue
		}
		if raw[i] != stored[i] {
			t.Fatalf("served byte %d = %#x, stored %#x", i, raw[i], stored[i])
		}
	}
	v.Release()

	v2, ok, _ := c.Get(0, lookupInfo(memcache.OpGetK, "k1", 42))
	if !ok {
		t.Fatal("expected hit")
	}
	raw2 := v2.Field("_raw").AsBytes()
	if string(raw2) != string(stored) {
		t.Fatal("matching opaque should replay the stored image verbatim")
	}
	v2.Release()
}

// TestSingleFlightStress races N goroutines missing one key: exactly one
// leads (one upstream round trip), the rest coalesce and receive views
// with their own opaque. Run under -race; the teardown ref-balance check
// pins refgets == refputs.
func TestSingleFlightStress(t *testing.T) {
	before := buffer.Global.Counters()
	c := New(Config{Proto: Memcached{}, Workers: 4})

	const N = 64
	var upstream atomic.Int32
	var delivered atomic.Int32
	var wg sync.WaitGroup
	start := make(chan struct{})
	errs := make(chan string, N)

	for i := 0; i < N; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			opaque := uint32(1000 + i)
			info := lookupInfo(memcache.OpGetK, "hotkey", opaque)
			if v, ok, _ := c.Get(i%4, info); ok {
				// Raced in after the fill: still a correct view.
				checkServed(errs, v, opaque)
				delivered.Add(1)
				return
			}
			got := make(chan value.Value, 1)
			w := Waiter{
				Tag:     uint64(opaque),
				HasTag:  true,
				Deliver: func(view value.Value) { got <- view },
				Abort:   func() { errs <- "unexpected abort" },
			}
			f, leader := c.Begin(info, w)
			if leader {
				upstream.Add(1)
				time.Sleep(2 * time.Millisecond) // let followers pile on
				f.Fill(respRaw(t, memcache.OpGetK, opaque, "hotkey", "hotvalue"),
					RespInfo{Match: true, Admit: true, Variant: memcache.OpGetK,
						Tag: uint64(opaque), HasTag: true})
				return
			}
			select {
			case view := <-got:
				checkServed(errs, view, opaque)
				delivered.Add(1)
			case <-time.After(5 * time.Second):
				errs <- "timed out waiting for coalesced delivery"
			}
		}()
	}
	close(start)
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Error(e)
	}
	if n := upstream.Load(); n != 1 {
		t.Fatalf("%d upstream round trips, want exactly 1", n)
	}
	if got := delivered.Load(); got != N-1 {
		t.Fatalf("%d views delivered (coalesced + post-fill hits), want %d", got, N-1)
	}
	if cval(c.Counters(), "fills") != 1 {
		t.Fatalf("fills = %d, want 1", cval(c.Counters(), "fills"))
	}
	c.Close()
	after := buffer.Global.Counters()
	gets := cval(after, "refgets") - cval(before, "refgets")
	puts := cval(after, "refputs") - cval(before, "refputs")
	if gets != puts {
		t.Fatalf("pool ref leak: refgets delta %d != refputs delta %d", gets, puts)
	}
}

func checkServed(errs chan<- string, v value.Value, opaque uint32) {
	raw := v.Field("_raw").AsBytes()
	if len(raw) < 24 {
		errs <- "short served view"
	} else if got := binary.BigEndian.Uint32(raw[memcachedOpaqueOff:]); got != opaque {
		errs <- fmt.Sprintf("served opaque %d, want %d", got, opaque)
	}
	v.Release()
}

// TestTTLExpiry checks lazy expiry: the first lookup past the deadline
// misses and removes the entry structurally — every shard, the index and
// the resident-byte gauge — so an idle expired key holds no pooled bytes;
// a refill serves again.
func TestTTLExpiry(t *testing.T) {
	c := newTestCache(t, Config{Workers: 2, TTL: time.Second})
	var clock atomic.Int64
	c.now = clock.Load

	fill(t, c, memcache.OpGetK, "k1", 1, "v1")
	if _, ok, _ := c.Get(0, lookupInfo(memcache.OpGetK, "k1", 1)); !ok {
		t.Fatal("want hit before expiry")
	}
	clock.Store(int64(2 * time.Second))
	if _, ok, _ := c.Get(0, lookupInfo(memcache.OpGetK, "k1", 1)); ok {
		t.Fatal("want miss after expiry")
	}
	// The observed expiry removed the entry everywhere, not just from the
	// observing shard: the other shard misses structurally and nothing
	// stays resident.
	if _, ok, _ := c.Get(1, lookupInfo(memcache.OpGetK, "k1", 1)); ok {
		t.Fatal("want miss after expiry on second shard")
	}
	if got := cval(c.Counters(), "expired"); got != 1 {
		t.Fatalf("expired = %d, want 1", got)
	}
	if n := c.Len(); n != 0 {
		t.Fatalf("len = %d after observed expiry, want 0", n)
	}
	if b := c.BytesResident(); b != 0 {
		t.Fatalf("%d bytes resident after observed expiry, want 0", b)
	}
	fill(t, c, memcache.OpGetK, "k1", 1, "v2")
	v, ok, _ := c.Get(0, lookupInfo(memcache.OpGetK, "k1", 1))
	if !ok {
		t.Fatal("want hit after refill")
	}
	v.Release()
}

// TestInvalidate checks write-through invalidation drops the key in every
// variant and kills its in-flight fill (followers re-dispatch, the late
// fill stores nothing).
func TestInvalidate(t *testing.T) {
	c := newTestCache(t, Config{Workers: 1})
	fill(t, c, memcache.OpGet, "k1", 1, "v1")
	fill(t, c, memcache.OpGetK, "k1", 2, "v1")
	fill(t, c, memcache.OpGetK, "other", 3, "v3")

	aborted := 0
	f, leader := c.Begin(lookupInfo(memcache.OpGetK, "pending", 4), Waiter{})
	if !leader {
		t.Fatal("expected to lead")
	}
	_, leader = c.Begin(lookupInfo(memcache.OpGetK, "pending", 5),
		Waiter{Deliver: func(v value.Value) { v.Release(); t.Error("delivered past invalidation") },
			Abort: func() { aborted++ }})
	if leader {
		t.Fatal("expected to coalesce")
	}

	c.Invalidate(nil, []byte("k1"))
	c.Invalidate(nil, []byte("pending"))
	if aborted != 1 {
		t.Fatalf("aborted = %d, want 1", aborted)
	}
	if _, ok, _ := c.Get(0, lookupInfo(memcache.OpGet, "k1", 1)); ok {
		t.Fatal("GET variant survived invalidation")
	}
	if _, ok, _ := c.Get(0, lookupInfo(memcache.OpGetK, "k1", 2)); ok {
		t.Fatal("GETK variant survived invalidation")
	}
	v, ok, _ := c.Get(0, lookupInfo(memcache.OpGetK, "other", 3))
	if !ok {
		t.Fatal("unrelated key dropped by invalidation")
	}
	v.Release()

	// The killed flight's late fill must not resurrect the entry.
	f.Fill(respRaw(t, memcache.OpGetK, 4, "pending", "stale"),
		RespInfo{Match: true, Admit: true, Variant: memcache.OpGetK, Tag: 4, HasTag: true})
	if _, ok, _ := c.Get(0, lookupInfo(memcache.OpGetK, "pending", 4)); ok {
		t.Fatal("late fill resurrected an invalidated key")
	}
	if cval(c.Counters(), "invalidations") != 2 {
		t.Fatalf("invalidations = %d, want 2", cval(c.Counters(), "invalidations"))
	}
}

// TestClear checks flush_all semantics.
func TestClear(t *testing.T) {
	c := newTestCache(t, Config{Workers: 2})
	for i := 0; i < 8; i++ {
		fill(t, c, memcache.OpGetK, fmt.Sprintf("k%d", i), uint32(i), "v")
	}
	if c.Len() != 8 {
		t.Fatalf("len = %d, want 8", c.Len())
	}
	c.Clear()
	if c.Len() != 0 || c.BytesResident() != 0 {
		t.Fatalf("len=%d bytes=%d after clear, want 0/0", c.Len(), c.BytesResident())
	}
	if _, ok, _ := c.Get(0, lookupInfo(memcache.OpGetK, "k3", 3)); ok {
		t.Fatal("entry survived clear")
	}
}

// TestEviction checks the byte budget holds by evicting oldest-first.
func TestEviction(t *testing.T) {
	one := len(respRaw(t, memcache.OpGetK, 0, "k0", "v0"))
	c := newTestCache(t, Config{Workers: 1, MaxBytes: int64(3 * one)})
	for i := 0; i < 6; i++ {
		fill(t, c, memcache.OpGetK, fmt.Sprintf("k%d", i), uint32(i), fmt.Sprintf("v%d", i))
	}
	if got := c.BytesResident(); got > int64(3*one) {
		t.Fatalf("resident %d bytes exceeds budget %d", got, 3*one)
	}
	if got := cval(c.Counters(), "evictions"); got != 3 {
		t.Fatalf("evictions = %d, want 3", got)
	}
	// Oldest gone, newest present.
	if _, ok, _ := c.Get(0, lookupInfo(memcache.OpGetK, "k0", 0)); ok {
		t.Fatal("oldest entry survived eviction")
	}
	v, ok, _ := c.Get(0, lookupInfo(memcache.OpGetK, "k5", 5))
	if !ok {
		t.Fatal("newest entry evicted")
	}
	v.Release()
}

// TestNonAdmissibleFillAborts checks a miss resolved by a non-cacheable
// response (memcached KeyNotFound) aborts its followers instead of caching.
func TestNonAdmissibleFillAborts(t *testing.T) {
	c := newTestCache(t, Config{Workers: 1})
	info := lookupInfo(memcache.OpGetK, "missing", 1)
	f, leader := c.Begin(info, Waiter{})
	if !leader {
		t.Fatal("expected to lead")
	}
	aborted := 0
	c.Begin(lookupInfo(memcache.OpGetK, "missing", 2),
		Waiter{Abort: func() { aborted++ }})
	f.Fill([]byte("irrelevant"), RespInfo{Match: true, Admit: false})
	if aborted != 1 {
		t.Fatalf("aborted = %d, want 1", aborted)
	}
	if _, ok, _ := c.Get(0, info); ok {
		t.Fatal("non-admissible response was cached")
	}
	if cval(c.Counters(), "aborts") != 1 {
		t.Fatalf("aborts = %d, want 1", cval(c.Counters(), "aborts"))
	}
}

// TestVariantSeparation checks GET and GETK entries don't serve each other.
func TestVariantSeparation(t *testing.T) {
	c := newTestCache(t, Config{Workers: 1})
	fill(t, c, memcache.OpGetK, "k1", 1, "v1")
	if _, ok, _ := c.Get(0, lookupInfo(memcache.OpGet, "k1", 1)); ok {
		t.Fatal("GET served from a GETK entry")
	}
	v, ok, _ := c.Get(0, lookupInfo(memcache.OpGetK, "k1", 1))
	if !ok {
		t.Fatal("GETK entry missing")
	}
	v.Release()
}

// TestClosedCache checks post-Close behaviour: Begin returns no flight
// (untracked forward) and fills are dropped.
func TestClosedCache(t *testing.T) {
	c := New(Config{Proto: Memcached{}, Workers: 1})
	info := lookupInfo(memcache.OpGetK, "k1", 1)
	f, _ := c.Begin(info, Waiter{})
	c.Close()
	f.Fill(respRaw(t, memcache.OpGetK, 1, "k1", "v1"),
		RespInfo{Match: true, Admit: true, Variant: memcache.OpGetK, Tag: 1, HasTag: true})
	if c.Len() != 0 {
		t.Fatal("fill stored into a closed cache")
	}
	if f2, leader := c.Begin(info, Waiter{}); f2 != nil || !leader {
		t.Fatal("Begin on a closed cache must return (nil, true)")
	}
}

// cval reads one counter from a set (test convenience).
func cval(cs metrics.CounterSet, name string) uint64 {
	v, _ := cs.Get(name)
	return v
}

// respRawNotFound renders a KeyNotFound response wire image (the negative
// caching seed).
func respRawNotFound(t *testing.T, opcode byte, opaque uint32, key string) []byte {
	t.Helper()
	req := memcache.Request(opcode, []byte(key), nil)
	req.SetField("opaque", value.Int(int64(opaque)))
	resp := memcache.Response(req, memcache.StatusKeyNotFound, nil, nil)
	raw, err := memcache.Codec.Encode(nil, resp)
	if err != nil {
		t.Fatalf("encode: %v", err)
	}
	req.Release()
	resp.Release()
	return raw
}

// TestNegativeCache checks memcached KeyNotFound responses are admitted as
// negative entries bounded by NegativeTTL: a miss storm on an absent key is
// absorbed, the entry expires on the short negative clock, writes drop it
// like any entry, and disabling negative caching drops the fill entirely.
func TestNegativeCache(t *testing.T) {
	// The adapter classifies authoritative absence as admissible+negative.
	req := memcache.Request(memcache.OpGetK, []byte("absent"), nil)
	resp := memcache.Response(req, memcache.StatusKeyNotFound, nil, nil)
	ri := Memcached{}.Response(resp)
	if !ri.Admit || !ri.Negative {
		t.Fatalf("KeyNotFound classified admit=%v negative=%v, want true/true", ri.Admit, ri.Negative)
	}
	req.Release()
	resp.Release()

	c := newTestCache(t, Config{Workers: 1}) // NegativeTTL 0 → DefaultNegativeTTL
	var clock atomic.Int64
	c.now = clock.Load

	info := lookupInfo(memcache.OpGetK, "absent", 7)
	f, leader := c.Begin(info, Waiter{})
	if !leader {
		t.Fatal("expected to lead")
	}
	f.Fill(respRawNotFound(t, memcache.OpGetK, 7, "absent"),
		RespInfo{Match: true, Admit: true, Negative: true,
			Variant: memcache.OpGetK, Tag: 7, HasTag: true})
	v, ok, _ := c.Get(0, info)
	if !ok {
		t.Fatal("negative entry did not serve")
	}
	v.Release()
	if got := cval(c.Counters(), "neg_hits"); got != 1 {
		t.Fatalf("neg_hits = %d, want 1", got)
	}
	// Negative entries live on the short clock, never the default TTL, and
	// never serve stale.
	clock.Store(int64(DefaultNegativeTTL) + 1)
	if _, ok, _ := c.Get(0, info); ok {
		t.Fatal("negative entry served past NegativeTTL")
	}

	// A write drops a resident negative entry like any other.
	f, _ = c.Begin(info, Waiter{})
	f.Fill(respRawNotFound(t, memcache.OpGetK, 7, "absent"),
		RespInfo{Match: true, Admit: true, Negative: true,
			Variant: memcache.OpGetK, Tag: 7, HasTag: true})
	c.Invalidate(nil, []byte("absent"))
	if _, ok, _ := c.Get(0, info); ok {
		t.Fatal("negative entry survived invalidation")
	}

	// NegativeTTL < 0 disables negative caching: the fill stores nothing.
	c2 := newTestCache(t, Config{Workers: 1, NegativeTTL: -1})
	f, _ = c2.Begin(info, Waiter{})
	f.Fill(respRawNotFound(t, memcache.OpGetK, 7, "absent"),
		RespInfo{Match: true, Admit: true, Negative: true,
			Variant: memcache.OpGetK, Tag: 7, HasTag: true})
	if c2.Len() != 0 {
		t.Fatal("negative entry stored with negative caching disabled")
	}
}

// TestMemcachedWriteScoping pins the invalidation blast radius of every
// mutation shape: key-carrying opcodes — loud, quiet, and expiry-touching —
// invalidate exactly their key; only flush and truly keyless unknown
// opcodes clear the whole cache.
func TestMemcachedWriteScoping(t *testing.T) {
	cases := []struct {
		name  string
		op    byte
		key   string
		class Class
	}{
		{"Set", memcache.OpSet, "k", ClassInvalidate},
		{"Delete", memcache.OpDelete, "k", ClassInvalidate},
		{"SetQ", memcache.OpSetQ, "k", ClassInvalidate},
		{"AddQ", memcache.OpAddQ, "k", ClassInvalidate},
		{"ReplaceQ", memcache.OpReplaceQ, "k", ClassInvalidate},
		{"DeleteQ", memcache.OpDeleteQ, "k", ClassInvalidate},
		{"IncrementQ", memcache.OpIncrementQ, "k", ClassInvalidate},
		{"DecrementQ", memcache.OpDecrementQ, "k", ClassInvalidate},
		{"AppendQ", memcache.OpAppendQ, "k", ClassInvalidate},
		{"PrependQ", memcache.OpPrependQ, "k", ClassInvalidate},
		{"Touch", memcache.OpTouch, "k", ClassInvalidate},
		{"GAT", memcache.OpGAT, "k", ClassInvalidate},
		{"GATQ", memcache.OpGATQ, "k", ClassInvalidate},
		{"GATK", memcache.OpGATK, "k", ClassInvalidate},
		{"GATKQ", memcache.OpGATKQ, "k", ClassInvalidate},
		{"unknown keyed", 0x55, "k", ClassInvalidate},
		{"Flush", memcache.OpFlush, "", ClassInvalidateAll},
		{"FlushQ", memcache.OpFlushQ, "", ClassInvalidateAll},
		{"unknown keyless", 0x55, "", ClassInvalidateAll},
		{"Noop", memcache.OpNoop, "", ClassPass},
		{"GetQ", memcache.OpGetQ, "k", ClassPass},
		{"Version", memcache.OpVersion, "", ClassPass},
	}
	for _, tc := range cases {
		var key []byte
		if tc.key != "" {
			key = []byte(tc.key)
		}
		req := memcache.Request(tc.op, key, nil)
		info := Memcached{}.Request(req)
		if info.Class != tc.class {
			t.Errorf("%s: class = %d, want %d", tc.name, info.Class, tc.class)
		}
		if tc.class == ClassInvalidate && string(info.Key) != tc.key {
			t.Errorf("%s: key = %q, want %q", tc.name, info.Key, tc.key)
		}
		req.Release()
	}

	// End to end: a quiet mutation's invalidation drops only its key.
	c := newTestCache(t, Config{Workers: 1})
	fill(t, c, memcache.OpGetK, "mine", 1, "v1")
	fill(t, c, memcache.OpGetK, "other", 2, "v2")
	w := memcache.Request(memcache.OpSetQ, []byte("mine"), []byte("nv"))
	wi := Memcached{}.Request(w)
	c.Invalidate(wi.Scope, wi.Key)
	w.Release()
	if _, ok, _ := c.Get(0, lookupInfo(memcache.OpGetK, "mine", 1)); ok {
		t.Fatal("written key survived its quiet mutation")
	}
	v, ok, _ := c.Get(0, lookupInfo(memcache.OpGetK, "other", 2))
	if !ok {
		t.Fatal("unrelated key dropped by a single-key quiet mutation")
	}
	v.Release()
}
