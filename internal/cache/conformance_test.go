package cache

import (
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"flick/internal/value"
)

// RFC 9111 conformance table. Each case scripts the cache as the core
// drives it — classify a decoded client request, serve hits, lead and
// resolve flights, dispatch claimed revalidations — against a fake clock,
// and asserts byte-exact wire output for everything served from the cache
// (including the patched Age zone and the synthesized 304).
//
// Step verdicts:
//
//	pass  — forwarded untouched (ClassPass, or a conditional miss)
//	miss  — led a flight (the next resp step resolves it)
//	hit   — served from the cache (serve pins the exact bytes)
//	inval — write-through invalidation
type confStep struct {
	tick time.Duration // advance the clock before acting

	req       string // classify + act on one client request
	resp      string // resolve the open flight with this upstream response
	revalResp string // resolve the claimed revalidation with this response
	revalDie  bool   // upstream died mid-revalidation: abort the claim

	want      string // verdict for req steps
	serve     string // exact served bytes for hit steps ("": unchecked)
	wantReval bool   // req hit must have claimed a background revalidation
}

type confCase struct {
	name     string
	ttl      time.Duration // cache default TTL (0: 10s)
	staleTTL time.Duration // SWR window (0: 30s; <0: disabled)
	steps    []confStep
}

// ageZone renders the patched Age digit zone: left-aligned, space-padded.
func ageZone(secs int) string {
	s := ""
	if secs == 0 {
		s = "0"
	}
	for n := secs; n > 0; n /= 10 {
		s = string(rune('0'+n%10)) + s
	}
	return s + strings.Repeat(" ", ageZoneLen-len(s))
}

// served composes the wire image a full cache hit must produce: the origin
// status line, the injected Age header, the surviving origin headers, then
// the body.
func served(age int, hdrs, body string) string {
	return "HTTP/1.1 200 OK\r\nAge: " + ageZone(age) + "\r\n" + hdrs + "\r\n" + body
}

const (
	reqA     = "GET /a HTTP/1.1\r\nHost: h\r\n\r\n"
	condV1   = "GET /a HTTP/1.1\r\nHost: h\r\nIf-None-Match: \"v1\"\r\n\r\n"
	resp200  = "HTTP/1.1 200 OK\r\nContent-Length: 2\r\n\r\nhi"
	hdrCL    = "Content-Length: 2\r\n"
	respETag = "HTTP/1.1 200 OK\r\nContent-Length: 2\r\nETag: \"v1\"\r\n\r\nhi"
	hdrETag  = "Content-Length: 2\r\nETag: \"v1\"\r\n"
	notMod1  = "HTTP/1.1 304 Not Modified\r\nETag: \"v1\"\r\n\r\n"
	lmDate   = "Sat, 01 Jan 2022 00:00:00 GMT"
	respLM   = "HTTP/1.1 200 OK\r\nContent-Length: 2\r\nLast-Modified: " + lmDate + "\r\n\r\nhi"
	hdrLM    = "Content-Length: 2\r\nLast-Modified: " + lmDate + "\r\n"
	notModLM = "HTTP/1.1 304 Not Modified\r\nLast-Modified: " + lmDate + "\r\n\r\n"

	// A short-lived admitted entry with validators: the SWR scenarios' seed.
	respSWR = "HTTP/1.1 200 OK\r\nContent-Length: 2\r\nETag: \"v1\"\r\nCache-Control: max-age=1\r\n\r\nhi"
	hdrSWR  = "Content-Length: 2\r\nETag: \"v1\"\r\nCache-Control: max-age=1\r\n"
)

func conformanceCases() []confCase {
	return []confCase{
		// --- serving and Age (RFC 9111 §4.2.3, §5.1) ---
		{name: "miss-then-hit-age-zero", steps: []confStep{
			{req: reqA, want: "miss"},
			{resp: resp200},
			{req: reqA, want: "hit", serve: served(0, hdrCL, "hi")},
		}},
		{name: "hit-age-advances", steps: []confStep{
			{req: reqA, want: "miss"},
			{resp: resp200},
			{tick: 3 * time.Second, req: reqA, want: "hit", serve: served(3, hdrCL, "hi")},
		}},
		{name: "age-zone-saturates", ttl: 200000000 * time.Second, steps: []confStep{
			{req: reqA, want: "miss"},
			{resp: resp200},
			{tick: 150000000 * time.Second, req: reqA, want: "hit",
				serve: served(99999999, hdrCL, "hi")},
		}},
		{name: "origin-age-dropped", steps: []confStep{
			{req: reqA, want: "miss"},
			{resp: "HTTP/1.1 200 OK\r\nAge: 999\r\nContent-Length: 2\r\n\r\nhi"},
			{req: reqA, want: "hit", serve: served(0, hdrCL, "hi")},
		}},

		// --- request-side bypasses (RFC 9111 §3, §5.2.1) ---
		{name: "no-host-passes", steps: []confStep{
			{req: "GET /a HTTP/1.1\r\n\r\n", want: "pass"},
		}},
		{name: "cookie-passes", steps: []confStep{
			{req: "GET /a HTTP/1.1\r\nHost: h\r\nCookie: sid=1\r\n\r\n", want: "pass"},
		}},
		{name: "authorization-passes", steps: []confStep{
			{req: "GET /a HTTP/1.1\r\nHost: h\r\nAuthorization: Bearer x\r\n\r\n", want: "pass"},
		}},
		{name: "range-passes", steps: []confStep{
			{req: "GET /a HTTP/1.1\r\nHost: h\r\nRange: bytes=0-1\r\n\r\n", want: "pass"},
		}},
		{name: "request-no-store-passes", steps: []confStep{
			{req: "GET /a HTTP/1.1\r\nHost: h\r\nCache-Control: no-store\r\n\r\n", want: "pass"},
		}},
		{name: "request-no-cache-passes", steps: []confStep{
			{req: "GET /a HTTP/1.1\r\nHost: h\r\nCache-Control: no-cache\r\n\r\n", want: "pass"},
		}},
		{name: "head-passes", steps: []confStep{
			{req: "HEAD /a HTTP/1.1\r\nHost: h\r\n\r\n", want: "pass"},
		}},
		{name: "options-passes", steps: []confStep{
			{req: "OPTIONS * HTTP/1.1\r\nHost: h\r\n\r\n", want: "pass"},
		}},
		{name: "closing-request-passes", steps: []confStep{
			{req: "GET /a HTTP/1.1\r\nHost: h\r\nConnection: close\r\n\r\n", want: "pass"},
		}},

		// --- write-through invalidation (RFC 9111 §4.4) ---
		{name: "post-invalidates", steps: []confStep{
			{req: reqA, want: "miss"},
			{resp: resp200},
			{req: "POST /a HTTP/1.1\r\nHost: h\r\nContent-Length: 0\r\n\r\n", want: "inval"},
			{req: reqA, want: "miss"},
		}},
		{name: "delete-invalidates", steps: []confStep{
			{req: reqA, want: "miss"},
			{resp: resp200},
			{req: "DELETE /a HTTP/1.1\r\nHost: h\r\n\r\n", want: "inval"},
			{req: reqA, want: "miss"},
		}},
		{name: "put-invalidates", steps: []confStep{
			{req: reqA, want: "miss"},
			{resp: resp200},
			{req: "PUT /a HTTP/1.1\r\nHost: h\r\nContent-Length: 0\r\n\r\n", want: "inval"},
			{req: reqA, want: "miss"},
		}},

		// --- response-side admission (RFC 9111 §3, §3.5) ---
		{name: "set-cookie-not-admitted", steps: []confStep{
			{req: reqA, want: "miss"},
			{resp: "HTTP/1.1 200 OK\r\nContent-Length: 2\r\nSet-Cookie: sid=1\r\n\r\nhi"},
			{req: reqA, want: "miss"},
		}},
		{name: "response-no-store-not-admitted", steps: []confStep{
			{req: reqA, want: "miss"},
			{resp: "HTTP/1.1 200 OK\r\nContent-Length: 2\r\nCache-Control: no-store\r\n\r\nhi"},
			{req: reqA, want: "miss"},
		}},
		{name: "response-private-not-admitted", steps: []confStep{
			{req: reqA, want: "miss"},
			{resp: "HTTP/1.1 200 OK\r\nContent-Length: 2\r\nCache-Control: private\r\n\r\nhi"},
			{req: reqA, want: "miss"},
		}},
		{name: "response-no-cache-not-admitted", steps: []confStep{
			{req: reqA, want: "miss"},
			{resp: "HTTP/1.1 200 OK\r\nContent-Length: 2\r\nCache-Control: no-cache\r\n\r\nhi"},
			{req: reqA, want: "miss"},
		}},
		{name: "max-age-zero-not-admitted", steps: []confStep{
			{req: reqA, want: "miss"},
			{resp: "HTTP/1.1 200 OK\r\nContent-Length: 2\r\nCache-Control: max-age=0\r\n\r\nhi"},
			{req: reqA, want: "miss"},
		}},
		{name: "non-200-not-admitted", steps: []confStep{
			{req: reqA, want: "miss"},
			{resp: "HTTP/1.1 404 Not Found\r\nContent-Length: 2\r\n\r\nno"},
			{req: reqA, want: "miss"},
		}},
		{name: "closing-response-not-admitted", steps: []confStep{
			{req: reqA, want: "miss"},
			{resp: "HTTP/1.1 200 OK\r\nConnection: close\r\nContent-Length: 2\r\n\r\nhi"},
			{req: reqA, want: "miss"},
		}},
		{name: "max-age-caps-freshness", steps: []confStep{
			{req: reqA, want: "miss"},
			{resp: "HTTP/1.1 200 OK\r\nContent-Length: 2\r\nCache-Control: max-age=2\r\n\r\nhi"},
			{tick: time.Second, req: reqA, want: "hit",
				serve: served(1, "Content-Length: 2\r\nCache-Control: max-age=2\r\n", "hi")},
			// Past max-age the entry is stale (a validatorless entry still
			// revalidates with a plain refresh GET); past the hard deadline
			// (max-age + StaleTTL) it dies structurally.
			{tick: 2 * time.Second, req: reqA, want: "hit", wantReval: true,
				serve: served(3, "Content-Length: 2\r\nCache-Control: max-age=2\r\n", "hi")},
			{revalDie: true},
			{tick: 31 * time.Second, req: reqA, want: "miss"},
		}},

		// --- content negotiation (RFC 9111 §4.1) ---
		{name: "vary-star-not-admitted", steps: []confStep{
			{req: reqA, want: "miss"},
			{resp: "HTTP/1.1 200 OK\r\nContent-Length: 2\r\nVary: *\r\n\r\nhi"},
			{req: reqA, want: "miss"},
		}},
		{name: "content-encoding-unkeyed-not-admitted", steps: []confStep{
			{req: reqA, want: "miss"},
			{resp: "HTTP/1.1 200 OK\r\nContent-Length: 2\r\nContent-Encoding: gzip\r\n\r\nhi"},
			{req: reqA, want: "miss"},
		}},
		{name: "content-encoding-keyed-by-vary-admitted", steps: []confStep{
			{req: "GET /a HTTP/1.1\r\nHost: h\r\nAccept-Encoding: gzip\r\n\r\n", want: "miss"},
			{resp: "HTTP/1.1 200 OK\r\nContent-Length: 2\r\nContent-Encoding: gzip\r\nVary: Accept-Encoding\r\n\r\nhi"},
			{req: "GET /a HTTP/1.1\r\nHost: h\r\nAccept-Encoding: gzip\r\n\r\n", want: "hit",
				serve: served(0, "Content-Length: 2\r\nContent-Encoding: gzip\r\nVary: Accept-Encoding\r\n", "hi")},
			// A client that never asked for gzip must not receive it.
			{req: reqA, want: "miss"},
		}},
		{name: "vary-variants-key-separately", steps: []confStep{
			{req: "GET /a HTTP/1.1\r\nHost: h\r\nAccept-Encoding: gzip\r\n\r\n", want: "miss"},
			{resp: "HTTP/1.1 200 OK\r\nContent-Length: 2\r\nVary: Accept-Encoding\r\n\r\nAA"},
			{req: "GET /a HTTP/1.1\r\nHost: h\r\nAccept-Encoding: br\r\n\r\n", want: "miss"},
			{resp: "HTTP/1.1 200 OK\r\nContent-Length: 2\r\nVary: Accept-Encoding\r\n\r\nBB"},
			{req: "GET /a HTTP/1.1\r\nHost: h\r\nAccept-Encoding: gzip\r\n\r\n", want: "hit",
				serve: served(0, "Content-Length: 2\r\nVary: Accept-Encoding\r\n", "AA")},
			{req: "GET /a HTTP/1.1\r\nHost: h\r\nAccept-Encoding: br\r\n\r\n", want: "hit",
				serve: served(0, "Content-Length: 2\r\nVary: Accept-Encoding\r\n", "BB")},
		}},
		{name: "vary-absent-header-keys-separately", steps: []confStep{
			{req: "GET /a HTTP/1.1\r\nHost: h\r\nAccept-Encoding: gzip\r\n\r\n", want: "miss"},
			{resp: "HTTP/1.1 200 OK\r\nContent-Length: 2\r\nVary: Accept-Encoding\r\n\r\nhi"},
			{req: reqA, want: "miss"},
		}},
		{name: "vary-rule-change-purges-base", steps: []confStep{
			{req: "GET /a HTTP/1.1\r\nHost: h\r\nX-A: 1\r\n\r\n", want: "miss"},
			{resp: "HTTP/1.1 200 OK\r\nContent-Length: 2\r\nVary: X-A\r\n\r\nAA"},
			{req: "GET /a HTTP/1.1\r\nHost: h\r\nX-A: 1\r\n\r\n", want: "hit",
				serve: served(0, "Content-Length: 2\r\nVary: X-A\r\n", "AA")},
			{req: "GET /a HTTP/1.1\r\nHost: h\r\nX-A: 2\r\nX-B: 9\r\n\r\n", want: "miss"},
			{resp: "HTTP/1.1 200 OK\r\nContent-Length: 2\r\nVary: X-B\r\n\r\nBB"},
			// The old-rule entry was purged when the rule changed; the first
			// client's request folds differently under the new rule (no X-B).
			{req: "GET /a HTTP/1.1\r\nHost: h\r\nX-A: 1\r\n\r\n", want: "miss"},
		}},

		// --- conditional clients (RFC 9110 §13.1.1-13.1.3, RFC 9111 §4.3) ---
		{name: "inm-match-serves-304", steps: []confStep{
			{req: reqA, want: "miss"},
			{resp: respETag},
			{req: condV1, want: "hit", serve: notMod1},
		}},
		{name: "inm-mismatch-serves-full", steps: []confStep{
			{req: reqA, want: "miss"},
			{resp: respETag},
			{req: "GET /a HTTP/1.1\r\nHost: h\r\nIf-None-Match: \"other\"\r\n\r\n",
				want: "hit", serve: served(0, hdrETag, "hi")},
		}},
		{name: "inm-weak-compare-matches", steps: []confStep{
			{req: reqA, want: "miss"},
			{resp: "HTTP/1.1 200 OK\r\nContent-Length: 2\r\nETag: W/\"v1\"\r\n\r\nhi"},
			{req: condV1, want: "hit",
				serve: "HTTP/1.1 304 Not Modified\r\nETag: W/\"v1\"\r\n\r\n"},
		}},
		{name: "inm-star-matches", steps: []confStep{
			{req: reqA, want: "miss"},
			{resp: respETag},
			{req: "GET /a HTTP/1.1\r\nHost: h\r\nIf-None-Match: *\r\n\r\n",
				want: "hit", serve: notMod1},
		}},
		{name: "inm-list-matches", steps: []confStep{
			{req: reqA, want: "miss"},
			{resp: respETag},
			{req: "GET /a HTTP/1.1\r\nHost: h\r\nIf-None-Match: \"a\", \"v1\"\r\n\r\n",
				want: "hit", serve: notMod1},
		}},
		{name: "ims-match-serves-304", steps: []confStep{
			{req: reqA, want: "miss"},
			{resp: respLM},
			{req: "GET /a HTTP/1.1\r\nHost: h\r\nIf-Modified-Since: " + lmDate + "\r\n\r\n",
				want: "hit", serve: notModLM},
		}},
		{name: "ims-mismatch-serves-full", steps: []confStep{
			{req: reqA, want: "miss"},
			{resp: respLM},
			{req: "GET /a HTTP/1.1\r\nHost: h\r\nIf-Modified-Since: Sun, 02 Jan 2022 00:00:00 GMT\r\n\r\n",
				want: "hit", serve: served(0, hdrLM, "hi")},
		}},
		{name: "inm-wins-over-ims", steps: []confStep{
			{req: reqA, want: "miss"},
			{resp: "HTTP/1.1 200 OK\r\nContent-Length: 2\r\nETag: \"v1\"\r\nLast-Modified: " + lmDate + "\r\n\r\nhi"},
			// If-None-Match mismatches; the matching If-Modified-Since must
			// be ignored when If-None-Match is present (RFC 9110 §13.1.3).
			{req: "GET /a HTTP/1.1\r\nHost: h\r\nIf-None-Match: \"other\"\r\nIf-Modified-Since: " + lmDate + "\r\n\r\n",
				want:  "hit",
				serve: served(0, "Content-Length: 2\r\nETag: \"v1\"\r\nLast-Modified: "+lmDate+"\r\n", "hi")},
		}},
		{name: "cond-miss-passes-through", steps: []confStep{
			{req: condV1, want: "pass"},
		}},
		{name: "cond-validatorless-entry-serves-full", steps: []confStep{
			{req: reqA, want: "miss"},
			{resp: resp200},
			{req: condV1, want: "hit", serve: served(0, hdrCL, "hi")},
		}},

		// --- stale-while-revalidate and revalidation (RFC 9111 §4.2.4, §4.3.4) ---
		{name: "stale-served-claims-revalidation", steps: []confStep{
			{req: reqA, want: "miss"},
			{resp: respSWR},
			{tick: 2 * time.Second, req: reqA, want: "hit", wantReval: true,
				serve: served(2, hdrSWR, "hi")},
		}},
		{name: "reval-304-extends-and-restarts-age", steps: []confStep{
			{req: reqA, want: "miss"},
			{resp: respSWR},
			{tick: 2 * time.Second, req: reqA, want: "hit", wantReval: true},
			{revalResp: "HTTP/1.1 304 Not Modified\r\n\r\n"},
			// Freshness and Age restart from the validation instant.
			{tick: 500 * time.Millisecond, req: reqA, want: "hit",
				serve: served(0, hdrSWR, "hi")},
		}},
		{name: "reval-200-replaces-entry", steps: []confStep{
			{req: reqA, want: "miss"},
			{resp: respSWR},
			{tick: 2 * time.Second, req: reqA, want: "hit", wantReval: true},
			{revalResp: "HTTP/1.1 200 OK\r\nContent-Length: 2\r\nETag: \"v2\"\r\n\r\nv2"},
			{req: reqA, want: "hit",
				serve: served(0, "Content-Length: 2\r\nETag: \"v2\"\r\n", "v2")},
		}},
		{name: "reval-failure-serves-stale-and-reclaims", steps: []confStep{
			{req: reqA, want: "miss"},
			{resp: respSWR},
			{tick: 2 * time.Second, req: reqA, want: "hit", wantReval: true},
			{revalDie: true},
			// Still inside the SWR window: stale keeps serving and the next
			// lookup re-claims the revalidation.
			{tick: time.Second, req: reqA, want: "hit", wantReval: true,
				serve: served(3, hdrSWR, "hi")},
		}},
		{name: "hard-deadline-structural-miss", staleTTL: 5 * time.Second, steps: []confStep{
			{req: reqA, want: "miss"},
			{resp: respSWR},
			// max-age=1 + StaleTTL 5s: at 7s the hard deadline has passed.
			{tick: 7 * time.Second, req: reqA, want: "miss"},
		}},
		{name: "swr-disabled-expires-at-max-age", staleTTL: -1, steps: []confStep{
			{req: reqA, want: "miss"},
			{resp: respSWR},
			{tick: 2 * time.Second, req: reqA, want: "miss"},
		}},
		{name: "single-flight-revalidation", steps: []confStep{
			{req: reqA, want: "miss"},
			{resp: respSWR},
			{tick: 2 * time.Second, req: reqA, want: "hit", wantReval: true},
			// The claim is outstanding: a second stale hit serves without
			// claiming another refresh.
			{req: reqA, want: "hit", wantReval: false},
		}},
		{name: "reval-304-max-age-caps-extension", steps: []confStep{
			{req: reqA, want: "miss"},
			{resp: respSWR},
			{tick: 2 * time.Second, req: reqA, want: "hit", wantReval: true},
			{revalResp: "HTTP/1.1 304 Not Modified\r\nCache-Control: max-age=1\r\n\r\n"},
			// The 304's own max-age bounds the extension: stale again at 2s.
			{tick: 2 * time.Second, req: reqA, want: "hit", wantReval: true,
				serve: served(2, hdrSWR, "hi")},
		}},
	}
}

// confHarness drives one conformance case against a fresh cache.
type confHarness struct {
	t     *testing.T
	c     *Cache
	clock *atomic.Int64
	f     *Flight // open flight led by the last miss
	rv    *Reval  // claimed revalidation of the last stale hit
	reqs  []value.Value
}

func newConfHarness(t *testing.T, tc confCase) *confHarness {
	ttl := tc.ttl
	if ttl == 0 {
		ttl = 10 * time.Second
	}
	staleTTL := tc.staleTTL
	if staleTTL == 0 {
		staleTTL = 30 * time.Second
	}
	c := newTestCache(t, Config{Proto: HTTPGet{}, Workers: 1, TTL: ttl, StaleTTL: staleTTL})
	h := &confHarness{t: t, c: c, clock: new(atomic.Int64)}
	h.c.now = h.clock.Load
	return h
}

func (h *confHarness) run(steps []confStep) {
	t := h.t
	for i, s := range steps {
		h.clock.Add(int64(s.tick))
		switch {
		case s.req != "":
			req := decodeHTTP(t, true, s.req)
			h.reqs = append(h.reqs, req) // ReqInfo aliases req's bytes
			info := HTTPGet{}.Request(req)
			got, servedRaw, claimed := h.act(info)
			if got != s.want {
				t.Fatalf("step %d (%q): verdict %q, want %q", i, s.req, got, s.want)
			}
			if s.serve != "" && servedRaw != s.serve {
				t.Fatalf("step %d: served\n%q\nwant\n%q", i, servedRaw, s.serve)
			}
			if got == "hit" && claimed != s.wantReval {
				t.Fatalf("step %d: revalidation claimed = %v, want %v", i, claimed, s.wantReval)
			}
		case s.resp != "":
			if h.f == nil {
				t.Fatalf("step %d: resp step without an open flight", i)
			}
			resp := decodeHTTP(t, false, s.resp)
			ri := HTTPGet{}.Response(resp)
			h.f.Fill([]byte(s.resp), ri)
			resp.Release()
			h.f = nil
		case s.revalResp != "":
			if h.rv == nil {
				t.Fatalf("step %d: revalResp step without a claimed revalidation", i)
			}
			// Dispatch exactly as the core does: fabricate the refresh
			// request record and attach it so a replacing 200 can render the
			// next generation's refresh image.
			msg := HTTPGet{}.MakeReval(h.rv.Req, h.rv.Region)
			if msg.IsNull() {
				t.Fatalf("step %d: stored revalidation image did not parse", i)
			}
			if !h.rv.F.AttachRequest(msg) {
				msg.Release()
			}
			resp := decodeHTTP(t, false, s.revalResp)
			ri := HTTPGet{}.Response(resp)
			h.rv.F.Fill([]byte(s.revalResp), ri)
			resp.Release()
			h.rv = nil
		case s.revalDie:
			if h.rv == nil {
				t.Fatalf("step %d: revalDie step without a claimed revalidation", i)
			}
			h.rv.Region.Release()
			h.rv.F.Abort()
			h.rv = nil
		default:
			t.Fatalf("step %d: empty step", i)
		}
	}
	if h.rv != nil {
		h.rv.Region.Release()
		h.rv.F.Abort()
		h.rv = nil
	}
	for _, r := range h.reqs {
		r.Release()
	}
	h.reqs = nil
}

// act performs one classified request against the cache the way the core
// runtime does and reports the verdict, the served bytes on a hit, and
// whether this lookup claimed a background revalidation.
func (h *confHarness) act(info ReqInfo) (string, string, bool) {
	switch info.Class {
	case ClassPass:
		return "pass", "", false
	case ClassInvalidate:
		h.c.Invalidate(info.Scope, info.Key)
		return "inval", "", false
	case ClassInvalidateAll:
		h.c.Clear()
		return "inval", "", false
	}
	v, ok, rv := h.c.Get(0, info)
	if ok {
		raw := string(v.Field("_raw").AsBytes())
		v.Release()
		if rv != nil {
			if h.rv != nil {
				h.t.Fatal("unresolved revalidation claim overwritten")
			}
			h.rv = rv
		}
		return "hit", raw, rv != nil
	}
	if info.Class == ClassCond {
		return "pass", "", false // forwarded untracked; origin evaluates
	}
	f, leader := h.c.Begin(info, Waiter{})
	if !leader {
		return "coalesce", "", false
	}
	h.f = f
	return "miss", "", false
}

// TestRFC9111Conformance runs the conformance table.
func TestRFC9111Conformance(t *testing.T) {
	cases := conformanceCases()
	if len(cases) < 40 {
		t.Fatalf("conformance table holds %d cases, want >= 40", len(cases))
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			newConfHarness(t, tc).run(tc.steps)
		})
	}
}
