package cache

import (
	"time"

	"flick/internal/metrics"
	"flick/internal/value"
)

// A Waiter is a coalesced miss parked on another request's in-flight fill.
// Exactly one of its callbacks fires, asynchronously, from whichever
// goroutine resolves the flight — callbacks must not block and must
// tolerate firing after their instance recycled (the core gates them on a
// binding generation).
type Waiter struct {
	// Tag/HasTag is the waiter's own correlation tag (memcached opaque):
	// the delivered view carries it, not the leader's.
	Tag    uint64
	HasTag bool
	// Deliver receives a self-contained response view built from the
	// filled entry; ownership of one reference transfers to the callback.
	Deliver func(view value.Value)
	// Abort fires when the flight dies without a usable fill (invalidated,
	// non-cacheable response, instance reset): the waiter re-dispatches
	// its own upstream request.
	Abort func()

	// start is the coalesced-wait stamp, set by Begin when the waiter
	// parks; the delivery loop records Begin→Deliver into coalLat.
	start int64
}

// Flight is one in-flight fill: the first miss for a key leads it (owns
// the upstream round trip and resolves it with Fill or Abort); later
// misses for the same key join as waiters. A reval flight is the
// background-refresh flavour, claimed by a stale hit instead of a miss.
type Flight struct {
	c       *Cache
	skey    string // full owned key (vary secondary segment included)
	base    string // variant-prefixed primary key
	key     []byte // owned copy of the request key (nil on reval flights)
	variant byte
	vrule   string // vary rule skey was computed under
	reval   bool   // background refresh of a retained entry
	start   int64  // leading-miss stamp (Begin → Fill into missLat)
	waiters []Waiter

	// req is the leader's retained request record (value.Null when the
	// protocol set none): Fill's Store call renders Vary secondary keys
	// and the next refresh request from it. Guarded by c.fmu; whoever
	// clears it to Null owns the release.
	req value.Value
}

// Key returns the flight's owned request key.
func (f *Flight) Key() []byte { return f.key }

// Variant returns the flight's protocol variant.
func (f *Flight) Variant() byte { return f.variant }

// Reval reports whether this is a background-refresh flight.
func (f *Flight) Reval() bool { return f.reval }

// Begin joins or leads the key's flight after a miss. The leader
// (leader=true) forwards its request upstream and must eventually call
// Fill or Abort; w is ignored for it. A follower (leader=false) parks w on
// the existing flight — which may be a background refresh already in
// flight — and must NOT forward. On a closed cache Begin returns
// (nil, true): forward upstream with no tracking.
func (c *Cache) Begin(info ReqInfo, w Waiter) (*Flight, bool) {
	now := metrics.Now()
	c.fmu.Lock()
	if c.closed {
		c.fmu.Unlock()
		return nil, true
	}
	kb := appendSKey(nil, info.Variant, info.Scope, info.Key)
	base := string(kb)
	skey := base
	rule := c.varies[base]
	if rule != "" && !info.Msg.IsNull() {
		kb = append(kb, varySep)
		kb = c.proto.SecondaryKey(kb, info.Msg, rule)
		skey = string(kb)
	}
	if f := c.flights[skey]; f != nil {
		w.start = now
		f.waiters = append(f.waiters, w)
		c.fmu.Unlock()
		c.coalesced.Inc()
		return f, false
	}
	f := &Flight{
		c:       c,
		skey:    skey,
		base:    base,
		key:     append([]byte(nil), info.Key...),
		variant: info.Variant,
		vrule:   rule,
		start:   now,
		req:     value.Null,
	}
	if !info.Msg.IsNull() {
		info.Msg.Retain()
		f.req = info.Msg
	}
	c.flights[skey] = f
	c.fmu.Unlock()
	return f, true
}

// Reval is a claimed background revalidation: Req is the entry's
// pre-rendered conditional refresh request, living in Region (ownership of
// one retained reference transfers to the caller — Protocol.MakeReval
// consumes it). The caller dispatches the request upstream and resolves F
// with Fill or Abort; until then the stale entry keeps serving.
type Reval struct {
	F      *Flight
	Req    []byte
	Region value.Region
}

// claimReval registers the single background refresh of a stale entry.
// Returns nil when the refresh is already claimed (or any flight owns the
// key, or the cache closed): the stale window stays single-flight.
func (c *Cache) claimReval(e *entry) *Reval {
	c.fmu.Lock()
	if c.closed || c.index[e.skey] != e || e.revalidating || c.flights[e.skey] != nil {
		c.fmu.Unlock()
		return nil
	}
	e.revalidating = true
	f := &Flight{
		c:     c,
		skey:  e.skey,
		base:  e.base,
		reval: true,
		start: metrics.Now(),
		req:   value.Null,
	}
	c.flights[e.skey] = f
	e.region.Retain()
	rv := &Reval{F: f, Req: e.reval, Region: e.region}
	c.fmu.Unlock()
	return rv
}

// AttachRequest hands the flight the fabricated refresh request record
// built over Reval.Req, so a replacing 200 fill can render the next
// generation's validators and refresh request from it. Ownership of one
// reference transfers on true; on false (flight already resolved or
// killed) the caller keeps it.
func (f *Flight) AttachRequest(msg value.Value) bool {
	c := f.c
	c.fmu.Lock()
	if c.flights[f.skey] != f {
		c.fmu.Unlock()
		return false
	}
	old := f.req
	f.req = msg
	c.fmu.Unlock()
	if !old.IsNull() {
		old.Release()
	}
	return true
}

// Fill resolves the flight with the upstream response's wire image. When
// the response is admissible (ri.Admit, non-empty, within MaxEntryBytes)
// the protocol's rendered image is installed and every waiter receives its
// own retained view; otherwise the waiters abort and re-dispatch. A
// response carrying Vary updates the base key's learned rule: the entry
// installs under the folded secondary key, and a rule *change* purges the
// base's old-rule entries and aborts the waiters (their secondary keys
// were computed under the stale rule). A flight already killed by
// invalidation (or a closed cache) stores nothing — its waiters were
// aborted at kill time. raw need only stay valid for the duration of the
// call; the entry owns a pooled copy.
func (f *Flight) Fill(raw []byte, ri RespInfo) {
	if f.reval {
		f.fillReval(raw, ri)
		return
	}
	c := f.c
	// Take the retained request under fmu first: a concurrent kill path
	// releases f.req, so reading it unlocked would race. Clearing it to
	// Null transfers ownership here; the kill paths then skip it.
	c.fmu.Lock()
	if c.flights[f.skey] != f {
		c.fmu.Unlock()
		return
	}
	req := f.req
	f.req = value.Null
	c.fmu.Unlock()

	// Render the stored image outside every lock (Store may copy and
	// allocate; misses are off the hit path).
	admit := ri.Admit && !ri.NotModified && len(raw) > 0 && len(raw) <= MaxEntryBytes
	if ri.Negative && c.negTTL <= 0 {
		admit = false
	}
	rule := f.vrule
	skey := f.skey
	var img []byte
	var si StoreInfo
	if admit {
		rule = normalizeVary(ri.Vary)
		if rule != f.vrule {
			if req.IsNull() && rule != "" {
				// No request material to fold the new rule's headers from:
				// the response can't be keyed. Serve-and-drop.
				admit = false
			} else {
				skey = f.base
				if rule != "" {
					kb := append(append([]byte(nil), f.base...), varySep)
					skey = string(c.proto.SecondaryKey(kb, req, rule))
				}
			}
		}
	}
	if admit {
		img, si = c.proto.Store(raw, ri, req)
		if si.ImageLen == 0 {
			si.ImageLen = len(img)
			si.AgeOff = -1
		}
		admit = len(img) > 0
	}

	c.fmu.Lock()
	if c.flights[f.skey] != f {
		c.fmu.Unlock()
		if !req.IsNull() {
			req.Release()
		}
		return
	}
	delete(c.flights, f.skey)
	waiters := f.waiters
	f.waiters = nil
	var e *entry
	deliver := true
	if !c.closed && admit {
		if rule != f.vrule {
			c.setVaryRuleLocked(f.base, rule)
			// Existing entries under the base were keyed by the old rule;
			// purge them so new-rule lookups can't serve a mismatched
			// variant. Waiters joined under the old rule too: abort them.
			for len(c.byBase[f.base]) > 0 {
				c.removeLocked(c.byBase[f.base][0])
			}
			deliver = false
		}
		e = c.newEntry(skey, f.base, img, si, ri)
		c.install(e)
		c.fills.Inc()
		if deliver && len(waiters) > 0 {
			// Guard reference: keeps the entry's bytes valid across the
			// delivery loop even if a concurrent fill evicts it.
			e.region.Retain()
		}
	}
	c.fmu.Unlock()
	if !req.IsNull() {
		req.Release()
	}
	now := metrics.Now()
	c.missLat.Record(time.Duration(now - f.start))
	if e == nil || !deliver {
		c.abortWaiters(waiters)
		return
	}
	for _, w := range waiters {
		c.coalLat.Record(time.Duration(now - w.start))
		w.Deliver(c.proto.MakeHit(Hit{
			Raw: e.raw, Region: e.region,
			Tag: w.Tag, HasTag: w.HasTag,
			AgeOff: e.ageOff, AgeSecs: 0,
		}))
	}
	if len(waiters) > 0 {
		e.region.Release()
	}
}

// fillReval resolves a background refresh: an upstream 304 extends the
// retained entry's freshness in place; an admissible 200 replaces it
// (keyed under the same secondary key it was claimed with); anything else
// — error response, non-cacheable refresh — leaves the stale entry
// serving until its hard deadline, the graceful-degradation half of
// stale-while-revalidate. Waiters (misses that arrived after the entry's
// hard expiry) are delivered from the surviving entry or aborted.
func (f *Flight) fillReval(raw []byte, ri RespInfo) {
	c := f.c
	c.fmu.Lock()
	if c.flights[f.skey] != f {
		c.fmu.Unlock()
		return
	}
	req := f.req
	f.req = value.Null
	c.fmu.Unlock()

	admit := ri.Admit && !ri.NotModified && len(raw) > 0 && len(raw) <= MaxEntryBytes
	if ri.Negative && c.negTTL <= 0 {
		admit = false
	}
	var img []byte
	var si StoreInfo
	if admit {
		img, si = c.proto.Store(raw, ri, req)
		if si.ImageLen == 0 {
			si.ImageLen = len(img)
			si.AgeOff = -1
		}
		admit = len(img) > 0
	}

	c.fmu.Lock()
	if c.flights[f.skey] != f {
		c.fmu.Unlock()
		if !req.IsNull() {
			req.Release()
		}
		return
	}
	delete(c.flights, f.skey)
	waiters := f.waiters
	f.waiters = nil
	e := c.index[f.skey]
	if e != nil {
		e.revalidating = false
	}
	switch {
	case c.closed:
		e = nil
	case ri.NotModified && e != nil:
		c.extendLocked(e, ri)
		c.revalidated.Inc()
	case admit:
		e = c.newEntry(f.skey, f.base, img, si, ri)
		c.install(e)
		c.fills.Inc()
	default:
		// Failed refresh: the stale entry (when still resident) keeps
		// serving; a later stale hit re-claims the revalidation.
		e = nil
	}
	if e != nil && len(waiters) > 0 {
		e.region.Retain()
	}
	born := int64(0)
	ageOff := -1
	var eraw []byte
	var region value.Region
	if e != nil {
		born, ageOff, eraw, region = e.born, e.ageOff, e.raw, e.region
	}
	c.fmu.Unlock()
	if !req.IsNull() {
		req.Release()
	}
	now := metrics.Now()
	c.missLat.Record(time.Duration(now - f.start))
	if e == nil {
		c.abortWaiters(waiters)
		return
	}
	age := (c.now() - born) / int64(time.Second)
	for _, w := range waiters {
		c.coalLat.Record(time.Duration(now - w.start))
		w.Deliver(c.proto.MakeHit(Hit{
			Raw: eraw, Region: region,
			Tag: w.Tag, HasTag: w.HasTag,
			AgeOff: ageOff, AgeSecs: age,
		}))
	}
	if len(waiters) > 0 {
		region.Release()
	}
}

// Abort resolves the flight without a fill: every parked waiter
// re-dispatches, and a reval flight hands the stale entry back its
// revalidation claim. Safe to call on an already-resolved flight.
func (f *Flight) Abort() {
	c := f.c
	c.fmu.Lock()
	if c.flights[f.skey] != f {
		c.fmu.Unlock()
		return
	}
	delete(c.flights, f.skey)
	if f.reval {
		if e := c.index[f.skey]; e != nil {
			e.revalidating = false
		}
	}
	req := f.req
	f.req = value.Null
	waiters := f.waiters
	f.waiters = nil
	c.fmu.Unlock()
	if !req.IsNull() {
		req.Release()
	}
	c.abortWaiters(waiters)
}

// abortWaiters fires Abort callbacks outside every cache lock.
func (c *Cache) abortWaiters(waiters []Waiter) {
	for _, w := range waiters {
		c.aborts.Inc()
		if w.Abort != nil {
			w.Abort()
		}
	}
}
