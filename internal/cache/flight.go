package cache

import (
	"time"

	"flick/internal/metrics"
	"flick/internal/value"
)

// A Waiter is a coalesced miss parked on another request's in-flight fill.
// Exactly one of its callbacks fires, asynchronously, from whichever
// goroutine resolves the flight — callbacks must not block and must
// tolerate firing after their instance recycled (the core gates them on a
// binding generation).
type Waiter struct {
	// Tag/HasTag is the waiter's own correlation tag (memcached opaque):
	// the delivered view carries it, not the leader's.
	Tag    uint64
	HasTag bool
	// Deliver receives a self-contained response view built from the
	// filled entry; ownership of one reference transfers to the callback.
	Deliver func(view value.Value)
	// Abort fires when the flight dies without a usable fill (invalidated,
	// non-cacheable response, instance reset): the waiter re-dispatches
	// its own upstream request.
	Abort func()

	// start is the coalesced-wait stamp, set by Begin when the waiter
	// parks; the delivery loop records Begin→Deliver into coalLat.
	start int64
}

// Flight is one in-flight fill: the first miss for a key leads it (owns
// the upstream round trip and resolves it with Fill or Abort); later
// misses for the same key join as waiters.
type Flight struct {
	c       *Cache
	skey    string // variant-prefixed owned key
	key     []byte // owned copy of the request key
	variant byte
	start   int64 // leading-miss stamp (Begin → Fill into missLat)
	waiters []Waiter
}

// Key returns the flight's owned request key.
func (f *Flight) Key() []byte { return f.key }

// Variant returns the flight's protocol variant.
func (f *Flight) Variant() byte { return f.variant }

// Begin joins or leads the key's flight after a miss. The leader
// (leader=true) forwards its request upstream and must eventually call
// Fill or Abort; w is ignored for it. A follower (leader=false) parks w on
// the existing flight and must NOT forward. On a closed cache Begin
// returns (nil, true): forward upstream with no tracking.
func (c *Cache) Begin(info ReqInfo, w Waiter) (*Flight, bool) {
	now := metrics.Now()
	c.fmu.Lock()
	if c.closed {
		c.fmu.Unlock()
		return nil, true
	}
	skey := string(appendSKey(nil, info.Variant, info.Scope, info.Key))
	if f := c.flights[skey]; f != nil {
		w.start = now
		f.waiters = append(f.waiters, w)
		c.fmu.Unlock()
		c.coalesced.Inc()
		return f, false
	}
	f := &Flight{c: c, skey: skey, key: append([]byte(nil), info.Key...), variant: info.Variant, start: now}
	c.flights[skey] = f
	c.fmu.Unlock()
	return f, true
}

// Fill resolves the flight with the upstream response's wire image. When
// the response is admissible (ri.Admit, non-empty, within MaxEntryBytes)
// the entry is installed and every waiter receives its own retained view;
// otherwise the waiters abort and re-dispatch. A flight already killed by
// invalidation (or a closed cache) stores nothing — its waiters were
// aborted at kill time. raw need only stay valid for the duration of the
// call; the entry owns a pooled copy.
func (f *Flight) Fill(raw []byte, ri RespInfo) {
	c := f.c
	c.fmu.Lock()
	if c.flights[f.skey] != f {
		// Killed by Invalidate/Clear/Close: waiters already drained.
		c.fmu.Unlock()
		return
	}
	delete(c.flights, f.skey)
	waiters := f.waiters
	f.waiters = nil
	var e *entry
	if !c.closed && ri.Admit && len(raw) > 0 && len(raw) <= MaxEntryBytes {
		e = c.newEntry(f.skey, raw, ri)
		c.install(e)
		c.fills.Inc()
		if len(waiters) > 0 {
			// Guard reference: keeps the entry's bytes valid across the
			// delivery loop even if a concurrent fill evicts it.
			e.region.Retain()
		}
	}
	c.fmu.Unlock()
	now := metrics.Now()
	c.missLat.Record(time.Duration(now - f.start))
	if e == nil {
		c.abortWaiters(waiters)
		return
	}
	for _, w := range waiters {
		c.coalLat.Record(time.Duration(now - w.start))
		w.Deliver(c.proto.MakeHit(e.raw, e.region, w.Tag, w.HasTag))
	}
	if len(waiters) > 0 {
		e.region.Release()
	}
}

// Abort resolves the flight without a fill: every parked waiter
// re-dispatches. Safe to call on an already-resolved flight.
func (f *Flight) Abort() {
	c := f.c
	c.fmu.Lock()
	if c.flights[f.skey] != f {
		c.fmu.Unlock()
		return
	}
	delete(c.flights, f.skey)
	waiters := f.waiters
	f.waiters = nil
	c.fmu.Unlock()
	c.abortWaiters(waiters)
}

// abortWaiters fires Abort callbacks outside every cache lock.
func (c *Cache) abortWaiters(waiters []Waiter) {
	for _, w := range waiters {
		c.aborts.Inc()
		if w.Abort != nil {
			w.Abort()
		}
	}
}
