package cache

// Freshness helpers shared by the hit path (validator matching — must not
// allocate) and the fill path (vary-rule normalization — may).

// etagMatch reports whether the If-None-Match field value inm matches the
// stored entity tag etag, per RFC 9110 §13.1.2: "*" matches any stored
// response, the field is a comma-separated tag list, and comparison is
// weak — a W/ prefix on either side is ignored. Allocation-free.
func etagMatch(inm, etag []byte) bool {
	inm = trimOWS(inm)
	if len(inm) == 1 && inm[0] == '*' {
		return true
	}
	target := stripWeak(etag)
	for len(inm) > 0 {
		tok := inm
		if i := byteIndex(inm, ','); i >= 0 {
			tok, inm = inm[:i], inm[i+1:]
		} else {
			inm = nil
		}
		tok = trimOWS(tok)
		if len(tok) == 0 {
			continue
		}
		if bytesEq(stripWeak(tok), target) {
			return true
		}
	}
	return false
}

// stripWeak drops an entity tag's weakness prefix (W/"x" → "x").
func stripWeak(t []byte) []byte {
	if len(t) >= 2 && (t[0] == 'W' || t[0] == 'w') && t[1] == '/' {
		return t[2:]
	}
	return t
}

// bytesEqualTrim reports a == b after trimming optional whitespace from a
// (b is stored pre-trimmed). The If-Modified-Since comparison: byte
// equality of HTTP-dates, deliberately conservative — a semantically equal
// but differently rendered date misses and refetches, it never serves a
// wrong 304.
func bytesEqualTrim(a, b []byte) bool {
	return bytesEq(trimOWS(a), b)
}

// normalizeVary canonicalises a Vary field value into the cache's rule
// form: lowercase header names, comma-joined, whitespace and empty
// members dropped ("Accept-Encoding, X-Client " → "accept-encoding,
// x-client" without the space). Returns "" for an absent/empty value.
// Member order is preserved — origins emit Vary consistently, and an
// order flap merely re-learns the rule. Runs on the fill path: allocation
// is fine.
func normalizeVary(v []byte) string {
	if len(v) == 0 {
		return ""
	}
	out := make([]byte, 0, len(v))
	for len(v) > 0 {
		tok := v
		if i := byteIndex(v, ','); i >= 0 {
			tok, v = v[:i], v[i+1:]
		} else {
			v = nil
		}
		tok = trimOWS(tok)
		if len(tok) == 0 {
			continue
		}
		if len(out) > 0 {
			out = append(out, ',')
		}
		for _, c := range tok {
			if 'A' <= c && c <= 'Z' {
				c += 'a' - 'A'
			}
			out = append(out, c)
		}
	}
	return string(out)
}

// --- allocation-free byte primitives (hit path: no bytes import here to
// keep the compiler's escape analysis trivial) ---

func trimOWS(b []byte) []byte {
	for len(b) > 0 && (b[0] == ' ' || b[0] == '\t') {
		b = b[1:]
	}
	for len(b) > 0 && (b[len(b)-1] == ' ' || b[len(b)-1] == '\t') {
		b = b[:len(b)-1]
	}
	return b
}

func byteIndex(b []byte, c byte) int {
	for i, x := range b {
		if x == c {
			return i
		}
	}
	return -1
}

func bytesEq(a, b []byte) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
