package cache

import (
	"bytes"
	"strconv"
	"time"

	"flick/internal/buffer"
	phttp "flick/internal/proto/http"
	"flick/internal/value"
)

// HTTPGet adapts the cache to HTTP/1.1 load balancing: plain GET
// responses are cached per Host + URI; non-GET methods with side effects
// write through as invalidations. HTTP/1.1 responses answer requests
// strictly in order per connection, so the adapter is FIFO — the core
// correlates through per-port slot queues instead of tags.
//
// The adapter speaks the RFC 9111 freshness model:
//
//   - Conditional requests (If-None-Match / If-Modified-Since) classify as
//     ClassCond: a resident entry answers them — the pre-rendered 304 on a
//     validator match, the full body otherwise — and a miss passes through
//     for the origin to evaluate.
//   - Responses carrying Vary are admitted under a learned per-key rule:
//     the named request headers' values fold into a secondary key segment
//     (SecondaryKey), so each negotiated variant gets its own entry.
//     Vary: * stays uncacheable.
//   - Stored entries keep their validators plus two pre-rendered images: a
//     304 for conditional hits and a conditional GET for upstream
//     revalidation, so the background-refresh path never renders on
//     demand.
//   - Served hits carry an Age header patched into a fixed-width digit
//     zone Store injected after the status line — a pooled copy-and-patch,
//     exactly the memcached opaque technique, keeping hits allocation-free.
//
// Conservatism over coverage. The cache is shared across every client of
// the service, so anything that could make a response per-user bypasses
// it entirely: credentialed requests (Authorization, Cookie), Range
// requests and Cache-Control: no-cache/no-store pass through; responses
// with Set-Cookie, no-store/no-cache/private, or Content-Encoding without
// a Vary rule covering Accept-Encoding are never admitted. Requests
// without a Host header pass too — there is no namespace to key them
// under.
type HTTPGet struct{}

// Forbidding/parsed tokens, package-level so the hot classification path
// never allocates.
var (
	ccNoCache    = []byte("no-cache")
	ccNoStore    = []byte("no-store")
	ccPrivate    = []byte("private")
	ccMaxAge     = []byte("max-age=")
	tokAcceptEnc = []byte("accept-encoding")
)

// The Age patch zone Store injects directly after the status line:
// "Age: " + ageZoneLen digit cells + CRLF. Hits patch the cells with the
// entry's residency in seconds, left-aligned, space-padded (trailing
// whitespace in a field value is trimmed by any compliant parser).
const (
	ageZoneLen = 8
	agePrefix  = "Age: "
	ageLine    = agePrefix + "0       \r\n"
)

// Name implements Protocol.
func (HTTPGet) Name() string { return "http-get" }

// Fifo implements Protocol: HTTP/1.1 responses arrive in request order.
func (HTTPGet) Fifo() bool { return true }

// Variants implements Protocol: one response shape per URI.
func (HTTPGet) Variants() []byte { return []byte{0} }

// Request implements Protocol.
func (HTTPGet) Request(req value.Value) ReqInfo {
	method := req.Field("method").AsBytes()
	uri := req.Field("uri").AsBytes()
	host, hasHost := phttp.HeaderBytes(req, "Host")
	if !bytesEqualStr(method, "GET") {
		switch {
		case bytesEqualStr(method, "HEAD"), bytesEqualStr(method, "OPTIONS"),
			bytesEqualStr(method, "TRACE"):
			// Safe methods, but their responses differ from GET's: pass.
			return ReqInfo{Class: ClassPass}
		case len(uri) > 0:
			// POST/PUT/DELETE/PATCH/...: write through the URI's entry.
			return ReqInfo{Class: ClassInvalidate, Key: uri, Scope: host}
		default:
			return ReqInfo{Class: ClassPass}
		}
	}
	if len(uri) == 0 || !hasHost || len(host) == 0 || req.Field("keep_alive").AsInt() != 1 {
		// A closing client gets a closing response — never cacheable —
		// and a request without a Host has no cache namespace.
		return ReqInfo{Class: ClassPass}
	}
	if hdrPresent(req, "Authorization") || hdrPresent(req, "Cookie") ||
		hdrPresent(req, "Range") {
		return ReqInfo{Class: ClassPass}
	}
	if cc, ok := phttp.HeaderBytes(req, "Cache-Control"); ok {
		if bytes.Contains(cc, ccNoCache) || bytes.Contains(cc, ccNoStore) {
			return ReqInfo{Class: ClassPass}
		}
	}
	info := ReqInfo{Key: uri, Scope: host, Msg: req}
	inm, hasINM := phttp.HeaderBytes(req, "If-None-Match")
	ims, hasIMS := phttp.HeaderBytes(req, "If-Modified-Since")
	if hasINM || hasIMS {
		info.Class = ClassCond
		info.IfNoneMatch = inm
		info.IfModifiedSince = ims
		return info
	}
	info.Class = ClassLookup
	return info
}

// Response implements Protocol.
func (HTTPGet) Response(resp value.Value) RespInfo {
	status := resp.Field("status").AsInt()
	if status < 200 {
		// 1xx: forwarded without consuming the pending request slot.
		return RespInfo{Informational: true}
	}
	ri := RespInfo{Match: true}
	if status == 304 {
		// An upstream 304 answers a revalidation (or a passed-through
		// conditional): never a body of its own, but its max-age caps the
		// freshness extension it grants.
		ri.NotModified = true
		ri.TTL, _ = parseMaxAge(resp)
		return ri
	}
	if status != 200 {
		return ri
	}
	if resp.Field("keep_alive").AsInt() != 1 {
		// Connection-delimited body: replaying it verbatim on a kept-alive
		// client connection would leave the client unable to frame it.
		return ri
	}
	if hdrPresent(resp, "Set-Cookie") {
		// Per-client session material: never shareable.
		return ri
	}
	vary, hasVary := phttp.HeaderBytes(resp, "Vary")
	if hasVary && bytes.IndexByte(vary, '*') >= 0 {
		// Vary: * — negotiated on axes no key can capture.
		return ri
	}
	if hdrPresent(resp, "Content-Encoding") &&
		!(hasVary && containsTokenFold(vary, tokAcceptEnc)) {
		// A negotiated body a different client may not be able to decode —
		// cacheable only when Vary: Accept-Encoding keys each encoding to
		// the clients that asked for it.
		return ri
	}
	ttl, ok := parseMaxAge(resp)
	if !ok {
		return ri
	}
	ri.TTL = ttl
	ri.Vary = vary
	ri.ETag, _ = phttp.HeaderBytes(resp, "ETag")
	ri.LastModified, _ = phttp.HeaderBytes(resp, "Last-Modified")
	ri.Admit = true
	return ri
}

// parseMaxAge extracts Cache-Control's freshness verdict: TTL>0 when
// max-age caps the lifetime, 0 when Cache-Control imposes none, ok=false
// when a directive forbids storing (no-store/no-cache/private, or an
// already-stale max-age).
func parseMaxAge(resp value.Value) (time.Duration, bool) {
	cc, ok := phttp.HeaderBytes(resp, "Cache-Control")
	if !ok {
		return 0, true
	}
	if bytes.Contains(cc, ccNoStore) || bytes.Contains(cc, ccNoCache) ||
		bytes.Contains(cc, ccPrivate) {
		return 0, false
	}
	if i := bytes.Index(cc, ccMaxAge); i >= 0 {
		v := cc[i+len(ccMaxAge):]
		if j := bytes.IndexAny(v, ", "); j >= 0 {
			v = v[:j]
		}
		secs, err := strconv.Atoi(string(v))
		if err != nil || secs <= 0 {
			// max-age=0 (or unparsable): already stale, don't store.
			return 0, false
		}
		return time.Duration(secs) * time.Second, true
	}
	return 0, true
}

// Store implements Protocol: it renders the retained image for an admitted
// 200 — the served body with an Age digit zone injected after the status
// line (any origin Age is dropped; residency restarts at admission), then
// the pre-rendered 304 for conditional hits, then the upstream
// revalidation request. Validator offsets index the header copy inside the
// served image.
func (HTTPGet) Store(raw []byte, ri RespInfo, req value.Value) ([]byte, StoreInfo) {
	si := StoreInfo{AgeOff: -1}
	eol := bytes.Index(raw, crlf)
	hdrEnd := bytes.Index(raw, crlf2)
	if eol < 0 || hdrEnd < 0 {
		return nil, si
	}
	out := make([]byte, 0, len(raw)+512)
	out = append(out, raw[:eol+2]...)
	si.AgeOff = len(out) + len(agePrefix)
	out = append(out, ageLine...)
	// Copy the header block line by line, dropping any origin Age and
	// recording where the validators land in the copy.
	block := raw[eol+2 : hdrEnd+2]
	for len(block) > 0 {
		nl := bytes.Index(block, crlf)
		if nl < 0 {
			break
		}
		line := block[:nl+2]
		block = block[nl+2:]
		name, val := splitHdr(line[:nl])
		if foldEqual(name, "age") {
			continue
		}
		lineOff := len(out)
		out = append(out, line...)
		if len(val) == 0 {
			continue
		}
		valOff := lineOff + (nl - len(val))
		if foldEqual(name, "etag") {
			si.ETagOff, si.ETagLen = valOff, len(val)
		} else if foldEqual(name, "last-modified") {
			si.LastModOff, si.LastModLen = valOff, len(val)
		}
	}
	out = append(out, crlf...)
	out = append(out, raw[hdrEnd+4:]...)
	si.ImageLen = len(out)

	etag := sliceAt(out, si.ETagOff, si.ETagLen)
	lastMod := sliceAt(out, si.LastModOff, si.LastModLen)
	if len(etag) > 0 || len(lastMod) > 0 {
		si.NotModOff = len(out)
		out = phttp.BuildNotModified(out, etag, lastMod)
		si.NotModLen = len(out) - si.NotModOff
	}
	if !req.IsNull() {
		uri := req.Field("uri").AsBytes()
		host, _ := phttp.HeaderBytes(req, "Host")
		if len(uri) > 0 && len(host) > 0 {
			si.RevalOff = len(out)
			out = phttp.BuildConditionalGet(out, uri, host, etag, lastMod)
			si.RevalLen = len(out) - si.RevalOff
		}
	}
	return out, si
}

// SecondaryKey implements Protocol: for each header named in the learned
// vary rule (lowercase, comma-separated) the request's trimmed value is
// appended behind a 0x01 cell separator — a byte no header value may
// contain — so absent, empty and differently-valued headers key apart.
// Allocation-free: runs inside the hit path's shard lock.
func (HTTPGet) SecondaryKey(dst []byte, req value.Value, rule string) []byte {
	for len(rule) > 0 {
		name := rule
		if i := strIndexByte(rule, ','); i >= 0 {
			name, rule = rule[:i], rule[i+1:]
		} else {
			rule = ""
		}
		if name == "" {
			continue
		}
		dst = append(dst, 0x01)
		if v, ok := phttp.HeaderBytes(req, name); ok {
			dst = append(dst, v...)
		}
	}
	return dst
}

// MakeHit implements Protocol: an image with an Age zone is copied into a
// fresh pooled region and the zone patched with the entry's residency —
// the memcached opaque-patch technique, zero heap allocations — while a
// zoneless image (the synthesized 304) replays verbatim under a region
// retain.
func (HTTPGet) MakeHit(h Hit) value.Value {
	if h.AgeOff >= 0 {
		ref := buffer.Global.GetRef(len(h.Raw))
		b := ref.Bytes()[:len(h.Raw)]
		copy(b, h.Raw)
		patchAge(b[h.AgeOff:h.AgeOff+ageZoneLen], h.AgeSecs)
		rec := phttp.ResponseDesc.NewOwned(ref)
		rec.SetField("_raw", value.Bytes(b))
		return rec
	}
	h.Region.Retain()
	rec := phttp.ResponseDesc.NewOwned(h.Region)
	rec.SetField("_raw", value.Bytes(h.Raw))
	return rec
}

// MakeReval implements Protocol: a request record over the entry's
// pre-rendered conditional GET (the shape Store composed:
// "GET <uri> HTTP/1.1\r\n<headers>\r\n\r\n", bodiless). Ownership of the
// caller's retained region reference transfers to the record; on a
// malformed image the reference is released and Null returned.
func (HTTPGet) MakeReval(raw []byte, region value.Region) value.Value {
	eol := bytes.Index(raw, crlf)
	hdrEnd := bytes.Index(raw, crlf2)
	if eol < 0 || hdrEnd < 0 {
		region.Release()
		return value.Null
	}
	line := raw[:eol]
	sp1 := bytes.IndexByte(line, ' ')
	sp2 := -1
	if sp1 >= 0 {
		if j := bytes.IndexByte(line[sp1+1:], ' '); j >= 0 {
			sp2 = sp1 + 1 + j
		}
	}
	if sp2 < 0 {
		region.Release()
		return value.Null
	}
	rec := phttp.RequestDesc.NewOwned(region)
	rec.L[0] = value.Bytes(line[:sp1])        // method
	rec.L[1] = value.Bytes(line[sp1+1 : sp2]) // uri
	rec.L[2] = value.Bytes(line[sp2+1:])      // version
	rec.L[3] = value.Bytes(raw[eol+2 : hdrEnd+2])
	rec.L[4] = value.Bytes(nil)
	rec.L[5] = value.Int(0)
	rec.L[6] = value.Int(1)
	rec.L[7] = value.Bytes(raw)
	return rec
}

// patchAge renders secs into the fixed-width Age digit zone: left-aligned
// decimal digits, space padding, saturating at the zone's capacity.
func patchAge(zone []byte, secs int64) {
	if secs < 0 {
		secs = 0
	}
	if secs > 99999999 {
		secs = 99999999
	}
	var tmp [ageZoneLen]byte
	i := len(tmp)
	for {
		i--
		tmp[i] = '0' + byte(secs%10)
		secs /= 10
		if secs == 0 {
			break
		}
	}
	n := copy(zone, tmp[i:])
	for ; n < len(zone); n++ {
		zone[n] = ' '
	}
}

// --- small byte helpers ---

var (
	crlf  = []byte("\r\n")
	crlf2 = []byte("\r\n\r\n")
)

// splitHdr splits one header line (no CRLF) into its name and trimmed
// value.
func splitHdr(line []byte) (name, val []byte) {
	i := bytes.IndexByte(line, ':')
	if i < 0 {
		return line, nil
	}
	return line[:i], bytes.TrimSpace(line[i+1:])
}

// foldEqual reports name == s ASCII case-insensitively, s lowercase.
func foldEqual(name []byte, s string) bool {
	if len(name) != len(s) {
		return false
	}
	for i := 0; i < len(name); i++ {
		c := name[i]
		if 'A' <= c && c <= 'Z' {
			c += 'a' - 'A'
		}
		if c != s[i] {
			return false
		}
	}
	return true
}

// containsTokenFold reports whether the comma/space-separated list hay
// contains needle as a whole token, ASCII case-insensitively (needle
// lowercase).
func containsTokenFold(hay, needle []byte) bool {
	for i := 0; i < len(hay); {
		for i < len(hay) && (hay[i] == ',' || hay[i] == ' ' || hay[i] == '\t') {
			i++
		}
		start := i
		for i < len(hay) && hay[i] != ',' && hay[i] != ' ' && hay[i] != '\t' {
			i++
		}
		tok := hay[start:i]
		if len(tok) != len(needle) {
			continue
		}
		match := true
		for j := range tok {
			c := tok[j]
			if 'A' <= c && c <= 'Z' {
				c += 'a' - 'A'
			}
			if c != needle[j] {
				match = false
				break
			}
		}
		if match {
			return true
		}
	}
	return false
}

// sliceAt returns b[off:off+n] when n > 0, nil otherwise.
func sliceAt(b []byte, off, n int) []byte {
	if n <= 0 {
		return nil
	}
	return b[off : off+n]
}

// strIndexByte is strings.IndexByte without the import.
func strIndexByte(s string, c byte) int {
	for i := 0; i < len(s); i++ {
		if s[i] == c {
			return i
		}
	}
	return -1
}

// hdrPresent reports whether the named header exists on the message.
func hdrPresent(msg value.Value, name string) bool {
	_, ok := phttp.HeaderBytes(msg, name)
	return ok
}

// bytesEqualStr reports b == s without allocating.
func bytesEqualStr(b []byte, s string) bool {
	if len(b) != len(s) {
		return false
	}
	for i := 0; i < len(b); i++ {
		if b[i] != s[i] {
			return false
		}
	}
	return true
}
