package cache

import (
	"bytes"
	"strconv"
	"time"

	phttp "flick/internal/proto/http"
	"flick/internal/value"
)

// HTTPGet adapts the cache to HTTP/1.1 load balancing: plain GET
// responses are cached per Host + URI; non-GET methods with side effects
// write through as invalidations. HTTP/1.1 responses answer requests
// strictly in order per connection, so the adapter is FIFO — the core
// correlates through per-port slot queues instead of tags.
//
// Conservatism over coverage. The cache is shared across every client of
// the service, so anything that could make a response per-user or
// per-negotiation bypasses it entirely:
//
//   - Requests: conditional requests (If-None-Match / If-Modified-Since —
//     the ETag revalidation path), credentialed requests (Authorization,
//     Cookie), Range requests and Cache-Control: no-cache/no-store pass
//     through. Requests without a Host header pass too — there is no
//     namespace to key them under.
//   - Responses: only 200 responses free of forbidding Cache-Control
//     directives are admitted, with max-age capping the entry TTL — and
//     never when the response carries Set-Cookie (a per-client session),
//     Vary (content negotiation the Host+URI key doesn't capture) or
//     Content-Encoding (a negotiated body a different client may not be
//     able to decode).
type HTTPGet struct{}

// Forbidding/parsed tokens, package-level so the hot classification path
// never allocates.
var (
	ccNoCache = []byte("no-cache")
	ccNoStore = []byte("no-store")
	ccPrivate = []byte("private")
	ccMaxAge  = []byte("max-age=")
)

// Name implements Protocol.
func (HTTPGet) Name() string { return "http-get" }

// Fifo implements Protocol: HTTP/1.1 responses arrive in request order.
func (HTTPGet) Fifo() bool { return true }

// Variants implements Protocol: one response shape per URI.
func (HTTPGet) Variants() []byte { return []byte{0} }

// Request implements Protocol.
func (HTTPGet) Request(req value.Value) ReqInfo {
	method := req.Field("method").AsBytes()
	uri := req.Field("uri").AsBytes()
	host, hasHost := phttp.HeaderBytes(req, "Host")
	if !bytesEqualStr(method, "GET") {
		switch {
		case bytesEqualStr(method, "HEAD"), bytesEqualStr(method, "OPTIONS"),
			bytesEqualStr(method, "TRACE"):
			// Safe methods, but their responses differ from GET's: pass.
			return ReqInfo{Class: ClassPass}
		case len(uri) > 0:
			// POST/PUT/DELETE/PATCH/...: write through the URI's entry.
			return ReqInfo{Class: ClassInvalidate, Key: uri, Scope: host}
		default:
			return ReqInfo{Class: ClassPass}
		}
	}
	if len(uri) == 0 || !hasHost || len(host) == 0 || req.Field("keep_alive").AsInt() != 1 {
		// A closing client gets a closing response — never cacheable —
		// and a request without a Host has no cache namespace.
		return ReqInfo{Class: ClassPass}
	}
	if hdrPresent(req, "If-None-Match") || hdrPresent(req, "If-Modified-Since") ||
		hdrPresent(req, "Authorization") || hdrPresent(req, "Cookie") ||
		hdrPresent(req, "Range") {
		return ReqInfo{Class: ClassPass}
	}
	if cc, ok := phttp.HeaderBytes(req, "Cache-Control"); ok {
		if bytes.Contains(cc, ccNoCache) || bytes.Contains(cc, ccNoStore) {
			return ReqInfo{Class: ClassPass}
		}
	}
	return ReqInfo{Class: ClassLookup, Key: uri, Scope: host}
}

// Response implements Protocol.
func (HTTPGet) Response(resp value.Value) RespInfo {
	status := resp.Field("status").AsInt()
	if status < 200 {
		// 1xx: forwarded without consuming the pending request slot.
		return RespInfo{Informational: true}
	}
	ri := RespInfo{Match: true}
	if status != 200 {
		return ri
	}
	if resp.Field("keep_alive").AsInt() != 1 {
		// Connection-delimited body: replaying it verbatim on a kept-alive
		// client connection would leave the client unable to frame it.
		return ri
	}
	if hdrPresent(resp, "Set-Cookie") || hdrPresent(resp, "Vary") ||
		hdrPresent(resp, "Content-Encoding") {
		// Per-client session material, or a body negotiated on request
		// headers the Host+URI key doesn't capture: never shareable.
		return ri
	}
	if cc, ok := phttp.HeaderBytes(resp, "Cache-Control"); ok {
		if bytes.Contains(cc, ccNoStore) || bytes.Contains(cc, ccNoCache) ||
			bytes.Contains(cc, ccPrivate) {
			return ri
		}
		if i := bytes.Index(cc, ccMaxAge); i >= 0 {
			v := cc[i+len(ccMaxAge):]
			if j := bytes.IndexAny(v, ", "); j >= 0 {
				v = v[:j]
			}
			secs, err := strconv.Atoi(string(v))
			if err != nil || secs <= 0 {
				// max-age=0 (or unparsable): already stale, don't store.
				return ri
			}
			ri.TTL = time.Duration(secs) * time.Second
		}
	}
	ri.Admit = true
	return ri
}

// MakeHit implements Protocol: HTTP carries no correlation tag, so the
// stored image replays verbatim (one region retain plus a pooled record).
func (HTTPGet) MakeHit(raw []byte, region value.Region, _ uint64, _ bool) value.Value {
	region.Retain()
	rec := phttp.ResponseDesc.NewOwned(region)
	rec.SetField("_raw", value.Bytes(raw))
	return rec
}

// hdrPresent reports whether the named header exists on the message.
func hdrPresent(msg value.Value, name string) bool {
	_, ok := phttp.HeaderBytes(msg, name)
	return ok
}

// bytesEqualStr reports b == s without allocating.
func bytesEqualStr(b []byte, s string) bool {
	if len(b) != len(s) {
		return false
	}
	for i := 0; i < len(b); i++ {
		if b[i] != s[i] {
			return false
		}
	}
	return true
}
