package cache

import (
	"strconv"
	"strings"
	"time"

	phttp "flick/internal/proto/http"
	"flick/internal/value"
)

// HTTPGet adapts the cache to HTTP/1.1 load balancing: plain GET
// responses are cached per URI; non-GET methods with side effects write
// through as invalidations. HTTP/1.1 responses answer requests strictly
// in order per connection, so the adapter is FIFO — the core correlates
// through per-port slot queues instead of tags.
//
// Conservatism over coverage: conditional requests (If-None-Match /
// If-Modified-Since — the ETag revalidation path), authenticated
// requests and requests carrying Cache-Control: no-cache/no-store bypass
// the cache entirely; only 200 responses free of forbidding Cache-Control
// directives are admitted, with max-age capping the entry TTL.
type HTTPGet struct{}

// Name implements Protocol.
func (HTTPGet) Name() string { return "http-get" }

// Fifo implements Protocol: HTTP/1.1 responses arrive in request order.
func (HTTPGet) Fifo() bool { return true }

// Variants implements Protocol: one response shape per URI.
func (HTTPGet) Variants() []byte { return []byte{0} }

// Request implements Protocol.
func (HTTPGet) Request(req value.Value) ReqInfo {
	method := req.Field("method").AsBytes()
	uri := req.Field("uri").AsBytes()
	if !bytesEqualStr(method, "GET") {
		switch {
		case bytesEqualStr(method, "HEAD"), bytesEqualStr(method, "OPTIONS"),
			bytesEqualStr(method, "TRACE"):
			// Safe methods, but their responses differ from GET's: pass.
			return ReqInfo{Class: ClassPass}
		case len(uri) > 0:
			// POST/PUT/DELETE/PATCH/...: write through the URI's entry.
			return ReqInfo{Class: ClassInvalidate, Key: uri}
		default:
			return ReqInfo{Class: ClassPass}
		}
	}
	if len(uri) == 0 || req.Field("keep_alive").AsInt() != 1 {
		// A closing client gets a closing response — never cacheable.
		return ReqInfo{Class: ClassPass}
	}
	if phttp.Header(req, "If-None-Match") != "" ||
		phttp.Header(req, "If-Modified-Since") != "" ||
		phttp.Header(req, "Authorization") != "" {
		return ReqInfo{Class: ClassPass}
	}
	if cc := phttp.Header(req, "Cache-Control"); cc != "" {
		if strings.Contains(cc, "no-cache") || strings.Contains(cc, "no-store") {
			return ReqInfo{Class: ClassPass}
		}
	}
	return ReqInfo{Class: ClassLookup, Key: uri}
}

// Response implements Protocol.
func (HTTPGet) Response(resp value.Value) RespInfo {
	status := resp.Field("status").AsInt()
	if status < 200 {
		// 1xx: forwarded without consuming the pending request slot.
		return RespInfo{Informational: true}
	}
	ri := RespInfo{Match: true}
	if status != 200 {
		return ri
	}
	if resp.Field("keep_alive").AsInt() != 1 {
		// Connection-delimited body: replaying it verbatim on a kept-alive
		// client connection would leave the client unable to frame it.
		return ri
	}
	if cc := phttp.Header(resp, "Cache-Control"); cc != "" {
		if strings.Contains(cc, "no-store") || strings.Contains(cc, "no-cache") ||
			strings.Contains(cc, "private") {
			return ri
		}
		if i := strings.Index(cc, "max-age="); i >= 0 {
			v := cc[i+len("max-age="):]
			if j := strings.IndexAny(v, ", "); j >= 0 {
				v = v[:j]
			}
			secs, err := strconv.Atoi(v)
			if err != nil || secs <= 0 {
				// max-age=0 (or unparsable): already stale, don't store.
				return ri
			}
			ri.TTL = time.Duration(secs) * time.Second
		}
	}
	ri.Admit = true
	return ri
}

// MakeHit implements Protocol: HTTP carries no correlation tag, so the
// stored image replays verbatim (one region retain plus a pooled record).
func (HTTPGet) MakeHit(raw []byte, region value.Region, _ uint64, _ bool) value.Value {
	region.Retain()
	rec := phttp.ResponseDesc.NewOwned(region)
	rec.SetField("_raw", value.Bytes(raw))
	return rec
}

// bytesEqualStr reports b == s without allocating.
func bytesEqualStr(b []byte, s string) bool {
	if len(b) != len(s) {
		return false
	}
	for i := 0; i < len(b); i++ {
		if b[i] != s[i] {
			return false
		}
	}
	return true
}
