package cache

import (
	"testing"
	"time"

	"flick/internal/buffer"
	phttp "flick/internal/proto/http"
	"flick/internal/value"
)

// decodeHTTP decodes one raw HTTP message (request or response) into a
// record; the caller releases it.
func decodeHTTP(t *testing.T, isRequest bool, raw string) value.Value {
	t.Helper()
	dec := phttp.ResponseFormat{}.NewDecoder()
	if isRequest {
		dec = phttp.RequestFormat{}.NewDecoder()
	}
	q := buffer.NewQueue(nil)
	q.Append([]byte(raw))
	msg, ok, err := dec.Decode(q)
	if err != nil || !ok {
		t.Fatalf("decode %q: ok=%v err=%v", raw, ok, err)
	}
	return msg
}

// TestHTTPGetRequestClassification pins the shared-cache conservatism of
// the request side: credentialed, conditional, Range and Host-less
// requests bypass the cache; cacheable GETs key on Host + URI; writes
// invalidate under the same scoped key.
func TestHTTPGetRequestClassification(t *testing.T) {
	cases := []struct {
		name  string
		raw   string
		class Class
		key   string
		scope string
	}{
		{"plain GET", "GET /a HTTP/1.1\r\nHost: h.example\r\n\r\n", ClassLookup, "/a", "h.example"},
		{"no Host", "GET /a HTTP/1.1\r\n\r\n", ClassPass, "", ""},
		{"Cookie", "GET /a HTTP/1.1\r\nHost: h.example\r\nCookie: sid=1\r\n\r\n", ClassPass, "", ""},
		{"Authorization", "GET /a HTTP/1.1\r\nHost: h.example\r\nAuthorization: Bearer x\r\n\r\n", ClassPass, "", ""},
		{"Range", "GET /a HTTP/1.1\r\nHost: h.example\r\nRange: bytes=0-5\r\n\r\n", ClassPass, "", ""},
		{"conditional", "GET /a HTTP/1.1\r\nHost: h.example\r\nIf-None-Match: \"v1\"\r\n\r\n", ClassCond, "/a", "h.example"},
		{"no-store", "GET /a HTTP/1.1\r\nHost: h.example\r\nCache-Control: no-store\r\n\r\n", ClassPass, "", ""},
		{"write", "DELETE /a HTTP/1.1\r\nHost: h.example\r\n\r\n", ClassInvalidate, "/a", "h.example"},
	}
	for _, tc := range cases {
		req := decodeHTTP(t, true, tc.raw)
		info := HTTPGet{}.Request(req)
		if info.Class != tc.class {
			t.Errorf("%s: class = %d, want %d", tc.name, info.Class, tc.class)
		}
		if tc.class != ClassPass {
			if string(info.Key) != tc.key || string(info.Scope) != tc.scope {
				t.Errorf("%s: key/scope = %q/%q, want %q/%q",
					tc.name, info.Key, info.Scope, tc.key, tc.scope)
			}
		}
		req.Release()
	}
}

// TestHTTPGetAdmission pins the response side: per-client session material
// (Set-Cookie), unkeyable negotiation (Vary: *, Content-Encoding without a
// covering Vary rule) and forbidding Cache-Control directives are never
// admitted into the shared cache; a nameable Vary admits under a learned
// rule; max-age caps the TTL.
func TestHTTPGetAdmission(t *testing.T) {
	cases := []struct {
		name  string
		raw   string
		admit bool
		ttl   time.Duration
	}{
		{"plain 200", "HTTP/1.1 200 OK\r\nContent-Length: 2\r\n\r\nhi", true, 0},
		{"Set-Cookie", "HTTP/1.1 200 OK\r\nContent-Length: 2\r\nSet-Cookie: sid=1\r\n\r\nhi", false, 0},
		{"Vary", "HTTP/1.1 200 OK\r\nContent-Length: 2\r\nVary: Accept-Encoding\r\n\r\nhi", true, 0},
		{"Vary star", "HTTP/1.1 200 OK\r\nContent-Length: 2\r\nVary: *\r\n\r\nhi", false, 0},
		{"Content-Encoding", "HTTP/1.1 200 OK\r\nContent-Length: 2\r\nContent-Encoding: gzip\r\n\r\nhi", false, 0},
		{"private", "HTTP/1.1 200 OK\r\nContent-Length: 2\r\nCache-Control: private\r\n\r\nhi", false, 0},
		{"max-age", "HTTP/1.1 200 OK\r\nContent-Length: 2\r\nCache-Control: max-age=60\r\n\r\nhi", true, 60 * time.Second},
		{"non-200", "HTTP/1.1 404 Not Found\r\nContent-Length: 2\r\n\r\nno", false, 0},
	}
	for _, tc := range cases {
		resp := decodeHTTP(t, false, tc.raw)
		ri := HTTPGet{}.Response(resp)
		if ri.Admit != tc.admit {
			t.Errorf("%s: admit = %v, want %v", tc.name, ri.Admit, tc.admit)
		}
		if ri.TTL != tc.ttl {
			t.Errorf("%s: ttl = %v, want %v", tc.name, ri.TTL, tc.ttl)
		}
		if !ri.Match {
			t.Errorf("%s: final responses must still consume their slot", tc.name)
		}
		resp.Release()
	}
}

// TestHostScopedKeys checks two origins sharing a URI path hold distinct
// entries and invalidate independently.
func TestHostScopedKeys(t *testing.T) {
	c := newTestCache(t, Config{Proto: HTTPGet{}, Workers: 1})
	fillScoped := func(scope, val string) {
		info := ReqInfo{Class: ClassLookup, Key: []byte("/idx"), Scope: []byte(scope)}
		f, leader := c.Begin(info, Waiter{})
		if !leader {
			t.Fatalf("fill %q: expected to lead", scope)
		}
		raw := "HTTP/1.1 200 OK\r\nContent-Length: 6\r\n\r\n" + val
		f.Fill([]byte(raw), RespInfo{Match: true, Admit: true})
	}
	get := func(scope string) (string, bool) {
		info := ReqInfo{Class: ClassLookup, Key: []byte("/idx"), Scope: []byte(scope)}
		v, ok, _ := c.Get(0, info)
		if !ok {
			return "", false
		}
		raw := string(v.Field("_raw").AsBytes())
		v.Release()
		return raw, true
	}
	body := func(served string) string {
		if i := len(served) - 6; i >= 0 {
			return served[i:]
		}
		return served
	}

	fillScoped("a.example", "body-A")
	fillScoped("b.example", "body-B")
	if got, ok := get("a.example"); !ok || body(got) != "body-A" {
		t.Fatalf("a.example: %q/%v, want body-A hit", got, ok)
	}
	if got, ok := get("b.example"); !ok || body(got) != "body-B" {
		t.Fatalf("b.example: %q/%v, want body-B hit", got, ok)
	}
	if _, ok := get("c.example"); ok {
		t.Fatal("unfilled origin served another origin's entry")
	}

	c.Invalidate([]byte("a.example"), []byte("/idx"))
	if _, ok := get("a.example"); ok {
		t.Fatal("a.example survived its invalidation")
	}
	if got, ok := get("b.example"); !ok || body(got) != "body-B" {
		t.Fatalf("b.example dropped by a.example's invalidation (%q/%v)", got, ok)
	}
}

// TestHTTPHitZeroAlloc extends the zero-allocation pin to the freshness
// paths: the Age-patched full hit (pooled copy + digit-zone patch), the
// Vary variant hit (secondary-key fold inside the shard lock), and the
// synthesized-304 conditional hit (verbatim replay of the pre-rendered
// image) must all serve without a single heap allocation.
func TestHTTPHitZeroAlloc(t *testing.T) {
	c := newTestCache(t, Config{Proto: HTTPGet{}, Workers: 1})

	req := decodeHTTP(t, true, "GET /z HTTP/1.1\r\nHost: h\r\nAccept-Encoding: gzip\r\n\r\n")
	defer req.Release()
	info := HTTPGet{}.Request(req)
	f, leader := c.Begin(info, Waiter{})
	if !leader {
		t.Fatal("expected to lead")
	}
	raw := "HTTP/1.1 200 OK\r\nContent-Length: 2\r\nETag: \"v1\"\r\nVary: Accept-Encoding\r\n\r\nhi"
	resp := decodeHTTP(t, false, raw)
	f.Fill([]byte(raw), HTTPGet{}.Response(resp))
	resp.Release()

	// Variant + Age-patched full hit: the lookup folds the learned vary
	// rule into the secondary key, then copies and patches the Age zone.
	warm := func(i ReqInfo) {
		v, ok, _ := c.Get(0, i)
		if !ok {
			t.Fatal("miss on warm key")
		}
		v.Release()
	}
	warm(info)
	if n := testing.AllocsPerRun(200, func() {
		v, ok, _ := c.Get(0, info)
		if !ok {
			panic("miss on warm key")
		}
		v.Release()
	}); n != 0 {
		t.Fatalf("variant Age-patched hit path allocates %v per run, want 0", n)
	}

	// Synthesized 304: a conditional request whose validator matches
	// replays the pre-rendered image by reference.
	creq := decodeHTTP(t, true,
		"GET /z HTTP/1.1\r\nHost: h\r\nAccept-Encoding: gzip\r\nIf-None-Match: \"v1\"\r\n\r\n")
	defer creq.Release()
	cinfo := HTTPGet{}.Request(creq)
	if cinfo.Class != ClassCond {
		t.Fatalf("conditional request classified %d, want ClassCond", cinfo.Class)
	}
	warm(cinfo)
	if n := testing.AllocsPerRun(200, func() {
		v, ok, _ := c.Get(0, cinfo)
		if !ok {
			panic("miss on warm key")
		}
		if raw := v.Field("_raw").AsBytes(); len(raw) < 12 || raw[9] != '3' {
			panic("conditional hit did not serve the synthesized 304")
		}
		v.Release()
	}); n != 0 {
		t.Fatalf("synthesized-304 hit path allocates %v per run, want 0", n)
	}
}
