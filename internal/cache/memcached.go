package cache

import (
	"encoding/binary"

	"flick/internal/buffer"
	"flick/internal/proto/memcache"
	"flick/internal/value"
)

// memcachedOpaqueOff is the byte offset of the opaque field in the 24-byte
// binary-protocol header — the correlation tag MakeHit patches.
const memcachedOpaqueOff = 12

// Memcached adapts the cache to the memcached binary protocol — the
// workload the paper's Listing 1 caches. GET and GETK responses are cached
// per key (as distinct variants: a GETK response echoes the key, a GET
// response doesn't); every mutation opcode writes through as an
// invalidation; flush_all clears. Correlation is tag-based (the opaque
// header field), so the adapter is non-FIFO: a GETK fill also matches by
// the echoed key.
//
// KeyNotFound responses are admitted as negative entries (RespInfo.
// Negative, bounded by Config.NegativeTTL): a miss storm on an absent key
// is absorbed by the proxy instead of hammering the backend, and any
// mutation of the key drops the negative entry like any other.
//
// Served views patch the stored image's opaque with the requester's own,
// so pipelined clients correlate correctly even though a hit may overtake
// an earlier in-flight miss on the same connection (binary-protocol
// clients order by opaque, not arrival).
type Memcached struct{}

// Name implements Protocol.
func (Memcached) Name() string { return "memcached" }

// Fifo implements Protocol: opaque/key correlation, not arrival order.
func (Memcached) Fifo() bool { return false }

// Variants implements Protocol.
func (Memcached) Variants() []byte { return []byte{memcache.OpGet, memcache.OpGetK} }

// Request implements Protocol.
func (Memcached) Request(req value.Value) ReqInfo {
	op := byte(req.Field("opcode").AsInt())
	switch op {
	case memcache.OpGet, memcache.OpGetK:
		key := req.Field("key").AsBytes()
		if len(key) == 0 {
			return ReqInfo{Class: ClassPass}
		}
		return ReqInfo{
			Class:   ClassLookup,
			Key:     key,
			Variant: op,
			Tag:     uint64(uint32(req.Field("opaque").AsInt())),
			HasTag:  true,
		}
	case memcache.OpSet, memcache.OpAdd, memcache.OpReplace, memcache.OpDelete,
		memcache.OpIncrement, memcache.OpDecrement, memcache.OpAppend, memcache.OpPrepend,
		memcache.OpSetQ, memcache.OpAddQ, memcache.OpReplaceQ, memcache.OpDeleteQ,
		memcache.OpIncrementQ, memcache.OpDecrementQ, memcache.OpAppendQ, memcache.OpPrependQ,
		memcache.OpTouch, memcache.OpGAT, memcache.OpGATQ, memcache.OpGATK, memcache.OpGATKQ:
		// Every key-carrying mutation — loud, quiet, or expiry-touching —
		// invalidates exactly its key.
		return ReqInfo{Class: ClassInvalidate, Key: req.Field("key").AsBytes()}
	case memcache.OpFlush, memcache.OpFlushQ:
		return ReqInfo{Class: ClassInvalidateAll}
	case memcache.OpNoop, memcache.OpGetQ, memcache.OpGetKQ, memcache.OpQuit,
		memcache.OpQuitQ, memcache.OpVersion, memcache.OpStat:
		// Quiet reads break per-request correlation (a miss says nothing)
		// and the rest carry no cacheable payload: pass through.
		return ReqInfo{Class: ClassPass}
	default:
		// Unknown opcode: assume the worst, scoped as tightly as the
		// request allows. With a key, a single-key invalidation covers any
		// mutation semantics it could have; only a keyless unknown op
		// forces a full clear.
		if key := req.Field("key").AsBytes(); len(key) > 0 {
			return ReqInfo{Class: ClassInvalidate, Key: key}
		}
		return ReqInfo{Class: ClassInvalidateAll}
	}
}

// Response implements Protocol.
func (Memcached) Response(resp value.Value) RespInfo {
	if !memcache.IsResponse(resp) {
		return RespInfo{}
	}
	op := byte(resp.Field("opcode").AsInt())
	if op != memcache.OpGet && op != memcache.OpGetK {
		return RespInfo{}
	}
	ri := RespInfo{
		Match:   true,
		Variant: op,
		Tag:     uint64(uint32(resp.Field("opaque").AsInt())),
		HasTag:  true,
	}
	if op == memcache.OpGetK {
		if key := resp.Field("key").AsBytes(); len(key) > 0 {
			ri.Key = key
			ri.HasKey = true
		}
	}
	switch memcache.Status(resp) {
	case memcache.StatusOK:
		ri.Admit = true
	case memcache.StatusKeyNotFound:
		// Authoritative absence: admit as a negative entry so the miss
		// storm coalesces at the proxy (Fill drops it when negative
		// caching is disabled).
		ri.Admit = true
		ri.Negative = true
	}
	return ri
}

// Store implements Protocol: memcached images replay verbatim — no patch
// zones beyond the opaque MakeHit handles, no validators, no revalidation.
func (Memcached) Store(raw []byte, _ RespInfo, _ value.Value) ([]byte, StoreInfo) {
	return raw, StoreInfo{ImageLen: len(raw), AgeOff: -1}
}

// SecondaryKey implements Protocol: memcached has no content negotiation.
func (Memcached) SecondaryKey(dst []byte, _ value.Value, _ string) []byte { return dst }

// MakeHit implements Protocol. When the requester's opaque matches the
// stored image's, the view replays the image verbatim (zero-copy,
// zero-alloc: one region retain plus a pooled record). Otherwise the image
// is copied into a fresh pooled region with the opaque patched — still
// heap-allocation-free once pools are warm.
func (Memcached) MakeHit(h Hit) value.Value {
	if h.HasTag && len(h.Raw) >= 24 &&
		binary.BigEndian.Uint32(h.Raw[memcachedOpaqueOff:]) != uint32(h.Tag) {
		ref := buffer.Global.GetRef(len(h.Raw))
		b := ref.Bytes()[:len(h.Raw)]
		copy(b, h.Raw)
		binary.BigEndian.PutUint32(b[memcachedOpaqueOff:], uint32(h.Tag))
		rec := memcache.Desc.NewOwned(ref)
		rec.SetField("_raw", value.Bytes(b))
		return rec
	}
	h.Region.Retain()
	rec := memcache.Desc.NewOwned(h.Region)
	rec.SetField("_raw", value.Bytes(h.Raw))
	return rec
}

// MakeReval implements Protocol: memcached entries carry no validators and
// never revalidate — they expire and refill.
func (Memcached) MakeReval(_ []byte, region value.Region) value.Value {
	region.Release()
	return value.Null
}
