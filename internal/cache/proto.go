package cache

import (
	"time"

	"flick/internal/value"
)

// Class is a protocol adapter's verdict on a decoded client request.
type Class uint8

const (
	// ClassPass forwards the request untouched: not cacheable, not a
	// write (health probes, quiet reads, conditional requests).
	ClassPass Class = iota
	// ClassLookup consults the cache and coalesces misses.
	ClassLookup
	// ClassInvalidate is a write through the proxy: drop the key's
	// entries, kill its flights, then forward.
	ClassInvalidate
	// ClassInvalidateAll clears the whole cache, then forwards
	// (memcached flush_all).
	ClassInvalidateAll
)

// ReqInfo classifies one decoded client request. Key aliases the request's
// pooled bytes and is valid only until the request releases — the cache
// copies what it keeps.
type ReqInfo struct {
	Class Class
	// Key is the cache key (memcached key, HTTP URI).
	Key []byte
	// Scope namespaces Key (HTTP Host: two origins sharing a URI path
	// must not share entries). Empty for single-namespace protocols
	// (memcached). Like Key, it aliases the request's pooled bytes.
	Scope []byte
	// Variant distinguishes response shapes sharing a key (memcached GET
	// vs GETK); entries only serve and coalesce within their variant.
	Variant byte
	// Tag/HasTag is the request's correlation tag (memcached opaque): the
	// served view must carry it back.
	Tag    uint64
	HasTag bool
}

// RespInfo classifies one decoded upstream response. Key aliases the
// response's pooled bytes and is valid only for the duration of the
// classifying call chain.
type RespInfo struct {
	// Match marks a response that answers a ClassLookup request (and so
	// resolves a flight or FIFO slot). Writes' acks and probe replies
	// don't match.
	Match bool
	// Admit allows the response image into the cache (hit status, no
	// forbidding cache directives). A matching non-admissible response
	// still resolves its flight — the waiters re-dispatch.
	Admit bool
	// Informational marks a non-final response (HTTP 1xx): forwarded
	// downstream without consuming the pending request.
	Informational bool
	// Key/HasKey is the key echoed by the response (memcached GETK), used
	// to correlate fills on non-FIFO paths.
	Key    []byte
	HasKey bool
	// Variant mirrors ReqInfo.Variant.
	Variant byte
	// Tag/HasTag is the response's correlation tag (memcached opaque).
	Tag    uint64
	HasTag bool
	// TTL, when positive, caps the entry's lifetime below the cache
	// default (HTTP Cache-Control: max-age).
	TTL time.Duration
}

// Protocol adapts the cache to one wire protocol: classification of
// requests and responses, and construction of served hit views.
type Protocol interface {
	// Name identifies the adapter ("memcached", "http-get").
	Name() string
	// Fifo reports the response-correlation discipline: true means
	// responses answer requests strictly in order per upstream connection
	// (HTTP/1.1); false means responses carry their own correlation
	// (memcached opaque/key echo) and may be matched out of order.
	Fifo() bool
	// Variants enumerates the Variant bytes the adapter emits, so
	// invalidation can sweep every response shape of a key.
	Variants() []byte
	// Request classifies a decoded client request.
	Request(req value.Value) ReqInfo
	// Response classifies a decoded upstream response.
	Response(resp value.Value) RespInfo
	// MakeHit builds a self-contained served view over a cached wire
	// image for the request tag given: a pooled record whose raw field
	// replays zero-copy through the scatter encoder. raw/region are the
	// entry's and stay valid only for the duration of the call (the
	// caller holds a reference); MakeHit retains what the view needs.
	// The returned view carries one reference owned by the caller.
	MakeHit(raw []byte, region value.Region, tag uint64, hasTag bool) value.Value
}
