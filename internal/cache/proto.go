package cache

import (
	"time"

	"flick/internal/value"
)

// Class is a protocol adapter's verdict on a decoded client request.
type Class uint8

const (
	// ClassPass forwards the request untouched: not cacheable, not a
	// write (health probes, quiet reads, credentialed requests).
	ClassPass Class = iota
	// ClassLookup consults the cache and coalesces misses.
	ClassLookup
	// ClassCond is a conditional read (HTTP If-None-Match /
	// If-Modified-Since): a resident entry answers it — with a
	// synthesized 304 on a validator match, the full entry otherwise —
	// but a miss forwards upstream untracked (the origin evaluates the
	// condition; its 200 or 304 passes through unadmitted).
	ClassCond
	// ClassInvalidate is a write through the proxy: drop the key's
	// entries, kill its flights, then forward.
	ClassInvalidate
	// ClassInvalidateAll clears the whole cache, then forwards
	// (memcached flush_all).
	ClassInvalidateAll
)

// ReqInfo classifies one decoded client request. Key, Scope and the
// validator fields alias the request's pooled bytes and are valid only
// until the request releases — the cache copies what it keeps.
type ReqInfo struct {
	Class Class
	// Key is the cache key (memcached key, HTTP URI).
	Key []byte
	// Scope namespaces Key (HTTP Host: two origins sharing a URI path
	// must not share entries). Empty for single-namespace protocols
	// (memcached). Like Key, it aliases the request's pooled bytes.
	Scope []byte
	// Variant distinguishes response shapes sharing a key (memcached GET
	// vs GETK); entries only serve and coalesce within their variant.
	Variant byte
	// Tag/HasTag is the request's correlation tag (memcached opaque): the
	// served view must carry it back.
	Tag    uint64
	HasTag bool
	// Msg is the decoded request message itself. Adapters whose
	// SecondaryKey or Store needs request material (HTTP: Vary header
	// folding, revalidation-request rendering) must set it on ClassLookup
	// and ClassCond; the cache retains it only for the lifetime of a led
	// flight.
	Msg value.Value
	// IfNoneMatch / IfModifiedSince carry the validators of a ClassCond
	// request, matched against the entry's stored validators to choose
	// between a synthesized 304 and the full entry.
	IfNoneMatch     []byte
	IfModifiedSince []byte
}

// RespInfo classifies one decoded upstream response. Byte fields alias the
// response's pooled bytes and are valid only for the duration of the
// classifying call chain.
type RespInfo struct {
	// Match marks a response that answers a ClassLookup request (and so
	// resolves a flight or FIFO slot). Writes' acks and probe replies
	// don't match.
	Match bool
	// Admit allows the response image into the cache (hit status, no
	// forbidding cache directives). A matching non-admissible response
	// still resolves its flight — the waiters re-dispatch.
	Admit bool
	// Informational marks a non-final response (HTTP 1xx): forwarded
	// downstream without consuming the pending request.
	Informational bool
	// NotModified marks an upstream 304: a revalidation flight turns it
	// into a freshness extension of the retained entry instead of a
	// refetch. Never admitted as a body of its own.
	NotModified bool
	// Negative marks a response that authoritatively reports key absence
	// (memcached KeyNotFound): admitted under Config.NegativeTTL so a
	// miss storm doesn't hammer the backend.
	Negative bool
	// Key/HasKey is the key echoed by the response (memcached GETK), used
	// to correlate fills on non-FIFO paths.
	Key    []byte
	HasKey bool
	// Variant mirrors ReqInfo.Variant.
	Variant byte
	// Tag/HasTag is the response's correlation tag (memcached opaque).
	Tag    uint64
	HasTag bool
	// TTL, when positive, caps the entry's lifetime below the cache
	// default (HTTP Cache-Control: max-age). On a NotModified response it
	// caps the extension instead.
	TTL time.Duration
	// Vary is the response's Vary field list (HTTP): the entry is keyed
	// on the named request headers' values in addition to Key. Adapters
	// must refuse admission (Admit=false) for Vary: * themselves.
	Vary []byte
	// ETag / LastModified are the response's validators, stored with the
	// entry to answer conditional requests and to revalidate upstream.
	ETag         []byte
	LastModified []byte
}

// StoreInfo locates the serving-time structures inside the image a
// Protocol.Store call rendered. All offsets index the returned buffer; a
// length of 0 (or an offset of -1) means absent.
type StoreInfo struct {
	// ImageLen bounds the served response image: buf[:ImageLen].
	ImageLen int
	// AgeOff is the offset of the fixed-width Age digit zone inside the
	// image (-1: none): MakeHit patches it with the entry's residency.
	AgeOff int
	// NotMod locates the pre-rendered validator-hit response (HTTP 304).
	NotModOff, NotModLen int
	// Reval locates the pre-rendered upstream refresh request; entries
	// without one are removed at expiry instead of serving stale.
	RevalOff, RevalLen int
	// ETag / LastMod locate the entry's validators.
	ETagOff, ETagLen       int
	LastModOff, LastModLen int
}

// Hit describes one cache hit for Protocol.MakeHit: the stored image, the
// requester's correlation tag, and the residency patch zone.
type Hit struct {
	// Raw is the image to replay (the entry's response image, or its
	// pre-rendered 304 on a validator hit); Region is the pooled region
	// both live in. Valid only for the duration of the call — MakeHit
	// retains what the view needs.
	Raw    []byte
	Region value.Region
	// Tag/HasTag is the requester's correlation tag (memcached opaque).
	Tag    uint64
	HasTag bool
	// AgeOff/AgeSecs is the Age patch zone inside Raw (-1: replay
	// verbatim) and the entry's residency in whole seconds.
	AgeOff  int
	AgeSecs int64
}

// Protocol adapts the cache to one wire protocol: classification of
// requests and responses, rendering of stored images, and construction of
// served hit views.
type Protocol interface {
	// Name identifies the adapter ("memcached", "http-get").
	Name() string
	// Fifo reports the response-correlation discipline: true means
	// responses answer requests strictly in order per upstream connection
	// (HTTP/1.1); false means responses carry their own correlation
	// (memcached opaque/key echo) and may be matched out of order.
	Fifo() bool
	// Variants enumerates the Variant bytes the adapter emits, so
	// invalidation can sweep every response shape of a key.
	Variants() []byte
	// Request classifies a decoded client request.
	Request(req value.Value) ReqInfo
	// Response classifies a decoded upstream response.
	Response(resp value.Value) RespInfo
	// Store renders the image the cache retains for an admitted response:
	// protocols may inject serving-time patch zones (HTTP Age), a
	// pre-rendered validator-hit response, and an upstream refresh
	// request (built from req, the leading request; may be Null). The
	// returned buffer need only stay valid until the cache copies it into
	// a pooled region. raw-passthrough adapters return (raw, zero-ish).
	Store(raw []byte, ri RespInfo, req value.Value) ([]byte, StoreInfo)
	// SecondaryKey appends the request's values of the vary rule's named
	// fields to dst (HTTP: the Vary header fold); protocols without
	// variant keys return dst unchanged. Must not allocate — it runs on
	// the hit path.
	SecondaryKey(dst []byte, req value.Value, rule string) []byte
	// MakeHit builds a self-contained served view over a cached image.
	// The returned view carries one reference owned by the caller.
	MakeHit(h Hit) value.Value
	// MakeReval builds the fabricated upstream refresh request record
	// over a stored revalidation image (raw, living in region — ownership
	// of one retained region reference transfers to the record). Null
	// when the protocol doesn't revalidate.
	MakeReval(raw []byte, region value.Region) value.Value
}
