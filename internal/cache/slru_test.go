package cache

import (
	"fmt"
	"math/rand"
	"testing"
	"time"

	"flick/internal/proto/memcache"
)

// oentry is the oracle's picture of one entry: identity, size and the
// lazy-promotion hit bit.
type oentry struct {
	key  string
	size int64
	hit  bool
	seg  int
}

// slruOracle is an executable-specification model of the cache's
// segmented-LRU policy: plain slices for the two segment queues, a map for
// membership, and a verbatim transcription of the documented rules —
// install to probation's tail, promote hit probation entries at scan time,
// demote protected overflow past 80% of the budget, evict unhit probation
// head. The real cache must agree with it on membership, resident bytes
// and protected bytes after every operation.
type slruOracle struct {
	index    map[string]*oentry
	prob     []*oentry
	prot     []*oentry
	resident int64
	protB    int64
	maxBytes int64
}

func newOracle(maxBytes int64) *slruOracle {
	return &slruOracle{index: map[string]*oentry{}, maxBytes: maxBytes}
}

func (o *slruOracle) get(key string) bool {
	e := o.index[key]
	if e == nil {
		return false
	}
	e.hit = true
	return true
}

func (o *slruOracle) install(key string, size int64) {
	if old := o.index[key]; old != nil {
		o.remove(old)
	}
	e := &oentry{key: key, size: size, seg: segProbation}
	o.index[key] = e
	o.prob = append(o.prob, e)
	o.resident += size
	o.evict(e)
}

func (o *slruOracle) evict(keep *oentry) {
	protCap := o.maxBytes - o.maxBytes/5
	for o.resident > o.maxBytes {
		var v *oentry
		if len(o.prob) > 0 {
			v = o.prob[0]
		} else if len(o.prot) > 0 {
			v = o.prot[0]
		}
		if v == nil || v == keep {
			return
		}
		if v.seg == segProbation && v.hit {
			v.hit = false
			o.prob = o.prob[1:]
			v.seg = segProtected
			o.prot = append(o.prot, v)
			o.protB += v.size
			for o.protB > protCap {
				d := o.prot[0]
				if d == keep {
					break
				}
				d.hit = false
				o.prot = o.prot[1:]
				d.seg = segProbation
				o.protB -= d.size
				o.prob = append(o.prob, d)
			}
			continue
		}
		o.remove(v)
	}
}

func (o *slruOracle) remove(e *oentry) {
	delete(o.index, e.key)
	lists := [2]*[]*oentry{&o.prob, &o.prot}
	for _, l := range lists {
		for i, x := range *l {
			if x == e {
				*l = append(append([]*oentry{}, (*l)[:i]...), (*l)[i+1:]...)
				break
			}
		}
	}
	if e.seg == segProtected {
		o.protB -= e.size
	}
	o.resident -= e.size
}

// snapshotSLRU captures the real cache's structural state under fmu:
// per-key segment membership plus the byte gauges.
func snapshotSLRU(c *Cache) (membership map[string]int, resident, protB int64) {
	membership = map[string]int{}
	c.fmu.Lock()
	for _, e := range c.index {
		membership[e.skey] = int(e.seg)
	}
	resident, protB = c.resident, c.protBytes
	c.fmu.Unlock()
	return
}

// TestSegmentedLRUOracle drives the real cache and the oracle through the
// same randomized (but seeded — the policy is deterministic for a given op
// order) lookup/install sequence and requires byte-for-byte agreement on
// membership, segment placement, resident bytes and protected bytes after
// every operation. Scan resistance falls out: a one-touch scan can never
// displace an entry the oracle keeps.
func TestSegmentedLRUOracle(t *testing.T) {
	const keys = 24
	unit := int64(len(respRaw(t, memcache.OpGetK, 0, key2(0), "val-00")))
	c := newTestCache(t, Config{Workers: 1, MaxBytes: 8 * unit, TTL: time.Hour})
	o := newOracle(8 * unit)

	skeyOf := func(i int) string {
		return string(appendSKey(nil, memcache.OpGetK, nil, []byte(key2(i))))
	}

	rng := rand.New(rand.NewSource(0xF11C))
	for op := 0; op < 4000; op++ {
		i := rng.Intn(keys)
		if rng.Intn(10) < 7 {
			v, real, _ := c.Get(0, lookupInfo(memcache.OpGetK, key2(i), uint32(i)))
			if real {
				v.Release()
			}
			model := o.get(skeyOf(i))
			if real != model {
				t.Fatalf("op %d: get(%s) real=%v oracle=%v", op, key2(i), real, model)
			}
		} else {
			fill(t, c, memcache.OpGetK, key2(i), uint32(i), fmt.Sprintf("val-%02d", i))
			o.install(skeyOf(i), unit)
		}

		membership, resident, protB := snapshotSLRU(c)
		if len(membership) != len(o.index) {
			t.Fatalf("op %d: %d entries, oracle %d", op, len(membership), len(o.index))
		}
		for k, e := range o.index {
			seg, ok := membership[k]
			if !ok {
				t.Fatalf("op %d: oracle holds %q, cache does not", op, k)
			}
			if seg != e.seg {
				t.Fatalf("op %d: %q in segment %d, oracle %d", op, k, seg, e.seg)
			}
		}
		if resident != o.resident || protB != o.protB {
			t.Fatalf("op %d: resident/protected = %d/%d, oracle %d/%d",
				op, resident, protB, o.resident, o.protB)
		}
	}
	if ev := cval(c.Counters(), "evictions"); ev == 0 {
		t.Fatal("sequence exercised no evictions — budget too large to test the policy")
	}
}

func key2(i int) string { return fmt.Sprintf("key-%02d", i) }
