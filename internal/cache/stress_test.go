package cache

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"flick/internal/buffer"
	"flick/internal/value"
)

// notMod304 is the upstream revalidation answer the stress tests feed back.
const notMod304 = "HTTP/1.1 304 Not Modified\r\n\r\n"

// TestStaleRevalidateStress hammers one repeatedly-expiring key from 64
// goroutines under -race while a driver advances the clock: every expiry
// wave must claim exactly one background revalidation (the claim window is
// held open by a simulated slow upstream), a failing refresh must leave the
// stale entry serving (no goroutine ever wedges waiting), and teardown must
// restore pool ref-balance (refgets == refputs).
func TestStaleRevalidateStress(t *testing.T) {
	before := buffer.Global.Counters()
	c := New(Config{Proto: HTTPGet{}, Workers: 4, TTL: time.Second, StaleTTL: time.Hour})
	var clock atomic.Int64
	c.now = clock.Load

	req := decodeHTTP(t, true, reqA)
	info := HTTPGet{}.Request(req)
	seed := func(f *Flight) {
		resp := decodeHTTP(t, false, respSWR)
		ri := HTTPGet{}.Response(resp)
		f.Fill([]byte(respSWR), ri)
		resp.Release()
	}
	if f, leader := c.Begin(info, Waiter{}); !leader {
		t.Fatal("expected to lead the seed fill")
	} else {
		seed(f)
	}

	const N = 64
	const iters = 200
	var inflight, violations, claims, refills atomic.Int32
	var wg sync.WaitGroup
	stop := make(chan struct{})
	go func() { // the clock: each tick pushes the entry past max-age=1
		for {
			select {
			case <-stop:
				return
			default:
				clock.Add(int64(400 * time.Millisecond))
				time.Sleep(100 * time.Microsecond)
			}
		}
	}()

	for g := 0; g < N; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				v, ok, rv := c.Get(g%4, info)
				if ok {
					v.Release()
				}
				if rv != nil {
					if cur := inflight.Add(1); cur > 1 {
						violations.Add(1)
					}
					claims.Add(1)
					time.Sleep(200 * time.Microsecond) // slow upstream
					inflight.Add(-1)
					msg := HTTPGet{}.MakeReval(rv.Req, rv.Region)
					if msg.IsNull() {
						violations.Add(1)
						rv.F.Abort()
						continue
					}
					if !rv.F.AttachRequest(msg) {
						msg.Release()
					}
					if i%3 == 0 {
						// Upstream died: the refresh fails, stale keeps serving.
						rv.F.Abort()
					} else {
						rv.F.Fill([]byte(notMod304),
							RespInfo{Match: true, NotModified: true})
					}
					continue
				}
				if !ok {
					// Hard-expired under a racing clock jump: refill so the
					// pipeline keeps moving.
					f, leader := c.Begin(info, Waiter{
						Deliver: func(view value.Value) { view.Release() },
					})
					if leader {
						refills.Add(1)
						seed(f)
					}
				}
			}
		}()
	}
	wg.Wait()
	close(stop)

	if n := violations.Load(); n != 0 {
		t.Fatalf("%d single-flight violations (more than one revalidation in flight)", n)
	}
	if claims.Load() == 0 {
		t.Fatal("stress sequence claimed no revalidations — clock never crossed expiry")
	}
	cs := c.Counters()
	if cval(cs, "stale_served") == 0 {
		t.Fatal("no stale hits recorded")
	}
	if cval(cs, "revalidated") == 0 {
		t.Fatal("no upstream 304 extensions recorded")
	}

	c.Close()
	req.Release()
	after := buffer.Global.Counters()
	gets := cval(after, "refgets") - cval(before, "refgets")
	puts := cval(after, "refputs") - cval(before, "refputs")
	if gets != puts {
		t.Fatalf("pool ref leak: refgets delta %d != refputs delta %d", gets, puts)
	}
}

// TestRevalUpstreamDeathServesStale is the deterministic fault-injection
// half: the upstream is killed mid-revalidation (the conditional request
// never completes) and the cache must degrade gracefully — the stale entry
// keeps serving inside its window, the claim is re-armed for the next
// lookup, a later successful refresh restores freshness, and the hard
// deadline still bounds total staleness.
func TestRevalUpstreamDeathServesStale(t *testing.T) {
	c := newTestCache(t, Config{Proto: HTTPGet{}, Workers: 1,
		TTL: 10 * time.Second, StaleTTL: 30 * time.Second})
	var clock atomic.Int64
	c.now = clock.Load

	req := decodeHTTP(t, true, reqA)
	defer req.Release()
	info := HTTPGet{}.Request(req)
	f, leader := c.Begin(info, Waiter{})
	if !leader {
		t.Fatal("expected to lead")
	}
	resp := decodeHTTP(t, false, respSWR)
	f.Fill([]byte(respSWR), HTTPGet{}.Response(resp))
	resp.Release()

	// Past max-age=1: stale hit claims the revalidation...
	clock.Store(int64(2 * time.Second))
	v, ok, rv := c.Get(0, info)
	if !ok || rv == nil {
		t.Fatalf("want stale hit with claim, got ok=%v rv=%v", ok, rv)
	}
	v.Release()
	// ...and the upstream dies before answering.
	msg := HTTPGet{}.MakeReval(rv.Req, rv.Region)
	if msg.IsNull() {
		t.Fatal("revalidation image did not parse")
	}
	if !rv.F.AttachRequest(msg) {
		msg.Release()
	}
	rv.F.Abort()

	// Graceful degradation: the stale entry still serves, and the claim
	// re-arms for this lookup.
	v, ok, rv = c.Get(0, info)
	if !ok {
		t.Fatal("stale entry vanished after a failed revalidation")
	}
	v.Release()
	if rv == nil {
		t.Fatal("failed revalidation did not re-arm the claim")
	}

	// This time the upstream answers: a 304 restores freshness.
	msg = HTTPGet{}.MakeReval(rv.Req, rv.Region)
	if !rv.F.AttachRequest(msg) {
		msg.Release()
	}
	rv.F.Fill([]byte(notMod304), RespInfo{Match: true, NotModified: true})
	v, ok, rv = c.Get(0, info)
	if !ok || rv != nil {
		t.Fatalf("want fresh hit after 304, got ok=%v claimed=%v", ok, rv != nil)
	}
	v.Release()
	if got := cval(c.Counters(), "revalidated"); got != 1 {
		t.Fatalf("revalidated = %d, want 1", got)
	}

	// The hard deadline still holds: a revalidation that keeps failing
	// bounds staleness at expires + StaleTTL, then the entry dies.
	clock.Store(int64(37 * time.Second)) // extension expires at 12s, hard deadline 42s
	v, ok, rv = c.Get(0, info)
	if !ok || rv == nil {
		t.Fatal("want stale hit with claim inside the window")
	}
	v.Release()
	rv.Region.Release()
	rv.F.Abort()
	clock.Store(int64(47 * time.Second))
	if _, ok, _ := c.Get(0, info); ok {
		t.Fatal("entry served past its hard staleness deadline")
	}
	if c.Len() != 0 {
		t.Fatalf("len = %d after hard expiry, want 0", c.Len())
	}
	if got := cval(c.Counters(), "stale_served"); got != 3 {
		t.Fatalf("stale_served = %d, want 3", got)
	}
}
