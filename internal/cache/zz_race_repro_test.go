package cache

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// Temporary reviewer reproducer: concurrent Get vs 304-extension.
func TestReviewerExtendRace(t *testing.T) {
	c := newTestCache(t, Config{Proto: HTTPGet{}, Workers: 2,
		TTL: 10 * time.Second, StaleTTL: time.Hour})
	var clock atomic.Int64
	c.now = clock.Load

	req := decodeHTTP(t, true, reqA)
	defer req.Release()
	info := HTTPGet{}.Request(req)
	f, leader := c.Begin(info, Waiter{})
	if !leader {
		t.Fatal("expected to lead")
	}
	resp := decodeHTTP(t, false, respSWR)
	f.Fill([]byte(respSWR), HTTPGet{}.Response(resp))
	resp.Release()

	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() { // reader: hammers Get under the shard lock only
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			v, ok, rv := c.Get(1, info)
			if ok {
				v.Release()
			}
			if rv != nil {
				rv.Region.Release()
				rv.F.Abort()
			}
		}
	}()

	for i := 0; i < 200; i++ {
		clock.Store(int64(2*time.Second) + int64(i)*int64(time.Millisecond))
		v, ok, rv := c.Get(0, info)
		if ok {
			v.Release()
		}
		if rv != nil {
			rv.F.Fill([]byte(notMod304), RespInfo{Match: true, NotModified: true})
			clock.Store(0)
		}
	}
	close(stop)
	wg.Wait()
}
