package compiler

import (
	"fmt"

	"flick/internal/grammar"
	"flick/internal/lang"
	"flick/internal/types"
	"flick/internal/value"
)

// CodecPair binds a record type to wire formats for each direction. Decode
// parses bytes read from connections; Encode serialises values written to
// them. For symmetric protocols (Memcached binary) both are the same codec;
// HTTP binds the request format one way and the response format the other
// per port role.
type CodecPair struct {
	Decode grammar.WireFormat
	Encode grammar.WireFormat
}

// PortCodec overrides the codec pair for one specific channel (by proc
// channel name), e.g. the HTTP LB's client port decodes requests and
// encodes responses while its backend ports do the reverse.
type PortCodec struct {
	Decode grammar.WireFormat
	Encode grammar.WireFormat
}

// Config parameterises compilation.
type Config struct {
	// ArraySizes fixes the length of each channel-array parameter
	// (channels cannot be created at runtime, §4.3, so array sizes are a
	// deployment-time constant).
	ArraySizes map[string]int
	// Codecs binds record type names to external wire formats. Types
	// whose declarations carry complete serialisation annotations do not
	// need a binding: their codec is synthesised from the grammar in the
	// program (§4.2).
	Codecs map[string]CodecPair
	// ChannelCodecs overrides codecs per proc channel name (asymmetric
	// protocols such as HTTP).
	ChannelCodecs map[string]PortCodec
	// PrimaryChannel names the client-facing channel whose EOF shuts the
	// instance down. Defaults to the first bidirectional scalar channel.
	PrimaryChannel string
}

// Program is a compiled FLICK program: executable functions plus one task
// graph template per process.
type Program struct {
	checked  *types.Checked
	funDecls map[string]*lang.FunDecl
	funs     map[string]*compiledFun

	descs     map[string]*value.RecordDesc
	ctorSlots map[string][]int
	codecs    map[string]CodecPair

	globals map[string][]value.Value // proc name → shared global slots
	gslots  map[string]map[string]int

	templates map[string]*ProcGraph
}

// Compile parses, checks and lowers a FLICK program.
func Compile(src string, cfg Config) (*Program, error) {
	ast, err := lang.Parse(src)
	if err != nil {
		return nil, err
	}
	checked, err := types.Check(ast)
	if err != nil {
		return nil, err
	}
	p := &Program{
		checked:   checked,
		funDecls:  checked.Funs,
		funs:      map[string]*compiledFun{},
		descs:     map[string]*value.RecordDesc{},
		ctorSlots: map[string][]int{},
		codecs:    map[string]CodecPair{},
		globals:   map[string][]value.Value{},
		gslots:    map[string]map[string]int{},
		templates: map[string]*ProcGraph{},
	}
	if err := p.resolveCodecs(cfg); err != nil {
		return nil, err
	}
	lw := &lowerer{prog: p}
	for name, f := range checked.Funs {
		cf, err := lw.lowerFun(f)
		if err != nil {
			return nil, err
		}
		p.funs[name] = cf
	}
	for _, proc := range checked.Prog.Procs {
		pg, err := p.buildProcGraph(proc, cfg)
		if err != nil {
			return nil, err
		}
		p.templates[proc.Name] = pg
	}
	return p, nil
}

// Proc returns the compiled graph for the named process (or the sole one
// when name is empty).
func (p *Program) Proc(name string) (*ProcGraph, error) {
	if name == "" {
		if len(p.templates) != 1 {
			return nil, fmt.Errorf("compiler: program has %d processes; name one", len(p.templates))
		}
		for _, pg := range p.templates {
			return pg, nil
		}
	}
	pg, ok := p.templates[name]
	if !ok {
		return nil, fmt.Errorf("compiler: no process %q", name)
	}
	return pg, nil
}

// Codec returns the codec pair resolved for a record type.
func (p *Program) Codec(typeName string) (CodecPair, bool) {
	c, ok := p.codecs[typeName]
	return c, ok
}

// Desc returns the runtime record descriptor for a record type.
func (p *Program) Desc(typeName string) *value.RecordDesc { return p.descs[typeName] }

// CallFunction invokes a compiled FLICK function directly (tests, REPL-style
// tooling). Channel-valued parameters cannot be supplied this way.
func (p *Program) CallFunction(name string, args ...value.Value) (value.Value, error) {
	f, ok := p.funs[name]
	if !ok {
		return value.Null, fmt.Errorf("compiler: no function %q", name)
	}
	if len(args) != f.nParams {
		return value.Null, fmt.Errorf("compiler: %q takes %d arguments, got %d", name, f.nParams, len(args))
	}
	fr := Frame{}
	return f.call(&fr, args), nil
}

// Globals exposes a process's shared global values (diagnostics/tests).
func (p *Program) Globals(proc string) []value.Value { return p.globals[proc] }

// resolveCodecs binds or synthesises a codec (and record descriptor) for
// every declared record type.
func (p *Program) resolveCodecs(cfg Config) error {
	// Which types flow over channels (those must be serialisable)?
	onWire := map[string]bool{}
	for _, proc := range p.checked.Prog.Procs {
		for _, ch := range proc.Channels {
			if ch.Type.Recv != "" {
				onWire[ch.Type.Recv] = true
			}
			if ch.Type.Send != "" {
				onWire[ch.Type.Send] = true
			}
		}
	}
	for name, td := range p.checked.Types {
		if pair, ok := cfg.Codecs[name]; ok {
			if pair.Decode == nil || pair.Encode == nil {
				return fmt.Errorf("compiler: codec binding for %q must set Decode and Encode", name)
			}
			p.codecs[name] = pair
			p.descs[name] = pair.Decode.Desc()
		} else if unit, err := SynthesizeUnit(td); err == nil {
			codec, cerr := unit.Compile(grammar.CaptureRaw())
			if cerr != nil {
				return fmt.Errorf("compiler: synthesised grammar for %q: %w", name, cerr)
			}
			p.codecs[name] = CodecPair{Decode: codec, Encode: codec}
			p.descs[name] = codec.Desc()
		} else if onWire[name] {
			return fmt.Errorf("compiler: type %q crosses the network but is not serialisable: %v (bind a codec)", name, err)
		} else {
			// Internal-only record: plain descriptor.
			fields := make([]string, len(td.Fields))
			for i, f := range td.Fields {
				if f.Name == "" {
					fields[i] = fmt.Sprintf("_%d", i)
				} else {
					fields[i] = f.Name
				}
			}
			p.descs[name] = value.NewRecordDesc(name, fields...)
		}
		// Constructor slots: named fields in declaration order.
		desc := p.descs[name]
		var slots []int
		for _, f := range td.Fields {
			if f.Name == "" {
				continue
			}
			s := desc.FieldIndex(f.Name)
			if s < 0 {
				return fmt.Errorf("compiler: bound codec for %q lacks field %q", name, f.Name)
			}
			slots = append(slots, s)
		}
		p.ctorSlots[name] = slots
	}
	return nil
}

// SynthesizeUnit builds a grammar unit from a record declaration's
// serialisation annotations (§4.2). Every field needs a size annotation;
// integer sizes must be 1, 2, 4 or 8 bytes. Length-bearing integer fields
// (those whose value is exactly the size of one later field) gain
// &serialize expressions so constructed messages are framed correctly.
func SynthesizeUnit(td *lang.TypeDecl) (grammar.Unit, error) {
	u := grammar.Unit{Name: td.Name, Order: grammar.BigEndian}
	// First pass: map field name → size-source for serialize inference.
	sizeRef := map[string]string{} // int field name → later field name sized by it
	for _, f := range td.Fields {
		for _, a := range f.Attrs {
			if a.Name != "size" {
				continue
			}
			if id, ok := a.Value.(*lang.Ident); ok && f.Name != "" {
				if _, taken := sizeRef[id.Name]; taken {
					delete(sizeRef, id.Name) // sized more than one field: ambiguous
				} else {
					sizeRef[id.Name] = f.Name
				}
			}
		}
	}
	for _, f := range td.Fields {
		var sizeAttr lang.Expr
		for _, a := range f.Attrs {
			if a.Name == "size" {
				sizeAttr = a.Value
			}
		}
		if sizeAttr == nil {
			return u, fmt.Errorf("field %q has no size annotation", fieldLabel(f))
		}
		switch f.Type.Name {
		case "integer":
			lit, ok := sizeAttr.(*lang.IntLit)
			if !ok {
				return u, fmt.Errorf("integer field %q must have a constant size", fieldLabel(f))
			}
			gf := grammar.Field{Name: f.Name, Kind: grammar.KindUint, Size: int(lit.Val)}
			if sized, ok := sizeRef[f.Name]; ok {
				gf.Serialize = grammar.LenOf(sized)
			}
			u.Fields = append(u.Fields, gf)
		case "string", "bytes":
			if lit, ok := sizeAttr.(*lang.IntLit); ok {
				u.Fields = append(u.Fields, grammar.Field{
					Name: f.Name, Kind: grammar.KindFixedBytes, Size: int(lit.Val)})
				continue
			}
			le, err := sizeToGrammarExpr(sizeAttr)
			if err != nil {
				return u, err
			}
			u.Fields = append(u.Fields, grammar.Field{
				Name: f.Name, Kind: grammar.KindBytes, Length: le})
		default:
			return u, fmt.Errorf("field %q: wire type %q not serialisable", fieldLabel(f), f.Type.Name)
		}
	}
	return u, nil
}

func fieldLabel(f *lang.FieldDecl) string {
	if f.Name == "" {
		return "_"
	}
	return f.Name
}

// sizeToGrammarExpr converts a checked size annotation to a grammar length
// expression.
func sizeToGrammarExpr(e lang.Expr) (grammar.Expr, error) {
	switch x := e.(type) {
	case *lang.IntLit:
		return grammar.Const(x.Val), nil
	case *lang.Ident:
		return grammar.Ref(x.Name), nil
	case *lang.BinaryExpr:
		l, err := sizeToGrammarExpr(x.L)
		if err != nil {
			return nil, err
		}
		r, err := sizeToGrammarExpr(x.R)
		if err != nil {
			return nil, err
		}
		switch x.Op {
		case lang.TokPlus:
			return grammar.Add(l, r), nil
		case lang.TokMinus:
			return grammar.Sub(l, r), nil
		case lang.TokStar:
			return grammar.Mul(l, r), nil
		}
	}
	return nil, fmt.Errorf("unsupported size expression")
}
