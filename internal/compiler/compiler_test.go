package compiler

import (
	"encoding/binary"
	"strings"
	"testing"

	"flick/internal/buffer"
	"flick/internal/grammar"
	"flick/internal/lang"
	"flick/internal/proto/hadoop"
	"flick/internal/value"
)

func TestCompileListing1(t *testing.T) {
	prog, err := Compile(lang.Listing1, Config{ArraySizes: map[string]int{"backends": 2}})
	if err != nil {
		t.Fatal(err)
	}
	pg, err := prog.Proc("memcached")
	if err != nil {
		t.Fatal(err)
	}
	if len(pg.Ports["client"]) != 1 || len(pg.Ports["backends"]) != 2 {
		t.Fatalf("ports = %+v", pg.Ports)
	}
	// Nodes: client in/out + 2×backend in/out + 2 computes.
	if n := len(pg.Template.Nodes()); n != 8 {
		t.Fatalf("nodes = %d, want 8", n)
	}
	// The client port is primary (first bidirectional scalar).
	ports := pg.Template.Ports()
	if !ports[pg.Ports["client"][0]].Primary {
		t.Fatal("client port should be primary")
	}
	if ports[pg.Ports["backends"][0]].Primary {
		t.Fatal("backend ports should not be primary")
	}
}

func TestCompileListing3GraphShape(t *testing.T) {
	pair := CodecPair{Decode: hadoop.Codec, Encode: hadoop.Codec}
	prog, err := Compile(lang.Listing3, Config{
		ArraySizes: map[string]int{"mappers": 8},
		Codecs:     map[string]CodecPair{"kv": pair},
	})
	if err != nil {
		t.Fatal(err)
	}
	pg, err := prog.Proc("hadoop")
	if err != nil {
		t.Fatal(err)
	}
	// §6.3: "The task graph therefore has 16 tasks (8 input, 7 processing
	// and 1 output)".
	if n := len(pg.Template.Nodes()); n != 16 {
		t.Fatalf("nodes = %d, want 16", n)
	}
	inputs, computes, outputs := 0, 0, 0
	for _, n := range pg.Template.Nodes() {
		switch n.Kind {
		case 0:
			inputs++
		case 1:
			computes++
		case 2:
			outputs++
		}
	}
	if inputs != 8 || computes != 7 || outputs != 1 {
		t.Fatalf("shape = %d/%d/%d, want 8/7/1", inputs, computes, outputs)
	}
}

func TestCompileFoldtSingleMapper(t *testing.T) {
	pair := CodecPair{Decode: hadoop.Codec, Encode: hadoop.Codec}
	prog, err := Compile(lang.Listing3, Config{
		ArraySizes: map[string]int{"mappers": 1},
		Codecs:     map[string]CodecPair{"kv": pair},
	})
	if err != nil {
		t.Fatal(err)
	}
	pg, _ := prog.Proc("hadoop")
	// 1 input + 1 combine + 1 output: aggregation still happens.
	if n := len(pg.Template.Nodes()); n != 3 {
		t.Fatalf("nodes = %d, want 3", n)
	}
}

func TestCompileErrors(t *testing.T) {
	if _, err := Compile("fun f: (\n", Config{}); err == nil {
		t.Fatal("parse error not surfaced")
	}
	if _, err := Compile(`
type t: record
    a : integer
fun f: (x: t) -> (t)
    f(x)
`, Config{}); err == nil {
		t.Fatal("type error not surfaced")
	}
	// Channel array without a configured size.
	if _, err := Compile(lang.Listing1, Config{}); err == nil {
		t.Fatal("missing array size accepted")
	}
	// Wire type without codec or annotations.
	if _, err := Compile(lang.ListingProxy, Config{ArraySizes: map[string]int{"backends": 2}}); err == nil {
		t.Fatal("unserialisable wire type accepted")
	}
	// Incomplete explicit binding.
	if _, err := Compile(lang.ListingProxy, Config{
		ArraySizes: map[string]int{"backends": 2},
		Codecs:     map[string]CodecPair{"cmd": {Decode: grammar.MemcachedUnit().MustCompile()}},
	}); err == nil {
		t.Fatal("half-bound codec accepted")
	}
}

func TestCompileChannelReuseRejected(t *testing.T) {
	src := `
type t: record
    a : integer {size=1}

proc p: (t/t c)
    | c => c
    | c => c
`
	if _, err := Compile(src, Config{}); err == nil || !strings.Contains(err.Error(), "more than one pipeline") {
		t.Fatalf("err = %v", err)
	}
}

func TestProcLookup(t *testing.T) {
	prog, err := Compile(lang.Listing1, Config{ArraySizes: map[string]int{"backends": 2}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := prog.Proc(""); err != nil {
		t.Fatal("single proc should resolve with empty name")
	}
	if _, err := prog.Proc("ghost"); err == nil {
		t.Fatal("unknown proc resolved")
	}
}

func TestSynthesizeUnitListing1(t *testing.T) {
	prog, err := Compile(lang.Listing1, Config{ArraySizes: map[string]int{"backends": 2}})
	if err != nil {
		t.Fatal(err)
	}
	pair, ok := prog.Codec("cmd")
	if !ok {
		t.Fatal("no synthesised codec for cmd")
	}
	// Round-trip a hand-built wire message through the synthesised codec.
	wire := listing1Wire(0x0c, "mykey", "myvalue")
	q := buffer.NewQueue(nil)
	q.Append(wire)
	msg, okDecoded, err := pair.Decode.NewDecoder().Decode(q)
	if err != nil || !okDecoded {
		t.Fatalf("decode: %v %v", okDecoded, err)
	}
	if msg.Field("opcode").AsInt() != 0x0c {
		t.Fatalf("opcode = %x", msg.Field("opcode").AsInt())
	}
	if msg.Field("key").AsString() != "mykey" {
		t.Fatalf("key = %q", msg.Field("key").AsString())
	}
	// Raw capture: re-encode must be byte-identical (forwarding fidelity).
	out, err := pair.Encode.Encode(nil, msg)
	if err != nil {
		t.Fatal(err)
	}
	if string(out) != string(wire) {
		t.Fatalf("re-encode differs\n% x\n% x", wire, out)
	}
}

// listing1Wire builds a message in the Listing 1 layout: opcode(1)
// keylen(2) extraslen(1) pad(3) bodylen(8) pad(12+extras) key body.
func listing1Wire(opcode byte, key, body string) []byte {
	out := []byte{opcode}
	var u16 [2]byte
	binary.BigEndian.PutUint16(u16[:], uint16(len(key)))
	out = append(out, u16[:]...)
	out = append(out, 0)       // extraslen
	out = append(out, 0, 0, 0) // pad 3
	var u64 [8]byte
	binary.BigEndian.PutUint64(u64[:], uint64(len(key)+len(body)))
	out = append(out, u64[:]...)
	out = append(out, make([]byte, 12)...) // pad 12 + extras(0)
	out = append(out, key...)
	out = append(out, body...)
	return out
}

func TestSynthesizeUnitErrors(t *testing.T) {
	cases := []string{
		// no size annotation
		"type t: record\n    a : integer\n",
		// non-constant integer size
		"type t: record\n    n : integer {size=1}\n    a : integer {size=n}\n",
	}
	for _, src := range cases {
		prog, err := lang.Parse(src)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := SynthesizeUnit(prog.Types[0]); err == nil {
			t.Errorf("SynthesizeUnit(%q) succeeded", src)
		}
	}
}

func TestSynthesizeSerializeInference(t *testing.T) {
	src := `
type msg: record
    klen : integer {size=2}
    key : string {size=klen}
`
	prog, err := lang.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	unit, err := SynthesizeUnit(prog.Types[0])
	if err != nil {
		t.Fatal(err)
	}
	codec, err := unit.Compile()
	if err != nil {
		t.Fatal(err)
	}
	// Construct a record without setting klen: serialise must infer it.
	rec := codec.Desc().New()
	rec.SetField("key", value.Str("hello"))
	wire, err := codec.Encode(nil, rec)
	if err != nil {
		t.Fatal(err)
	}
	if len(wire) != 7 || wire[0] != 0 || wire[1] != 5 {
		t.Fatalf("wire = % x", wire)
	}
}

func TestCallFunction(t *testing.T) {
	src := `
type t: record
    a : integer {size=1}

fun double: (x: t) -> (integer)
    x.a * 2

fun clamp: (x: t) -> (integer)
    if x.a > 10:
        10
    else:
        x.a
`
	prog, err := Compile(src, Config{})
	if err != nil {
		t.Fatal(err)
	}
	rec := prog.Desc("t").New()
	rec.SetField("a", value.Int(21))
	got, err := prog.CallFunction("double", rec)
	if err != nil {
		t.Fatal(err)
	}
	if got.AsInt() != 42 {
		t.Fatalf("double = %d", got.AsInt())
	}
	got, _ = prog.CallFunction("clamp", rec)
	if got.AsInt() != 10 {
		t.Fatalf("clamp(21) = %d", got.AsInt())
	}
	rec.SetField("a", value.Int(3))
	got, _ = prog.CallFunction("clamp", rec)
	if got.AsInt() != 3 {
		t.Fatalf("clamp(3) = %d", got.AsInt())
	}
	if _, err := prog.CallFunction("ghost"); err == nil {
		t.Fatal("unknown function callable")
	}
	if _, err := prog.CallFunction("double"); err == nil {
		t.Fatal("arity not checked")
	}
}

func TestIRBuiltins(t *testing.T) {
	src := `
type doc: record
    text : string {size=4}

fun wordlen: (w: string) -> (integer)
    len(w)

fun is_long: (w: string) -> (boolean)
    len(w) > 3

fun add: (acc: integer, n: string) -> (integer)
    acc + len(n)

fun analyze: (d: doc) -> (integer)
    let words = split_words(d.text)
    let longs = filter(is_long, words)
    fold(add, 0, longs)

fun roundtrip: (d: doc) -> (string)
    int_to_string(string_to_int("41") + 1)

fun hashing: (d: doc) -> (integer)
    hash(d.text) mod 100

fun concat: (d: doc) -> (string)
    d.text + "!"
`
	prog, err := Compile(src, Config{})
	if err != nil {
		t.Fatal(err)
	}
	doc := prog.Desc("doc").New()
	doc.SetField("text", value.Str("hi there is a longword here"))

	got, _ := prog.CallFunction("analyze", doc)
	// long words: "there"(5) + "longword"(8) + "here"(4) = 17
	if got.AsInt() != 17 {
		t.Fatalf("analyze = %d", got.AsInt())
	}
	got, _ = prog.CallFunction("roundtrip", doc)
	if got.AsString() != "42" {
		t.Fatalf("roundtrip = %q", got.AsString())
	}
	got, _ = prog.CallFunction("hashing", doc)
	if got.AsInt() < 0 || got.AsInt() >= 100 {
		t.Fatalf("hashing = %d", got.AsInt())
	}
	got, _ = prog.CallFunction("concat", doc)
	if got.AsString() != "hi there is a longword here!" {
		t.Fatalf("concat = %q", got.AsString())
	}
}

func TestIRDictOperations(t *testing.T) {
	src := `
type t: record
    k : string {size=4}

fun put: (d: ref dict<string*t>, x: t) -> ()
    d[x.k] := x

fun has: (d: ref dict<string*t>, x: t) -> (boolean)
    d[x.k] <> None
`
	prog, err := Compile(src, Config{})
	if err != nil {
		t.Fatal(err)
	}
	d := value.NewDict()
	rec := prog.Desc("t").New()
	rec.SetField("k", value.Str("key1"))

	got, _ := prog.CallFunction("has", d, rec)
	if got.AsBool() {
		t.Fatal("empty dict has key")
	}
	prog.CallFunction("put", d, rec)
	got, _ = prog.CallFunction("has", d, rec)
	if !got.AsBool() {
		t.Fatal("dict missing stored key")
	}
}

func TestIRDivisionByZeroSafe(t *testing.T) {
	src := `
type t: record
    a : integer {size=1}

fun div: (x: t) -> (integer)
    100 / x.a

fun modz: (x: t) -> (integer)
    100 mod x.a
`
	prog, err := Compile(src, Config{})
	if err != nil {
		t.Fatal(err)
	}
	rec := prog.Desc("t").New()
	rec.SetField("a", value.Int(0))
	got, _ := prog.CallFunction("div", rec)
	if got.AsInt() != 0 {
		t.Fatalf("div by zero = %d", got.AsInt())
	}
	got, _ = prog.CallFunction("modz", rec)
	if got.AsInt() != 0 {
		t.Fatalf("mod by zero = %d", got.AsInt())
	}
}

func TestIRStringToIntGarbage(t *testing.T) {
	if stringToInt("banana") != 0 || stringToInt(" 42 ") != 42 || stringToInt("-7") != -7 {
		t.Fatal("stringToInt behaviour")
	}
}

func TestHashValueStability(t *testing.T) {
	a := hashValue(value.Str("key"))
	b := hashValue(value.Bytes([]byte("key")))
	if a != b {
		t.Fatal("hash of equal string/bytes content differs")
	}
	if a < 0 {
		t.Fatal("hash must be non-negative for mod routing")
	}
	if hashValue(value.Str("key")) != a {
		t.Fatal("hash not deterministic")
	}
	if hashValue(value.Str("other")) == a {
		t.Fatal("suspicious collision on trivial input")
	}
	if hashValue(value.Int(7)) == hashValue(value.Int(8)) {
		t.Fatal("int hash collision")
	}
}

func TestGlobalsSharedAcrossInstances(t *testing.T) {
	prog, err := Compile(lang.Listing1, Config{ArraySizes: map[string]int{"backends": 2}})
	if err != nil {
		t.Fatal(err)
	}
	globals := prog.Globals("memcached")
	if len(globals) != 1 || globals[0].Kind != value.KindDict {
		t.Fatalf("globals = %+v", globals)
	}
}
