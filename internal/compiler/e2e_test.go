package compiler

import (
	"io"
	"net"
	"sync/atomic"
	"testing"
	"time"

	"flick/internal/buffer"
	"flick/internal/core"
	"flick/internal/lang"
	"flick/internal/netstack"
	"flick/internal/proto/hadoop"
	phttp "flick/internal/proto/http"
	"flick/internal/value"
)

// TestListing1EndToEnd runs the paper's Memcached cache router end to end:
// a GETK miss is hash-routed to a backend, the GETK reply is cached, and a
// repeat request is served from the middlebox without touching the backend.
func TestListing1EndToEnd(t *testing.T) {
	u := netstack.NewUserNet()
	p := core.NewPlatform(core.Config{Workers: 4, Transport: u})
	defer p.Close()

	prog, err := Compile(lang.Listing1, Config{ArraySizes: map[string]int{"backends": 2}})
	if err != nil {
		t.Fatal(err)
	}
	pg, err := prog.Proc("memcached")
	if err != nil {
		t.Fatal(err)
	}
	pair, _ := prog.Codec("cmd")

	// Backends speak the Listing 1 wire layout and count requests.
	var backendReqs atomic.Int64
	for i, addr := range []string{"be:0", "be:1"} {
		l, err := u.Listen(addr)
		if err != nil {
			t.Fatal(err)
		}
		_ = i
		go func() {
			for {
				c, err := l.Accept()
				if err != nil {
					return
				}
				go func(c net.Conn) {
					defer c.Close()
					q := buffer.NewQueue(nil)
					dec := pair.Decode.NewDecoder()
					rbuf := make([]byte, 4096)
					for {
						msg, ok, derr := dec.Decode(q)
						if derr != nil {
							return
						}
						if ok {
							backendReqs.Add(1)
							key := msg.Field("key").AsString()
							c.Write(listing1Wire(0x0c, key, "value-of-"+key))
							continue
						}
						n, rerr := c.Read(rbuf)
						if n > 0 {
							q.Append(rbuf[:n])
						}
						if rerr != nil {
							return
						}
					}
				}(c)
			}
		}()
	}

	clientPort, _ := pg.PortIndex("client")
	svc, err := p.Deploy(core.ServiceConfig{
		Name:       "memcached-router",
		ListenAddr: "router:11211",
		Template:   pg.Template,
		Dispatch:   core.PerConnection,
		ClientPort: clientPort,
		BackendAddrs: map[int]string{
			pg.Ports["backends"][0]: "be:0",
			pg.Ports["backends"][1]: "be:1",
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()

	get := func(c net.Conn, dec interface {
		Decode(*buffer.Queue) (value.Value, bool, error)
	}, q *buffer.Queue, key string) string {
		t.Helper()
		if _, err := c.Write(listing1Wire(0x0c, key, "")); err != nil {
			t.Fatal(err)
		}
		rbuf := make([]byte, 4096)
		deadline := time.Now().Add(5 * time.Second)
		for {
			msg, ok, derr := dec.Decode(q)
			if derr != nil {
				t.Fatal(derr)
			}
			if ok {
				if got := msg.Field("key").AsString(); got != key {
					t.Fatalf("response key %q, want %q", got, key)
				}
				// The value is the trailing anonymous body; verify via raw.
				return string(msg.Field("_7").AsBytes())
			}
			c.SetReadDeadline(deadline)
			n, rerr := c.Read(rbuf)
			if n > 0 {
				q.Append(rbuf[:n])
				continue
			}
			if rerr != nil {
				t.Fatalf("read: %v", rerr)
			}
		}
	}

	conn, err := u.Dial("router:11211")
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	dec := pair.Decode.NewDecoder()
	q := buffer.NewQueue(nil)

	if got := get(conn, dec, q, "alpha"); got != "value-of-alpha" {
		t.Fatalf("first GETK = %q", got)
	}
	if n := backendReqs.Load(); n != 1 {
		t.Fatalf("backend requests after miss = %d", n)
	}
	// Second GETK for the same key: served from the router's cache.
	if got := get(conn, dec, q, "alpha"); got != "value-of-alpha" {
		t.Fatalf("cached GETK = %q", got)
	}
	if n := backendReqs.Load(); n != 1 {
		t.Fatalf("backend requests after cached hit = %d (cache miss?)", n)
	}
	// A different key goes to a backend again.
	if got := get(conn, dec, q, "beta"); got != "value-of-beta" {
		t.Fatalf("second key GETK = %q", got)
	}
	if n := backendReqs.Load(); n != 2 {
		t.Fatalf("backend requests = %d, want 2", n)
	}
}

// TestListing3EndToEnd drives the Hadoop aggregator: four mappers emit
// word counts, the foldt tree combines them, the reducer receives one
// aggregated pair per word.
func TestListing3EndToEnd(t *testing.T) {
	u := netstack.NewUserNet()
	p := core.NewPlatform(core.Config{Workers: 4, Transport: u})
	defer p.Close()

	pair := CodecPair{Decode: hadoop.Codec, Encode: hadoop.Codec}
	prog, err := Compile(lang.Listing3, Config{
		ArraySizes: map[string]int{"mappers": 4},
		Codecs:     map[string]CodecPair{"kv": pair},
	})
	if err != nil {
		t.Fatal(err)
	}
	pg, err := prog.Proc("hadoop")
	if err != nil {
		t.Fatal(err)
	}

	// Reducer sink.
	rl, _ := u.Listen("reducer:1")
	results := make(chan map[string]string, 1)
	go func() {
		c, err := rl.Accept()
		if err != nil {
			return
		}
		defer c.Close()
		got := map[string]string{}
		r := hadoop.NewReader(c)
		for {
			kv, err := r.Read()
			if err != nil {
				results <- got
				return
			}
			got[hadoop.Key(kv)] = string(hadoop.Value(kv))
			kv.Release()
		}
	}()

	reducerPort, _ := pg.PortIndex("reducer")
	svc, err := p.Deploy(core.ServiceConfig{
		Name:         "hadoop-agg",
		ListenAddr:   "agg:1",
		Template:     pg.Template,
		Dispatch:     core.Shared,
		SharedPorts:  pg.Ports["mappers"],
		BackendAddrs: map[int]string{reducerPort: "reducer:1"},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()

	// Four mappers, overlapping word sets.
	words := [][]string{
		{"apple", "banana", "apple"},
		{"banana", "cherry"},
		{"apple", "cherry", "cherry"},
		{"banana"},
	}
	for _, ws := range words {
		c, err := u.Dial("agg:1")
		if err != nil {
			t.Fatal(err)
		}
		w := hadoop.NewWriter(c)
		for _, word := range ws {
			w.Write([]byte(word), []byte("1"))
		}
		w.Flush()
		c.Close()
	}

	select {
	case got := <-results:
		want := map[string]string{"apple": "3", "banana": "3", "cherry": "3"}
		for k, v := range want {
			if got[k] != v {
				t.Fatalf("count[%s] = %q, want %q (all: %v)", k, got[k], v, got)
			}
		}
		if len(got) != len(want) {
			t.Fatalf("extra keys: %v", got)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("reducer never received aggregated output")
	}
}

// TestHTTPLBEndToEnd drives the compiled HTTP load balancer: requests hash
// to a backend, responses flow back, and the same connection sticks to one
// backend.
func TestHTTPLBEndToEnd(t *testing.T) {
	u := netstack.NewUserNet()
	p := core.NewPlatform(core.Config{Workers: 4, Transport: u})
	defer p.Close()

	prog, err := Compile(lang.ListingHTTPLB, Config{
		ArraySizes: map[string]int{"backends": 3},
		ChannelCodecs: map[string]PortCodec{
			"client":   {Decode: phttp.RequestFormat{}, Encode: phttp.ResponseFormat{}},
			"backends": {Decode: phttp.ResponseFormat{}, Encode: phttp.RequestFormat{}},
		},
		Codecs: map[string]CodecPair{
			"request": {Decode: phttp.RequestFormat{}, Encode: phttp.RequestFormat{}},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	pg, err := prog.Proc("http_lb")
	if err != nil {
		t.Fatal(err)
	}

	// Three backends, each echoing its identity.
	var hits [3]atomic.Int64
	backendAddrs := map[int]string{}
	for i := 0; i < 3; i++ {
		i := i
		addr := "web:" + string(rune('0'+i))
		l, err := u.Listen(addr)
		if err != nil {
			t.Fatal(err)
		}
		backendAddrs[pg.Ports["backends"][i]] = addr
		go func() {
			for {
				c, err := l.Accept()
				if err != nil {
					return
				}
				go func(c net.Conn) {
					defer c.Close()
					q := buffer.NewQueue(nil)
					dec := phttp.RequestFormat{}.NewDecoder()
					rbuf := make([]byte, 8192)
					for {
						msg, ok, derr := dec.Decode(q)
						if derr != nil {
							return
						}
						if ok {
							hits[i].Add(1)
							body := []byte("srv" + string(rune('0'+i)))
							ka := msg.Field("keep_alive").AsInt() == 1
							c.Write(phttp.BuildResponse(nil, 200, "OK", ka, body))
							if !ka {
								return
							}
							continue
						}
						n, rerr := c.Read(rbuf)
						if n > 0 {
							q.Append(rbuf[:n])
						}
						if rerr != nil {
							return
						}
					}
				}(c)
			}
		}()
	}

	clientPort, _ := pg.PortIndex("client")
	svc, err := p.Deploy(core.ServiceConfig{
		Name:         "http-lb",
		ListenAddr:   "lb:80",
		Template:     pg.Template,
		Dispatch:     core.PerConnection,
		ClientPort:   clientPort,
		BackendAddrs: backendAddrs,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()

	doRequests := func(n int) string {
		t.Helper()
		conn, err := u.Dial("lb:80")
		if err != nil {
			t.Fatal(err)
		}
		defer conn.Close()
		q := buffer.NewQueue(nil)
		dec := phttp.ResponseFormat{}.NewDecoder()
		rbuf := make([]byte, 8192)
		var server string
		for r := 0; r < n; r++ {
			conn.Write(phttp.BuildRequest(nil, "GET", "/x", "lb", true, nil))
			conn.SetReadDeadline(time.Now().Add(5 * time.Second))
			for {
				msg, ok, derr := dec.Decode(q)
				if derr != nil {
					t.Fatal(derr)
				}
				if ok {
					body := msg.Field("body").AsString()
					if server == "" {
						server = body
					} else if server != body {
						t.Fatalf("connection switched backend: %q then %q", server, body)
					}
					break
				}
				m, rerr := conn.Read(rbuf)
				if m > 0 {
					q.Append(rbuf[:m])
					continue
				}
				if rerr != nil {
					t.Fatalf("read: %v", rerr)
				}
			}
		}
		return server
	}

	// Several connections; each must stick to exactly one backend.
	seen := map[string]bool{}
	for c := 0; c < 12; c++ {
		seen[doRequests(3)] = true
	}
	total := hits[0].Load() + hits[1].Load() + hits[2].Load()
	if total != 36 {
		t.Fatalf("backend hits = %d, want 36", total)
	}
	if len(seen) < 2 {
		t.Logf("warning: all connections hashed to one backend (seen=%v)", seen)
	}
}

// TestHTTPLBNonPersistent verifies the Connection: close path: backend
// closes, EOF propagates, client sees response then EOF.
func TestHTTPLBNonPersistent(t *testing.T) {
	u := netstack.NewUserNet()
	p := core.NewPlatform(core.Config{Workers: 2, Transport: u})
	defer p.Close()

	prog, err := Compile(lang.ListingHTTPLB, Config{
		ArraySizes: map[string]int{"backends": 1},
		ChannelCodecs: map[string]PortCodec{
			"client":   {Decode: phttp.RequestFormat{}, Encode: phttp.ResponseFormat{}},
			"backends": {Decode: phttp.ResponseFormat{}, Encode: phttp.RequestFormat{}},
		},
		Codecs: map[string]CodecPair{
			"request": {Decode: phttp.RequestFormat{}, Encode: phttp.RequestFormat{}},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	pg, _ := prog.Proc("http_lb")

	l, _ := u.Listen("web:solo")
	go func() {
		for {
			c, err := l.Accept()
			if err != nil {
				return
			}
			go func(c net.Conn) {
				defer c.Close()
				q := buffer.NewQueue(nil)
				dec := phttp.RequestFormat{}.NewDecoder()
				rbuf := make([]byte, 8192)
				for {
					_, ok, derr := dec.Decode(q)
					if derr != nil {
						return
					}
					if ok {
						c.Write(phttp.BuildResponse(nil, 200, "OK", false, []byte("done")))
						return // Connection: close semantics
					}
					n, rerr := c.Read(rbuf)
					if n > 0 {
						q.Append(rbuf[:n])
					}
					if rerr != nil {
						return
					}
				}
			}(c)
		}
	}()

	clientPort, _ := pg.PortIndex("client")
	svc, err := p.Deploy(core.ServiceConfig{
		Name:         "http-lb-np",
		ListenAddr:   "lbnp:80",
		Template:     pg.Template,
		Dispatch:     core.PerConnection,
		ClientPort:   clientPort,
		BackendAddrs: map[int]string{pg.Ports["backends"][0]: "web:solo"},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()

	conn, err := u.Dial("lbnp:80")
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	conn.Write(phttp.BuildRequest(nil, "GET", "/", "lb", false, nil))
	conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	data, err := io.ReadAll(conn)
	if err != nil {
		t.Fatalf("read: %v (got %q)", err, data)
	}
	if len(data) == 0 {
		t.Fatal("no response before EOF")
	}
	q := buffer.NewQueue(nil)
	q.Append(data)
	msg, ok, derr := phttp.ResponseFormat{}.NewDecoder().Decode(q)
	if derr != nil || !ok {
		t.Fatalf("response decode: %v %v (%q)", ok, derr, data)
	}
	if msg.Field("body").AsString() != "done" {
		t.Fatalf("body = %q", msg.Field("body").AsString())
	}
}
