package compiler

import (
	"strings"
	"testing"

	"flick/internal/grammar"
	"flick/internal/value"
)

func TestMultipleProcsCompile(t *testing.T) {
	src := `
type msg: record
    body : string {size=4}

proc first: (msg/msg a)
    | a => a

fun noop: (m: msg) -> (msg)
    m

proc second: (msg/msg b)
    | b => noop() => b
`
	prog, err := Compile(src, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := prog.Proc("first"); err != nil {
		t.Fatal(err)
	}
	if _, err := prog.Proc("second"); err != nil {
		t.Fatal(err)
	}
	// Ambiguous empty name with two procs.
	if _, err := prog.Proc(""); err == nil {
		t.Fatal("ambiguous proc lookup accepted")
	}
}

func TestPrimaryChannelOverride(t *testing.T) {
	src := `
type msg: record
    body : string {size=4}

proc p: (msg/msg a, msg/msg b)
    | a => b
    | b => a
`
	prog, err := Compile(src, Config{PrimaryChannel: "b"})
	if err != nil {
		t.Fatal(err)
	}
	pg, _ := prog.Proc("p")
	ports := pg.Template.Ports()
	bPort, _ := pg.PortIndex("b")
	aPort, _ := pg.PortIndex("a")
	if !ports[bPort].Primary || ports[aPort].Primary {
		t.Fatal("PrimaryChannel override not honoured")
	}
}

func TestPipelineChainOfStages(t *testing.T) {
	src := `
type msg: record
    n : integer {size=4}

proc p: (msg/msg c)
    | c => incr() => double() => c

fun incr: (m: msg) -> (msg)
    msg(m.n + 1)

fun double: (m: msg) -> (msg)
    msg(m.n * 2)
`
	prog, err := Compile(src, Config{})
	if err != nil {
		t.Fatal(err)
	}
	// Chained stages share one compute node.
	pg, _ := prog.Proc("p")
	computes := 0
	for _, n := range pg.Template.Nodes() {
		if n.Kind == 1 {
			computes++
		}
	}
	if computes != 1 {
		t.Fatalf("computes = %d, want 1 (stages fuse)", computes)
	}
	// Check semantics through the function layer: (5+1)*2 = 12.
	rec := prog.Desc("msg").New()
	rec.SetField("n", value.Int(5))
	v1, err := prog.CallFunction("incr", rec)
	if err != nil {
		t.Fatal(err)
	}
	v2, err := prog.CallFunction("double", v1)
	if err != nil {
		t.Fatal(err)
	}
	if v2.Field("n").AsInt() != 12 {
		t.Fatalf("chained result = %d", v2.Field("n").AsInt())
	}
}

func TestReadOnlyChannelHasNoOutputNode(t *testing.T) {
	src := `
type msg: record
    body : string {size=4}

proc p: (msg/- src, -/msg dst)
    | src => dst
`
	prog, err := Compile(src, Config{})
	if err != nil {
		t.Fatal(err)
	}
	pg, _ := prog.Proc("p")
	inputs, outputs := 0, 0
	for _, n := range pg.Template.Nodes() {
		switch n.Kind {
		case 0:
			inputs++
		case 2:
			outputs++
		}
	}
	if inputs != 1 || outputs != 1 {
		t.Fatalf("shape = %d inputs, %d outputs", inputs, outputs)
	}
	ports := pg.Template.Ports()
	srcPort, _ := pg.PortIndex("src")
	if ports[srcPort].Out != -1 {
		t.Fatal("read-only port has an output binding")
	}
	dstPort, _ := pg.PortIndex("dst")
	if ports[dstPort].In != -1 {
		t.Fatal("write-only port has an input binding")
	}
}

func TestAsymmetricChannelTypes(t *testing.T) {
	src := `
type req: record
    q : string {size=2}

type resp: record
    r : string {size=2}

proc p: (req/resp client)
    | client => answer() => client

fun answer: (x: req) -> (resp)
    resp(x.q)
`
	prog, err := Compile(src, Config{})
	if err != nil {
		t.Fatal(err)
	}
	pg, _ := prog.Proc("p")
	var in, out string
	for _, n := range pg.Template.Nodes() {
		switch n.Kind {
		case 0:
			in = n.Codec.FormatName()
		case 2:
			out = n.Codec.FormatName()
		}
	}
	if in != "req" || out != "resp" {
		t.Fatalf("codecs = %q/%q, want req/resp", in, out)
	}
}

func TestWrongDirectionSendRejected(t *testing.T) {
	src := `
type msg: record
    body : string {size=4}

proc p: (msg/- src, msg/- alsoread)
    | src => alsoread
`
	if _, err := Compile(src, Config{}); err == nil ||
		!strings.Contains(err.Error(), "read-only") {
		t.Fatalf("err = %v, want read-only complaint", err)
	}
}

func TestChannelCodecsIncompleteRejected(t *testing.T) {
	src := `
type msg: record
    body : string {size=4}

proc p: (msg/msg c)
    | c => c
`
	lc := grammar.LineUnit().MustCompile()
	if _, err := Compile(src, Config{
		ChannelCodecs: map[string]PortCodec{"c": {Decode: lc}}, // no Encode
	}); err == nil || !strings.Contains(err.Error(), "incomplete") {
		t.Fatalf("err = %v", err)
	}
}

func TestFoldtOddMapperCount(t *testing.T) {
	src := `
type kv: record
    key : string {size=2}
    value : string {size=2}

proc p: ([kv/-] mappers, -/kv reducer)
    foldt comb keyof mappers => reducer

fun comb: (a: kv, b: kv) -> (kv)
    a

fun keyof: (e: kv) -> (string)
    e.key
`
	for mappers, wantComputes := range map[int]int{1: 1, 2: 1, 3: 2, 5: 4, 7: 6} {
		prog, err := Compile(src, Config{ArraySizes: map[string]int{"mappers": mappers}})
		if err != nil {
			t.Fatalf("mappers=%d: %v", mappers, err)
		}
		pg, _ := prog.Proc("p")
		computes := 0
		for _, n := range pg.Template.Nodes() {
			if n.Kind == 1 {
				computes++
			}
		}
		if computes != wantComputes {
			t.Fatalf("mappers=%d: computes = %d, want %d", mappers, computes, wantComputes)
		}
	}
}

func TestIfElseValueInFunction(t *testing.T) {
	src := `
type t: record
    a : integer {size=1}

fun pick: (x: t) -> (string)
    if x.a > 5:
        "big"
    else:
        "small"
`
	prog, err := Compile(src, Config{})
	if err != nil {
		t.Fatal(err)
	}
	rec := prog.Desc("t").New()
	rec.SetField("a", value.Int(9))
	got, _ := prog.CallFunction("pick", rec)
	if got.AsString() != "big" {
		t.Fatalf("pick(9) = %q", got.AsString())
	}
	rec.SetField("a", value.Int(1))
	got, _ = prog.CallFunction("pick", rec)
	if got.AsString() != "small" {
		t.Fatalf("pick(1) = %q", got.AsString())
	}
}

func TestNestedFunctionCalls(t *testing.T) {
	src := `
type t: record
    a : integer {size=1}

fun f1: (x: t) -> (integer)
    f2(x) + 1

fun f2: (x: t) -> (integer)
    f3(x) * 2

fun f3: (x: t) -> (integer)
    x.a
`
	prog, err := Compile(src, Config{})
	if err != nil {
		t.Fatal(err)
	}
	rec := prog.Desc("t").New()
	rec.SetField("a", value.Int(10))
	got, _ := prog.CallFunction("f1", rec)
	if got.AsInt() != 21 {
		t.Fatalf("f1 = %d", got.AsInt())
	}
}

func TestBooleanShortCircuit(t *testing.T) {
	// `or` must not evaluate the right side when the left is true: the
	// right side here would divide by zero (yielding 0, not an error, but
	// we can observe short-circuiting through a dict side effect).
	src := `
type t: record
    a : integer {size=1}

fun probe: (d: ref dict<string*t>, x: t) -> (boolean)
    mark(d, x) = 1

fun mark: (d: ref dict<string*t>, x: t) -> (integer)
    d["touched"] := x
    1

fun check: (d: ref dict<string*t>, x: t) -> (boolean)
    true or probe(d, x)
`
	prog, err := Compile(src, Config{})
	if err != nil {
		t.Fatal(err)
	}
	d := value.NewDict()
	rec := prog.Desc("t").New()
	got, _ := prog.CallFunction("check", d, rec)
	if !got.AsBool() {
		t.Fatal("check result")
	}
	if _, touched := d.D.Get("touched"); touched {
		t.Fatal("`or` evaluated its right operand despite a true left")
	}
}
