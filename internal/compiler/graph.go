package compiler

import (
	"fmt"

	"flick/internal/core"
	"flick/internal/grammar"
	"flick/internal/lang"
	"flick/internal/value"
)

// ProcGraph is a compiled process: a validated task-graph template plus the
// port layout the deployer needs to wire connections.
type ProcGraph struct {
	Name     string
	Template *core.Template
	// Ports maps channel parameter names to port indices (arrays map to
	// one port per element, in order).
	Ports map[string][]int
}

// PortIndex returns the single port index of a scalar channel.
func (pg *ProcGraph) PortIndex(channel string) (int, error) {
	ps, ok := pg.Ports[channel]
	if !ok || len(ps) != 1 {
		return 0, fmt.Errorf("compiler: channel %q has %d ports", channel, len(ps))
	}
	return ps[0], nil
}

// chanNodes is the runtime realisation of one channel parameter.
type chanNodes struct {
	param *lang.ChanParam
	ins   []*core.Node // input (deserialiser) nodes, len == array size
	outs  []*core.Node // output (serialiser) nodes
	used  bool         // already consumed as a pipeline source
}

// buildProcGraph lowers one process declaration to a task-graph template.
func (p *Program) buildProcGraph(proc *lang.ProcDecl, cfg Config) (*ProcGraph, error) {
	tmpl := core.NewTemplate(proc.Name)
	pg := &ProcGraph{Name: proc.Name, Template: tmpl, Ports: map[string][]int{}}

	primary := cfg.PrimaryChannel
	if primary == "" {
		for _, ch := range proc.Channels {
			if ch.Type.Dir() == lang.ChanBoth && !ch.Type.Array {
				primary = ch.Name
				break
			}
		}
	}

	channels := map[string]*chanNodes{}
	for _, ch := range proc.Channels {
		dec, enc, err := p.portCodecs(ch, cfg)
		if err != nil {
			return nil, err
		}
		n := 1
		if ch.Type.Array {
			n = cfg.ArraySizes[ch.Name]
			if n <= 0 {
				return nil, fmt.Errorf("compiler: channel array %q needs Config.ArraySizes[%q] > 0", ch.Name, ch.Name)
			}
		}
		cn := &chanNodes{param: ch}
		for i := 0; i < n; i++ {
			suffix := ""
			if ch.Type.Array {
				suffix = fmt.Sprintf("[%d]", i)
			}
			var in, out *core.Node
			if ch.Type.Recv != "" {
				in = tmpl.AddInput(ch.Name+suffix+"_in", dec)
				cn.ins = append(cn.ins, in)
			}
			if ch.Type.Send != "" {
				out = tmpl.AddOutput(ch.Name+suffix+"_out", enc)
				cn.outs = append(cn.outs, out)
			}
			idx := tmpl.AddPort(ch.Name+suffix, in, out, ch.Name == primary)
			pg.Ports[ch.Name] = append(pg.Ports[ch.Name], idx)
		}
		channels[ch.Name] = cn
	}

	// Globals: evaluated once per compiled program; all instances share
	// them (§4.3: "Multiple instances of the service share the key/value
	// store").
	p.gslots[proc.Name] = map[string]int{}
	var globalVals []value.Value
	for _, s := range proc.Body {
		g, ok := s.(*lang.GlobalStmt)
		if !ok {
			continue
		}
		lw := &lowerer{prog: p}
		lw.pushScope()
		init, err := lw.lowerExpr(g.Init)
		if err != nil {
			return nil, err
		}
		fr := Frame{}
		p.gslots[proc.Name][g.Name] = len(globalVals)
		globalVals = append(globalVals, init(&fr))
	}
	p.globals[proc.Name] = globalVals

	stageIdx := 0
	for _, s := range proc.Body {
		switch x := s.(type) {
		case *lang.GlobalStmt:
			// handled above
		case *lang.PipeStmt:
			if err := p.buildPipeNode(proc, tmpl, channels, x, stageIdx); err != nil {
				return nil, err
			}
			stageIdx++
		case *lang.FoldtStmt:
			if err := p.buildFoldt(proc, tmpl, channels, x); err != nil {
				return nil, err
			}
		default:
			return nil, fmt.Errorf("compiler: process body statement at %s not supported at top level", s.Position())
		}
	}

	if err := tmpl.Validate(); err != nil {
		return nil, err
	}
	return pg, nil
}

// portCodecs resolves the decode/encode formats for one channel parameter.
func (p *Program) portCodecs(ch *lang.ChanParam, cfg Config) (grammar.WireFormat, grammar.WireFormat, error) {
	if pc, ok := cfg.ChannelCodecs[ch.Name]; ok {
		if (ch.Type.Recv != "" && pc.Decode == nil) ||
			(ch.Type.Send != "" && pc.Encode == nil) {
			return nil, nil, fmt.Errorf("compiler: channel codec for %q incomplete", ch.Name)
		}
		return pc.Decode, pc.Encode, nil
	}
	var dec, enc grammar.WireFormat
	if ch.Type.Recv != "" {
		pair, ok := p.codecs[ch.Type.Recv]
		if !ok {
			return nil, nil, fmt.Errorf("compiler: no codec for channel %q produce type %q", ch.Name, ch.Type.Recv)
		}
		dec = pair.Decode
	}
	if ch.Type.Send != "" {
		pair, ok := p.codecs[ch.Type.Send]
		if !ok {
			return nil, nil, fmt.Errorf("compiler: no codec for channel %q accept type %q", ch.Name, ch.Type.Send)
		}
		enc = pair.Encode
	}
	return dec, enc, nil
}

// stageSpec is one compiled pipeline stage.
type stageSpec struct {
	fun  string
	args []exprFn
}

// buildPipeNode lowers `src => f(a) => g(b) => dst` to one compute node.
// The node receives every message of the source channel(s); stage argument
// expressions see proc channels as constant ChanRefs bound to this node's
// out-edges, so sends inside the stage functions become ctx.Emit calls
// (Figure 3b's compute task fanning out to the serialiser tasks).
func (p *Program) buildPipeNode(proc *lang.ProcDecl, tmpl *core.Template,
	channels map[string]*chanNodes, pipe *lang.PipeStmt, idx int) error {

	srcName, ok := identName(pipe.Src)
	if !ok {
		return fmt.Errorf("compiler: pipeline source at %s must be a channel name", pipe.Src.Position())
	}
	src := channels[srcName]
	if src == nil {
		return fmt.Errorf("compiler: unknown pipeline source %q", srcName)
	}
	if src.used {
		return fmt.Errorf("compiler: channel %q feeds more than one pipeline", srcName)
	}
	src.used = true

	name := fmt.Sprintf("pipe%d", idx)
	if len(pipe.Stages) > 0 {
		name += "_" + pipe.Stages[0].Name
	} else {
		name += "_forward"
	}

	// Plan out-edges: destination channel first, then every channel
	// referenced by stage arguments (dedup, in appearance order).
	type edgePlan struct {
		name  string
		nodes []*core.Node // output node(s)
		first int          // assigned edge index of nodes[0]
	}
	var plan []*edgePlan
	planned := map[string]*edgePlan{}
	addChannel := func(chName string) error {
		if planned[chName] != nil {
			return nil
		}
		cn := channels[chName]
		if cn == nil {
			return nil // not a channel (global or local) — ignore
		}
		if len(cn.outs) == 0 {
			return fmt.Errorf("compiler: channel %q is read-only but is written by pipeline %d", chName, idx)
		}
		ep := &edgePlan{name: chName, nodes: cn.outs}
		planned[chName] = ep
		plan = append(plan, ep)
		return nil
	}

	var dstName string
	if pipe.Dst != nil {
		dn, ok := identName(pipe.Dst)
		if !ok {
			return fmt.Errorf("compiler: pipeline destination at %s must be a channel name", pipe.Dst.Position())
		}
		dstName = dn
		if err := addChannel(dn); err != nil {
			return err
		}
	}
	for _, st := range pipe.Stages {
		for _, a := range st.Args {
			for _, ref := range channelRefs(a, channels) {
				if err := addChannel(ref); err != nil {
					return err
				}
			}
		}
	}

	comp := tmpl.AddCompute(name, nil) // body assigned below
	for _, in := range src.ins {
		tmpl.Connect(in, comp)
	}
	edge := 0
	for _, ep := range plan {
		ep.first = edge
		for _, out := range ep.nodes {
			tmpl.Connect(comp, out)
			edge++
		}
	}

	// Lower stage arguments with channels bound to edge indices.
	chanEnv := map[string]value.Value{}
	for _, ep := range plan {
		if len(ep.nodes) == 1 && !channels[ep.name].param.Type.Array {
			chanEnv[ep.name] = chanRefValue(ep.first)
		} else {
			refs := make([]value.Value, len(ep.nodes))
			for i := range ep.nodes {
				refs[i] = chanRefValue(ep.first + i)
			}
			chanEnv[ep.name] = value.List(refs...)
		}
	}
	lw := &lowerer{prog: p, chanEnv: chanEnv, globalIdx: p.gslots[proc.Name]}
	lw.pushScope()
	var stages []stageSpec
	for _, st := range pipe.Stages {
		spec := stageSpec{fun: st.Name}
		for _, a := range st.Args {
			af, err := lw.lowerExpr(a)
			if err != nil {
				return err
			}
			spec.args = append(spec.args, af)
		}
		stages = append(stages, spec)
	}

	dstEdge := -1
	if pipe.Dst != nil {
		dstEdge = planned[dstName].first
	}

	prog := p
	procName := proc.Name
	comp.Fn = func(ctx *core.NodeCtx, v value.Value, _ int) {
		fr := Frame{
			globals: prog.globals[procName],
			emit:    ctx.Emit,
			instID:  ctx.Instance().ID(),
			route:   ctx.Instance().Router(),
		}
		cur := v
		for _, st := range stages {
			vals := make([]value.Value, 0, len(st.args)+1)
			for _, af := range st.args {
				vals = append(vals, af(&fr))
			}
			vals = append(vals, cur)
			cur = prog.funs[st.fun].call(&fr, vals)
		}
		if dstEdge >= 0 {
			ctx.Emit(dstEdge, cur)
		}
	}
	return nil
}

// identName unwraps a bare identifier expression.
func identName(e lang.Expr) (string, bool) {
	id, ok := e.(*lang.Ident)
	if !ok {
		return "", false
	}
	return id.Name, true
}

// channelRefs walks an expression for identifiers naming channels.
func channelRefs(e lang.Expr, channels map[string]*chanNodes) []string {
	var out []string
	var walk func(lang.Expr)
	walk = func(e lang.Expr) {
		switch x := e.(type) {
		case *lang.Ident:
			if channels[x.Name] != nil {
				out = append(out, x.Name)
			}
		case *lang.FieldExpr:
			walk(x.X)
		case *lang.IndexExpr:
			walk(x.X)
			walk(x.Index)
		case *lang.CallExpr:
			for _, a := range x.Args {
				walk(a)
			}
		case *lang.BinaryExpr:
			walk(x.L)
			walk(x.R)
		case *lang.UnaryExpr:
			walk(x.X)
		}
	}
	walk(e)
	return out
}

// foldtState accumulates per-key partial aggregates in one tree node.
type foldtState struct {
	acc       map[string]value.Value
	order     []string // insertion order for stable flushing
	remaining int      // open in-edges
}

// buildFoldt expands `foldt combine order mappers => reducer` into a binary
// aggregation tree (§4.3: "combining elements in a pair-wise manner until
// only the result remains"; Figure 3c). With k mapper channels the tree has
// k input tasks, k-1 (or 1 when k==1) combine tasks and one output task.
func (p *Program) buildFoldt(proc *lang.ProcDecl, tmpl *core.Template,
	channels map[string]*chanNodes, x *lang.FoldtStmt) error {

	src := channels[x.Src]
	dst := channels[x.Dst]
	if src == nil || dst == nil {
		return fmt.Errorf("compiler: foldt channels %q/%q not found", x.Src, x.Dst)
	}
	if src.used {
		return fmt.Errorf("compiler: channel %q feeds more than one pipeline", x.Src)
	}
	src.used = true
	if len(dst.outs) != 1 {
		return fmt.Errorf("compiler: foldt destination %q must be a scalar writable channel", x.Dst)
	}

	prog := p
	procName := proc.Name
	combine, order := x.Combine, x.Order

	makeCombine := func(level, i, fanIn int) *core.Node {
		n := tmpl.AddCompute(fmt.Sprintf("combine_L%d_%d", level, i), nil)
		n.NewState = func() any {
			return &foldtState{acc: map[string]value.Value{}, remaining: fanIn}
		}
		n.Fn = func(ctx *core.NodeCtx, v value.Value, _ int) {
			st := ctx.State.(*foldtState)
			fr := Frame{globals: prog.globals[procName], emit: ctx.Emit,
				instID: ctx.Instance().ID(), route: ctx.Instance().Router()}
			key := prog.funs[order].call(&fr, []value.Value{v}).AsString()
			if prev, ok := st.acc[key]; ok {
				// Own unconditionally: a combine function may return v
				// itself, a record carrying v's region, or a nested view of
				// v that carries no region pointer at all — in every case
				// the pooled bytes die when the runtime releases v after
				// this activation, and only an unconditional deep copy
				// cannot be fooled by region-less aliases.
				st.acc[key] = value.Owned(prog.funs[combine].call(&fr, []value.Value{prev, v}))
			} else {
				// The accumulator outlives this task activation, but v's
				// byte views die with the pooled wire buffer when the
				// runtime releases the message after Fn returns — store an
				// owned copy.
				st.acc[key] = value.Owned(v)
				st.order = append(st.order, key)
			}
		}
		n.OnEOF = func(ctx *core.NodeCtx, _ int) {
			st := ctx.State.(*foldtState)
			st.remaining--
			if st.remaining > 0 {
				return
			}
			// All inputs drained: flush partial aggregates downstream in
			// key order (the k-way-merge discipline of §4.3).
			keys := append([]string{}, st.order...)
			sortStrings(keys)
			for _, k := range keys {
				ctx.Emit(0, st.acc[k])
			}
			st.acc = map[string]value.Value{}
			st.order = nil
		}
		return n
	}

	// Level 0: one combine node per pair of inputs.
	level := 0
	streams := make([]*core.Node, len(src.ins))
	copy(streams, src.ins)
	if len(streams) == 1 {
		c := makeCombine(0, 0, 1)
		tmpl.Connect(streams[0], c)
		streams = []*core.Node{c}
	}
	for len(streams) > 1 {
		var next []*core.Node
		for i := 0; i+1 < len(streams); i += 2 {
			c := makeCombine(level, i/2, 2)
			tmpl.Connect(streams[i], c)
			tmpl.Connect(streams[i+1], c)
			next = append(next, c)
		}
		if len(streams)%2 == 1 {
			next = append(next, streams[len(streams)-1])
		}
		streams = next
		level++
	}
	tmpl.Connect(streams[0], dst.outs[0])
	return nil
}

func sortStrings(xs []string) {
	// insertion sort: flush key sets are small and nearly sorted
	for i := 1; i < len(xs); i++ {
		for j := i; j > 0 && xs[j] < xs[j-1]; j-- {
			xs[j], xs[j-1] = xs[j-1], xs[j]
		}
	}
}
