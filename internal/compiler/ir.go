// Package compiler lowers type-checked FLICK programs to executable form:
// function bodies become closure-tree IR evaluated over runtime values, and
// process declarations become core task-graph templates whose input/output
// tasks carry grammar codecs (synthesised from the program's serialisation
// annotations or bound externally).
//
// The compilation pipeline mirrors §4.3 of the paper: "Loops and branching
// are compiled to their native counterparts … Channel- and process-related
// code is translated to API calls exposed by the platform". In this
// reproduction the native counterpart is closure IR instead of C++, which
// preserves the language's bounded-work guarantees (no recursion, finite
// iteration) while staying inside one address space with the scheduler.
package compiler

import (
	"strconv"
	"strings"

	"flick/internal/value"
)

// Frame is one function activation: a fixed-size local slot array plus the
// per-node emission hook and per-instance identity. Frames are small and
// stack-allocated per call.
type Frame struct {
	locals  []value.Value
	globals []value.Value // shared per deployed program
	emit    func(out int, v value.Value)
	instID  int64
	// route, when non-nil, is the instance's backend-topology router
	// (core.Instance.Router): the `hash(k) mod len(backends)` idiom routes
	// through it (consistent-hash ring) instead of plain modulo, so a
	// live backend change moves ~1/(B+1) of the key space. Nil preserves
	// mod-B over the compiled channel-array capacity.
	route  func(hash int64) int
	ret    value.Value
	retSet bool
}

// exprFn evaluates an expression.
type exprFn func(fr *Frame) value.Value

// stmtFn executes a statement.
type stmtFn func(fr *Frame)

// compiledFun is an executable FLICK function.
type compiledFun struct {
	name    string
	nParams int
	nLocals int // params + lets (maximum over all paths)
	body    []stmtFn
}

// call invokes a compiled function with already-evaluated arguments.
func (f *compiledFun) call(parent *Frame, args []value.Value) value.Value {
	fr := Frame{
		locals:  make([]value.Value, f.nLocals),
		globals: parent.globals,
		emit:    parent.emit,
		instID:  parent.instID,
		route:   parent.route,
	}
	copy(fr.locals, args)
	for _, s := range f.body {
		s(&fr)
	}
	return fr.ret
}

// ChanRef is the runtime representation of a scalar channel value: the
// out-edge index of the compute node executing the current frame.
type ChanRef struct {
	Out int
}

// chanRefValue wraps a ChanRef as a value.
func chanRefValue(out int) value.Value { return value.Opaque(ChanRef{Out: out}) }

// isChanList reports whether v is a channel-array value (a list of
// ChanRefs) — the shape `len(backends)` sees in both pipeline-stage
// arguments (compile-time chanEnv constants) and function bodies (the
// array passed as an argument).
func isChanList(v value.Value) bool {
	if v.Kind != value.KindList || len(v.L) == 0 {
		return false
	}
	_, ok := v.L[0].X.(ChanRef)
	return ok
}

// --- builtin implementations ---

// hashValue is the `hash` builtin: FNV-1a over the value's byte content.
func hashValue(v value.Value) int64 {
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	h := uint64(offset)
	mix := func(b []byte) {
		for _, x := range b {
			h ^= uint64(x)
			h *= prime
		}
	}
	switch v.Kind {
	case value.KindString:
		mix([]byte(v.S))
	case value.KindBytes:
		mix(v.B)
	case value.KindInt, value.KindBool:
		u := uint64(v.I)
		for i := 0; i < 8; i++ {
			h ^= u & 0xff
			h *= prime
			u >>= 8
		}
	case value.KindRecord, value.KindList:
		for _, f := range v.L {
			h ^= uint64(hashValue(f))
			h *= prime
		}
	}
	return int64(h & 0x7fffffffffffffff) // keep mod-friendly (non-negative)
}

// lenValue is the `len` builtin.
func lenValue(v value.Value) int64 {
	switch v.Kind {
	case value.KindString:
		return int64(len(v.S))
	case value.KindBytes:
		return int64(len(v.B))
	case value.KindList:
		return int64(len(v.L))
	case value.KindDict:
		return int64(v.D.Len())
	}
	return 0
}

// stringToInt is the `string_to_int` builtin; malformed input yields 0
// (grammar default behaviour, §4.2).
func stringToInt(s string) int64 {
	n, err := strconv.ParseInt(strings.TrimSpace(s), 10, 64)
	if err != nil {
		return 0
	}
	return n
}

// splitWords is the `split_words` builtin.
func splitWords(s string) value.Value {
	fields := strings.Fields(s)
	out := make([]value.Value, len(fields))
	for i, f := range fields {
		out[i] = value.Str(f)
	}
	return value.List(out...)
}

// dictGet reads a dict entry, yielding Null on miss (compared as None).
func dictGet(d value.Value, key value.Value) value.Value {
	if d.Kind != value.KindDict {
		return value.Null
	}
	v, ok := d.D.Get(key.AsString())
	if !ok {
		return value.Null
	}
	return v
}

// binOp implements the arithmetic/comparison/boolean operators over runtime
// values. Type checking has already guaranteed operand kinds.
func binAdd(a, b value.Value) value.Value {
	if a.Kind == value.KindString || a.Kind == value.KindBytes ||
		b.Kind == value.KindString || b.Kind == value.KindBytes {
		return value.Str(a.AsString() + b.AsString())
	}
	return value.Int(a.I + b.I)
}

func binDiv(a, b value.Value) value.Value {
	if b.I == 0 {
		return value.Int(0) // checked language: division by zero yields 0
	}
	return value.Int(a.I / b.I)
}

func binMod(a, b value.Value) value.Value {
	if b.I == 0 {
		return value.Int(0)
	}
	return value.Int(a.I % b.I)
}

func compareOrdered(a, b value.Value) int {
	if a.Kind == value.KindInt || a.Kind == value.KindBool {
		switch {
		case a.I < b.I:
			return -1
		case a.I > b.I:
			return 1
		}
		return 0
	}
	return strings.Compare(a.AsString(), b.AsString())
}
