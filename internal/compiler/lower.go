package compiler

import (
	"fmt"
	"strings"

	"flick/internal/lang"
	"flick/internal/value"
)

// lowerer converts checked AST to closure IR.
type lowerer struct {
	prog *Program // being built; funs resolved lazily by name

	// current function scope: name → local slot
	scopes []map[string]int
	nSlots int
	max    int

	// proc-level environment for pipeline-stage arguments: channels and
	// globals referenced by name.
	chanEnv   map[string]value.Value // name → ChanRef / list-of-ChanRef constant
	globalIdx map[string]int         // name → program global slot
}

func (lw *lowerer) pushScope() { lw.scopes = append(lw.scopes, map[string]int{}) }
func (lw *lowerer) popScope() {
	top := lw.scopes[len(lw.scopes)-1]
	lw.nSlots -= len(top)
	lw.scopes = lw.scopes[:len(lw.scopes)-1]
}

func (lw *lowerer) declare(name string) int {
	slot := lw.nSlots
	lw.scopes[len(lw.scopes)-1][name] = slot
	lw.nSlots++
	if lw.nSlots > lw.max {
		lw.max = lw.nSlots
	}
	return slot
}

func (lw *lowerer) lookup(name string) (int, bool) {
	for i := len(lw.scopes) - 1; i >= 0; i-- {
		if s, ok := lw.scopes[i][name]; ok {
			return s, true
		}
	}
	return 0, false
}

// lowerFun compiles one function declaration.
func (lw *lowerer) lowerFun(f *lang.FunDecl) (*compiledFun, error) {
	lw.scopes = nil
	lw.nSlots, lw.max = 0, 0
	lw.pushScope()
	for _, p := range f.Params {
		lw.declare(p.Name)
	}
	body, err := lw.lowerBlock(f.Body)
	if err != nil {
		return nil, err
	}
	cf := &compiledFun{
		name:    f.Name,
		nParams: len(f.Params),
		nLocals: lw.max,
		body:    body,
	}
	lw.popScope()
	return cf, nil
}

func (lw *lowerer) lowerBlock(stmts []lang.Stmt) ([]stmtFn, error) {
	out := make([]stmtFn, 0, len(stmts))
	for _, s := range stmts {
		fn, err := lw.lowerStmt(s)
		if err != nil {
			return nil, err
		}
		out = append(out, fn)
	}
	return out, nil
}

func (lw *lowerer) lowerStmt(s lang.Stmt) (stmtFn, error) {
	switch x := s.(type) {
	case *lang.LetStmt:
		init, err := lw.lowerExpr(x.Init)
		if err != nil {
			return nil, err
		}
		slot := lw.declare(x.Name)
		return func(fr *Frame) { fr.locals[slot] = init(fr) }, nil

	case *lang.AssignStmt:
		return lw.lowerAssign(x)

	case *lang.IfStmt:
		cond, err := lw.lowerExpr(x.Cond)
		if err != nil {
			return nil, err
		}
		lw.pushScope()
		then, err := lw.lowerBlock(x.Then)
		lw.popScope()
		if err != nil {
			return nil, err
		}
		var els []stmtFn
		if x.Else != nil {
			lw.pushScope()
			els, err = lw.lowerBlock(x.Else)
			lw.popScope()
			if err != nil {
				return nil, err
			}
		}
		return func(fr *Frame) {
			if cond(fr).AsBool() {
				for _, st := range then {
					st(fr)
				}
			} else {
				for _, st := range els {
					st(fr)
				}
			}
		}, nil

	case *lang.PipeStmt:
		// Inside functions, pipelines are sends: value => channel.
		return lw.lowerSend(x.Src, x.Dst)

	case *lang.SendStmt:
		return lw.lowerSend(x.Value, x.Dst)

	case *lang.ExprStmt:
		e, err := lw.lowerExpr(x.X)
		if err != nil {
			return nil, err
		}
		return func(fr *Frame) {
			fr.ret = e(fr)
			fr.retSet = true
		}, nil
	}
	return nil, fmt.Errorf("compiler: unsupported statement at %s", s.Position())
}

func (lw *lowerer) lowerAssign(x *lang.AssignStmt) (stmtFn, error) {
	val, err := lw.lowerExpr(x.Value)
	if err != nil {
		return nil, err
	}
	switch tgt := x.Target.(type) {
	case *lang.IndexExpr:
		base, err := lw.lowerExpr(tgt.X)
		if err != nil {
			return nil, err
		}
		key, err := lw.lowerExpr(tgt.Index)
		if err != nil {
			return nil, err
		}
		return func(fr *Frame) {
			d := base(fr)
			if d.Kind == value.KindDict {
				// Own the stored value unconditionally: the dict outlives
				// the message, and an RHS like req.value may alias pooled
				// wire bytes through any depth of nesting (a region pointer
				// only marks the top level, so Set's Detach alone is not
				// enough for hand-carved nested views).
				d.D.Set(key(fr).AsString(), value.Owned(val(fr)))
			}
		}, nil
	case *lang.FieldExpr:
		base, err := lw.lowerExpr(tgt.X)
		if err != nil {
			return nil, err
		}
		name := tgt.Name
		return func(fr *Frame) {
			// Own the assigned value: storing a view of message A into
			// record B moves it across message lifetimes — B's region (if
			// any) holds no reference to A's, so once the runtime releases
			// A the view would read recycled pool memory. SetField also
			// invalidates any captured "_raw" wire image, so the encoder
			// rebuilds the mutated message instead of replaying stale bytes.
			base(fr).SetField(name, value.Owned(val(fr)))
		}, nil
	}
	return nil, fmt.Errorf("compiler: bad assignment target at %s", x.Pos)
}

func (lw *lowerer) lowerSend(valExpr, dstExpr lang.Expr) (stmtFn, error) {
	val, err := lw.lowerExpr(valExpr)
	if err != nil {
		return nil, err
	}
	dst, err := lw.lowerExpr(dstExpr)
	if err != nil {
		return nil, err
	}
	return func(fr *Frame) {
		d := dst(fr)
		if ref, ok := d.X.(ChanRef); ok && fr.emit != nil {
			// No copy: emitted values carry their backing region (whole
			// pooled records via NewOwned, field/element views via
			// value.Borrow in the access lowerings), and Chan.Push retains
			// that region for the downstream consumer.
			fr.emit(ref.Out, val(fr))
		}
	}, nil
}

func (lw *lowerer) lowerExpr(e lang.Expr) (exprFn, error) {
	switch x := e.(type) {
	case *lang.IntLit:
		v := value.Int(x.Val)
		return func(*Frame) value.Value { return v }, nil
	case *lang.StrLit:
		v := value.Str(x.Val)
		return func(*Frame) value.Value { return v }, nil
	case *lang.BoolLit:
		v := value.Bool(x.Val)
		return func(*Frame) value.Value { return v }, nil
	case *lang.NoneLit:
		return func(*Frame) value.Value { return value.Null }, nil

	case *lang.Ident:
		if slot, ok := lw.lookup(x.Name); ok {
			return func(fr *Frame) value.Value { return fr.locals[slot] }, nil
		}
		if lw.chanEnv != nil {
			if cv, ok := lw.chanEnv[x.Name]; ok {
				return func(*Frame) value.Value { return cv }, nil
			}
		}
		if lw.globalIdx != nil {
			if gi, ok := lw.globalIdx[x.Name]; ok {
				return func(fr *Frame) value.Value { return fr.globals[gi] }, nil
			}
		}
		// Niladic builtins usable without parentheses.
		switch x.Name {
		case "empty_dict":
			return func(*Frame) value.Value { return value.NewDict() }, nil
		case "instance_id":
			return func(fr *Frame) value.Value { return value.Int(fr.instID) }, nil
		}
		return nil, fmt.Errorf("compiler: unresolved name %q at %s", x.Name, x.Pos)

	case *lang.FieldExpr:
		base, err := lw.lowerExpr(x.X)
		if err != nil {
			return nil, err
		}
		name := x.Name
		return func(fr *Frame) value.Value { return base(fr).Field(name) }, nil

	case *lang.IndexExpr:
		base, err := lw.lowerExpr(x.X)
		if err != nil {
			return nil, err
		}
		idx, err := lw.lowerExpr(x.Index)
		if err != nil {
			return nil, err
		}
		return func(fr *Frame) value.Value {
			b := base(fr)
			switch b.Kind {
			case value.KindDict:
				return dictGet(b, idx(fr))
			case value.KindList:
				i := idx(fr).AsInt()
				if i < 0 || i >= int64(len(b.L)) {
					return value.Null
				}
				// Elements of a region-backed list (e.g. a list field of a
				// pooled message) alias that region; carry it on the view.
				return value.Borrow(b.L[i], b.O)
			}
			return value.Null
		}, nil

	case *lang.CallExpr:
		return lw.lowerCall(x)

	case *lang.BinaryExpr:
		return lw.lowerBinary(x)

	case *lang.UnaryExpr:
		sub, err := lw.lowerExpr(x.X)
		if err != nil {
			return nil, err
		}
		if x.Op == lang.TokMinus {
			return func(fr *Frame) value.Value { return value.Int(-sub(fr).AsInt()) }, nil
		}
		return func(fr *Frame) value.Value { return value.Bool(!sub(fr).AsBool()) }, nil
	}
	return nil, fmt.Errorf("compiler: unsupported expression at %s", e.Position())
}

func (lw *lowerer) lowerBinary(x *lang.BinaryExpr) (exprFn, error) {
	if x.Op == lang.TokMod {
		if fn, ok, err := lw.lowerRoutedMod(x); err != nil {
			return nil, err
		} else if ok {
			return fn, nil
		}
	}
	l, err := lw.lowerExpr(x.L)
	if err != nil {
		return nil, err
	}
	r, err := lw.lowerExpr(x.R)
	if err != nil {
		return nil, err
	}
	switch x.Op {
	case lang.TokPlus:
		return func(fr *Frame) value.Value { return binAdd(l(fr), r(fr)) }, nil
	case lang.TokMinus:
		return func(fr *Frame) value.Value { return value.Int(l(fr).I - r(fr).I) }, nil
	case lang.TokStar:
		return func(fr *Frame) value.Value { return value.Int(l(fr).I * r(fr).I) }, nil
	case lang.TokSlash:
		return func(fr *Frame) value.Value { return binDiv(l(fr), r(fr)) }, nil
	case lang.TokMod:
		return func(fr *Frame) value.Value { return binMod(l(fr), r(fr)) }, nil
	case lang.TokEq:
		return func(fr *Frame) value.Value { return value.Bool(value.Equal(l(fr), r(fr))) }, nil
	case lang.TokNotEq:
		return func(fr *Frame) value.Value { return value.Bool(!value.Equal(l(fr), r(fr))) }, nil
	case lang.TokLess:
		return func(fr *Frame) value.Value { return value.Bool(compareOrdered(l(fr), r(fr)) < 0) }, nil
	case lang.TokGreater:
		return func(fr *Frame) value.Value { return value.Bool(compareOrdered(l(fr), r(fr)) > 0) }, nil
	case lang.TokLessEq:
		return func(fr *Frame) value.Value { return value.Bool(compareOrdered(l(fr), r(fr)) <= 0) }, nil
	case lang.TokGreaterEq:
		return func(fr *Frame) value.Value { return value.Bool(compareOrdered(l(fr), r(fr)) >= 0) }, nil
	case lang.TokAnd:
		return func(fr *Frame) value.Value {
			if !l(fr).AsBool() {
				return value.Bool(false)
			}
			return value.Bool(r(fr).AsBool())
		}, nil
	case lang.TokOr:
		return func(fr *Frame) value.Value {
			if l(fr).AsBool() {
				return value.Bool(true)
			}
			return value.Bool(r(fr).AsBool())
		}, nil
	}
	return nil, fmt.Errorf("compiler: unsupported operator at %s", x.Pos)
}

// lowerRoutedMod recognises the backend-selection idioms
//
//	hash(key) mod len(backends)          (proxy, router: per-key)
//	instance_id() mod len(backends)      (HTTP LB: per-connection)
//
// and lowers them through the instance's topology router when one is
// installed (Frame.route — set by the graph dispatcher from
// core.Instance.Router). With a consistent-hash ring as router, a live
// backend add/remove moves only ~1/(B+1) of the key space; without a
// router (fixed topology, or the mod-B ablation's ModTable) routing is
// byte-for-byte the old behaviour. The channel-array check happens at
// run time on the len() argument's value — the array reaches function
// bodies as an ordinary parameter, so only the runtime shape (a list of
// ChanRefs) identifies it — which keeps `hash(x) mod len(some_string)`
// on the plain modulo path.
func (lw *lowerer) lowerRoutedMod(x *lang.BinaryExpr) (exprFn, bool, error) {
	shadowed := func(name string) bool {
		// Record constructors and user functions shadow builtins in call
		// position; leave those to the generic path.
		if _, isCtor := lw.prog.descs[name]; isCtor {
			return true
		}
		_, isFun := lw.prog.funDecls[name]
		return isFun
	}
	var seed exprFn // produces the value the router maps to a backend
	switch hcall, ok := x.L.(*lang.CallExpr); {
	case ok && hcall.Name == "hash" && len(hcall.Args) == 1 && !shadowed("hash"):
		arg, err := lw.lowerExpr(hcall.Args[0])
		if err != nil {
			return nil, false, err
		}
		seed = func(fr *Frame) value.Value { return value.Int(hashValue(arg(fr))) }
	case ok && hcall.Name == "instance_id" && len(hcall.Args) == 0 && !shadowed("instance_id"):
		seed = func(fr *Frame) value.Value { return value.Int(fr.instID) }
	default:
		return nil, false, nil
	}
	lcall, ok := x.R.(*lang.CallExpr)
	if !ok || lcall.Name != "len" || len(lcall.Args) != 1 || shadowed("len") {
		return nil, false, nil
	}
	larg, err := lw.lowerExpr(lcall.Args[0])
	if err != nil {
		return nil, false, err
	}
	return func(fr *Frame) value.Value {
		h := seed(fr).AsInt()
		xs := larg(fr)
		if fr.route != nil && isChanList(xs) {
			return value.Int(int64(fr.route(h)))
		}
		n := lenValue(xs)
		if n == 0 {
			return value.Int(0)
		}
		return value.Int(h % n)
	}, true, nil
}

func (lw *lowerer) lowerCall(x *lang.CallExpr) (exprFn, error) {
	// Record constructor.
	if desc, ok := lw.prog.descs[x.Name]; ok {
		slots := lw.prog.ctorSlots[x.Name]
		args := make([]exprFn, len(x.Args))
		for i, a := range x.Args {
			f, err := lw.lowerExpr(a)
			if err != nil {
				return nil, err
			}
			args[i] = f
		}
		return func(fr *Frame) value.Value {
			rec := desc.New()
			for i, af := range args {
				// Own every byte payload: an argument like req.uri is a
				// view into the input message's pooled region, but the
				// constructed record carries no reference to it — once the
				// runtime releases the input after this task activation,
				// the view's bytes would be recycled under the new record.
				rec.L[slots[i]] = value.Owned(af(fr))
			}
			return rec
		}, nil
	}

	// User function (lazy resolution supports any declaration order; the
	// checker has rejected recursion so resolution terminates).
	if _, ok := lw.prog.funDecls[x.Name]; ok {
		args := make([]exprFn, len(x.Args))
		for i, a := range x.Args {
			f, err := lw.lowerExpr(a)
			if err != nil {
				return nil, err
			}
			args[i] = f
		}
		prog := lw.prog
		name := x.Name
		return func(fr *Frame) value.Value {
			vals := make([]value.Value, len(args))
			for i, af := range args {
				vals[i] = af(fr)
			}
			return prog.funs[name].call(fr, vals)
		}, nil
	}

	// Iteration builtins: compile to finite loops (§4.3: "functions such
	// as fold are translated into finite for-loops").
	switch x.Name {
	case "map", "filter", "fold":
		return lw.lowerIter(x)
	}

	// Plain builtins.
	args := make([]exprFn, len(x.Args))
	for i, a := range x.Args {
		f, err := lw.lowerExpr(a)
		if err != nil {
			return nil, err
		}
		args[i] = f
	}
	switch x.Name {
	case "hash":
		return func(fr *Frame) value.Value { return value.Int(hashValue(args[0](fr))) }, nil
	case "len":
		return func(fr *Frame) value.Value { return value.Int(lenValue(args[0](fr))) }, nil
	case "empty_dict":
		return func(*Frame) value.Value { return value.NewDict() }, nil
	case "instance_id":
		return func(fr *Frame) value.Value { return value.Int(fr.instID) }, nil
	case "string_to_int":
		return func(fr *Frame) value.Value { return value.Int(stringToInt(args[0](fr).AsString())) }, nil
	case "int_to_string":
		return func(fr *Frame) value.Value {
			return value.Str(fmt.Sprintf("%d", args[0](fr).AsInt()))
		}, nil
	case "split_words":
		return func(fr *Frame) value.Value { return splitWords(args[0](fr).AsString()) }, nil
	case "to_upper":
		return func(fr *Frame) value.Value {
			return value.Str(strings.ToUpper(args[0](fr).AsString()))
		}, nil
	case "to_lower":
		return func(fr *Frame) value.Value {
			return value.Str(strings.ToLower(args[0](fr).AsString()))
		}, nil
	}
	return nil, fmt.Errorf("compiler: unknown function %q at %s", x.Name, x.Pos)
}

// lowerIter compiles map/filter/fold.
func (lw *lowerer) lowerIter(x *lang.CallExpr) (exprFn, error) {
	fname := x.Args[0].(*lang.Ident).Name
	prog := lw.prog
	switch x.Name {
	case "map":
		list, err := lw.lowerExpr(x.Args[1])
		if err != nil {
			return nil, err
		}
		return func(fr *Frame) value.Value {
			xs := list(fr)
			out := make([]value.Value, len(xs.L))
			for i, el := range xs.L {
				// Detach per element: a body returning a region-backed view
				// would leave the result list with elements whose lifetime
				// the list's (nil) region cannot express.
				out[i] = value.Detach(prog.funs[fname].call(fr, []value.Value{value.Borrow(el, xs.O)}))
			}
			return value.List(out...)
		}, nil
	case "filter":
		list, err := lw.lowerExpr(x.Args[1])
		if err != nil {
			return nil, err
		}
		return func(fr *Frame) value.Value {
			xs := list(fr)
			var out []value.Value
			for _, el := range xs.L {
				if prog.funs[fname].call(fr, []value.Value{value.Borrow(el, xs.O)}).AsBool() {
					out = append(out, el)
				}
			}
			// Passed-through elements still alias the source list's region;
			// the result list borrows it so escapes stay tracked.
			return value.Borrow(value.List(out...), xs.O)
		}, nil
	default: // fold
		acc, err := lw.lowerExpr(x.Args[1])
		if err != nil {
			return nil, err
		}
		list, err := lw.lowerExpr(x.Args[2])
		if err != nil {
			return nil, err
		}
		return func(fr *Frame) value.Value {
			a := acc(fr)
			xs := list(fr)
			for _, el := range xs.L {
				a = prog.funs[fname].call(fr, []value.Value{a, value.Borrow(el, xs.O)})
			}
			return a
		}, nil
	}
}
