package compiler

import (
	"testing"

	"flick/internal/backend"
	"flick/internal/value"
)

// TestKeyHashMatchesHashBuiltin pins the contract the topology layer
// depends on: backend.KeyHash (used by rings, benches and the rebalance
// analysis) computes exactly the language's hash builtin over byte
// content, so an analysis of "where will this key route" agrees with what
// the compiled program does.
func TestKeyHashMatchesHashBuiltin(t *testing.T) {
	for _, s := range []string{"", "a", "key", "topo-key-0042", "churn-key-007", "Ω≈ç√"} {
		want := backend.KeyHash([]byte(s))
		if got := hashValue(value.Str(s)); got != want {
			t.Fatalf("hashValue(Str(%q)) = %d, backend.KeyHash = %d", s, got, want)
		}
		if got := hashValue(value.Bytes([]byte(s))); got != want {
			t.Fatalf("hashValue(Bytes(%q)) = %d, backend.KeyHash = %d", s, got, want)
		}
	}
}

// TestRoutedModFallsBackWithoutRouter: a frame with no topology router
// evaluates `hash(k) mod len(xs)` as plain modulo, for channel arrays and
// ordinary values alike.
func TestRoutedModFallsBackWithoutRouter(t *testing.T) {
	src := `
type doc: record
    text : string

fun pick: (d: doc) -> (integer)
    hash(d.text) mod len(d.text)
`
	prog, err := Compile(src, Config{})
	if err != nil {
		t.Fatal(err)
	}
	doc := prog.Desc("doc").New()
	doc.SetField("text", value.Str("hello"))
	got, err := prog.CallFunction("pick", doc)
	if err != nil {
		t.Fatal(err)
	}
	want := hashValue(value.Str("hello")) % 5
	if got.AsInt() != want {
		t.Fatalf("pick = %d, want %d", got.AsInt(), want)
	}
}
