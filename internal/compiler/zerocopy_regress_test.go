package compiler

import (
	"fmt"
	"testing"

	"flick/internal/buffer"
	"flick/internal/core"
	"flick/internal/netstack"
	phttp "flick/internal/proto/http"
	"flick/internal/value"
)

// echoURISource constructs a response FROM a field of the pooled input
// message. The constructor must copy req.uri into owned memory: the
// runtime releases the request's pooled wire buffer as soon as the compute
// task returns, long before the output task serialises the response.
const echoURISource = `
type request: record
    uri : string
    keep_alive : integer

type response: record
    status : integer
    body : string

proc echo: (request/response client)
    | client => respond() => client

fun respond: (req: request) -> (response)
    response(200, req.uri)
`

// TestConstructorOwnsPooledArgs is the deterministic zero-copy regression
// test for records built by FLICK programs out of input-message fields. It
// drives the lowered `respond` closure directly with a request record whose
// uri field is a view into a pooled region, then recycles and overwrites
// that region exactly as the runtime would (release after the task, LIFO
// pool reuse on the next read) and asserts the constructed response still
// carries its own copy of the bytes.
func TestConstructorOwnsPooledArgs(t *testing.T) {
	prog, err := Compile(echoURISource, Config{
		ChannelCodecs: map[string]PortCodec{
			"client": {Decode: phttp.RequestFormat{}, Encode: phttp.ResponseFormat{}},
		},
		Codecs: map[string]CodecPair{
			"request":  {Decode: phttp.RequestFormat{}, Encode: phttp.RequestFormat{}},
			"response": {Decode: phttp.ResponseFormat{}, Encode: phttp.ResponseFormat{}},
		},
	})
	if err != nil {
		t.Fatal(err)
	}

	pool := buffer.NewPool(4)
	ref := pool.GetRef(64)
	const uri = "/pooled-uri-0001"
	copy(ref.Bytes(), uri)
	req := phttp.RequestDesc.NewOwned(ref)
	req.SetField("uri", value.Bytes(ref.Bytes()[:len(uri)]))

	fr := Frame{globals: prog.globals["echo"]}
	resp := prog.funs["respond"].call(&fr, []value.Value{req})

	// The runtime releases the request after the compute activation; the
	// pool's LIFO free list hands the same buffer to the next network read.
	req.Release()
	next := pool.GetRef(64)
	copy(next.Bytes(), "/XXXXXX-clobber!")
	defer next.Release()

	if got := resp.Field("body").AsString(); got != uri {
		t.Fatalf("constructed record's body = %q, want %q (argument view not copied out of the pooled region)", got, uri)
	}
}

// TestConstructorDetachesPooledViews pipelines requests through the full
// compiled echo service: every response must carry its own request's URI
// even as request buffers recycle underneath (end-to-end smoke for the
// same invariant TestConstructorOwnsPooledArgs pins deterministically).
func TestConstructorDetachesPooledViews(t *testing.T) {
	u := netstack.NewUserNet()
	p := core.NewPlatform(core.Config{Workers: 1, Transport: u})
	defer p.Close()

	prog, err := Compile(echoURISource, Config{
		ChannelCodecs: map[string]PortCodec{
			"client": {Decode: phttp.RequestFormat{}, Encode: phttp.ResponseFormat{}},
		},
		Codecs: map[string]CodecPair{
			"request":  {Decode: phttp.RequestFormat{}, Encode: phttp.RequestFormat{}},
			"response": {Decode: phttp.ResponseFormat{}, Encode: phttp.ResponseFormat{}},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	pg, err := prog.Proc("echo")
	if err != nil {
		t.Fatal(err)
	}
	cp, err := pg.PortIndex("client")
	if err != nil {
		t.Fatal(err)
	}
	svc, err := p.Deploy(core.ServiceConfig{
		Name: "echo", ListenAddr: "echo:1", Template: pg.Template,
		Dispatch: core.PerConnection, ClientPort: cp,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()

	conn, err := u.Dial("echo:1")
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()

	// Pipeline every request up front: while response i is still queued at
	// the output task, the input side keeps reading requests into pooled
	// chunks — the LIFO pool free list hands request i's recycled chunk
	// straight back, overwriting the bytes a leaked view would alias.
	const requests = 64
	go func() {
		var wbuf []byte
		for i := 0; i < requests; i++ {
			wbuf = phttp.BuildRequest(wbuf[:0], "GET", fmt.Sprintf("/request-%04d", i), "t", true, nil)
			if _, err := conn.Write(wbuf); err != nil {
				return
			}
		}
	}()

	q := buffer.NewQueue(nil)
	dec := phttp.ResponseFormat{}.NewDecoder()
	rbuf := make([]byte, 8192)
	for i := 0; i < requests; i++ {
		uri := fmt.Sprintf("/request-%04d", i)
		for {
			msg, ok, derr := dec.Decode(q)
			if derr != nil {
				t.Fatal(derr)
			}
			if ok {
				if got := msg.Field("body").AsString(); got != uri {
					t.Fatalf("response %d: body = %q, want %q (pooled view leaked into constructed record)", i, got, uri)
				}
				msg.Release()
				break
			}
			n, rerr := conn.Read(rbuf)
			if n > 0 {
				q.Append(rbuf[:n])
				continue
			}
			if rerr != nil {
				t.Fatal(rerr)
			}
		}
	}
}

// TestOwnedCopiesAliasedViews pins value.Owned's contract at the unit
// level: a field view extracted from a pooled record (which carries no
// region pointer of its own) must be deep-copied, surviving recycling of
// the region it aliased.
func TestOwnedCopiesAliasedViews(t *testing.T) {
	pool := buffer.NewPool(4)
	ref := pool.GetRef(64)
	copy(ref.Bytes(), "precious payload")
	desc := value.NewRecordDesc("t.rec", "data")
	rec := desc.NewOwned(ref)
	rec.L[0] = value.Bytes(ref.Bytes()[:16])

	view := rec.Field("data") // aliases the region, v.O == nil
	owned := value.Owned(view)
	rec.Release() // region recycles

	next := pool.GetRef(64) // same class: reuses the recycled buffer
	copy(next.Bytes(), "clobbered-------")
	if got := owned.AsString(); got != "precious payload" {
		t.Fatalf("owned copy changed after region recycle: %q", got)
	}
	// Demonstrate the hazard Owned exists for: the raw view now reads the
	// recycled buffer's new contents.
	if &next.Bytes()[0] == &view.B[0] && view.AsString() == "precious payload" {
		t.Fatalf("raw view unexpectedly stable; hazard setup broken")
	}
	next.Release()
}
