package compiler

import (
	"fmt"
	"testing"

	"flick/internal/buffer"
	"flick/internal/core"
	"flick/internal/netstack"
	phttp "flick/internal/proto/http"
	"flick/internal/value"
)

// echoURISource constructs a response FROM a field of the pooled input
// message. The constructor must copy req.uri into owned memory: the
// runtime releases the request's pooled wire buffer as soon as the compute
// task returns, long before the output task serialises the response.
const echoURISource = `
type request: record
    uri : string
    keep_alive : integer

type response: record
    status : integer
    body : string

proc echo: (request/response client)
    | client => respond() => client

fun respond: (req: request) -> (response)
    response(200, req.uri)
`

// TestConstructorOwnsPooledArgs is the deterministic zero-copy regression
// test for records built by FLICK programs out of input-message fields. It
// drives the lowered `respond` closure directly with a request record whose
// uri field is a view into a pooled region, then recycles and overwrites
// that region exactly as the runtime would (release after the task, LIFO
// pool reuse on the next read) and asserts the constructed response still
// carries its own copy of the bytes.
func TestConstructorOwnsPooledArgs(t *testing.T) {
	prog, err := Compile(echoURISource, Config{
		ChannelCodecs: map[string]PortCodec{
			"client": {Decode: phttp.RequestFormat{}, Encode: phttp.ResponseFormat{}},
		},
		Codecs: map[string]CodecPair{
			"request":  {Decode: phttp.RequestFormat{}, Encode: phttp.RequestFormat{}},
			"response": {Decode: phttp.ResponseFormat{}, Encode: phttp.ResponseFormat{}},
		},
	})
	if err != nil {
		t.Fatal(err)
	}

	pool := buffer.NewPool(4)
	ref := pool.GetRef(64)
	const uri = "/pooled-uri-0001"
	copy(ref.Bytes(), uri)
	req := phttp.RequestDesc.NewOwned(ref)
	req.SetField("uri", value.Bytes(ref.Bytes()[:len(uri)]))

	fr := Frame{globals: prog.globals["echo"]}
	resp := prog.funs["respond"].call(&fr, []value.Value{req})

	// The runtime releases the request after the compute activation; the
	// pool's LIFO free list hands the same buffer to the next network read.
	req.Release()
	next := pool.GetRef(64)
	copy(next.Bytes(), "/XXXXXX-clobber!")
	defer next.Release()

	if got := resp.Field("body").AsString(); got != uri {
		t.Fatalf("constructed record's body = %q, want %q (argument view not copied out of the pooled region)", got, uri)
	}
}

// TestConstructorDetachesPooledViews pipelines requests through the full
// compiled echo service: every response must carry its own request's URI
// even as request buffers recycle underneath (end-to-end smoke for the
// same invariant TestConstructorOwnsPooledArgs pins deterministically).
func TestConstructorDetachesPooledViews(t *testing.T) {
	u := netstack.NewUserNet()
	p := core.NewPlatform(core.Config{Workers: 1, Transport: u})
	defer p.Close()

	prog, err := Compile(echoURISource, Config{
		ChannelCodecs: map[string]PortCodec{
			"client": {Decode: phttp.RequestFormat{}, Encode: phttp.ResponseFormat{}},
		},
		Codecs: map[string]CodecPair{
			"request":  {Decode: phttp.RequestFormat{}, Encode: phttp.RequestFormat{}},
			"response": {Decode: phttp.ResponseFormat{}, Encode: phttp.ResponseFormat{}},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	pg, err := prog.Proc("echo")
	if err != nil {
		t.Fatal(err)
	}
	cp, err := pg.PortIndex("client")
	if err != nil {
		t.Fatal(err)
	}
	svc, err := p.Deploy(core.ServiceConfig{
		Name: "echo", ListenAddr: "echo:1", Template: pg.Template,
		Dispatch: core.PerConnection, ClientPort: cp,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()

	conn, err := u.Dial("echo:1")
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()

	// Pipeline every request up front: while response i is still queued at
	// the output task, the input side keeps reading requests into pooled
	// chunks — the LIFO pool free list hands request i's recycled chunk
	// straight back, overwriting the bytes a leaked view would alias.
	const requests = 64
	go func() {
		var wbuf []byte
		for i := 0; i < requests; i++ {
			wbuf = phttp.BuildRequest(wbuf[:0], "GET", fmt.Sprintf("/request-%04d", i), "t", true, nil)
			if _, err := conn.Write(wbuf); err != nil {
				return
			}
		}
	}()

	q := buffer.NewQueue(nil)
	dec := phttp.ResponseFormat{}.NewDecoder()
	rbuf := make([]byte, 8192)
	for i := 0; i < requests; i++ {
		uri := fmt.Sprintf("/request-%04d", i)
		for {
			msg, ok, derr := dec.Decode(q)
			if derr != nil {
				t.Fatal(derr)
			}
			if ok {
				if got := msg.Field("body").AsString(); got != uri {
					t.Fatalf("response %d: body = %q, want %q (pooled view leaked into constructed record)", i, got, uri)
				}
				msg.Release()
				break
			}
			n, rerr := conn.Read(rbuf)
			if n > 0 {
				q.Append(rbuf[:n])
				continue
			}
			if rerr != nil {
				t.Fatal(rerr)
			}
		}
	}
}

// cacheFieldSource stores a FIELD of the pooled input message into a global
// dict and mutates a record field from another message's field — the two
// escape paths where a view crosses its message's lifetime via assignment.
const cacheFieldSource = `
type request: record
    uri : string
    keep_alive : integer

type response: record
    status : integer
    body : string

proc cached: (request/response client)
    global seen := empty_dict
    | client => remember(seen) => client

fun remember: (seen: ref dict<string*string>, req: request) -> (response)
    seen[req.uri] := req.uri
    response(200, req.uri)

fun retag: (req: request, resp: response) -> (response)
    resp.body := req.uri
    resp
`

func compileCacheField(t *testing.T) *Program {
	t.Helper()
	prog, err := Compile(cacheFieldSource, Config{
		ChannelCodecs: map[string]PortCodec{
			"client": {Decode: phttp.RequestFormat{}, Encode: phttp.ResponseFormat{}},
		},
		Codecs: map[string]CodecPair{
			"request":  {Decode: phttp.RequestFormat{}, Encode: phttp.RequestFormat{}},
			"response": {Decode: phttp.ResponseFormat{}, Encode: phttp.ResponseFormat{}},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	return prog
}

// pooledRequest builds a request record whose uri field is a raw view into
// a pooled region, exactly as a zero-copy decoder would.
func pooledRequest(pool *buffer.Pool, uri string) value.Value {
	ref := pool.GetRef(64)
	copy(ref.Bytes(), uri)
	req := phttp.RequestDesc.NewOwned(ref)
	req.SetField("uri", value.Bytes(ref.Bytes()[:len(uri)]))
	return req
}

// TestDictAssignOwnsFieldView regression-tests the review's use-after-free:
// `seen[req.uri] := req.uri` must deep-copy the field view into the dict —
// after the runtime releases the message and the pool recycles its buffer,
// the cached entry must still read the original bytes.
func TestDictAssignOwnsFieldView(t *testing.T) {
	prog := compileCacheField(t)
	pool := buffer.NewPool(4)
	const uri = "/pooled-uri-0001"
	req := pooledRequest(pool, uri)

	fr := Frame{globals: prog.globals["cached"]}
	cache := prog.globals["cached"][0]
	prog.funs["remember"].call(&fr, []value.Value{cache, req})

	req.Release()
	next := pool.GetRef(64) // LIFO reuse of the request's recycled buffer
	copy(next.Bytes(), "/XXXXXX-clobber!")
	defer next.Release()

	got, ok := cache.D.Get(uri)
	if !ok {
		t.Fatal("cached entry missing")
	}
	if got.AsString() != uri {
		t.Fatalf("cached value = %q, want %q (dict entry aliases recycled wire memory)", got.AsString(), uri)
	}
}

// TestSetFieldOwnsCrossMessageView regression-tests the field-assignment
// escape: `resp.body := req.uri` moves a view of message A into record B,
// which must survive A's release and buffer recycling.
func TestSetFieldOwnsCrossMessageView(t *testing.T) {
	prog := compileCacheField(t)
	pool := buffer.NewPool(4)
	const uri = "/pooled-uri-0002"
	req := pooledRequest(pool, uri)
	resp := phttp.ResponseDesc.New()
	resp.SetField("status", value.Int(200))
	resp.SetField("_raw", value.Bytes([]byte("HTTP/1.1 200 OK\r\n\r\nstale")))

	fr := Frame{globals: prog.globals["cached"]}
	out := prog.funs["retag"].call(&fr, []value.Value{req, resp})

	req.Release()
	next := pool.GetRef(64)
	copy(next.Bytes(), "/XXXXXX-clobber!")
	defer next.Release()

	if got := out.Field("body").AsString(); got != uri {
		t.Fatalf("resp.body = %q, want %q (assigned field aliases recycled wire memory)", got, uri)
	}
	// Mutation must invalidate the captured wire image: the encoder's raw
	// fast path would otherwise emit the pre-mutation bytes verbatim.
	if !out.Field("_raw").IsNull() {
		t.Fatal("field assignment left the captured _raw image intact; encoder would emit stale wire bytes")
	}
}

// TestChanRetainsEmittedFieldView regression-tests the send path: a field
// view emitted downstream carries its record's region (value.Field attaches
// it), so Chan.Push's Retain keeps the pooled bytes alive after the producer
// releases the message, and the consumer's Release recycles them.
func TestChanRetainsEmittedFieldView(t *testing.T) {
	pool := buffer.NewPool(4)
	ref := pool.GetRef(64)
	copy(ref.Bytes(), "precious payload")
	desc := value.NewRecordDesc("t.chanrec", "data")
	rec := desc.NewOwned(ref)
	rec.L[0] = value.Bytes(ref.Bytes()[:16])

	ch := core.NewChan(8)
	ch.Push(rec.Field("data")) // producer emits a view of its message
	rec.Release()              // runtime drops the message after the task

	if pool.Stats().RefPuts != 0 {
		t.Fatal("region recycled while the channel still held the view")
	}
	v, ok, _ := ch.Pop()
	if !ok {
		t.Fatal("queued view lost")
	}
	if got := v.AsString(); got != "precious payload" {
		t.Fatalf("queued view = %q (channel did not retain the region)", got)
	}
	v.Release()
	if pool.Stats().RefPuts != 1 {
		t.Fatalf("refPuts = %d, want 1 (consumer release must recycle)", pool.Stats().RefPuts)
	}
}

// TestOwnedCopiesAliasedViews pins value.Owned's contract at the unit
// level: a byte view carved from a pooled record's region without a region
// pointer of its own (raw slot access, not Field) must be deep-copied,
// surviving recycling of the region it aliased.
func TestOwnedCopiesAliasedViews(t *testing.T) {
	pool := buffer.NewPool(4)
	ref := pool.GetRef(64)
	copy(ref.Bytes(), "precious payload")
	desc := value.NewRecordDesc("t.rec", "data")
	rec := desc.NewOwned(ref)
	rec.L[0] = value.Bytes(ref.Bytes()[:16])

	view := rec.L[0] // raw slot access: aliases the region, v.O == nil
	owned := value.Owned(view)
	rec.Release() // region recycles

	next := pool.GetRef(64) // same class: reuses the recycled buffer
	copy(next.Bytes(), "clobbered-------")
	if got := owned.AsString(); got != "precious payload" {
		t.Fatalf("owned copy changed after region recycle: %q", got)
	}
	// Demonstrate the hazard Owned exists for: the raw view now reads the
	// recycled buffer's new contents.
	if &next.Bytes()[0] == &view.B[0] && view.AsString() == "precious payload" {
		t.Fatalf("raw view unexpectedly stable; hazard setup broken")
	}
	next.Release()
}

// TestFieldViewCarriesRegion pins the provenance rule the zero-copy escape
// paths rely on: Field attaches the record's region to byte-carrying views
// (a borrowed reference), so Detach — and therefore Dict.Set — copies them
// before the pooled bytes can recycle, while scalar fields stay region-less.
func TestFieldViewCarriesRegion(t *testing.T) {
	pool := buffer.NewPool(4)
	ref := pool.GetRef(64)
	copy(ref.Bytes(), "precious payload")
	desc := value.NewRecordDesc("t.rec", "data", "n")
	rec := desc.NewOwned(ref)
	rec.L[0] = value.Bytes(ref.Bytes()[:16])
	rec.L[1] = value.Int(7)

	view := rec.Field("data")
	if view.O == nil {
		t.Fatal("field view carries no region: Detach/Push cannot see its provenance")
	}
	if scalar := rec.Field("n"); scalar.O != nil {
		t.Fatal("scalar field should not borrow the region")
	}

	// Dict.Set detaches on store; with provenance attached the cached entry
	// must survive the record's release and the region's recycling.
	d := value.NewDict()
	d.D.Set("k", view)
	detached := value.Detach(view)
	rec.Release()

	next := pool.GetRef(64)
	copy(next.Bytes(), "clobbered-------")
	defer next.Release()

	if got, _ := d.D.Get("k"); got.AsString() != "precious payload" {
		t.Fatalf("dict entry reads recycled memory: %q", got.AsString())
	}
	if got := detached.AsString(); got != "precious payload" {
		t.Fatalf("detached view reads recycled memory: %q", got)
	}
}
