package core

import (
	"bytes"
	"sync"

	rcache "flick/internal/cache"
	"flick/internal/value"
)

// cacheRT is an instance's response-cache runtime: the per-binding
// bookkeeping that connects the shared cache.Cache (service-wide, set via
// ServiceConfig.Cache) to this instance's task graph.
//
// Two correlation disciplines, selected by the protocol adapter:
//
//   - Non-FIFO (memcached): requests are classified at the primary port's
//     input node, between decode and dispatch. Hits push a served view
//     straight to the client output node; leading misses register a
//     pendingFill and forward; coalesced misses park a waiter and forward
//     nothing. Upstream responses are matched against the pendings by
//     echoed key (GETK) or unique opaque, out of order.
//
//   - FIFO (HTTP/1.1): responses answer requests strictly in order per
//     upstream connection, so each backend port keeps a slot queue in
//     request order. Hits and coalesced waits park as slots; upstream
//     responses resolve the oldest upstream-expecting slot; delivery to
//     the client drains ready slots from the head, preserving response
//     order even when a cached hit resolves instantly between two
//     upstream round trips.
//
// Lock discipline: crt.mu is leaf-level — never held across a call into
// the cache package (whose own locks call back into waiter closures that
// take crt.mu). Waiter callbacks fire on whatever goroutine resolved the
// flight and are gated by gen: Reset bumps it under crt.mu, so a stale
// delivery from a previous binding drops its view instead of pushing into
// the next session's channels.
type cacheRT struct {
	cc    *rcache.Cache
	proto rcache.Protocol
	fifo  bool

	// hitCh is a client-output in-channel: where non-FIFO hit views are
	// delivered. redispatchCh is the primary input node's out-channel:
	// where an aborted non-FIFO follower re-forwards its request.
	hitCh        *Chan
	redispatchCh *Chan

	mu       sync.Mutex
	gen      uint64
	pendings []*pendingFill // non-FIFO: fills this instance leads
	ports    []cachePort    // FIFO: per-port slot queues
}

// pendingFill is one upstream round trip the non-FIFO correlation table
// tracks: either a fill this instance leads on behalf of a flight, or a
// tracking-only slot (f == nil) for a re-dispatched aborted follower. The
// tracker exists so the re-dispatched request's response consumes its own
// correlation slot — without it, a plain-GET response whose client-chosen
// opaque collides with a newer pending fill for a different key would
// fill that entry with the wrong bytes.
type pendingFill struct {
	f       *rcache.Flight // nil: tracking-only, nothing fills on match
	key     []byte         // f's owned key, or an owned copy for trackers
	variant byte
	tag     uint64
	hasTag  bool
}

type slotKind uint8

const (
	// slotUpstream expects an upstream response that passes through
	// (plain forwards, invalidating writes).
	slotUpstream slotKind = iota
	// slotLead expects an upstream response that also fills s.f.
	slotLead
	// slotWait is parked on another instance's flight (coalesced miss).
	slotWait
	// slotReady holds a deliverable view (cache hit, delivered fill, or
	// arrived upstream response parked behind an unresolved slot).
	slotReady
	// slotReval expects the upstream response of a background
	// revalidation: it lives only in the pending (send-order) queue — no
	// client is waiting, the stale entry already served them — and its
	// response resolves the refresh flight without being forwarded.
	slotReval
)

// slot is one in-flight request of a FIFO port, in client request order.
type slot struct {
	kind slotKind
	f    *rcache.Flight
	view value.Value // owned while kind == slotReady
}

// cachePort is the FIFO runtime of one backend port.
type cachePort struct {
	respCh *Chan // backend input node's out-channel (client-bound)
	reqCh  *Chan // backend output node's in-channel (re-dispatch)

	slots   []*slot // client delivery order
	pending []*slot // upstream send order (slots expecting a response)

	// requeued marks re-dispatched requests in flight back to this
	// port's output node: the intercept re-links their original slot
	// into pending instead of queueing a fresh one.
	requeued []requeue

	// revalq marks fabricated revalidation requests in flight to this
	// port's output node: the intercept turns each into a slotReval
	// pending entry instead of classifying it as fresh client traffic.
	revalq []revalDispatch
}

type requeue struct {
	id any // message identity (record owner region)
	s  *slot
}

type revalDispatch struct {
	id any // message identity (the entry's region)
	f  *rcache.Flight
}

// cacheMsgID returns a message's identity for requeue matching: the
// record's owner region is unique per decoded message and stable across
// retains.
func cacheMsgID(msg value.Value) any {
	if msg.O != nil {
		return msg.O
	}
	return nil
}

// SetCache installs the service's response cache on this binding. Called
// by the dispatcher between pool Get and Start (like Bind and SetRouter);
// the runtime persists across Reset — only its per-binding state clears.
// Graphs without a primary in/out port pair are left uncached.
func (inst *Instance) SetCache(c *rcache.Cache) {
	if c == nil || inst.crt != nil {
		return
	}
	primary := -1
	for i := range inst.tmpl.ports {
		if inst.tmpl.ports[i].Primary {
			primary = i
			break
		}
	}
	if primary < 0 {
		return
	}
	p := inst.tmpl.ports[primary]
	if p.In < 0 || p.Out < 0 || len(inst.nodeIn[p.Out]) == 0 || len(inst.nodeOut[p.In]) == 0 {
		return
	}
	crt := &cacheRT{
		cc:           c,
		proto:        c.Proto(),
		fifo:         c.Proto().Fifo(),
		hitCh:        inst.nodeIn[p.Out][0],
		redispatchCh: inst.nodeOut[p.In][0],
		ports:        make([]cachePort, len(inst.tmpl.ports)),
	}
	for i := range inst.tmpl.ports {
		bp := inst.tmpl.ports[i]
		if bp.Primary || bp.In < 0 || bp.Out < 0 {
			continue
		}
		if len(inst.nodeOut[bp.In]) == 0 || len(inst.nodeIn[bp.Out]) == 0 {
			continue
		}
		crt.ports[i].respCh = inst.nodeOut[bp.In][0]
		crt.ports[i].reqCh = inst.nodeIn[bp.Out][0]
	}
	inst.crt = crt
}

// resetCache invalidates the binding's cache bookkeeping (from Reset,
// before channels clear): the generation bump turns outstanding waiter
// callbacks into no-ops, led flights abort so their followers re-dispatch,
// and parked views release.
func (inst *Instance) resetCache() {
	crt := inst.crt
	if crt == nil {
		return
	}
	var flights []*rcache.Flight
	crt.mu.Lock()
	crt.gen++
	for _, p := range crt.pendings {
		if p.f != nil {
			flights = append(flights, p.f)
		}
	}
	crt.pendings = nil
	for i := range crt.ports {
		cp := &crt.ports[i]
		for _, s := range cp.slots {
			switch s.kind {
			case slotLead:
				flights = append(flights, s.f)
			case slotReady:
				s.view.Release()
				s.view = value.Null
			}
		}
		// Revalidation slots live only in the pending queue; aborting them
		// hands the stale entry back its claim so a later hit re-tries.
		for _, s := range cp.pending {
			if s.kind == slotReval && s.f != nil {
				flights = append(flights, s.f)
				s.f = nil
			}
		}
		for _, rd := range cp.revalq {
			flights = append(flights, rd.f)
		}
		cp.slots = nil
		cp.pending = nil
		cp.requeued = nil
		cp.revalq = nil
	}
	crt.mu.Unlock()
	// Outside crt.mu: aborting takes the cache's locks, and this binding's
	// own waiters (if any coalesced onto its flights) re-enter crt.mu.
	for _, f := range flights {
		f.Abort()
	}
}

// cacheClientRequest intercepts one decoded primary-port request (non-FIFO
// protocols), between decode and dispatch. Returns true when the request
// was consumed: a hit view is already on its way to the client output, or
// the request coalesced onto an in-flight fill. False forwards as usual
// (pass traffic, invalidating writes, leading misses).
func (inst *Instance) cacheClientRequest(ctx *ExecCtx, msg value.Value, out *Chan) bool {
	crt := inst.crt
	info := crt.proto.Request(msg)
	switch info.Class {
	case rcache.ClassPass:
		return false
	case rcache.ClassInvalidate:
		// Fires at decode time, before the write reaches the backend: a
		// fill beginning after this point can still race the write
		// upstream, so staleness past a write is TTL-bounded (see the
		// cache package doc), not zero.
		crt.cc.Invalidate(info.Scope, info.Key)
		return false
	case rcache.ClassInvalidateAll:
		crt.cc.Clear()
		return false
	}
	view, ok, rv := crt.cc.Get(ctx.Worker(), info)
	if rv != nil {
		// Non-FIFO protocols never pre-render a refresh request, so a
		// claimed revalidation can't be dispatched here: hand the claim
		// back rather than leak the flight and the retained region.
		rv.Region.Release()
		rv.F.Abort()
	}
	if ok {
		crt.hitCh.Push(view)
		view.Release()
		return true
	}
	if info.Class == rcache.ClassCond {
		// Conditional miss: the origin evaluates the condition; its
		// response passes through unadmitted, so no flight is led.
		return false
	}
	crt.mu.Lock()
	gen := crt.gen
	crt.mu.Unlock()
	msg.Retain() // for the waiter; undone immediately when leading
	w := rcache.Waiter{
		Tag:    info.Tag,
		HasTag: info.HasTag,
		Deliver: func(view value.Value) {
			// The push happens under crt.mu so it strictly precedes (or
			// follows, and is then skipped by) Reset's generation bump —
			// a stale view can never land in the next binding's channels.
			crt.mu.Lock()
			if crt.gen == gen {
				crt.hitCh.Push(view)
			}
			crt.mu.Unlock()
			view.Release()
			msg.Release()
		},
		Abort: func() {
			crt.mu.Lock()
			if crt.gen == gen {
				// Re-forward into the dispatch path: the request takes its
				// own upstream round trip, uncached — but tracked, so its
				// response consumes a correlation slot instead of being
				// invisible to the ambiguity check (msg still pins
				// info.Key's bytes here; the tracker keeps its own copy).
				crt.pendings = append(crt.pendings, &pendingFill{
					key:     append([]byte(nil), info.Key...),
					variant: info.Variant,
					tag:     info.Tag,
					hasTag:  info.HasTag,
				})
				crt.redispatchCh.Push(msg)
			}
			crt.mu.Unlock()
			msg.Release()
		},
	}
	f, leader := crt.cc.Begin(info, w)
	if !leader {
		return true // coalesced; the waiter owns the retained msg
	}
	msg.Release()
	if f != nil {
		crt.mu.Lock()
		crt.pendings = append(crt.pendings, &pendingFill{
			f:       f,
			key:     f.Key(),
			variant: f.Variant(),
			tag:     info.Tag,
			hasTag:  info.HasTag,
		})
		crt.mu.Unlock()
	}
	return false
}

// cacheBackendResponse correlates one decoded backend response (non-FIFO)
// against the instance's pending table, after the response was pushed
// downstream (msg stays valid: the caller still holds its reference). A
// unique match on a fill fills (or, for a non-admissible response, aborts)
// its flight; a unique match on a tracking-only pending just consumes the
// slot; an ambiguous match — same variant and opaque, no key echo —
// aborts every candidate fill rather than risk caching under the wrong
// key.
func (inst *Instance) cacheBackendResponse(msg value.Value) {
	crt := inst.crt
	ri := crt.proto.Response(msg)
	if !ri.Match {
		return
	}
	var matched []*pendingFill
	crt.mu.Lock()
	for _, p := range crt.pendings {
		if p.variant != ri.Variant {
			continue
		}
		if ri.HasKey {
			if bytes.Equal(p.key, ri.Key) {
				matched = append(matched, p)
			}
		} else if ri.HasTag && p.hasTag && p.tag == ri.Tag {
			matched = append(matched, p)
		}
	}
	if len(matched) > 0 {
		keep := crt.pendings[:0]
	outer:
		for _, p := range crt.pendings {
			for _, m := range matched {
				if p == m {
					continue outer
				}
			}
			keep = append(keep, p)
		}
		crt.pendings = keep
	}
	crt.mu.Unlock()
	switch {
	case len(matched) == 1:
		if f := matched[0].f; f != nil {
			f.Fill(msg.Field("_raw").AsBytes(), ri)
		}
	case len(matched) > 1:
		for _, m := range matched {
			if m.f != nil {
				m.f.Abort()
			}
		}
	}
}

// cacheUpstreamRequest intercepts one request popped at a backend output
// node (FIFO protocols), before encoding. Every request gets a slot in the
// port's client-order queue; only requests that truly go upstream also
// join the pending (send-order) queue. Returns true when the request was
// consumed (hit or coalesced) and must not be encoded.
func (inst *Instance) cacheUpstreamRequest(ctx *ExecCtx, msg value.Value, port int) bool {
	crt := inst.crt
	cp := &crt.ports[port]
	if cp.respCh == nil {
		return false
	}
	// A re-dispatched request (aborted coalesced slot) keeps its original
	// client-order slot; it only (re-)joins the upstream send order. A
	// fabricated revalidation request takes a pending-only slotReval — no
	// client is waiting on it. Both tables are written under crt.mu by
	// callbacks (from whatever goroutine resolved the flight or claimed
	// the refresh), so even the emptiness checks must hold the lock.
	if id := cacheMsgID(msg); id != nil {
		crt.mu.Lock()
		for i, rq := range cp.requeued {
			if rq.id == id {
				cp.requeued = append(cp.requeued[:i], cp.requeued[i+1:]...)
				rq.s.kind = slotUpstream
				cp.pending = append(cp.pending, rq.s)
				crt.mu.Unlock()
				return false
			}
		}
		for i, rd := range cp.revalq {
			if rd.id == id {
				cp.revalq = append(cp.revalq[:i], cp.revalq[i+1:]...)
				cp.pending = append(cp.pending, &slot{kind: slotReval, f: rd.f})
				crt.mu.Unlock()
				return false
			}
		}
		crt.mu.Unlock()
	}
	info := crt.proto.Request(msg)
	switch info.Class {
	case rcache.ClassInvalidate:
		crt.cc.Invalidate(info.Scope, info.Key)
	case rcache.ClassInvalidateAll:
		crt.cc.Clear()
	}
	if info.Class != rcache.ClassLookup && info.Class != rcache.ClassCond {
		s := &slot{kind: slotUpstream}
		crt.mu.Lock()
		cp.slots = append(cp.slots, s)
		cp.pending = append(cp.pending, s)
		crt.mu.Unlock()
		return false
	}
	view, ok, rv := crt.cc.Get(ctx.Worker(), info)
	if ok {
		crt.mu.Lock()
		cp.slots = append(cp.slots, &slot{kind: slotReady, view: view})
		inst.cacheDrainLocked(cp)
		crt.mu.Unlock()
		if rv != nil {
			// The hit was served stale: dispatch the claimed background
			// refresh through this port's own send queue.
			inst.dispatchReval(cp, rv)
		}
		return true
	}
	if info.Class == rcache.ClassCond {
		// Conditional miss: forward for the origin to evaluate — a plain
		// upstream slot, no flight, the 200/304 passes through unadmitted.
		s := &slot{kind: slotUpstream}
		crt.mu.Lock()
		cp.slots = append(cp.slots, s)
		cp.pending = append(cp.pending, s)
		crt.mu.Unlock()
		return false
	}
	s := &slot{kind: slotWait}
	crt.mu.Lock()
	gen := crt.gen
	cp.slots = append(cp.slots, s)
	crt.mu.Unlock()
	msg.Retain() // for the waiter; undone immediately when leading
	w := rcache.Waiter{
		Tag:    info.Tag,
		HasTag: info.HasTag,
		Deliver: func(view value.Value) {
			crt.mu.Lock()
			if crt.gen == gen {
				s.kind = slotReady
				s.view = view
				view.Retain()
				inst.cacheDrainLocked(cp)
			}
			crt.mu.Unlock()
			view.Release()
			msg.Release()
		},
		Abort: func() {
			crt.mu.Lock()
			if crt.gen == gen {
				// Keep the slot in client order; route the request back to
				// this output node for an upstream round trip of its own.
				cp.requeued = append(cp.requeued, requeue{id: cacheMsgID(msg), s: s})
				cp.reqCh.Push(msg)
			}
			crt.mu.Unlock()
			msg.Release()
		},
	}
	f, leader := crt.cc.Begin(info, w)
	if !leader {
		return true // coalesced; the waiter owns the retained msg
	}
	msg.Release()
	crt.mu.Lock()
	if f != nil {
		s.kind = slotLead
		s.f = f
		cp.pending = append(cp.pending, s)
	} else {
		// Closed cache: plain upstream forward.
		s.kind = slotUpstream
		cp.pending = append(cp.pending, s)
	}
	crt.mu.Unlock()
	return false
}

// dispatchReval turns a claimed background revalidation into an upstream
// round trip on the port that served the stale hit: the protocol fabricates
// a request record over the entry's pre-rendered conditional GET (consuming
// the Reval's retained region reference), the flight keeps a reference so a
// replacing 200 fill can render the next generation's refresh request, and
// the record is routed to the port's output node, where the revalq identity
// match parks it as a pending-only slotReval.
func (inst *Instance) dispatchReval(cp *cachePort, rv *rcache.Reval) {
	crt := inst.crt
	msg := crt.proto.MakeReval(rv.Req, rv.Region)
	if msg.IsNull() || cp.reqCh == nil {
		if !msg.IsNull() {
			msg.Release()
		}
		rv.F.Abort()
		return
	}
	crt.mu.Lock()
	cp.revalq = append(cp.revalq, revalDispatch{id: cacheMsgID(msg), f: rv.F})
	cp.reqCh.Push(msg)
	crt.mu.Unlock()
	if !rv.F.AttachRequest(msg) {
		// Flight already killed (a write raced the claim): the fabricated
		// request still completes its round trip, and the dead flight's
		// Fill is a no-op.
		msg.Release()
	}
}

// cacheFifoResponse routes one decoded backend response (FIFO) through the
// port's slot queues: it resolves the oldest upstream-expecting slot, then
// delivery drains ready slots from the head of the client-order queue —
// never overtaking an unresolved older slot, so the client sees responses
// strictly in request order. Informational (1xx) responses pass straight
// through without consuming a slot. Returns the flight to fill (nil when
// the response doesn't complete a led miss) — the caller invokes Fill
// outside this instance's lock, while it still holds the message.
func (inst *Instance) cacheFifoResponse(msg value.Value, port int, out *Chan) *rcache.Flight {
	crt := inst.crt
	cp := &crt.ports[port]
	ri := crt.proto.Response(msg)
	if cp.respCh == nil {
		out.Push(msg)
		return nil
	}
	crt.mu.Lock()
	if len(cp.pending) == 0 {
		// Untracked response (nothing was sent upstream by this port):
		// pass through rather than stall the connection.
		crt.mu.Unlock()
		out.Push(msg)
		return nil
	}
	s := cp.pending[0]
	if ri.Informational {
		// 1xx: forwarded without consuming the slot — unless it belongs
		// to a background revalidation, which has no client to forward to.
		isReval := s.kind == slotReval
		crt.mu.Unlock()
		if !isReval {
			out.Push(msg)
		}
		return nil
	}
	cp.pending = cp.pending[1:]
	f := s.f
	s.f = nil
	if s.kind == slotReval {
		// The refresh's response resolves the flight (caller fills) and
		// goes no further: the clients it would have answered were already
		// served from the stale entry.
		crt.mu.Unlock()
		return f
	}
	s.kind = slotReady
	s.view = msg
	msg.Retain()
	inst.cacheDrainLocked(cp)
	crt.mu.Unlock()
	return f
}

// cacheDrainLocked delivers the ready prefix of a FIFO port's client-order
// queue (crt.mu held). Chan.Push never blocks, so pushing under the lock
// is safe and keeps delivery atomic with the generation check of the
// callbacks that call here.
func (inst *Instance) cacheDrainLocked(cp *cachePort) {
	for len(cp.slots) > 0 && cp.slots[0].kind == slotReady {
		s := cp.slots[0]
		cp.slots = cp.slots[1:]
		cp.respCh.Push(s.view)
		s.view.Release()
		s.view = value.Null
	}
}
