package core

import (
	"testing"

	rcache "flick/internal/cache"
	"flick/internal/proto/memcache"
	"flick/internal/value"
)

// mcLookup builds the ReqInfo of a memcached GET for key with the given
// opaque.
func mcLookup(key string, opaque uint32) rcache.ReqInfo {
	return rcache.ReqInfo{
		Class:   rcache.ClassLookup,
		Key:     []byte(key),
		Variant: memcache.OpGet,
		Tag:     uint64(opaque),
		HasTag:  true,
	}
}

// mcResponse builds a decoded plain-GET response record (no key echo) with
// the given opaque and value.
func mcResponse(opaque uint32, val string) value.Value {
	req := memcache.Request(memcache.OpGet, nil, nil)
	req.SetField("opaque", value.Int(int64(opaque)))
	resp := memcache.Response(req, memcache.StatusOK, nil, []byte(val))
	resp.SetField("_raw", value.Bytes([]byte(val)))
	req.Release()
	return resp
}

// TestCacheTrackerBlocksWrongKeyFill pins the non-FIFO correlation rule
// that re-dispatched (tracking-only) pendings participate in the ambiguity
// check: a plain GET response whose client-chosen opaque collides with a
// newer pending fill for a different key must abort that fill, never fill
// it with the wrong key's bytes.
func TestCacheTrackerBlocksWrongKeyFill(t *testing.T) {
	cc := rcache.New(rcache.Config{Proto: rcache.Memcached{}, Workers: 1})
	defer cc.Close()
	inst := &Instance{crt: &cacheRT{cc: cc, proto: rcache.Memcached{}}}
	crt := inst.crt

	// A re-dispatched GET for key X is in flight, tracked without a
	// flight; a newer fill for key Y is pending under the same opaque.
	crt.pendings = append(crt.pendings, &pendingFill{
		key: []byte("X"), variant: memcache.OpGet, tag: 7, hasTag: true,
	})
	fy, leader := cc.Begin(mcLookup("Y", 7), rcache.Waiter{})
	if !leader {
		t.Fatal("expected to lead Y's fill")
	}
	crt.pendings = append(crt.pendings, &pendingFill{
		f: fy, key: fy.Key(), variant: fy.Variant(), tag: 7, hasTag: true,
	})

	// X's response arrives: same variant and opaque as Y's pending, no
	// key echo — ambiguous, so Y's flight must abort unfilled.
	resp := mcResponse(7, "value-of-X")
	inst.cacheBackendResponse(resp)
	resp.Release()

	if len(crt.pendings) != 0 {
		t.Fatalf("%d pendings left, want 0 (ambiguous match consumes all)", len(crt.pendings))
	}
	if _, ok, _ := cc.Get(0, mcLookup("Y", 7)); ok {
		t.Fatal("key Y was filled with key X's response bytes")
	}

	// A tracked re-dispatch alone consumes its slot without filling.
	crt.pendings = append(crt.pendings, &pendingFill{
		key: []byte("X"), variant: memcache.OpGet, tag: 9, hasTag: true,
	})
	resp = mcResponse(9, "value-of-X")
	inst.cacheBackendResponse(resp)
	resp.Release()
	if len(crt.pendings) != 0 {
		t.Fatalf("%d pendings left, want 0 (tracker consumed)", len(crt.pendings))
	}
	if cc.Len() != 0 {
		t.Fatalf("%d entries cached, want 0 (trackers never fill)", cc.Len())
	}
}
