package core

import (
	"sync"

	"flick/internal/value"
)

// Chan is a FIFO of values connecting two tasks (§3.2: "channels move data
// between tasks"). Multiple producers are permitted (fan-in); the single
// consumer is the task registered with SetConsumer, which is scheduled
// whenever data or EOF arrives.
//
// Push never blocks: flow control is cooperative. Producers consult Len
// against HighWater and stop pulling their own inputs when a downstream
// channel is saturated, mirroring the paper's bounded-work-per-timeslice
// design without risking worker-thread deadlock.
type Chan struct {
	mu     sync.Mutex
	buf    []value.Value
	head   int
	size   int
	closed bool

	consumer *Task
	sched    scheduler
}

// HighWater is the soft capacity producers respect.
const HighWater = 1024

// scheduler is the hook channels use to wake their consumer.
type scheduler interface {
	Schedule(t *Task)
}

// NewChan creates a channel with the given initial capacity.
func NewChan(capacity int) *Chan {
	if capacity < 8 {
		capacity = 8
	}
	return &Chan{buf: make([]value.Value, capacity)}
}

// SetConsumer registers the task to schedule on arrival.
func (c *Chan) SetConsumer(t *Task, s scheduler) {
	c.mu.Lock()
	c.consumer = t
	c.sched = s
	c.mu.Unlock()
}

// Push appends v and wakes the consumer. Pushing to a closed channel drops
// the value (the consumer is gone).
//
// Refcounting: the channel retains v's backing region while it is queued;
// Pop transfers that reference to the consumer, which must Release after
// processing. Producers keep (and separately release) their own reference,
// so fan-out — pushing one value to several channels — is safe.
func (c *Chan) Push(v value.Value) {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return
	}
	v.Retain()
	if c.size == len(c.buf) {
		c.grow()
	}
	c.buf[(c.head+c.size)%len(c.buf)] = v
	c.size++
	consumer, sched := c.consumer, c.sched
	c.mu.Unlock()
	if consumer != nil && sched != nil {
		sched.Schedule(consumer)
	}
}

func (c *Chan) grow() {
	nb := make([]value.Value, len(c.buf)*2)
	for i := 0; i < c.size; i++ {
		nb[i] = c.buf[(c.head+i)%len(c.buf)]
	}
	c.buf = nb
	c.head = 0
}

// Pop removes the next value. ok reports whether a value was returned;
// closed reports that the channel is closed AND drained.
func (c *Chan) Pop() (v value.Value, ok bool, closed bool) {
	c.mu.Lock()
	if c.size > 0 {
		v = c.buf[c.head]
		c.buf[c.head] = value.Null
		c.head = (c.head + 1) % len(c.buf)
		c.size--
		c.mu.Unlock()
		return v, true, false
	}
	cl := c.closed
	c.mu.Unlock()
	return value.Null, false, cl
}

// Peek reports whether a value is available without consuming it.
func (c *Chan) Peek() bool {
	c.mu.Lock()
	n := c.size
	c.mu.Unlock()
	return n > 0
}

// Len returns the number of queued values.
func (c *Chan) Len() int {
	c.mu.Lock()
	n := c.size
	c.mu.Unlock()
	return n
}

// Saturated reports whether producers should pause.
func (c *Chan) Saturated() bool { return c.Len() >= HighWater }

// Close marks end-of-stream and wakes the consumer so it can observe the
// closure after draining. Close is idempotent.
func (c *Chan) Close() {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return
	}
	c.closed = true
	consumer, sched := c.consumer, c.sched
	c.mu.Unlock()
	if consumer != nil && sched != nil {
		sched.Schedule(consumer)
	}
}

// Closed reports whether Close has been called (regardless of drain state).
func (c *Chan) Closed() bool {
	c.mu.Lock()
	cl := c.closed
	c.mu.Unlock()
	return cl
}

// Reset returns the channel to its initial open empty state (graph
// pooling), releasing the reference held for every still-queued value.
func (c *Chan) Reset() {
	c.mu.Lock()
	for i := 0; i < c.size; i++ {
		c.buf[(c.head+i)%len(c.buf)].Release()
	}
	for i := range c.buf {
		c.buf[i] = value.Null
	}
	c.head, c.size = 0, 0
	c.closed = false
	c.mu.Unlock()
}
