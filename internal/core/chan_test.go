package core

import (
	"sync"
	"testing"

	"flick/internal/value"
)

func TestChanPushPop(t *testing.T) {
	c := NewChan(4)
	for i := 0; i < 10; i++ {
		c.Push(value.Int(int64(i)))
	}
	if c.Len() != 10 {
		t.Fatalf("len = %d", c.Len())
	}
	for i := 0; i < 10; i++ {
		v, ok, closed := c.Pop()
		if !ok || closed || v.AsInt() != int64(i) {
			t.Fatalf("pop %d = %v %v %v", i, v, ok, closed)
		}
	}
	if _, ok, closed := c.Pop(); ok || closed {
		t.Fatal("empty open channel should report neither value nor closure")
	}
}

func TestChanGrowPreservesOrder(t *testing.T) {
	c := NewChan(8)
	// Interleave to exercise wrap-around + growth.
	for i := 0; i < 5; i++ {
		c.Push(value.Int(int64(i)))
	}
	for i := 0; i < 3; i++ {
		c.Pop()
	}
	for i := 5; i < 40; i++ {
		c.Push(value.Int(int64(i)))
	}
	for want := int64(3); want < 40; want++ {
		v, ok, _ := c.Pop()
		if !ok || v.AsInt() != want {
			t.Fatalf("pop = %v (%v), want %d", v, ok, want)
		}
	}
}

func TestChanClose(t *testing.T) {
	c := NewChan(4)
	c.Push(value.Int(1))
	c.Close()
	c.Close() // idempotent
	if !c.Closed() {
		t.Fatal("not closed")
	}
	// Drain still works.
	v, ok, closed := c.Pop()
	if !ok || closed || v.AsInt() != 1 {
		t.Fatal("drain after close failed")
	}
	// Now closed + drained.
	if _, ok, closed := c.Pop(); ok || !closed {
		t.Fatal("closed+drained not reported")
	}
	// Push after close is dropped.
	c.Push(value.Int(2))
	if _, ok, _ := c.Pop(); ok {
		t.Fatal("push after close was accepted")
	}
}

func TestChanSchedulesConsumer(t *testing.T) {
	s := NewScheduler(1, NonCooperative)
	var mu sync.Mutex
	got := []int64{}
	done := make(chan struct{}, 1)
	c := NewChan(4)
	task := s.NewTask("consumer", func(ctx *ExecCtx) RunResult {
		for {
			v, ok, closed := c.Pop()
			if ok {
				mu.Lock()
				got = append(got, v.AsInt())
				mu.Unlock()
				continue
			}
			if closed {
				done <- struct{}{}
				return RunDone
			}
			return RunIdle
		}
	})
	c.SetConsumer(task, s)
	s.Start()
	defer s.Stop()
	for i := 0; i < 5; i++ {
		c.Push(value.Int(int64(i)))
	}
	c.Close()
	<-done
	mu.Lock()
	defer mu.Unlock()
	if len(got) != 5 {
		t.Fatalf("consumed %d values", len(got))
	}
}

func TestChanSaturated(t *testing.T) {
	c := NewChan(4)
	if c.Saturated() {
		t.Fatal("empty channel saturated")
	}
	for i := 0; i < HighWater; i++ {
		c.Push(value.Int(1))
	}
	if !c.Saturated() {
		t.Fatal("full channel not saturated")
	}
}

func TestChanReset(t *testing.T) {
	c := NewChan(4)
	c.Push(value.Int(1))
	c.Close()
	c.Reset()
	if c.Closed() || c.Len() != 0 {
		t.Fatal("reset did not clear state")
	}
	c.Push(value.Int(2))
	v, ok, _ := c.Pop()
	if !ok || v.AsInt() != 2 {
		t.Fatal("channel unusable after reset")
	}
}

func TestChanConcurrentProducers(t *testing.T) {
	c := NewChan(8)
	var wg sync.WaitGroup
	const producers, perProducer = 8, 1000
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perProducer; i++ {
				c.Push(value.Int(1))
			}
		}()
	}
	wg.Wait()
	if c.Len() != producers*perProducer {
		t.Fatalf("len = %d", c.Len())
	}
}
