package core

import "sync/atomic"

// deque is a Chase–Lev work-stealing deque of tasks (Chase & Lev, SPAA'05;
// the per-worker run queue design used by most high-throughput dataflow
// runtimes). The owning worker pushes and pops at the bottom without
// synchronisation beyond the atomics themselves; any other worker steals
// from the top with a single CAS. Go's sync/atomic operations are
// sequentially consistent, which subsumes the fences the original
// formulation requires.
//
// Only the owner may call pushBottom/popBottom; steal is safe from any
// goroutine. The deque grows by ring doubling and never shrinks.
type deque struct {
	top    atomic.Int64 // next index to steal (thieves CAS this)
	bottom atomic.Int64 // next index to push (owner only)
	ring   atomic.Pointer[dequeRing]
}

// dequeRing is one power-of-two circular array generation.
type dequeRing struct {
	mask int64
	slot []atomic.Pointer[Task]
}

const dequeInitialSize = 64

func newDequeRing(size int64) *dequeRing {
	return &dequeRing{mask: size - 1, slot: make([]atomic.Pointer[Task], size)}
}

func (r *dequeRing) load(i int64) *Task     { return r.slot[i&r.mask].Load() }
func (r *dequeRing) store(i int64, t *Task) { r.slot[i&r.mask].Store(t) }
func (r *dequeRing) grow(b, t int64) *dequeRing {
	nr := newDequeRing((r.mask + 1) * 2)
	for i := t; i < b; i++ {
		nr.store(i, r.load(i))
	}
	return nr
}

func newDeque() *deque {
	d := &deque{}
	d.ring.Store(newDequeRing(dequeInitialSize))
	return d
}

// pushBottom appends t at the owner's end. Owner only.
func (d *deque) pushBottom(t *Task) {
	b := d.bottom.Load()
	top := d.top.Load()
	r := d.ring.Load()
	if b-top > r.mask {
		r = r.grow(b, top)
		d.ring.Store(r)
	}
	r.store(b, t)
	d.bottom.Store(b + 1)
}

// popBottom removes the most recently pushed task. Owner only.
func (d *deque) popBottom() *Task {
	b := d.bottom.Load()
	if b <= d.top.Load() {
		return nil // empty fast path: no store traffic
	}
	b--
	d.bottom.Store(b)
	t := d.top.Load()
	if t > b {
		// A thief emptied the deque between the fast-path check and the
		// bottom store; restore the canonical empty state.
		d.bottom.Store(t)
		return nil
	}
	task := d.ring.Load().load(b)
	if b > t {
		return task // more than one element: no race with thieves
	}
	// Last element: win it against thieves via the same CAS they use.
	if !d.top.CompareAndSwap(t, t+1) {
		task = nil // a thief got it
	}
	d.bottom.Store(t + 1)
	return task
}

// steal removes the oldest task. Safe from any goroutine. A nil return
// means the deque was empty or the CAS lost a race (either way: move on).
func (d *deque) steal() *Task {
	t := d.top.Load()
	b := d.bottom.Load()
	if t >= b {
		return nil
	}
	task := d.ring.Load().load(t)
	if !d.top.CompareAndSwap(t, t+1) {
		return nil
	}
	return task
}

// size reports an instantaneous (racy) element count, for diagnostics.
func (d *deque) size() int64 {
	b := d.bottom.Load()
	t := d.top.Load()
	if b < t {
		return 0
	}
	return b - t
}
