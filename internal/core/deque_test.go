package core

import (
	"sync"
	"sync/atomic"
	"testing"
)

func TestDequeOwnerLIFO(t *testing.T) {
	d := newDeque()
	a, b, c := &Task{id: 1}, &Task{id: 2}, &Task{id: 3}
	d.pushBottom(a)
	d.pushBottom(b)
	d.pushBottom(c)
	if d.size() != 3 {
		t.Fatalf("size = %d", d.size())
	}
	for i, want := range []*Task{c, b, a} {
		if got := d.popBottom(); got != want {
			t.Fatalf("pop %d = %v, want %v", i, got, want)
		}
	}
	if d.popBottom() != nil {
		t.Fatal("pop on empty deque")
	}
}

func TestDequeStealFIFO(t *testing.T) {
	d := newDeque()
	a, b := &Task{id: 1}, &Task{id: 2}
	d.pushBottom(a)
	d.pushBottom(b)
	if got := d.steal(); got != a {
		t.Fatalf("steal = %v, want oldest %v", got, a)
	}
	if got := d.popBottom(); got != b {
		t.Fatalf("pop = %v, want %v", got, b)
	}
	if d.steal() != nil {
		t.Fatal("steal on empty deque")
	}
}

func TestDequeGrowPreservesTasks(t *testing.T) {
	d := newDeque()
	const n = dequeInitialSize*4 + 7
	tasks := make([]*Task, n)
	for i := range tasks {
		tasks[i] = &Task{id: uint64(i)}
		d.pushBottom(tasks[i])
	}
	seen := map[*Task]bool{}
	for i := 0; i < n; i++ {
		got := d.popBottom()
		if got == nil {
			t.Fatalf("pop %d = nil", i)
		}
		if seen[got] {
			t.Fatalf("task %d popped twice", got.id)
		}
		seen[got] = true
	}
	if len(seen) != n {
		t.Fatalf("recovered %d tasks, want %d", len(seen), n)
	}
}

// TestDequeStealRace is the -race stress test for the Chase–Lev protocol:
// one owner pushing and popping at the bottom, several thieves hammering
// the top. Every task must be delivered to exactly one consumer.
func TestDequeStealRace(t *testing.T) {
	const (
		thieves = 4
		total   = 20000
	)
	d := newDeque()
	hits := make([]atomic.Int32, total)
	var delivered atomic.Int64
	var wg sync.WaitGroup
	var stop atomic.Bool

	take := func(task *Task) {
		if task == nil {
			return
		}
		if hits[task.id].Add(1) != 1 {
			t.Errorf("task %d delivered twice", task.id)
		}
		delivered.Add(1)
	}

	for i := 0; i < thieves; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for !stop.Load() {
				take(d.steal())
			}
			// Final sweep after the owner finishes.
			for {
				task := d.steal()
				if task == nil && d.size() == 0 {
					return
				}
				take(task)
			}
		}()
	}

	// Owner: interleave pushes with occasional pops.
	for i := 0; i < total; i++ {
		d.pushBottom(&Task{id: uint64(i)})
		if i%3 == 0 {
			take(d.popBottom())
		}
	}
	for {
		task := d.popBottom()
		if task == nil {
			break
		}
		take(task)
	}
	stop.Store(true)
	wg.Wait()

	if delivered.Load() != total {
		t.Fatalf("delivered %d tasks, want %d", delivered.Load(), total)
	}
}

func TestInboxFIFOAndSpill(t *testing.T) {
	in := newInbox()
	// Fill past the ring so the spill path engages.
	const n = inboxSize + 100
	spilled := 0
	for i := 0; i < n; i++ {
		if !in.push(&Task{id: uint64(i)}) {
			spilled++
		}
	}
	if spilled != 100 {
		t.Fatalf("spilled %d pushes, want 100", spilled)
	}
	if in.empty() {
		t.Fatal("inbox reports empty")
	}
	seen := map[uint64]bool{}
	for i := 0; i < n; i++ {
		task := in.pop()
		if task == nil {
			t.Fatalf("pop %d = nil", i)
		}
		if seen[task.id] {
			t.Fatalf("task %d delivered twice", task.id)
		}
		seen[task.id] = true
	}
	if in.pop() != nil {
		t.Fatal("pop on drained inbox")
	}
	if !in.empty() {
		t.Fatal("drained inbox not empty")
	}
}

// TestInboxRingNotStarvedBehindSpill: sustained requeue traffic keeps the
// spill list permanently non-empty; ring entries must still drain (pops go
// ring-first), otherwise the 256 ring tasks starve forever behind the
// recycling spill.
func TestInboxRingNotStarvedBehindSpill(t *testing.T) {
	in := newInbox()
	const n = inboxSize + 50
	for i := 0; i < n; i++ {
		in.push(&Task{id: uint64(i)})
	}
	seen := map[uint64]bool{}
	for i := 0; i < n; i++ {
		task := in.pop()
		if task == nil {
			t.Fatalf("pop %d = nil with %d tasks circulating", i, n)
		}
		if seen[task.id] {
			t.Fatalf("task %d popped twice before every task ran once (ring starved)", task.id)
		}
		seen[task.id] = true
		in.push(task) // immediate requeue: spill stays non-empty throughout
	}
	if len(seen) != n {
		t.Fatalf("saw %d distinct tasks, want %d", len(seen), n)
	}
}

func TestInboxRingFIFOOrder(t *testing.T) {
	in := newInbox()
	for i := 0; i < 32; i++ {
		in.push(&Task{id: uint64(i)})
	}
	for i := 0; i < 32; i++ {
		task := in.pop()
		if task == nil || task.id != uint64(i) {
			t.Fatalf("pop %d = %v, want id %d", i, task, i)
		}
	}
}

// TestInboxConcurrentExactlyOnce is the -race stress test for the bounded
// MPMC ring + spill: many producers, many consumers, spill forced by
// volume, every task delivered exactly once.
func TestInboxConcurrentExactlyOnce(t *testing.T) {
	const (
		producers = 4
		consumers = 4
		perProd   = 8000
		total     = producers * perProd
	)
	in := newInbox()
	hits := make([]atomic.Int32, total)
	var delivered atomic.Int64
	var produced atomic.Int64

	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for i := 0; i < perProd; i++ {
				in.push(&Task{id: uint64(p*perProd + i)})
				produced.Add(1)
			}
		}(p)
	}
	var cg sync.WaitGroup
	for c := 0; c < consumers; c++ {
		cg.Add(1)
		go func() {
			defer cg.Done()
			for {
				task := in.pop()
				if task == nil {
					if produced.Load() == total && in.empty() {
						return
					}
					continue
				}
				if hits[task.id].Add(1) != 1 {
					t.Errorf("task %d delivered twice", task.id)
				}
				delivered.Add(1)
			}
		}()
	}
	wg.Wait()
	cg.Wait()
	if delivered.Load() != total {
		t.Fatalf("delivered %d, want %d", delivered.Load(), total)
	}
}
