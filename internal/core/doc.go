// Package core implements the FLICK platform's task-graph runtime (§5 of
// the paper): values flow through bounded task channels between
// cooperatively scheduled tasks; graphs are built from templates, pooled,
// and bound to network connections by the application and graph
// dispatchers; a fixed pool of worker threads executes runnable tasks with
// per-worker lock-free deques, task→worker affinity and work stealing.
//
// # Layers
//
//   - Scheduler: per-worker Chase–Lev deques, bounded overflow inboxes,
//     per-worker parking with an idle bitmap, and a fairness tick so no
//     queue starves (sched.go, deque.go, inbox.go).
//   - Graphs: Template (blueprint) → Instance (tasks + channels) with a
//     GraphPool recycling instances across connections (graph.go,
//     instance.go, pool.go).
//   - Dispatch: Platform listens per Service; the graph dispatcher binds
//     each accepted connection (and its backend connections or upstream
//     leases) to an instance (platform.go).
//   - Topology: a Service deployed with BackendPorts + Topology routes
//     keys through a live consistent-hash ring and accepts
//     UpdateBackends while serving (topology.go); compiled
//     `hash(k) mod len(backends)` expressions consult the instance's
//     router snapshot.
//
// # Zero-copy / ownership invariants
//
// Values flowing through a Chan are refcounted views over pooled wire
// bytes: Push retains a value's backing region for the consumer and each
// task Releases after processing, so the pooled bytes recycle exactly
// when the last task drops the message. Input tasks read into pooled
// refcounted chunks handed to the parse queue by reference (or, for
// upstream sessions, drain delivered response views by reference); output
// tasks accumulate encoded messages in a pooled scatter list — forwarded
// messages as references to their original wire bytes — and flush with
// one vectored write. An instance's Reset must only run after every task
// finished (the pool guarantees it), which is what makes buffer reuse
// across connections safe.
//
// # Counters
//
// Scheduler.Stats exposes scheduling counters as a metrics.CounterSet via
// SchedStats.Metrics: scheduled, executed, stolen, parks, wakeups,
// overflow. Data-path pool counters live in buffer.Pool.Counters; the
// upstream layer's in upstream.Manager.Counters.
package core
