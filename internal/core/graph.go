package core

import (
	"fmt"

	"flick/internal/grammar"
	"flick/internal/value"
)

// NodeKind distinguishes the three task kinds of a FLICK task graph (§3.2:
// input tasks deserialise, compute tasks transform, output tasks serialise).
type NodeKind int

// Node kinds.
const (
	NodeInput NodeKind = iota
	NodeCompute
	NodeOutput
)

// String names the node kind for diagnostics and debug dumps.
func (k NodeKind) String() string {
	switch k {
	case NodeInput:
		return "input"
	case NodeCompute:
		return "compute"
	case NodeOutput:
		return "output"
	}
	return "invalid"
}

// ComputeFunc is the body of a compute node: it receives one value from
// in-edge `in` and emits results through ctx.
type ComputeFunc func(ctx *NodeCtx, v value.Value, in int)

// EOFFunc is called once when an in-edge reaches end-of-stream (after its
// last value was delivered), letting aggregation nodes flush (the Hadoop
// combiner emits its accumulated counts here).
type EOFFunc func(ctx *NodeCtx, in int)

// Node declares one task of a graph template.
type Node struct {
	ID   int
	Name string
	Kind NodeKind

	// Codec (de)serialises messages for input/output nodes.
	Codec grammar.WireFormat
	// Fn is the compute body.
	Fn ComputeFunc
	// OnEOF optionally flushes state when an in-edge closes.
	OnEOF EOFFunc
	// NewState optionally builds per-instance node state.
	NewState func() any

	ins  []int // node IDs feeding this node
	outs []int // node IDs this node feeds
}

// Port binds a bidirectional connection endpoint to graph nodes: In is the
// input node that parses bytes read from the connection (-1 for write-only
// ports), Out is the output node whose serialised bytes are written to it
// (-1 for read-only ports).
type Port struct {
	Name string
	In   int
	Out  int
	// Primary marks the client-facing port: when its read side reaches
	// EOF the instance shuts down, closing every other connection (§5:
	// "when a task graph has no more active input channels, it is shut
	// down"; the client port dominates the proxy-style graphs).
	Primary bool
}

// Template is an immutable task-graph blueprint produced by the FLICK
// compiler (or assembled directly through this API). Instances are stamped
// out of it by the graph dispatcher.
type Template struct {
	Name  string
	nodes []*Node
	ports []Port
}

// NewTemplate creates an empty template.
func NewTemplate(name string) *Template {
	return &Template{Name: name}
}

// AddInput declares an input (deserialiser) node.
func (t *Template) AddInput(name string, codec grammar.WireFormat) *Node {
	n := &Node{ID: len(t.nodes), Name: name, Kind: NodeInput, Codec: codec}
	t.nodes = append(t.nodes, n)
	return n
}

// AddOutput declares an output (serialiser) node.
func (t *Template) AddOutput(name string, codec grammar.WireFormat) *Node {
	n := &Node{ID: len(t.nodes), Name: name, Kind: NodeOutput, Codec: codec}
	t.nodes = append(t.nodes, n)
	return n
}

// AddCompute declares a compute node.
func (t *Template) AddCompute(name string, fn ComputeFunc) *Node {
	n := &Node{ID: len(t.nodes), Name: name, Kind: NodeCompute, Fn: fn}
	t.nodes = append(t.nodes, n)
	return n
}

// Connect adds a directed edge from a to b.
func (t *Template) Connect(a, b *Node) {
	a.outs = append(a.outs, b.ID)
	b.ins = append(b.ins, a.ID)
}

// AddPort declares a connection endpoint. in/out may be nil for
// unidirectional ports.
func (t *Template) AddPort(name string, in, out *Node, primary bool) int {
	p := Port{Name: name, In: -1, Out: -1, Primary: primary}
	if in != nil {
		p.In = in.ID
	}
	if out != nil {
		p.Out = out.ID
	}
	t.ports = append(t.ports, p)
	return len(t.ports) - 1
}

// Ports returns the template's port table.
func (t *Template) Ports() []Port { return t.ports }

// Nodes returns the template's nodes.
func (t *Template) Nodes() []*Node { return t.nodes }

// Validate checks structural invariants: the graph must be a DAG, input
// nodes have exactly one out-edge and none in, output nodes have at least
// one in-edge and none out, every input/output node is bound to exactly one
// port, and codecs are present where required. The FLICK language guarantees
// these by construction; the check exists for graphs assembled by hand.
func (t *Template) Validate() error {
	portIn := map[int]int{}
	portOut := map[int]int{}
	for i, p := range t.ports {
		if p.In >= 0 {
			portIn[p.In]++
			if p.In >= len(t.nodes) || t.nodes[p.In].Kind != NodeInput {
				return fmt.Errorf("core: port %d In is not an input node", i)
			}
		}
		if p.Out >= 0 {
			portOut[p.Out]++
			if p.Out >= len(t.nodes) || t.nodes[p.Out].Kind != NodeOutput {
				return fmt.Errorf("core: port %d Out is not an output node", i)
			}
		}
	}
	for _, n := range t.nodes {
		switch n.Kind {
		case NodeInput:
			if len(n.ins) != 0 {
				return fmt.Errorf("core: input node %q has in-edges", n.Name)
			}
			if len(n.outs) != 1 {
				return fmt.Errorf("core: input node %q must have exactly one out-edge, has %d", n.Name, len(n.outs))
			}
			if n.Codec == nil {
				return fmt.Errorf("core: input node %q has no codec", n.Name)
			}
			if portIn[n.ID] != 1 {
				return fmt.Errorf("core: input node %q bound to %d ports, want 1", n.Name, portIn[n.ID])
			}
		case NodeOutput:
			if len(n.outs) != 0 {
				return fmt.Errorf("core: output node %q has out-edges", n.Name)
			}
			if len(n.ins) == 0 {
				return fmt.Errorf("core: output node %q has no in-edges", n.Name)
			}
			if n.Codec == nil {
				return fmt.Errorf("core: output node %q has no codec", n.Name)
			}
			if portOut[n.ID] != 1 {
				return fmt.Errorf("core: output node %q bound to %d ports, want 1", n.Name, portOut[n.ID])
			}
		case NodeCompute:
			if n.Fn == nil {
				return fmt.Errorf("core: compute node %q has no body", n.Name)
			}
			if len(n.ins) == 0 {
				return fmt.Errorf("core: compute node %q has no in-edges", n.Name)
			}
		}
	}
	return t.checkAcyclic()
}

// checkAcyclic rejects cycles (task graphs are DAGs, §3.2).
func (t *Template) checkAcyclic() error {
	const (
		white = 0
		grey  = 1
		black = 2
	)
	color := make([]int, len(t.nodes))
	var visit func(int) error
	visit = func(id int) error {
		switch color[id] {
		case grey:
			return fmt.Errorf("core: task graph %q has a cycle through %q", t.Name, t.nodes[id].Name)
		case black:
			return nil
		}
		color[id] = grey
		for _, o := range t.nodes[id].outs {
			if err := visit(o); err != nil {
				return err
			}
		}
		color[id] = black
		return nil
	}
	for id := range t.nodes {
		if err := visit(id); err != nil {
			return err
		}
	}
	return nil
}
