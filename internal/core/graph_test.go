package core

import (
	"strings"
	"testing"

	"flick/internal/grammar"
	"flick/internal/value"
)

var lineCodec = grammar.LineUnit().MustCompile()

func passthrough(ctx *NodeCtx, v value.Value, in int) { ctx.Emit(0, v) }

func TestTemplateValidateOK(t *testing.T) {
	tmpl := NewTemplate("echo")
	in := tmpl.AddInput("in", lineCodec)
	comp := tmpl.AddCompute("id", passthrough)
	out := tmpl.AddOutput("out", lineCodec)
	tmpl.Connect(in, comp)
	tmpl.Connect(comp, out)
	tmpl.AddPort("client", in, out, true)
	if err := tmpl.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(tmpl.Nodes()) != 3 || len(tmpl.Ports()) != 1 {
		t.Fatal("inventory")
	}
}

func TestTemplateValidateErrors(t *testing.T) {
	build := func(f func(*Template)) error {
		tmpl := NewTemplate("bad")
		f(tmpl)
		return tmpl.Validate()
	}

	cases := map[string]func(*Template){
		"input with no out-edge": func(tmpl *Template) {
			in := tmpl.AddInput("in", lineCodec)
			tmpl.AddPort("p", in, nil, false)
		},
		"input with two out-edges": func(tmpl *Template) {
			in := tmpl.AddInput("in", lineCodec)
			c1 := tmpl.AddCompute("c1", passthrough)
			c2 := tmpl.AddCompute("c2", passthrough)
			o := tmpl.AddOutput("o", lineCodec)
			tmpl.Connect(in, c1)
			tmpl.Connect(in, c2)
			tmpl.Connect(c1, o)
			tmpl.Connect(c2, o)
			tmpl.AddPort("p", in, o, false)
		},
		"input without codec": func(tmpl *Template) {
			in := tmpl.AddInput("in", nil)
			o := tmpl.AddOutput("o", lineCodec)
			tmpl.Connect(in, o)
			tmpl.AddPort("p", in, o, false)
		},
		"input unbound to port": func(tmpl *Template) {
			in := tmpl.AddInput("in", lineCodec)
			o := tmpl.AddOutput("o", lineCodec)
			tmpl.Connect(in, o)
			tmpl.AddPort("p", nil, o, false)
		},
		"output with out-edges": func(tmpl *Template) {
			in := tmpl.AddInput("in", lineCodec)
			o := tmpl.AddOutput("o", lineCodec)
			c := tmpl.AddCompute("c", passthrough)
			tmpl.Connect(in, o)
			tmpl.Connect(o, c)
			tmpl.AddPort("p", in, o, false)
		},
		"output with no in-edges": func(tmpl *Template) {
			in := tmpl.AddInput("in", lineCodec)
			c := tmpl.AddCompute("c", passthrough)
			o := tmpl.AddOutput("o", lineCodec)
			tmpl.Connect(in, c)
			_ = o
			tmpl.AddPort("p", in, o, false)
		},
		"compute without body": func(tmpl *Template) {
			in := tmpl.AddInput("in", lineCodec)
			c := tmpl.AddCompute("c", nil)
			o := tmpl.AddOutput("o", lineCodec)
			tmpl.Connect(in, c)
			tmpl.Connect(c, o)
			tmpl.AddPort("p", in, o, false)
		},
		"compute with no inputs": func(tmpl *Template) {
			in := tmpl.AddInput("in", lineCodec)
			c := tmpl.AddCompute("c", passthrough)
			o := tmpl.AddOutput("o", lineCodec)
			tmpl.Connect(in, o)
			tmpl.Connect(c, o)
			tmpl.AddPort("p", in, o, false)
		},
	}
	for name, f := range cases {
		if err := build(f); err == nil {
			t.Errorf("%s: validated, want error", name)
		}
	}
}

func TestTemplateCycleDetection(t *testing.T) {
	tmpl := NewTemplate("cyclic")
	in := tmpl.AddInput("in", lineCodec)
	c1 := tmpl.AddCompute("c1", passthrough)
	c2 := tmpl.AddCompute("c2", passthrough)
	o := tmpl.AddOutput("o", lineCodec)
	tmpl.Connect(in, c1)
	tmpl.Connect(c1, c2)
	tmpl.Connect(c2, c1) // cycle
	tmpl.Connect(c2, o)
	tmpl.AddPort("p", in, o, false)
	err := tmpl.Validate()
	if err == nil || !strings.Contains(err.Error(), "cycle") {
		t.Fatalf("err = %v, want cycle error", err)
	}
}

func TestNodeKindString(t *testing.T) {
	if NodeInput.String() != "input" || NodeCompute.String() != "compute" ||
		NodeOutput.String() != "output" || NodeKind(9).String() != "invalid" {
		t.Fatal("kind names")
	}
}

func TestPortDirectionality(t *testing.T) {
	tmpl := NewTemplate("oneway")
	in := tmpl.AddInput("in", lineCodec)
	c := tmpl.AddCompute("c", passthrough)
	out := tmpl.AddOutput("out", lineCodec)
	tmpl.Connect(in, c)
	tmpl.Connect(c, out)
	tmpl.AddPort("source", in, nil, false) // read-only port
	tmpl.AddPort("sink", nil, out, false)  // write-only port
	if err := tmpl.Validate(); err != nil {
		t.Fatal(err)
	}
	ports := tmpl.Ports()
	if ports[0].Out != -1 || ports[1].In != -1 {
		t.Fatal("directional ports wrong")
	}
}
