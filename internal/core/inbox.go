package core

import (
	"sync"
	"sync/atomic"
)

// inbox is a worker's overflow queue: the handoff point for every Schedule
// that cannot touch the worker's private deque (cross-worker schedules,
// wakeups from connection goroutines, yield requeues). The fast path is a
// bounded lock-free ring (Vyukov's bounded queue); when the ring is full,
// pushes spill into a mutex-protected list so Schedule never blocks and
// never drops a task.
//
// The ring is multi-producer/multi-consumer: the owning worker drains it in
// FIFO order, and idle thieves may also pop from it directly, so a task
// parked in a busy worker's inbox cannot be starved behind a long-running
// activation.
type inbox struct {
	slots []inboxSlot
	mask  uint64
	enq   atomic.Uint64
	deq   atomic.Uint64

	// spillLen mirrors len(spill) so the hot paths can skip the mutex.
	// While the spill is non-empty, pushes keep appending to it (never the
	// ring), and pops drain the ring first, then the spill. Order is
	// approximately FIFO: a push racing the ring-full transition can slip
	// into a freed ring slot ahead of an already-spilled older task, so
	// the ordering is best-effort, not an invariant — the scheduler only
	// needs starvation-freedom, which holds: a non-empty spill diverts all
	// new pushes, so the ring is guaranteed to drain, after which the
	// spill drains too.
	spillLen atomic.Int64
	spillMu  sync.Mutex
	spill    []*Task // head at index 0
}

type inboxSlot struct {
	seq  atomic.Uint64
	task *Task // published by the seq store (release/acquire pairing)
}

// inboxSize bounds the lock-free ring; must be a power of two. Spill
// traffic beyond it is counted in SchedStats.Overflow.
const inboxSize = 256

func newInbox() *inbox {
	in := &inbox{slots: make([]inboxSlot, inboxSize), mask: inboxSize - 1}
	for i := range in.slots {
		in.slots[i].seq.Store(uint64(i))
	}
	return in
}

// push enqueues t. It returns true when the task landed in the lock-free
// ring and false when it spilled to the overflow list.
func (in *inbox) push(t *Task) bool {
	if in.spillLen.Load() > 0 {
		in.pushSpill(t)
		return false
	}
	pos := in.enq.Load()
	for {
		slot := &in.slots[pos&in.mask]
		seq := slot.seq.Load()
		switch dif := int64(seq) - int64(pos); {
		case dif == 0:
			if in.enq.CompareAndSwap(pos, pos+1) {
				slot.task = t
				slot.seq.Store(pos + 1)
				return true
			}
			pos = in.enq.Load()
		case dif < 0:
			// Ring full. Spill rather than spin: the owner may be parked
			// behind this very push and spinning could livelock startup.
			in.pushSpill(t)
			return false
		default:
			pos = in.enq.Load()
		}
	}
}

func (in *inbox) pushSpill(t *Task) {
	in.spillMu.Lock()
	in.spill = append(in.spill, t)
	in.spillLen.Store(int64(len(in.spill)))
	in.spillMu.Unlock()
}

// pop dequeues the oldest task: the ring first (its entries predate every
// spill entry), then the spill list. Safe from any goroutine.
func (in *inbox) pop() *Task {
	pos := in.deq.Load()
	for {
		slot := &in.slots[pos&in.mask]
		seq := slot.seq.Load()
		switch dif := int64(seq) - int64(pos+1); {
		case dif == 0:
			if in.deq.CompareAndSwap(pos, pos+1) {
				t := slot.task
				slot.task = nil
				slot.seq.Store(pos + in.mask + 1)
				return t
			}
			pos = in.deq.Load()
		case dif < 0:
			if in.spillLen.Load() > 0 {
				return in.popSpill()
			}
			return nil
		default:
			pos = in.deq.Load()
		}
	}
}

func (in *inbox) popSpill() *Task {
	in.spillMu.Lock()
	defer in.spillMu.Unlock()
	if len(in.spill) == 0 {
		return nil
	}
	t := in.spill[0]
	copy(in.spill, in.spill[1:])
	in.spill[len(in.spill)-1] = nil
	in.spill = in.spill[:len(in.spill)-1]
	in.spillLen.Store(int64(len(in.spill)))
	return t
}

// empty reports an instantaneous (racy) emptiness check.
func (in *inbox) empty() bool {
	return in.deq.Load() == in.enq.Load() && in.spillLen.Load() == 0
}
