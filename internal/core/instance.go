package core

import (
	"fmt"
	"net"
	"strings"
	"sync"
	"sync/atomic"

	"time"

	"flick/internal/buffer"
	"flick/internal/grammar"
	"flick/internal/metrics"
	"flick/internal/netstack"
	"flick/internal/value"
)

// Instance is a runtime task graph stamped out of a Template: one Task per
// node, one Chan per edge, with input/output nodes bound to network
// connections through ports. Instances are reusable (Reset) to support the
// graph dispatcher's pre-allocated pool (§5: "The platform maintains a
// pre-allocated pool of task graphs to avoid the overhead of construction").
type Instance struct {
	tmpl  *Template
	sched *Scheduler

	tasks   []*Task   // by node ID
	nodeIn  [][]*Chan // per node: in-channels aligned with node.ins
	nodeOut [][]*Chan // per node: out-channels aligned with node.outs

	inputRT  []*inputState  // by node ID (inputs only)
	outputRT []*outputState // by node ID (outputs only)
	compRT   []*computeState

	conns []net.Conn // by port index
	// router is the backend-topology router snapshot bound with this
	// dispatch (nil: fixed topology, plain mod-B routing). Like conns it
	// is written between pool Get and Start and read by task bodies after
	// Start, so it needs no extra synchronisation; Reset clears it.
	router func(hash int64) int
	// crt is the response-cache runtime (nil: uncached service). Like
	// router it is installed between pool Get and Start (SetCache) and
	// read by task bodies after Start; unlike router it persists across
	// Reset — only its per-binding state clears (resetCache).
	crt *cacheRT
	// lrt is the live-latency runtime (nil: uninstrumented service). Like
	// crt it is installed between pool Get and Start (SetLatency) and
	// persists across Reset — only its stamp ring clears (resetLatency).
	lrt       *latencyRT
	id        int64
	liveTasks atomic.Int32
	shutdown  atomic.Bool
	// active gates task bodies: false between Reset and the next Start,
	// so stale wakeups from a previous binding (old connection callbacks,
	// queued scheduler entries) cannot touch runtime state while the
	// dispatcher rebinds the instance.
	active   atomic.Bool
	finished chan struct{}
	onFinish func(*Instance)
}

var instanceIDs atomic.Int64

// ID returns the instance's unique identifier (used by the language's
// instance_id() builtin, e.g. for per-connection backend affinity).
func (inst *Instance) ID() int64 { return inst.id }

// inputState is the runtime of one input node. Network bytes are read
// directly into pooled refcounted chunks and appended to the byte queue by
// reference; decoded messages are zero-copy views over those chunks, so no
// payload byte is copied between the socket and the task graph.
type inputState struct {
	mu   sync.Mutex
	q    *buffer.Queue
	eof  bool
	conn net.Conn
	dec  grammar.StreamDecoder
	evt  bool // event-driven (UserNet) vs pump-goroutine (kernel)
	port int
}

// readChunk is the pooled read-buffer size for input connections.
const readChunk = 32 << 10

// outputState is the runtime of one output node. Encoded messages
// accumulate in a pooled scatter list — raw-captured messages as zero-copy
// references into their region — and leave in batched vectored writes.
type outputState struct {
	inst *Instance
	conn net.Conn
	sc   *buffer.Scatter
	wbuf []byte // rebuild-path encode scratch
	port int
}

// flushBytes is the scatter high-water mark that forces a flush mid-drain.
const flushBytes = 64 << 10

// computeState is the runtime of one compute node.
type computeState struct {
	edgeClosed []bool
	open       int
	state      any
}

// NewInstance builds a runtime graph. Validate the template first.
func NewInstance(tmpl *Template, sched *Scheduler) *Instance {
	inst := &Instance{
		tmpl:     tmpl,
		sched:    sched,
		id:       instanceIDs.Add(1),
		tasks:    make([]*Task, len(tmpl.nodes)),
		nodeIn:   make([][]*Chan, len(tmpl.nodes)),
		nodeOut:  make([][]*Chan, len(tmpl.nodes)),
		inputRT:  make([]*inputState, len(tmpl.nodes)),
		outputRT: make([]*outputState, len(tmpl.nodes)),
		compRT:   make([]*computeState, len(tmpl.nodes)),
		conns:    make([]net.Conn, len(tmpl.ports)),
		finished: make(chan struct{}),
	}
	// Channels: one per edge, owned (as input) by the downstream node.
	type edge struct{ from, to int }
	chans := map[edge]*Chan{}
	for _, n := range tmpl.nodes {
		inst.nodeIn[n.ID] = make([]*Chan, len(n.ins))
		for i, from := range n.ins {
			ch := NewChan(64)
			chans[edge{from, n.ID}] = ch
			inst.nodeIn[n.ID][i] = ch
		}
	}
	for _, n := range tmpl.nodes {
		inst.nodeOut[n.ID] = make([]*Chan, len(n.outs))
		for i, to := range n.outs {
			inst.nodeOut[n.ID][i] = chans[edge{n.ID, to}]
		}
	}
	// Tasks.
	for _, n := range tmpl.nodes {
		n := n
		var body TaskFunc
		switch n.Kind {
		case NodeInput:
			body = func(ctx *ExecCtx) RunResult { return inst.runInput(ctx, n) }
		case NodeOutput:
			body = func(ctx *ExecCtx) RunResult { return inst.runOutput(ctx, n) }
		case NodeCompute:
			body = func(ctx *ExecCtx) RunResult { return inst.runCompute(ctx, n) }
		}
		t := sched.NewTask(tmpl.Name+"/"+n.Name, body)
		t.onDone = inst.taskDone
		inst.tasks[n.ID] = t
		for _, ch := range inst.nodeIn[n.ID] {
			ch.SetConsumer(t, sched)
		}
	}
	inst.initRuntime()
	return inst
}

// initRuntime (re)initialises per-run state; used at construction and
// Reset. State objects (and in particular the 32 KiB per-input read
// buffers and the byte queues' pooled chunks) are retained across resets —
// reallocating them per connection was the dominant allocation source on
// the non-persistent connection path.
func (inst *Instance) initRuntime() {
	inst.active.Store(false)
	inst.liveTasks.Store(int32(len(inst.tmpl.nodes)))
	inst.shutdown.Store(false)
	inst.finished = make(chan struct{})
	for _, n := range inst.tmpl.nodes {
		switch n.Kind {
		case NodeInput:
			st := inst.inputRT[n.ID]
			if st == nil {
				st = &inputState{q: buffer.NewQueue(nil)}
				inst.inputRT[n.ID] = st
			}
			st.mu.Lock()
			st.q.Reset()
			st.dec = n.Codec.NewDecoder()
			st.eof = false
			st.conn = nil
			st.evt = false
			st.port = -1
			st.mu.Unlock()
		case NodeOutput:
			st := inst.outputRT[n.ID]
			if st == nil {
				st = &outputState{inst: inst, sc: buffer.NewScatter(nil)}
				inst.outputRT[n.ID] = st
			}
			st.sc.Reset()
			st.conn = nil
			st.port = -1
		case NodeCompute:
			cs := inst.compRT[n.ID]
			if cs == nil {
				cs = &computeState{edgeClosed: make([]bool, len(n.ins))}
				inst.compRT[n.ID] = cs
			}
			for i := range cs.edgeClosed {
				cs.edgeClosed[i] = false
			}
			cs.open = len(n.ins)
			cs.state = nil
			if n.NewState != nil {
				cs.state = n.NewState()
			}
		}
	}
}

// Reset prepares a finished instance for reuse by the pool.
//
// Ordering matters: the active gate must drop BEFORE the tasks' done flags
// clear. A late wakeup from the previous binding (an in-flight connection
// callback) passes the scheduler's done check as soon as done flips false;
// with active already false its activation is inert, instead of running
// against the previous session's input state and poisoning the fresh one.
func (inst *Instance) Reset() {
	inst.active.Store(false)
	// Cache bookkeeping dies before the channels clear: the generation
	// bump makes outstanding waiter deliveries inert, so whatever they
	// pushed before losing the race is released by the channel Reset
	// below, and nothing lands after it.
	inst.resetCache()
	inst.resetLatency()
	for _, t := range inst.tasks {
		t.done.Store(false)
		t.state.Store(int32(TaskIdle))
	}
	for _, chs := range inst.nodeIn {
		for _, ch := range chs {
			ch.Reset()
		}
	}
	for i := range inst.conns {
		inst.conns[i] = nil
	}
	inst.router = nil
	inst.initRuntime()
}

// Template returns the blueprint this instance was built from.
func (inst *Instance) Template() *Template { return inst.tmpl }

// Task returns the runtime task of node id (diagnostics and tests).
func (inst *Instance) Task(id int) *Task { return inst.tasks[id] }

// SetOnFinish registers a completion callback (pool return).
func (inst *Instance) SetOnFinish(fn func(*Instance)) { inst.onFinish = fn }

// Finished returns a channel closed when every task of the instance has
// terminated.
func (inst *Instance) Finished() <-chan struct{} { return inst.finished }

// DebugString renders the instance's runtime state for diagnostics.
func (inst *Instance) DebugString() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "instance %d (%s) active=%v live=%d shutdown=%v\n",
		inst.id, inst.tmpl.Name, inst.active.Load(), inst.liveTasks.Load(), inst.shutdown.Load())
	for _, n := range inst.tmpl.nodes {
		t := inst.tasks[n.ID]
		fmt.Fprintf(&sb, "  node %d %-8s %-16s state=%d done=%v runs=%d",
			n.ID, n.Kind, n.Name, t.state.Load(), t.done.Load(), t.runs.Load())
		if st := inst.inputRT[n.ID]; st != nil {
			st.mu.Lock()
			fmt.Fprintf(&sb, " qlen=%d eof=%v evt=%v conn=%v", st.q.Len(), st.eof, st.evt, st.conn != nil)
			st.mu.Unlock()
		}
		for i, ch := range inst.nodeIn[n.ID] {
			fmt.Fprintf(&sb, " in%d=%d/%v", i, ch.Len(), ch.Closed())
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}

// SetRouter installs the backend-topology router for this binding (the
// key→backend-index mapping compiled `hash(k) mod len(backends)`
// expressions consult). Call before Start, alongside Bind; Reset clears it.
func (inst *Instance) SetRouter(route func(hash int64) int) { inst.router = route }

// Router returns the binding's topology router (nil when the instance
// routes by plain modulo over the compiled channel-array capacity).
func (inst *Instance) Router() func(hash int64) int { return inst.router }

// PortHomeWorker returns the home scheduler worker of the task that
// writes port's connection — the port's output node's task (the input
// node's for read-only ports). This is the worker identity the graph
// dispatcher hands to upstream.Manager.LeaseOn: the session leased for a
// backend port is written by exactly that task (runOutput → flush), so
// leasing from its home worker's shard keeps the framing/FIFO/writev path
// free of cross-core lock contention (stolen activations excepted).
func (inst *Instance) PortHomeWorker(port int) int {
	p := inst.tmpl.ports[port]
	if p.Out >= 0 {
		return inst.tasks[p.Out].home
	}
	if p.In >= 0 {
		return inst.tasks[p.In].home
	}
	return 0
}

// Bind attaches a connection to a port. Call before Start.
func (inst *Instance) Bind(port int, conn net.Conn) {
	inst.conns[port] = conn
	p := inst.tmpl.ports[port]
	if p.In >= 0 {
		st := inst.inputRT[p.In]
		st.conn = conn
		st.port = port
		_, st.evt = conn.(netstack.Readable)
	}
	if p.Out >= 0 {
		st := inst.outputRT[p.Out]
		st.conn = conn
		st.port = port
	}
}

// Start activates the instance: event callbacks are registered, pump
// goroutines start for kernel connections, and every input task is
// scheduled once to consume any pending bytes.
func (inst *Instance) Start() {
	inst.active.Store(true)
	for _, n := range inst.tmpl.nodes {
		if n.Kind != NodeInput {
			continue
		}
		st := inst.inputRT[n.ID]
		task := inst.tasks[n.ID]
		if st.conn == nil {
			// Unbound input (write-only benchmark graphs): treat as EOF.
			st.eof = true
			inst.sched.Schedule(task)
			continue
		}
		if st.evt {
			r := st.conn.(netstack.Readable)
			sched, tsk := inst.sched, task
			r.SetReadableCallback(func() { sched.Schedule(tsk) })
		} else {
			go inst.pump(st, task)
		}
		inst.sched.Schedule(task)
	}
}

// pump bridges a kernel (blocking) connection into the task world: it
// blocks on Read and schedules the input task as bytes arrive. This is the
// kernel-stack analogue of mTCP's event loop (one goroutine per connection
// instead of one epoll event). Bulk reads land in a fresh pooled chunk that
// is handed to the byte queue by reference — no copy between the socket and
// the decoded message views; short reads are compacted instead so a
// trickling peer cannot pin a near-empty chunk per segment.
func (inst *Instance) pump(st *inputState, task *Task) {
	for {
		ref := buffer.Global.GetRef(readChunk)
		n, err := st.conn.Read(ref.Bytes())
		st.mu.Lock()
		st.q.AppendRead(ref, n) // small reads compact, large ones hand over the ref
		if err != nil {
			st.eof = true
		}
		st.mu.Unlock()
		if n > 0 || err != nil {
			inst.sched.Schedule(task)
		}
		if err != nil {
			return
		}
	}
}

// taskDone runs (via Task.onDone, after the scheduler finalises the task's
// state) exactly once per node when its task returns RunDone. When the last
// task of the instance terminates the instance is finished and may be
// recycled by the pool — the ordering guarantees no scheduler store can
// clobber a Reset.
func (inst *Instance) taskDone() {
	if inst.liveTasks.Add(-1) == 0 {
		close(inst.finished)
		if inst.onFinish != nil {
			inst.onFinish(inst)
		}
	}
}

// beginShutdown force-closes every connection; EOFs then propagate through
// the dataflow and all tasks terminate. After the closes, event callbacks
// are unregistered (late wakeups from this binding are additionally gated
// by the active flag) and every input task is scheduled once so it observes
// its connection's EOF even if its close event fired before the task was
// ready for it.
func (inst *Instance) beginShutdown() {
	if !inst.shutdown.CompareAndSwap(false, true) {
		return
	}
	for _, c := range inst.conns {
		if c != nil {
			c.Close()
		}
	}
	for _, n := range inst.tmpl.nodes {
		if n.Kind != NodeInput {
			continue
		}
		st := inst.inputRT[n.ID]
		if st.evt && st.conn != nil {
			st.conn.(netstack.Readable).SetReadableCallback(nil)
		}
		inst.sched.Schedule(inst.tasks[n.ID])
	}
}

// Close aborts the instance explicitly (platform shutdown).
func (inst *Instance) Close() { inst.beginShutdown() }

// --- task bodies ---

// runInput drains bytes from the connection, decodes complete messages and
// pushes them downstream.
func (inst *Instance) runInput(ctx *ExecCtx, n *Node) RunResult {
	if !inst.active.Load() {
		return RunIdle // stale wakeup while unbound (see Instance.active)
	}
	st := inst.inputRT[n.ID]
	out := inst.nodeOut[n.ID][0]
	// stampPrimary: this input feeds the client-facing port of an
	// instrumented graph, so every decoded request pushes a latency stamp.
	// The clock is read lazily, once per batch of decodes (lnow resets when
	// new bytes arrive): requests framed by one socket read arrived
	// together, so they share an arrival stamp.
	stampPrimary := inst.lrt != nil && st.port >= 0 && inst.tmpl.ports[st.port].Primary
	lnow := int64(-1)
	for {
		if out.Saturated() {
			return RunYield
		}
		st.mu.Lock()
		msg, ok, derr := st.dec.Decode(st.q)
		if ok {
			st.mu.Unlock()
			if stampPrimary {
				if lnow < 0 {
					lnow = metrics.Now()
				}
				inst.lrt.push(lnow)
			}
			if crt := inst.crt; crt != nil && st.port >= 0 {
				if primary := inst.tmpl.ports[st.port].Primary; primary && !crt.fifo {
					// Client request: serve/coalesce/track before dispatch.
					if inst.cacheClientRequest(ctx, msg, out) {
						msg.Release()
						if ctx.CountItem() {
							return RunYield
						}
						continue
					}
				} else if !primary {
					// Backend response: FIFO ports deliver through the slot
					// queue (order-preserving); non-FIFO ports forward then
					// correlate by key/opaque. Fills run while the decoder's
					// reference still pins the response bytes.
					if crt.fifo {
						if f := inst.cacheFifoResponse(msg, st.port, out); f != nil {
							f.Fill(msg.Field("_raw").AsBytes(), crt.proto.Response(msg))
						}
					} else {
						out.Push(msg)
						inst.cacheBackendResponse(msg)
					}
					msg.Release()
					if ctx.CountItem() {
						return RunYield
					}
					continue
				}
			}
			// Push retains for the channel; dropping the decoder's own
			// reference leaves the downstream consumer as the sole owner.
			out.Push(msg)
			msg.Release()
			if ctx.CountItem() {
				return RunYield
			}
			continue
		}
		if derr != nil {
			// Malformed stream: the paper's grammars adopt a default
			// behaviour for unparseable input (§4.2) — we drop the
			// connection, the only safe framing recovery.
			st.eof = true
		}
		if st.eof {
			st.mu.Unlock()
			return inst.finishInput(st, out)
		}
		if st.evt {
			// Event-driven: pull bytes non-blockingly from the stack. A
			// RefReader (upstream session) moves its already-pooled views
			// into the parse queue by reference; other stacks read into a
			// pooled chunk appended by reference (zero copy either way).
			var (
				nread int
				rerr  error
			)
			if rr, ok := st.conn.(netstack.RefReader); ok {
				nread, rerr = rr.TryReadRefs(st.q)
			} else {
				ref := buffer.Global.GetRef(readChunk)
				nread, rerr = st.conn.(netstack.Readable).TryRead(ref.Bytes())
				st.q.AppendRead(ref, nread) // small reads compact, large ones hand over the ref
			}
			if nread > 0 {
				st.mu.Unlock()
				lnow = -1 // fresh bytes: the next decode batch re-reads the clock
				continue
			}
			if rerr != nil {
				// EOF and hard errors end the stream alike.
				st.eof = true
				st.mu.Unlock()
				return inst.finishInput(st, out)
			}
		}
		st.mu.Unlock()
		return RunIdle
	}
}

// finishInput propagates EOF downstream and triggers instance shutdown for
// primary ports.
func (inst *Instance) finishInput(st *inputState, out *Chan) RunResult {
	out.Close()
	if st.port >= 0 && inst.tmpl.ports[st.port].Primary {
		inst.beginShutdown()
	}
	return RunDone
}

// runCompute drains the node's in-edges round-robin, invoking the body per
// value and the EOF hook per closed edge.
func (inst *Instance) runCompute(ctx *ExecCtx, n *Node) RunResult {
	if !inst.active.Load() {
		return RunIdle // stale wakeup while unbound (see Instance.active)
	}
	cs := inst.compRT[n.ID]
	ins := inst.nodeIn[n.ID]
	nctx := NodeCtx{inst: inst, node: n, State: cs.state, exec: ctx}
	for {
		for _, ch := range inst.nodeOut[n.ID] {
			if ch.Saturated() {
				return RunYield
			}
		}
		progressed := false
		for i, ch := range ins {
			if cs.edgeClosed[i] {
				continue
			}
			v, ok, closed := ch.Pop()
			if ok {
				n.Fn(&nctx, v, i)
				// Drop the channel's reference. Emitted copies were
				// re-retained by the downstream Push; values the body
				// stored into globals were detached by Dict.Set.
				v.Release()
				progressed = true
				if ctx.CountItem() {
					return RunYield
				}
				continue
			}
			if closed {
				cs.edgeClosed[i] = true
				cs.open--
				progressed = true
				if n.OnEOF != nil {
					n.OnEOF(&nctx, i)
				}
			}
		}
		if cs.open == 0 {
			for _, ch := range inst.nodeOut[n.ID] {
				ch.Close()
			}
			return RunDone
		}
		if !progressed {
			return RunIdle
		}
	}
}

// runOutput serialises values from the node's in-edges onto its connection.
// Messages accumulate in the node's pooled scatter list — raw-captured
// messages as zero-copy references into their pooled wire bytes — and are
// flushed in one batched vectored write when the drain pauses (yield, idle,
// done) or the list passes the high-water mark. A burst of queued responses
// therefore leaves in a single writev instead of a syscall per message.
func (inst *Instance) runOutput(ctx *ExecCtx, n *Node) RunResult {
	if !inst.active.Load() {
		return RunIdle // stale wakeup while unbound (see Instance.active)
	}
	st := inst.outputRT[n.ID]
	ins := inst.nodeIn[n.ID]
	// recordPrimary: this output answers the client-facing port of an
	// instrumented graph, so each encoded response pops its request's
	// decode stamp and records the elapsed time. The clock is read lazily,
	// once per flush batch: the batch leaves in one vectored write, so its
	// responses share a completion stamp.
	recordPrimary := inst.lrt != nil && st.port >= 0 && inst.tmpl.ports[st.port].Primary
	lend := int64(-1)
	for {
		progressed := false
		closedCount := 0
		for _, ch := range ins {
			v, ok, closed := ch.Pop()
			if closed {
				closedCount++
				continue
			}
			if !ok {
				continue
			}
			progressed = true
			if crt := inst.crt; crt != nil && crt.fifo && st.port >= 0 && !inst.tmpl.ports[st.port].Primary {
				// FIFO upstream request: hit/coalesce before it costs a
				// round trip; consumed requests never reach the wire.
				if inst.cacheUpstreamRequest(ctx, v, st.port) {
					v.Release()
					if ctx.CountItem() {
						st.flush()
						return RunYield
					}
					continue
				}
			}
			st.encode(n.Codec, v)
			if recordPrimary {
				if start, popped := inst.lrt.pop(); popped {
					if lend < 0 {
						lend = metrics.Now()
					}
					inst.lrt.sl.record(ctx.Worker(), time.Duration(lend-start))
				}
			}
			v.Release()
			if st.sc.Len() >= flushBytes {
				st.flush()
				lend = -1 // batch left the process; re-stamp the next one
			}
			if ctx.CountItem() {
				st.flush()
				return RunYield
			}
		}
		if closedCount == len(ins) {
			st.flush()
			if st.conn != nil {
				st.conn.Close()
			}
			return RunDone
		}
		if !progressed {
			st.flush()
			return RunIdle
		}
	}
}

// encode appends v's wire form to the output's scatter list, preferring the
// codec's zero-copy scatter path.
func (st *outputState) encode(codec grammar.WireFormat, v value.Value) {
	if se, ok := codec.(grammar.ScatterEncoder); ok {
		out, err := se.EncodeScatter(st.sc, st.wbuf, v)
		if err == nil {
			st.wbuf = out[:0]
		}
		return
	}
	out, err := codec.Encode(st.wbuf[:0], v)
	if err == nil {
		st.wbuf = out[:0]
		st.sc.Append(out)
	}
}

// flush writes the accumulated scatter list to the connection as one
// vectored write and resets it (releasing retained message regions). With
// no connection the list is dropped so regions still recycle.
//
// A write error may leave a message half-sent (a batch can fail between —
// or inside — iovecs), so continuing on this connection would emit bytes
// the peer cannot frame; the only safe recovery is dropping it. For a
// primary-port output (the client-facing side of proxy-style graphs) the
// instance additionally begins shutdown at once: without it the graph
// lingers half-dead — inputs still parsing a client that can no longer be
// answered — until the peer happens to hang up, pinning the instance and
// its pooled buffers. Non-primary drops still propagate as EOF through the
// normal teardown path.
func (st *outputState) flush() {
	if st.conn == nil {
		st.sc.Reset()
		return
	}
	if _, err := st.sc.WriteTo(st.conn); err != nil {
		st.conn.Close()
		st.conn = nil
		if st.port >= 0 && st.inst.tmpl.ports[st.port].Primary {
			st.inst.beginShutdown()
		}
	}
}

// NodeCtx is passed to compute bodies.
type NodeCtx struct {
	inst  *Instance
	node  *Node
	State any
	exec  *ExecCtx
}

// Emit pushes v onto the node's out-edge at index out (declaration order of
// Connect calls).
func (c *NodeCtx) Emit(out int, v value.Value) {
	c.inst.nodeOut[c.node.ID][out].Push(v)
}

// Outs returns the node's out-edge count.
func (c *NodeCtx) Outs() int { return len(c.inst.nodeOut[c.node.ID]) }

// Instance returns the enclosing instance.
func (c *NodeCtx) Instance() *Instance { return c.inst }

// Node returns the node being executed.
func (c *NodeCtx) Node() *Node { return c.node }
