package core

import (
	"bytes"
	"io"
	"net"
	"strings"
	"testing"
	"time"

	"flick/internal/netstack"
	"flick/internal/value"
)

// echoTemplate builds input → uppercase → output with one primary port.
func echoTemplate(t *testing.T) *Template {
	t.Helper()
	tmpl := NewTemplate("upper")
	in := tmpl.AddInput("in", lineCodec)
	comp := tmpl.AddCompute("upper", func(ctx *NodeCtx, v value.Value, _ int) {
		line := strings.ToUpper(v.Field("line").AsString())
		rec := lineCodec.Desc().New()
		rec.SetField("line", value.Str(line))
		ctx.Emit(0, rec)
	})
	out := tmpl.AddOutput("out", lineCodec)
	tmpl.Connect(in, comp)
	tmpl.Connect(comp, out)
	tmpl.AddPort("client", in, out, true)
	if err := tmpl.Validate(); err != nil {
		t.Fatal(err)
	}
	return tmpl
}

func startPlatform(t *testing.T, tr netstack.Transport) *Platform {
	t.Helper()
	p := NewPlatform(Config{Workers: 4, Transport: tr})
	t.Cleanup(p.Close)
	return p
}

func TestInstanceEndToEndUserNet(t *testing.T) {
	u := netstack.NewUserNet()
	p := startPlatform(t, u)
	svc, err := p.Deploy(ServiceConfig{
		Name:       "upper",
		ListenAddr: "upper:1",
		Template:   echoTemplate(t),
		Dispatch:   PerConnection,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()

	conn, err := u.Dial("upper:1")
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if _, err := conn.Write([]byte("hello\nworld\n")); err != nil {
		t.Fatal(err)
	}
	got := readLines(t, conn, 2)
	if got[0] != "HELLO" || got[1] != "WORLD" {
		t.Fatalf("got %q", got)
	}
}

func TestInstanceEndToEndKernelTCP(t *testing.T) {
	p := startPlatform(t, netstack.KernelTCP{})
	svc, err := p.Deploy(ServiceConfig{
		Name:       "upper",
		ListenAddr: "127.0.0.1:0",
		Template:   echoTemplate(t),
		Dispatch:   PerConnection,
	})
	if err != nil {
		t.Skipf("loopback unavailable: %v", err)
	}
	defer svc.Close()
	conn, err := net.Dial("tcp", svc.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	conn.Write([]byte("kernel\n"))
	got := readLines(t, conn, 1)
	if got[0] != "KERNEL" {
		t.Fatalf("got %q", got)
	}
}

func readLines(t *testing.T, conn net.Conn, n int) []string {
	t.Helper()
	conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	var buf bytes.Buffer
	tmp := make([]byte, 1024)
	for bytes.Count(buf.Bytes(), []byte{'\n'}) < n {
		m, err := conn.Read(tmp)
		buf.Write(tmp[:m])
		if err != nil {
			if err == io.EOF {
				break
			}
			t.Fatalf("read: %v (have %q)", err, buf.String())
		}
	}
	lines := strings.Split(strings.TrimRight(buf.String(), "\n"), "\n")
	if len(lines) < n {
		t.Fatalf("got %d lines %q, want %d", len(lines), lines, n)
	}
	return lines
}

func TestInstanceFinishesOnClientClose(t *testing.T) {
	u := netstack.NewUserNet()
	p := startPlatform(t, u)
	tmpl := echoTemplate(t)
	inst := NewInstance(tmpl, p.Scheduler())

	l, _ := u.Listen("direct:1")
	connCh := make(chan net.Conn, 1)
	go func() {
		c, _ := l.Accept()
		connCh <- c
	}()
	client, _ := u.Dial("direct:1")
	server := <-connCh
	inst.Bind(0, server)
	inst.Start()

	client.Write([]byte("one\n"))
	got := readLines(t, client, 1)
	if got[0] != "ONE" {
		t.Fatalf("got %q", got)
	}
	client.Close()
	select {
	case <-inst.Finished():
	case <-time.After(2 * time.Second):
		t.Fatal("instance did not finish after client close")
	}
}

func TestInstanceResetReuse(t *testing.T) {
	u := netstack.NewUserNet()
	p := startPlatform(t, u)
	tmpl := echoTemplate(t)
	inst := NewInstance(tmpl, p.Scheduler())
	l, _ := u.Listen("reuse:1")
	acceptOne := func() (client, server net.Conn) {
		ch := make(chan net.Conn, 1)
		go func() {
			c, _ := l.Accept()
			ch <- c
		}()
		client, _ = u.Dial("reuse:1")
		return client, <-ch
	}

	for round := 0; round < 3; round++ {
		client, server := acceptOne()
		inst.Bind(0, server)
		inst.Start()
		client.Write([]byte("ping\n"))
		got := readLines(t, client, 1)
		if got[0] != "PING" {
			t.Fatalf("round %d: got %q", round, got)
		}
		client.Close()
		select {
		case <-inst.Finished():
		case <-time.After(2 * time.Second):
			t.Fatalf("round %d: did not finish", round)
		}
		inst.Reset()
	}
}

// proxyTemplate: client_in → fwd → backend_out; backend_in → fwd2 →
// client_out. Models the HTTP LB / Memcached proxy shape.
func proxyTemplate(t *testing.T) *Template {
	t.Helper()
	tmpl := NewTemplate("proxy")
	cin := tmpl.AddInput("client_in", lineCodec)
	f1 := tmpl.AddCompute("fwd_req", passthrough)
	bout := tmpl.AddOutput("backend_out", lineCodec)
	bin := tmpl.AddInput("backend_in", lineCodec)
	f2 := tmpl.AddCompute("fwd_resp", passthrough)
	cout := tmpl.AddOutput("client_out", lineCodec)
	tmpl.Connect(cin, f1)
	tmpl.Connect(f1, bout)
	tmpl.Connect(bin, f2)
	tmpl.Connect(f2, cout)
	tmpl.AddPort("client", cin, cout, true)
	tmpl.AddPort("backend", bin, bout, false)
	if err := tmpl.Validate(); err != nil {
		t.Fatal(err)
	}
	return tmpl
}

func TestProxyGraphWithBackendDial(t *testing.T) {
	u := netstack.NewUserNet()
	p := startPlatform(t, u)

	// Echo backend that shouts.
	bl, _ := u.Listen("backend:1")
	go func() {
		for {
			c, err := bl.Accept()
			if err != nil {
				return
			}
			go func(c net.Conn) {
				defer c.Close()
				buf := make([]byte, 1024)
				for {
					n, err := c.Read(buf)
					if n > 0 {
						c.Write([]byte(strings.ToUpper(string(buf[:n]))))
					}
					if err != nil {
						return
					}
				}
			}(c)
		}
	}()

	svc, err := p.Deploy(ServiceConfig{
		Name:         "proxy",
		ListenAddr:   "proxy:1",
		Template:     proxyTemplate(t),
		Dispatch:     PerConnection,
		ClientPort:   0,
		BackendAddrs: map[int]string{1: "backend:1"},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()

	conn, err := u.Dial("proxy:1")
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	conn.Write([]byte("through\n"))
	got := readLines(t, conn, 1)
	if got[0] != "THROUGH" {
		t.Fatalf("got %q", got)
	}
}

func TestPrimaryPortShutdownClosesBackends(t *testing.T) {
	u := netstack.NewUserNet()
	p := startPlatform(t, u)

	backendClosed := make(chan struct{})
	bl, _ := u.Listen("backend:2")
	go func() {
		c, err := bl.Accept()
		if err != nil {
			return
		}
		io.Copy(io.Discard, c) // read until the proxy closes us
		close(backendClosed)
	}()

	svc, err := p.Deploy(ServiceConfig{
		Name:         "proxy",
		ListenAddr:   "proxy:2",
		Template:     proxyTemplate(t),
		Dispatch:     PerConnection,
		BackendAddrs: map[int]string{1: "backend:2"},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()

	conn, _ := u.Dial("proxy:2")
	conn.Write([]byte("x\n"))
	time.Sleep(20 * time.Millisecond)
	conn.Close() // primary port EOF → instance shutdown → backend closed
	select {
	case <-backendClosed:
	case <-time.After(2 * time.Second):
		t.Fatal("backend connection not closed after client EOF")
	}
}

// sharedTemplate: two inputs merge into one compute, one write-only output
// port (the Hadoop aggregator shape in miniature).
func sharedTemplate(t *testing.T) *Template {
	t.Helper()
	tmpl := NewTemplate("merge")
	in1 := tmpl.AddInput("in1", lineCodec)
	in2 := tmpl.AddInput("in2", lineCodec)
	merge := tmpl.AddCompute("merge", passthrough)
	out := tmpl.AddOutput("out", lineCodec)
	tmpl.Connect(in1, merge)
	tmpl.Connect(in2, merge)
	tmpl.Connect(merge, out)
	tmpl.AddPort("m1", in1, nil, false)
	tmpl.AddPort("m2", in2, nil, false)
	tmpl.AddPort("sink", nil, out, false)
	if err := tmpl.Validate(); err != nil {
		t.Fatal(err)
	}
	return tmpl
}

func TestSharedDispatchMergesInputs(t *testing.T) {
	u := netstack.NewUserNet()
	p := startPlatform(t, u)

	// Sink collects the merged stream.
	sink, _ := u.Listen("sink:1")
	collected := make(chan string, 1)
	go func() {
		c, err := sink.Accept()
		if err != nil {
			return
		}
		data, _ := io.ReadAll(c)
		collected <- string(data)
	}()

	svc, err := p.Deploy(ServiceConfig{
		Name:         "merge",
		ListenAddr:   "merge:1",
		Template:     sharedTemplate(t),
		Dispatch:     Shared,
		SharedPorts:  []int{0, 1},
		BackendAddrs: map[int]string{2: "sink:1"},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()

	c1, err := u.Dial("merge:1")
	if err != nil {
		t.Fatal(err)
	}
	c2, err := u.Dial("merge:1")
	if err != nil {
		t.Fatal(err)
	}
	c1.Write([]byte("alpha\n"))
	c2.Write([]byte("beta\n"))
	c1.Close()
	c2.Close()

	select {
	case data := <-collected:
		if !strings.Contains(data, "alpha\n") || !strings.Contains(data, "beta\n") {
			t.Fatalf("merged output %q", data)
		}
	case <-time.After(3 * time.Second):
		t.Fatal("merged stream never arrived at sink")
	}
}

func TestComputeStateAndEOFHook(t *testing.T) {
	u := netstack.NewUserNet()
	p := startPlatform(t, u)

	// Counting node: accumulates line count, emits it at EOF.
	tmpl := NewTemplate("count")
	in := tmpl.AddInput("in", lineCodec)
	count := tmpl.AddCompute("count", func(ctx *NodeCtx, v value.Value, _ int) {
		*(ctx.State.(*int))++
	})
	count.NewState = func() any { n := 0; return &n }
	count.OnEOF = func(ctx *NodeCtx, _ int) {
		rec := lineCodec.Desc().New()
		rec.SetField("line", value.Int(int64(*(ctx.State.(*int)))))
		rec.SetField("line", value.Str(itoa(*(ctx.State.(*int)))))
		ctx.Emit(0, rec)
	}
	out := tmpl.AddOutput("out", lineCodec)
	tmpl.Connect(in, count)
	tmpl.Connect(count, out)
	tmpl.AddPort("src", in, nil, false)
	tmpl.AddPort("dst", nil, out, false)
	if err := tmpl.Validate(); err != nil {
		t.Fatal(err)
	}

	sink, _ := u.Listen("csink:1")
	result := make(chan string, 1)
	go func() {
		c, _ := sink.Accept()
		data, _ := io.ReadAll(c)
		result <- strings.TrimSpace(string(data))
	}()

	_, err := p.Deploy(ServiceConfig{
		Name:         "count",
		ListenAddr:   "count:1",
		Template:     tmpl,
		Dispatch:     Shared,
		SharedPorts:  []int{0},
		BackendAddrs: map[int]string{1: "csink:1"},
	})
	if err != nil {
		t.Fatal(err)
	}
	c, _ := u.Dial("count:1")
	c.Write([]byte("a\nb\nc\n"))
	c.Close()
	select {
	case got := <-result:
		if got != "3" {
			t.Fatalf("count = %q", got)
		}
	case <-time.After(3 * time.Second):
		t.Fatal("no count arrived")
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var b [20]byte
	i := len(b)
	for n > 0 {
		i--
		b[i] = byte('0' + n%10)
		n /= 10
	}
	return string(b[i:])
}

func TestGraphPoolReuse(t *testing.T) {
	p := NewPlatform(Config{Workers: 2, Transport: netstack.NewUserNet()})
	defer p.Close()
	tmpl := echoTemplate(t)
	pool := NewGraphPool(tmpl, p.Scheduler(), 8)
	pool.Prime(2)
	a := pool.Get()
	b := pool.Get()
	c := pool.Get() // pool exhausted → build
	st := pool.Stats()
	if st.Hits != 2 || st.Builds != 1 {
		t.Fatalf("stats = %+v", st)
	}
	// Simulate completion so Put can reset cleanly.
	for _, inst := range []*Instance{a, b, c} {
		inst.Close()
		pool.Put(inst)
	}
	d := pool.Get()
	if d != c && d != b && d != a {
		t.Fatal("expected a recycled instance")
	}
}

func TestGraphPoolDisabled(t *testing.T) {
	p := NewPlatform(Config{Workers: 2, Transport: netstack.NewUserNet()})
	defer p.Close()
	pool := NewGraphPool(echoTemplate(t), p.Scheduler(), 8)
	pool.Disabled = true
	a := pool.Get()
	pool.Put(a)
	pool.Get()
	st := pool.Stats()
	if st.Hits != 0 || st.Builds != 2 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestDeployInvalidTemplate(t *testing.T) {
	p := NewPlatform(Config{Workers: 1, Transport: netstack.NewUserNet()})
	defer p.Close()
	bad := NewTemplate("bad")
	bad.AddInput("in", lineCodec) // dangling
	if _, err := p.Deploy(ServiceConfig{ListenAddr: "x:1", Template: bad}); err == nil {
		t.Fatal("invalid template deployed")
	}
}

func TestDeployBadBackendAddr(t *testing.T) {
	u := netstack.NewUserNet()
	p := startPlatform(t, u)
	svc, err := p.Deploy(ServiceConfig{
		Name:         "proxy",
		ListenAddr:   "proxy:9",
		Template:     proxyTemplate(t),
		Dispatch:     PerConnection,
		BackendAddrs: map[int]string{1: "ghost:1"},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	conn, err := u.Dial("proxy:9")
	if err != nil {
		t.Fatal(err)
	}
	// The dispatcher fails to dial the backend and closes our connection.
	conn.SetReadDeadline(time.Now().Add(2 * time.Second))
	buf := make([]byte, 1)
	if _, err := conn.Read(buf); err == nil {
		t.Fatal("expected connection close")
	}
}

func TestPlatformCloseIdempotent(t *testing.T) {
	p := NewPlatform(Config{Workers: 1, Transport: netstack.NewUserNet()})
	p.Close()
	p.Close()
}
