package core

import (
	"log"
	"sync"
	"sync/atomic"
	"time"

	"flick/internal/metrics"
)

// ServiceLatency is a service's live request-latency signal: every
// PerConnection instance stamps client requests at decode (runInput) and
// records the elapsed time into a per-worker histogram shard when the
// response is encoded for the flush batch (runOutput). Record is wait-free
// and allocation-free, so the zero-copy data path stays 0 allocs/req with
// instrumentation always on; reads aggregate the shards (see
// metrics.ShardedHistogram).
//
// The measured interval is decode→flush inside the platform: it excludes
// kernel/netstack queueing before the decoder saw the bytes, and for cache
// hits it is the in-cache serve time rather than a wire round trip.
type ServiceLatency struct {
	name  string
	total *metrics.ShardedHistogram

	// every is the reqlog sampling interval: every Nth completed request
	// emits one log line. 0 disables logging entirely — the per-request
	// cost is then a single atomic load.
	every atomic.Uint64
	seq   atomic.Uint64
}

// NewServiceLatency creates the latency signal for one service with one
// histogram shard per scheduler worker.
func NewServiceLatency(name string, workers int) *ServiceLatency {
	return &ServiceLatency{name: name, total: metrics.NewShardedHistogram(workers)}
}

// Total returns the service's end-to-end (decode→flush) histogram.
func (sl *ServiceLatency) Total() *metrics.ShardedHistogram { return sl.total }

// SetReqLog enables sampled per-request logging: one line per every Nth
// completed request (0 or negative disables). Unsampled requests cost two
// atomic operations and no allocations.
func (sl *ServiceLatency) SetReqLog(every int) {
	if every < 0 {
		every = 0
	}
	sl.every.Store(uint64(every))
}

// record adds one completed request observation from the given scheduler
// worker. The fast path (logging disabled) is the sharded Record plus one
// atomic load.
func (sl *ServiceLatency) record(worker int, d time.Duration) {
	sl.total.Record(worker, d)
	if n := sl.every.Load(); n != 0 {
		if sl.seq.Add(1)%n == 0 {
			log.Printf("reqlog service=%s worker=%d latency=%v", sl.name, worker, d)
		}
	}
}

// latencyRT is an instance's per-binding latency bookkeeping: a FIFO ring
// of decode timestamps. Proxy-style graphs answer each client in request
// order, so the stamp pushed when request k decodes is popped when response
// k encodes. Known skews, by protocol: memcached quiet gets decode a stamp
// but elicit no response (the leftover stamp inflates the next response's
// reading until the binding resets), and HTTP informational (1xx) responses
// pop one stamp early; pops on an empty ring are skipped. The ring's
// backing array is retained across Reset (only the contents clear), so
// steady-state push/pop allocates nothing.
type latencyRT struct {
	sl *ServiceLatency

	mu     sync.Mutex
	stamps []int64
	head   int
	n      int
}

// push appends one decode timestamp (monotonic ns, metrics.Now).
func (rt *latencyRT) push(stamp int64) {
	rt.mu.Lock()
	if rt.n == len(rt.stamps) {
		grown := make([]int64, max(16, 2*len(rt.stamps)))
		for i := 0; i < rt.n; i++ {
			grown[i] = rt.stamps[(rt.head+i)%len(rt.stamps)]
		}
		rt.stamps = grown
		rt.head = 0
	}
	rt.stamps[(rt.head+rt.n)%len(rt.stamps)] = stamp
	rt.n++
	rt.mu.Unlock()
}

// pop removes the oldest stamp; ok is false when the ring is empty (an
// uncorrelated response: pass-through with no tracked request).
func (rt *latencyRT) pop() (stamp int64, ok bool) {
	rt.mu.Lock()
	if rt.n == 0 {
		rt.mu.Unlock()
		return 0, false
	}
	stamp = rt.stamps[rt.head]
	rt.head = (rt.head + 1) % len(rt.stamps)
	rt.n--
	rt.mu.Unlock()
	return stamp, true
}

// reset clears the ring's contents, keeping its capacity for the next
// binding.
func (rt *latencyRT) reset() {
	rt.mu.Lock()
	rt.head = 0
	rt.n = 0
	rt.mu.Unlock()
}

// SetLatency installs the service's latency signal on this binding. Called
// by the dispatcher between pool Get and Start (like SetCache); the runtime
// persists across Reset — only the stamp ring clears. Graphs without a
// primary in/out port pair (nothing to correlate) are left uninstrumented.
func (inst *Instance) SetLatency(sl *ServiceLatency) {
	if sl == nil || inst.lrt != nil {
		return
	}
	for i := range inst.tmpl.ports {
		p := inst.tmpl.ports[i]
		if p.Primary && p.In >= 0 && p.Out >= 0 {
			inst.lrt = &latencyRT{sl: sl}
			return
		}
	}
}

// resetLatency clears the binding's stamp ring (from Reset).
func (inst *Instance) resetLatency() {
	if inst.lrt != nil {
		inst.lrt.reset()
	}
}
