package core

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"

	rcache "flick/internal/cache"
	"flick/internal/netstack"
	"flick/internal/upstream"
)

// Platform hosts FLICK programs: it owns the shared scheduler and the
// application dispatcher, which maps incoming connections to program
// instances by listening address (§5, Figure 2).
type Platform struct {
	sched     *Scheduler
	transport netstack.Transport

	mu       sync.Mutex
	services []*Service
	closed   bool
}

// Config configures a platform.
type Config struct {
	// Workers is the worker-thread count (<=0: GOMAXPROCS).
	Workers int
	// Policy is the scheduling discipline (zero value: Cooperative).
	Policy Policy
	// Transport carries all service traffic (nil: kernel TCP).
	Transport netstack.Transport
	// SchedOptions tweak the scheduler (ablations).
	SchedOptions []Option
}

// NewPlatform creates and starts a platform.
func NewPlatform(cfg Config) *Platform {
	pol := cfg.Policy
	if pol.Name == "" {
		pol = Cooperative
	}
	tr := cfg.Transport
	if tr == nil {
		tr = netstack.KernelTCP{}
	}
	p := &Platform{
		sched:     NewScheduler(cfg.Workers, pol, cfg.SchedOptions...),
		transport: tr,
	}
	p.sched.Start()
	return p
}

// Scheduler returns the platform's shared scheduler.
func (p *Platform) Scheduler() *Scheduler { return p.sched }

// Transport returns the platform's network stack.
func (p *Platform) Transport() netstack.Transport { return p.transport }

// Close shuts down every service and the scheduler.
func (p *Platform) Close() {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return
	}
	p.closed = true
	svcs := append([]*Service{}, p.services...)
	p.mu.Unlock()
	for _, s := range svcs {
		s.Close()
	}
	p.sched.Stop()
}

// Dispatch is how a service turns an accepted connection into running task
// graphs. PerConnection creates (or pools) one instance per connection;
// Shared attaches successive connections to one instance's ports in order.
type Dispatch int

// Dispatch modes.
const (
	// PerConnection gives every accepted connection its own task graph
	// ("Giving each client connection a new task graph ensures that
	// responses are routed back to the correct client", §4.1).
	PerConnection Dispatch = iota
	// Shared binds accepted connections to the next unbound port of a
	// single long-lived instance (the Hadoop aggregator's mappers).
	Shared
)

// ServiceConfig describes one deployed FLICK program.
type ServiceConfig struct {
	// Name identifies the service.
	Name string
	// ListenAddr is where the application dispatcher accepts clients.
	ListenAddr string
	// Template is the compiled task graph blueprint.
	Template *Template
	// Dispatch selects the instance-per-connection policy.
	Dispatch Dispatch
	// ClientPort is the port index bound to accepted connections
	// (PerConnection mode).
	ClientPort int
	// BackendAddrs maps port index → address to dial when an instance is
	// activated. Ports absent from the map (and != ClientPort) stay
	// unbound unless Shared dispatch assigns them.
	BackendAddrs map[int]string
	// BackendPorts lists, in channel-array element order, the port
	// indices available to a live Topology (PerConnection mode). Its
	// length is the compiled capacity: the topology may hold at most this
	// many backends, and ports beyond the current backend count stay
	// unbound until a scale-out.
	BackendPorts []int
	// Topology, when set, replaces the fixed BackendAddrs map with a live
	// backend set: each dispatch binds the current address list to
	// BackendPorts in order and routes keys through Topology.Route (see
	// Service.UpdateBackends for changing it while serving).
	Topology Topology
	// SharedPorts lists, for Shared dispatch, the port indices assigned
	// to successive accepted connections (in order).
	SharedPorts []int
	// PoolSize bounds the instance pool (PerConnection mode).
	PoolSize int
	// DisablePool forces fresh construction per connection (ablation).
	DisablePool bool
	// Upstreams, when set, replaces per-connection backend dials with
	// leases from the shared upstream connection layer: every BackendAddrs
	// port binds a multiplexed virtual connection instead of a fresh
	// socket, so the service holds O(pool×shards×backends) upstream
	// sockets instead of O(clients×backends). With a sharded manager
	// (upstream.Config.Shards > 1) each port's lease comes from the shard
	// of the scheduler worker that will write it — the home worker of the
	// port's output task (Instance.PortHomeWorker) — so the backend write
	// path never takes a lock contended by another core. The service owns
	// the manager and closes it on Service.Close. Nil keeps
	// per-connection dialling (the ablation baseline).
	Upstreams *upstream.Manager
	// Cache, when set, interposes the in-network response cache between
	// client decode and backend dispatch on every PerConnection instance:
	// hits are served from the executing worker's shard as retained
	// zero-copy views, concurrent misses for one key coalesce into a
	// single upstream round trip (see internal/cache). The service owns
	// the cache and closes it on Service.Close.
	Cache *rcache.Cache
}

// Service is a deployed program: a listener plus the graph dispatcher.
type Service struct {
	cfg      ServiceConfig
	platform *Platform
	listener net.Listener
	pool     *GraphPool

	// topo holds the live backend Topology (as a topoBox; see
	// topology.go). Dispatches snapshot it once; UpdateBackends swaps it
	// under topoMu so the upstream SetBackends + Store pair is atomic.
	topo   atomic.Value
	topoMu sync.Mutex

	// lat is the service's live latency signal, recorded by every
	// PerConnection instance (see ServiceLatency).
	lat *ServiceLatency

	mu      sync.Mutex
	shared  *Instance // Shared dispatch accumulator
	nextIdx int       // next SharedPorts slot
	closed  bool
	live    map[*Instance]struct{}
}

// Deploy starts serving cfg on the platform.
func (p *Platform) Deploy(cfg ServiceConfig) (*Service, error) {
	if err := cfg.Template.Validate(); err != nil {
		return nil, err
	}
	l, err := p.transport.Listen(cfg.ListenAddr)
	if err != nil {
		return nil, err
	}
	s := &Service{
		cfg:      cfg,
		platform: p,
		listener: l,
		pool:     NewGraphPool(cfg.Template, p.sched, cfg.PoolSize),
		live:     map[*Instance]struct{}{},
		lat:      NewServiceLatency(cfg.Name, p.sched.Workers()),
	}
	s.pool.Disabled = cfg.DisablePool
	if err := s.installTopology(&cfg); err != nil {
		l.Close()
		return nil, err
	}
	p.mu.Lock()
	p.services = append(p.services, s)
	p.mu.Unlock()
	go s.acceptLoop()
	return s, nil
}

// Addr returns the service's bound listen address.
func (s *Service) Addr() string { return s.listener.Addr().String() }

// Pool returns the service's graph pool (stats, priming).
func (s *Service) Pool() *GraphPool { return s.pool }

// Close stops accepting and aborts live instances: the Shared accumulator
// and every still-running PerConnection graph are shut down, so a
// subsequent Platform.Close never stops the scheduler under live graphs.
// The service's upstream layer (when bound) closes with it.
func (s *Service) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	shared := s.shared
	s.shared = nil
	live := make([]*Instance, 0, len(s.live))
	for inst := range s.live {
		live = append(live, inst)
	}
	s.mu.Unlock()
	s.listener.Close()
	if shared != nil {
		shared.Close()
	}
	for _, inst := range live {
		inst.Close()
	}
	if s.cfg.Upstreams != nil {
		s.cfg.Upstreams.Close()
	}
	if s.cfg.Cache != nil {
		s.cfg.Cache.Close()
	}
}

// Upstreams returns the service's shared upstream connection layer (nil
// when the service dials backends per connection).
func (s *Service) Upstreams() *upstream.Manager { return s.cfg.Upstreams }

// ResponseCache returns the service's in-network response cache (nil when
// caching is disabled).
func (s *Service) ResponseCache() *rcache.Cache { return s.cfg.Cache }

// Latency returns the service's live request-latency signal (always
// non-nil; it only populates for PerConnection graphs with a primary
// in/out port pair).
func (s *Service) Latency() *ServiceLatency { return s.lat }

// BackendCapacity returns the compiled channel-array capacity: the
// maximum backend count a topology update can install
// (len(ServiceConfig.BackendPorts)). Updates beyond it fail with
// ErrCapacity.
func (s *Service) BackendCapacity() int { return len(s.cfg.BackendPorts) }

// DumpLive renders every unfinished instance's runtime state (diagnostics).
func (s *Service) DumpLive() []string {
	s.mu.Lock()
	insts := make([]*Instance, 0, len(s.live))
	for i := range s.live {
		insts = append(insts, i)
	}
	s.mu.Unlock()
	out := make([]string, len(insts))
	for i, inst := range insts {
		out[i] = inst.DebugString()
	}
	return out
}

// acceptLoop is the application dispatcher: it hands each accepted
// connection to the graph dispatcher. PerConnection dispatch (pool
// checkout, backend dials, instance start) runs concurrently so connection
// setup cost never serialises accepts; Shared dispatch stays in accept
// order, since mapper→port assignment is positional.
func (s *Service) acceptLoop() {
	for {
		conn, err := s.listener.Accept()
		if err != nil {
			return
		}
		if s.cfg.Dispatch == PerConnection {
			go func(conn net.Conn) {
				if err := s.dispatch(conn); err != nil {
					conn.Close()
				}
			}(conn)
			continue
		}
		if err := s.dispatch(conn); err != nil {
			conn.Close()
		}
	}
}

// dispatch is the graph dispatcher (§5: "assigns incoming connections to
// task graphs, instantiating a new one if none suitable exists").
func (s *Service) dispatch(conn net.Conn) error {
	switch s.cfg.Dispatch {
	case PerConnection:
		return s.dispatchPerConn(conn)
	case Shared:
		return s.dispatchShared(conn)
	}
	return fmt.Errorf("core: unknown dispatch mode %d", s.cfg.Dispatch)
}

func (s *Service) dispatchPerConn(conn net.Conn) error {
	inst := s.pool.Get()
	inst.Bind(s.cfg.ClientPort, conn)
	// Connect backends ("The graph dispatcher also creates new output
	// channel connections to forward processed traffic") — by leasing a
	// multiplexed session from the shared upstream layer when bound, by
	// dialling a dedicated socket otherwise; with a live Topology the
	// current snapshot picks the addresses and the routing function.
	if err := s.bindBackends(inst); err != nil {
		// Scale-in race: this dispatch snapshotted a topology just as
		// UpdateBackends retired one of its backends, so the lease found
		// the pool already draining. The fresh snapshot no longer lists
		// that backend — rebind against it once instead of dropping the
		// client connection.
		if errors.Is(err, upstream.ErrRetired) {
			s.unbindBackends(inst)
			// Serialise with the in-flight UpdateBackends before
			// re-snapshotting: its SetBackends (which retired our lease)
			// runs before its topology Store, both under topoMu — passing
			// through the mutex guarantees the Store has landed and the
			// retry binds the genuinely fresh snapshot.
			s.topoMu.Lock()
			//nolint:staticcheck // empty section: a memory barrier, not a region
			s.topoMu.Unlock()
			err = s.bindBackends(inst)
		}
		if err != nil {
			s.releaseUnstarted(inst)
			return err
		}
	}
	// Publish into the live set only once fully bound: Service.Close reads
	// inst.conns (via Instance.Close) for everything it finds in s.live,
	// so a half-bound instance must not be visible there.
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		s.releaseUnstarted(inst)
		return fmt.Errorf("core: service closed")
	}
	s.live[inst] = struct{}{}
	s.mu.Unlock()
	inst.SetCache(s.cfg.Cache)
	inst.SetLatency(s.lat)
	inst.SetOnFinish(func(i *Instance) {
		s.mu.Lock()
		closed := s.closed
		delete(s.live, i)
		s.mu.Unlock()
		// A closing service drops finished instances instead of recycling:
		// Service.Close may still hold this instance in its teardown
		// snapshot, and Put's Reset must never race that teardown.
		if !closed {
			s.pool.Put(i)
		}
	})
	inst.Start()
	return nil
}

// dialBackend resolves one backend connection for a dispatch. worker is
// the home scheduler worker of the task that will write the connection:
// a sharded upstream manager leases from that worker's shard, keeping the
// write path — framing, FIFO reservation, vectored write — core-local.
func (s *Service) dialBackend(addr string, worker int) (net.Conn, error) {
	if s.cfg.Upstreams != nil {
		return s.cfg.Upstreams.LeaseOn(addr, worker)
	}
	return s.platform.transport.Dial(addr)
}

// unbindBackends closes and clears every backend connection bound so far
// (the client port is untouched), returning the instance to a state where
// bindBackends can run again — the retry path of the scale-in dispatch
// race.
func (s *Service) unbindBackends(inst *Instance) {
	for port, c := range inst.conns {
		if c == nil || port == s.cfg.ClientPort {
			continue
		}
		c.Close()
		inst.Bind(port, nil)
	}
}

// releaseUnstarted returns an instance whose dispatch failed before Start
// to the pool. The instance's tasks never ran, so the onFinish path will
// never fire on its own: close the connections bound so far, drop the
// instance from the live set and recycle it explicitly.
func (s *Service) releaseUnstarted(inst *Instance) {
	s.mu.Lock()
	delete(s.live, inst)
	s.mu.Unlock()
	inst.SetOnFinish(nil)
	inst.Close() // closes bound conns; task wakeups stay gated by active
	s.pool.Put(inst)
}

func (s *Service) dispatchShared(conn net.Conn) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return fmt.Errorf("core: service closed")
	}
	if s.shared == nil {
		inst := NewInstance(s.cfg.Template, s.platform.sched)
		for port, addr := range s.cfg.BackendAddrs {
			bc, err := s.platform.transport.Dial(addr)
			if err != nil {
				inst.Close()
				return fmt.Errorf("core: dial backend %s: %w", addr, err)
			}
			inst.Bind(port, bc)
		}
		s.shared = inst
		s.nextIdx = 0
	}
	if s.nextIdx >= len(s.cfg.SharedPorts) {
		return fmt.Errorf("core: all %d shared ports bound", len(s.cfg.SharedPorts))
	}
	port := s.cfg.SharedPorts[s.nextIdx]
	s.nextIdx++
	s.shared.Bind(port, conn)
	if s.nextIdx == len(s.cfg.SharedPorts) {
		inst := s.shared
		// Allow a fresh accumulator for the next wave of connections.
		s.shared = nil
		inst.Start()
	}
	return nil
}
