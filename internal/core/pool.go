package core

import (
	"sync"
	"sync/atomic"
)

// GraphPool is the graph dispatcher's pre-allocated pool of instances (§5).
// Get reuses a finished instance when available, otherwise builds a fresh
// one; Put resets and retains up to Cap instances.
type GraphPool struct {
	tmpl  *Template
	sched *Scheduler
	cap   int

	mu   sync.Mutex
	free []*Instance

	// Disabled makes Get always construct (the pooling ablation).
	Disabled bool

	hits   atomic.Uint64
	builds atomic.Uint64
}

// NewGraphPool creates a pool bounded at capacity instances (default 256
// when <= 0).
func NewGraphPool(tmpl *Template, sched *Scheduler, capacity int) *GraphPool {
	if capacity <= 0 {
		capacity = 256
	}
	return &GraphPool{tmpl: tmpl, sched: sched, cap: capacity}
}

// Prime pre-allocates n pooled instances.
func (p *GraphPool) Prime(n int) {
	p.mu.Lock()
	defer p.mu.Unlock()
	for len(p.free) < n && len(p.free) < p.cap {
		p.free = append(p.free, NewInstance(p.tmpl, p.sched))
	}
}

// Get returns a ready-to-bind instance.
func (p *GraphPool) Get() *Instance {
	if !p.Disabled {
		p.mu.Lock()
		if n := len(p.free); n > 0 {
			inst := p.free[n-1]
			p.free = p.free[:n-1]
			p.mu.Unlock()
			p.hits.Add(1)
			return inst
		}
		p.mu.Unlock()
	}
	p.builds.Add(1)
	return NewInstance(p.tmpl, p.sched)
}

// Put resets inst and returns it to the pool (or drops it when full).
func (p *GraphPool) Put(inst *Instance) {
	if p.Disabled {
		return
	}
	inst.Reset()
	p.mu.Lock()
	if len(p.free) < p.cap {
		p.free = append(p.free, inst)
	}
	p.mu.Unlock()
}

// Stats reports pool reuse counters.
type PoolStats struct {
	Hits   uint64 // instances served from the pool
	Builds uint64 // instances constructed
}

// Stats returns a snapshot.
func (p *GraphPool) Stats() PoolStats {
	return PoolStats{Hits: p.hits.Load(), Builds: p.builds.Load()}
}
