package core

import (
	"net"
	"testing"
	"time"

	"flick/internal/buffer"
	"flick/internal/netstack"
	"flick/internal/upstream"
)

// lineFramer frames newline-terminated messages (the test protocol of the
// proxy template's lineCodec).
func lineFramer(q *buffer.Queue, from int) (int, error) {
	n := q.Len()
	var b [1]byte
	for i := from; i < n; i++ {
		q.PeekAt(b[:], i)
		if b[0] == '\n' {
			return i - from + 1, nil
		}
	}
	return 0, nil
}

// lineEchoBackend echoes every byte back (one line in, the same line out).
func lineEchoBackend(t *testing.T, u *netstack.UserNet, addr string) net.Listener {
	t.Helper()
	l, err := u.Listen(addr)
	if err != nil {
		t.Fatal(err)
	}
	go func() {
		for {
			c, err := l.Accept()
			if err != nil {
				return
			}
			go func(c net.Conn) {
				defer c.Close()
				buf := make([]byte, 4096)
				for {
					n, err := c.Read(buf)
					if n > 0 {
						if _, werr := c.Write(buf[:n]); werr != nil {
							return
						}
					}
					if err != nil {
						return
					}
				}
			}(c)
		}
	}()
	return l
}

// staticTopo is a fixed single-backend Topology.
type staticTopo struct{ addrs []string }

func (s staticTopo) Backends() []string { return s.addrs }
func (s staticTopo) Route(int64) int    { return 0 }

// TestDispatchRetriesRetiredLeaseAgainstFreshSnapshot pins the scale-in
// dispatch race deterministically (ROADMAP: a dispatch that snapshots the
// old topology just as a backend is removed has its lease refused with
// ErrRetired and used to drop the client connection). The test freezes a
// live service exactly in the middle of an UpdateBackends — the upstream
// SetBackends has retired the old backend, the topology Store has not yet
// landed (topoMu held) — then connects a client. The dispatch is
// guaranteed to snapshot the stale topology, lease the retired backend
// and fail; the retry must wait out the update (topoMu barrier) and bind
// the fresh snapshot, so the client is served by the new backend instead
// of being dropped.
func TestDispatchRetriesRetiredLeaseAgainstFreshSnapshot(t *testing.T) {
	u := netstack.NewUserNet()
	p := startPlatform(t, u)
	defer lineEchoBackend(t, u, "ret:a").Close()
	defer lineEchoBackend(t, u, "ret:b").Close()

	mgr := upstream.NewManager(upstream.Config{
		Transport:      u,
		Shards:         2,
		RequestFramer:  upstream.StatelessRequest(lineFramer),
		ResponseFramer: upstream.StatelessResponse(lineFramer),
	})
	svc, err := p.Deploy(ServiceConfig{
		Name:         "retry-proxy",
		ListenAddr:   "retry:1",
		Template:     proxyTemplate(t),
		Dispatch:     PerConnection,
		ClientPort:   0,
		BackendPorts: []int{1},
		Topology:     staticTopo{[]string{"ret:a"}},
		Upstreams:    mgr,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()

	// Freeze an UpdateBackends mid-flight: backend a is retired in the
	// upstream layer, but the service still routes and binds the stale
	// topology until the Store below lands.
	svc.topoMu.Lock()
	mgr.SetBackends([]string{"ret:b"})

	type result struct {
		line string
		err  error
	}
	done := make(chan result, 1)
	go func() {
		conn, err := u.Dial("retry:1")
		if err != nil {
			done <- result{err: err}
			return
		}
		defer conn.Close()
		if _, err := conn.Write([]byte("ping\n")); err != nil {
			done <- result{err: err}
			return
		}
		conn.SetReadDeadline(time.Now().Add(5 * time.Second))
		buf := make([]byte, 64)
		n, err := conn.Read(buf)
		done <- result{line: string(buf[:n]), err: err}
	}()

	// Give the dispatch time to snapshot the stale topology, fail its
	// lease with ErrRetired and park on the retry's topoMu barrier, then
	// complete the update.
	time.Sleep(50 * time.Millisecond)
	select {
	case r := <-done:
		t.Fatalf("client finished before the topology update completed: %+v", r)
	default:
	}
	svc.topo.Store(topoBox{staticTopo{[]string{"ret:b"}}})
	svc.topoMu.Unlock()

	r := <-done
	if r.err != nil {
		t.Fatalf("client dropped across the scale-in dispatch race: %v", r.err)
	}
	if r.line != "ping\n" {
		t.Fatalf("client got %q, want %q", r.line, "ping\n")
	}
}
