package core

import (
	"math/bits"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"flick/internal/metrics"
)

// Policy is a scheduling discipline (§6.4 evaluates three).
type Policy struct {
	// Name identifies the policy in benchmark output.
	Name string
	// Quantum is the timeslice threshold: a task exceeding it re-enters
	// the scheduler (paper: "typically, 10–100 µs"). Zero disables the
	// bound.
	Quantum time.Duration
	// MaxItems bounds the number of input items per activation. Zero
	// disables the bound.
	MaxItems int
}

// The three policies from §6.4.
var (
	// Cooperative is FLICK's policy: fixed CPU quantum, then yield.
	Cooperative = Policy{Name: "cooperative", Quantum: 50 * time.Microsecond}
	// NonCooperative runs a scheduled task until it exhausts its input.
	NonCooperative = Policy{Name: "non-cooperative"}
	// RoundRobin schedules each task for one data item only.
	RoundRobin = Policy{Name: "round-robin", MaxItems: 1}
)

// CooperativeQuantum returns the cooperative policy with a custom quantum
// (the timeslice ablation experiment).
func CooperativeQuantum(q time.Duration) Policy {
	return Policy{Name: "cooperative", Quantum: q}
}

// Scheduler runs tasks on a fixed pool of worker goroutines, one per
// configured core (§5). The design is sharded for low contention:
//
//   - Each worker owns a lock-free Chase–Lev deque. Only the owner touches
//     the bottom; idle workers steal from the top with a single CAS.
//   - Every Schedule goes through the target worker's bounded MPSC-style
//     overflow inbox (callers generally run on arbitrary goroutines, so
//     they may never touch a deque bottom). The owner drains its inbox a
//     batch at a time into its private deque so subsequent pops are
//     contention-free and thieves have something to steal; batches are
//     served in FIFO order (LIFO within a batch), bounding how long any
//     task can wait behind later arrivals to drainBatch activations.
//   - Task→worker affinity is a hash of the task id (§5); WithoutAffinity
//     funnels everything through worker 0's inbox instead (ablation).
//   - Idle workers park individually on a per-worker condition variable.
//     An atomic idle bitmap lets producers wake exactly one sleeper with a
//     claim CAS instead of broadcasting to the whole pool.
type Scheduler struct {
	workers []*worker
	policy  Policy
	// affinity false routes every schedule through worker 0's inbox
	// (ablation: the value of per-worker queues).
	affinity bool

	// idle is the worker-parking bitmap: bit w of word w/64 is set while
	// worker w is parked (or committing to park). Producers claim a
	// sleeper by CASing its bit away before signalling it.
	idle []atomic.Uint64

	stopped atomic.Bool
	wg      sync.WaitGroup

	overflow atomic.Uint64 // inbox-ring overflows into the spill list
	wakeups  atomic.Uint64
}

// worker is one scheduler shard: a goroutine, its run queues, its parking
// brake, and its contention-free counters.
type worker struct {
	dq    *deque
	inbox *inbox

	parkMu   sync.Mutex
	parkCond *sync.Cond
	notified bool

	// tick counts find calls (owner-only). Every fairnessTick-th find
	// services foreign queues before local ones, so a worker whose own
	// queues never drain (a yield-requeue loop) cannot indefinitely
	// starve tasks stranded on another worker's queues — e.g. the home
	// worker is wedged in a long activation, or exited at Stop.
	tick uint32

	// Per-worker counters keep the hot path off shared cache lines; Stats
	// sums them. scheduled counts enqueues TARGETING this worker — the
	// enqueuer already touches this worker's inbox line in the same
	// operation, so the count adds no new cross-core traffic. The padding
	// separates adjacent workers' counters.
	executed  atomic.Uint64
	stolen    atomic.Uint64
	parks     atomic.Uint64
	scheduled atomic.Uint64
	_         [4]uint64 // pad to a cache line with the counters above
}

func newWorker() *worker {
	w := &worker{dq: newDeque(), inbox: newInbox()}
	w.parkCond = sync.NewCond(&w.parkMu)
	return w
}

// drainBatch is how many extra inbox tasks the owner moves into its deque
// per drain: enough to amortise the inbox CAS and feed thieves, small
// enough to keep FIFO batches short (fairness between yielding tasks).
const drainBatch = 16

// fairnessTick bounds cross-worker starvation: every fairnessTick-th find
// looks at foreign queues first (the same 1-in-61 idiom the Go runtime
// uses for its global run queue; 61 is prime so the tick does not resonate
// with workload periodicity).
const fairnessTick = 61

// Option configures a scheduler.
type Option func(*Scheduler)

// WithoutAffinity funnels all tasks through worker 0's inbox, relying on
// stealing to spread load (ablation baseline).
func WithoutAffinity() Option {
	return func(s *Scheduler) { s.affinity = false }
}

// NewScheduler creates a scheduler with nWorkers worker goroutines (<=0
// selects GOMAXPROCS) under the given policy. Call Start to run it.
func NewScheduler(nWorkers int, policy Policy, opts ...Option) *Scheduler {
	if nWorkers <= 0 {
		nWorkers = runtime.GOMAXPROCS(0)
	}
	s := &Scheduler{policy: policy, affinity: true}
	for i := 0; i < nWorkers; i++ {
		s.workers = append(s.workers, newWorker())
	}
	s.idle = make([]atomic.Uint64, (nWorkers+63)/64)
	for _, o := range opts {
		o(s)
	}
	return s
}

// Workers returns the worker count.
func (s *Scheduler) Workers() int { return len(s.workers) }

// Policy returns the scheduling policy.
func (s *Scheduler) Policy() Policy { return s.policy }

// SchedStats reports cumulative scheduling activity.
type SchedStats struct {
	Scheduled uint64 // tasks enqueued
	Executed  uint64 // task activations
	Stolen    uint64 // activations run off the task's home worker
	Parks     uint64 // times a worker went to sleep
	Wakeups   uint64 // targeted unparks issued by producers
	Overflow  uint64 // inbox pushes that overflowed the ring into the spill
}

// Stats returns a snapshot of scheduler counters.
func (s *Scheduler) Stats() SchedStats {
	st := SchedStats{
		Wakeups:  s.wakeups.Load(),
		Overflow: s.overflow.Load(),
	}
	for _, w := range s.workers {
		st.Scheduled += w.scheduled.Load()
		st.Executed += w.executed.Load()
		st.Stolen += w.stolen.Load()
		st.Parks += w.parks.Load()
	}
	return st
}

// Metrics renders the stats snapshot as an ordered metrics counter set
// (benchmark tables, flickbench reporting).
func (st SchedStats) Metrics() metrics.CounterSet {
	return metrics.NewCounterSet(
		"scheduled", st.Scheduled,
		"executed", st.Executed,
		"stolen", st.Stolen,
		"parks", st.Parks,
		"wakeups", st.Wakeups,
		"overflow", st.Overflow,
	)
}

// Start launches the worker goroutines.
func (s *Scheduler) Start() {
	for i := range s.workers {
		s.wg.Add(1)
		go s.workerLoop(i)
	}
}

// Stop terminates the workers. Queued tasks are abandoned.
func (s *Scheduler) Stop() {
	s.stopped.Store(true)
	for _, w := range s.workers {
		w.unpark()
	}
	s.wg.Wait()
}

// NewTask registers a new task under this scheduler and assigns its home
// worker by identifier hash (§5: "a hash over this identifier determines
// which worker's task queue the task should be assigned to").
func (s *Scheduler) NewTask(name string, fn TaskFunc) *Task {
	t := newTask(name, fn)
	t.home = int(t.id % uint64(len(s.workers)))
	return t
}

// Schedule makes t runnable. It is safe to call from any goroutine,
// including concurrently with t running (the task transitions to
// RunningDirty and is requeued when its current activation finishes).
func (s *Scheduler) Schedule(t *Task) {
	if t == nil || t.done.Load() {
		return
	}
	for {
		st := TaskState(t.state.Load())
		switch st {
		case TaskIdle:
			if t.state.CompareAndSwap(int32(TaskIdle), int32(TaskQueued)) {
				s.enqueue(t)
				return
			}
		case TaskRunning:
			if t.state.CompareAndSwap(int32(TaskRunning), int32(TaskRunningDirty)) {
				return
			}
		case TaskQueued, TaskRunningDirty:
			return
		}
	}
}

// enqueue hands t to its target worker's inbox and wakes a sleeper if one
// exists. The push must complete before the idle-bitmap read: paired with
// the worker publishing its idle bit before its final queue recheck, the
// sequentially consistent atomics guarantee at least one side observes the
// other, so no wakeup is lost.
func (s *Scheduler) enqueue(t *Task) { s.enqueueFrom(t, -1) }

// enqueueFrom is enqueue with the calling worker's id (-1 when the caller
// is not a worker). A worker requeueing onto its own inbox skips the
// wakeup: it is awake and finds the task on its next loop, and waking a
// sleeper here would just migrate the task off its home worker.
func (s *Scheduler) enqueueFrom(t *Task, from int) {
	target := 0
	if s.affinity {
		target = t.home
	}
	tw := s.workers[target]
	tw.scheduled.Add(1)
	if !tw.inbox.push(t) {
		s.overflow.Add(1)
	}
	if from != target {
		s.wakeOne(target)
	}
}

// wakeOne claims one parked worker (preferring the task's target) and
// signals it. Claiming via CAS on the idle bitmap means each enqueue wakes
// at most one sleeper — no thundering broadcast.
func (s *Scheduler) wakeOne(prefer int) {
	if w, ok := s.claimIdle(prefer); ok {
		s.wakeups.Add(1)
		s.workers[w].unpark()
	}
}

// claimIdle finds a set bit in the idle bitmap and clears it atomically.
func (s *Scheduler) claimIdle(prefer int) (int, bool) {
	// Fast preference: the task's own worker, for cache affinity.
	if s.tryClaim(prefer) {
		return prefer, true
	}
	for wi := range s.idle {
		for {
			word := s.idle[wi].Load()
			if word == 0 {
				break
			}
			bit := word & (-word) // lowest set bit
			if s.idle[wi].CompareAndSwap(word, word&^bit) {
				return wi*64 + bits.TrailingZeros64(bit), true
			}
			// CAS lost: another producer claimed concurrently; reload.
		}
	}
	return 0, false
}

func (s *Scheduler) tryClaim(w int) bool {
	wi, bit := w/64, uint64(1)<<(uint(w)%64)
	for {
		word := s.idle[wi].Load()
		if word&bit == 0 {
			return false
		}
		if s.idle[wi].CompareAndSwap(word, word&^bit) {
			return true
		}
	}
}

// setIdle publishes worker w as parked (or committing to park).
func (s *Scheduler) setIdle(w int) {
	wi, bit := w/64, uint64(1)<<(uint(w)%64)
	for {
		word := s.idle[wi].Load()
		if s.idle[wi].CompareAndSwap(word, word|bit) {
			return
		}
	}
}

// clearIdle withdraws worker w's parked bit. Reports whether this call
// cleared it; false means a producer already claimed the worker, so a
// notification token is (or will shortly be) pending.
func (s *Scheduler) clearIdle(w int) bool {
	wi, bit := w/64, uint64(1)<<(uint(w)%64)
	for {
		word := s.idle[wi].Load()
		if word&bit == 0 {
			return false
		}
		if s.idle[wi].CompareAndSwap(word, word&^bit) {
			return true
		}
	}
}

// unpark delivers a notification token to the worker, waking it if parked.
// Tokens are sticky: delivered before the worker parks, they turn the next
// park into a no-op instead of being lost.
func (w *worker) unpark() {
	w.parkMu.Lock()
	w.notified = true
	w.parkCond.Signal()
	w.parkMu.Unlock()
}

// park blocks until a notification token arrives (or consumes a pending
// one immediately).
func (w *worker) park() {
	w.parkMu.Lock()
	for !w.notified {
		w.parkCond.Wait()
	}
	w.notified = false
	w.parkMu.Unlock()
}

// find returns the next task for worker wid:
//
//  1. its own deque (contention-free owner pop);
//  2. its own inbox, draining a batch into the deque;
//  3. under WithoutAffinity, the shared inbox on worker 0;
//  4. a stealing sweep over every other worker's deque, then inbox.
//
// Every fairnessTick-th call inverts the order — foreign queues first — so
// a worker whose own queues are kept permanently non-empty by requeueing
// tasks still services work stranded on other workers' queues.
func (s *Scheduler) find(wid int) *Task {
	me := s.workers[wid]
	me.tick++
	if me.tick%fairnessTick == 0 {
		if t := s.stealSweep(wid); t != nil {
			return t
		}
	}
	if t := me.dq.popBottom(); t != nil {
		return t
	}
	if t := s.drainInbox(wid); t != nil {
		return t
	}
	if !s.affinity && wid != 0 {
		if t := s.workers[0].inbox.pop(); t != nil {
			me.stolen.Add(1)
			return t
		}
	}
	return s.stealSweep(wid)
}

// stealSweep scans every other worker's deque, then inbox, for work.
func (s *Scheduler) stealSweep(wid int) *Task {
	me := s.workers[wid]
	n := len(s.workers)
	for off := 1; off < n; off++ {
		v := s.workers[(wid+off)%n]
		if t := v.dq.steal(); t != nil {
			me.stolen.Add(1)
			return t
		}
		if t := v.inbox.pop(); t != nil {
			me.stolen.Add(1)
			return t
		}
	}
	return nil
}

// drainInbox pops the oldest inbox task for worker wid and moves up to
// drainBatch more into the worker's private deque. The batch keeps later
// pops off the shared ring and exposes queued work to thieves. The owner
// pops the moved batch LIFO (deque bottom) while thieves see FIFO (top);
// owner-side unfairness is bounded by the batch size.
func (s *Scheduler) drainInbox(wid int) *Task {
	me := s.workers[wid]
	t := me.inbox.pop()
	if t == nil {
		return nil
	}
	for i := 0; i < drainBatch; i++ {
		extra := me.inbox.pop()
		if extra == nil {
			break
		}
		me.dq.pushBottom(extra)
	}
	return t
}

func (s *Scheduler) workerLoop(wid int) {
	defer s.wg.Done()
	me := s.workers[wid]
	for {
		t := s.find(wid)
		if t == nil {
			if s.stopped.Load() {
				return
			}
			// Publish the idle bit BEFORE the final recheck: any producer
			// whose push lands after our recheck must then observe the bit
			// and claim us (see enqueue).
			s.setIdle(wid)
			if t = s.find(wid); t == nil && !s.stopped.Load() {
				me.parks.Add(1)
				me.park()
				continue
			}
			// Found work (or stopping) after all: withdraw the bit. If a
			// producer already claimed it, a sticky token is pending and
			// the next park will return immediately — benign.
			s.clearIdle(wid)
			if t == nil {
				return
			}
		}
		s.run(t, wid)
	}
}

// run executes one activation of t on worker wid.
func (s *Scheduler) run(t *Task, wid int) {
	if !t.state.CompareAndSwap(int32(TaskQueued), int32(TaskRunning)) {
		return // defensive: stale pointer in a queue
	}
	// A Schedule call may have read done==false, lost the race with the
	// task's final activation, and enqueued it again; the done flag is
	// stored before the state returns to Idle, so this check is reliable.
	if t.done.Load() {
		t.state.Store(int32(TaskIdle))
		return
	}
	me := s.workers[wid]
	me.executed.Add(1)
	t.runs.Add(1)
	ctx := ExecCtx{
		sched:    s,
		task:     t,
		worker:   wid,
		started:  time.Now(),
		quantum:  s.policy.Quantum,
		maxItems: s.policy.MaxItems,
	}
	res := t.fn(&ctx)
	t.itemsRun.Add(uint64(ctx.items))

	if res == RunDone {
		t.done.Store(true)
		t.state.Store(int32(TaskIdle))
		if t.onDone != nil {
			t.onDone()
		}
		return
	}
	requeue := res == RunYield
	if requeue {
		t.yields.Add(1)
	}
	// Finish the activation: RunningDirty means new data arrived mid-run.
	if !requeue {
		if t.state.CompareAndSwap(int32(TaskRunning), int32(TaskIdle)) {
			return
		}
		requeue = true // was RunningDirty
	}
	t.state.Store(int32(TaskQueued))
	s.enqueueFrom(t, wid)
}
