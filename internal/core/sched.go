package core

import (
	"runtime"
	"sync"
	"sync/atomic"
	"time"
)

// Policy is a scheduling discipline (§6.4 evaluates three).
type Policy struct {
	// Name identifies the policy in benchmark output.
	Name string
	// Quantum is the timeslice threshold: a task exceeding it re-enters
	// the scheduler (paper: "typically, 10–100 µs"). Zero disables the
	// bound.
	Quantum time.Duration
	// MaxItems bounds the number of input items per activation. Zero
	// disables the bound.
	MaxItems int
}

// The three policies from §6.4.
var (
	// Cooperative is FLICK's policy: fixed CPU quantum, then yield.
	Cooperative = Policy{Name: "cooperative", Quantum: 50 * time.Microsecond}
	// NonCooperative runs a scheduled task until it exhausts its input.
	NonCooperative = Policy{Name: "non-cooperative"}
	// RoundRobin schedules each task for one data item only.
	RoundRobin = Policy{Name: "round-robin", MaxItems: 1}
)

// CooperativeQuantum returns the cooperative policy with a custom quantum
// (the timeslice ablation experiment).
func CooperativeQuantum(q time.Duration) Policy {
	return Policy{Name: "cooperative", Quantum: q}
}

// Scheduler runs tasks on a fixed pool of worker goroutines, one per
// configured core, with per-worker FIFO queues, task→worker affinity by
// task-id hash, and work scavenging from other queues when idle (§5).
type Scheduler struct {
	workers []*workerQueue
	policy  Policy
	// Affinity false routes every schedule to a single shared queue
	// (ablation: the value of per-worker queues).
	affinity bool

	mu       sync.Mutex
	cond     *sync.Cond
	sleeping int
	stopped  bool
	wg       sync.WaitGroup

	scheduled atomic.Uint64
	stolen    atomic.Uint64
	executed  atomic.Uint64
}

// workerQueue is one worker's FIFO run queue.
type workerQueue struct {
	mu    sync.Mutex
	tasks []*Task // simple slice FIFO; head at index 0
}

func (w *workerQueue) push(t *Task) {
	w.mu.Lock()
	w.tasks = append(w.tasks, t)
	w.mu.Unlock()
}

func (w *workerQueue) pop() *Task {
	w.mu.Lock()
	if len(w.tasks) == 0 {
		w.mu.Unlock()
		return nil
	}
	t := w.tasks[0]
	copy(w.tasks, w.tasks[1:])
	w.tasks = w.tasks[:len(w.tasks)-1]
	w.mu.Unlock()
	return t
}

// Option configures a scheduler.
type Option func(*Scheduler)

// WithoutAffinity funnels all tasks through worker 0's queue, relying on
// stealing to spread load (ablation baseline).
func WithoutAffinity() Option {
	return func(s *Scheduler) { s.affinity = false }
}

// NewScheduler creates a scheduler with nWorkers worker goroutines (<=0
// selects GOMAXPROCS) under the given policy. Call Start to run it.
func NewScheduler(nWorkers int, policy Policy, opts ...Option) *Scheduler {
	if nWorkers <= 0 {
		nWorkers = runtime.GOMAXPROCS(0)
	}
	s := &Scheduler{policy: policy, affinity: true}
	s.cond = sync.NewCond(&s.mu)
	for i := 0; i < nWorkers; i++ {
		s.workers = append(s.workers, &workerQueue{})
	}
	for _, o := range opts {
		o(s)
	}
	return s
}

// Workers returns the worker count.
func (s *Scheduler) Workers() int { return len(s.workers) }

// Policy returns the scheduling policy.
func (s *Scheduler) Policy() Policy { return s.policy }

// Stats reports cumulative scheduling activity.
type SchedStats struct {
	Scheduled uint64 // tasks enqueued
	Executed  uint64 // task activations
	Stolen    uint64 // activations run off the task's home worker
}

// Stats returns a snapshot of scheduler counters.
func (s *Scheduler) Stats() SchedStats {
	return SchedStats{
		Scheduled: s.scheduled.Load(),
		Executed:  s.executed.Load(),
		Stolen:    s.stolen.Load(),
	}
}

// Start launches the worker goroutines.
func (s *Scheduler) Start() {
	for i := range s.workers {
		s.wg.Add(1)
		go s.workerLoop(i)
	}
}

// Stop terminates the workers. Queued tasks are abandoned.
func (s *Scheduler) Stop() {
	s.mu.Lock()
	s.stopped = true
	s.cond.Broadcast()
	s.mu.Unlock()
	s.wg.Wait()
}

// NewTask registers a new task under this scheduler and assigns its home
// worker by identifier hash (§5: "a hash over this identifier determines
// which worker's task queue the task should be assigned to").
func (s *Scheduler) NewTask(name string, fn TaskFunc) *Task {
	t := newTask(name, fn)
	t.home = int(t.id % uint64(len(s.workers)))
	return t
}

// Schedule makes t runnable. It is safe to call from any goroutine,
// including concurrently with t running (the task transitions to
// RunningDirty and is requeued when its current activation finishes).
func (s *Scheduler) Schedule(t *Task) {
	if t == nil || t.done.Load() {
		return
	}
	for {
		st := TaskState(t.state.Load())
		switch st {
		case TaskIdle:
			if t.state.CompareAndSwap(int32(TaskIdle), int32(TaskQueued)) {
				s.scheduled.Add(1)
				s.enqueue(t)
				return
			}
		case TaskRunning:
			if t.state.CompareAndSwap(int32(TaskRunning), int32(TaskRunningDirty)) {
				return
			}
		case TaskQueued, TaskRunningDirty:
			return
		}
	}
}

func (s *Scheduler) enqueue(t *Task) {
	w := 0
	if s.affinity {
		w = t.home
	}
	s.workers[w].push(t)
	s.mu.Lock()
	if s.sleeping > 0 {
		s.cond.Signal()
	}
	s.mu.Unlock()
}

// find returns the next task for worker wid: its own queue first, then a
// scavenging sweep over the other queues.
func (s *Scheduler) find(wid int) *Task {
	if t := s.workers[wid].pop(); t != nil {
		return t
	}
	n := len(s.workers)
	for off := 1; off < n; off++ {
		if t := s.workers[(wid+off)%n].pop(); t != nil {
			s.stolen.Add(1)
			return t
		}
	}
	return nil
}

func (s *Scheduler) workerLoop(wid int) {
	defer s.wg.Done()
	for {
		t := s.find(wid)
		if t == nil {
			s.mu.Lock()
			if s.stopped {
				s.mu.Unlock()
				return
			}
			// Re-check under the sleep lock: any enqueue after this
			// point must acquire s.mu to signal and will wake us.
			if t = s.find(wid); t == nil {
				s.sleeping++
				s.cond.Wait()
				s.sleeping--
				s.mu.Unlock()
				continue
			}
			s.mu.Unlock()
		}
		s.run(t, wid)
	}
}

// run executes one activation of t on worker wid.
func (s *Scheduler) run(t *Task, wid int) {
	if !t.state.CompareAndSwap(int32(TaskQueued), int32(TaskRunning)) {
		return // defensive: stale pointer in a queue
	}
	// A Schedule call may have read done==false, lost the race with the
	// task's final activation, and enqueued it again; the done flag is
	// stored before the state returns to Idle, so this check is reliable.
	if t.done.Load() {
		t.state.Store(int32(TaskIdle))
		return
	}
	s.executed.Add(1)
	t.runs.Add(1)
	ctx := ExecCtx{
		sched:    s,
		task:     t,
		worker:   wid,
		started:  time.Now(),
		quantum:  s.policy.Quantum,
		maxItems: s.policy.MaxItems,
	}
	res := t.fn(&ctx)
	t.itemsRun.Add(uint64(ctx.items))

	if res == RunDone {
		t.done.Store(true)
		t.state.Store(int32(TaskIdle))
		if t.onDone != nil {
			t.onDone()
		}
		return
	}
	requeue := res == RunYield
	if requeue {
		t.yields.Add(1)
	}
	// Finish the activation: RunningDirty means new data arrived mid-run.
	if !requeue {
		if t.state.CompareAndSwap(int32(TaskRunning), int32(TaskIdle)) {
			return
		}
		requeue = true // was RunningDirty
	}
	t.state.Store(int32(TaskQueued))
	s.scheduled.Add(1)
	s.enqueue(t)
}
