package core

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// newHomeTask creates a task pinned (by id hash) to the given home worker.
func newHomeTask(t *testing.T, s *Scheduler, home int, fn TaskFunc) *Task {
	t.Helper()
	for i := 0; i < 10000; i++ {
		task := s.NewTask("pinned", fn)
		if task.home == home {
			return task
		}
	}
	t.Fatal("could not mint a task with the requested home worker")
	return nil
}

// TestStealUnderContention pins every task to worker 0 while worker 0 is
// wedged in a long activation: the only way the workload completes is for
// the other workers to steal from worker 0's inbox/deque.
func TestStealUnderContention(t *testing.T) {
	s := NewScheduler(4, Cooperative)
	s.Start()
	defer s.Stop()

	blockerDone := make(chan struct{})
	release := make(chan struct{})
	blocker := newHomeTask(t, s, 0, func(ctx *ExecCtx) RunResult {
		<-release
		close(blockerDone)
		return RunDone
	})
	s.Schedule(blocker)
	time.Sleep(10 * time.Millisecond) // let a worker pick the blocker up

	const (
		producers = 4
		perProd   = 64
	)
	var wg sync.WaitGroup
	var pg sync.WaitGroup
	for p := 0; p < producers; p++ {
		pg.Add(1)
		go func() {
			defer pg.Done()
			for i := 0; i < perProd; i++ {
				wg.Add(1)
				task := newHomeTask(t, s, 0, func(ctx *ExecCtx) RunResult {
					wg.Done()
					return RunDone
				})
				s.Schedule(task)
			}
		}()
	}
	pg.Wait()
	waitDone(t, &wg, 5*time.Second)
	close(release)
	<-blockerDone

	st := s.Stats()
	if st.Stolen == 0 {
		t.Fatal("home worker was wedged but nothing was stolen")
	}
}

// TestStopWithQueuedTasks verifies Stop returns promptly while tasks are
// still queued (they are abandoned, not drained).
func TestStopWithQueuedTasks(t *testing.T) {
	s := NewScheduler(2, Cooperative)
	gate := make(chan struct{})
	var ran atomic.Int32
	for i := 0; i < 2; i++ {
		blocker := s.NewTask("blocker", func(ctx *ExecCtx) RunResult {
			<-gate
			return RunDone
		})
		s.Schedule(blocker)
	}
	for i := 0; i < 500; i++ {
		task := s.NewTask("queued", func(ctx *ExecCtx) RunResult {
			ran.Add(1)
			return RunDone
		})
		s.Schedule(task)
	}
	s.Start()
	time.Sleep(10 * time.Millisecond) // both workers wedge on the blockers
	close(gate)
	stopDone := make(chan struct{})
	go func() {
		s.Stop()
		close(stopDone)
	}()
	select {
	case <-stopDone:
	case <-time.After(5 * time.Second):
		t.Fatal("Stop hung with queued tasks")
	}
}

// TestStopNeverStarted: Stop on a scheduler whose workers never launched
// must not hang even with tasks queued.
func TestStopNeverStarted(t *testing.T) {
	s := NewScheduler(2, Cooperative)
	for i := 0; i < 32; i++ {
		s.Schedule(s.NewTask("q", func(ctx *ExecCtx) RunResult { return RunDone }))
	}
	done := make(chan struct{})
	go func() {
		s.Stop()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(time.Second):
		t.Fatal("Stop hung on never-started scheduler")
	}
}

// TestWithoutAffinityRouting asserts the ablation's routing invariant
// directly: every enqueue lands in worker 0's inbox, all other workers'
// queues stay empty.
func TestWithoutAffinityRouting(t *testing.T) {
	s := NewScheduler(4, Cooperative, WithoutAffinity())
	var wg sync.WaitGroup
	for i := 0; i < 32; i++ {
		wg.Add(1)
		task := s.NewTask("t", func(ctx *ExecCtx) RunResult {
			wg.Done()
			return RunDone
		})
		s.Schedule(task)
	}
	if s.workers[0].inbox.empty() {
		t.Fatal("worker 0's inbox is empty under WithoutAffinity")
	}
	for w := 1; w < 4; w++ {
		if !s.workers[w].inbox.empty() || s.workers[w].dq.size() != 0 {
			t.Fatalf("worker %d received work under WithoutAffinity", w)
		}
	}
	s.Start()
	defer s.Stop()
	waitDone(t, &wg, 5*time.Second)
	// Workers 1..3 can only have run tasks by pulling from the shared
	// queue, which counts as stealing.
	st := s.Stats()
	if st.Executed != 32 {
		t.Fatalf("executed = %d, want 32", st.Executed)
	}
}

// TestAffinityRouting is the inverse: with affinity on, each task lands in
// its home worker's inbox.
func TestAffinityRouting(t *testing.T) {
	s := NewScheduler(4, Cooperative)
	task := newHomeTask(t, s, 2, func(ctx *ExecCtx) RunResult { return RunDone })
	s.Schedule(task)
	if s.workers[2].inbox.empty() {
		t.Fatal("task did not land in its home worker's inbox")
	}
	for _, w := range []int{0, 1, 3} {
		if !s.workers[w].inbox.empty() {
			t.Fatalf("worker %d received a foreign task", w)
		}
	}
}

// TestInboxOverflowSpills drives more queued tasks than the bounded ring
// holds; the excess must spill (counted) and still execute.
func TestInboxOverflowSpills(t *testing.T) {
	s := NewScheduler(1, Cooperative)
	const n = inboxSize + 64
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		task := s.NewTask("t", func(ctx *ExecCtx) RunResult {
			wg.Done()
			return RunDone
		})
		s.Schedule(task)
	}
	st := s.Stats()
	if st.Overflow == 0 {
		t.Fatalf("overflow = 0 after %d pushes into a %d-slot ring", n, inboxSize)
	}
	s.Start()
	defer s.Stop()
	waitDone(t, &wg, 5*time.Second)
	if got := s.Stats().Executed; got != n {
		t.Fatalf("executed = %d, want %d", got, n)
	}
}

// TestParksAndWakeups checks the parking counters move: workers park when
// idle and producers issue targeted wakeups.
func TestParksAndWakeups(t *testing.T) {
	s := NewScheduler(4, Cooperative)
	s.Start()
	defer s.Stop()
	time.Sleep(20 * time.Millisecond) // all workers park
	if got := s.Stats().Parks; got == 0 {
		t.Fatal("no worker ever parked")
	}
	var wg sync.WaitGroup
	for round := 0; round < 8; round++ {
		wg.Add(1)
		task := s.NewTask("t", func(ctx *ExecCtx) RunResult {
			wg.Done()
			return RunDone
		})
		s.Schedule(task)
		waitDone(t, &wg, time.Second)
		time.Sleep(2 * time.Millisecond) // let the worker park again
	}
	st := s.Stats()
	if st.Wakeups == 0 {
		t.Fatal("tasks ran from a parked pool without any wakeups")
	}
	if st.Executed != 8 {
		t.Fatalf("executed = %d, want 8", st.Executed)
	}
}

// TestFairnessTickUnstarvesForeignQueue is the regression test for a
// livelock: worker 0 is wedged in a long activation, worker 1's own inbox
// is kept permanently non-empty by a yield-looping task, and a victim task
// is stranded on worker 0's queues. Without the periodic foreign-first
// find (fairnessTick), worker 1 never reaches the steal sweep and the
// victim starves forever.
func TestFairnessTickUnstarvesForeignQueue(t *testing.T) {
	s := NewScheduler(2, NonCooperative)
	s.Start()
	defer s.Stop()

	release := make(chan struct{})
	blocker := newHomeTask(t, s, 0, func(ctx *ExecCtx) RunResult {
		<-release
		return RunDone
	})
	s.Schedule(blocker)
	time.Sleep(10 * time.Millisecond) // a worker wedges on the blocker

	var victimRan atomic.Bool
	victim := newHomeTask(t, s, 0, func(ctx *ExecCtx) RunResult {
		victimRan.Store(true)
		return RunDone
	})
	spinner := newHomeTask(t, s, 1, func(ctx *ExecCtx) RunResult {
		if victimRan.Load() {
			return RunDone
		}
		return RunYield
	})
	s.Schedule(spinner)
	time.Sleep(5 * time.Millisecond) // the free worker latches onto the spinner
	s.Schedule(victim)

	deadline := time.Now().Add(5 * time.Second)
	for !victimRan.Load() && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	close(release)
	if !victimRan.Load() {
		t.Fatal("stranded task starved behind a yield-looping worker")
	}
}

// TestSchedStatsMetrics checks the stats→metrics.CounterSet plumbing.
func TestSchedStatsMetrics(t *testing.T) {
	st := SchedStats{Scheduled: 1, Executed: 2, Stolen: 3, Parks: 4, Wakeups: 5, Overflow: 6}
	cs := st.Metrics()
	for name, want := range map[string]uint64{
		"scheduled": 1, "executed": 2, "stolen": 3,
		"parks": 4, "wakeups": 5, "overflow": 6,
	} {
		if v, ok := cs.Get(name); !ok || v != want {
			t.Fatalf("%s = %d (present=%v), want %d", name, v, ok, want)
		}
	}
}

// TestSchedulerStress hammers the scheduler from many goroutines with
// yielding tasks; run under -race this exercises the deque, inbox, bitmap
// and parking paths together.
func TestSchedulerStress(t *testing.T) {
	s := NewScheduler(8, RoundRobin)
	s.Start()
	defer s.Stop()
	const (
		tasks  = 200
		rounds = 50
	)
	var wg sync.WaitGroup
	for i := 0; i < tasks; i++ {
		wg.Add(1)
		var left atomic.Int32
		left.Store(rounds)
		task := s.NewTask("stress", func(ctx *ExecCtx) RunResult {
			for {
				if left.Add(-1) <= 0 {
					wg.Done()
					return RunDone
				}
				if ctx.CountItem() {
					return RunYield
				}
			}
		})
		go s.Schedule(task)
	}
	waitDone(t, &wg, 10*time.Second)
	st := s.Stats()
	if st.Executed < tasks {
		t.Fatalf("executed = %d, want >= %d", st.Executed, tasks)
	}
}
