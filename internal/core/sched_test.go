package core

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"flick/internal/value"
)

func TestSchedulerRunsTask(t *testing.T) {
	s := NewScheduler(2, Cooperative)
	s.Start()
	defer s.Stop()
	done := make(chan struct{})
	task := s.NewTask("t", func(ctx *ExecCtx) RunResult {
		close(done)
		return RunDone
	})
	s.Schedule(task)
	select {
	case <-done:
	case <-time.After(time.Second):
		t.Fatal("task never ran")
	}
	// The done flag is stored by the scheduler just after the body
	// returns; allow it a moment to land.
	deadline := time.Now().Add(time.Second)
	for !task.Done() && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if !task.Done() {
		t.Fatal("task not marked done")
	}
	// Scheduling a done task is a no-op.
	s.Schedule(task)
	if task.Runs() != 1 {
		t.Fatalf("runs = %d", task.Runs())
	}
}

func TestScheduleIdempotentWhileQueued(t *testing.T) {
	s := NewScheduler(1, Cooperative)
	// Do not start: tasks stay queued.
	var n atomic.Int32
	task := s.NewTask("t", func(ctx *ExecCtx) RunResult {
		n.Add(1)
		return RunIdle
	})
	for i := 0; i < 100; i++ {
		s.Schedule(task)
	}
	if got := s.Stats().Scheduled; got != 1 {
		t.Fatalf("scheduled %d times, want 1", got)
	}
	s.Start()
	defer s.Stop()
	deadline := time.Now().Add(time.Second)
	for n.Load() == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if n.Load() != 1 {
		t.Fatalf("ran %d times", n.Load())
	}
}

func TestScheduleDuringRunRequeues(t *testing.T) {
	s := NewScheduler(1, Cooperative)
	s.Start()
	defer s.Stop()
	started := make(chan struct{})
	release := make(chan struct{})
	var runs atomic.Int32
	var task *Task
	task = s.NewTask("t", func(ctx *ExecCtx) RunResult {
		if runs.Add(1) == 1 {
			close(started)
			<-release
		}
		return RunIdle
	})
	s.Schedule(task)
	<-started
	s.Schedule(task) // task is Running → must requeue after it finishes
	close(release)
	deadline := time.Now().Add(time.Second)
	for runs.Load() < 2 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if runs.Load() < 2 {
		t.Fatal("dirty task was not re-run")
	}
}

func TestYieldRequeues(t *testing.T) {
	s := NewScheduler(1, Cooperative)
	s.Start()
	defer s.Stop()
	var runs atomic.Int32
	done := make(chan struct{})
	task := s.NewTask("t", func(ctx *ExecCtx) RunResult {
		if runs.Add(1) < 5 {
			return RunYield
		}
		close(done)
		return RunDone
	})
	s.Schedule(task)
	select {
	case <-done:
	case <-time.After(time.Second):
		t.Fatal("yielding task starved")
	}
	if task.Yields() != 4 {
		t.Fatalf("yields = %d, want 4", task.Yields())
	}
}

func TestWorkStealing(t *testing.T) {
	s := NewScheduler(4, NonCooperative)
	// Enqueue many tasks before starting so they land on specific home
	// queues; all four workers should end up doing work.
	var mu sync.Mutex
	byWorker := map[int]int{}
	var wg sync.WaitGroup
	for i := 0; i < 64; i++ {
		wg.Add(1)
		task := s.NewTask("t", func(ctx *ExecCtx) RunResult {
			mu.Lock()
			byWorker[ctx.worker]++
			mu.Unlock()
			time.Sleep(time.Millisecond)
			wg.Done()
			return RunDone
		})
		s.Schedule(task)
	}
	s.Start()
	defer s.Stop()
	wg.Wait()
	mu.Lock()
	defer mu.Unlock()
	if len(byWorker) < 2 {
		t.Fatalf("only %d workers participated", len(byWorker))
	}
}

func TestWithoutAffinityStillRuns(t *testing.T) {
	s := NewScheduler(4, Cooperative, WithoutAffinity())
	s.Start()
	defer s.Stop()
	var wg sync.WaitGroup
	for i := 0; i < 32; i++ {
		wg.Add(1)
		task := s.NewTask("t", func(ctx *ExecCtx) RunResult {
			wg.Done()
			return RunDone
		})
		s.Schedule(task)
	}
	waitDone(t, &wg, time.Second)
}

func waitDone(t *testing.T, wg *sync.WaitGroup, timeout time.Duration) {
	t.Helper()
	done := make(chan struct{})
	go func() {
		wg.Wait()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(timeout):
		t.Fatal("timed out")
	}
}

func TestQuantumExpiryYields(t *testing.T) {
	s := NewScheduler(1, CooperativeQuantum(100*time.Microsecond))
	s.Start()
	defer s.Stop()
	done := make(chan struct{})
	var yielded atomic.Bool
	work := NewChan(8)
	for i := 0; i < 10000; i++ {
		work.Push(value.Int(1))
	}
	work.Close()
	task := s.NewTask("burn", func(ctx *ExecCtx) RunResult {
		for {
			_, ok, closed := work.Pop()
			if closed {
				close(done)
				return RunDone
			}
			if !ok {
				return RunIdle
			}
			// Simulate per-item work so the quantum can expire.
			for i := 0; i < 2000; i++ {
				_ = i * i
			}
			if ctx.CountItem() {
				yielded.Store(true)
				return RunYield
			}
		}
	})
	s.Schedule(task)
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("task did not finish")
	}
	if !yielded.Load() {
		t.Fatal("task never hit the quantum")
	}
	if task.Yields() == 0 {
		t.Fatal("yields not counted")
	}
}

func TestRoundRobinPolicyOneItemPerActivation(t *testing.T) {
	s := NewScheduler(1, RoundRobin)
	s.Start()
	defer s.Stop()
	work := NewChan(8)
	for i := 0; i < 10; i++ {
		work.Push(value.Int(1))
	}
	work.Close()
	done := make(chan struct{})
	task := s.NewTask("rr", func(ctx *ExecCtx) RunResult {
		for {
			_, ok, closed := work.Pop()
			if closed {
				close(done)
				return RunDone
			}
			if !ok {
				return RunIdle
			}
			if ctx.CountItem() {
				return RunYield
			}
		}
	})
	s.Schedule(task)
	select {
	case <-done:
	case <-time.After(time.Second):
		t.Fatal("round-robin task starved")
	}
	// 10 items, 1 per activation, plus the final activation that sees the
	// closure: at least 11 runs.
	if task.Runs() < 11 {
		t.Fatalf("runs = %d, want >= 11", task.Runs())
	}
}

func TestNonCooperativeRunsToCompletion(t *testing.T) {
	s := NewScheduler(1, NonCooperative)
	s.Start()
	defer s.Stop()
	work := NewChan(8)
	for i := 0; i < 1000; i++ {
		work.Push(value.Int(1))
	}
	work.Close()
	done := make(chan struct{})
	task := s.NewTask("nc", func(ctx *ExecCtx) RunResult {
		for {
			_, ok, closed := work.Pop()
			if closed {
				close(done)
				return RunDone
			}
			if !ok {
				return RunIdle
			}
			if ctx.CountItem() {
				return RunYield
			}
		}
	})
	s.Schedule(task)
	<-done
	if task.Runs() != 1 {
		t.Fatalf("non-cooperative task ran %d times, want 1", task.Runs())
	}
}

func TestSchedulerStats(t *testing.T) {
	s := NewScheduler(2, Cooperative)
	s.Start()
	defer s.Stop()
	var wg sync.WaitGroup
	for i := 0; i < 10; i++ {
		wg.Add(1)
		task := s.NewTask("t", func(ctx *ExecCtx) RunResult {
			wg.Done()
			return RunDone
		})
		s.Schedule(task)
	}
	waitDone(t, &wg, time.Second)
	st := s.Stats()
	if st.Scheduled != 10 || st.Executed != 10 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestSchedulerDefaultWorkerCount(t *testing.T) {
	s := NewScheduler(0, Cooperative)
	if s.Workers() <= 0 {
		t.Fatal("no workers")
	}
	if s.Policy().Name != "cooperative" {
		t.Fatal("policy")
	}
}

func TestStopTerminatesWorkers(t *testing.T) {
	s := NewScheduler(4, Cooperative)
	s.Start()
	stopDone := make(chan struct{})
	go func() {
		s.Stop()
		close(stopDone)
	}()
	select {
	case <-stopDone:
	case <-time.After(2 * time.Second):
		t.Fatal("Stop hung")
	}
}

func TestManyTasksManyWorkers(t *testing.T) {
	s := NewScheduler(8, Cooperative)
	s.Start()
	defer s.Stop()
	const n = 500
	var counter atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		items := NewChan(4)
		for j := 0; j < 20; j++ {
			items.Push(value.Int(1))
		}
		items.Close()
		task := s.NewTask("worker-task", func(ctx *ExecCtx) RunResult {
			for {
				_, ok, closed := items.Pop()
				if closed {
					wg.Done()
					return RunDone
				}
				if !ok {
					return RunIdle
				}
				counter.Add(1)
				if ctx.CountItem() {
					return RunYield
				}
			}
		})
		s.Schedule(task)
	}
	waitDone(t, &wg, 10*time.Second)
	if counter.Load() != n*20 {
		t.Fatalf("processed %d items, want %d", counter.Load(), n*20)
	}
}
