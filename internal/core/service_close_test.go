package core

import (
	"errors"
	"io"
	"net"
	"sync"
	"testing"
	"time"

	"flick/internal/netstack"
)

// Regression (PR 3): Service.Close used to close only the listener and the
// Shared accumulator, leaving every live PerConnection instance running —
// Platform.Close could then stop the scheduler under still-live graphs.
func TestServiceCloseClosesLiveInstances(t *testing.T) {
	u := netstack.NewUserNet()
	p := startPlatform(t, u)
	svc, err := p.Deploy(ServiceConfig{
		Name:       "upper",
		ListenAddr: "close:live",
		Template:   echoTemplate(t),
		Dispatch:   PerConnection,
	})
	if err != nil {
		t.Fatal(err)
	}

	// A client mid-conversation keeps its instance live.
	conn, err := u.Dial("close:live")
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if _, err := conn.Write([]byte("hello\n")); err != nil {
		t.Fatal(err)
	}
	if got := readLines(t, conn, 1); got[0] != "HELLO" {
		t.Fatalf("got %q", got)
	}

	svc.Close()

	// The live instance must be shut down: its client connection closes
	// (EOF) instead of lingering until the peer hangs up.
	conn.SetReadDeadline(time.Now().Add(2 * time.Second))
	var p1 [16]byte
	if _, err := conn.Read(p1[:]); err != io.EOF && !errors.Is(err, netstack.ErrClosed) {
		t.Fatalf("read after Service.Close = %v, want EOF (instance not closed)", err)
	}
	// And the live set drains.
	deadline := time.Now().Add(2 * time.Second)
	for len(svc.DumpLive()) != 0 {
		if time.Now().After(deadline) {
			t.Fatalf("instances still live after Close:\n%v", svc.DumpLive())
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// Regression (PR 3): a backend dial failing mid-BackendAddrs left the
// checked-out instance stranded — never started, never finished, never
// returned — leaking it from the graph pool and pinning it in the live
// set. The dispatcher must release it back to the pool cleanly.
func TestDispatchDialFailureReleasesInstance(t *testing.T) {
	u := netstack.NewUserNet()
	p := startPlatform(t, u)
	svc, err := p.Deploy(ServiceConfig{
		Name:         "upper",
		ListenAddr:   "close:dialfail",
		Template:     echoTemplate(t),
		Dispatch:     PerConnection,
		BackendAddrs: map[int]string{0: "nowhere:0"}, // no listener: dial fails
	})
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()

	for i := 0; i < 3; i++ {
		conn, err := u.Dial("close:dialfail")
		if err != nil {
			t.Fatal(err)
		}
		// Dispatch fails on the backend dial; the client conn is dropped.
		conn.SetReadDeadline(time.Now().Add(2 * time.Second))
		var b [8]byte
		if _, err := conn.Read(b[:]); err == nil {
			t.Fatal("dispatch with a dead backend produced bytes")
		}
		conn.Close()
	}
	deadline := time.Now().Add(2 * time.Second)
	for {
		stats := svc.Pool().Stats()
		live := len(svc.DumpLive())
		// One build for the first dispatch, then pool hits: the instance
		// came back after every failed dispatch.
		if live == 0 && stats.Builds == 1 && stats.Hits == 2 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("instance leaked on dial failure: live=%d stats=%+v", live, stats)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// failWriteConn is a stub connection whose writes always fail: it serves
// one inbound message, then blocks until closed.
type failWriteConn struct {
	mu     sync.Mutex
	served bool
	closed chan struct{}
	once   sync.Once
}

func newFailWriteConn() *failWriteConn {
	return &failWriteConn{closed: make(chan struct{})}
}

func (c *failWriteConn) Read(p []byte) (int, error) {
	c.mu.Lock()
	first := !c.served
	c.served = true
	c.mu.Unlock()
	if first {
		return copy(p, "hello\n"), nil
	}
	<-c.closed
	return 0, io.EOF
}

func (c *failWriteConn) Write(p []byte) (int, error) {
	return 0, errors.New("stub: write refused")
}

func (c *failWriteConn) Close() error {
	c.once.Do(func() { close(c.closed) })
	return nil
}

func (c *failWriteConn) LocalAddr() net.Addr                { return nil }
func (c *failWriteConn) RemoteAddr() net.Addr               { return nil }
func (c *failWriteConn) SetDeadline(t time.Time) error      { return nil }
func (c *failWriteConn) SetReadDeadline(t time.Time) error  { return nil }
func (c *failWriteConn) SetWriteDeadline(t time.Time) error { return nil }

// Regression (PR 3): a write error on a primary-port output used to drop
// the connection silently — the instance learned of the dead client only
// via eventual peer EOF, lingering half-dead (inputs still parsing) until
// then. The flush failure must begin shutdown so the instance recycles
// promptly.
func TestOutputWriteErrorShutsDownInstance(t *testing.T) {
	sched := NewScheduler(2, Cooperative)
	sched.Start()
	defer sched.Stop()

	inst := NewInstance(echoTemplate(t), sched)
	conn := newFailWriteConn()
	inst.Bind(0, conn)
	inst.Start()

	// The stub feeds one line; the echoed reply hits the failing write.
	select {
	case <-inst.Finished():
	case <-time.After(5 * time.Second):
		t.Fatalf("instance still live %v after output write error:\n%s",
			5*time.Second, inst.DebugString())
	}
}
