package core

import (
	"sync"
	"testing"
	"time"

	"flick/internal/netstack"
	"flick/internal/value"
)

// TestPoolRecycleStress is the regression test for two teardown races:
// (1) a late connection callback scheduling a task between Reset's
// done-flag clearing and the active-gate drop, which used to run the body
// against stale input state and poison the fresh session; and (2)
// beginShutdown unregistering callbacks before closing connections, which
// lost the EOF wakeups and leaked instances. It hammers a pooled
// per-connection service with short-lived connections and requires every
// request to be answered and every instance to be recycled.
func TestPoolRecycleStress(t *testing.T) {
	if testing.Short() {
		t.Skip("stress test")
	}
	u := netstack.NewUserNet()
	p := NewPlatform(Config{Workers: 4, Transport: u})
	defer p.Close()

	tmpl := NewTemplate("echo")
	in := tmpl.AddInput("in", lineCodec)
	comp := tmpl.AddCompute("id", passthrough)
	out := tmpl.AddOutput("out", lineCodec)
	tmpl.Connect(in, comp)
	tmpl.Connect(comp, out)
	tmpl.AddPort("client", in, out, true)
	if err := tmpl.Validate(); err != nil {
		t.Fatal(err)
	}
	svc, err := p.Deploy(ServiceConfig{
		Name:       "echo",
		ListenAddr: "echo:1",
		Template:   tmpl,
		Dispatch:   PerConnection,
		PoolSize:   16,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	svc.Pool().Prime(8)

	const (
		clients  = 8
		rounds   = 300
		deadline = 5 * time.Second
	)
	var wg sync.WaitGroup
	errCh := make(chan error, clients)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			buf := make([]byte, 64)
			for r := 0; r < rounds; r++ {
				conn, err := u.Dial("echo:1")
				if err != nil {
					errCh <- err
					return
				}
				conn.SetReadDeadline(time.Now().Add(deadline))
				if _, err := conn.Write([]byte("ping\n")); err != nil {
					conn.Close()
					errCh <- err
					return
				}
				got := 0
				for got == 0 || buf[got-1] != '\n' {
					n, err := conn.Read(buf[got:])
					got += n
					if err != nil {
						conn.Close()
						errCh <- err
						return
					}
				}
				if string(buf[:got]) != "ping\n" {
					conn.Close()
					t.Errorf("round %d: echo = %q", r, buf[:got])
					return
				}
				conn.Close()
			}
		}()
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatalf("client error: %v", err)
	}

	// Every instance must eventually be recycled (no leaks).
	waitUntil := time.Now().Add(2 * time.Second)
	for time.Now().Before(waitUntil) {
		if len(svc.DumpLive()) == 0 {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	if n := len(svc.DumpLive()); n != 0 {
		t.Fatalf("%d instances leaked:\n%v", n, svc.DumpLive())
	}
	st := svc.Pool().Stats()
	if st.Hits == 0 {
		t.Fatalf("pool never recycled (hits=%d builds=%d)", st.Hits, st.Builds)
	}
}

// TestSharedDispatchSecondWave verifies the Shared dispatcher creates a
// fresh accumulator after a full wave of connections has been bound.
func TestSharedDispatchSecondWave(t *testing.T) {
	u := netstack.NewUserNet()
	p := NewPlatform(Config{Workers: 2, Transport: u})
	defer p.Close()

	sink, _ := u.Listen("sink:w")
	got := make(chan string, 4)
	go func() {
		for {
			c, err := sink.Accept()
			if err != nil {
				return
			}
			go func() {
				defer c.Close()
				buf := make([]byte, 256)
				total := ""
				for {
					n, err := c.Read(buf)
					total += string(buf[:n])
					if err != nil {
						got <- total
						return
					}
				}
			}()
		}
	}()

	svc, err := p.Deploy(ServiceConfig{
		Name:         "merge",
		ListenAddr:   "merge:w",
		Template:     sharedTemplate(t),
		Dispatch:     Shared,
		SharedPorts:  []int{0, 1},
		BackendAddrs: map[int]string{2: "sink:w"},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()

	for wave := 0; wave < 2; wave++ {
		c1, err := u.Dial("merge:w")
		if err != nil {
			t.Fatalf("wave %d: %v", wave, err)
		}
		c2, err := u.Dial("merge:w")
		if err != nil {
			t.Fatalf("wave %d: %v", wave, err)
		}
		c1.Write([]byte("a\n"))
		c2.Write([]byte("b\n"))
		c1.Close()
		c2.Close()
		select {
		case data := <-got:
			if data == "" {
				t.Fatalf("wave %d: empty sink data", wave)
			}
		case <-time.After(5 * time.Second):
			t.Fatalf("wave %d never completed", wave)
		}
	}
}

// TestInstanceDebugString exercises the diagnostics path.
func TestInstanceDebugString(t *testing.T) {
	p := NewPlatform(Config{Workers: 1, Transport: netstack.NewUserNet()})
	defer p.Close()
	tmpl := NewTemplate("dbg")
	in := tmpl.AddInput("in", lineCodec)
	comp := tmpl.AddCompute("id", func(ctx *NodeCtx, v value.Value, _ int) { ctx.Emit(0, v) })
	out := tmpl.AddOutput("out", lineCodec)
	tmpl.Connect(in, comp)
	tmpl.Connect(comp, out)
	tmpl.AddPort("client", in, out, true)
	inst := NewInstance(tmpl, p.Scheduler())
	s := inst.DebugString()
	for _, want := range []string{"dbg", "input", "compute", "output", "active=false"} {
		if !contains(s, want) {
			t.Fatalf("DebugString missing %q:\n%s", want, s)
		}
	}
}

func contains(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}
