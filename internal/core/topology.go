package core

import (
	"errors"
	"fmt"
)

// ErrCapacity rejects a topology update holding more backends than the
// compiled graph's channel-array capacity (len(ServiceConfig.BackendPorts)).
// Scaling beyond the capacity requires recompiling the service with a
// larger array; control surfaces (the admin API) match this sentinel with
// errors.Is to distinguish "resize your deployment" (HTTP 409) from
// malformed input (400).
var ErrCapacity = errors.New("core: topology exceeds compiled backend capacity")

// Topology is a live backend set for a PerConnection service: an ordered
// address list plus a stable key→index mapping over it. backend.Ring (a
// consistent-hash ring with virtual nodes) is the production
// implementation; backend.ModTable is the hash-mod-B ablation. A Topology
// value is immutable — changing the backend set builds a new Topology and
// applies it with Service.UpdateBackends, so every task graph routes
// against exactly the backend set it was bound to.
type Topology interface {
	// Backends returns the ordered backend address list. Element i is
	// bound to ServiceConfig.BackendPorts[i] at dispatch.
	Backends() []string
	// Route maps a key hash (the language's hash builtin) to an index
	// into Backends().
	Route(hash int64) int
}

// topoBox wraps a Topology for atomic.Value (which requires one concrete
// stored type across Stores).
type topoBox struct{ t Topology }

// Topology returns the service's current backend topology (nil for
// services deployed with a fixed BackendAddrs map).
func (s *Service) Topology() Topology {
	if b, ok := s.topo.Load().(topoBox); ok {
		return b.t
	}
	return nil
}

// UpdateBackends applies a new backend topology to a live service without
// restarting it:
//
//   - Dispatches from now on bind t.Backends() (in order, to
//     ServiceConfig.BackendPorts) and route keys through t.Route.
//   - Running instances are untouched: they keep the topology snapshot,
//     connections and leased upstream sessions they were bound with, so
//     every in-flight request completes on its original socket.
//   - The shared upstream layer (when bound) learns the new list: pools
//     for added addresses become probe targets immediately, pools for
//     removed addresses drain — no new leases, sockets close as their
//     last session detaches.
//
// The new backend count must fit the compiled channel-array capacity
// (len(BackendPorts)); scaling beyond it requires recompiling the service
// with a larger array. Growing the set never disturbs traffic; shrinking
// it can fail the rare dispatch that snapshotted the old topology just
// before the update (its lease finds the pool already draining), which
// surfaces as one refused connection, never as a misrouted response.
func (s *Service) UpdateBackends(t Topology) error {
	if t == nil {
		return fmt.Errorf("core: UpdateBackends requires a topology")
	}
	if s.Topology() == nil {
		return fmt.Errorf("core: service %q was not deployed with a live topology", s.cfg.Name)
	}
	addrs := t.Backends()
	if len(addrs) == 0 {
		// An empty ring routes every key to port 0, which is unbound —
		// requests would vanish without a diagnostic. Scale-to-zero is a
		// shutdown, not a topology.
		return fmt.Errorf("core: topology must hold at least one backend")
	}
	if len(addrs) > len(s.cfg.BackendPorts) {
		return fmt.Errorf("%w: topology holds %d backends but the compiled graph has %d backend ports",
			ErrCapacity, len(addrs), len(s.cfg.BackendPorts))
	}
	// Order matters twice over. The upstream layer must know the new
	// address set BEFORE any dispatch can snapshot the new topology — a
	// grown topology's first lease to an added backend must not race the
	// manager's want-set and be refused as retired. And concurrent
	// updates must not interleave their SetBackends+Store pairs, or the
	// losing Store could leave the active topology routing to a backend
	// the winning SetBackends already retired — permanently, not as a
	// one-shot race; topoMu makes the pair atomic.
	s.topoMu.Lock()
	defer s.topoMu.Unlock()
	if s.cfg.Upstreams != nil {
		s.cfg.Upstreams.SetBackends(addrs)
	}
	s.topo.Store(topoBox{t})
	return nil
}

// installTopology validates and publishes the deploy-time topology.
func (s *Service) installTopology(cfg *ServiceConfig) error {
	if cfg.Topology == nil {
		return nil
	}
	if len(cfg.BackendPorts) == 0 {
		return fmt.Errorf("core: ServiceConfig.Topology requires BackendPorts")
	}
	n := len(cfg.Topology.Backends())
	if n == 0 {
		return fmt.Errorf("core: topology must hold at least one backend")
	}
	if n > len(cfg.BackendPorts) {
		return fmt.Errorf("core: topology holds %d backends but the compiled graph has %d backend ports",
			n, len(cfg.BackendPorts))
	}
	if cfg.Upstreams != nil {
		cfg.Upstreams.SetBackends(cfg.Topology.Backends())
	}
	s.topo.Store(topoBox{cfg.Topology})
	return nil
}

// bindBackends connects an instance's backend ports for one dispatch:
// against the current topology snapshot when the service has one (the
// addresses bind BackendPorts in order, spare ports stay unbound, and the
// instance routes through the snapshot), against the fixed BackendAddrs
// map otherwise. Each port's connection is resolved for the worker that
// will write it (Instance.PortHomeWorker), so a sharded upstream manager
// hands out sessions whose write lock stays on that worker's core.
func (s *Service) bindBackends(inst *Instance) error {
	if t := s.Topology(); t != nil {
		for i, addr := range t.Backends() {
			port := s.cfg.BackendPorts[i]
			bc, err := s.dialBackend(addr, inst.PortHomeWorker(port))
			if err != nil {
				return fmt.Errorf("core: dial backend %s: %w", addr, err)
			}
			inst.Bind(port, bc)
		}
		inst.SetRouter(t.Route)
		return nil
	}
	for port, addr := range s.cfg.BackendAddrs {
		bc, err := s.dialBackend(addr, inst.PortHomeWorker(port))
		if err != nil {
			return fmt.Errorf("core: dial backend %s: %w", addr, err)
		}
		inst.Bind(port, bc)
	}
	return nil
}
