package grammar

// Built-in reusable grammars (§4.2: "The FLICK framework provides reusable
// grammars for common protocols, such as the HTTP and Memcached protocols").
// HTTP, being a header-structured text protocol, ships as a native codec in
// internal/proto/http implementing the same WireFormat interface; the binary
// and simple text formats below are expressed directly in the grammar
// language.

// MemcachedUnit is the paper's Listing 2: the Memcached binary protocol
// command format, shared by requests and responses.
//
//	type cmd = unit {
//	    %byteorder = big;
//	    magic_code : uint8;
//	    opcode     : uint8;
//	    key_len    : uint16;
//	    extras_len : uint8;
//	               : uint8;    # anonymous, reserved
//	    status_or_v_bucket : uint16;
//	    total_len  : uint32;
//	    opaque     : uint32;
//	    cas        : uint64;
//	    var value_len : uint32 &parse = total_len - (extras_len + key_len)
//	                          &serialize = total_len = key_len + extras_len + $$;
//	    extras : bytes  &length = extras_len;
//	    key    : string &length = key_len;
//	    value  : bytes  &length = value_len;
//	}
func MemcachedUnit() Unit {
	return Unit{
		Name:  "memcached.cmd",
		Order: BigEndian,
		Fields: []Field{
			{Name: "magic_code", Kind: KindUint, Size: 1},
			{Name: "opcode", Kind: KindUint, Size: 1},
			{Name: "key_len", Kind: KindUint, Size: 2, Serialize: LenOf("key")},
			{Name: "extras_len", Kind: KindUint, Size: 1, Serialize: LenOf("extras")},
			{Kind: KindUint, Size: 1}, // anonymous: data type, reserved
			{Name: "status_or_v_bucket", Kind: KindUint, Size: 2},
			{Name: "total_len", Kind: KindUint, Size: 4,
				Serialize: Add(LenOf("key"), Add(LenOf("extras"), LenOf("value")))},
			{Name: "opaque", Kind: KindUint, Size: 4},
			{Name: "cas", Kind: KindUint, Size: 8},
			{Name: "value_len", Kind: KindVar,
				Parse: Sub(Ref("total_len"), Add(Ref("extras_len"), Ref("key_len")))},
			{Name: "extras", Kind: KindBytes, Length: Ref("extras_len")},
			{Name: "key", Kind: KindBytes, Length: Ref("key_len")},
			{Name: "value", Kind: KindBytes, Length: Ref("value_len")},
		},
	}
}

// Memcached binary protocol opcodes used by the use cases.
const (
	MemcachedMagicRequest  = 0x80
	MemcachedMagicResponse = 0x81
	MemcachedOpGet         = 0x00
	MemcachedOpSet         = 0x01
	MemcachedOpGetK        = 0x0c // GETK: the opcode Listing 1 caches
)

// HadoopKVUnit is the intermediate key/value pair format used by the Hadoop
// data aggregator: length-prefixed key and value. (Hadoop's IFile uses
// varint lengths; fixed 32-bit prefixes keep the same structure — length
// then payload — while staying in the grammar language. The aggregation
// semantics are unaffected; see DESIGN.md.)
func HadoopKVUnit() Unit {
	return Unit{
		Name:  "hadoop.kv",
		Order: BigEndian,
		Fields: []Field{
			{Name: "key_len", Kind: KindUint, Size: 4, Serialize: LenOf("key")},
			{Name: "value_len", Kind: KindUint, Size: 4, Serialize: LenOf("value")},
			{Name: "key", Kind: KindBytes, Length: Ref("key_len")},
			{Name: "value", Kind: KindBytes, Length: Ref("value_len")},
		},
	}
}

// LineUnit is a trivial newline-terminated text format used by the
// quickstart example and tests.
func LineUnit() Unit {
	return Unit{
		Name:  "text.line",
		Order: BigEndian,
		Fields: []Field{
			{Name: "line", Kind: KindUntil, Delim: []byte{'\n'}},
		},
	}
}
