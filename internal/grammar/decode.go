package grammar

import (
	"fmt"

	"flick/internal/buffer"
	"flick/internal/value"
)

// decoder is the incremental parse state for one connection. Completed
// fields are consumed from the queue immediately; an incomplete field leaves
// the queue untouched until enough bytes arrive, so a single message may be
// assembled across many Decode calls (and many network reads).
type decoder struct {
	c       *Codec
	fi      int           // index of the field being parsed
	fields  []value.Value // decoded field values (slot == field index)
	spans   [][2]int      // byte ranges into raw for aliased fields
	raw     []byte        // wire image accumulated when capturing
	scanned int           // delimiter scan progress for KindUntil
	total   int           // bytes consumed for the current message
}

// NewDecoder implements WireFormat.
func (c *Codec) NewDecoder() StreamDecoder {
	return &decoder{
		c:      c,
		fields: make([]value.Value, len(c.fields)),
		spans:  make([][2]int, len(c.fields)),
	}
}

// reset prepares the decoder for the next message.
func (d *decoder) reset() {
	for i := range d.fields {
		d.fields[i] = value.Null
		d.spans[i] = [2]int{-1, 0}
	}
	d.fi = 0
	d.raw = nil
	d.scanned = 0
	d.total = 0
}

// consume moves n bytes out of the queue. When the codec captures raw wire
// images the bytes land in d.raw and the returned span indexes it; when
// materialise is set without capture, a fresh copy is returned.
func (d *decoder) consume(q *buffer.Queue, n int, materialise bool) (span [2]int, copied []byte) {
	span = [2]int{-1, 0}
	switch {
	case d.c.capture:
		start := len(d.raw)
		d.raw = append(d.raw, make([]byte, n)...)
		q.ReadFull(d.raw[start : start+n])
		span = [2]int{start, n}
	case materialise:
		copied = make([]byte, n)
		q.ReadFull(copied)
	default:
		q.Discard(n)
	}
	d.total += n
	return span, copied
}

// Decode implements StreamDecoder.
func (d *decoder) Decode(q *buffer.Queue) (value.Value, bool, error) {
	if d.spans == nil {
		d.spans = make([][2]int, len(d.c.fields))
	}
	for d.fi < len(d.c.fields) {
		f := &d.c.fields[d.fi]
		switch f.Kind {
		case KindUint:
			if q.Len() < f.Size {
				return value.Null, false, nil
			}
			var scratch [8]byte
			q.ReadFull(scratch[:f.Size])
			if d.c.capture {
				start := len(d.raw)
				d.raw = append(d.raw, scratch[:f.Size]...)
				d.spans[d.fi] = [2]int{start, f.Size}
			}
			d.total += f.Size
			d.fields[d.fi] = value.Int(decodeUint(scratch[:f.Size], d.c.unit.Order))

		case KindFixedBytes:
			if q.Len() < f.Size {
				return value.Null, false, nil
			}
			span, copied := d.consume(q, f.Size, f.needed)
			d.spans[d.fi] = span
			if copied != nil {
				d.fields[d.fi] = value.Bytes(copied)
			}

		case KindBytes:
			n := int(f.length(d.fields, nil))
			if n < 0 {
				d.reset()
				return value.Null, false, fmt.Errorf("%w: field %q computed negative length %d", ErrMalformed, f.Name, n)
			}
			if n > f.maxLen || d.total+n > d.c.maxMsg {
				d.reset()
				return value.Null, false, fmt.Errorf("%w: field %q length %d", ErrTooLarge, f.Name, n)
			}
			if q.Len() < n {
				return value.Null, false, nil
			}
			span, copied := d.consume(q, n, f.needed)
			d.spans[d.fi] = span
			if copied != nil {
				d.fields[d.fi] = value.Bytes(copied)
			}

		case KindLiteral:
			n := len(f.Lit)
			if q.Len() < n {
				return value.Null, false, nil
			}
			var scratch [16]byte
			probe := scratch[:]
			if n > len(probe) {
				probe = make([]byte, n)
			}
			q.Peek(probe[:n])
			for i := 0; i < n; i++ {
				if probe[i] != f.Lit[i] {
					d.reset()
					return value.Null, false, fmt.Errorf("%w: field %q", ErrBadLiteral, f.Name)
				}
			}
			d.consume(q, n, false)

		case KindUntil:
			pos, found := d.scanDelim(q, f.Delim)
			if !found {
				if q.Len() > f.maxLen || d.total+q.Len() > d.c.maxMsg {
					d.reset()
					return value.Null, false, fmt.Errorf("%w: unterminated field %q", ErrTooLarge, f.Name)
				}
				return value.Null, false, nil
			}
			if pos > f.maxLen {
				d.reset()
				return value.Null, false, fmt.Errorf("%w: field %q length %d", ErrTooLarge, f.Name, pos)
			}
			span, copied := d.consume(q, pos, f.needed)
			d.spans[d.fi] = span
			if copied != nil {
				d.fields[d.fi] = value.Bytes(copied)
			}
			d.consume(q, len(f.Delim), false) // the delimiter itself
			d.scanned = 0

		case KindVar:
			d.fields[d.fi] = value.Int(f.parse(d.fields, nil))
		}
		d.fi++
	}

	// Message complete: build the record. Aliased fields point into the
	// (now stable) raw image.
	rec := d.c.desc.New()
	if d.c.capture {
		for i := range d.c.fields {
			f := &d.c.fields[i]
			if sp := d.spans[i]; sp[0] >= 0 && f.needed && f.Kind != KindUint {
				d.fields[i] = value.Bytes(d.raw[sp[0] : sp[0]+sp[1]])
			}
		}
		rec.L[d.c.rawSlot] = value.Bytes(d.raw)
	}
	copy(rec.L, d.fields)
	d.reset()
	return rec, true, nil
}

// scanDelim looks for delim in q resuming from d.scanned. It returns the
// offset of the delimiter start when found.
func (d *decoder) scanDelim(q *buffer.Queue, delim []byte) (int, bool) {
	from := d.scanned
	for {
		i := q.IndexByte(delim[0], from)
		if i < 0 {
			// Resume close to the end next time (a prefix of the delimiter
			// may be buffered).
			d.scanned = max(0, q.Len()-len(delim)+1)
			return 0, false
		}
		if i+len(delim) > q.Len() {
			d.scanned = i
			return 0, false
		}
		match := true
		for j := 1; j < len(delim); j++ {
			b, _ := q.PeekByte(i + j)
			if b != delim[j] {
				match = false
				break
			}
		}
		if match {
			return i, true
		}
		from = i + 1
	}
}

// decodeUint decodes a big- or little-endian unsigned integer.
func decodeUint(b []byte, order ByteOrder) int64 {
	var v uint64
	if order == BigEndian {
		for _, x := range b {
			v = v<<8 | uint64(x)
		}
	} else {
		for i := len(b) - 1; i >= 0; i-- {
			v = v<<8 | uint64(b[i])
		}
	}
	return int64(v)
}

// encodeUint appends an unsigned integer of the given width.
func encodeUint(dst []byte, v int64, size int, order ByteOrder) []byte {
	var tmp [8]byte
	u := uint64(v)
	if order == BigEndian {
		for i := size - 1; i >= 0; i-- {
			tmp[i] = byte(u)
			u >>= 8
		}
	} else {
		for i := 0; i < size; i++ {
			tmp[i] = byte(u)
			u >>= 8
		}
	}
	return append(dst, tmp[:size]...)
}
