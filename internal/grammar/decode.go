package grammar

import (
	"fmt"

	"flick/internal/buffer"
	"flick/internal/value"
)

// decoder is the incremental parse state for one connection.
//
// Parsing is zero-copy and runs in two phases. The peek phase walks the
// unit's fields over the buffered bytes WITHOUT consuming them, decoding
// integer fields into d.fields and recording the byte span of every
// byte-carrying field; an incomplete field leaves the queue untouched until
// enough bytes arrive, so a single message may straddle many Decode calls
// (and many network reads). Once every field has been located the message's
// total wire length is known and the take phase consumes it as ONE
// contiguous refcounted view (Queue.TakeRef): field values become sub-slices
// of the view, the record is drawn from the desc's freelist, and the pooled
// region is released when the last task holding the record drops it. The
// steady state copies no payload bytes and allocates nothing.
type decoder struct {
	c       *Codec
	fi      int           // index of the field being parsed
	pos     int           // peek offset of the parse point into the queue
	fields  []value.Value // decoded integer/var field values (slot == index)
	spans   [][2]int      // byte ranges into the message for aliased fields
	scanned int           // delimiter scan progress for KindUntil
}

// NewDecoder implements WireFormat.
func (c *Codec) NewDecoder() StreamDecoder {
	return &decoder{
		c:      c,
		fields: make([]value.Value, len(c.fields)),
		spans:  make([][2]int, len(c.fields)),
	}
}

// reset prepares the decoder for the next message. Nothing was consumed
// during the peek phase, so resetting on error leaves the queue positioned
// at the malformed message (callers drop the connection).
func (d *decoder) reset() {
	for i := range d.fields {
		d.fields[i] = value.Null
		d.spans[i] = [2]int{-1, 0}
	}
	d.fi = 0
	d.pos = 0
	d.scanned = 0
}

// Decode implements StreamDecoder.
func (d *decoder) Decode(q *buffer.Queue) (value.Value, bool, error) {
	var scratch [16]byte
	for d.fi < len(d.c.fields) {
		f := &d.c.fields[d.fi]
		switch f.Kind {
		case KindUint:
			if q.Len() < d.pos+f.Size {
				return value.Null, false, nil
			}
			q.PeekAt(scratch[:f.Size], d.pos)
			d.fields[d.fi] = value.Int(decodeUint(scratch[:f.Size], d.c.unit.Order))
			d.spans[d.fi] = [2]int{d.pos, f.Size}
			d.pos += f.Size

		case KindFixedBytes:
			if q.Len() < d.pos+f.Size {
				return value.Null, false, nil
			}
			d.spans[d.fi] = [2]int{d.pos, f.Size}
			d.pos += f.Size

		case KindBytes:
			n := int(f.length(d.fields, nil))
			if n < 0 {
				d.reset()
				return value.Null, false, fmt.Errorf("%w: field %q computed negative length %d", ErrMalformed, f.Name, n)
			}
			if n > f.maxLen || d.pos+n > d.c.maxMsg {
				d.reset()
				return value.Null, false, fmt.Errorf("%w: field %q length %d", ErrTooLarge, f.Name, n)
			}
			if q.Len() < d.pos+n {
				return value.Null, false, nil
			}
			d.spans[d.fi] = [2]int{d.pos, n}
			d.pos += n

		case KindLiteral:
			n := len(f.Lit)
			if q.Len() < d.pos+n {
				return value.Null, false, nil
			}
			probe := scratch[:]
			if n > len(probe) {
				probe = make([]byte, n)
			}
			q.PeekAt(probe[:n], d.pos)
			for i := 0; i < n; i++ {
				if probe[i] != f.Lit[i] {
					d.reset()
					return value.Null, false, fmt.Errorf("%w: field %q", ErrBadLiteral, f.Name)
				}
			}
			d.pos += n

		case KindUntil:
			pos, found := d.scanDelim(q, f.Delim)
			if !found {
				if q.Len()-d.pos > f.maxLen || q.Len() > d.c.maxMsg {
					d.reset()
					return value.Null, false, fmt.Errorf("%w: unterminated field %q", ErrTooLarge, f.Name)
				}
				return value.Null, false, nil
			}
			if pos-d.pos > f.maxLen {
				d.reset()
				return value.Null, false, fmt.Errorf("%w: field %q length %d", ErrTooLarge, f.Name, pos-d.pos)
			}
			d.spans[d.fi] = [2]int{d.pos, pos - d.pos}
			d.pos = pos + len(f.Delim)
			d.scanned = 0

		case KindVar:
			d.fields[d.fi] = value.Int(f.parse(d.fields, nil))
		}
		d.fi++
	}

	// Message complete: consume it as one contiguous pooled view and build
	// the record over it. Aliased fields sub-slice the view; the record owns
	// the caller's reference to the region and releases it when the last
	// task drops the message.
	var (
		view []byte
		ref  *buffer.Ref
	)
	if d.pos > 0 {
		view, ref = q.TakeRef(d.pos)
	}
	var region value.Region
	if ref != nil {
		region = ref
	}
	rec := d.c.desc.NewOwned(region)
	copy(rec.L[:len(d.fields)], d.fields)
	for i := range d.c.fields {
		f := &d.c.fields[i]
		if !f.needed || f.Kind == KindUint || f.Kind == KindVar {
			continue
		}
		if sp := d.spans[i]; sp[0] >= 0 {
			rec.L[i] = value.Bytes(view[sp[0] : sp[0]+sp[1]])
		}
	}
	if d.c.rawSlot >= 0 {
		rec.L[d.c.rawSlot] = value.Bytes(view)
	}
	d.reset()
	return rec, true, nil
}

// scanDelim looks for delim in q at or after the parse point, resuming from
// d.scanned. It returns the queue offset of the delimiter start when found.
func (d *decoder) scanDelim(q *buffer.Queue, delim []byte) (int, bool) {
	from := d.scanned
	if from < d.pos {
		from = d.pos
	}
	for {
		i := q.IndexByte(delim[0], from)
		if i < 0 {
			// Resume close to the end next time (a prefix of the delimiter
			// may be buffered).
			d.scanned = max(d.pos, q.Len()-len(delim)+1)
			return 0, false
		}
		if i+len(delim) > q.Len() {
			d.scanned = i
			return 0, false
		}
		match := true
		for j := 1; j < len(delim); j++ {
			b, _ := q.PeekByte(i + j)
			if b != delim[j] {
				match = false
				break
			}
		}
		if match {
			return i, true
		}
		from = i + 1
	}
}

// decodeUint decodes a big- or little-endian unsigned integer.
func decodeUint(b []byte, order ByteOrder) int64 {
	var v uint64
	if order == BigEndian {
		for _, x := range b {
			v = v<<8 | uint64(x)
		}
	} else {
		for i := len(b) - 1; i >= 0; i-- {
			v = v<<8 | uint64(b[i])
		}
	}
	return int64(v)
}

// encodeUint appends an unsigned integer of the given width.
func encodeUint(dst []byte, v int64, size int, order ByteOrder) []byte {
	var tmp [8]byte
	u := uint64(v)
	if order == BigEndian {
		for i := size - 1; i >= 0; i-- {
			tmp[i] = byte(u)
			u >>= 8
		}
	} else {
		for i := 0; i < size; i++ {
			tmp[i] = byte(u)
			u >>= 8
		}
	}
	return append(dst, tmp[:size]...)
}
