package grammar

import (
	"fmt"
	"sync"

	"flick/internal/buffer"
	"flick/internal/value"
)

// encScratch is the per-Encode working set, recycled through a freelist so
// the rebuild path does not allocate in steady state.
type encScratch struct {
	lens   []int
	fields []value.Value
}

var encScratches = sync.Pool{New: func() any { return new(encScratch) }}

func getEncScratch(n int) *encScratch {
	s := encScratches.Get().(*encScratch)
	if cap(s.lens) < n {
		s.lens = make([]int, n)
		s.fields = make([]value.Value, n)
	}
	s.lens = s.lens[:n]
	s.fields = s.fields[:n]
	return s
}

func (s *encScratch) put() {
	for i := range s.fields {
		s.fields[i] = value.Null
	}
	encScratches.Put(s)
}

// Encode implements WireFormat. It appends msg's wire form to dst. Integer
// fields carrying &serialize expressions are recomputed from the current
// field contents (the paper's Listing 2: "During serialisation, the values
// of extras_len, key_len, and value_len are updated according to the sizes
// of the values stored in the ... fields"), so a program may mutate a
// message's payload fields and the framing stays consistent. msg itself is
// not modified.
func (c *Codec) Encode(dst []byte, msg value.Value) ([]byte, error) {
	if msg.Kind != value.KindRecord || msg.R != c.desc {
		return dst, fmt.Errorf("%w: encode of %v message with %q codec", ErrMalformed, msg.Kind, c.unit.Name)
	}
	// Raw fast path: a captured, unmodified wire image is copied verbatim
	// (the paper's "simply copied in their wire format representation").
	// Programs that mutate fields must clear the image (ClearRaw).
	if raw := c.rawView(msg); raw != nil {
		return append(dst, raw...), nil
	}
	return c.rebuild(dst, msg)
}

// rawView returns the captured wire image, or nil when absent/cleared.
func (c *Codec) rawView(msg value.Value) []byte {
	if c.rawSlot >= 0 && c.rawSlot < len(msg.L) && !msg.L[c.rawSlot].IsNull() {
		return msg.L[c.rawSlot].B
	}
	return nil
}

// rebuild re-serialises msg from its current field contents.
func (c *Codec) rebuild(dst []byte, msg value.Value) ([]byte, error) {
	sc := getEncScratch(len(c.fields))
	defer sc.put()
	lens, fields := sc.lens, sc.fields

	// Pass 1: compute the encoded byte length of every field.
	for i := range c.fields {
		f := &c.fields[i]
		switch f.Kind {
		case KindUint, KindFixedBytes:
			lens[i] = f.Size
		case KindLiteral:
			lens[i] = len(f.Lit)
		case KindBytes:
			lens[i] = msg.L[i].ByteLen()
		case KindUntil:
			lens[i] = msg.L[i].ByteLen() // delimiter appended separately
		case KindVar:
			lens[i] = msg.L[i].ByteLen()
		}
	}

	// Pass 2: recompute fields with &serialize expressions over a scratch
	// copy so Encode stays pure.
	copy(fields, msg.L[:len(c.fields)])
	for i := range c.fields {
		f := &c.fields[i]
		if f.serialize != nil {
			fields[i] = value.Int(f.serialize(fields, lens))
		}
	}

	// Pass 3: emit wire bytes.
	for i := range c.fields {
		f := &c.fields[i]
		switch f.Kind {
		case KindUint:
			dst = encodeUint(dst, fields[i].AsInt(), f.Size, c.unit.Order)
		case KindFixedBytes:
			b := fields[i].AsBytes()
			if len(b) >= f.Size {
				dst = append(dst, b[:f.Size]...)
			} else {
				dst = append(dst, b...)
				for j := len(b); j < f.Size; j++ {
					dst = append(dst, 0)
				}
			}
		case KindLiteral:
			dst = append(dst, f.Lit...)
		case KindBytes:
			dst = append(dst, fields[i].AsBytes()...)
		case KindUntil:
			dst = append(dst, fields[i].AsBytes()...)
			dst = append(dst, f.Delim...)
		case KindVar:
			// no wire presence
		}
	}
	return dst, nil
}

// EncodeScatter implements ScatterEncoder. Messages with a captured,
// unmodified wire image are appended to sc as a zero-copy reference into
// the message's pooled region (retained until the flush completes);
// modified messages are rebuilt through scratch and copied into sc's pooled
// tail. The possibly-grown scratch is returned for reuse.
func (c *Codec) EncodeScatter(sc *buffer.Scatter, scratch []byte, msg value.Value) ([]byte, error) {
	if msg.Kind != value.KindRecord || msg.R != c.desc {
		return scratch, fmt.Errorf("%w: encode of %v message with %q codec", ErrMalformed, msg.Kind, c.unit.Name)
	}
	if raw := c.rawView(msg); raw != nil {
		sc.AppendRef(raw, msg.O)
		return scratch, nil
	}
	out, err := c.rebuild(scratch[:0], msg)
	if err != nil {
		return out, err
	}
	sc.Append(out)
	return out, nil
}
