package grammar

import (
	"bytes"
	"testing"

	"flick/internal/buffer"
	"flick/internal/value"
)

// fuzzUnit exercises every field kind the grammar language offers: a
// length-bearing uint, fixed-width padding, a literal delimiter, a
// delimiter-terminated text field, a computed-length bytes field and a
// derived variable.
func fuzzUnit() Unit {
	return Unit{
		Name:  "fuzz.unit",
		Order: BigEndian,
		Fields: []Field{
			{Name: "dlen", Kind: KindUint, Size: 2, Serialize: LenOf("data")},
			{Name: "pad", Kind: KindFixedBytes, Size: 3},
			{Kind: KindLiteral, Lit: []byte("AB")},
			{Name: "text", Kind: KindUntil, Delim: []byte("\r\n"), MaxLen: 1 << 10},
			{Name: "data", Kind: KindBytes, Length: Ref("dlen"), MaxLen: 1 << 12},
			{Name: "sum", Kind: KindVar, Parse: Add(Ref("dlen"), Const(1))},
		},
	}
}

// FuzzGrammarRoundTrip drives arbitrary bytes through compiled grammars
// (full, raw-capturing, and field-pruned) and asserts decode never panics
// and decode→encode→decode is a fixed point on the rebuild path.
func FuzzGrammarRoundTrip(f *testing.F) {
	f.Add([]byte("\x00\x03xyzABhello\r\nabc"))
	f.Add([]byte("\x00\x00...AB\r\n"))
	f.Add([]byte("\xff\xff...ABtext\r\n"))
	f.Add(append([]byte{0, 2, 'p', 'p', 'p', 'A', 'B', '\r', '\n'}, []byte{1, 2}...))
	f.Add([]byte("line one\nline two\n"))

	full := fuzzUnit().MustCompile()
	captured := fuzzUnit().MustCompile(CaptureRaw())
	pruned := fuzzUnit().MustCompile(Needed("data"))
	line := LineUnit().MustCompile(CaptureRaw())

	f.Fuzz(func(t *testing.T, data []byte) {
		for _, c := range []*Codec{full, captured, pruned, line} {
			q := buffer.NewQueue(nil)
			q.Append(data)
			dec := c.NewDecoder()
			for i := 0; i < 64; i++ {
				msg, ok, err := dec.Decode(q)
				if err != nil || !ok {
					break
				}
				roundTrip(t, c, msg)
				msg.Release()
			}
		}
	})
}

// roundTrip asserts the rebuild path is a byte-exact fixed point and that
// materialised fields survive it.
func roundTrip(t *testing.T, c *Codec, msg value.Value) {
	t.Helper()
	c.ClearRaw(msg)
	e1, err := c.Encode(nil, msg)
	if err != nil {
		t.Fatalf("%s: rebuild encode failed: %v", c.FormatName(), err)
	}
	q := buffer.NewQueue(nil)
	q.Append(e1)
	msg2, ok, err := c.NewDecoder().Decode(q)
	if err != nil || !ok {
		t.Fatalf("%s: re-decode of rebuilt message failed (ok=%v err=%v): %x",
			c.FormatName(), ok, err, e1)
	}
	for i, name := range c.Desc().Fields {
		if name == "_raw" {
			continue
		}
		if !value.Equal(msg.L[i], msg2.L[i]) {
			t.Fatalf("%s: field %s changed across round trip: %v -> %v",
				c.FormatName(), name, msg.L[i], msg2.L[i])
		}
	}
	c.ClearRaw(msg2)
	e2, err := c.Encode(nil, msg2)
	if err != nil {
		t.Fatalf("%s: second rebuild encode failed: %v", c.FormatName(), err)
	}
	msg2.Release()
	if !bytes.Equal(e1, e2) {
		t.Fatalf("%s: rebuild encoding not a fixed point:\n e1 %x\n e2 %x", c.FormatName(), e1, e2)
	}
}
