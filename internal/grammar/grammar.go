// Package grammar implements FLICK's message grammar subsystem (§4.2 of the
// paper), modelled on the Spicy/Binpac++ parser generator. A Unit declares
// the wire format of a message as an ordered sequence of fields — fixed-size
// integers, variable-length byte fields whose lengths are computed from
// earlier fields, literal delimiters, delimiter-terminated text fields and
// computed variables with &parse / &serialize expressions. Compiling a unit
// yields a Codec that provides:
//
//   - an incremental StreamDecoder that consumes bytes from a buffer.Queue
//     as they arrive and emits a value.Value record per complete message
//     ("it supports the incremental parsing of messages as new data
//     arrives"), and
//   - an Encode path that re-serialises records, recomputing the
//     length-bearing fields from the current field contents.
//
// Compile accepts the set of fields the FLICK program actually accesses;
// unneeded variable-length fields are skipped rather than materialised
// ("other fields are aggregated ... and then skipped or simply copied in
// their wire format representation"), which is the paper's
// application-specific parser specialisation.
package grammar

import (
	"errors"
	"fmt"

	"flick/internal/buffer"
	"flick/internal/value"
)

// ByteOrder selects the wire encoding of integer fields.
type ByteOrder int

// Byte orders. The paper's %byteorder property defaults to big-endian for
// network formats.
const (
	BigEndian ByteOrder = iota
	LittleEndian
)

// FieldKind enumerates wire field kinds.
type FieldKind int

// Field kinds.
const (
	// KindUint is a fixed-size unsigned integer (Size ∈ {1,2,4,8}).
	KindUint FieldKind = iota
	// KindBytes is a variable-length byte field; Length gives its size.
	KindBytes
	// KindFixedBytes is a fixed-length byte field (Size bytes); often
	// anonymous padding ("reserved for future use").
	KindFixedBytes
	// KindLiteral is a constant byte sequence, validated on parse and
	// emitted verbatim on serialise (delimiters like "\r\n").
	KindLiteral
	// KindUntil is a byte field terminated by Delim; the delimiter is
	// consumed but not included in the value (text protocols).
	KindUntil
	// KindVar is a computed variable: no wire bytes; its value is the
	// &parse expression evaluated over earlier fields.
	KindVar
)

// Field declares one field of a unit.
type Field struct {
	// Name is the field name; "" declares an anonymous field that cannot
	// be referenced (the paper's `_`).
	Name string
	// Kind is the wire kind.
	Kind FieldKind
	// Size is the width of KindUint (1, 2, 4, 8) or KindFixedBytes fields.
	Size int
	// Length computes the byte length of a KindBytes field from earlier
	// fields.
	Length Expr
	// Lit is the constant payload of a KindLiteral field.
	Lit []byte
	// Delim terminates a KindUntil field.
	Delim []byte
	// Parse computes a KindVar field's value during parsing.
	Parse Expr
	// Serialize, when set on a KindUint field, recomputes the field's
	// value during encoding (length fields derive from current contents).
	Serialize Expr
	// MaxLen bounds KindBytes/KindUntil fields; parsing fails with
	// ErrTooLarge beyond it. Zero means the unit default.
	MaxLen int
}

// Unit declares a message format.
type Unit struct {
	// Name identifies the format ("memcached.cmd").
	Name string
	// Order is the integer wire encoding.
	Order ByteOrder
	// Fields is the ordered field list.
	Fields []Field
	// MaxMessage bounds the total message size (default 16 MiB).
	MaxMessage int
}

// Errors reported by compilation and decoding.
var (
	ErrBadUnit    = errors.New("grammar: invalid unit")
	ErrMalformed  = errors.New("grammar: malformed message")
	ErrTooLarge   = errors.New("grammar: message exceeds size bound")
	ErrBadLiteral = errors.New("grammar: literal mismatch")
)

// DefaultMaxMessage bounds message size when the unit does not set one.
const DefaultMaxMessage = 16 << 20

// Expr is an integer expression over earlier fields of a unit, used for
// &length, &parse and &serialize annotations. Expressions are pure and are
// resolved to field slots at compile time.
type Expr interface {
	// refs appends the names this expression references.
	refs(dst []string) []string
	// resolve binds names to slots; returns an evaluable closure.
	resolve(slotOf func(string) int) (compiledExpr, error)
}

// compiledExpr evaluates over a record's field slice. lens[i] carries the
// encoded byte length of field i during serialisation (nil during parse,
// when Len() is invalid).
type compiledExpr func(fields []value.Value, lens []int) int64

type constExpr int64

// Const is a constant expression.
func Const(n int64) Expr { return constExpr(n) }

func (c constExpr) refs(dst []string) []string { return dst }
func (c constExpr) resolve(func(string) int) (compiledExpr, error) {
	return func([]value.Value, []int) int64 { return int64(c) }, nil
}

type refExpr string

// Ref reads the integer value of the named earlier field.
func Ref(name string) Expr { return refExpr(name) }

func (r refExpr) refs(dst []string) []string { return append(dst, string(r)) }
func (r refExpr) resolve(slotOf func(string) int) (compiledExpr, error) {
	i := slotOf(string(r))
	if i < 0 {
		return nil, fmt.Errorf("%w: expression references unknown field %q", ErrBadUnit, string(r))
	}
	return func(fields []value.Value, _ []int) int64 { return fields[i].AsInt() }, nil
}

type lenExpr string

// LenOf reads the byte length of the named field. During parsing this is
// the length of the already-parsed field; during serialisation it is the
// encoded length of the field's current contents.
func LenOf(name string) Expr { return lenExpr(name) }

func (l lenExpr) refs(dst []string) []string { return append(dst, string(l)) }
func (l lenExpr) resolve(slotOf func(string) int) (compiledExpr, error) {
	i := slotOf(string(l))
	if i < 0 {
		return nil, fmt.Errorf("%w: expression references unknown field %q", ErrBadUnit, string(l))
	}
	return func(fields []value.Value, lens []int) int64 {
		if lens != nil {
			return int64(lens[i])
		}
		return int64(fields[i].ByteLen())
	}, nil
}

type binExpr struct {
	op   byte
	a, b Expr
}

// Add is a + b.
func Add(a, b Expr) Expr { return binExpr{'+', a, b} }

// Sub is a - b.
func Sub(a, b Expr) Expr { return binExpr{'-', a, b} }

// Mul is a * b.
func Mul(a, b Expr) Expr { return binExpr{'*', a, b} }

func (e binExpr) refs(dst []string) []string {
	return e.b.refs(e.a.refs(dst))
}

func (e binExpr) resolve(slotOf func(string) int) (compiledExpr, error) {
	fa, err := e.a.resolve(slotOf)
	if err != nil {
		return nil, err
	}
	fb, err := e.b.resolve(slotOf)
	if err != nil {
		return nil, err
	}
	switch e.op {
	case '+':
		return func(f []value.Value, l []int) int64 { return fa(f, l) + fb(f, l) }, nil
	case '-':
		return func(f []value.Value, l []int) int64 { return fa(f, l) - fb(f, l) }, nil
	default:
		return func(f []value.Value, l []int) int64 { return fa(f, l) * fb(f, l) }, nil
	}
}

// compiledField is a field with resolved expressions.
type compiledField struct {
	Field
	slot      int // record slot (== field index)
	length    compiledExpr
	parse     compiledExpr
	serialize compiledExpr
	maxLen    int
	needed    bool // materialise the value during parse
}

// Codec is a compiled unit: an incremental decoder factory plus an encoder.
type Codec struct {
	unit    Unit
	fields  []compiledField
	desc    *value.RecordDesc
	maxMsg  int
	capture bool // keep the raw wire image of each message
	rawSlot int  // desc slot of the raw image, -1 when capture is off
}

// CompileOption adjusts codec compilation.
type CompileOption func(*compileCfg)

type compileCfg struct {
	needed  []string
	capture bool
}

// Needed restricts materialisation to the named fields (plus every integer
// field, which must always be decoded to locate later fields). With no
// Needed option all fields are materialised.
func Needed(fields ...string) CompileOption {
	return func(c *compileCfg) { c.needed = append(c.needed, fields...) }
}

// CaptureRaw keeps each message's verbatim wire image in the hidden "_raw"
// record field, enabling zero-rewrite forwarding of unmodified messages.
func CaptureRaw() CompileOption {
	return func(c *compileCfg) { c.capture = true }
}

// Compile validates the unit and builds a codec.
func (u Unit) Compile(opts ...CompileOption) (*Codec, error) {
	var cfg compileCfg
	for _, o := range opts {
		o(&cfg)
	}
	if len(u.Fields) == 0 {
		return nil, fmt.Errorf("%w: unit %q has no fields", ErrBadUnit, u.Name)
	}
	maxMsg := u.MaxMessage
	if maxMsg <= 0 {
		maxMsg = DefaultMaxMessage
	}

	names := make([]string, len(u.Fields))
	slotOfUpTo := func(limit int) func(string) int {
		return func(name string) int {
			for i := 0; i < limit; i++ {
				if names[i] == name && names[i] != "" {
					return i
				}
			}
			return -1
		}
	}
	slotOfAny := func(name string) int {
		for i, n := range names {
			if n == name && n != "" {
				return i
			}
		}
		return -1
	}

	for i, f := range u.Fields {
		name := f.Name
		if name == "" {
			name = fmt.Sprintf("_%d", i)
		}
		for j := 0; j < i; j++ {
			if names[j] == name {
				return nil, fmt.Errorf("%w: duplicate field %q in unit %q", ErrBadUnit, name, u.Name)
			}
		}
		names[i] = name
	}

	neededSet := map[string]bool{}
	pruned := len(cfg.needed) > 0
	for _, n := range cfg.needed {
		if slotOfAny(n) < 0 {
			return nil, fmt.Errorf("%w: needed field %q not in unit %q", ErrBadUnit, n, u.Name)
		}
		neededSet[n] = true
	}

	fields := make([]compiledField, len(u.Fields))
	for i, f := range u.Fields {
		cf := compiledField{Field: f, slot: i, maxLen: f.MaxLen}
		if cf.maxLen <= 0 {
			cf.maxLen = maxMsg
		}
		earlier := slotOfUpTo(i)
		var err error
		switch f.Kind {
		case KindUint:
			switch f.Size {
			case 1, 2, 4, 8:
			default:
				return nil, fmt.Errorf("%w: uint field %q has size %d", ErrBadUnit, names[i], f.Size)
			}
		case KindFixedBytes:
			if f.Size <= 0 {
				return nil, fmt.Errorf("%w: fixed bytes field %q has size %d", ErrBadUnit, names[i], f.Size)
			}
		case KindBytes:
			if f.Length == nil {
				return nil, fmt.Errorf("%w: bytes field %q has no length expression", ErrBadUnit, names[i])
			}
			if cf.length, err = f.Length.resolve(earlier); err != nil {
				return nil, err
			}
		case KindLiteral:
			if len(f.Lit) == 0 {
				return nil, fmt.Errorf("%w: literal field %q is empty", ErrBadUnit, names[i])
			}
		case KindUntil:
			if len(f.Delim) == 0 {
				return nil, fmt.Errorf("%w: until field %q has no delimiter", ErrBadUnit, names[i])
			}
		case KindVar:
			if f.Parse == nil {
				return nil, fmt.Errorf("%w: var field %q has no parse expression", ErrBadUnit, names[i])
			}
			if cf.parse, err = f.Parse.resolve(earlier); err != nil {
				return nil, err
			}
		default:
			return nil, fmt.Errorf("%w: field %q has unknown kind %d", ErrBadUnit, names[i], f.Kind)
		}
		if f.Serialize != nil {
			if f.Kind != KindUint && f.Kind != KindVar {
				return nil, fmt.Errorf("%w: serialize expression on non-integer field %q", ErrBadUnit, names[i])
			}
			// Serialize expressions may reference any field.
			if cf.serialize, err = f.Serialize.resolve(slotOfAny); err != nil {
				return nil, err
			}
		}
		// Materialisation: integer-like fields are always decoded (cheap,
		// and later lengths may depend on them). Byte-carrying fields are
		// materialised only when needed.
		switch f.Kind {
		case KindUint, KindVar:
			cf.needed = true
		case KindLiteral:
			cf.needed = false
		default:
			cf.needed = !pruned || neededSet[f.Name]
		}
		fields[i] = cf
	}

	descFields := names
	rawSlot := -1
	if cfg.capture {
		descFields = append(append([]string{}, names...), "_raw")
		rawSlot = len(descFields) - 1
	}
	return &Codec{
		unit:    u,
		fields:  fields,
		desc:    value.NewRecordDesc(u.Name, descFields...),
		maxMsg:  maxMsg,
		capture: cfg.capture,
		rawSlot: rawSlot,
	}, nil
}

// MustCompile is Compile that panics on error (for built-in grammars).
func (u Unit) MustCompile(opts ...CompileOption) *Codec {
	c, err := u.Compile(opts...)
	if err != nil {
		panic(err)
	}
	return c
}

// Desc returns the record descriptor for messages of this codec.
func (c *Codec) Desc() *value.RecordDesc { return c.desc }

// FormatName identifies the wire format.
func (c *Codec) FormatName() string { return c.unit.Name }

// Raw returns the captured wire image of a message decoded by a CaptureRaw
// codec, or nil.
func (c *Codec) Raw(msg value.Value) []byte {
	if c.rawSlot < 0 || msg.Kind != value.KindRecord || c.rawSlot >= len(msg.L) {
		return nil
	}
	return msg.L[c.rawSlot].B
}

// ClearRaw drops a message's captured wire image so that Encode rebuilds
// the message from its (possibly modified) fields.
func (c *Codec) ClearRaw(msg value.Value) {
	if c.rawSlot >= 0 && msg.Kind == value.KindRecord && c.rawSlot < len(msg.L) {
		msg.L[c.rawSlot] = value.Null
	}
}

// WireFormat is the interface shared by grammar-compiled codecs and native
// codecs (e.g. the hand-written HTTP codec): an incremental decoder factory
// plus an encoder.
type WireFormat interface {
	// FormatName identifies the format in diagnostics.
	FormatName() string
	// Desc describes the records this format produces.
	Desc() *value.RecordDesc
	// NewDecoder creates an incremental stream decoder.
	NewDecoder() StreamDecoder
	// Encode appends msg's wire form to dst and returns the extended slice.
	Encode(dst []byte, msg value.Value) ([]byte, error)
}

// ScatterEncoder is implemented by codecs that can serialise into a pooled
// scatter list: raw-captured messages are emitted as zero-copy references
// into their backing region, rebuilt messages are copied through scratch
// (returned, possibly grown, for reuse). Output tasks use it to batch many
// messages into one vectored write.
type ScatterEncoder interface {
	EncodeScatter(sc *buffer.Scatter, scratch []byte, msg value.Value) ([]byte, error)
}

// StreamDecoder incrementally decodes messages from a byte queue. One
// decoder serves one connection (§3.2: input tasks deserialise a single
// input channel's byte stream).
type StreamDecoder interface {
	// Decode consumes at most one complete message from q. It returns
	// ok=false (without consuming) when more bytes are required.
	Decode(q *buffer.Queue) (msg value.Value, ok bool, err error)
}

var (
	_ WireFormat     = (*Codec)(nil)
	_ ScatterEncoder = (*Codec)(nil)
)
