package grammar

import (
	"bytes"
	"errors"
	"testing"
	"testing/quick"

	"flick/internal/buffer"
	"flick/internal/value"
)

// encodeMemcached builds a wire message for tests.
func encodeMemcached(t testing.TB, opcode byte, key, val string) []byte {
	t.Helper()
	c := MemcachedUnit().MustCompile()
	rec := c.Desc().New()
	rec.SetField("magic_code", value.Int(MemcachedMagicRequest))
	rec.SetField("opcode", value.Int(int64(opcode)))
	rec.SetField("key", value.Bytes([]byte(key)))
	rec.SetField("value", value.Bytes([]byte(val)))
	out, err := c.Encode(nil, rec)
	if err != nil {
		t.Fatal(err)
	}
	return out
}

func TestMemcachedRoundTrip(t *testing.T) {
	c := MemcachedUnit().MustCompile()
	wire := encodeMemcached(t, MemcachedOpGetK, "user:1", "alice")

	q := buffer.NewQueue(nil)
	q.Append(wire)
	msg, ok, err := c.NewDecoder().Decode(q)
	if err != nil || !ok {
		t.Fatalf("decode: ok=%v err=%v", ok, err)
	}
	if got := msg.Field("key").AsString(); got != "user:1" {
		t.Fatalf("key = %q", got)
	}
	if got := msg.Field("value").AsString(); got != "alice" {
		t.Fatalf("value = %q", got)
	}
	if got := msg.Field("opcode").AsInt(); got != MemcachedOpGetK {
		t.Fatalf("opcode = %d", got)
	}
	// Framing fields were derived, not hand-set.
	if got := msg.Field("key_len").AsInt(); got != 6 {
		t.Fatalf("key_len = %d", got)
	}
	if got := msg.Field("total_len").AsInt(); got != 11 {
		t.Fatalf("total_len = %d", got)
	}
	if got := msg.Field("value_len").AsInt(); got != 5 {
		t.Fatalf("value_len (var) = %d", got)
	}
	if q.Len() != 0 {
		t.Fatalf("%d bytes left in queue", q.Len())
	}
}

func TestMemcachedIncrementalDecode(t *testing.T) {
	c := MemcachedUnit().MustCompile()
	wire := encodeMemcached(t, MemcachedOpGet, "some-key", "some-value-payload")
	q := buffer.NewQueue(nil)
	dec := c.NewDecoder()

	// Feed one byte at a time; must complete exactly at the last byte.
	for i, b := range wire {
		q.Append([]byte{b})
		msg, ok, err := dec.Decode(q)
		if err != nil {
			t.Fatalf("byte %d: %v", i, err)
		}
		if ok != (i == len(wire)-1) {
			t.Fatalf("byte %d: ok=%v", i, ok)
		}
		if ok && msg.Field("key").AsString() != "some-key" {
			t.Fatalf("key = %q", msg.Field("key").AsString())
		}
	}
}

func TestMemcachedPipelinedMessages(t *testing.T) {
	c := MemcachedUnit().MustCompile()
	var wire []byte
	wire = append(wire, encodeMemcached(t, MemcachedOpGet, "k1", "v1")...)
	wire = append(wire, encodeMemcached(t, MemcachedOpGet, "k2", "v2")...)
	wire = append(wire, encodeMemcached(t, MemcachedOpGet, "k3", "v3")...)
	q := buffer.NewQueue(nil)
	q.Append(wire)
	dec := c.NewDecoder()
	for _, want := range []string{"k1", "k2", "k3"} {
		msg, ok, err := dec.Decode(q)
		if err != nil || !ok {
			t.Fatalf("decode %s: ok=%v err=%v", want, ok, err)
		}
		if got := msg.Field("key").AsString(); got != want {
			t.Fatalf("key = %q, want %q", got, want)
		}
	}
	if _, ok, _ := dec.Decode(q); ok {
		t.Fatal("decoded a fourth message from empty stream")
	}
}

func TestMemcachedEncodeDecodeEncodeStable(t *testing.T) {
	c := MemcachedUnit().MustCompile()
	wire := encodeMemcached(t, MemcachedOpSet, "stable", "payload")
	q := buffer.NewQueue(nil)
	q.Append(wire)
	msg, ok, err := c.NewDecoder().Decode(q)
	if !ok || err != nil {
		t.Fatal(ok, err)
	}
	again, err := c.Encode(nil, msg)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(wire, again) {
		t.Fatalf("re-encode differs:\n%x\n%x", wire, again)
	}
}

func TestPrunedCodecSkipsUnneededFields(t *testing.T) {
	// A proxy only needs opcode and key (Listing 1 declares exactly those).
	c := MemcachedUnit().MustCompile(Needed("key"))
	wire := encodeMemcached(t, MemcachedOpGetK, "routing-key", "big-value-we-dont-care-about")
	q := buffer.NewQueue(nil)
	q.Append(wire)
	msg, ok, err := c.NewDecoder().Decode(q)
	if !ok || err != nil {
		t.Fatal(ok, err)
	}
	if msg.Field("key").AsString() != "routing-key" {
		t.Fatal("needed field missing")
	}
	if !msg.Field("value").IsNull() {
		t.Fatal("unneeded value field was materialised")
	}
	// Integer fields are always available (they locate later fields).
	if msg.Field("opcode").AsInt() != MemcachedOpGetK {
		t.Fatal("integer field missing")
	}
}

func TestCaptureRawForwarding(t *testing.T) {
	c := MemcachedUnit().MustCompile(Needed("key"), CaptureRaw())
	wire := encodeMemcached(t, MemcachedOpGet, "fwd", "forward-me")
	q := buffer.NewQueue(nil)
	q.Append(wire)
	msg, ok, err := c.NewDecoder().Decode(q)
	if !ok || err != nil {
		t.Fatal(ok, err)
	}
	raw := c.Raw(msg)
	if !bytes.Equal(raw, wire) {
		t.Fatalf("raw image differs from wire:\n%x\n%x", raw, wire)
	}
	if msg.Field("key").AsString() != "fwd" {
		t.Fatal("key not available alongside raw")
	}
}

func TestRawOnNonCapturingCodec(t *testing.T) {
	c := MemcachedUnit().MustCompile()
	wire := encodeMemcached(t, MemcachedOpGet, "k", "v")
	q := buffer.NewQueue(nil)
	q.Append(wire)
	msg, _, _ := c.NewDecoder().Decode(q)
	if c.Raw(msg) != nil {
		t.Fatal("non-capturing codec returned raw bytes")
	}
	if c.Raw(value.Int(1)) != nil {
		t.Fatal("Raw on non-record")
	}
}

func TestHadoopKVRoundTrip(t *testing.T) {
	c := HadoopKVUnit().MustCompile()
	rec := c.Desc().New()
	rec.SetField("key", value.Bytes([]byte("word")))
	rec.SetField("value", value.Bytes([]byte("42")))
	wire, err := c.Encode(nil, rec)
	if err != nil {
		t.Fatal(err)
	}
	q := buffer.NewQueue(nil)
	q.Append(wire)
	msg, ok, err := c.NewDecoder().Decode(q)
	if !ok || err != nil {
		t.Fatal(ok, err)
	}
	if msg.Field("key").AsString() != "word" || msg.Field("value").AsString() != "42" {
		t.Fatalf("kv = %q/%q", msg.Field("key").AsString(), msg.Field("value").AsString())
	}
}

func TestLineUnitDelimited(t *testing.T) {
	c := LineUnit().MustCompile()
	q := buffer.NewQueue(nil)
	q.Append([]byte("hello wo"))
	dec := c.NewDecoder()
	if _, ok, _ := dec.Decode(q); ok {
		t.Fatal("decoded without newline")
	}
	q.Append([]byte("rld\nnext"))
	msg, ok, err := dec.Decode(q)
	if !ok || err != nil {
		t.Fatal(ok, err)
	}
	if msg.Field("line").AsString() != "hello world" {
		t.Fatalf("line = %q", msg.Field("line").AsString())
	}
	// Second line still incomplete.
	if _, ok, _ := dec.Decode(q); ok {
		t.Fatal("decoded incomplete second line")
	}
	q.Append([]byte("\n"))
	msg, ok, _ = dec.Decode(q)
	if !ok || msg.Field("line").AsString() != "next" {
		t.Fatalf("second line = %v %q", ok, msg.Field("line").AsString())
	}
}

func TestLineEncodeAppendsDelimiter(t *testing.T) {
	c := LineUnit().MustCompile()
	rec := c.Desc().New()
	rec.SetField("line", value.Str("out"))
	wire, err := c.Encode(nil, rec)
	if err != nil {
		t.Fatal(err)
	}
	if string(wire) != "out\n" {
		t.Fatalf("wire = %q", wire)
	}
}

func TestMultiByteDelimiterSplitAcrossFeeds(t *testing.T) {
	u := Unit{Name: "crlf", Fields: []Field{
		{Name: "head", Kind: KindUntil, Delim: []byte("\r\n")},
	}}
	c := u.MustCompile()
	dec := c.NewDecoder()
	q := buffer.NewQueue(nil)
	q.Append([]byte("line\r")) // delimiter half-arrived
	if _, ok, _ := dec.Decode(q); ok {
		t.Fatal("decoded on half delimiter")
	}
	q.Append([]byte("\n"))
	msg, ok, err := dec.Decode(q)
	if !ok || err != nil {
		t.Fatal(ok, err)
	}
	if msg.Field("head").AsString() != "line" {
		t.Fatalf("head = %q", msg.Field("head").AsString())
	}
}

func TestFalseDelimiterPrefix(t *testing.T) {
	u := Unit{Name: "crlf", Fields: []Field{
		{Name: "head", Kind: KindUntil, Delim: []byte("\r\n")},
	}}
	c := u.MustCompile()
	q := buffer.NewQueue(nil)
	q.Append([]byte("a\rb\r\n")) // first \r is not a delimiter
	msg, ok, err := c.NewDecoder().Decode(q)
	if !ok || err != nil {
		t.Fatal(ok, err)
	}
	if msg.Field("head").AsString() != "a\rb" {
		t.Fatalf("head = %q", msg.Field("head").AsString())
	}
}

func TestLiteralMismatch(t *testing.T) {
	u := Unit{Name: "lit", Fields: []Field{
		{Name: "magic", Kind: KindLiteral, Lit: []byte("FLK")},
		{Name: "body", Kind: KindUntil, Delim: []byte("\n")},
	}}
	c := u.MustCompile()
	q := buffer.NewQueue(nil)
	q.Append([]byte("XXXbody\n"))
	_, ok, err := c.NewDecoder().Decode(q)
	if ok || !errors.Is(err, ErrBadLiteral) {
		t.Fatalf("ok=%v err=%v, want literal error", ok, err)
	}
}

func TestLiteralRoundTrip(t *testing.T) {
	u := Unit{Name: "lit", Fields: []Field{
		{Name: "magic", Kind: KindLiteral, Lit: []byte("FLK")},
		{Name: "body", Kind: KindUntil, Delim: []byte("\n")},
	}}
	c := u.MustCompile()
	rec := c.Desc().New()
	rec.SetField("body", value.Str("data"))
	wire, _ := c.Encode(nil, rec)
	if string(wire) != "FLKdata\n" {
		t.Fatalf("wire = %q", wire)
	}
	q := buffer.NewQueue(nil)
	q.Append(wire)
	msg, ok, err := c.NewDecoder().Decode(q)
	if !ok || err != nil || msg.Field("body").AsString() != "data" {
		t.Fatalf("roundtrip: %v %v %q", ok, err, msg.Field("body").AsString())
	}
}

func TestOversizeMessageRejected(t *testing.T) {
	u := Unit{Name: "cap", MaxMessage: 64, Fields: []Field{
		{Name: "n", Kind: KindUint, Size: 4},
		{Name: "body", Kind: KindBytes, Length: Ref("n")},
	}}
	c := u.MustCompile()
	q := buffer.NewQueue(nil)
	q.Append([]byte{0x00, 0x01, 0x00, 0x00}) // claims 64 KiB body
	_, ok, err := c.NewDecoder().Decode(q)
	if ok || !errors.Is(err, ErrTooLarge) {
		t.Fatalf("ok=%v err=%v, want ErrTooLarge", ok, err)
	}
}

func TestUnterminatedUntilRejected(t *testing.T) {
	u := Unit{Name: "cap", Fields: []Field{
		{Name: "line", Kind: KindUntil, Delim: []byte("\n"), MaxLen: 16},
	}}
	c := u.MustCompile()
	q := buffer.NewQueue(nil)
	q.Append(bytes.Repeat([]byte{'a'}, 64))
	_, ok, err := c.NewDecoder().Decode(q)
	if ok || !errors.Is(err, ErrTooLarge) {
		t.Fatalf("ok=%v err=%v", ok, err)
	}
}

func TestNegativeComputedLengthRejected(t *testing.T) {
	u := Unit{Name: "neg", Fields: []Field{
		{Name: "a", Kind: KindUint, Size: 1},
		{Name: "body", Kind: KindBytes, Length: Sub(Ref("a"), Const(100))},
	}}
	c := u.MustCompile()
	q := buffer.NewQueue(nil)
	q.Append([]byte{5})
	_, ok, err := c.NewDecoder().Decode(q)
	if ok || !errors.Is(err, ErrMalformed) {
		t.Fatalf("ok=%v err=%v", ok, err)
	}
}

func TestDecoderRecoversAfterError(t *testing.T) {
	// After a malformed message the decoder resets and can parse the next
	// clean message (the grammar "default behaviour" extension from §4.2).
	u := Unit{Name: "lit", Fields: []Field{
		{Name: "magic", Kind: KindLiteral, Lit: []byte("A")},
		{Name: "body", Kind: KindUntil, Delim: []byte("\n")},
	}}
	c := u.MustCompile()
	dec := c.NewDecoder()
	q := buffer.NewQueue(nil)
	q.Append([]byte("Xjunk\n"))
	if _, ok, err := dec.Decode(q); ok || err == nil {
		t.Fatal("expected literal error")
	}
	q.Reset()
	q.Append([]byte("Aok\n"))
	msg, ok, err := dec.Decode(q)
	if !ok || err != nil || msg.Field("body").AsString() != "ok" {
		t.Fatalf("post-error decode: %v %v", ok, err)
	}
}

func TestCompileErrors(t *testing.T) {
	cases := []Unit{
		{Name: "empty"},
		{Name: "badsize", Fields: []Field{{Name: "x", Kind: KindUint, Size: 3}}},
		{Name: "nolen", Fields: []Field{{Name: "x", Kind: KindBytes}}},
		{Name: "emptylit", Fields: []Field{{Name: "x", Kind: KindLiteral}}},
		{Name: "nodelim", Fields: []Field{{Name: "x", Kind: KindUntil}}},
		{Name: "novar", Fields: []Field{{Name: "x", Kind: KindVar}}},
		{Name: "badfix", Fields: []Field{{Name: "x", Kind: KindFixedBytes}}},
		{Name: "dup", Fields: []Field{
			{Name: "x", Kind: KindUint, Size: 1},
			{Name: "x", Kind: KindUint, Size: 1}}},
		{Name: "fwdref", Fields: []Field{
			{Name: "body", Kind: KindBytes, Length: Ref("later")},
			{Name: "later", Kind: KindUint, Size: 1}}},
		{Name: "unknownref", Fields: []Field{
			{Name: "body", Kind: KindBytes, Length: Ref("ghost")}}},
		{Name: "badser", Fields: []Field{
			{Name: "b", Kind: KindBytes, Length: Const(1), Serialize: Const(1)}}},
	}
	for _, u := range cases {
		if _, err := u.Compile(); err == nil {
			t.Errorf("unit %q compiled, want error", u.Name)
		}
	}
}

func TestCompileNeededUnknownField(t *testing.T) {
	if _, err := MemcachedUnit().Compile(Needed("nope")); err == nil {
		t.Fatal("unknown needed field accepted")
	}
}

func TestMustCompilePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustCompile did not panic")
		}
	}()
	Unit{Name: "bad"}.MustCompile()
}

func TestEncodeWrongRecordType(t *testing.T) {
	c := MemcachedUnit().MustCompile()
	if _, err := c.Encode(nil, value.Int(1)); err == nil {
		t.Fatal("encoded an int")
	}
	other := LineUnit().MustCompile()
	if _, err := c.Encode(nil, other.Desc().New()); err == nil {
		t.Fatal("encoded a foreign record")
	}
}

func TestAnonymousFieldsNotAddressable(t *testing.T) {
	c := MemcachedUnit().MustCompile()
	// The reserved byte is slot 4, exposed only as "_4".
	if c.Desc().FieldIndex("_4") != 4 {
		t.Fatal("anonymous slot naming changed")
	}
}

func TestLittleEndianIntegers(t *testing.T) {
	u := Unit{Name: "le", Order: LittleEndian, Fields: []Field{
		{Name: "x", Kind: KindUint, Size: 4},
	}}
	c := u.MustCompile()
	q := buffer.NewQueue(nil)
	q.Append([]byte{0x01, 0x02, 0x03, 0x04})
	msg, ok, _ := c.NewDecoder().Decode(q)
	if !ok || msg.Field("x").AsInt() != 0x04030201 {
		t.Fatalf("le decode = %x", msg.Field("x").AsInt())
	}
	wire, _ := c.Encode(nil, msg)
	if !bytes.Equal(wire, []byte{0x01, 0x02, 0x03, 0x04}) {
		t.Fatalf("le encode = %x", wire)
	}
}

// Property: encode→decode is the identity on (opcode, key, value) for the
// Memcached grammar, regardless of how the wire bytes are chunked.
func TestMemcachedRoundTripProperty(t *testing.T) {
	c := MemcachedUnit().MustCompile()
	f := func(op byte, key, val []byte, chunk uint8) bool {
		if len(key) > 1024 || len(val) > 4096 {
			return true
		}
		rec := c.Desc().New()
		rec.SetField("magic_code", value.Int(MemcachedMagicRequest))
		rec.SetField("opcode", value.Int(int64(op)))
		rec.SetField("key", value.Bytes(key))
		rec.SetField("value", value.Bytes(val))
		wire, err := c.Encode(nil, rec)
		if err != nil {
			return false
		}
		q := buffer.NewQueue(nil)
		dec := c.NewDecoder()
		step := int(chunk)%64 + 1
		var msg value.Value
		var ok bool
		for i := 0; i < len(wire); i += step {
			end := i + step
			if end > len(wire) {
				end = len(wire)
			}
			q.Append(wire[i:end])
			msg, ok, err = dec.Decode(q)
			if err != nil {
				return false
			}
			if ok && end < len(wire) {
				return false // completed too early
			}
		}
		return ok &&
			msg.Field("opcode").AsInt() == int64(op) &&
			bytes.Equal(msg.Field("key").AsBytes(), key) &&
			bytes.Equal(msg.Field("value").AsBytes(), val)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: Hadoop KV encode/decode round-trips arbitrary keys and values.
func TestHadoopRoundTripProperty(t *testing.T) {
	c := HadoopKVUnit().MustCompile()
	f := func(key, val []byte) bool {
		rec := c.Desc().New()
		rec.SetField("key", value.Bytes(key))
		rec.SetField("value", value.Bytes(val))
		wire, err := c.Encode(nil, rec)
		if err != nil {
			return false
		}
		q := buffer.NewQueue(nil)
		q.Append(wire)
		msg, ok, err := c.NewDecoder().Decode(q)
		return ok && err == nil &&
			bytes.Equal(msg.Field("key").AsBytes(), key) &&
			bytes.Equal(msg.Field("value").AsBytes(), val)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkMemcachedDecode(b *testing.B) {
	c := MemcachedUnit().MustCompile()
	wire := encodeMemcached(b, MemcachedOpGet, "benchmark-key", "benchmark-value-payload")
	q := buffer.NewQueue(nil)
	dec := c.NewDecoder()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q.Append(wire)
		if _, ok, err := dec.Decode(q); !ok || err != nil {
			b.Fatal(ok, err)
		}
	}
}

func BenchmarkMemcachedDecodePruned(b *testing.B) {
	c := MemcachedUnit().MustCompile(Needed("key"))
	wire := encodeMemcached(b, MemcachedOpGet, "benchmark-key",
		string(bytes.Repeat([]byte{'v'}, 1024)))
	q := buffer.NewQueue(nil)
	dec := c.NewDecoder()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q.Append(wire)
		if _, ok, err := dec.Decode(q); !ok || err != nil {
			b.Fatal(ok, err)
		}
	}
}

func BenchmarkMemcachedEncode(b *testing.B) {
	c := MemcachedUnit().MustCompile()
	rec := c.Desc().New()
	rec.SetField("opcode", value.Int(MemcachedOpGet))
	rec.SetField("key", value.Bytes([]byte("benchmark-key")))
	rec.SetField("value", value.Bytes([]byte("benchmark-value")))
	dst := make([]byte, 0, 256)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var err error
		dst, err = c.Encode(dst[:0], rec)
		if err != nil {
			b.Fatal(err)
		}
	}
}
