package lang

import (
	"fmt"
	"strings"
)

// Program is a parsed FLICK compilation unit.
type Program struct {
	Types []*TypeDecl
	Procs []*ProcDecl
	Funs  []*FunDecl
}

// TypeDecl declares a record type, optionally with serialisation
// annotations on its fields (Listing 1 of the paper).
type TypeDecl struct {
	Pos    Pos
	Name   string
	Fields []*FieldDecl
}

// FieldDecl is one record field. Anonymous fields ("_") consume wire bytes
// but are not addressable.
type FieldDecl struct {
	Pos   Pos
	Name  string // "" when anonymous
	Type  *TypeRef
	Attrs []Attr // serialisation annotations: size=, signed=
}

// Attr is a field annotation: name = expression (over earlier fields).
type Attr struct {
	Name  string
	Value Expr
}

// TypeRef names a type: a base type, a record type, or a parameterised
// dict/list.
type TypeRef struct {
	Pos  Pos
	Name string // "integer", "string", "boolean", "bytes", "dict", "list", or a record name
	Args []*TypeRef
}

func (t *TypeRef) String() string {
	if len(t.Args) == 0 {
		return t.Name
	}
	parts := make([]string, len(t.Args))
	for i, a := range t.Args {
		parts[i] = a.String()
	}
	sep := "*"
	if t.Name == "list" {
		sep = ","
	}
	return t.Name + "<" + strings.Join(parts, sep) + ">"
}

// ChanDir is a channel direction annotation.
type ChanDir int

// Channel directions: both (T/T), read-only (T/-), write-only (-/T).
const (
	ChanBoth ChanDir = iota
	ChanRead
	ChanWrite
)

func (d ChanDir) String() string {
	switch d {
	case ChanBoth:
		return "both"
	case ChanRead:
		return "read"
	case ChanWrite:
		return "write"
	}
	return "invalid"
}

// ChanType is a channel's produce/accept types and direction. A channel
// typed `req/resp` produces values of type req (the process reads them) and
// accepts values of type resp (the process writes them); `-` on either side
// restricts the direction (§4.1: "Channels are bi-directional and typed
// according to the type of values produce/consume").
type ChanType struct {
	Pos   Pos
	Recv  string // type produced to the process ("" when write-only)
	Send  string // type accepted from the process ("" when read-only)
	Array bool   // [T/T] channel array
}

// Dir derives the direction from the populated sides.
func (c *ChanType) Dir() ChanDir {
	switch {
	case c.Recv == "":
		return ChanWrite
	case c.Send == "":
		return ChanRead
	default:
		return ChanBoth
	}
}

// Elem returns the channel's primary element type: the produce side when
// readable, otherwise the accept side.
func (c *ChanType) Elem() string {
	if c.Recv != "" {
		return c.Recv
	}
	return c.Send
}

func (c *ChanType) String() string {
	r, s := c.Recv, c.Send
	if r == "" {
		r = "-"
	}
	if s == "" {
		s = "-"
	}
	core := r + "/" + s
	if c.Array {
		return "[" + core + "]"
	}
	return core
}

// ProcDecl declares a process: its channel signature and body.
type ProcDecl struct {
	Pos      Pos
	Name     string
	Channels []*ChanParam
	Body     []Stmt
}

// ChanParam is one channel parameter of a process.
type ChanParam struct {
	Pos  Pos
	Name string
	Type *ChanType
}

// FunDecl declares a function. FLICK functions are first-order and may not
// recurse (§3.2 of the paper).
type FunDecl struct {
	Pos     Pos
	Name    string
	Params  []*Param
	Results []*TypeRef // empty = unit
	Body    []Stmt
}

// Param is a function parameter: a value (possibly by reference) or a
// channel (write-only channels let functions route data, Listing 1's
// test_cache).
type Param struct {
	Pos  Pos
	Name string
	// Value parameter:
	Type *TypeRef
	Ref  bool
	// Channel parameter (Type == nil):
	Chan *ChanType
}

// --- statements ---

// Stmt is a statement node.
type Stmt interface {
	stmtNode()
	Position() Pos
}

// GlobalStmt declares process-wide shared state: `global cache := empty_dict`.
type GlobalStmt struct {
	Pos  Pos
	Name string
	Init Expr
}

// LetStmt binds a local: `let target = hash(req.key) mod len(backends)`.
type LetStmt struct {
	Pos  Pos
	Name string
	Init Expr
}

// AssignStmt stores through a dict index or record field:
// `cache[resp.key] := resp`.
type AssignStmt struct {
	Pos    Pos
	Target Expr // IndexExpr or FieldExpr
	Value  Expr
}

// IfStmt is a conditional with optional else.
type IfStmt struct {
	Pos  Pos
	Cond Expr
	Then []Stmt
	Else []Stmt
}

// PipeStmt routes data in a process body:
// `backends => update_cache(cache) => client`. Src is a channel (or channel
// array); Stages are function applications; Dst, when set, receives each
// stage chain's result.
type PipeStmt struct {
	Pos    Pos
	Src    Expr
	Stages []*CallExpr // may be empty (pure forwarding)
	Dst    Expr        // nil when the last stage consumes the value
}

// SendStmt transmits a value into a channel inside a function body:
// `req => backends[target]`.
type SendStmt struct {
	Pos   Pos
	Value Expr
	Dst   Expr
}

// FoldtStmt is the parallel tree fold over a channel array (§4.3):
// `foldt combine key_of mappers => reducer`.
type FoldtStmt struct {
	Pos     Pos
	Combine string // binary aggregation function (commutative, associative)
	Order   string // key-extraction function
	Src     string // channel-array parameter name
	Dst     string // output channel parameter name
}

// ExprStmt evaluates an expression; the last expression statement executed
// in a function body is its return value.
type ExprStmt struct {
	Pos Pos
	X   Expr
}

func (*GlobalStmt) stmtNode() {}
func (*LetStmt) stmtNode()    {}
func (*AssignStmt) stmtNode() {}
func (*IfStmt) stmtNode()     {}
func (*PipeStmt) stmtNode()   {}
func (*SendStmt) stmtNode()   {}
func (*FoldtStmt) stmtNode()  {}
func (*ExprStmt) stmtNode()   {}

// Position implements Stmt.
func (s *GlobalStmt) Position() Pos { return s.Pos }

// Position implements Stmt.
func (s *LetStmt) Position() Pos { return s.Pos }

// Position implements Stmt.
func (s *AssignStmt) Position() Pos { return s.Pos }

// Position implements Stmt.
func (s *IfStmt) Position() Pos { return s.Pos }

// Position implements Stmt.
func (s *PipeStmt) Position() Pos { return s.Pos }

// Position implements Stmt.
func (s *SendStmt) Position() Pos { return s.Pos }

// Position implements Stmt.
func (s *FoldtStmt) Position() Pos { return s.Pos }

// Position implements Stmt.
func (s *ExprStmt) Position() Pos { return s.Pos }

// --- expressions ---

// Expr is an expression node.
type Expr interface {
	exprNode()
	Position() Pos
}

// Ident references a name.
type Ident struct {
	Pos  Pos
	Name string
}

// IntLit is an integer literal.
type IntLit struct {
	Pos Pos
	Val int64
}

// StrLit is a string literal.
type StrLit struct {
	Pos Pos
	Val string
}

// BoolLit is true/false.
type BoolLit struct {
	Pos Pos
	Val bool
}

// NoneLit is the null literal.
type NoneLit struct {
	Pos Pos
}

// FieldExpr accesses a record field: resp.key.
type FieldExpr struct {
	Pos  Pos
	X    Expr
	Name string
}

// IndexExpr indexes a dict or channel array: cache[k], backends[i].
type IndexExpr struct {
	Pos   Pos
	X     Expr
	Index Expr
}

// CallExpr applies a function or builtin.
type CallExpr struct {
	Pos  Pos
	Name string
	Args []Expr
}

// BinaryExpr combines two operands. Op is the token kind of the operator.
type BinaryExpr struct {
	Pos  Pos
	Op   TokKind
	L, R Expr
}

// UnaryExpr negates (TokMinus) or complements (TokNot) its operand.
type UnaryExpr struct {
	Pos Pos
	Op  TokKind
	X   Expr
}

func (*Ident) exprNode()      {}
func (*IntLit) exprNode()     {}
func (*StrLit) exprNode()     {}
func (*BoolLit) exprNode()    {}
func (*NoneLit) exprNode()    {}
func (*FieldExpr) exprNode()  {}
func (*IndexExpr) exprNode()  {}
func (*CallExpr) exprNode()   {}
func (*BinaryExpr) exprNode() {}
func (*UnaryExpr) exprNode()  {}

// Position implements Expr.
func (e *Ident) Position() Pos { return e.Pos }

// Position implements Expr.
func (e *IntLit) Position() Pos { return e.Pos }

// Position implements Expr.
func (e *StrLit) Position() Pos { return e.Pos }

// Position implements Expr.
func (e *BoolLit) Position() Pos { return e.Pos }

// Position implements Expr.
func (e *NoneLit) Position() Pos { return e.Pos }

// Position implements Expr.
func (e *FieldExpr) Position() Pos { return e.Pos }

// Position implements Expr.
func (e *IndexExpr) Position() Pos { return e.Pos }

// Position implements Expr.
func (e *CallExpr) Position() Pos { return e.Pos }

// Position implements Expr.
func (e *BinaryExpr) Position() Pos { return e.Pos }

// Position implements Expr.
func (e *UnaryExpr) Position() Pos { return e.Pos }

// ExprString renders an expression for diagnostics.
func ExprString(e Expr) string {
	switch x := e.(type) {
	case *Ident:
		return x.Name
	case *IntLit:
		return fmt.Sprint(x.Val)
	case *StrLit:
		return fmt.Sprintf("%q", x.Val)
	case *BoolLit:
		return fmt.Sprint(x.Val)
	case *NoneLit:
		return "None"
	case *FieldExpr:
		return ExprString(x.X) + "." + x.Name
	case *IndexExpr:
		return ExprString(x.X) + "[" + ExprString(x.Index) + "]"
	case *CallExpr:
		args := make([]string, len(x.Args))
		for i, a := range x.Args {
			args[i] = ExprString(a)
		}
		return x.Name + "(" + strings.Join(args, ", ") + ")"
	case *BinaryExpr:
		return "(" + ExprString(x.L) + " " + x.Op.String() + " " + ExprString(x.R) + ")"
	case *UnaryExpr:
		return x.Op.String() + " " + ExprString(x.X)
	}
	return "?"
}
