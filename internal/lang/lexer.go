package lang

import (
	"strconv"
	"strings"
)

// Lexer tokenises FLICK source. Like the paper's listings, FLICK uses
// significant indentation: the lexer emits synthetic Indent/Dedent tokens
// around nested blocks and Newline tokens at logical line ends. Blank lines
// and '#' comments are skipped. Tabs count as 8 columns.
type Lexer struct {
	src    string
	pos    int
	line   int
	col    int
	indent []int // indentation stack
	toks   []Token
	err    *Error
	parens int // bracket nesting: newlines inside brackets are ignored
}

// Lex tokenises src completely.
func Lex(src string) ([]Token, error) {
	l := &Lexer{src: src, line: 1, col: 1, indent: []int{0}}
	l.run()
	if l.err != nil {
		return nil, l.err
	}
	return l.toks, nil
}

func (l *Lexer) emit(k TokKind, text string, pos Pos) {
	l.toks = append(l.toks, Token{Kind: k, Text: text, Pos: pos})
}

func (l *Lexer) fail(pos Pos, format string, args ...any) {
	if l.err == nil {
		l.err = errf(pos, format, args...)
	}
}

func (l *Lexer) peek() byte {
	if l.pos >= len(l.src) {
		return 0
	}
	return l.src[l.pos]
}

func (l *Lexer) peek2() byte {
	if l.pos+1 >= len(l.src) {
		return 0
	}
	return l.src[l.pos+1]
}

func (l *Lexer) advance() byte {
	c := l.src[l.pos]
	l.pos++
	if c == '\n' {
		l.line++
		l.col = 1
	} else if c == '\t' {
		l.col += 8 - (l.col-1)%8
	} else {
		l.col++
	}
	return c
}

func (l *Lexer) run() {
	atLineStart := true
	for l.err == nil {
		if atLineStart && l.parens == 0 {
			if !l.handleIndentation() {
				break // EOF
			}
			atLineStart = false
			continue
		}
		if l.pos >= len(l.src) {
			break
		}
		c := l.peek()
		switch {
		case c == '\n':
			l.advance()
			if l.parens == 0 {
				l.emitNewlineIfNeeded()
				atLineStart = true
			}
		case c == ' ' || c == '\t' || c == '\r':
			l.advance()
		case c == '#':
			for l.pos < len(l.src) && l.peek() != '\n' {
				l.advance()
			}
		case isIdentStart(c):
			l.lexIdent()
		case c >= '0' && c <= '9':
			l.lexNumber()
		case c == '"':
			l.lexString()
		default:
			l.lexOperator()
		}
	}
	// Close out the file: final newline + dedents.
	if l.err == nil {
		l.emitNewlineIfNeeded()
		for len(l.indent) > 1 {
			l.indent = l.indent[:len(l.indent)-1]
			l.emit(TokDedent, "", Pos{l.line, l.col})
		}
		l.emit(TokEOF, "", Pos{l.line, l.col})
	}
}

// emitNewlineIfNeeded suppresses redundant newline tokens (blank lines,
// lines holding only a comment).
func (l *Lexer) emitNewlineIfNeeded() {
	if n := len(l.toks); n > 0 {
		switch l.toks[n-1].Kind {
		case TokNewline, TokIndent, TokDedent:
			return
		}
		l.emit(TokNewline, "", Pos{l.line, l.col})
	}
}

// handleIndentation measures the new line's indentation and emits
// Indent/Dedent tokens. It returns false at EOF.
func (l *Lexer) handleIndentation() bool {
	for {
		// Measure leading whitespace.
		width := 0
		for l.pos < len(l.src) {
			c := l.peek()
			if c == ' ' {
				width++
				l.advance()
			} else if c == '\t' {
				width += 8 - width%8
				l.advance()
			} else {
				break
			}
		}
		if l.pos >= len(l.src) {
			return false
		}
		c := l.peek()
		if c == '\n' {
			l.advance()
			continue // blank line
		}
		if c == '\r' {
			l.advance()
			continue
		}
		if c == '#' {
			for l.pos < len(l.src) && l.peek() != '\n' {
				l.advance()
			}
			continue // comment-only line
		}
		cur := l.indent[len(l.indent)-1]
		pos := Pos{l.line, l.col}
		switch {
		case width > cur:
			l.indent = append(l.indent, width)
			l.emit(TokIndent, "", pos)
		case width < cur:
			for len(l.indent) > 1 && l.indent[len(l.indent)-1] > width {
				l.indent = l.indent[:len(l.indent)-1]
				l.emit(TokDedent, "", pos)
			}
			if l.indent[len(l.indent)-1] != width {
				l.fail(pos, "inconsistent indentation (width %d)", width)
			}
		}
		return true
	}
}

func isIdentStart(c byte) bool {
	return c == '_' || c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z'
}

func isIdentChar(c byte) bool {
	return isIdentStart(c) || c >= '0' && c <= '9'
}

func (l *Lexer) lexIdent() {
	pos := Pos{l.line, l.col}
	start := l.pos
	for l.pos < len(l.src) && isIdentChar(l.peek()) {
		l.advance()
	}
	word := l.src[start:l.pos]
	if word == "_" {
		l.emit(TokUnderscore, "_", pos)
		return
	}
	if k, ok := keywords[word]; ok {
		l.emit(k, word, pos)
		return
	}
	l.emit(TokIdent, word, pos)
}

func (l *Lexer) lexNumber() {
	pos := Pos{l.line, l.col}
	start := l.pos
	if l.peek() == '0' && (l.peek2() == 'x' || l.peek2() == 'X') {
		l.advance()
		l.advance()
		for l.pos < len(l.src) && isHex(l.peek()) {
			l.advance()
		}
	} else {
		for l.pos < len(l.src) && l.peek() >= '0' && l.peek() <= '9' {
			l.advance()
		}
	}
	text := l.src[start:l.pos]
	var v int64
	var err error
	if strings.HasPrefix(text, "0x") || strings.HasPrefix(text, "0X") {
		v, err = strconv.ParseInt(text[2:], 16, 64)
	} else {
		// No octal: leading zeros are plain decimal.
		v, err = strconv.ParseInt(text, 10, 64)
	}
	if err != nil {
		l.fail(pos, "bad integer literal %q", text)
		return
	}
	l.toks = append(l.toks, Token{Kind: TokInt, Text: text, Int: v, Pos: pos})
}

func isHex(c byte) bool {
	return c >= '0' && c <= '9' || c >= 'a' && c <= 'f' || c >= 'A' && c <= 'F'
}

func (l *Lexer) lexString() {
	pos := Pos{l.line, l.col}
	l.advance() // opening quote
	var sb strings.Builder
	for {
		if l.pos >= len(l.src) {
			l.fail(pos, "unterminated string literal")
			return
		}
		c := l.advance()
		switch c {
		case '"':
			l.emit(TokString, sb.String(), pos)
			return
		case '\\':
			if l.pos >= len(l.src) {
				l.fail(pos, "unterminated escape")
				return
			}
			e := l.advance()
			switch e {
			case 'n':
				sb.WriteByte('\n')
			case 't':
				sb.WriteByte('\t')
			case 'r':
				sb.WriteByte('\r')
			case '\\', '"':
				sb.WriteByte(e)
			case '0':
				sb.WriteByte(0)
			default:
				l.fail(pos, "unknown escape \\%c", e)
				return
			}
		case '\n':
			l.fail(pos, "newline in string literal")
			return
		default:
			sb.WriteByte(c)
		}
	}
}

func (l *Lexer) lexOperator() {
	pos := Pos{l.line, l.col}
	c := l.advance()
	two := func(next byte, k2 TokKind, k1 TokKind) {
		if l.pos < len(l.src) && l.peek() == next {
			l.advance()
			l.emit(k2, "", pos)
		} else {
			l.emit(k1, "", pos)
		}
	}
	switch c {
	case ':':
		two('=', TokAssign, TokColon)
	case ',':
		l.emit(TokComma, "", pos)
	case '(':
		l.parens++
		l.emit(TokLParen, "", pos)
	case ')':
		l.parens--
		l.emit(TokRParen, "", pos)
	case '[':
		l.parens++
		l.emit(TokLBracket, "", pos)
	case ']':
		l.parens--
		l.emit(TokRBracket, "", pos)
	case '{':
		l.parens++
		l.emit(TokLBrace, "", pos)
	case '}':
		l.parens--
		l.emit(TokRBrace, "", pos)
	case '<':
		if l.pos < len(l.src) && l.peek() == '>' {
			l.advance()
			l.emit(TokNotEq, "", pos)
		} else {
			two('=', TokLessEq, TokLess)
		}
	case '>':
		two('=', TokGreaterEq, TokGreater)
	case '=':
		two('>', TokArrow, TokEq)
	case '+':
		l.emit(TokPlus, "", pos)
	case '-':
		two('>', TokRArrow, TokMinus)
	case '*':
		l.emit(TokStar, "", pos)
	case '/':
		l.emit(TokSlash, "", pos)
	case '.':
		l.emit(TokDot, "", pos)
	case '|':
		l.emit(TokPipe, "", pos)
	default:
		l.fail(pos, "unexpected character %q", string(c))
	}
}
