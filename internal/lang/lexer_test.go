package lang

import (
	"strings"
	"testing"
)

func kinds(toks []Token) []TokKind {
	out := make([]TokKind, len(toks))
	for i, t := range toks {
		out[i] = t.Kind
	}
	return out
}

func TestLexSimpleTokens(t *testing.T) {
	toks, err := Lex(`let x = 5 + 0x0c`)
	if err != nil {
		t.Fatal(err)
	}
	want := []TokKind{TokLet, TokIdent, TokEq, TokInt, TokPlus, TokInt, TokNewline, TokEOF}
	got := kinds(toks)
	if len(got) != len(want) {
		t.Fatalf("got %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("tok %d = %v, want %v", i, got[i], want[i])
		}
	}
	if toks[3].Int != 5 || toks[5].Int != 0x0c {
		t.Fatalf("int values %d %d", toks[3].Int, toks[5].Int)
	}
}

func TestLexOperators(t *testing.T) {
	toks, err := Lex(`:= => -> <> <= >= < > = + - * / . | , : ( ) [ ] { } _`)
	if err != nil {
		t.Fatal(err)
	}
	want := []TokKind{TokAssign, TokArrow, TokRArrow, TokNotEq, TokLessEq,
		TokGreaterEq, TokLess, TokGreater, TokEq, TokPlus, TokMinus, TokStar,
		TokSlash, TokDot, TokPipe, TokComma, TokColon, TokLParen, TokRParen,
		TokLBracket, TokRBracket, TokLBrace, TokRBrace, TokUnderscore}
	got := kinds(toks)
	for i, k := range want {
		if got[i] != k {
			t.Fatalf("tok %d = %v, want %v", i, got[i], k)
		}
	}
}

func TestLexIndentation(t *testing.T) {
	src := "proc p: (cmd/cmd c)\n    let x = 1\n    if x = 1:\n        x\n    let y = 2\n"
	toks, err := Lex(src)
	if err != nil {
		t.Fatal(err)
	}
	indents, dedents := 0, 0
	for _, tk := range toks {
		switch tk.Kind {
		case TokIndent:
			indents++
		case TokDedent:
			dedents++
		}
	}
	if indents != 2 || dedents != 2 {
		t.Fatalf("indents=%d dedents=%d, want 2/2", indents, dedents)
	}
}

func TestLexCommentsAndBlankLines(t *testing.T) {
	src := "# leading comment\n\nlet x = 1  # trailing\n\n# another\nlet y = 2\n"
	toks, err := Lex(src)
	if err != nil {
		t.Fatal(err)
	}
	lets := 0
	for _, tk := range toks {
		if tk.Kind == TokLet {
			lets++
		}
		if tk.Kind == TokIndent || tk.Kind == TokDedent {
			t.Fatal("comments/blank lines should not affect indentation")
		}
	}
	if lets != 2 {
		t.Fatalf("lets = %d", lets)
	}
}

func TestLexNewlineSuppressedInBrackets(t *testing.T) {
	src := "fun f: (a: cmd,\n        b: cmd) -> (cmd)\n    a\n"
	toks, err := Lex(src)
	if err != nil {
		t.Fatal(err)
	}
	// The newline inside the parameter list must not produce TokNewline.
	for i, tk := range toks {
		if tk.Kind == TokNewline {
			// The first newline must come after the ')' of the result list.
			var before []TokKind
			for _, x := range toks[:i] {
				before = append(before, x.Kind)
			}
			if before[len(before)-1] != TokRParen {
				t.Fatalf("newline too early; tokens before: %v", before)
			}
			break
		}
	}
}

func TestLexStringEscapes(t *testing.T) {
	toks, err := Lex(`let s = "a\n\t\"b\\"`)
	if err != nil {
		t.Fatal(err)
	}
	if toks[3].Kind != TokString || toks[3].Text != "a\n\t\"b\\" {
		t.Fatalf("string = %q", toks[3].Text)
	}
}

func TestLexErrors(t *testing.T) {
	cases := []string{
		"let s = \"unterminated",
		"let s = \"bad \\q escape\"",
		"let x = 5 @ 6",
		"proc p: (c/c x)\n    a\n   b\n", // inconsistent dedent
	}
	for _, src := range cases {
		if _, err := Lex(src); err == nil {
			t.Errorf("Lex(%q) succeeded, want error", src)
		}
	}
}

func TestLexKeywordsVsIdents(t *testing.T) {
	toks, err := Lex("type record proc fun global let if else ref dict list and or not mod true false None foldt myident")
	if err != nil {
		t.Fatal(err)
	}
	want := []TokKind{TokType, TokRecord, TokProc, TokFun, TokGlobal, TokLet,
		TokIf, TokElse, TokRef, TokDict, TokList, TokAnd, TokOr, TokNot,
		TokMod, TokTrue, TokFalse, TokNone, TokFoldt, TokIdent}
	for i, k := range want {
		if toks[i].Kind != k {
			t.Fatalf("tok %d = %v, want %v", i, toks[i].Kind, k)
		}
	}
}

func TestLexPositions(t *testing.T) {
	toks, err := Lex("let x = 1\nlet y = 2\n")
	if err != nil {
		t.Fatal(err)
	}
	if toks[0].Pos.Line != 1 || toks[0].Pos.Col != 1 {
		t.Fatalf("first pos = %v", toks[0].Pos)
	}
	// Find the second 'let'.
	for _, tk := range toks[1:] {
		if tk.Kind == TokLet {
			if tk.Pos.Line != 2 {
				t.Fatalf("second let line = %d", tk.Pos.Line)
			}
			return
		}
	}
	t.Fatal("second let not found")
}

func TestLexTabIndentation(t *testing.T) {
	src := "proc p: (c/c x)\n\tlet a = 1\n\tlet b = 2\n"
	toks, err := Lex(src)
	if err != nil {
		t.Fatal(err)
	}
	indents := 0
	for _, tk := range toks {
		if tk.Kind == TokIndent {
			indents++
		}
	}
	if indents != 1 {
		t.Fatalf("indents = %d", indents)
	}
}

func TestTokKindStringTotal(t *testing.T) {
	for k := TokEOF; k <= TokFoldt; k++ {
		if strings.HasPrefix(k.String(), "tok(") {
			t.Fatalf("kind %d has no name", k)
		}
	}
}
