package lang

// Canonical FLICK sources for the paper's listings, written in this
// implementation's concrete syntax. They are exported because the type
// checker, compiler, applications and examples all exercise them.

// Listing1 is the Memcached cache-router program (ATC '16 Listing 1, long
// version): the cmd record carries the binary-protocol serialisation
// annotations, GETK replies are cached, and requests are hash-routed to the
// backend shard on a miss.
const Listing1 = `
type cmd: record
    opcode : integer {size=1}
    keylen : integer {signed=false, size=2}
    extraslen : integer {signed=false, size=1}
    _ : string {size=3}
    bodylen : integer {signed=false, size=8}
    _ : string {size=12+extraslen}
    key : string {size=keylen}
    _ : string {size=bodylen-extraslen-keylen}

proc memcached: (cmd/cmd client, [cmd/cmd] backends)
    global cache := empty_dict
    | backends => update_cache(cache) => client
    | client => test_cache(client, backends, cache)

fun update_cache: (cache: ref dict<string*cmd>, resp: cmd) -> (cmd)
    if resp.opcode = 0x0c:
        cache[resp.key] := resp
    resp

fun test_cache: (-/cmd client, [-/cmd] backends, cache: ref dict<string*cmd>, req: cmd) -> ()
    if cache[req.key] = None or req.opcode <> 0x0c:
        let target = hash(req.key) mod len(backends)
        req => backends[target]
    else:
        cache[req.key] => client
`

// ListingProxy is the short Memcached proxy of §4.1 (Listing 1 in the ATC
// paper's body): pure hash partitioning, no cache.
const ListingProxy = `
type cmd: record
    key : string

proc Memcached: (cmd/cmd client, [cmd/cmd] backends)
    | backends => client
    | client => target_backend(backends)

fun target_backend: ([-/cmd] backends, req: cmd) -> ()
    let target = hash(req.key) mod len(backends)
    req => backends[target]
`

// Listing3 is the Hadoop data-aggregator program using the foldt primitive
// from §4.3: a parallel tree fold that merges key/value pairs from the
// mapper channels and streams combined pairs to the reducer.
const Listing3 = `
type kv: record
    key : string
    value : string

proc hadoop: ([kv/-] mappers, -/kv reducer)
    foldt combine key_of mappers => reducer

fun combine: (a: kv, b: kv) -> (kv)
    kv(a.key, int_to_string(string_to_int(a.value) + string_to_int(b.value)))

fun key_of: (e: kv) -> (string)
    e.key
`

// ListingHTTPLB is the HTTP load balancer of §6.1: requests are forwarded
// to a backend chosen by a per-connection hash; responses return unchanged.
const ListingHTTPLB = `
type request: record
    uri : string
    keep_alive : integer

proc http_lb: (request/request client, [request/request] backends)
    | client => route(backends)
    | backends => client

fun route: ([-/request] backends, req: request) -> ()
    let target = instance_id() mod len(backends)
    req => backends[target]
`
