package lang

import "fmt"

// Parser is a recursive-descent parser over the token stream.
type Parser struct {
	toks []Token
	pos  int
}

// Parse lexes and parses a FLICK program.
func Parse(src string) (*Program, error) {
	toks, err := Lex(src)
	if err != nil {
		return nil, err
	}
	p := &Parser{toks: toks}
	return p.parseProgram()
}

func (p *Parser) cur() Token  { return p.toks[p.pos] }
func (p *Parser) next() Token { t := p.toks[p.pos]; p.pos++; return t }

func (p *Parser) at(k TokKind) bool { return p.cur().Kind == k }

func (p *Parser) accept(k TokKind) bool {
	if p.at(k) {
		p.pos++
		return true
	}
	return false
}

func (p *Parser) expect(k TokKind) (Token, error) {
	if !p.at(k) {
		return Token{}, errf(p.cur().Pos, "expected %s, found %s", k, p.describe(p.cur()))
	}
	return p.next(), nil
}

func (p *Parser) describe(t Token) string {
	if t.Kind == TokIdent {
		return fmt.Sprintf("identifier %q", t.Text)
	}
	return t.Kind.String()
}

func (p *Parser) skipNewlines() {
	for p.at(TokNewline) {
		p.pos++
	}
}

func (p *Parser) parseProgram() (*Program, error) {
	prog := &Program{}
	for {
		p.skipNewlines()
		switch p.cur().Kind {
		case TokEOF:
			return prog, nil
		case TokType:
			d, err := p.parseTypeDecl()
			if err != nil {
				return nil, err
			}
			prog.Types = append(prog.Types, d)
		case TokProc:
			d, err := p.parseProcDecl()
			if err != nil {
				return nil, err
			}
			prog.Procs = append(prog.Procs, d)
		case TokFun:
			d, err := p.parseFunDecl()
			if err != nil {
				return nil, err
			}
			prog.Funs = append(prog.Funs, d)
		default:
			return nil, errf(p.cur().Pos, "expected declaration (type, proc or fun), found %s", p.describe(p.cur()))
		}
	}
}

// parseTypeDecl parses `type NAME: record` + an indented field block.
func (p *Parser) parseTypeDecl() (*TypeDecl, error) {
	kw := p.next() // 'type'
	name, err := p.expect(TokIdent)
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(TokColon); err != nil {
		return nil, err
	}
	if _, err := p.expect(TokRecord); err != nil {
		return nil, err
	}
	if _, err := p.expect(TokNewline); err != nil {
		return nil, err
	}
	if _, err := p.expect(TokIndent); err != nil {
		return nil, err
	}
	d := &TypeDecl{Pos: kw.Pos, Name: name.Text}
	for !p.at(TokDedent) && !p.at(TokEOF) {
		p.skipNewlines()
		if p.at(TokDedent) {
			break
		}
		f, err := p.parseFieldDecl()
		if err != nil {
			return nil, err
		}
		d.Fields = append(d.Fields, f)
	}
	p.accept(TokDedent)
	return d, nil
}

// parseFieldDecl parses `name : type {attr=expr, ...}` or `_ : type {...}`.
func (p *Parser) parseFieldDecl() (*FieldDecl, error) {
	f := &FieldDecl{Pos: p.cur().Pos}
	switch {
	case p.at(TokUnderscore):
		p.next()
	case p.at(TokIdent):
		f.Name = p.next().Text
	default:
		return nil, errf(p.cur().Pos, "expected field name, found %s", p.describe(p.cur()))
	}
	if _, err := p.expect(TokColon); err != nil {
		return nil, err
	}
	tr, err := p.parseTypeRef()
	if err != nil {
		return nil, err
	}
	f.Type = tr
	if p.accept(TokLBrace) {
		for {
			an, err := p.expect(TokIdent)
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(TokEq); err != nil {
				return nil, err
			}
			v, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			f.Attrs = append(f.Attrs, Attr{Name: an.Text, Value: v})
			if !p.accept(TokComma) {
				break
			}
		}
		if _, err := p.expect(TokRBrace); err != nil {
			return nil, err
		}
	}
	if !p.at(TokDedent) && !p.at(TokEOF) {
		if _, err := p.expect(TokNewline); err != nil {
			return nil, err
		}
	}
	return f, nil
}

// parseTypeRef parses a type reference.
func (p *Parser) parseTypeRef() (*TypeRef, error) {
	pos := p.cur().Pos
	var name string
	switch {
	case p.at(TokIdent):
		name = p.next().Text
	case p.at(TokDict):
		p.next()
		name = "dict"
	case p.at(TokList):
		p.next()
		name = "list"
	default:
		return nil, errf(pos, "expected type, found %s", p.describe(p.cur()))
	}
	tr := &TypeRef{Pos: pos, Name: name}
	if name == "dict" {
		if _, err := p.expect(TokLess); err != nil {
			return nil, err
		}
		k, err := p.parseTypeRef()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(TokStar); err != nil {
			return nil, err
		}
		v, err := p.parseTypeRef()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(TokGreater); err != nil {
			return nil, err
		}
		tr.Args = []*TypeRef{k, v}
	} else if name == "list" {
		if _, err := p.expect(TokLess); err != nil {
			return nil, err
		}
		e, err := p.parseTypeRef()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(TokGreater); err != nil {
			return nil, err
		}
		tr.Args = []*TypeRef{e}
	}
	return tr, nil
}

// parseChanType parses `T/T`, `T/-`, `-/T`, optionally preceded by '[' for
// arrays (the bracket is consumed by the caller).
func (p *Parser) parseChanType(array bool) (*ChanType, error) {
	pos := p.cur().Pos
	var produce, accept string
	if p.accept(TokMinus) {
		produce = "-"
	} else {
		t, err := p.expect(TokIdent)
		if err != nil {
			return nil, err
		}
		produce = t.Text
	}
	if _, err := p.expect(TokSlash); err != nil {
		return nil, err
	}
	if p.accept(TokMinus) {
		accept = "-"
	} else {
		t, err := p.expect(TokIdent)
		if err != nil {
			return nil, err
		}
		accept = t.Text
	}
	if produce == "-" && accept == "-" {
		return nil, errf(pos, "channel cannot be -/-")
	}
	ct := &ChanType{Pos: pos, Array: array}
	if produce != "-" {
		ct.Recv = produce
	}
	if accept != "-" {
		ct.Send = accept
	}
	return ct, nil
}

// parseProcDecl parses a process declaration.
func (p *Parser) parseProcDecl() (*ProcDecl, error) {
	kw := p.next() // 'proc'
	name, err := p.expect(TokIdent)
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(TokColon); err != nil {
		return nil, err
	}
	if _, err := p.expect(TokLParen); err != nil {
		return nil, err
	}
	d := &ProcDecl{Pos: kw.Pos, Name: name.Text}
	for !p.at(TokRParen) {
		array := p.accept(TokLBracket)
		ct, err := p.parseChanType(array)
		if err != nil {
			return nil, err
		}
		if array {
			if _, err := p.expect(TokRBracket); err != nil {
				return nil, err
			}
		}
		cn, err := p.expect(TokIdent)
		if err != nil {
			return nil, err
		}
		d.Channels = append(d.Channels, &ChanParam{Pos: ct.Pos, Name: cn.Text, Type: ct})
		if !p.accept(TokComma) {
			break
		}
	}
	if _, err := p.expect(TokRParen); err != nil {
		return nil, err
	}
	body, err := p.parseBlock()
	if err != nil {
		return nil, err
	}
	d.Body = body
	return d, nil
}

// parseFunDecl parses a function declaration.
func (p *Parser) parseFunDecl() (*FunDecl, error) {
	kw := p.next() // 'fun'
	name, err := p.expect(TokIdent)
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(TokColon); err != nil {
		return nil, err
	}
	if _, err := p.expect(TokLParen); err != nil {
		return nil, err
	}
	d := &FunDecl{Pos: kw.Pos, Name: name.Text}
	for !p.at(TokRParen) {
		param, err := p.parseParam()
		if err != nil {
			return nil, err
		}
		d.Params = append(d.Params, param)
		if !p.accept(TokComma) {
			break
		}
	}
	if _, err := p.expect(TokRParen); err != nil {
		return nil, err
	}
	if _, err := p.expect(TokRArrow); err != nil {
		return nil, err
	}
	if _, err := p.expect(TokLParen); err != nil {
		return nil, err
	}
	for !p.at(TokRParen) {
		tr, err := p.parseTypeRef()
		if err != nil {
			return nil, err
		}
		d.Results = append(d.Results, tr)
		if !p.accept(TokComma) {
			break
		}
	}
	if _, err := p.expect(TokRParen); err != nil {
		return nil, err
	}
	body, err := p.parseBlock()
	if err != nil {
		return nil, err
	}
	d.Body = body
	return d, nil
}

// parseParam parses a function parameter: channel forms (`-/cmd client`,
// `[cmd/cmd] backends`, `cmd/- src`) or value forms (`req: cmd`,
// `cache: ref dict<string*string>`).
func (p *Parser) parseParam() (*Param, error) {
	pos := p.cur().Pos
	// Channel array: [ ... ] name
	if p.accept(TokLBracket) {
		ct, err := p.parseChanType(true)
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(TokRBracket); err != nil {
			return nil, err
		}
		n, err := p.expect(TokIdent)
		if err != nil {
			return nil, err
		}
		return &Param{Pos: pos, Name: n.Text, Chan: ct}, nil
	}
	// Write-only channel: - / T name
	if p.at(TokMinus) {
		ct, err := p.parseChanType(false)
		if err != nil {
			return nil, err
		}
		n, err := p.expect(TokIdent)
		if err != nil {
			return nil, err
		}
		return &Param{Pos: pos, Name: n.Text, Chan: ct}, nil
	}
	// Either `T/... name` (channel) or `name : type` (value): both start
	// with an identifier, so look ahead one token.
	id, err := p.expect(TokIdent)
	if err != nil {
		return nil, err
	}
	if p.at(TokSlash) {
		// Rewind-free: parse the remainder of the channel type by hand.
		p.next() // '/'
		ct := &ChanType{Pos: pos, Recv: id.Text}
		if !p.accept(TokMinus) {
			t, err := p.expect(TokIdent)
			if err != nil {
				return nil, err
			}
			ct.Send = t.Text
		}
		n, err := p.expect(TokIdent)
		if err != nil {
			return nil, err
		}
		return &Param{Pos: pos, Name: n.Text, Chan: ct}, nil
	}
	if _, err := p.expect(TokColon); err != nil {
		return nil, err
	}
	ref := p.accept(TokRef)
	tr, err := p.parseTypeRef()
	if err != nil {
		return nil, err
	}
	return &Param{Pos: pos, Name: id.Text, Type: tr, Ref: ref}, nil
}

// parseBlock parses `NEWLINE INDENT stmts DEDENT`.
func (p *Parser) parseBlock() ([]Stmt, error) {
	if _, err := p.expect(TokNewline); err != nil {
		return nil, err
	}
	if _, err := p.expect(TokIndent); err != nil {
		return nil, err
	}
	var stmts []Stmt
	for {
		p.skipNewlines()
		if p.accept(TokDedent) || p.at(TokEOF) {
			return stmts, nil
		}
		s, err := p.parseStmt()
		if err != nil {
			return nil, err
		}
		stmts = append(stmts, s)
	}
}

// parseStmt parses one statement.
func (p *Parser) parseStmt() (Stmt, error) {
	pos := p.cur().Pos
	switch p.cur().Kind {
	case TokGlobal:
		p.next()
		n, err := p.expect(TokIdent)
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(TokAssign); err != nil {
			return nil, err
		}
		init, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if err := p.endStmt(); err != nil {
			return nil, err
		}
		return &GlobalStmt{Pos: pos, Name: n.Text, Init: init}, nil

	case TokLet:
		p.next()
		n, err := p.expect(TokIdent)
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(TokEq); err != nil {
			return nil, err
		}
		init, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if err := p.endStmt(); err != nil {
			return nil, err
		}
		return &LetStmt{Pos: pos, Name: n.Text, Init: init}, nil

	case TokIf:
		return p.parseIf()

	case TokFoldt:
		p.next()
		combine, err := p.expect(TokIdent)
		if err != nil {
			return nil, err
		}
		order, err := p.expect(TokIdent)
		if err != nil {
			return nil, err
		}
		src, err := p.expect(TokIdent)
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(TokArrow); err != nil {
			return nil, err
		}
		dst, err := p.expect(TokIdent)
		if err != nil {
			return nil, err
		}
		if err := p.endStmt(); err != nil {
			return nil, err
		}
		return &FoldtStmt{Pos: pos, Combine: combine.Text, Order: order.Text,
			Src: src.Text, Dst: dst.Text}, nil

	case TokPipe:
		p.next() // optional leading '|'
		return p.parsePipelineOrExpr(pos, true)

	default:
		return p.parsePipelineOrExpr(pos, false)
	}
}

func (p *Parser) parseIf() (Stmt, error) {
	pos := p.next().Pos // 'if'
	cond, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(TokColon); err != nil {
		return nil, err
	}
	then, err := p.parseBlock()
	if err != nil {
		return nil, err
	}
	s := &IfStmt{Pos: pos, Cond: cond, Then: then}
	p.skipNewlines()
	if p.at(TokElse) {
		p.next()
		if _, err := p.expect(TokColon); err != nil {
			return nil, err
		}
		els, err := p.parseBlock()
		if err != nil {
			return nil, err
		}
		s.Else = els
	}
	return s, nil
}

// parsePipelineOrExpr disambiguates pipelines (`a => f(x) => b`), sends,
// assignments (`cache[k] := v`) and bare expression statements.
func (p *Parser) parsePipelineOrExpr(pos Pos, pipeRequired bool) (Stmt, error) {
	first, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	switch p.cur().Kind {
	case TokArrow:
		return p.parsePipelineTail(pos, first)
	case TokAssign:
		p.next()
		v, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if err := p.endStmt(); err != nil {
			return nil, err
		}
		return &AssignStmt{Pos: pos, Target: first, Value: v}, nil
	default:
		if pipeRequired {
			return nil, errf(pos, "expected => after | pipeline source")
		}
		if err := p.endStmt(); err != nil {
			return nil, err
		}
		return &ExprStmt{Pos: pos, X: first}, nil
	}
}

// parsePipelineTail consumes `=> stage => stage ...` after the source.
func (p *Parser) parsePipelineTail(pos Pos, src Expr) (Stmt, error) {
	s := &PipeStmt{Pos: pos, Src: src}
	var last Expr
	for p.accept(TokArrow) {
		stage, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if call, ok := stage.(*CallExpr); ok {
			s.Stages = append(s.Stages, call)
			last = nil
		} else {
			if last != nil {
				return nil, errf(stage.Position(), "pipeline may have at most one destination channel")
			}
			last = stage
		}
	}
	if err := p.endStmt(); err != nil {
		return nil, err
	}
	s.Dst = last
	// A two-element pipeline whose source is a plain value expression is a
	// send (`req => backends[target]`); the type checker reclassifies when
	// the source turns out to be a channel. Here we keep the general form.
	return s, nil
}

func (p *Parser) endStmt() error {
	if p.at(TokDedent) || p.at(TokEOF) {
		return nil
	}
	_, err := p.expect(TokNewline)
	return err
}

// --- expressions (precedence climbing) ---

func (p *Parser) parseExpr() (Expr, error) { return p.parseOr() }

func (p *Parser) parseOr() (Expr, error) {
	l, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for p.at(TokOr) {
		op := p.next()
		r, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		l = &BinaryExpr{Pos: op.Pos, Op: TokOr, L: l, R: r}
	}
	return l, nil
}

func (p *Parser) parseAnd() (Expr, error) {
	l, err := p.parseNot()
	if err != nil {
		return nil, err
	}
	for p.at(TokAnd) {
		op := p.next()
		r, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		l = &BinaryExpr{Pos: op.Pos, Op: TokAnd, L: l, R: r}
	}
	return l, nil
}

func (p *Parser) parseNot() (Expr, error) {
	if p.at(TokNot) {
		op := p.next()
		x, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		return &UnaryExpr{Pos: op.Pos, Op: TokNot, X: x}, nil
	}
	return p.parseComparison()
}

func (p *Parser) parseComparison() (Expr, error) {
	l, err := p.parseAdditive()
	if err != nil {
		return nil, err
	}
	switch p.cur().Kind {
	case TokEq, TokNotEq, TokLess, TokGreater, TokLessEq, TokGreaterEq:
		op := p.next()
		r, err := p.parseAdditive()
		if err != nil {
			return nil, err
		}
		return &BinaryExpr{Pos: op.Pos, Op: op.Kind, L: l, R: r}, nil
	}
	return l, nil
}

func (p *Parser) parseAdditive() (Expr, error) {
	l, err := p.parseMultiplicative()
	if err != nil {
		return nil, err
	}
	for p.at(TokPlus) || p.at(TokMinus) {
		op := p.next()
		r, err := p.parseMultiplicative()
		if err != nil {
			return nil, err
		}
		l = &BinaryExpr{Pos: op.Pos, Op: op.Kind, L: l, R: r}
	}
	return l, nil
}

func (p *Parser) parseMultiplicative() (Expr, error) {
	l, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for p.at(TokStar) || p.at(TokSlash) || p.at(TokMod) {
		op := p.next()
		r, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		l = &BinaryExpr{Pos: op.Pos, Op: op.Kind, L: l, R: r}
	}
	return l, nil
}

func (p *Parser) parseUnary() (Expr, error) {
	if p.at(TokMinus) {
		op := p.next()
		x, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return &UnaryExpr{Pos: op.Pos, Op: TokMinus, X: x}, nil
	}
	return p.parsePostfix()
}

func (p *Parser) parsePostfix() (Expr, error) {
	x, err := p.parsePrimary()
	if err != nil {
		return nil, err
	}
	for {
		switch p.cur().Kind {
		case TokDot:
			p.next()
			n, err := p.expect(TokIdent)
			if err != nil {
				return nil, err
			}
			x = &FieldExpr{Pos: n.Pos, X: x, Name: n.Text}
		case TokLBracket:
			lb := p.next()
			idx, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(TokRBracket); err != nil {
				return nil, err
			}
			x = &IndexExpr{Pos: lb.Pos, X: x, Index: idx}
		default:
			return x, nil
		}
	}
}

func (p *Parser) parsePrimary() (Expr, error) {
	t := p.cur()
	switch t.Kind {
	case TokIdent:
		p.next()
		if p.at(TokLParen) {
			p.next()
			call := &CallExpr{Pos: t.Pos, Name: t.Text}
			for !p.at(TokRParen) {
				a, err := p.parseExpr()
				if err != nil {
					return nil, err
				}
				call.Args = append(call.Args, a)
				if !p.accept(TokComma) {
					break
				}
			}
			if _, err := p.expect(TokRParen); err != nil {
				return nil, err
			}
			return call, nil
		}
		return &Ident{Pos: t.Pos, Name: t.Text}, nil
	case TokInt:
		p.next()
		return &IntLit{Pos: t.Pos, Val: t.Int}, nil
	case TokString:
		p.next()
		return &StrLit{Pos: t.Pos, Val: t.Text}, nil
	case TokTrue:
		p.next()
		return &BoolLit{Pos: t.Pos, Val: true}, nil
	case TokFalse:
		p.next()
		return &BoolLit{Pos: t.Pos, Val: false}, nil
	case TokNone:
		p.next()
		return &NoneLit{Pos: t.Pos}, nil
	case TokLParen:
		p.next()
		x, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(TokRParen); err != nil {
			return nil, err
		}
		return x, nil
	}
	return nil, errf(t.Pos, "expected expression, found %s", p.describe(t))
}
