package lang

import (
	"strings"
	"testing"
)

func TestParseListing1(t *testing.T) {
	prog, err := Parse(Listing1)
	if err != nil {
		t.Fatal(err)
	}
	if len(prog.Types) != 1 || len(prog.Procs) != 1 || len(prog.Funs) != 2 {
		t.Fatalf("decls = %d/%d/%d", len(prog.Types), len(prog.Procs), len(prog.Funs))
	}

	cmd := prog.Types[0]
	if cmd.Name != "cmd" || len(cmd.Fields) != 8 {
		t.Fatalf("cmd type: %s with %d fields", cmd.Name, len(cmd.Fields))
	}
	if cmd.Fields[0].Name != "opcode" || cmd.Fields[0].Type.Name != "integer" {
		t.Fatal("opcode field")
	}
	if cmd.Fields[3].Name != "" {
		t.Fatal("anonymous field should have empty name")
	}
	// keylen has signed=false, size=2.
	kl := cmd.Fields[1]
	if len(kl.Attrs) != 2 || kl.Attrs[0].Name != "signed" || kl.Attrs[1].Name != "size" {
		t.Fatalf("keylen attrs = %+v", kl.Attrs)
	}
	// key's size is the expression `keylen`.
	key := cmd.Fields[6]
	if key.Name != "key" {
		t.Fatal("field 6 should be key")
	}
	if id, ok := key.Attrs[0].Value.(*Ident); !ok || id.Name != "keylen" {
		t.Fatalf("key size attr = %s", ExprString(key.Attrs[0].Value))
	}
	// Final anonymous field: bodylen-extraslen-keylen.
	last := cmd.Fields[7]
	if ExprString(last.Attrs[0].Value) != "((bodylen - extraslen) - keylen)" {
		t.Fatalf("computed size = %s", ExprString(last.Attrs[0].Value))
	}

	proc := prog.Procs[0]
	if proc.Name != "memcached" || len(proc.Channels) != 2 {
		t.Fatal("proc signature")
	}
	if proc.Channels[0].Name != "client" || proc.Channels[0].Type.Dir() != ChanBoth || proc.Channels[0].Type.Array {
		t.Fatalf("client channel = %+v", proc.Channels[0].Type)
	}
	if proc.Channels[1].Name != "backends" || !proc.Channels[1].Type.Array {
		t.Fatal("backends channel array")
	}
	if len(proc.Body) != 3 {
		t.Fatalf("proc body stmts = %d", len(proc.Body))
	}
	if g, ok := proc.Body[0].(*GlobalStmt); !ok || g.Name != "cache" {
		t.Fatal("global cache decl")
	}
	p1, ok := proc.Body[1].(*PipeStmt)
	if !ok {
		t.Fatalf("stmt 1 is %T", proc.Body[1])
	}
	if ExprString(p1.Src) != "backends" || len(p1.Stages) != 1 || p1.Stages[0].Name != "update_cache" {
		t.Fatal("pipe 1 shape")
	}
	if id, ok := p1.Dst.(*Ident); !ok || id.Name != "client" {
		t.Fatal("pipe 1 dst")
	}
	p2, ok := proc.Body[2].(*PipeStmt)
	if !ok || len(p2.Stages) != 1 || p2.Dst != nil {
		t.Fatal("pipe 2 shape")
	}
	if len(p2.Stages[0].Args) != 3 {
		t.Fatalf("test_cache stage args = %d", len(p2.Stages[0].Args))
	}

	// update_cache: ref dict param + value param, one result.
	uc := prog.Funs[0]
	if uc.Name != "update_cache" || len(uc.Params) != 2 || len(uc.Results) != 1 {
		t.Fatal("update_cache signature")
	}
	if !uc.Params[0].Ref || uc.Params[0].Type.Name != "dict" {
		t.Fatal("cache param should be ref dict")
	}
	if len(uc.Body) != 2 {
		t.Fatalf("update_cache body = %d stmts", len(uc.Body))
	}
	ifs, ok := uc.Body[0].(*IfStmt)
	if !ok || len(ifs.Then) != 1 || ifs.Else != nil {
		t.Fatal("update_cache if shape")
	}
	if _, ok := ifs.Then[0].(*AssignStmt); !ok {
		t.Fatal("cache assignment")
	}
	if _, ok := uc.Body[1].(*ExprStmt); !ok {
		t.Fatal("trailing return expression")
	}

	// test_cache: write-only channel params, if/else with a send each way.
	tc := prog.Funs[1]
	if tc.Params[0].Chan == nil || tc.Params[0].Chan.Dir() != ChanWrite {
		t.Fatal("client param should be write-only channel")
	}
	if tc.Params[1].Chan == nil || !tc.Params[1].Chan.Array {
		t.Fatal("backends param should be channel array")
	}
	if len(tc.Results) != 0 {
		t.Fatal("test_cache should return unit")
	}
	ifs2 := tc.Body[0].(*IfStmt)
	if len(ifs2.Then) != 2 || len(ifs2.Else) != 1 {
		t.Fatalf("test_cache if: %d then, %d else", len(ifs2.Then), len(ifs2.Else))
	}
	send, ok := ifs2.Then[1].(*PipeStmt)
	if !ok || ExprString(send.Src) != "req" {
		t.Fatalf("then-branch send: %T", ifs2.Then[1])
	}
	if ExprString(send.Dst) != "backends[target]" {
		t.Fatalf("send dst = %s", ExprString(send.Dst))
	}
}

func TestParseListing3(t *testing.T) {
	prog, err := Parse(Listing3)
	if err != nil {
		t.Fatal(err)
	}
	proc := prog.Procs[0]
	if proc.Channels[0].Type.Dir() != ChanRead || !proc.Channels[0].Type.Array {
		t.Fatal("mappers should be read-only channel array")
	}
	if proc.Channels[1].Type.Dir() != ChanWrite {
		t.Fatal("reducer should be write-only")
	}
	ft, ok := proc.Body[0].(*FoldtStmt)
	if !ok {
		t.Fatalf("body[0] is %T", proc.Body[0])
	}
	if ft.Combine != "combine" || ft.Order != "key_of" || ft.Src != "mappers" || ft.Dst != "reducer" {
		t.Fatalf("foldt = %+v", ft)
	}
	// combine's body: nested calls.
	comb := prog.Funs[0]
	es, ok := comb.Body[0].(*ExprStmt)
	if !ok {
		t.Fatal("combine body")
	}
	call, ok := es.X.(*CallExpr)
	if !ok || call.Name != "kv" || len(call.Args) != 2 {
		t.Fatalf("combine return: %s", ExprString(es.X))
	}
}

func TestParseExpressions(t *testing.T) {
	cases := map[string]string{
		"let x = 1 + 2 * 3":            "(1 + (2 * 3))",
		"let x = (1 + 2) * 3":          "((1 + 2) * 3)",
		"let x = a.b.c":                "a.b.c",
		"let x = m[k][j]":              "m[k][j]",
		"let x = f(g(1), h())":         "f(g(1), h())",
		"let x = a = b or c <> d":      "((a = b) or (c <> d))",
		"let x = not a and b":          "(not a and b)",
		"let x = -5 + 3":               "(- 5 + 3)",
		"let x = a mod b / c":          "((a mod b) / c)",
		"let x = hash(k) mod len(b)":   "(hash(k) mod len(b))",
		`let x = "lit"`:                `"lit"`,
		"let x = true":                 "true",
		"let x = None":                 "None",
		"let x = a <= b":               "(a <= b)",
		"let x = a >= b":               "(a >= b)",
		"let x = a < b":                "(a < b)",
		"let x = a > b":                "(a > b)",
		"let x = a - b - c":            "((a - b) - c)",
		"let x = f()":                  "f()",
		"let x = cache[req.key]":       "cache[req.key]",
		"let x = 0x1F + 010":           "(31 + 10)",
		"let x = false or true":        "(false or true)",
		"let x = a and b and c":        "((a and b) and c)",
		"let x = string_to_int(a.val)": "string_to_int(a.val)",
	}
	for src, want := range cases {
		prog, err := Parse("fun f: (a: cmd) -> ()\n    " + src + "\n")
		if err != nil {
			t.Errorf("%q: %v", src, err)
			continue
		}
		ls := prog.Funs[0].Body[0].(*LetStmt)
		if got := ExprString(ls.Init); got != want {
			t.Errorf("%q parsed as %s, want %s", src, got, want)
		}
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		"type x record\n    a : integer\n",              // missing colon
		"type x: record\n",                              // missing block
		"proc p: cmd/cmd c\n    c => c\n",               // missing parens
		"proc p: (cmd/cmd c)\n    | c\n",                // pipe without arrow
		"proc p: (-/- c)\n    c => c\n",                 // -/- channel
		"fun f: (x: cmd) -> cmd\n    x\n",               // result not parenthesised
		"fun f: (x: cmd) -> (cmd)\n    let x 5\n",       // let missing =
		"fun f: (x: cmd) -> (cmd)\n    a => b => c\n",   // two dst channels
		"fun f: (x: cmd) -> (cmd)\n    if x:\n",         // if without block
		"let x = 5\n",                                   // stmt at top level
		"fun f: (x: dict<string>) -> ()\n    x\n",       // dict with one param
		"fun f: (x: cmd) -> (cmd)\n    x[\n",            // unterminated index
		"foldt a b c => d\n",                            // foldt at top level
		"fun f: (x: cmd) -> (cmd)\n    cache[k] := \n",  // missing value
		"type x: record\n    f : integer {size=}\n",     // empty attr
		"type x: record\n    f : integer {size=1,}\n\n", // trailing comma attr
	}
	for _, src := range cases {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", src)
		}
	}
}

func TestParseEmptyProgram(t *testing.T) {
	prog, err := Parse("# nothing here\n\n")
	if err != nil {
		t.Fatal(err)
	}
	if len(prog.Types)+len(prog.Procs)+len(prog.Funs) != 0 {
		t.Fatal("expected empty program")
	}
}

func TestParseMultipleResults(t *testing.T) {
	prog, err := Parse("fun f: (x: cmd) -> (cmd, integer)\n    x\n")
	if err != nil {
		t.Fatal(err)
	}
	if len(prog.Funs[0].Results) != 2 {
		t.Fatal("two results expected")
	}
}

func TestParseIfElse(t *testing.T) {
	src := `
fun f: (x: cmd) -> (integer)
    if x.a = 1:
        1
    else:
        2
`
	prog, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	ifs := prog.Funs[0].Body[0].(*IfStmt)
	if len(ifs.Then) != 1 || len(ifs.Else) != 1 {
		t.Fatal("if/else blocks")
	}
}

func TestParseNestedIf(t *testing.T) {
	src := `
fun f: (x: cmd) -> (integer)
    if x.a = 1:
        if x.b = 2:
            3
        else:
            4
    else:
        5
`
	prog, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	outer := prog.Funs[0].Body[0].(*IfStmt)
	inner, ok := outer.Then[0].(*IfStmt)
	if !ok || len(inner.Else) != 1 {
		t.Fatal("nested if structure")
	}
}

func TestParseChanDirString(t *testing.T) {
	for _, d := range []ChanDir{ChanBoth, ChanRead, ChanWrite} {
		if d.String() == "invalid" {
			t.Fatal("dir name")
		}
	}
	ct := &ChanType{Send: "cmd", Array: true}
	if ct.String() != "[-/cmd]" {
		t.Fatalf("chan type string = %s", ct.String())
	}
	ct2 := &ChanType{Recv: "cmd"}
	if ct2.String() != "cmd/-" {
		t.Fatalf("chan type string = %s", ct2.String())
	}
	ct3 := &ChanType{Recv: "cmd", Send: "cmd"}
	if ct3.String() != "cmd/cmd" {
		t.Fatalf("chan type string = %s", ct3.String())
	}
}

func TestTypeRefString(t *testing.T) {
	prog, err := Parse("fun f: (x: dict<string*cmd>, y: list<kv>) -> ()\n    x\n")
	if err != nil {
		t.Fatal(err)
	}
	ps := prog.Funs[0].Params
	if ps[0].Type.String() != "dict<string*cmd>" {
		t.Fatalf("dict string = %s", ps[0].Type.String())
	}
	if ps[1].Type.String() != "list<kv>" {
		t.Fatalf("list string = %s", ps[1].Type.String())
	}
}

func TestParseSendInsideProc(t *testing.T) {
	src := `
proc p: (cmd/cmd client, [cmd/cmd] backends)
    | client => backends
`
	prog, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	pipe := prog.Procs[0].Body[0].(*PipeStmt)
	if len(pipe.Stages) != 0 || pipe.Dst == nil {
		t.Fatal("pure forwarding pipe")
	}
	if !strings.Contains(ExprString(pipe.Dst), "backends") {
		t.Fatal("dst")
	}
}
