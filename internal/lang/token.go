// Package lang implements the FLICK domain-specific language front end:
// an indentation-sensitive lexer, the abstract syntax tree, and a
// recursive-descent parser for the three declaration forms of §4 (types,
// processes, functions) and the statement/expression language of the paper's
// listings.
package lang

import "fmt"

// TokKind enumerates lexical token kinds.
type TokKind int

// Token kinds.
const (
	TokEOF TokKind = iota
	TokNewline
	TokIndent
	TokDedent
	TokIdent
	TokInt
	TokString
	// punctuation and operators
	TokColon     // :
	TokComma     // ,
	TokLParen    // (
	TokRParen    // )
	TokLBracket  // [
	TokRBracket  // ]
	TokLBrace    // {
	TokRBrace    // }
	TokLess      // <
	TokGreater   // >
	TokLessEq    // <=
	TokGreaterEq // >=
	TokEq        // =
	TokNotEq     // <>
	TokPlus      // +
	TokMinus     // -
	TokStar      // *
	TokSlash     // /
	TokAssign    // :=
	TokArrow     // =>
	TokRArrow    // ->
	TokDot       // .
	TokPipe      // |
	TokUnderscore
	// keywords
	TokType
	TokRecord
	TokProc
	TokFun
	TokGlobal
	TokLet
	TokIf
	TokElse
	TokRef
	TokDict
	TokList
	TokAnd
	TokOr
	TokNot
	TokMod
	TokTrue
	TokFalse
	TokNone
	TokFoldt
)

var kindNames = map[TokKind]string{
	TokEOF: "EOF", TokNewline: "newline", TokIndent: "indent", TokDedent: "dedent",
	TokIdent: "identifier", TokInt: "integer", TokString: "string",
	TokColon: ":", TokComma: ",", TokLParen: "(", TokRParen: ")",
	TokLBracket: "[", TokRBracket: "]", TokLBrace: "{", TokRBrace: "}",
	TokLess: "<", TokGreater: ">", TokLessEq: "<=", TokGreaterEq: ">=",
	TokEq: "=", TokNotEq: "<>", TokPlus: "+", TokMinus: "-", TokStar: "*",
	TokSlash: "/", TokAssign: ":=", TokArrow: "=>", TokRArrow: "->",
	TokDot: ".", TokPipe: "|", TokUnderscore: "_",
	TokType: "type", TokRecord: "record", TokProc: "proc", TokFun: "fun",
	TokGlobal: "global", TokLet: "let", TokIf: "if", TokElse: "else",
	TokRef: "ref", TokDict: "dict", TokList: "list", TokAnd: "and",
	TokOr: "or", TokNot: "not", TokMod: "mod", TokTrue: "true",
	TokFalse: "false", TokNone: "None", TokFoldt: "foldt",
}

// String names the kind.
func (k TokKind) String() string {
	if s, ok := kindNames[k]; ok {
		return s
	}
	return fmt.Sprintf("tok(%d)", int(k))
}

var keywords = map[string]TokKind{
	"type": TokType, "record": TokRecord, "proc": TokProc, "fun": TokFun,
	"global": TokGlobal, "let": TokLet, "if": TokIf, "else": TokElse,
	"ref": TokRef, "dict": TokDict, "list": TokList, "and": TokAnd,
	"or": TokOr, "not": TokNot, "mod": TokMod, "true": TokTrue,
	"false": TokFalse, "None": TokNone, "foldt": TokFoldt,
}

// Pos locates a token in the source.
type Pos struct {
	Line int
	Col  int
}

// String renders "line:col".
func (p Pos) String() string { return fmt.Sprintf("%d:%d", p.Line, p.Col) }

// Token is one lexical token.
type Token struct {
	Kind TokKind
	Text string // identifier / literal spelling
	Int  int64  // value for TokInt
	Pos  Pos
}

// Error is a front-end error carrying a source position.
type Error struct {
	Pos Pos
	Msg string
}

// Error implements error.
func (e *Error) Error() string { return fmt.Sprintf("%s: %s", e.Pos, e.Msg) }

func errf(pos Pos, format string, args ...any) *Error {
	return &Error{Pos: pos, Msg: fmt.Sprintf(format, args...)}
}
