package loadgen

import (
	"bytes"
	"testing"
)

// TestMemcacheSeqDeterministic pins the seeded-determinism contract the
// bench harness relies on: the same seed yields the identical (opcode, key)
// request sequence, so Fig5 comparisons across PRs measure the system, not
// the workload.
func TestMemcacheSeqDeterministic(t *testing.T) {
	const n = 10000
	a := NewMemcacheSeq(42, 10000, 0.25)
	b := NewMemcacheSeq(42, 10000, 0.25)
	getks := 0
	for i := 0; i < n; i++ {
		opA, keyA := a.Next()
		opB, keyB := b.Next()
		if opA != opB || !bytes.Equal(keyA, keyB) {
			t.Fatalf("request %d diverged: (%#x,%q) vs (%#x,%q)", i, opA, keyA, opB, keyB)
		}
		if opA == 0x0c {
			getks++
		}
	}
	// The GETK share must be honoured (loose bound: 25% ± 5pp over 10k).
	if getks < n/5 || getks > 3*n/10 {
		t.Fatalf("GETK share = %d/%d, want ≈25%%", getks, n)
	}
}

// TestMemcacheSeqSeedsDiverge guards against a constant generator
// satisfying the determinism test.
func TestMemcacheSeqSeedsDiverge(t *testing.T) {
	a := NewMemcacheSeq(1, 10000, 0.5)
	b := NewMemcacheSeq(2, 10000, 0.5)
	same := 0
	for i := 0; i < 100; i++ {
		opA, keyA := a.Next()
		opB, keyB := b.Next()
		if opA == opB && bytes.Equal(keyA, keyB) {
			same++
		}
	}
	if same == 100 {
		t.Fatalf("different seeds produced identical sequences")
	}
}

// TestWordDatasetDeterministic covers the Hadoop mapper inputs: identical
// seeds must generate identical word sets (and different seeds must not).
func TestWordDatasetDeterministic(t *testing.T) {
	a := NewWordDataset(12, 64, 7)
	b := NewWordDataset(12, 64, 7)
	if len(a.Words) != len(b.Words) {
		t.Fatalf("word counts differ: %d vs %d", len(a.Words), len(b.Words))
	}
	for i := range a.Words {
		if !bytes.Equal(a.Words[i], b.Words[i]) {
			t.Fatalf("word %d diverged: %q vs %q", i, a.Words[i], b.Words[i])
		}
	}
	c := NewWordDataset(12, 64, 8)
	diff := false
	for i := range a.Words {
		if !bytes.Equal(a.Words[i], c.Words[i]) {
			diff = true
			break
		}
	}
	if !diff {
		t.Fatalf("different seeds produced identical datasets")
	}
}
