package loadgen

import "math/rand"

// HotKeyConfig parameterises a skewed key sequence: a hot set absorbing a
// fixed share of draws, with the cold remainder drawn zipfian or uniform.
// It models the hot-key workloads an in-network response cache exists for
// (a few keys dominating the request mix).
type HotKeyConfig struct {
	// Seed makes the sequence deterministic (MemcacheSeq's reproducibility
	// contract: same config → identical key stream across runs).
	Seed int64
	// Keys is the key-space size ("key-%06d", shared with PreloadKeys).
	Keys int
	// HotShare in [0,1] is the fraction of draws taken from the hot set.
	HotShare float64
	// HotKeys is the hot-set size (0: 1). Hot keys are indices
	// [0, HotKeys); draws within the set are uniform.
	HotKeys int
	// ZipfS is the zipf skew of the cold remainder; values > 1 enable the
	// zipfian tail (rand.Zipf's s parameter), anything else draws the cold
	// keys uniformly.
	ZipfS float64
}

// HotKeySeq yields a deterministic skewed key-index stream. Like
// MemcacheSeq, the same configuration produces the identical stream, so
// cached-vs-uncached benchmark arms see byte-identical request mixes.
type HotKeySeq struct {
	rng      *rand.Rand
	zipf     *rand.Zipf
	keys     int
	hotKeys  int
	hotShare float64
	keyBuf   []byte
}

// NewHotKeySeq creates a sequence; Keys must be positive.
func NewHotKeySeq(cfg HotKeyConfig) *HotKeySeq {
	if cfg.Keys <= 0 {
		cfg.Keys = 1
	}
	if cfg.HotKeys <= 0 {
		cfg.HotKeys = 1
	}
	if cfg.HotKeys > cfg.Keys {
		cfg.HotKeys = cfg.Keys
	}
	s := &HotKeySeq{
		rng:      rand.New(rand.NewSource(cfg.Seed)),
		keys:     cfg.Keys,
		hotKeys:  cfg.HotKeys,
		hotShare: cfg.HotShare,
	}
	if cold := cfg.Keys - cfg.HotKeys; cold > 0 && cfg.ZipfS > 1 {
		s.zipf = rand.NewZipf(s.rng, cfg.ZipfS, 1, uint64(cold-1))
	}
	return s
}

// NextIndex returns the next key index in [0, Keys).
func (s *HotKeySeq) NextIndex() int {
	if s.hotKeys >= s.keys {
		return s.rng.Intn(s.keys)
	}
	if s.rng.Float64() < s.hotShare {
		if s.hotKeys == 1 {
			return 0
		}
		return s.rng.Intn(s.hotKeys)
	}
	if s.zipf != nil {
		return s.hotKeys + int(s.zipf.Uint64())
	}
	return s.hotKeys + s.rng.Intn(s.keys-s.hotKeys)
}

// Next renders the next key ("key-%06d"). The slice is reused by the
// following Next call.
func (s *HotKeySeq) Next() []byte {
	s.keyBuf = appendKey(s.keyBuf[:0], s.NextIndex())
	return s.keyBuf
}
