package loadgen

import (
	"testing"
)

// TestHotKeyDeterminism pins the reproducibility contract: the same config
// yields the identical index stream, and a different seed does not.
func TestHotKeyDeterminism(t *testing.T) {
	cfg := HotKeyConfig{Seed: 7, Keys: 1000, HotShare: 0.5, HotKeys: 4, ZipfS: 1.2}
	a, b := NewHotKeySeq(cfg), NewHotKeySeq(cfg)
	other := cfg
	other.Seed = 8
	c := NewHotKeySeq(other)
	diff := 0
	for i := 0; i < 10000; i++ {
		ai, bi := a.NextIndex(), b.NextIndex()
		if ai != bi {
			t.Fatalf("draw %d: seeds equal but indices differ (%d vs %d)", i, ai, bi)
		}
		if ai != c.NextIndex() {
			diff++
		}
	}
	if diff == 0 {
		t.Fatalf("different seeds produced identical streams")
	}
}

// TestHotKeyShare pins the hot-set mass: with HotShare = 0.5 over a large
// sample, the hot set must absorb 50% of draws within tolerance.
func TestHotKeyShare(t *testing.T) {
	const n = 200000
	s := NewHotKeySeq(HotKeyConfig{Seed: 1, Keys: 100000, HotShare: 0.5, HotKeys: 1})
	hot := 0
	for i := 0; i < n; i++ {
		if s.NextIndex() == 0 {
			hot++
		}
	}
	got := float64(hot) / n
	if got < 0.48 || got > 0.52 {
		t.Fatalf("hot share = %.4f, want 0.50 ± 0.02", got)
	}
}

// TestHotKeyZipfTail pins the zipfian cold tail: lower cold indices must be
// drawn more often than higher ones (monotone head-heavy mass).
func TestHotKeyZipfTail(t *testing.T) {
	const n = 200000
	s := NewHotKeySeq(HotKeyConfig{Seed: 3, Keys: 10000, HotShare: 0, HotKeys: 1, ZipfS: 1.5})
	counts := make([]int, 10000)
	for i := 0; i < n; i++ {
		counts[s.NextIndex()]++
	}
	// Cold indices start at 1 (hot set occupies index 0, share 0 here).
	head := counts[1] + counts[2] + counts[3] + counts[4]
	var tail int
	for i := 101; i <= 104; i++ {
		tail += counts[i]
	}
	if head <= tail*4 {
		t.Fatalf("zipf head mass %d not dominant over tail mass %d", head, tail)
	}
}

// TestHotKeyBounds checks every draw stays inside the key space across
// configurations, including degenerate ones.
func TestHotKeyBounds(t *testing.T) {
	cfgs := []HotKeyConfig{
		{Seed: 1, Keys: 1},
		{Seed: 1, Keys: 10, HotKeys: 10, HotShare: 1},
		{Seed: 1, Keys: 50, HotKeys: 3, HotShare: 0.9, ZipfS: 2},
		{Seed: 1, Keys: 2, HotShare: 0.5},
	}
	for _, cfg := range cfgs {
		s := NewHotKeySeq(cfg)
		for i := 0; i < 5000; i++ {
			if idx := s.NextIndex(); idx < 0 || idx >= cfg.Keys {
				t.Fatalf("cfg %+v: index %d out of [0,%d)", cfg, idx, cfg.Keys)
			}
		}
	}
}

// TestHotKeyRendering checks Next renders the same keys PreloadKeys primes.
func TestHotKeyRendering(t *testing.T) {
	s := NewHotKeySeq(HotKeyConfig{Seed: 2, Keys: 10, HotShare: 1, HotKeys: 1})
	if got := string(s.Next()); got != Key(0) {
		t.Fatalf("hot key rendered %q, want %q", got, Key(0))
	}
}
