// Package loadgen implements the evaluation's traffic sources: an
// ApacheBench-style closed-loop HTTP client fleet (§6.2), a
// libmemcached-style binary-protocol client fleet, and the Hadoop wordcount
// dataset generator with mapper emitters.
package loadgen

import (
	"math/rand"
	"net"
	"sync"
	"time"

	"flick/internal/buffer"
	"flick/internal/grammar"
	"flick/internal/metrics"
	"flick/internal/netstack"
	"flick/internal/proto/hadoop"
	phttp "flick/internal/proto/http"
	"flick/internal/proto/memcache"
)

// Result aggregates one load-generation run.
type Result struct {
	// Requests completed successfully.
	Requests uint64
	// Errors counts failed requests (connect/read/write failures).
	Errors uint64
	// Elapsed is the wall-clock duration of the run.
	Elapsed time.Duration
	// Latency summarises per-request latency.
	Latency metrics.Snapshot
	// Bytes counts payload bytes received.
	Bytes uint64
}

// Throughput returns completed requests per second.
func (r Result) Throughput() float64 {
	if r.Elapsed <= 0 {
		return 0
	}
	return float64(r.Requests) / r.Elapsed.Seconds()
}

// MBps returns payload megabits per second.
func (r Result) Mbps() float64 {
	if r.Elapsed <= 0 {
		return 0
	}
	return float64(r.Bytes) * 8 / 1e6 / r.Elapsed.Seconds()
}

// HTTPConfig parameterises an HTTP load run.
type HTTPConfig struct {
	// Transport carries the traffic.
	Transport netstack.Transport
	// Addr is the server/middlebox address.
	Addr string
	// Clients is the number of concurrent closed-loop clients
	// ("concurrent connections" on the Figure 4 x-axis).
	Clients int
	// Persistent selects HTTP keep-alive; non-persistent opens a fresh
	// TCP connection per request (Figure 4c/4d).
	Persistent bool
	// Duration bounds the run.
	Duration time.Duration
	// URI is the requested path.
	URI string
}

// RunHTTP drives the ApacheBench-model workload: each client issues
// back-to-back GETs, waiting for every response in full before the next
// request ("Clients send a single request and wait for a response before
// sending the next request").
func RunHTTP(cfg HTTPConfig) Result {
	if cfg.URI == "" {
		cfg.URI = "/index.html"
	}
	if cfg.Duration <= 0 {
		cfg.Duration = time.Second
	}
	var (
		hist    metrics.Histogram
		reqs    metrics.Counter
		errs    metrics.Counter
		rxBytes metrics.Counter
		wg      sync.WaitGroup
	)
	deadline := time.Now().Add(cfg.Duration)
	start := time.Now()
	for c := 0; c < cfg.Clients; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			httpClientLoop(cfg, deadline, &hist, &reqs, &errs, &rxBytes)
		}()
	}
	wg.Wait()
	return Result{
		Requests: reqs.Value(),
		Errors:   errs.Value(),
		Elapsed:  time.Since(start),
		Latency:  hist.Snapshot(),
		Bytes:    rxBytes.Value(),
	}
}

func httpClientLoop(cfg HTTPConfig, deadline time.Time,
	hist *metrics.Histogram, reqs, errs, rxBytes *metrics.Counter) {

	var (
		conn net.Conn
		q    = buffer.NewQueue(nil)
		dec  = phttp.ResponseFormat{}.NewDecoder()
		rbuf = make([]byte, 16<<10)
		wbuf []byte
	)
	defer func() {
		if conn != nil {
			conn.Close()
		}
	}()
	for time.Now().Before(deadline) {
		if conn == nil {
			var err error
			conn, err = cfg.Transport.Dial(cfg.Addr)
			if err != nil {
				// Transient refusal (backlog overflow under churn): back
				// off briefly and retry; a closed-loop client must not
				// die for the rest of the run.
				errs.Inc()
				time.Sleep(time.Millisecond)
				continue
			}
			q.Reset()
			dec = phttp.ResponseFormat{}.NewDecoder()
		}
		t0 := time.Now()
		wbuf = phttp.BuildRequest(wbuf[:0], "GET", cfg.URI, "bench", cfg.Persistent, nil)
		if _, err := conn.Write(wbuf); err != nil {
			errs.Inc()
			conn.Close()
			conn = nil
			continue
		}
		body, ok := readFullResponse(conn, q, &dec, rbuf)
		if !ok {
			errs.Inc()
			conn.Close()
			conn = nil
			continue
		}
		hist.Record(time.Since(t0))
		reqs.Inc()
		rxBytes.Add(uint64(body))
		if !cfg.Persistent {
			conn.Close()
			conn = nil
		}
	}
}

// readFullResponse blocks until one complete response arrives on conn and
// returns its body size.
func readFullResponse(conn net.Conn, q *buffer.Queue, dec *grammar.StreamDecoder, rbuf []byte) (int, bool) {
	for {
		msg, ok, derr := (*dec).Decode(q)
		if derr != nil {
			return 0, false
		}
		if ok {
			n := int(msg.Field("content_length").AsInt())
			msg.Release() // recycle the response's pooled wire bytes
			return n, true
		}
		n, rerr := conn.Read(rbuf)
		if n > 0 {
			q.Append(rbuf[:n])
			continue
		}
		if rerr != nil {
			return 0, false
		}
	}
}

// MemcacheConfig parameterises a Memcached load run.
type MemcacheConfig struct {
	Transport netstack.Transport
	Addr      string
	// Clients is the concurrent client count (the paper uses 128).
	Clients int
	// Keys is the key-space size; requests draw keys uniformly.
	Keys int
	// GetKShare in [0,1] selects the fraction of GETK (cacheable)
	// requests; the rest are plain GETs.
	GetKShare float64
	Duration  time.Duration
}

// RunMemcache drives the libmemcached-model workload over persistent
// connections.
func RunMemcache(cfg MemcacheConfig) Result {
	if cfg.Keys <= 0 {
		cfg.Keys = 10000
	}
	if cfg.Duration <= 0 {
		cfg.Duration = time.Second
	}
	var (
		hist metrics.Histogram
		reqs metrics.Counter
		errs metrics.Counter
		rx   metrics.Counter
		wg   sync.WaitGroup
	)
	deadline := time.Now().Add(cfg.Duration)
	start := time.Now()
	for c := 0; c < cfg.Clients; c++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			seq := NewMemcacheSeq(seed, cfg.Keys, cfg.GetKShare)
			raw, err := cfg.Transport.Dial(cfg.Addr)
			if err != nil {
				errs.Inc()
				return
			}
			mc := memcache.NewConn(raw)
			defer mc.Close()
			for time.Now().Before(deadline) {
				op, key := seq.Next()
				t0 := time.Now()
				resp, err := mc.RoundTrip(memcache.Request(op, key, nil))
				if err != nil {
					errs.Inc()
					return
				}
				hist.Record(time.Since(t0))
				reqs.Inc()
				rx.Add(uint64(resp.Field("value").ByteLen()))
				resp.Release() // recycle the response's pooled wire bytes
			}
		}(int64(c) + 1)
	}
	wg.Wait()
	return Result{
		Requests: reqs.Value(),
		Errors:   errs.Value(),
		Elapsed:  time.Since(start),
		Latency:  hist.Snapshot(),
		Bytes:    rx.Value(),
	}
}

// MemcacheSeq is the deterministic per-client request sequence of the
// libmemcached-model workload: given the same seed, key-space size and GETK
// share it yields the identical (opcode, key) stream, so benchmark runs are
// reproducible across PRs and load is comparable between systems.
type MemcacheSeq struct {
	rng       *rand.Rand
	keys      int
	getkShare float64
	keyBuf    []byte
}

// NewMemcacheSeq creates a sequence. keys must be positive.
func NewMemcacheSeq(seed int64, keys int, getkShare float64) *MemcacheSeq {
	if keys <= 0 {
		keys = 1
	}
	return &MemcacheSeq{rng: rand.New(rand.NewSource(seed)), keys: keys, getkShare: getkShare}
}

// Next returns the next request's opcode and key. The key slice is reused
// by the following Next call.
func (s *MemcacheSeq) Next() (op byte, key []byte) {
	s.keyBuf = appendKey(s.keyBuf[:0], s.rng.Intn(s.keys))
	op = byte(memcache.OpGet)
	if s.rng.Float64() < s.getkShare {
		op = memcache.OpGetK
	}
	return op, s.keyBuf
}

// appendKey renders "key-%06d" without fmt in the hot path.
func appendKey(dst []byte, n int) []byte {
	dst = append(dst, "key-"...)
	var tmp [8]byte
	i := len(tmp)
	for j := 0; j < 6; j++ {
		i--
		tmp[i] = byte('0' + n%10)
		n /= 10
	}
	return append(dst, tmp[i:]...)
}

// Key renders the i-th key of the preloaded key space ("key-%06d").
func Key(i int) string { return string(appendKey(nil, i)) }

// PreloadKeys returns the key/value set the Memcached backends are primed
// with so load-run GETs hit.
func PreloadKeys(keys int, valueSize int) map[string]string {
	kv := make(map[string]string, keys)
	val := make([]byte, valueSize)
	for i := range val {
		val[i] = 'v'
	}
	for i := 0; i < keys; i++ {
		kv[string(appendKey(nil, i))] = string(val)
	}
	return kv
}

// WordDataset generates the wordcount inputs of §6.2: datasets "consisting
// of words of 8, 12 and 16 characters" with a high data-reduction ratio
// (few distinct words, many occurrences).
type WordDataset struct {
	Words [][]byte
}

// NewWordDataset builds a dataset with the given word length and number of
// distinct words.
func NewWordDataset(wordLen, distinct int, seed int64) *WordDataset {
	rng := rand.New(rand.NewSource(seed))
	ds := &WordDataset{}
	for i := 0; i < distinct; i++ {
		w := make([]byte, wordLen)
		for j := range w {
			w[j] = byte('a' + rng.Intn(26))
		}
		ds.Words = append(ds.Words, w)
	}
	return ds
}

// EmitterResult reports one mapper's emission.
type EmitterResult struct {
	Pairs uint64
	Bytes uint64
}

// RunMapper streams totalBytes of key/value pairs (word → "1") to the
// aggregator at full rate, modelling one Hadoop mapper's intermediate
// output.
func (ds *WordDataset) RunMapper(tr netstack.Transport, addr string, totalBytes int64, seed int64) (EmitterResult, error) {
	conn, err := tr.Dial(addr)
	if err != nil {
		return EmitterResult{}, err
	}
	defer conn.Close()
	w := newCountingWriter(conn)
	hw := hadoop.NewWriter(w)
	rng := rand.New(rand.NewSource(seed))
	one := []byte("1")
	var pairs uint64
	for w.n < totalBytes {
		word := ds.Words[rng.Intn(len(ds.Words))]
		if err := hw.Write(word, one); err != nil {
			return EmitterResult{Pairs: pairs, Bytes: uint64(w.n)}, err
		}
		pairs++
	}
	if err := hw.Flush(); err != nil {
		return EmitterResult{Pairs: pairs, Bytes: uint64(w.n)}, err
	}
	return EmitterResult{Pairs: pairs, Bytes: uint64(w.n)}, nil
}

// countingWriter tracks bytes written.
type countingWriter struct {
	conn net.Conn
	n    int64
}

func newCountingWriter(conn net.Conn) *countingWriter { return &countingWriter{conn: conn} }

func (w *countingWriter) Write(p []byte) (int, error) {
	n, err := w.conn.Write(p)
	w.n += int64(n)
	return n, err
}
