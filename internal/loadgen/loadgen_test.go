package loadgen

import (
	"io"
	"testing"
	"time"

	"flick/internal/backend"
	"flick/internal/netstack"
	"flick/internal/proto/hadoop"
)

func TestRunHTTPPersistent(t *testing.T) {
	u := netstack.NewUserNet()
	s, err := backend.NewHTTPServer(u, "web:1", 137)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	res := RunHTTP(HTTPConfig{
		Transport:  u,
		Addr:       "web:1",
		Clients:    4,
		Persistent: true,
		Duration:   200 * time.Millisecond,
	})
	if res.Requests == 0 || res.Errors > 0 {
		t.Fatalf("requests=%d errors=%d", res.Requests, res.Errors)
	}
	if res.Throughput() <= 0 {
		t.Fatal("zero throughput")
	}
	if res.Latency.Count != res.Requests {
		t.Fatalf("latency samples %d != requests %d", res.Latency.Count, res.Requests)
	}
	if res.Bytes != res.Requests*137 {
		t.Fatalf("bytes = %d, want %d", res.Bytes, res.Requests*137)
	}
}

func TestRunHTTPNonPersistent(t *testing.T) {
	u := netstack.NewUserNet()
	s, err := backend.NewHTTPServer(u, "web:2", 64)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	res := RunHTTP(HTTPConfig{
		Transport:  u,
		Addr:       "web:2",
		Clients:    4,
		Persistent: false,
		Duration:   200 * time.Millisecond,
	})
	if res.Requests == 0 {
		t.Fatalf("no requests (errors=%d)", res.Errors)
	}
	// Non-persistent must be slower per request than persistent on the
	// same setup — not asserted strictly here, just sanity that both ran.
}

func TestRunMemcache(t *testing.T) {
	u := netstack.NewUserNet()
	s, err := backend.NewMemcachedServer(u, "mc:1")
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	s.Preload(PreloadKeys(500, 32))
	res := RunMemcache(MemcacheConfig{
		Transport: u,
		Addr:      "mc:1",
		Clients:   8,
		Keys:      500,
		GetKShare: 0.5,
		Duration:  200 * time.Millisecond,
	})
	if res.Requests == 0 || res.Errors > 0 {
		t.Fatalf("requests=%d errors=%d", res.Requests, res.Errors)
	}
	if res.Bytes == 0 {
		t.Fatal("no payload bytes (all misses?)")
	}
}

func TestAppendKey(t *testing.T) {
	if got := string(appendKey(nil, 42)); got != "key-000042" {
		t.Fatalf("key = %q", got)
	}
	if got := string(appendKey(nil, 999999)); got != "key-999999" {
		t.Fatalf("key = %q", got)
	}
}

func TestPreloadKeys(t *testing.T) {
	kv := PreloadKeys(10, 8)
	if len(kv) != 10 {
		t.Fatalf("len = %d", len(kv))
	}
	v, ok := kv["key-000003"]
	if !ok || len(v) != 8 {
		t.Fatalf("key-000003 = %q %v", v, ok)
	}
}

func TestWordDataset(t *testing.T) {
	ds := NewWordDataset(12, 50, 1)
	if len(ds.Words) != 50 {
		t.Fatalf("words = %d", len(ds.Words))
	}
	for _, w := range ds.Words {
		if len(w) != 12 {
			t.Fatalf("word %q has length %d", w, len(w))
		}
	}
	// Determinism.
	ds2 := NewWordDataset(12, 50, 1)
	if string(ds.Words[0]) != string(ds2.Words[0]) {
		t.Fatal("dataset not deterministic for same seed")
	}
}

func TestRunMapper(t *testing.T) {
	u := netstack.NewUserNet()
	l, err := u.Listen("agg:1")
	if err != nil {
		t.Fatal(err)
	}
	type sink struct {
		pairs int
		bytes int64
	}
	done := make(chan sink, 1)
	go func() {
		c, err := l.Accept()
		if err != nil {
			return
		}
		defer c.Close()
		r := hadoop.NewReader(c)
		var s sink
		for {
			kv, err := r.Read()
			if err == io.EOF {
				done <- s
				return
			}
			if err != nil {
				t.Error(err)
				done <- s
				return
			}
			s.pairs++
			s.bytes += int64(len(hadoop.Key(kv)) + len(hadoop.Value(kv)) + 8)
			kv.Release()
		}
	}()

	ds := NewWordDataset(8, 20, 7)
	res, err := ds.RunMapper(u, "agg:1", 64<<10, 7)
	if err != nil {
		t.Fatal(err)
	}
	if res.Pairs == 0 || res.Bytes < 64<<10 {
		t.Fatalf("mapper result = %+v", res)
	}
	select {
	case s := <-done:
		if uint64(s.pairs) != res.Pairs {
			t.Fatalf("sink saw %d pairs, mapper sent %d", s.pairs, res.Pairs)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("sink never finished")
	}
}

func TestResultDerivedMetrics(t *testing.T) {
	r := Result{Requests: 100, Elapsed: 2 * time.Second, Bytes: 2_000_000}
	if r.Throughput() != 50 {
		t.Fatalf("throughput = %f", r.Throughput())
	}
	if r.Mbps() != 8 {
		t.Fatalf("mbps = %f", r.Mbps())
	}
	zero := Result{}
	if zero.Throughput() != 0 || zero.Mbps() != 0 {
		t.Fatal("zero-elapsed result should report zero rates")
	}
}
