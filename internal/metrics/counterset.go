package metrics

import (
	"bytes"
	"encoding/json"
	"fmt"
	"strconv"
	"strings"
	"sync"
)

// CounterSet is an ordered set of named counter readings: a point-in-time
// snapshot of a subsystem's counters (scheduler steals/parks/wakeups,
// buffer-pool hits, ...) suitable for benchmark tables and deltas between
// measurement windows.
type CounterSet struct {
	names  []string
	values []uint64
}

// NewCounterSet builds a set from alternating name, value pairs:
//
//	NewCounterSet("steals", 12, "parks", 3)
//
// It panics on malformed pairs (programming error, not input error).
func NewCounterSet(pairs ...any) CounterSet {
	if len(pairs)%2 != 0 {
		panic("metrics: NewCounterSet needs name/value pairs")
	}
	cs := CounterSet{}
	for i := 0; i < len(pairs); i += 2 {
		name, ok := pairs[i].(string)
		if !ok {
			panic(fmt.Sprintf("metrics: CounterSet name %d is %T, want string", i/2, pairs[i]))
		}
		var v uint64
		switch x := pairs[i+1].(type) {
		case uint64:
			v = x
		case int:
			if x < 0 {
				panic(fmt.Sprintf("metrics: CounterSet value %q is negative", name))
			}
			v = uint64(x)
		default:
			panic(fmt.Sprintf("metrics: CounterSet value %q is %T, want uint64 or int", name, pairs[i+1]))
		}
		cs.names = append(cs.names, name)
		cs.values = append(cs.values, v)
	}
	return cs
}

// Len returns the number of counters in the set.
func (cs CounterSet) Len() int { return len(cs.names) }

// Names returns the counter names in insertion order.
func (cs CounterSet) Names() []string { return append([]string(nil), cs.names...) }

// Get returns the value of the named counter (false when absent).
func (cs CounterSet) Get(name string) (uint64, bool) {
	for i, n := range cs.names {
		if n == name {
			return cs.values[i], true
		}
	}
	return 0, false
}

// Sub returns cs - prev counter-wise: the activity between two snapshots.
// Counters absent from prev are kept as-is; counters that went backwards
// (a reset) clamp to zero rather than wrapping.
func (cs CounterSet) Sub(prev CounterSet) CounterSet {
	out := CounterSet{
		names:  append([]string(nil), cs.names...),
		values: append([]uint64(nil), cs.values...),
	}
	for i, n := range out.names {
		if pv, ok := prev.Get(n); ok {
			if pv > out.values[i] {
				out.values[i] = 0
			} else {
				out.values[i] -= pv
			}
		}
	}
	return out
}

// String renders the set compactly: "steals=12 parks=3".
func (cs CounterSet) String() string {
	var b strings.Builder
	for i, n := range cs.names {
		if i > 0 {
			b.WriteByte(' ')
		}
		fmt.Fprintf(&b, "%s=%d", n, cs.values[i])
	}
	return b.String()
}

// MarshalJSON renders the set as one JSON object whose keys appear in
// counter insertion order — the same order String uses, so the admin
// API's /counters payload and the benchmark text dumps are two renderings
// of one representation. (encoding/json would sort a map's keys; the
// object is built by hand to keep the order.)
func (cs CounterSet) MarshalJSON() ([]byte, error) {
	var b bytes.Buffer
	b.WriteByte('{')
	for i, n := range cs.names {
		if i > 0 {
			b.WriteByte(',')
		}
		name, err := json.Marshal(n)
		if err != nil {
			return nil, err
		}
		b.Write(name)
		b.WriteByte(':')
		b.WriteString(strconv.FormatUint(cs.values[i], 10))
	}
	b.WriteByte('}')
	return b.Bytes(), nil
}

// Named couples a CounterSet snapshot with the subsystem name it was
// registered under.
type Named struct {
	Name     string
	Counters CounterSet
}

// Registry is an ordered, concurrency-safe collection of counter-set
// sources: each subsystem registers a snapshot function once (scheduler
// stats, buffer pool, upstream layer, control plane), and consumers —
// the admin API's /counters endpoint, debug dumps — snapshot them all in
// registration order. The zero value is not usable; call NewRegistry.
type Registry struct {
	mu      sync.Mutex
	names   []string
	sources map[string]func() CounterSet
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{sources: map[string]func() CounterSet{}}
}

// Register adds (or replaces) the named snapshot source. Registration
// order is preserved across snapshots; re-registering a name keeps its
// original position.
func (r *Registry) Register(name string, fn func() CounterSet) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.sources[name]; !ok {
		r.names = append(r.names, name)
	}
	r.sources[name] = fn
}

// Snapshot calls every registered source and returns the readings in
// registration order. Sources run outside the registry lock — a source
// may itself take subsystem locks.
func (r *Registry) Snapshot() []Named {
	r.mu.Lock()
	names := append([]string(nil), r.names...)
	fns := make([]func() CounterSet, len(names))
	for i, n := range names {
		fns[i] = r.sources[n]
	}
	r.mu.Unlock()
	out := make([]Named, len(names))
	for i, n := range names {
		out[i] = Named{Name: n, Counters: fns[i]()}
	}
	return out
}

// MarshalJSON renders a snapshot of every registered set as one JSON
// object in registration order: {"sched":{...},"pool":{...}}.
func (r *Registry) MarshalJSON() ([]byte, error) {
	return MarshalNamed(r.Snapshot())
}

// MarshalNamed renders named counter sets as one order-preserving JSON
// object (the /counters wire format).
func MarshalNamed(sets []Named) ([]byte, error) {
	var b bytes.Buffer
	b.WriteByte('{')
	for i, s := range sets {
		if i > 0 {
			b.WriteByte(',')
		}
		name, err := json.Marshal(s.Name)
		if err != nil {
			return nil, err
		}
		b.Write(name)
		b.WriteByte(':')
		inner, err := s.Counters.MarshalJSON()
		if err != nil {
			return nil, err
		}
		b.Write(inner)
	}
	b.WriteByte('}')
	return b.Bytes(), nil
}
