package metrics

import (
	"fmt"
	"strings"
)

// CounterSet is an ordered set of named counter readings: a point-in-time
// snapshot of a subsystem's counters (scheduler steals/parks/wakeups,
// buffer-pool hits, ...) suitable for benchmark tables and deltas between
// measurement windows.
type CounterSet struct {
	names  []string
	values []uint64
}

// NewCounterSet builds a set from alternating name, value pairs:
//
//	NewCounterSet("steals", 12, "parks", 3)
//
// It panics on malformed pairs (programming error, not input error).
func NewCounterSet(pairs ...any) CounterSet {
	if len(pairs)%2 != 0 {
		panic("metrics: NewCounterSet needs name/value pairs")
	}
	cs := CounterSet{}
	for i := 0; i < len(pairs); i += 2 {
		name, ok := pairs[i].(string)
		if !ok {
			panic(fmt.Sprintf("metrics: CounterSet name %d is %T, want string", i/2, pairs[i]))
		}
		var v uint64
		switch x := pairs[i+1].(type) {
		case uint64:
			v = x
		case int:
			if x < 0 {
				panic(fmt.Sprintf("metrics: CounterSet value %q is negative", name))
			}
			v = uint64(x)
		default:
			panic(fmt.Sprintf("metrics: CounterSet value %q is %T, want uint64 or int", name, pairs[i+1]))
		}
		cs.names = append(cs.names, name)
		cs.values = append(cs.values, v)
	}
	return cs
}

// Len returns the number of counters in the set.
func (cs CounterSet) Len() int { return len(cs.names) }

// Names returns the counter names in insertion order.
func (cs CounterSet) Names() []string { return append([]string(nil), cs.names...) }

// Get returns the value of the named counter (false when absent).
func (cs CounterSet) Get(name string) (uint64, bool) {
	for i, n := range cs.names {
		if n == name {
			return cs.values[i], true
		}
	}
	return 0, false
}

// Sub returns cs - prev counter-wise: the activity between two snapshots.
// Counters absent from prev are kept as-is; counters that went backwards
// (a reset) clamp to zero rather than wrapping.
func (cs CounterSet) Sub(prev CounterSet) CounterSet {
	out := CounterSet{
		names:  append([]string(nil), cs.names...),
		values: append([]uint64(nil), cs.values...),
	}
	for i, n := range out.names {
		if pv, ok := prev.Get(n); ok {
			if pv > out.values[i] {
				out.values[i] = 0
			} else {
				out.values[i] -= pv
			}
		}
	}
	return out
}

// String renders the set compactly: "steals=12 parks=3".
func (cs CounterSet) String() string {
	var b strings.Builder
	for i, n := range cs.names {
		if i > 0 {
			b.WriteByte(' ')
		}
		fmt.Fprintf(&b, "%s=%d", n, cs.values[i])
	}
	return b.String()
}
