package metrics

import (
	"encoding/json"
	"testing"
)

func TestCounterSetBasics(t *testing.T) {
	cs := NewCounterSet("steals", 12, "parks", uint64(3), "wakeups", 0)
	if cs.Len() != 3 {
		t.Fatalf("len = %d", cs.Len())
	}
	if got := cs.Names(); len(got) != 3 || got[0] != "steals" || got[2] != "wakeups" {
		t.Fatalf("names = %v", got)
	}
	if v, ok := cs.Get("parks"); !ok || v != 3 {
		t.Fatalf("parks = %d, %v", v, ok)
	}
	if _, ok := cs.Get("missing"); ok {
		t.Fatal("found a counter that does not exist")
	}
	if s := cs.String(); s != "steals=12 parks=3 wakeups=0" {
		t.Fatalf("string = %q", s)
	}
}

func TestCounterSetSub(t *testing.T) {
	prev := NewCounterSet("steals", 10, "parks", 5)
	cur := NewCounterSet("steals", 25, "parks", 3, "wakeups", 7)
	d := cur.Sub(prev)
	if v, _ := d.Get("steals"); v != 15 {
		t.Fatalf("steals delta = %d", v)
	}
	// Counter went backwards (reset): clamps to zero rather than wrapping.
	if v, _ := d.Get("parks"); v != 0 {
		t.Fatalf("parks delta = %d", v)
	}
	// Absent from prev: kept as-is.
	if v, _ := d.Get("wakeups"); v != 7 {
		t.Fatalf("wakeups delta = %d", v)
	}
}

func TestCounterSetPanics(t *testing.T) {
	for name, fn := range map[string]func(){
		"odd pairs":      func() { NewCounterSet("a") },
		"non-string key": func() { NewCounterSet(1, 2) },
		"negative int":   func() { NewCounterSet("a", -1) },
		"bad value type": func() { NewCounterSet("a", "b") },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: no panic", name)
				}
			}()
			fn()
		}()
	}
}

// TestCounterSetMarshalJSON pins the wire format: one JSON object whose
// keys appear in insertion order (deliberately non-alphabetical here),
// not the sorted order a map marshal would produce.
func TestCounterSetMarshalJSON(t *testing.T) {
	cs := NewCounterSet("zeta", 3, "alpha", 12, "mid", 0)
	raw, err := json.Marshal(cs)
	if err != nil {
		t.Fatal(err)
	}
	want := `{"zeta":3,"alpha":12,"mid":0}`
	if string(raw) != want {
		t.Fatalf("MarshalJSON = %s, want %s", raw, want)
	}
	// The payload is also valid JSON with the right values.
	var back map[string]uint64
	if err := json.Unmarshal(raw, &back); err != nil {
		t.Fatalf("round-trip: %v", err)
	}
	if back["alpha"] != 12 || back["zeta"] != 3 || back["mid"] != 0 {
		t.Fatalf("round-trip values %v", back)
	}
	// Empty set marshals to an empty object, not null.
	if raw, _ := json.Marshal(CounterSet{}); string(raw) != "{}" {
		t.Fatalf("empty set = %s, want {}", raw)
	}
}

// TestRegistrySnapshotOrder: sources snapshot in registration order,
// re-registration keeps the original slot, and the registry's own JSON is
// the nested order-preserving object the admin /counters endpoint serves.
func TestRegistrySnapshotOrder(t *testing.T) {
	r := NewRegistry()
	r.Register("upstream", func() CounterSet { return NewCounterSet("dials", 2) })
	r.Register("sched", func() CounterSet { return NewCounterSet("steals", 9) })
	r.Register("upstream", func() CounterSet { return NewCounterSet("dials", 5) })

	snap := r.Snapshot()
	if len(snap) != 2 || snap[0].Name != "upstream" || snap[1].Name != "sched" {
		t.Fatalf("snapshot order %+v", snap)
	}
	if v, _ := snap[0].Counters.Get("dials"); v != 5 {
		t.Fatalf("re-registered source not used: dials = %d", v)
	}
	raw, err := json.Marshal(r)
	if err != nil {
		t.Fatal(err)
	}
	want := `{"upstream":{"dials":5},"sched":{"steals":9}}`
	if string(raw) != want {
		t.Fatalf("registry JSON = %s, want %s", raw, want)
	}
}
