package metrics

import "testing"

func TestCounterSetBasics(t *testing.T) {
	cs := NewCounterSet("steals", 12, "parks", uint64(3), "wakeups", 0)
	if cs.Len() != 3 {
		t.Fatalf("len = %d", cs.Len())
	}
	if got := cs.Names(); len(got) != 3 || got[0] != "steals" || got[2] != "wakeups" {
		t.Fatalf("names = %v", got)
	}
	if v, ok := cs.Get("parks"); !ok || v != 3 {
		t.Fatalf("parks = %d, %v", v, ok)
	}
	if _, ok := cs.Get("missing"); ok {
		t.Fatal("found a counter that does not exist")
	}
	if s := cs.String(); s != "steals=12 parks=3 wakeups=0" {
		t.Fatalf("string = %q", s)
	}
}

func TestCounterSetSub(t *testing.T) {
	prev := NewCounterSet("steals", 10, "parks", 5)
	cur := NewCounterSet("steals", 25, "parks", 3, "wakeups", 7)
	d := cur.Sub(prev)
	if v, _ := d.Get("steals"); v != 15 {
		t.Fatalf("steals delta = %d", v)
	}
	// Counter went backwards (reset): clamps to zero rather than wrapping.
	if v, _ := d.Get("parks"); v != 0 {
		t.Fatalf("parks delta = %d", v)
	}
	// Absent from prev: kept as-is.
	if v, _ := d.Get("wakeups"); v != 7 {
		t.Fatalf("wakeups delta = %d", v)
	}
}

func TestCounterSetPanics(t *testing.T) {
	for name, fn := range map[string]func(){
		"odd pairs":      func() { NewCounterSet("a") },
		"non-string key": func() { NewCounterSet(1, 2) },
		"negative int":   func() { NewCounterSet("a", -1) },
		"bad value type": func() { NewCounterSet("a", "b") },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: no panic", name)
				}
			}()
			fn()
		}()
	}
}
