package metrics

import (
	"bytes"
	"encoding/json"
	"fmt"
	"sync"
	"time"
)

// epoch anchors the package's monotonic clock. Timestamps from Now are
// nanoseconds since this process-local instant; only differences between
// two readings are meaningful.
var epoch = time.Now()

// Now returns a monotonic timestamp in nanoseconds since an arbitrary
// process-local epoch — the cheap, allocation-free stamp the per-request
// latency pipeline stores at decode and subtracts at flush. Use
// time.Duration(Now()-start) to turn two readings into an interval.
func Now() int64 { return int64(time.Since(epoch)) }

// ShardedHistogram is a latency histogram split into per-worker Histogram
// shards: Record touches only the calling worker's shard (wait-free atomic
// adds, no cross-core cache-line ping-pong on the hot path) and reads
// aggregate every shard's buckets into one summary. This is the data-path
// recording primitive of the live latency pipeline; one instance per
// latency dimension (service total, upstream round trip, cache outcome).
type ShardedHistogram struct {
	shards []Histogram
}

// NewShardedHistogram creates a histogram with one shard per worker
// (workers <= 0 selects a single shard).
func NewShardedHistogram(workers int) *ShardedHistogram {
	if workers <= 0 {
		workers = 1
	}
	return &ShardedHistogram{shards: make([]Histogram, workers)}
}

// Shards returns the shard count.
func (s *ShardedHistogram) Shards() int { return len(s.shards) }

// Record adds one observation to worker's shard (worker mod shard count;
// negative workers clamp to 0). Wait-free and allocation-free — safe on
// the zero-copy data path (TestRecordZeroAlloc pins this).
func (s *ShardedHistogram) Record(worker int, d time.Duration) {
	if worker < 0 {
		worker = 0
	}
	s.shards[worker%len(s.shards)].Record(d)
}

// Count returns the total observations across every shard.
func (s *ShardedHistogram) Count() uint64 {
	var n uint64
	for i := range s.shards {
		n += s.shards[i].Count()
	}
	return n
}

// merge copies every shard's buckets into one array (a single pass per
// shard) and returns the merged total, nanosecond sum and maximum.
func (s *ShardedHistogram) merge(dst *[numBuckets]uint64) (total, sumNs uint64, max time.Duration) {
	for i := range s.shards {
		h := &s.shards[i]
		for j := range h.buckets {
			n := h.buckets[j].Load()
			dst[j] += n
			total += n
		}
		sumNs += h.sum.Load()
		if m := h.Max(); m > max {
			max = m
		}
	}
	return total, sumNs, max
}

// Snapshot aggregates every shard into one point-in-time summary. Shards
// are read in sequence without a global lock, so observations recorded
// while the read is in progress may land in the summary or the next one —
// counts are monotone across successive snapshots, never torn.
func (s *ShardedHistogram) Snapshot() Snapshot {
	var b [numBuckets]uint64
	total, sumNs, max := s.merge(&b)
	return snapshotFrom(&b, total, sumNs, max)
}

// Quantile returns the q-th quantile over the merged shards.
func (s *ShardedHistogram) Quantile(q float64) time.Duration {
	var b [numBuckets]uint64
	total, _, _ := s.merge(&b)
	return quantileFrom(&b, total, q)
}

// MarshalJSON renders the snapshot as one JSON object with pinned key
// order — count, p50, p95, p99, p999, max, mean — latencies as integer
// nanoseconds. Like CounterSet, the object is built by hand so the admin
// API's /latency payload has a stable shape.
func (s Snapshot) MarshalJSON() ([]byte, error) {
	return []byte(fmt.Sprintf(
		`{"count":%d,"p50":%d,"p95":%d,"p99":%d,"p999":%d,"max":%d,"mean":%d}`,
		s.Count, s.P50.Nanoseconds(), s.P95.Nanoseconds(), s.P99.Nanoseconds(),
		s.P999.Nanoseconds(), s.Max.Nanoseconds(), s.Mean.Nanoseconds())), nil
}

// NamedHist couples a latency snapshot with the dimension name it was
// registered under ("total", "upstream", "cache_hit", ...).
type NamedHist struct {
	// Name is the registered dimension name.
	Name string
	// Latency is the dimension's aggregated summary.
	Latency Snapshot
}

// HistogramSet is an ordered, concurrency-safe collection of named latency
// sources: each dimension registers a snapshot function once and consumers
// — the admin API's /latency endpoint, flickrun's exit dump, the bench
// tables — snapshot them all in registration order. It is the histogram
// analogue of the counter Registry, registered next to the CounterSets in
// apps.NewControl. The zero value is not usable; call NewHistogramSet.
type HistogramSet struct {
	mu      sync.Mutex
	names   []string
	sources map[string]func() Snapshot
}

// NewHistogramSet creates an empty set.
func NewHistogramSet() *HistogramSet {
	return &HistogramSet{sources: map[string]func() Snapshot{}}
}

// Register adds (or replaces) the named snapshot source. Registration
// order is preserved across snapshots; re-registering a name keeps its
// original position.
func (hs *HistogramSet) Register(name string, fn func() Snapshot) {
	hs.mu.Lock()
	defer hs.mu.Unlock()
	if _, ok := hs.sources[name]; !ok {
		hs.names = append(hs.names, name)
	}
	hs.sources[name] = fn
}

// Snapshot calls every registered source and returns the readings in
// registration order. Sources run outside the set's lock.
func (hs *HistogramSet) Snapshot() []NamedHist {
	hs.mu.Lock()
	names := append([]string(nil), hs.names...)
	fns := make([]func() Snapshot, len(names))
	for i, n := range names {
		fns[i] = hs.sources[n]
	}
	hs.mu.Unlock()
	out := make([]NamedHist, len(names))
	for i, n := range names {
		out[i] = NamedHist{Name: n, Latency: fns[i]()}
	}
	return out
}

// MarshalJSON renders a snapshot of every registered dimension as one JSON
// object in registration order: {"total":{...},"upstream":{...}}.
func (hs *HistogramSet) MarshalJSON() ([]byte, error) {
	return MarshalNamedHists(hs.Snapshot())
}

// MarshalNamedHists renders named latency snapshots as one
// order-preserving JSON object (the /latency wire format).
func MarshalNamedHists(hists []NamedHist) ([]byte, error) {
	var b bytes.Buffer
	b.WriteByte('{')
	for i, h := range hists {
		if i > 0 {
			b.WriteByte(',')
		}
		name, err := json.Marshal(h.Name)
		if err != nil {
			return nil, err
		}
		b.Write(name)
		b.WriteByte(':')
		inner, err := h.Latency.MarshalJSON()
		if err != nil {
			return nil, err
		}
		b.Write(inner)
	}
	b.WriteByte('}')
	return b.Bytes(), nil
}
