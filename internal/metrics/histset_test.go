package metrics

import (
	"encoding/json"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestShardedHistogramAggregation(t *testing.T) {
	sh := NewShardedHistogram(4)
	if sh.Shards() != 4 {
		t.Fatalf("Shards() = %d, want 4", sh.Shards())
	}
	var ref Histogram
	for i := 0; i < 1000; i++ {
		d := time.Duration(1+i*7919) * time.Microsecond
		sh.Record(i, d) // spread across all shards
		ref.Record(d)
	}
	if sh.Count() != ref.Count() {
		t.Fatalf("Count = %d, want %d", sh.Count(), ref.Count())
	}
	got, want := sh.Snapshot(), ref.Snapshot()
	if got != want {
		t.Fatalf("merged snapshot %v != single-histogram snapshot %v", got, want)
	}
	for _, q := range []float64{0, 0.5, 0.99, 1} {
		if g, w := sh.Quantile(q), ref.Quantile(q); g != w {
			t.Fatalf("Quantile(%v) = %v, want %v", q, g, w)
		}
	}
}

func TestShardedHistogramWorkerClamping(t *testing.T) {
	sh := NewShardedHistogram(0) // <= 0 workers selects one shard
	if sh.Shards() != 1 {
		t.Fatalf("Shards() = %d, want 1", sh.Shards())
	}
	sh.Record(-5, time.Millisecond) // negative worker clamps, must not panic
	sh.Record(99, time.Millisecond) // out-of-range worker wraps
	if sh.Count() != 2 {
		t.Fatalf("Count = %d, want 2", sh.Count())
	}
}

// TestRecordZeroAlloc pins the hot-path cost of the latency pipeline: a
// clock read plus a sharded Record must not allocate, or every request on
// the zero-copy path would.
func TestRecordZeroAlloc(t *testing.T) {
	sh := NewShardedHistogram(8)
	var h Histogram
	if n := testing.AllocsPerRun(1000, func() {
		start := Now()
		h.Record(time.Duration(Now() - start))
	}); n != 0 {
		t.Fatalf("Histogram.Record allocates %v/op, want 0", n)
	}
	w := 0
	if n := testing.AllocsPerRun(1000, func() {
		start := Now()
		sh.Record(w, time.Duration(Now()-start))
		w++
	}); n != 0 {
		t.Fatalf("ShardedHistogram.Record allocates %v/op, want 0", n)
	}
}

// TestShardedRecordVsSnapshotConcurrent drives 16 recorder goroutines
// against concurrent Snapshot/Quantile readers (run under -race in CI):
// counts must be monotone across successive snapshots and every summary
// internally ordered — no torn reads.
func TestShardedRecordVsSnapshotConcurrent(t *testing.T) {
	sh := NewShardedHistogram(16)
	const recorders = 16
	var stop atomic.Bool
	var wg sync.WaitGroup
	for g := 0; g < recorders; g++ {
		wg.Add(1)
		go func(worker int) {
			defer wg.Done()
			d := time.Duration(1+worker) * time.Microsecond
			for !stop.Load() {
				sh.Record(worker, d)
			}
		}(g)
	}
	iters := 500
	if testing.Short() {
		iters = 50
	}
	var prev uint64
	for i := 0; i < iters; i++ {
		s := sh.Snapshot()
		if s.Count < prev {
			stop.Store(true)
			wg.Wait()
			t.Fatalf("count went backwards: %d after %d", s.Count, prev)
		}
		prev = s.Count
		if s.P50 > s.P95 || s.P95 > s.P99 || s.P99 > s.P999 || s.P999 > s.Max {
			stop.Store(true)
			wg.Wait()
			t.Fatalf("torn snapshot, quantiles not monotone: %v", s)
		}
		if q := sh.Quantile(0.5); q > 20*time.Microsecond {
			stop.Store(true)
			wg.Wait()
			t.Fatalf("concurrent Quantile(0.5) = %v, outside recorded range", q)
		}
	}
	stop.Store(true)
	wg.Wait()
	final := sh.Snapshot()
	if final.Count < prev {
		t.Fatalf("final count %d below last observed %d", final.Count, prev)
	}
}

func TestSnapshotMarshalJSONPinnedOrder(t *testing.T) {
	var h Histogram
	h.Record(time.Millisecond)
	h.Record(2 * time.Millisecond)
	raw, err := json.Marshal(h.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	got := string(raw)
	want := []string{`"count":`, `"p50":`, `"p95":`, `"p99":`, `"p999":`, `"max":`, `"mean":`}
	pos := -1
	for _, key := range want {
		i := strings.Index(got, key)
		if i < 0 {
			t.Fatalf("key %s missing from %s", key, got)
		}
		if i < pos {
			t.Fatalf("key %s out of pinned order in %s", key, got)
		}
		pos = i
	}
	var decoded map[string]uint64
	if err := json.Unmarshal(raw, &decoded); err != nil {
		t.Fatalf("snapshot JSON not an object of integers: %v (%s)", err, got)
	}
	if decoded["count"] != 2 {
		t.Fatalf("count = %d, want 2 (%s)", decoded["count"], got)
	}
	if decoded["max"] != uint64(2*time.Millisecond) {
		t.Fatalf("max = %d, want %d (%s)", decoded["max"], 2*time.Millisecond, got)
	}
}

func TestHistogramSetOrderAndJSON(t *testing.T) {
	hs := NewHistogramSet()
	var a, b Histogram
	a.Record(time.Microsecond)
	b.Record(time.Second)
	hs.Register("total", a.Snapshot)
	hs.Register("upstream", b.Snapshot)
	hs.Register("cache_hit", func() Snapshot { return Snapshot{} })
	hs.Register("total", a.Snapshot) // re-register keeps position

	snap := hs.Snapshot()
	names := make([]string, len(snap))
	for i, nh := range snap {
		names[i] = nh.Name
	}
	if got := fmt.Sprint(names); got != "[total upstream cache_hit]" {
		t.Fatalf("registration order not preserved: %v", got)
	}
	if snap[0].Latency.Count != 1 || snap[1].Latency.Max != time.Second {
		t.Fatalf("snapshots not wired to sources: %+v", snap)
	}

	raw, err := json.Marshal(hs)
	if err != nil {
		t.Fatal(err)
	}
	s := string(raw)
	ti, ui, ci := strings.Index(s, `"total"`), strings.Index(s, `"upstream"`), strings.Index(s, `"cache_hit"`)
	if ti < 0 || ui < 0 || ci < 0 || !(ti < ui && ui < ci) {
		t.Fatalf("set JSON keys missing or out of order: %s", s)
	}
	var decoded map[string]map[string]int64
	if err := json.Unmarshal(raw, &decoded); err != nil {
		t.Fatalf("set JSON not nested objects: %v (%s)", err, s)
	}
	if decoded["upstream"]["max"] != int64(time.Second) {
		t.Fatalf("upstream max = %d, want %d", decoded["upstream"]["max"], int64(time.Second))
	}
}

func TestNowMonotone(t *testing.T) {
	a := Now()
	time.Sleep(time.Millisecond)
	b := Now()
	if b <= a {
		t.Fatalf("Now not monotone: %d then %d", a, b)
	}
}
