// Package metrics provides the measurement primitives used by the FLICK
// benchmark harness: lock-free throughput counters and log-bucketed latency
// histograms with percentile extraction.
package metrics

import (
	"fmt"
	"math"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing, concurrency-safe event counter.
type Counter struct {
	n atomic.Uint64
}

// Add increments the counter by delta.
func (c *Counter) Add(delta uint64) { c.n.Add(delta) }

// Inc increments the counter by one.
func (c *Counter) Inc() { c.n.Add(1) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.n.Load() }

// Rate is a windowed throughput meter: it records a start time and computes
// events per second on demand.
type Rate struct {
	Counter
	start time.Time
}

// NewRate starts a throughput meter now.
func NewRate() *Rate { return &Rate{start: time.Now()} }

// PerSecond returns the average events/second since the meter started.
func (r *Rate) PerSecond() float64 {
	el := time.Since(r.start).Seconds()
	if el <= 0 {
		return 0
	}
	return float64(r.Value()) / el
}

// Elapsed returns the time since the meter started.
func (r *Rate) Elapsed() time.Duration { return time.Since(r.start) }

// Histogram buckets and constants. Buckets are logarithmic with sub-decade
// resolution: bucket i covers [lower(i), lower(i+1)) nanoseconds with 16
// buckets per power of two, spanning 1 ns .. ~17 s.
const (
	subBuckets = 16
	numBuckets = 64 * subBuckets
)

// Histogram is a concurrency-safe latency histogram. Record is wait-free
// (single atomic add); quantile extraction walks the bucket array.
type Histogram struct {
	buckets [numBuckets]atomic.Uint64
	count   atomic.Uint64
	sum     atomic.Uint64 // nanoseconds
	maxNs   atomic.Uint64
}

func bucketIndex(ns uint64) int {
	if ns == 0 {
		return 0
	}
	exp := 63 - leadingZeros(ns)
	var sub uint64
	if exp >= 4 {
		sub = (ns >> (uint(exp) - 4)) & (subBuckets - 1)
	} else {
		sub = (ns << (4 - uint(exp))) & (subBuckets - 1)
	}
	idx := exp*subBuckets + int(sub)
	if idx >= numBuckets {
		idx = numBuckets - 1
	}
	return idx
}

func leadingZeros(x uint64) int {
	n := 0
	if x == 0 {
		return 64
	}
	for x&(1<<63) == 0 {
		x <<= 1
		n++
	}
	return n
}

// bucketLower returns the lower bound in ns of bucket i.
func bucketLower(i int) uint64 {
	exp := i / subBuckets
	sub := uint64(i % subBuckets)
	if exp >= 4 {
		return (1 << uint(exp)) + (sub << (uint(exp) - 4))
	}
	return (1 << uint(exp)) + (sub >> (4 - uint(exp)))
}

// Record adds one latency observation.
func (h *Histogram) Record(d time.Duration) {
	ns := uint64(d.Nanoseconds())
	if d < 0 {
		ns = 0
	}
	h.buckets[bucketIndex(ns)].Add(1)
	h.count.Add(1)
	h.sum.Add(ns)
	for {
		cur := h.maxNs.Load()
		if ns <= cur || h.maxNs.CompareAndSwap(cur, ns) {
			break
		}
	}
}

// Count returns the number of recorded observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Mean returns the mean latency.
func (h *Histogram) Mean() time.Duration {
	c := h.count.Load()
	if c == 0 {
		return 0
	}
	return time.Duration(h.sum.Load() / c)
}

// Max returns the largest recorded latency.
func (h *Histogram) Max() time.Duration {
	return time.Duration(h.maxNs.Load())
}

// Quantile returns an approximation of the q-th quantile (0 < q <= 1).
func (h *Histogram) Quantile(q float64) time.Duration {
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	target := uint64(math.Ceil(q * float64(total)))
	if target == 0 {
		target = 1
	}
	var cum uint64
	for i := 0; i < numBuckets; i++ {
		cum += h.buckets[i].Load()
		if cum >= target {
			return time.Duration(bucketLower(i))
		}
	}
	return h.Max()
}

// Snapshot summarises the histogram for reporting.
type Snapshot struct {
	Count uint64
	Mean  time.Duration
	P50   time.Duration
	P95   time.Duration
	P99   time.Duration
	Max   time.Duration
}

// Snapshot extracts a point-in-time summary.
func (h *Histogram) Snapshot() Snapshot {
	return Snapshot{
		Count: h.Count(),
		Mean:  h.Mean(),
		P50:   h.Quantile(0.50),
		P95:   h.Quantile(0.95),
		P99:   h.Quantile(0.99),
		Max:   h.Max(),
	}
}

// String renders a snapshot compactly.
func (s Snapshot) String() string {
	return fmt.Sprintf("n=%d mean=%v p50=%v p95=%v p99=%v max=%v",
		s.Count, s.Mean, s.P50, s.P95, s.P99, s.Max)
}
