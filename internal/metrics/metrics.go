// Package metrics provides the measurement primitives used by the FLICK
// benchmark harness: lock-free throughput counters and log-bucketed latency
// histograms with percentile extraction.
package metrics

import (
	"fmt"
	"math"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing, concurrency-safe event counter.
type Counter struct {
	n atomic.Uint64
}

// Add increments the counter by delta.
func (c *Counter) Add(delta uint64) { c.n.Add(delta) }

// Inc increments the counter by one.
func (c *Counter) Inc() { c.n.Add(1) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.n.Load() }

// Rate is a windowed throughput meter: it records a start time and computes
// events per second on demand.
type Rate struct {
	Counter
	start time.Time
}

// NewRate starts a throughput meter now.
func NewRate() *Rate { return &Rate{start: time.Now()} }

// PerSecond returns the average events/second since the meter started.
func (r *Rate) PerSecond() float64 {
	el := time.Since(r.start).Seconds()
	if el <= 0 {
		return 0
	}
	return float64(r.Value()) / el
}

// Elapsed returns the time since the meter started.
func (r *Rate) Elapsed() time.Duration { return time.Since(r.start) }

// Histogram buckets and constants. Buckets are logarithmic with sub-decade
// resolution: bucket i covers [lower(i), lower(i+1)) nanoseconds with 16
// buckets per power of two, spanning 1 ns .. ~17 s.
const (
	subBuckets = 16
	numBuckets = 64 * subBuckets
)

// Histogram is a concurrency-safe latency histogram. Record is wait-free
// (single atomic add); quantile extraction walks the bucket array.
type Histogram struct {
	buckets [numBuckets]atomic.Uint64
	count   atomic.Uint64
	sum     atomic.Uint64 // nanoseconds
	maxNs   atomic.Uint64
}

func bucketIndex(ns uint64) int {
	if ns == 0 {
		return 0
	}
	exp := 63 - leadingZeros(ns)
	var sub uint64
	if exp >= 4 {
		sub = (ns >> (uint(exp) - 4)) & (subBuckets - 1)
	} else {
		sub = (ns << (4 - uint(exp))) & (subBuckets - 1)
	}
	idx := exp*subBuckets + int(sub)
	if idx >= numBuckets {
		idx = numBuckets - 1
	}
	return idx
}

func leadingZeros(x uint64) int {
	n := 0
	if x == 0 {
		return 64
	}
	for x&(1<<63) == 0 {
		x <<= 1
		n++
	}
	return n
}

// bucketLower returns the lower bound in ns of bucket i.
func bucketLower(i int) uint64 {
	exp := i / subBuckets
	sub := uint64(i % subBuckets)
	if exp >= 4 {
		return (1 << uint(exp)) + (sub << (uint(exp) - 4))
	}
	return (1 << uint(exp)) + (sub >> (4 - uint(exp)))
}

// Record adds one latency observation.
func (h *Histogram) Record(d time.Duration) {
	ns := uint64(d.Nanoseconds())
	if d < 0 {
		ns = 0
	}
	h.buckets[bucketIndex(ns)].Add(1)
	h.count.Add(1)
	h.sum.Add(ns)
	for {
		cur := h.maxNs.Load()
		if ns <= cur || h.maxNs.CompareAndSwap(cur, ns) {
			break
		}
	}
}

// Count returns the number of recorded observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Mean returns the mean latency.
func (h *Histogram) Mean() time.Duration {
	c := h.count.Load()
	if c == 0 {
		return 0
	}
	return time.Duration(h.sum.Load() / c)
}

// Max returns the largest recorded latency.
func (h *Histogram) Max() time.Duration {
	return time.Duration(h.maxNs.Load())
}

// loadBuckets copies the bucket counters into dst in one pass and returns
// their sum. Every read of the histogram derives both the rank target and
// the cumulative walk from this single snapshot array: loading the count
// atomic separately would let a racing Record make the target rank exceed
// the walked sum and report a spuriously large quantile.
func (h *Histogram) loadBuckets(dst *[numBuckets]uint64) uint64 {
	var total uint64
	for i := range h.buckets {
		n := h.buckets[i].Load()
		dst[i] = n
		total += n
	}
	return total
}

// quantileFrom extracts the q-th quantile from a one-shot bucket snapshot
// whose counts sum to total. The reported value is the lower bound of the
// bucket holding the target rank, so it under-reports by at most one
// log-bucket's width (lower/16 for values >= 16ns).
func quantileFrom(b *[numBuckets]uint64, total uint64, q float64) time.Duration {
	if total == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	target := uint64(math.Ceil(q * float64(total)))
	if target == 0 {
		target = 1
	}
	if target > total {
		target = total
	}
	var cum uint64
	for i := 0; i < numBuckets; i++ {
		cum += b[i]
		if cum >= target {
			return time.Duration(bucketLower(i))
		}
	}
	// Unreachable: target <= total == sum of b. Kept for safety.
	return time.Duration(bucketLower(numBuckets - 1))
}

// Quantile returns an approximation of the q-th quantile (0 < q <= 1). The
// bucket array is snapshotted once and the rank target derives from that
// same snapshot, so a Quantile racing concurrent Records is internally
// consistent (never past the data it walked).
func (h *Histogram) Quantile(q float64) time.Duration {
	var b [numBuckets]uint64
	total := h.loadBuckets(&b)
	return quantileFrom(&b, total, q)
}

// Snapshot summarises the histogram for reporting.
type Snapshot struct {
	// Count is the number of observations the quantiles are drawn from.
	Count uint64
	// Mean is the arithmetic mean latency.
	Mean time.Duration
	// P50, P95, P99 and P999 are bucket-resolution quantiles.
	P50  time.Duration
	P95  time.Duration
	P99  time.Duration
	P999 time.Duration
	// Max is the exact largest recorded latency.
	Max time.Duration
}

// snapshotFrom summarises one bucket snapshot: every quantile (and the
// count) derives from the same array, so the summary is self-consistent
// even when Records raced the copy.
func snapshotFrom(b *[numBuckets]uint64, total, sumNs uint64, max time.Duration) Snapshot {
	s := Snapshot{Count: total, Max: max}
	if total == 0 {
		return s
	}
	s.Mean = time.Duration(sumNs / total)
	s.P50 = quantileFrom(b, total, 0.50)
	s.P95 = quantileFrom(b, total, 0.95)
	s.P99 = quantileFrom(b, total, 0.99)
	s.P999 = quantileFrom(b, total, 0.999)
	return s
}

// Snapshot extracts a point-in-time summary. The buckets are copied once
// and every quantile (and Count) derives from that copy.
func (h *Histogram) Snapshot() Snapshot {
	var b [numBuckets]uint64
	total := h.loadBuckets(&b)
	return snapshotFrom(&b, total, h.sum.Load(), h.Max())
}

// String renders a snapshot compactly.
func (s Snapshot) String() string {
	return fmt.Sprintf("n=%d mean=%v p50=%v p95=%v p99=%v p999=%v max=%v",
		s.Count, s.Mean, s.P50, s.P95, s.P99, s.P999, s.Max)
}
