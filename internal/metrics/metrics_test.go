package metrics

import (
	"sync"
	"testing"
	"testing/quick"
	"time"
)

func TestCounter(t *testing.T) {
	var c Counter
	c.Inc()
	c.Add(9)
	if c.Value() != 10 {
		t.Fatalf("value = %d", c.Value())
	}
}

func TestCounterConcurrent(t *testing.T) {
	var c Counter
	var wg sync.WaitGroup
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				c.Inc()
			}
		}()
	}
	wg.Wait()
	if c.Value() != 16000 {
		t.Fatalf("value = %d, want 16000", c.Value())
	}
}

func TestRatePerSecond(t *testing.T) {
	r := NewRate()
	r.Add(100)
	time.Sleep(10 * time.Millisecond)
	ps := r.PerSecond()
	if ps <= 0 || ps > 100/0.010*2 {
		t.Fatalf("rate = %f implausible", ps)
	}
}

func TestBucketIndexMonotone(t *testing.T) {
	prev := -1
	for _, ns := range []uint64{0, 1, 2, 3, 10, 100, 1000, 1e6, 1e9, 1e10} {
		i := bucketIndex(ns)
		if i < prev {
			t.Fatalf("bucketIndex not monotone at %d: %d < %d", ns, i, prev)
		}
		prev = i
	}
}

func TestBucketLowerInvertsIndex(t *testing.T) {
	// Property: a value's bucket lower bound is <= the value, and the next
	// bucket's lower bound is > the value (within representable range).
	f := func(v uint32) bool {
		ns := uint64(v) + 1
		i := bucketIndex(ns)
		lo := bucketLower(i)
		if lo > ns {
			return false
		}
		if i+1 < numBuckets {
			return bucketLower(i+1) > ns || bucketLower(i+1) == lo
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestHistogramBasics(t *testing.T) {
	var h Histogram
	for i := 1; i <= 100; i++ {
		h.Record(time.Duration(i) * time.Millisecond)
	}
	if h.Count() != 100 {
		t.Fatalf("count = %d", h.Count())
	}
	mean := h.Mean()
	if mean < 40*time.Millisecond || mean > 60*time.Millisecond {
		t.Fatalf("mean = %v, want ~50ms", mean)
	}
	p50 := h.Quantile(0.5)
	if p50 < 30*time.Millisecond || p50 > 70*time.Millisecond {
		t.Fatalf("p50 = %v", p50)
	}
	if h.Max() != 100*time.Millisecond {
		t.Fatalf("max = %v", h.Max())
	}
	p99 := h.Quantile(0.99)
	if p99 < p50 {
		t.Fatalf("p99 %v < p50 %v", p99, p50)
	}
}

func TestHistogramNegativeClamped(t *testing.T) {
	var h Histogram
	h.Record(-time.Second)
	if h.Count() != 1 {
		t.Fatal("negative duration not recorded")
	}
	if h.Quantile(1) > time.Microsecond {
		t.Fatalf("negative recorded as %v", h.Quantile(1))
	}
}

func TestHistogramEmptyQuantile(t *testing.T) {
	var h Histogram
	if h.Quantile(0.5) != 0 || h.Mean() != 0 {
		t.Fatal("empty histogram should report zeros")
	}
}

func TestHistogramQuantileBoundsClamped(t *testing.T) {
	var h Histogram
	h.Record(time.Millisecond)
	if h.Quantile(-1) == 0 && h.Quantile(2) == 0 {
		t.Fatal("clamped quantiles should still find the observation")
	}
}

func TestHistogramConcurrentRecord(t *testing.T) {
	var h Histogram
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				h.Record(time.Duration(g+1) * time.Microsecond)
			}
		}(g)
	}
	wg.Wait()
	if h.Count() != 4000 {
		t.Fatalf("count = %d", h.Count())
	}
}

func TestSnapshotString(t *testing.T) {
	var h Histogram
	h.Record(time.Millisecond)
	s := h.Snapshot()
	if s.Count != 1 {
		t.Fatalf("snapshot count = %d", s.Count)
	}
	if str := s.String(); str == "" {
		t.Fatal("empty string")
	}
}

// Property: quantiles are monotone in q.
func TestQuantileMonotoneProperty(t *testing.T) {
	var h Histogram
	for i := 0; i < 1000; i++ {
		h.Record(time.Duration(i*i) * time.Nanosecond)
	}
	f := func(a, b float64) bool {
		qa, qb := a, b
		if qa < 0 {
			qa = -qa
		}
		if qb < 0 {
			qb = -qb
		}
		qa -= float64(int(qa))
		qb -= float64(int(qb))
		if qa > qb {
			qa, qb = qb, qa
		}
		return h.Quantile(qa) <= h.Quantile(qb)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkHistogramRecord(b *testing.B) {
	var h Histogram
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Record(time.Duration(i) * time.Nanosecond)
	}
}
