package metrics

import (
	"math/rand"
	"sort"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// quantileErrBound asserts the histogram's reported quantile sits within
// one log-bucket of the exact value computed from the sorted samples: the
// report is the lower bound of the bucket holding the true rank, so it
// never exceeds the truth and trails it by at most the bucket width
// (lower/16 for values >= 16ns, 1ns below).
func quantileErrBound(t *testing.T, name string, samples []uint64) {
	t.Helper()
	var h Histogram
	for _, ns := range samples {
		h.Record(time.Duration(ns))
	}
	sorted := append([]uint64(nil), samples...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	for _, q := range []float64{0, 0.01, 0.1, 0.25, 0.5, 0.9, 0.95, 0.99, 0.999, 1} {
		got := uint64(h.Quantile(q))
		rank := int(float64(len(sorted)) * q)
		if rank > 0 {
			rank-- // ceil(q*n)-1 as a 0-based index, matching quantileFrom
		}
		if f := float64(len(sorted)) * q; f > float64(int(f)) {
			rank = int(f) // non-integer rank: ceil lands one past the floor
		}
		if rank >= len(sorted) {
			rank = len(sorted) - 1
		}
		want := sorted[rank]
		if got > want {
			t.Fatalf("%s q=%v: reported %d > exact %d", name, q, got, want)
		}
		if slack := want/16 + 1; want-got > slack {
			t.Fatalf("%s q=%v: reported %d trails exact %d by %d (> one bucket %d)",
				name, q, got, want, want-got, slack)
		}
	}
}

func TestQuantilePropertyUniform(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	samples := make([]uint64, 5000)
	for i := range samples {
		samples[i] = uint64(rng.Int63n(50_000_000)) // 0..50ms
	}
	quantileErrBound(t, "uniform", samples)
}

func TestQuantilePropertyZipf(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	z := rand.NewZipf(rng, 1.3, 1, 10_000_000)
	samples := make([]uint64, 5000)
	for i := range samples {
		samples[i] = 1000 + z.Uint64() // 1µs floor plus a heavy tail
	}
	quantileErrBound(t, "zipf", samples)
}

func TestQuantilePropertyBimodal(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	samples := make([]uint64, 5000)
	for i := range samples {
		if rng.Intn(2) == 0 {
			samples[i] = 800 + uint64(rng.Int63n(400)) // ~1µs mode (cache hits)
		} else {
			samples[i] = 9_000_000 + uint64(rng.Int63n(2_000_000)) // ~10ms mode
		}
	}
	quantileErrBound(t, "bimodal", samples)
}

func TestQuantileEdgeCases(t *testing.T) {
	var empty Histogram
	for _, q := range []float64{0, 0.5, 1} {
		if got := empty.Quantile(q); got != 0 {
			t.Fatalf("empty q=%v = %v, want 0", q, got)
		}
	}
	var single Histogram
	single.Record(3 * time.Millisecond)
	lo := time.Duration(bucketLower(bucketIndex(uint64(3 * time.Millisecond))))
	for _, q := range []float64{0, 0.5, 1} {
		if got := single.Quantile(q); got != lo {
			t.Fatalf("single q=%v = %v, want bucket lower %v", q, got, lo)
		}
	}
	// q=0 clamps to rank 1 (the minimum); q=1 is the maximum's bucket.
	var h Histogram
	h.Record(time.Microsecond)
	h.Record(time.Second)
	if got := h.Quantile(0); got > 2*time.Microsecond {
		t.Fatalf("q=0 = %v, want the minimum's bucket", got)
	}
	if got := h.Quantile(1); got < 900*time.Millisecond {
		t.Fatalf("q=1 = %v, want the maximum's bucket", got)
	}
}

func TestBucketIndexBoundaries(t *testing.T) {
	if bucketIndex(0) != 0 {
		t.Fatalf("bucketIndex(0) = %d", bucketIndex(0))
	}
	// Exact powers of two open their own bucket: the lower bound inverts
	// exactly (for powers >= 16; smaller exponents share sub-buckets).
	for exp := uint(4); exp < 63; exp++ {
		p := uint64(1) << exp
		i := bucketIndex(p)
		if i >= numBuckets {
			break // clamped tail, checked below
		}
		if got := bucketLower(i); got != p {
			t.Fatalf("bucketLower(bucketIndex(2^%d)) = %d, want %d", exp, got, p)
		}
		if j := bucketIndex(p - 1); j >= i {
			t.Fatalf("2^%d-1 in bucket %d, >= 2^%d's bucket %d", exp, j, exp, i)
		}
	}
	// Values at the extreme top of the range stay inside the array: the
	// largest representable value occupies the final bucket, and nothing
	// indexes past it.
	if i := bucketIndex(^uint64(0)); i != numBuckets-1 {
		t.Fatalf("bucketIndex(max uint64) = %d, want %d", i, numBuckets-1)
	}
	for _, ns := range []uint64{1 << 62, 1 << 63, 1<<63 + 1, ^uint64(0)} {
		if i := bucketIndex(ns); i < 0 || i >= numBuckets {
			t.Fatalf("bucketIndex(%d) = %d, out of range", ns, i)
		}
	}
}

// TestQuantileInterleavedRecorder is the regression test for the racing
// Quantile: the rank target and the cumulative walk must derive from one
// bucket snapshot. With the target computed from a separately loaded count,
// a concurrent Record could push the target past the walked sum and the
// median of a pile of microsecond observations would spuriously report the
// histogram's 10-second outlier.
func TestQuantileInterleavedRecorder(t *testing.T) {
	var h Histogram
	h.Record(10 * time.Second) // far-bucket outlier: the spurious answer
	for i := 0; i < 8; i++ {
		h.Record(time.Microsecond)
	}
	var stop atomic.Bool
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for !stop.Load() {
			h.Record(time.Microsecond)
		}
	}()
	for i := 0; i < 20000; i++ {
		if got := h.Quantile(0.5); got > time.Millisecond {
			stop.Store(true)
			wg.Wait()
			t.Fatalf("interleaved p50 = %v, want ~1µs (spurious max-bucket report)", got)
		}
	}
	stop.Store(true)
	wg.Wait()
	// The same one-snapshot discipline keeps Snapshot self-consistent.
	s := h.Snapshot()
	if s.P50 > s.P95 || s.P95 > s.P99 || s.P99 > s.P999 || s.P999 > s.Max {
		t.Fatalf("snapshot quantiles not monotone: %v", s)
	}
}
