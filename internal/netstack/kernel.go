package netstack

import (
	"net"

	"flick/internal/buffer"
)

// KernelTCP is the operating-system TCP stack. Benchmarks use it on loopback
// ("127.0.0.1:0"); every operation is a real syscall, so it carries the
// connection set-up/tear-down and user/kernel-crossing costs the paper
// attributes to the kernel stack (§5: VFS socket overhead, mode switches).
type KernelTCP struct{}

// Name implements Transport.
func (KernelTCP) Name() string { return "kernel" }

// Listen implements Transport.
func (KernelTCP) Listen(addr string) (net.Listener, error) {
	return net.Listen("tcp", addr)
}

// Dial implements Transport.
func (KernelTCP) Dial(addr string) (net.Conn, error) {
	return net.Dial("tcp", addr)
}

var _ Transport = KernelTCP{}

// Readable is implemented by connections that support event-driven read
// notification (the UserNet stack). The FLICK platform uses it to schedule
// input tasks from the stack's event loop instead of blocking a goroutine;
// kernel connections fall back to a pump goroutine.
type Readable interface {
	// SetReadableCallback registers fn to run when bytes or EOF arrive.
	SetReadableCallback(fn func())
	// TryRead performs a non-blocking read; (0, nil) means "would block".
	TryRead(p []byte) (int, error)
}

var _ Readable = (*userConn)(nil)

// RefReader is implemented by connections that can hand buffered inbound
// bytes to a byte queue by reference: already-pooled views move into the
// caller's queue without copying (upstream sessions deliver demultiplexed
// response views this way). Implementations also implement Readable; the
// platform's event-driven input path prefers RefReader when present.
type RefReader interface {
	// TryReadRefs moves all currently buffered bytes into q, reporting the
	// byte count; (0, nil) means "would block", errors end the stream.
	TryReadRefs(q *buffer.Queue) (int, error)
}

// BatchWriter is implemented by connections that accept a whole scatter
// list in one operation (the UserNet stack takes its connection lock once
// for the batch). Kernel TCP connections don't need it: net.Buffers.WriteTo
// maps to a single writev syscall on *net.TCPConn.
type BatchWriter interface {
	// WriteBatch writes every buffer in order, blocking until all bytes
	// are accepted or the connection fails.
	WriteBatch(bufs [][]byte) (int64, error)
}

var _ BatchWriter = (*userConn)(nil)
