// Package netstack provides the two transports the FLICK platform runs on.
//
// The paper's platform uses the kernel TCP stack or a modified mTCP (a
// user-space TCP stack) over DPDK; the mTCP path removes per-connection
// syscall and VFS overhead and dramatically cuts connection set-up cost.
// This reproduction keeps the same split:
//
//   - KernelTCP: the operating-system stack via the net package (loopback in
//     benchmarks). Every read/write/connect is a real syscall.
//   - UserNet ("unet"): an in-process user-space stack. Connections are pairs
//     of ring buffers, connection establishment is a queue push, and no
//     syscalls occur on the data path. This is the mTCP/DPDK substitute: it
//     exhibits the same qualitative property (per-connection and per-op cost
//     collapse) for the same architectural reason (no kernel crossing).
//
// Both transports implement Transport and produce net.Conn values, so every
// server, baseline and load generator in the repository runs unmodified on
// either stack.
package netstack

import (
	"errors"
	"net"
	"time"
)

// Transport abstracts a network stack.
type Transport interface {
	// Listen opens a listener on addr ("host:port" for KernelTCP, any
	// non-empty string for UserNet).
	Listen(addr string) (net.Listener, error)
	// Dial connects to a listener previously opened on addr.
	Dial(addr string) (net.Conn, error)
	// Name identifies the transport in benchmark output ("kernel", "unet").
	Name() string
}

// Common errors.
var (
	ErrClosed      = errors.New("netstack: use of closed connection")
	ErrNoListener  = errors.New("netstack: connection refused (no listener)")
	ErrAddrInUse   = errors.New("netstack: address already in use")
	ErrBacklogFull = errors.New("netstack: accept backlog full")
)

// timeoutError implements net.Error for deadline expiry.
type timeoutError struct{}

func (timeoutError) Error() string   { return "netstack: i/o timeout" }
func (timeoutError) Timeout() bool   { return true }
func (timeoutError) Temporary() bool { return true }

// ErrTimeout is returned when a deadline expires.
var ErrTimeout net.Error = timeoutError{}

// addr is the trivial net.Addr used by UserNet.
type addr string

func (a addr) Network() string { return "unet" }
func (a addr) String() string  { return string(a) }

// Spin busy-waits for approximately d. It models CPU time consumed inside a
// protocol stack or middlebox computation without sleeping (sleeping would
// release the core, which is not what syscall overhead does).
func Spin(d time.Duration) {
	if d <= 0 {
		return
	}
	start := time.Now()
	for time.Since(start) < d {
	}
}
